// steppingnet — command-line front end for the library.
//
// Subcommands:
//   train    run the full pipeline on a synthetic dataset and save the model
//   eval     load a saved model and report per-subnet accuracy + MACs
//   info     load a saved model and print the structure report
//   latency  map a saved model's subnets to latency estimates per device
//   serve    serve a saved model over loopback TCP with anytime inference
//
// Examples:
//   steppingnet train --model lenet3c1l --out model.bin --epochs 5
//   steppingnet eval --model lenet3c1l --in model.bin
//   steppingnet info --model lenet3c1l --in model.bin
//   steppingnet latency --model lenet3c1l --in model.bin --deadline-ms 2.5
//   steppingnet serve --model lenet3c1l --in model.bin --port 17707 --workers 2
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include <algorithm>

#include "core/latency.h"
#include "core/macs.h"
#include "quant/calibration.h"
#include "quant/policy.h"
#include "core/report.h"
#include "core/serialize.h"
#include "core/stepping_net.h"
#include "nn/trainer.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/table.h"

using namespace stepping;

namespace {

constexpr const char* kUsage =
    R"(usage: steppingnet <train|eval|info|latency|serve> [flags]

common flags:
  --model NAME        lenet3c1l | lenet5 | vgg16      (default lenet3c1l)
  --classes N         output classes                   (default 10)
  --expansion R       width expansion ratio            (default 1.8)
  --width W           width multiplier                 (default 0.25)
  --subnets N         number of subnets                (default 4)
  --budgets a,b,c,d   MAC budget fractions             (default 0.1,0.3,0.5,0.85)

train:
  --out PATH          save the trained model here      (required)
  --epochs N          pretraining epochs               (default 5)
  --distill-epochs N  distillation epochs              (default 2)
  --train-per-class N synthetic training images/class  (default 100)
  --seed S            RNG seed                         (default 42)

eval / info / latency / serve:
  --in PATH           load the model from here         (required)
  --deadline-ms MS    (latency) report the largest subnet meeting MS
                      (serve) default per-request deadline, 0 = none
  --precision P       fp32 | int8 | auto               (default fp32)
                      (eval) int8/auto print a per-subnet fp32-vs-int8 table
                      (serve) precision policy of the anytime ladder

serve:
  --port P            TCP port on 127.0.0.1, 0 = ephemeral (default 0)
  --workers N         worker threads, 0 = STEPPING_SERVE_WORKERS/1 (default 0)
  --batch B           micro-batch size per worker       (default 4)
  --confidence T      early-exit top-1 gate, 0 = off    (default 0)
  --mac-budget M      default per-request MAC budget, 0 = unlimited
  --no-reuse          disable incremental reuse (baseline mode)
  --reform M          on | off: continuous batch re-formation — survivors of
                      different micro-batches re-merge into full same-level
                      batches each step (default: STEPPING_REFORM, on)
  --admit P           off | reject | degrade: predictive admission control at
                      enqueue (default: STEPPING_ADMIT, off). reject refuses
                      requests whose deadline is already hopeless at the
                      predicted queue wait; degrade also caps the rest to the
                      reachable subnet level
  --metrics-dump-sec N  print a metrics JSON snapshot every N seconds
                        (the last partial window flushes on shutdown, then a
                        final cumulative snapshot prints)
  --slo-objective H     deadline-hit-rate objective in (0,1) (default 0.99)
  --postmortem-dump PATH  on shutdown, write the flight recorder's postmortem
                          JSON (deadline misses + worst stragglers, each with
                          its causal timeline and predicted-vs-actual
                          per-level costs) to PATH

observability (env): STEPPING_TRACE=<path> writes a Chrome/Perfetto trace
(STEPPING_TRACE_FLUSH_SEC=N rewrites it every N seconds while running),
STEPPING_LOG=<level> controls diagnostics, STEPPING_FLIGHT_RING sizes the
per-request flight recorder (0 disables); see the README env-var table.
)";

struct CommonConfig {
  std::string model;
  int classes;
  double expansion;
  double width;
  int subnets;
  std::vector<double> budgets;
  std::uint64_t seed;
};

std::vector<double> parse_budgets(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    out.push_back(std::strtod(tok.c_str(), nullptr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

CommonConfig common_config(const CliArgs& args) {
  CommonConfig c;
  c.model = args.get("model", "lenet3c1l");
  c.classes = static_cast<int>(args.get_int("classes", 10));
  c.expansion = args.get_double("expansion", 1.8);
  c.width = args.get_double("width", 0.25);
  c.subnets = static_cast<int>(args.get_int("subnets", 4));
  c.budgets = parse_budgets(args.get("budgets", "0.1,0.3,0.5,0.85"));
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return c;
}

Network build(const CommonConfig& c, double expansion) {
  ModelConfig mc;
  mc.classes = c.classes;
  mc.expansion = expansion;
  mc.width_mult = c.width;
  mc.seed = c.seed + 7;
  return build_model(c.model, mc);
}

DataSplit make_data(const CommonConfig& c, int train_per_class,
                    int test_per_class) {
  SynthConfig cfg = c.classes > 10 ? synth_cifar100(train_per_class, test_per_class)
                                   : synth_cifar10(train_per_class, test_per_class);
  cfg.seed = c.seed;
  return make_synthetic(cfg);
}

int cmd_train(const CliArgs& args) {
  const CommonConfig c = common_config(args);
  const std::string out = args.get("out");
  if (out.empty()) {
    LOG_ERROR << "train: --out PATH is required";
    return 2;
  }
  if (static_cast<int>(c.budgets.size()) != c.subnets) {
    LOG_ERROR << "train: --budgets arity must equal --subnets";
    return 2;
  }
  const DataSplit data =
      make_data(c, static_cast<int>(args.get_int("train-per-class", 100)), 30);

  Network reference = build(c, 1.0);
  SteppingConfig cfg;
  cfg.num_subnets = c.subnets;
  cfg.mac_budget_frac = c.budgets;
  cfg.reference_macs = full_macs(reference);
  cfg.batches_per_iter = 3;
  cfg.max_iters = 50;

  SteppingNet sn(build(c, c.expansion), cfg, c.seed);
  std::printf("pretraining...\n");
  sn.pretrain(data.train, static_cast<int>(args.get_int("epochs", 5)));
  std::printf("constructing subnets...\n");
  const ConstructionReport rep = sn.construct(data.train);
  std::printf("construction: %d iterations, budgets met: %s\n", rep.iterations,
              rep.budgets_met ? "yes" : "no");
  std::printf("distilling...\n");
  sn.distill(data.train, static_cast<int>(args.get_int("distill-epochs", 2)));

  Table t({"subnet", "test acc", "MACs / M_t"});
  for (int i = 1; i <= c.subnets; ++i) {
    t.add_row({std::to_string(i), Table::fmt_pct(sn.accuracy(data.test, i)),
               Table::fmt_pct(sn.mac_fraction(i))});
  }
  t.print("\nResults:");

  if (!save_network(sn.network(), out)) {
    LOG_ERROR << "train: failed to write " << out;
    return 1;
  }
  std::printf("\nmodel saved to %s\n", out.c_str());
  return 0;
}

/// Load flow shared by eval/info/latency. Returns nonzero on failure.
int load_model(const CliArgs& args, const CommonConfig& c, Network& net) {
  const std::string in = args.get("in");
  if (in.empty()) {
    LOG_ERROR << "--in PATH is required";
    return 2;
  }
  net = build(c, c.expansion);
  try {
    if (!load_network(net, in)) {
      LOG_ERROR << "failed to read " << in;
      return 1;
    }
  } catch (const std::exception& e) {
    LOG_ERROR << "load failed: " << e.what()
              << " (the --model/--width/--expansion flags must match the "
                 "values used at training time)";
    return 1;
  }
  return 0;
}

/// Parse --precision; when the flag is absent, fall back to the
/// STEPPING_PRECISION environment variable (fp32 when that is unset too).
bool cli_precision(const CliArgs& args, quant::Precision* out) {
  if (!args.has("precision")) {
    *out = quant::precision_from_env();
    return true;
  }
  const std::string s = args.get("precision", "fp32");
  if (!quant::parse_precision(s, out)) {
    LOG_ERROR << "--precision must be fp32, int8 or auto (got \"" << s << "\")";
    return false;
  }
  return true;
}

int cmd_eval(const CliArgs& args) {
  const CommonConfig c = common_config(args);
  Network net;
  if (const int rc = load_model(args, c, net)) return rc;
  quant::Precision precision = quant::Precision::kFp32;
  if (!cli_precision(args, &precision)) return 2;
  // Same generator call as training (the per-class counts position the RNG
  // stream, so the test set only matches train-time when they agree).
  const DataSplit data =
      make_data(c, static_cast<int>(args.get_int("train-per-class", 100)), 30);

  if (precision == quant::Precision::kFp32) {
    Table t({"subnet", "test acc", "MACs"});
    for (int i = 1; i <= c.subnets; ++i) {
      const double acc = dataset_accuracy(
          data.test, 64, [&](const Tensor& x, const std::vector<int>& y) {
            return eval_batch(net, x, y, i);
          });
      t.add_row({std::to_string(i), Table::fmt_pct(acc),
                 std::to_string(subnet_macs(net, i))});
    }
    t.print("Per-subnet evaluation (synthetic test set):");
    return 0;
  }

  // Int8 comparison: calibrate activation ranges on a train slice, then
  // score every subnet level in both precisions side by side.
  const int calib_n = std::min(data.train.size(), 256);
  Tensor calib_x;
  std::vector<int> calib_y;
  data.train.batch(0, calib_n, calib_x, calib_y);
  const auto table = calibrate_int8(net, calib_x, 64, c.subnets);
  std::printf("calibrated %zu (layer, level) ranges on %d train images\n",
              table->size(), calib_n);

  Table t({"subnet", "fp32 acc", "int8 acc", "delta pp", "MACs"});
  for (int i = 1; i <= c.subnets; ++i) {
    const double fp32_acc = dataset_accuracy(
        data.test, 64, [&](const Tensor& x, const std::vector<int>& y) {
          return eval_batch(net, x, y, i);
        });
    SubnetContext ctx;
    ctx.subnet_id = i;
    ctx.num_subnets = c.subnets;
    ctx.precision = quant::Precision::kInt8;
    ctx.calibration = table.get();
    const double int8_acc = dataset_accuracy(
        data.test, 64, [&](const Tensor& x, const std::vector<int>& y) {
          return eval_batch(net, x, y, ctx);
        });
    t.add_row({std::to_string(i), Table::fmt_pct(fp32_acc),
               Table::fmt_pct(int8_acc),
               Table::fmt((fp32_acc - int8_acc) * 100.0, 2),
               std::to_string(subnet_macs(net, i))});
  }
  t.print("Per-subnet fp32 vs int8 evaluation (synthetic test set):");
  return 0;
}

int cmd_info(const CliArgs& args) {
  const CommonConfig c = common_config(args);
  Network net;
  if (const int rc = load_model(args, c, net)) return rc;
  const NetworkReport report = build_report(net, c.subnets);
  std::printf("%s", report.to_string().c_str());
  return 0;
}

int cmd_latency(const CliArgs& args) {
  const CommonConfig c = common_config(args);
  Network net;
  if (const int rc = load_model(args, c, net)) return rc;

  const DeviceModel devices[] = {device_mcu(), device_mobile_cpu(),
                                 device_mobile_npu(),
                                 calibrate_device(net, c.subnets)};
  Table t({"device", "s1 ms", "s2 ms", "s3 ms", "s4 ms"});
  for (const DeviceModel& dev : devices) {
    const auto lat = subnet_latencies_ms(net, c.subnets, dev);
    std::vector<std::string> row = {dev.name};
    for (const double ms : lat) row.push_back(Table::fmt(ms, 3));
    row.resize(5, "-");
    t.add_row(row);
  }
  t.print("Estimated per-subnet latency:");

  const double deadline = args.get_double("deadline-ms", 0.0);
  if (deadline > 0.0) {
    const DeviceModel host = calibrate_device(net, c.subnets);
    const int best = largest_subnet_within(net, c.subnets, host, deadline);
    if (best == 0) {
      std::printf("\nno subnet meets %.3f ms on this host\n", deadline);
    } else {
      std::printf("\nlargest subnet within %.3f ms on this host: subnet %d\n",
                  deadline, best);
    }
  }
  return 0;
}

// SIGINT routing for `serve`: the handler only requests the accept loop to
// exit; counters are dumped by the normal post-run() path.
serve::TcpServer* g_tcp_server = nullptr;

void handle_sigint(int) {
  if (g_tcp_server != nullptr) g_tcp_server->stop();
}

int cmd_serve(const CliArgs& args) {
  const CommonConfig c = common_config(args);
  Network net;
  if (const int rc = load_model(args, c, net)) return rc;

  serve::ServeConfig cfg;
  cfg.max_subnet = c.subnets;
  cfg.num_workers = static_cast<int>(args.get_int("workers", 0));
  cfg.max_batch = static_cast<int>(args.get_int("batch", 4));
  cfg.confidence_threshold = args.get_double("confidence", 0.0);
  cfg.default_mac_budget = args.get_int("mac-budget", 0);
  cfg.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  cfg.reuse = !args.has("no-reuse");
  cfg.slo_objective = args.get_double("slo-objective", 0.99);
  if (args.has("reform")) {
    const std::string r = args.get("reform", "on");
    if (r != "on" && r != "off") {
      LOG_ERROR << "--reform must be on or off (got \"" << r << "\")";
      return 2;
    }
    cfg.reform = r == "on" ? 1 : 0;
  }
  if (args.has("admit")) {
    const std::string a = args.get("admit", "off");
    if (!serve::parse_admit_policy(a, &cfg.admit)) {
      LOG_ERROR << "--admit must be off, reject or degrade (got \"" << a
                << "\")";
      return 2;
    }
  }
  cfg.device = calibrate_device(net, c.subnets);
  if (!cli_precision(args, &cfg.precision)) return 2;
  if (cfg.precision != quant::Precision::kFp32) {
    // Calibrate on real (synthetic-train) data rather than the server's
    // random-input fallback: activation ranges then match what inference
    // actually sees.
    const DataSplit data = make_data(
        c, static_cast<int>(args.get_int("train-per-class", 100)), 30);
    const int calib_n = std::min(data.train.size(), 256);
    Tensor calib_x;
    std::vector<int> calib_y;
    data.train.batch(0, calib_n, calib_x, calib_y);
    cfg.calibration = calibrate_int8(net, calib_x, 64, c.subnets);
  }

  serve::Server server(net, cfg);
  serve::TcpServer tcp(server, static_cast<int>(args.get_int("port", 0)));
  g_tcp_server = &tcp;
  std::signal(SIGINT, handle_sigint);
  std::printf(
      "serving %s on 127.0.0.1:%d (%d workers, batch %d, %s, %s, reform %s, "
      "admit %s)\n",
      args.get("in").c_str(), tcp.port(), server.config().num_workers,
      server.config().max_batch,
      cfg.reuse ? "incremental reuse" : "no-reuse baseline",
      quant::precision_name(cfg.precision),
      server.config().reform != 0 ? "on" : "off",
      serve::admit_policy_name(server.config().admit));
  std::fflush(stdout);

  // Optional periodic metrics dump. The dumper sleeps on a condition
  // variable so shutdown never waits out a full period. Histogram stats in
  // each dump are windowed to the period just elapsed (current-load
  // p50/p95/p99, not lifetime aggregates); the final dump after shutdown
  // stays cumulative.
  const long dump_sec = args.get_int("metrics-dump-sec", 0);
  std::mutex dump_mu;
  std::condition_variable dump_cv;
  bool dump_stop = false;
  // Shared with the final flush below: whatever accumulated since the last
  // periodic dump is printed on shutdown instead of being discarded (the
  // dumper thread is joined before the flush, so no concurrent use).
  obs::Registry::Window window;
  std::thread dumper;
  if (dump_sec > 0) {
    dumper = std::thread([&] {
      std::unique_lock<std::mutex> lock(dump_mu);
      for (;;) {
        if (dump_cv.wait_for(lock, std::chrono::seconds(dump_sec),
                             [&] { return dump_stop; })) {
          return;
        }
        std::printf("metrics %s\n",
                    server.metrics_json_windowed(window).c_str());
        std::fflush(stdout);
      }
    });
  }

  tcp.run();  // returns on SIGINT or a kShutdown frame
  g_tcp_server = nullptr;
  if (dumper.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dump_mu);
      dump_stop = true;
    }
    dump_cv.notify_all();
    dumper.join();
  }
  server.shutdown();
  if (dump_sec > 0) {
    // Flush the last partial window before the cumulative snapshot.
    std::printf("metrics %s\n", server.metrics_json_windowed(window).c_str());
  }
  std::printf("%s", server.counters().to_string().c_str());
  std::printf("%s\n", server.slo_summary().c_str());
  std::printf("%s\n", server.flight_summary().c_str());
  std::printf("metrics %s\n", server.metrics_json().c_str());

  const std::string pm_path = args.get("postmortem-dump", "");
  if (!pm_path.empty()) {
    const std::string json = server.postmortems_json();
    std::FILE* f = std::fopen(pm_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serve: cannot write postmortem dump to %s\n",
                   pm_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("postmortems written to %s\n", pm_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> known = {
      "model",   "classes",        "expansion",       "width",
      "subnets", "budgets",        "out",             "epochs",
      "in",      "distill-epochs", "train-per-class", "seed",
      "deadline-ms", "port",       "workers",         "batch",
      "confidence",  "mac-budget", "no-reuse",        "metrics-dump-sec",
      "precision",   "slo-objective", "postmortem-dump",
      "reform",      "admit"};
  CliArgs args(argc, argv, known);
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "%s\n", e.c_str());
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string cmd = args.positional().front();
  if (cmd == "train") return cmd_train(args);
  if (cmd == "eval") return cmd_eval(args);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "latency") return cmd_latency(args);
  if (cmd == "serve") return cmd_serve(args);
  std::fprintf(stderr, "unknown command: %s\n%s", cmd.c_str(), kUsage);
  return 2;
}
