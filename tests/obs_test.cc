#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace stepping::obs {
namespace {

TEST(ObsCounter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAddMax) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.max_of(5);
  EXPECT_EQ(g.value(), 7);  // lower value never lowers a high-water mark
  g.max_of(99);
  EXPECT_EQ(g.value(), 99);
}

TEST(ObsHistogram, BucketBoundsGrowLogScale) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), Histogram::kFirstBound);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    const double ratio =
        Histogram::bucket_bound(i) / Histogram::bucket_bound(i - 1);
    EXPECT_NEAR(ratio, 1.189207, 1e-5) << "bucket " << i;
  }
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(ObsHistogram, SingleSampleQuantileWithinItsBucket) {
  Histogram h;
  h.observe(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  // Every quantile of a one-sample histogram lies inside the bucket that
  // holds the sample (~19% wide), and quantiles stay monotone in q.
  double prev = 0.0;
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_NEAR(v, 5.0, 1.0) << "q=" << q;
    prev = v;
  }
}

TEST(ObsHistogram, NonPositiveSamplesLandInFirstBucket) {
  Histogram h;
  h.observe(0.0);
  h.observe(-3.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(1.0), Histogram::kFirstBound);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
}

TEST(ObsHistogram, QuantilesOfUniformGridWithinBucketResolution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) / 100.0);
  // Samples span 0.01..10; the true p50 is ~5, p95 ~9.5, p99 ~9.9.
  EXPECT_NEAR(h.quantile(0.50), 5.0, 5.0 * 0.25);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 9.5 * 0.25);
  EXPECT_NEAR(h.quantile(0.99), 9.9, 9.9 * 0.25);
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(ObsHistogram, OverflowBucketCatchesHugeValues) {
  Histogram h;
  h.observe(1e12);  // far beyond the last finite bound
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST(ObsHistogram, ConcurrentObserveLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8, kPer = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (int i = 0; i < kPer; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPer);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsHistogram, WindowedQuantilesTrackCurrentLoadAcrossPhases) {
  // Phase 1: fast service (~1 ms). Phase 2: slow service (~100 ms). The
  // cumulative quantile is dominated by phase 1's 10x sample count, but a
  // window based on a snapshot taken between the phases must report phase
  // 2's latency only.
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.observe(1.0);
  const Histogram::Snapshot between = h.snapshot();
  for (int i = 0; i < 1000; ++i) h.observe(100.0);

  EXPECT_NEAR(h.quantile(0.50), 1.0, 1.0 * 0.25);  // lifetime: still fast
  EXPECT_EQ(h.count_since(between), 1000u);
  EXPECT_DOUBLE_EQ(h.sum_since(between), 100.0 * 1000);
  EXPECT_NEAR(h.quantile_since(between, 0.50), 100.0, 100.0 * 0.25);
  EXPECT_NEAR(h.quantile_since(between, 0.99), 100.0, 100.0 * 0.25);

  // The zero baseline reproduces the cumulative view; an empty window
  // (snapshot taken after the last observation) reports zeros.
  EXPECT_DOUBLE_EQ(h.quantile_since(Histogram::Snapshot{}, 0.50),
                   h.quantile(0.50));
  const Histogram::Snapshot now = h.snapshot();
  EXPECT_EQ(h.count_since(now), 0u);
  EXPECT_DOUBLE_EQ(h.quantile_since(now, 0.95), 0.0);
}

TEST(ObsRegistry, WindowedJsonAdvancesPerCall) {
  Registry r;
  r.counter("req_total").inc(5);
  Histogram& h = r.histogram("lat_ms");
  Registry::Window w;

  for (int i = 0; i < 100; ++i) h.observe(1.0);
  const std::string j1 = r.to_json_windowed(w);
  // First call with a fresh window == since process start.
  EXPECT_NE(j1.find("\"lat_ms\":{\"count\":100"), std::string::npos);
  EXPECT_NE(j1.find("\"count_total\":100"), std::string::npos);
  EXPECT_NE(j1.find("\"req_total\":5"), std::string::npos);  // cumulative

  for (int i = 0; i < 50; ++i) h.observe(100.0);
  const std::string j2 = r.to_json_windowed(w);
  // Second call sees only the 50 slow observations; the windowed p50
  // reflects the new load level, not the lifetime mix.
  EXPECT_NE(j2.find("\"lat_ms\":{\"count\":50"), std::string::npos);
  EXPECT_NE(j2.find("\"count_total\":150"), std::string::npos);
  const std::size_t p50_pos = j2.find("\"p50\":");
  ASSERT_NE(p50_pos, std::string::npos);
  const double p50 = std::stod(j2.substr(p50_pos + 6));
  EXPECT_NEAR(p50, 100.0, 100.0 * 0.25);

  // A drained window reports an empty histogram but keeps the totals.
  const std::string j3 = r.to_json_windowed(w);
  EXPECT_NE(j3.find("\"lat_ms\":{\"count\":0,\"sum\":0,\"p50\":0"),
            std::string::npos);
  EXPECT_NE(j3.find("\"count_total\":150"), std::string::npos);
}

TEST(ObsRegistry, SameNameReturnsSameHandle) {
  Registry r;
  Counter& a = r.counter("x_total");
  a.inc(3);
  EXPECT_EQ(r.counter("x_total").value(), 3u);
  EXPECT_EQ(&r.counter("x_total"), &a);
}

TEST(ObsRegistry, TypeMismatchThrows) {
  Registry r;
  r.counter("metric");
  EXPECT_THROW(r.gauge("metric"), std::logic_error);
  EXPECT_THROW(r.histogram("metric"), std::logic_error);
}

TEST(ObsRegistry, JsonIsDeterministicAndOrdered) {
  Registry r;
  r.gauge("b_gauge").set(-5);
  r.counter("a_total").inc(7);
  r.histogram("c_ms").observe(2.0);
  const std::string j1 = r.to_json();
  const std::string j2 = r.to_json();
  EXPECT_EQ(j1, j2);  // identical values => identical text
  // Lexicographic ordering regardless of registration order.
  EXPECT_LT(j1.find("\"a_total\":7"), j1.find("\"b_gauge\":-5"));
  EXPECT_LT(j1.find("\"b_gauge\":-5"), j1.find("\"c_ms\""));
  EXPECT_NE(j1.find("\"count\":1"), std::string::npos);
  EXPECT_NE(j1.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(j1.front(), '{');
  EXPECT_EQ(j1.back(), '}');
}

TEST(ObsRegistry, PrometheusExposition) {
  Registry r;
  r.counter("req_total").inc(4);
  r.gauge("depth").set(2);
  Histogram& h = r.histogram("lat_ms");
  h.observe(1.0);
  h.observe(2.0);
  const std::string text = r.to_prometheus();
  EXPECT_NE(text.find("# TYPE req_total counter\nreq_total 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\ndepth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 3"), std::string::npos);
}

TEST(ObsRegistry, InfoMetricRendersLabelsInBothExpositions) {
  Registry r;
  r.set_info("build_info", {{"version", "0.8.0"}, {"git_sha", "abc1234"}});
  const std::string text = r.to_prometheus();
  // The Prometheus info idiom: a constant-1 gauge with identity labels,
  // rendered in sorted label order.
  EXPECT_NE(
      text.find("# TYPE build_info gauge\n"
                "build_info{git_sha=\"abc1234\",version=\"0.8.0\"} 1\n"),
      std::string::npos)
      << text;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"build_info\":{\"git_sha\":\"abc1234\","
                      "\"version\":\"0.8.0\"}"),
            std::string::npos)
      << json;
}

TEST(ObsRegistry, InfoMetricReplacesLabelsAndEscapesQuotes) {
  Registry r;
  r.set_info("info", {{"a", "one"}});
  r.set_info("info", {{"isa", "x\"y\\z"}});  // replaces, not merges
  const std::string text = r.to_prometheus();
  EXPECT_EQ(text.find("a=\"one\""), std::string::npos);
  EXPECT_NE(text.find("info{isa=\"x\\\"y\\\\z\"} 1"), std::string::npos)
      << text;
}

TEST(ObsRegistry, InfoMetricNameCollisionWithOtherKindThrows) {
  Registry r;
  r.counter("taken").inc();
  EXPECT_THROW(r.set_info("taken", {{"k", "v"}}), std::logic_error);
  r.set_info("ident", {{"k", "v"}});
  EXPECT_THROW(r.gauge("ident"), std::logic_error);
}

TEST(ObsRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace stepping::obs
