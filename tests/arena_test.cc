// Per-thread scratch arena tests (ISSUE 4): scoped reuse, nested LIFO
// rewind, high-water consolidation, per-thread isolation, and the
// zero-allocations-per-call guarantee for conv workspaces.
#include "util/arena.h"

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace stepping {
namespace {

TEST(Arena, ScopeAllocationsAreAlignedAndWritable) {
  Arena arena;
  ArenaScope scope(arena);
  for (const std::size_t bytes : {1u, 7u, 64u, 1000u, 4096u}) {
    void* p = scope.alloc(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kAlign, 0u);
    std::memset(p, 0xAB, bytes);  // must be writable end to end
  }
  float* f = scope.alloc_floats(33);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f) % Arena::kAlign, 0u);
  f[32] = 1.0f;
}

TEST(Arena, ReusesMemoryAcrossScopesWithoutRegrowing) {
  Arena arena;
  {
    ArenaScope warm(arena);
    warm.alloc(100 * 1024);
  }
  const std::uint64_t grows_after_warmup = arena.grow_count();
  const std::size_t cap = arena.capacity();
  for (int i = 0; i < 100; ++i) {
    ArenaScope scope(arena);
    void* p = scope.alloc(100 * 1024);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(arena.grow_count(), grows_after_warmup);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(Arena, NestedScopesRewindInLifoOrder) {
  Arena arena;
  ArenaScope outer(arena);
  float* a = outer.alloc_floats(16);
  a[0] = 1.0f;
  {
    ArenaScope inner(arena);
    float* b = inner.alloc_floats(16);
    b[0] = 2.0f;
    EXPECT_EQ(arena.depth(), 2);
  }
  // Inner memory is rewound; a new inner-scope allocation lands on the same
  // offset, and outer allocations survive untouched.
  {
    ArenaScope inner(arena);
    float* b2 = inner.alloc_floats(16);
    EXPECT_NE(b2, nullptr);
  }
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(arena.depth(), 1);
}

TEST(Arena, ConsolidatesOverflowChainToHighWaterBlock) {
  Arena arena;
  {
    ArenaScope scope(arena);
    // Force overflow past the initial block: many live allocations.
    for (int i = 0; i < 8; ++i) scope.alloc(256 * 1024);
  }
  // After the outermost scope closes the chain is merged: a follow-up scope
  // of the same footprint must not allocate.
  const std::uint64_t grows = arena.grow_count();
  EXPECT_GE(arena.high_water(), 8u * 256 * 1024);
  EXPECT_GE(arena.capacity(), arena.high_water());
  {
    ArenaScope scope(arena);
    for (int i = 0; i < 8; ++i) scope.alloc(256 * 1024);
  }
  EXPECT_EQ(arena.grow_count(), grows);
}

TEST(Arena, HighWaterTracksPeakLiveBytes) {
  Arena arena;
  {
    ArenaScope scope(arena);
    scope.alloc(1000);
  }
  const std::size_t after_small = arena.high_water();
  EXPECT_GE(after_small, 1000u);
  {
    ArenaScope scope(arena);
    scope.alloc(5000);
    scope.alloc(3000);
  }
  EXPECT_GE(arena.high_water(), 8000u);
  EXPECT_GE(arena.high_water(), after_small);
}

TEST(Arena, ThisThreadIsPerThread) {
  Arena* main_arena = &Arena::this_thread();
  Arena* worker_arena = nullptr;
  std::thread t([&] {
    worker_arena = &Arena::this_thread();
    ArenaScope scope;  // defaults to the worker's own arena
    scope.alloc(64);
  });
  t.join();
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(worker_arena, main_arena);
}

/// The conv workspace guarantee: after a warm-up call, repeated forward and
/// backward passes perform ZERO heap allocations for im2col/col2im/GEMM
/// workspaces — the arena's grow count stays flat.
TEST(Arena, ConvForwardBackwardReusesWorkspaceAfterWarmup) {
  Rng rng(7);
  Conv2d conv("c", 8, 3);
  IOSpec spec;
  spec.units = 4;
  spec.h = 12;
  spec.w = 12;
  spec.assignment = std::make_shared<Assignment>(4u, 1);
  conv.wire(spec, rng);
  Tensor x({2, 4, 12, 12});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;

  // Warm up: first call may grow the calling thread's arena.
  Tensor y = conv.forward(x, ctx);
  Tensor gy(y.shape());
  fill_normal(gy, 0.0f, 1.0f, rng);
  conv.backward(gy, ctx);

  Arena& arena = Arena::this_thread();
  const std::uint64_t grows = arena.grow_count();
  for (int i = 0; i < 10; ++i) {
    Tensor yy = conv.forward(x, ctx);
    conv.backward(gy, ctx);
  }
  EXPECT_EQ(arena.grow_count(), grows)
      << "conv workspaces must reuse arena memory, not allocate per call";
}

}  // namespace
}  // namespace stepping
