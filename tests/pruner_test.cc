#include <gtest/gtest.h>

#include "core/macs.h"
#include "core/pruner.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

Network small_net() {
  Network net;
  net.emplace<Conv2d>("c1", 4, 3);
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", 2);
  Rng rng(7);
  net.wire(1, 6, 6, rng);
  return net;
}

TEST(Pruner, ThresholdRemovesSmallWeights) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->weight().value.fill(1.0f);
  c1->weight().value[0] = 1e-7f;
  c1->weight().value[5] = -1e-7f;
  apply_magnitude_pruning(net, 1e-5f);
  EXPECT_EQ(c1->prune_mask()[0], 0);
  EXPECT_EQ(c1->prune_mask()[5], 0);
  EXPECT_EQ(c1->prune_mask()[1], 1);
}

TEST(Pruner, MasksAreNonPermanent) {
  // A pruned weight whose magnitude regrows is revived on the next pass —
  // the paper's "allow them to update in the following training iterations".
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->weight().value[3] = 1e-8f;
  apply_magnitude_pruning(net, 1e-5f);
  EXPECT_EQ(c1->prune_mask()[3], 0);
  c1->weight().value[3] = 0.5f;  // regrew
  apply_magnitude_pruning(net, 1e-5f);
  EXPECT_EQ(c1->prune_mask()[3], 1);
}

TEST(Pruner, PrunedFractionReflectsMasks) {
  Network net = small_net();
  for (MaskedLayer* m : net.masked_layers()) m->weight().value.fill(1.0f);
  apply_magnitude_pruning(net, 1e-5f);
  EXPECT_DOUBLE_EQ(pruned_fraction(net), 0.0);
  apply_magnitude_pruning(net, 10.0f);
  EXPECT_DOUBLE_EQ(pruned_fraction(net), 1.0);
}

TEST(Pruner, PrunedWeightsExcludedFromForward) {
  Network net = small_net();
  Tensor x({1, 1, 6, 6});
  Rng rng(8);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  const Tensor y_ref = net.forward(x, ctx);
  // Prune everything: logits reduce to head-bias applied to zero features...
  apply_magnitude_pruning(net, 1e9f);
  const Tensor y_pruned = net.forward(x, ctx);
  bool different = false;
  for (std::int64_t i = 0; i < y_ref.numel(); ++i) {
    if (y_ref[i] != y_pruned[i]) different = true;
  }
  EXPECT_TRUE(different);
  // With all weights masked the logits equal the head bias (zeros).
  for (std::int64_t i = 0; i < y_pruned.numel(); ++i) {
    EXPECT_EQ(y_pruned[i], net.masked_layers().back()->bias().value[i % 2]);
  }
}

TEST(Pruner, StructuredPruningMasksWholeRows) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  // Make unit 1's row tiny relative to the layer mean.
  for (int c = 0; c < c1->num_cols(); ++c) {
    c1->weight().value.at(1, c) = 1e-4f;
  }
  for (int c = 0; c < c1->num_cols(); ++c) {
    c1->weight().value.at(0, c) = 1.0f;
  }
  apply_structured_pruning(net, /*rel_threshold=*/0.5);
  for (int c = 0; c < c1->num_cols(); ++c) {
    EXPECT_EQ(c1->prune_mask()[static_cast<std::size_t>(c1->num_cols()) + c], 0);
    EXPECT_EQ(c1->prune_mask()[static_cast<std::size_t>(c)], 1);
  }
}

TEST(Pruner, StructuredPruningSkipsHead) {
  Network net = small_net();
  auto* head = net.masked_layers().back();
  head->weight().value.fill(1e-9f);  // tiny head rows
  apply_structured_pruning(net, 0.5);
  for (const auto keep : head->prune_mask()) EXPECT_EQ(keep, 1);
}

TEST(Pruner, StructuredPruningIsRevivableAcrossWorkflowIterations) {
  // Structured masks compose onto the current mask; revival happens at the
  // workflow level because each construction iteration re-derives the
  // unstructured mask from live magnitudes BEFORE the structured pass.
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  for (int c = 0; c < c1->num_cols(); ++c) c1->weight().value.at(1, c) = 1e-6f;
  apply_magnitude_pruning(net, 1e-7f);
  apply_structured_pruning(net, 0.5);
  EXPECT_EQ(c1->prune_mask()[static_cast<std::size_t>(c1->num_cols())], 0);
  // Row regrows -> the next iteration's pass pair revives it.
  for (int c = 0; c < c1->num_cols(); ++c) c1->weight().value.at(1, c) = 1.0f;
  apply_magnitude_pruning(net, 1e-7f);
  apply_structured_pruning(net, 0.5);
  EXPECT_EQ(c1->prune_mask()[static_cast<std::size_t>(c1->num_cols())], 1);
}

TEST(Pruner, ClearPruneMasksRestoresFullMacs) {
  Network net = small_net();
  const std::int64_t full = subnet_macs(net, 1);
  apply_magnitude_pruning(net, 1e9f);
  EXPECT_EQ(subnet_macs(net, 1), 0);
  net.clear_prune_masks();
  EXPECT_EQ(subnet_macs(net, 1), full);
}

}  // namespace
}  // namespace stepping
