#include <gtest/gtest.h>

#include <sstream>

#include "core/serialize.h"
#include "models/models.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

Network make_net(std::uint64_t seed = 7) {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15,
                 .seed = seed};
  return build_lenet3c1l(mc);
}

/// Give the network a non-trivial state: assignments, pruning, BN stats.
void scramble(Network& net) {
  Rng rng(3);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, rng.uniform_int(1, 4));
    }
    m->apply_magnitude_prune(0.03f);
  }
  // Touch BN running statistics via a training forward.
  Tensor x({4, 3, 32, 32});
  fill_normal(x, 0.5f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = 4;
  ctx.training = true;
  net.forward(x, ctx);
}

TEST(Serialize, RoundTripBitExactLogits) {
  Network a = make_net(7);
  scramble(a);
  std::stringstream buf;
  ASSERT_TRUE(save_network(a, buf));

  Network b = make_net(99);  // different init; same topology
  ASSERT_TRUE(load_network(b, buf));

  Rng rng(5);
  Tensor x({2, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  for (int sub = 1; sub <= 3; ++sub) {
    SubnetContext ctx;
    ctx.subnet_id = sub;
    const Tensor ya = a.forward(x, ctx);
    const Tensor yb = b.forward(x, ctx);
    for (std::int64_t i = 0; i < ya.numel(); ++i) {
      ASSERT_EQ(ya[i], yb[i]) << "subnet " << sub;
    }
  }
}

TEST(Serialize, RestoresAssignmentsAndMasks) {
  Network a = make_net(1);
  scramble(a);
  std::stringstream buf;
  ASSERT_TRUE(save_network(a, buf));
  Network b = make_net(2);
  ASSERT_TRUE(load_network(b, buf));

  const auto ma = a.body_layers();
  const auto mb = b.body_layers();
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i]->unit_subnet(), mb[i]->unit_subnet());
    EXPECT_EQ(ma[i]->prune_mask(), mb[i]->prune_mask());
  }
}

TEST(Serialize, RejectsGarbageMagic) {
  Network b = make_net();
  std::stringstream buf;
  buf << "definitely not a steppingnet file, padded to be long enough......";
  EXPECT_THROW(load_network(b, buf), std::runtime_error);
}

TEST(Serialize, RejectsTopologyMismatch) {
  Network a = make_net();
  std::stringstream buf;
  ASSERT_TRUE(save_network(a, buf));
  ModelConfig other{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network b = build_lenet5(other);  // different architecture
  EXPECT_THROW(load_network(b, buf), std::runtime_error);
}

TEST(Serialize, RejectsDifferentWidth) {
  Network a = make_net();
  std::stringstream buf;
  ASSERT_TRUE(save_network(a, buf));
  ModelConfig wide{.classes = 10, .expansion = 1.5, .width_mult = 0.3};
  Network b = build_lenet3c1l(wide);
  EXPECT_THROW(load_network(b, buf), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  Network a = make_net(11);
  scramble(a);
  const std::string path = ::testing::TempDir() + "/stepping_net_test.bin";
  ASSERT_TRUE(save_network(a, path));
  Network b = make_net(12);
  ASSERT_TRUE(load_network(b, path));
  Rng rng(6);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = 2;
  const Tensor ya = a.forward(x, ctx);
  const Tensor yb = b.forward(x, ctx);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Serialize, MissingFileReturnsFalse) {
  Network b = make_net();
  EXPECT_FALSE(load_network(b, "/nonexistent/path/model.bin"));
  EXPECT_FALSE(save_network(b, "/nonexistent/path/model.bin"));
}

}  // namespace
}  // namespace stepping
