#include <gtest/gtest.h>

#include <fstream>
#include <cmath>
#include <set>

#include "data/loader.h"
#include "data/ppm.h"
#include "data/synthetic.h"

namespace stepping {
namespace {

SynthConfig tiny_cfg() {
  SynthConfig cfg = synth_cifar10(/*train_per_class=*/10, /*test_per_class=*/4);
  return cfg;
}

TEST(Synthetic, ShapesAndCounts) {
  const DataSplit d = make_synthetic(tiny_cfg());
  EXPECT_EQ(d.train.size(), 100);
  EXPECT_EQ(d.test.size(), 40);
  EXPECT_EQ(d.train.channels(), 3);
  EXPECT_EQ(d.train.height(), 32);
  EXPECT_EQ(d.train.width(), 32);
  EXPECT_EQ(d.train.num_classes, 10);
}

TEST(Synthetic, DeterministicForSameSeed) {
  const DataSplit a = make_synthetic(tiny_cfg());
  const DataSplit b = make_synthetic(tiny_cfg());
  ASSERT_EQ(a.train.images.numel(), b.train.images.numel());
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsProduceDifferentData) {
  SynthConfig c1 = tiny_cfg(), c2 = tiny_cfg();
  c2.seed = 777;
  const DataSplit a = make_synthetic(c1);
  const DataSplit b = make_synthetic(c2);
  int diff = 0;
  for (std::int64_t i = 0; i < 100 && i < a.train.images.numel(); ++i) {
    if (a.train.images[i] != b.train.images[i]) ++diff;
  }
  EXPECT_GT(diff, 50);
}

TEST(Synthetic, LabelsInRange) {
  const DataSplit d = make_synthetic(tiny_cfg());
  for (const int y : d.train.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(Synthetic, AllClassesRepresented) {
  const DataSplit d = make_synthetic(tiny_cfg());
  std::set<int> seen(d.train.labels.begin(), d.train.labels.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Synthetic, LabelNoiseApproximatelyRespected) {
  SynthConfig cfg = tiny_cfg();
  cfg.train_per_class = 300;
  cfg.label_noise = 0.2;
  const DataSplit d = make_synthetic(cfg);
  // Without noise, sample i of class k has label k; count mismatches.
  int wrong = 0;
  int i = 0;
  for (int k = 0; k < cfg.num_classes; ++k) {
    for (int s = 0; s < cfg.train_per_class; ++s, ++i) {
      if (d.train.labels[static_cast<std::size_t>(i)] != k) ++wrong;
    }
  }
  // Uniform label noise keeps the true class 1/num_classes of the time.
  const double expect = 0.2 * (1.0 - 1.0 / cfg.num_classes);
  EXPECT_NEAR(static_cast<double>(wrong) / d.train.size(), expect, 0.03);
}

TEST(Synthetic, Cifar100PresetHas100Classes) {
  SynthConfig cfg = synth_cifar100(/*train_per_class=*/3, /*test_per_class=*/1);
  const DataSplit d = make_synthetic(cfg);
  EXPECT_EQ(d.train.num_classes, 100);
  EXPECT_EQ(d.train.size(), 300);
}

TEST(Synthetic, SignalPresentAboveNoise) {
  // Same-class samples must correlate more than cross-class ones on average
  // (otherwise the task would be unlearnable).
  SynthConfig cfg = tiny_cfg();
  cfg.num_classes = 2;
  cfg.train_per_class = 40;
  cfg.label_noise = 0.0;
  cfg.max_shift = 0;  // alignment makes correlation meaningful
  const DataSplit d = make_synthetic(cfg);
  const std::int64_t img = d.train.images.numel() / d.train.size();
  auto dot = [&](int a, int b) {
    const float* pa = d.train.images.data() + a * img;
    const float* pb = d.train.images.data() + b * img;
    double s = 0.0;
    for (std::int64_t i = 0; i < img; ++i) s += static_cast<double>(pa[i]) * pb[i];
    return s;
  };
  double same = 0.0, cross = 0.0;
  int n_same = 0, n_cross = 0;
  for (int a = 0; a < 40; a += 5) {
    for (int b = a + 1; b < 40; b += 5) {
      same += dot(a, b);
      ++n_same;
    }
    for (int b = 40; b < 80; b += 5) {
      cross += dot(a, b);
      ++n_cross;
    }
  }
  EXPECT_GT(same / n_same, cross / n_cross);
}

TEST(DatasetTest, BatchExtraction) {
  const DataSplit d = make_synthetic(tiny_cfg());
  Tensor x;
  std::vector<int> y;
  d.train.batch(10, 5, x, y);
  EXPECT_EQ(x.shape(), (std::vector<int>{5, 3, 32, 32}));
  EXPECT_EQ(y.size(), 5u);
  EXPECT_EQ(y[0], d.train.labels[10]);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(x[i], d.train.images[10 * 3 * 32 * 32 + i]);
  }
}

TEST(DatasetTest, SubsetCopiesSelectedRows) {
  const DataSplit d = make_synthetic(tiny_cfg());
  const Dataset s = d.train.subset({3, 7, 11});
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.labels[1], d.train.labels[7]);
  const std::int64_t img = s.images.numel() / 3;
  for (std::int64_t i = 0; i < img; ++i) {
    EXPECT_EQ(s.images[img + i], d.train.images[7 * img + i]);
  }
}

TEST(DataLoaderTest, CoversEverySampleOncePerEpoch) {
  const DataSplit d = make_synthetic(tiny_cfg());
  LoaderConfig lc;
  lc.batch_size = 7;
  DataLoader loader(d.train, lc, Rng(1));
  std::multiset<int> labels_seen;
  const int bpe = loader.batches_per_epoch();
  EXPECT_EQ(bpe, (100 + 6) / 7);
  int total = 0;
  for (int b = 0; b < bpe; ++b) {
    const auto batch = loader.next();
    total += static_cast<int>(batch.y.size());
    for (const int y : batch.y) labels_seen.insert(y);
  }
  EXPECT_EQ(total, 100);
  std::multiset<int> expected(d.train.labels.begin(), d.train.labels.end());
  EXPECT_EQ(labels_seen, expected);
}

TEST(DataLoaderTest, WrapsAcrossEpochsAndReshuffles) {
  const DataSplit d = make_synthetic(tiny_cfg());
  LoaderConfig lc;
  lc.batch_size = 100;
  DataLoader loader(d.train, lc, Rng(2));
  const auto e1 = loader.next();
  const auto e2 = loader.next();
  EXPECT_EQ(loader.epoch(), 1);
  // Same multiset of labels, different order with overwhelming probability.
  bool same_order = true;
  for (std::size_t i = 0; i < e1.y.size(); ++i) {
    if (e1.y[i] != e2.y[i]) {
      same_order = false;
      break;
    }
  }
  EXPECT_FALSE(same_order);
}

TEST(DataLoaderTest, AugmentationPreservesShapeAndScale) {
  const DataSplit d = make_synthetic(tiny_cfg());
  LoaderConfig lc;
  lc.batch_size = 20;
  lc.augment = true;
  lc.pad_shift = 2;
  DataLoader loader(d.train, lc, Rng(3));
  const auto batch = loader.next();
  EXPECT_EQ(batch.x.shape(), (std::vector<int>{20, 3, 32, 32}));
  // Augmented images stay in a sane numeric range.
  for (std::int64_t i = 0; i < batch.x.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(batch.x[i]));
  }
}

TEST(DataLoaderTest, DeterministicGivenSeed) {
  const DataSplit d = make_synthetic(tiny_cfg());
  LoaderConfig lc;
  lc.batch_size = 16;
  DataLoader a(d.train, lc, Rng(9));
  DataLoader b(d.train, lc, Rng(9));
  for (int i = 0; i < 5; ++i) {
    const auto ba = a.next();
    const auto bb = b.next();
    EXPECT_EQ(ba.y, bb.y);
  }
}

TEST(Ppm, WritesValidHeaderAndSize) {
  const DataSplit d = make_synthetic(tiny_cfg());
  const std::string path = ::testing::TempDir() + "/stepping_sample.ppm";
  ASSERT_TRUE(write_ppm(d.train, 0, path));
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  f >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 32);
  EXPECT_EQ(h, 32);
  EXPECT_EQ(maxval, 255);
  f.get();  // single whitespace after header
  std::vector<char> body(32 * 32 * 3);
  f.read(body.data(), static_cast<std::streamsize>(body.size()));
  EXPECT_EQ(f.gcount(), static_cast<std::streamsize>(body.size()));
}

TEST(Ppm, RejectsOutOfRangeIndex) {
  const DataSplit d = make_synthetic(tiny_cfg());
  EXPECT_FALSE(write_ppm(d.train, -1, ::testing::TempDir() + "/x.ppm"));
  EXPECT_FALSE(write_ppm(d.train, d.train.size(), ::testing::TempDir() + "/x.ppm"));
}

TEST(Ppm, GridGeometry) {
  const DataSplit d = make_synthetic(tiny_cfg());
  const std::string path = ::testing::TempDir() + "/stepping_grid.ppm";
  ASSERT_TRUE(write_ppm_grid(d.train, 2, 3, path));
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0;
  f >> magic >> w >> h;
  EXPECT_EQ(w, 3 * 33 - 1);
  EXPECT_EQ(h, 2 * 33 - 1);
  EXPECT_FALSE(write_ppm_grid(d.train, 100, 100, path));  // too many cells
}

TEST(DatasetAccuracyTest, CountsCorrectFraction) {
  Dataset d;
  d.images = Tensor({4, 1, 2, 2});
  d.labels = {0, 1, 0, 1};
  d.num_classes = 2;
  // "Model" that always predicts class 0.
  const double acc =
      dataset_accuracy(d, 3, [](const Tensor&, const std::vector<int>& y) {
        int c = 0;
        for (const int v : y) {
          if (v == 0) ++c;
        }
        return c;
      });
  EXPECT_DOUBLE_EQ(acc, 0.5);
}

}  // namespace
}  // namespace stepping
