#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/sgd.h"
#include "nn/simple_layers.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

Network tiny_net(int classes = 4) {
  Network net;
  net.emplace<Conv2d>("c1", 6, 3);
  net.emplace<BatchNorm2d>("bn1");
  net.emplace<ReLU>("r1");
  net.emplace<MaxPool2d>("p1", 2);
  net.emplace<Conv2d>("c2", 8, 3);
  net.emplace<ReLU>("r2");
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", classes);
  Rng rng(5);
  net.wire(3, 8, 8, rng);
  return net;
}

TEST(Network, WireResolvesShapesAndHead) {
  Network net = tiny_net();
  const auto masked = net.masked_layers();
  ASSERT_EQ(masked.size(), 3u);
  EXPECT_FALSE(masked[0]->is_head());
  EXPECT_FALSE(masked[1]->is_head());
  EXPECT_TRUE(masked[2]->is_head());
  EXPECT_EQ(net.body_layers().size(), 2u);
  EXPECT_EQ(net.num_classes(), 4);
}

TEST(Network, WireWithoutMaskedLayerThrows) {
  Network net;
  net.emplace<ReLU>("r");
  Rng rng(1);
  EXPECT_THROW(net.wire(1, 4, 4, rng), std::logic_error);
}

TEST(Network, ForwardProducesLogits) {
  Network net = tiny_net();
  Tensor x({2, 3, 8, 8});
  Rng rng(7);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  const Tensor logits = net.forward(x, ctx);
  EXPECT_EQ(logits.shape(), (std::vector<int>{2, 4}));
}

TEST(Network, ConsumerOfChainsBodyLayers) {
  Network net = tiny_net();
  const auto masked = net.masked_layers();
  EXPECT_EQ(net.consumer_of(masked[0]), masked[1]);
  EXPECT_EQ(net.consumer_of(masked[1]), masked[2]);
  EXPECT_EQ(net.consumer_of(masked[2]), nullptr);
}

TEST(Network, ParamsCollectsAllTrainables) {
  Network net = tiny_net();
  // conv(w,b) + bn(gamma,beta) + conv(w,b) + fc(w,b) = 8 params.
  EXPECT_EQ(net.params().size(), 8u);
}

TEST(Network, TrainingReducesLoss) {
  Network net = tiny_net(3);
  Rng rng(11);
  Tensor x({12, 3, 8, 8});
  fill_normal(x, 0.0f, 1.0f, rng);
  std::vector<int> y(12);
  for (int i = 0; i < 12; ++i) y[static_cast<std::size_t>(i)] = i % 3;
  Sgd sgd({.lr = 0.05, .momentum = 0.9, .weight_decay = 0.0});
  SubnetContext ctx;
  ctx.training = true;
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 30; ++step) {
    const BatchStats s = train_batch(net, sgd, x, y, ctx);
    if (step == 0) first = s.loss;
    last = s.loss;
  }
  EXPECT_LT(last, first * 0.5);  // memorizes a fixed batch quickly
}

TEST(Network, CloneIsIndependentDeepCopy) {
  Network net = tiny_net();
  Tensor x({1, 3, 8, 8});
  Rng rng(13);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  const Tensor y1 = net.forward(x, ctx);

  Network copy = net.clone();
  const Tensor y2 = copy.forward(x, ctx);
  ASSERT_EQ(y1.shape(), y2.shape());
  for (std::int64_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);

  // Mutating the copy's weights must not affect the original.
  copy.masked_layers()[0]->weight().value.fill(0.0f);
  const Tensor y3 = net.forward(x, ctx);
  for (std::int64_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y3[i]);
}

TEST(Network, CloneCopiesSubnetAssignments) {
  Network net = tiny_net();
  net.body_layers()[0]->set_unit_subnet(2, 3);
  Network copy = net.clone();
  EXPECT_EQ(copy.body_layers()[0]->unit_subnet()[2], 3);
  // And the copy's assignments are its own storage.
  copy.body_layers()[0]->set_unit_subnet(2, 1);
  EXPECT_EQ(net.body_layers()[0]->unit_subnet()[2], 3);
}

TEST(Network, CloneAssignmentMutationPropagatesToConsumers) {
  // The consumer's in_subnet view must reflect the clone's own assignment,
  // not the original's.
  Network net = tiny_net();
  Network copy = net.clone();
  copy.body_layers()[0]->set_unit_subnet(0, 2);
  EXPECT_EQ(copy.body_layers()[1]->in_subnet()[0], 2);
  EXPECT_EQ(net.body_layers()[1]->in_subnet()[0], 1);
}

TEST(Network, SubnetMaskingZeroesInactiveChannelsEverywhere) {
  Network net = tiny_net();
  auto* c1 = net.body_layers()[0];
  c1->set_unit_subnet(1, 2);
  c1->set_unit_subnet(4, 2);
  Tensor x({2, 3, 8, 8});
  Rng rng(17);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = 1;
  ctx.training = true;  // exercises BN batch-stat path too
  net.forward(x, ctx);
  // Check the conv's own output via a fresh forward of the first 3 layers.
  Tensor cur = x;
  for (int li = 0; li < 3; ++li) {
    cur = net.layer_ptrs()[static_cast<std::size_t>(li)]->forward(cur, ctx);
  }
  for (int i = 0; i < 2; ++i) {
    for (int h = 0; h < 8; ++h) {
      for (int w = 0; w < 8; ++w) {
        EXPECT_EQ(cur.at(i, 1, h, w), 0.0f);
        EXPECT_EQ(cur.at(i, 4, h, w), 0.0f);
      }
    }
  }
}

TEST(Loss, CrossEntropyMatchesManualComputation) {
  Tensor logits({1, 3}, {1.0f, 2.0f, 3.0f});
  const LossOutput lo = softmax_cross_entropy(logits, {2});
  // p = softmax([1,2,3]); loss = -log p[2]
  const double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(lo.loss, -std::log(std::exp(3.0) / denom), 1e-5);
  EXPECT_EQ(lo.correct, 1);
}

TEST(Loss, CrossEntropyGradientSumsToZeroPerRow) {
  Rng rng(19);
  Tensor logits({4, 5});
  fill_normal(logits, 0.0f, 2.0f, rng);
  const LossOutput lo = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (int i = 0; i < 4; ++i) {
    double s = 0.0;
    for (int j = 0; j < 5; ++j) s += lo.grad_logits.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, CrossEntropyGradientMatchesNumeric) {
  Rng rng(23);
  Tensor logits({2, 4});
  fill_normal(logits, 0.0f, 1.0f, rng);
  const std::vector<int> labels = {1, 3};
  const LossOutput lo = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double num = (softmax_cross_entropy(lp, labels).loss -
                        softmax_cross_entropy(lm, labels).loss) /
                       (2.0 * eps);
    EXPECT_NEAR(lo.grad_logits[i], num, 1e-3);
  }
}

TEST(Loss, DistillationReducesToCrossEntropyAtGammaOne) {
  Rng rng(29);
  Tensor logits({3, 4}), teacher({3, 4});
  fill_normal(logits, 0.0f, 1.0f, rng);
  softmax_rows(logits, teacher);  // arbitrary valid distribution
  const std::vector<int> labels = {0, 1, 2};
  const LossOutput ce = softmax_cross_entropy(logits, labels);
  const LossOutput kd = distillation_loss(logits, labels, teacher, 1.0);
  EXPECT_NEAR(kd.loss, ce.loss, 1e-5);
  for (std::int64_t i = 0; i < ce.grad_logits.numel(); ++i) {
    EXPECT_NEAR(kd.grad_logits[i], ce.grad_logits[i], 1e-6f);
  }
}

TEST(Loss, DistillationKlZeroWhenStudentMatchesTeacher) {
  Rng rng(31);
  Tensor logits({2, 5});
  fill_normal(logits, 0.0f, 1.0f, rng);
  Tensor teacher;
  softmax_rows(logits, teacher);
  const LossOutput kd = distillation_loss(logits, {0, 1}, teacher, 0.0);
  EXPECT_NEAR(kd.loss, 0.0, 1e-5);
  for (std::int64_t i = 0; i < kd.grad_logits.numel(); ++i) {
    EXPECT_NEAR(kd.grad_logits[i], 0.0f, 1e-6f);
  }
}

TEST(Loss, DistillationGradientMatchesNumeric) {
  Rng rng(37);
  Tensor logits({2, 3}), t_logits({2, 3});
  fill_normal(logits, 0.0f, 1.0f, rng);
  fill_normal(t_logits, 0.0f, 1.0f, rng);
  Tensor teacher;
  softmax_rows(t_logits, teacher);
  const std::vector<int> labels = {2, 0};
  const double gamma = 0.4;
  const LossOutput lo = distillation_loss(logits, labels, teacher, gamma);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double num = (distillation_loss(lp, labels, teacher, gamma).loss -
                        distillation_loss(lm, labels, teacher, gamma).loss) /
                       (2.0 * eps);
    EXPECT_NEAR(lo.grad_logits[i], num, 1e-3);
  }
}

TEST(SgdTest, PlainStepMovesAgainstGradient) {
  Param p;
  p.value = Tensor({2}, {1.0f, -1.0f});
  p.grad = Tensor({2}, {0.5f, -0.5f});
  p.apply_decay = false;
  Sgd sgd({.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  sgd.step({&p});
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
  EXPECT_NEAR(p.value[1], -0.95f, 1e-6f);
}

TEST(SgdTest, MomentumAccumulates) {
  Param p;
  p.value = Tensor({1}, {0.0f});
  p.apply_decay = false;
  Sgd sgd({.lr = 1.0, .momentum = 0.5, .weight_decay = 0.0});
  p.grad = Tensor({1}, {1.0f});
  sgd.step({&p});  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6f);
  p.grad = Tensor({1}, {0.0f});
  sgd.step({&p});  // v=0.5, w=-1.5
  EXPECT_NEAR(p.value[0], -1.5f, 1e-6f);
}

TEST(SgdTest, WeightDecayShrinksParams) {
  Param p;
  p.value = Tensor({1}, {1.0f});
  p.grad = Tensor({1}, {0.0f});
  Sgd sgd({.lr = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  sgd.step({&p});
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(SgdTest, ElemLrScaleSuppressesUpdates) {
  Param p;
  p.value = Tensor({2}, {0.0f, 0.0f});
  p.grad = Tensor({2}, {1.0f, 1.0f});
  p.apply_decay = false;
  const std::vector<float> scale = {1.0f, 0.1f};
  p.elem_lr_scale = &scale;
  Sgd sgd({.lr = 1.0, .momentum = 0.0, .weight_decay = 0.0});
  sgd.step({&p});
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6f);
  EXPECT_NEAR(p.value[1], -0.1f, 1e-6f);
}

TEST(SgdTest, LrMultScalesStep) {
  Param p;
  p.value = Tensor({1}, {0.0f});
  p.grad = Tensor({1}, {1.0f});
  p.apply_decay = false;
  Sgd sgd({.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  sgd.step({&p}, /*lr_mult=*/0.5);
  EXPECT_NEAR(p.value[0], -0.05f, 1e-6f);
}

TEST(SgdTest, UntouchedParamSkipped) {
  Param p;
  p.value = Tensor({1}, {2.0f});
  // grad never allocated
  Sgd sgd({.lr = 0.1, .momentum = 0.0, .weight_decay = 1.0});
  sgd.step({&p});
  EXPECT_EQ(p.value[0], 2.0f);
}

}  // namespace
}  // namespace stepping
