#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/ops.h"

namespace stepping {
namespace {

// Reference O(n^3) matmul for cross-checking the tuned kernels.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor random_tensor(std::vector<int> shape, Rng& rng) {
  Tensor t(std::move(shape));
  fill_normal(t, 0.0f, 1.0f, rng);
  return t;
}

TEST(Gemm, MatchesReference) {
  Rng rng(1);
  const Tensor a = random_tensor({7, 5}, rng);
  const Tensor b = random_tensor({5, 9}, rng);
  Tensor c({7, 9});
  gemm(a, b, c);
  const Tensor ref = ref_matmul(a, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

TEST(Gemm, AccumulateAddsOntoC) {
  Rng rng(2);
  const Tensor a = random_tensor({3, 4}, rng);
  const Tensor b = random_tensor({4, 2}, rng);
  Tensor c({3, 2});
  c.fill(1.0f);
  gemm(a, b, c, /*accumulate=*/true);
  const Tensor ref = ref_matmul(a, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i] + 1.0f, 1e-4f);
  }
}

TEST(GemmTn, MatchesReference) {
  Rng rng(3);
  const Tensor at = random_tensor({5, 7}, rng);  // K x M
  const Tensor b = random_tensor({5, 4}, rng);   // K x N
  Tensor c({7, 4});
  gemm_tn(at, b, c);
  // Reference: transpose at.
  Tensor a({7, 5});
  for (int i = 0; i < 7; ++i) {
    for (int p = 0; p < 5; ++p) a.at(i, p) = at.at(p, i);
  }
  const Tensor ref = ref_matmul(a, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

TEST(GemmNt, MatchesReference) {
  Rng rng(4);
  const Tensor a = random_tensor({6, 5}, rng);
  const Tensor bt = random_tensor({3, 5}, rng);  // N x K
  Tensor c({6, 3});
  gemm_nt(a, bt, c);
  Tensor b({5, 3});
  for (int p = 0; p < 5; ++p) {
    for (int j = 0; j < 3; ++j) b.at(p, j) = bt.at(j, p);
  }
  const Tensor ref = ref_matmul(a, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f);
  }
}

// Direct (naive) convolution used to validate the im2col+gemm path.
Tensor ref_conv(const Tensor& x, const Tensor& w, const Conv2dGeometry& g) {
  const int n = x.dim(0);
  Tensor y({n, g.out_c, g.out_h(), g.out_w()});
  for (int in = 0; in < n; ++in) {
    for (int oc = 0; oc < g.out_c; ++oc) {
      for (int oy = 0; oy < g.out_h(); ++oy) {
        for (int ox = 0; ox < g.out_w(); ++ox) {
          double acc = 0.0;
          for (int ic = 0; ic < g.in_c; ++ic) {
            for (int ky = 0; ky < g.kernel; ++ky) {
              for (int kx = 0; kx < g.kernel; ++kx) {
                const int iy = oy * g.stride + ky - g.pad;
                const int ix = ox * g.stride + kx - g.pad;
                if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
                const float wv =
                    w.at(oc, (ic * g.kernel + ky) * g.kernel + kx);
                acc += static_cast<double>(x.at(in, ic, iy, ix)) * wv;
              }
            }
          }
          y.at(in, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

TEST(Im2col, ConvViaGemmMatchesDirectConvolution) {
  Rng rng(5);
  Conv2dGeometry g{3, 8, 8, 4, 3, 1, 1};
  const Tensor x = random_tensor({2, 3, 8, 8}, rng);
  const Tensor w = random_tensor({4, g.patch()}, rng);

  const int spatial = g.out_h() * g.out_w();
  Tensor y({2, 4, g.out_h(), g.out_w()});
  Tensor cols({g.patch(), spatial});
  for (int i = 0; i < 2; ++i) {
    im2col(x.data() + i * 3 * 8 * 8, g, cols.data());
    Tensor yi({4, spatial});
    gemm(w, cols, yi);
    std::copy(yi.data(), yi.data() + yi.numel(),
              y.data() + static_cast<std::int64_t>(i) * 4 * spatial);
  }
  const Tensor ref = ref_conv(x, w, g);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], ref[i], 1e-4f);
  }
}

TEST(Im2col, StridedAndPaddedGeometry) {
  Rng rng(6);
  Conv2dGeometry g{2, 7, 7, 3, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 4);
  const Tensor x = random_tensor({1, 2, 7, 7}, rng);
  const Tensor w = random_tensor({3, g.patch()}, rng);
  Tensor cols({g.patch(), g.out_h() * g.out_w()});
  im2col(x.data(), g, cols.data());
  Tensor yi({3, g.out_h() * g.out_w()});
  gemm(w, cols, yi);
  const Tensor ref = ref_conv(x, w, g);
  for (std::int64_t i = 0; i < yi.numel(); ++i) {
    EXPECT_NEAR(yi[i], ref[i], 1e-4f);
  }
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), c> == <x, col2im(c)> for all x, c — the defining property of
  // the adjoint, which is exactly what the backward pass needs.
  Rng rng(7);
  Conv2dGeometry g{2, 6, 6, 1, 3, 1, 1};
  const int spatial = g.out_h() * g.out_w();
  const Tensor x = random_tensor({2, 6, 6}, rng);
  const Tensor c = random_tensor({g.patch(), spatial}, rng);
  Tensor xc({g.patch(), spatial});
  im2col(x.data(), g, xc.data());
  Tensor xi({2, 6, 6});
  col2im(c.data(), g, xi.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < xc.numel(); ++i) lhs += static_cast<double>(xc[i]) * c[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * xi[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(MaxPool, ForwardPicksMaxima) {
  Tensor x({1, 1, 4, 4});
  for (int i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y;
  std::vector<int> argmax;
  maxpool_forward(x, 2, y, argmax);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 7.0f);
  EXPECT_EQ(y[2], 13.0f);
  EXPECT_EQ(y[3], 15.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  Tensor x({1, 1, 4, 4});
  for (int i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y;
  std::vector<int> argmax;
  maxpool_forward(x, 2, y, argmax);
  Tensor gy({1, 1, 2, 2});
  gy.fill(1.0f);
  Tensor gx({1, 1, 4, 4});
  maxpool_backward(gy, argmax, gx);
  EXPECT_EQ(gx[5], 1.0f);
  EXPECT_EQ(gx[15], 1.0f);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx.sum(), 4.0);
}

TEST(MaxPool, NegativeValuesHandled) {
  Tensor x({1, 1, 2, 2});
  x[0] = -4.0f;
  x[1] = -1.0f;
  x[2] = -3.0f;
  x[3] = -2.0f;
  Tensor y;
  std::vector<int> argmax;
  maxpool_forward(x, 2, y, argmax);
  EXPECT_EQ(y[0], -1.0f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(8);
  Tensor logits = random_tensor({4, 10}, rng);
  Tensor probs;
  softmax_rows(logits, probs);
  for (int i = 0; i < 4; ++i) {
    double s = 0.0;
    for (int j = 0; j < 10; ++j) s += probs.at(i, j);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 3}, {1000.0f, 1000.0f, 999.0f});
  Tensor probs;
  softmax_rows(logits, probs);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_NEAR(probs[0], probs[1], 1e-6f);
  EXPECT_LT(probs[2], probs[0]);
}

TEST(Relu, ForwardBackwardConsistent) {
  Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y;
  std::vector<unsigned char> mask;
  relu_forward(x, y, mask);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor gy({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  Tensor gx;
  relu_backward(gy, mask, gx);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 0.0f);  // x == 0 is not strictly positive
  EXPECT_EQ(gx[2], 1.0f);
}

TEST(GlobalAvgPool, ForwardAveragesPlanes) {
  Tensor x({1, 2, 2, 2});
  for (int i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  Tensor y;
  global_avgpool_forward(x, y);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 2}));
  EXPECT_NEAR(y[0], 1.5f, 1e-6f);
  EXPECT_NEAR(y[1], 5.5f, 1e-6f);
}

TEST(Fills, KaimingStddevApproximatelyCorrect) {
  Rng rng(9);
  Tensor t({200, 50});
  fill_kaiming_normal(t, 50, rng);
  double s = 0.0, s2 = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    s += t[i];
    s2 += static_cast<double>(t[i]) * t[i];
  }
  const double mean = s / t.numel();
  const double var = s2 / t.numel() - mean * mean;
  EXPECT_NEAR(std::sqrt(var), std::sqrt(2.0 / 50.0), 0.01);
}

}  // namespace
}  // namespace stepping
