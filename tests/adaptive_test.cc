#include <gtest/gtest.h>

#include "baselines/any_width.h"
#include "core/adaptive.h"
#include "core/macs.h"
#include "models/models.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets = {full / 8, full / 3, (2 * full) / 3};
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
  return net;
}

Tensor one_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  return x;
}

TEST(Adaptive, RequiresMaxSubnet) {
  Network net = nested_net();
  AdaptiveConfig cfg;
  cfg.max_subnet = 0;
  EXPECT_THROW(AdaptiveExecutor(net, cfg), std::invalid_argument);
}

TEST(Adaptive, RejectsBadThreshold) {
  Network net = nested_net();
  AdaptiveConfig cfg;
  cfg.max_subnet = 3;
  cfg.confidence_threshold = 0.0;
  EXPECT_THROW(AdaptiveExecutor(net, cfg), std::invalid_argument);
  cfg.confidence_threshold = 1.5;
  EXPECT_THROW(AdaptiveExecutor(net, cfg), std::invalid_argument);
}

TEST(Adaptive, TinyThresholdExitsAtLevelOne) {
  Network net = nested_net();
  AdaptiveConfig cfg;
  cfg.max_subnet = 3;
  cfg.confidence_threshold = 1e-6;  // any softmax top-1 >= 1/classes
  AdaptiveExecutor ex(net, cfg);
  const AdaptiveResult r = ex.run(one_input(1));
  EXPECT_EQ(r.exit_subnet, 1);
  EXPECT_EQ(r.macs, subnet_macs(net, 1));
}

TEST(Adaptive, ImpossibleThresholdClimbsToTop) {
  Network net = nested_net();
  AdaptiveConfig cfg;
  cfg.max_subnet = 3;
  cfg.confidence_threshold = 1.0;  // softmax top-1 < 1 for finite logits
  AdaptiveExecutor ex(net, cfg);
  const AdaptiveResult r = ex.run(one_input(2));
  EXPECT_EQ(r.exit_subnet, 3);
  // MACs: full ladder with reuse = subnet-3 body + head recomputes at 1, 2.
  auto* head = net.masked_layers().back();
  EXPECT_EQ(r.macs,
            subnet_macs(net, 3) + head->subnet_macs(1) + head->subnet_macs(2));
}

TEST(Adaptive, ExitLogitsMatchDirectEvaluation) {
  Network net = nested_net();
  AdaptiveConfig cfg;
  cfg.max_subnet = 3;
  cfg.confidence_threshold = 0.5;
  AdaptiveExecutor ex(net, cfg);
  const Tensor x = one_input(3);
  const AdaptiveResult r = ex.run(x);
  SubnetContext ctx;
  ctx.subnet_id = r.exit_subnet;
  const Tensor direct = net.forward(x, ctx);
  for (std::int64_t i = 0; i < direct.numel(); ++i) {
    EXPECT_EQ(r.logits[i], direct[i]);
  }
}

TEST(Adaptive, ConfidenceIsTopOneSoftmax) {
  Network net = nested_net();
  AdaptiveConfig cfg;
  cfg.max_subnet = 3;
  cfg.confidence_threshold = 1.0;
  AdaptiveExecutor ex(net, cfg);
  const AdaptiveResult r = ex.run(one_input(4));
  Tensor probs;
  softmax_rows(r.logits, probs);
  double top1 = 0.0;
  for (int c = 0; c < probs.dim(1); ++c) {
    top1 = std::max(top1, static_cast<double>(probs.at(0, c)));
  }
  EXPECT_NEAR(r.confidence, top1, 1e-12);
}

TEST(Adaptive, HigherThresholdNeverCostsFewerMacs) {
  Network net = nested_net();
  const Tensor x = one_input(5);
  std::int64_t prev = 0;
  for (const double th : {0.2, 0.5, 0.8, 0.95, 1.0}) {
    AdaptiveConfig cfg;
    cfg.max_subnet = 3;
    cfg.confidence_threshold = th;
    AdaptiveExecutor ex(net, cfg);
    const AdaptiveResult r = ex.run(x);
    EXPECT_GE(r.macs, prev) << "threshold " << th;
    prev = r.macs;
  }
}

TEST(Adaptive, MacBudgetCapsClimbing) {
  Network net = nested_net();
  const Tensor x = one_input(7);
  // Unlimited budget reaches the top (threshold impossible).
  AdaptiveConfig unlimited;
  unlimited.max_subnet = 3;
  unlimited.confidence_threshold = 1.0;
  AdaptiveExecutor ex_unlimited(net, unlimited);
  const AdaptiveResult top = ex_unlimited.run(x);
  ASSERT_EQ(top.exit_subnet, 3);

  // Budget exactly one MAC above subnet 1: no further step fits.
  AdaptiveConfig tight = unlimited;
  tight.mac_budget = subnet_macs(net, 1) + 1;
  AdaptiveExecutor ex_tight(net, tight);
  const AdaptiveResult r = ex_tight.run(x);
  EXPECT_EQ(r.exit_subnet, 1);
  EXPECT_LE(r.macs, tight.mac_budget);
}

TEST(Adaptive, MacBudgetNeverExceeded) {
  Network net = nested_net();
  const Tensor x = one_input(8);
  for (const double frac : {0.3, 0.6, 1.0}) {
    AdaptiveConfig cfg;
    cfg.max_subnet = 3;
    cfg.confidence_threshold = 1.0;
    cfg.mac_budget =
        static_cast<std::int64_t>(frac * static_cast<double>(subnet_macs(net, 3)) * 1.5);
    AdaptiveExecutor ex(net, cfg);
    const AdaptiveResult r = ex.run(x);
    EXPECT_LE(r.macs, cfg.mac_budget) << "frac " << frac;
    EXPECT_GE(r.exit_subnet, 1);
  }
}

TEST(Adaptive, MaxSubnetCapsTheLadder) {
  Network net = nested_net();
  AdaptiveConfig cfg;
  cfg.max_subnet = 2;
  cfg.confidence_threshold = 1.0;
  AdaptiveExecutor ex(net, cfg);
  const AdaptiveResult r = ex.run(one_input(6));
  EXPECT_EQ(r.exit_subnet, 2);
}

}  // namespace
}  // namespace stepping
