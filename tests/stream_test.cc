// Streaming inference tests (ISSUE 10).
//
// The tentpole contract: STEPPING_STREAM=exact is performance-only. A frame
// evaluated through the dirty-tile delta path produces logits BITWISE
// identical to a from-scratch forward of the same subnet on the same frame —
// for every tile size, patch position (interior, edge, corner), subnet-level
// schedule, worker count and re-formation mode. Cached state is invalidated
// by the Param::version signature, never trusted across weight changes.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "models/models.h"
#include "serve/server.h"
#include "stream/stream.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

/// The hand-built 3-subnet network the incremental tests use.
Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, 1 + (u % 3));
    }
  }
  return net;
}

Tensor random_frame(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  return x;
}

/// Add `delta` to a ph x pw patch at (r, c) in every channel (clipped).
void perturb_patch(Tensor& x, int r, int c, int ph, int pw, float delta) {
  const int n = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < ch; ++k) {
      float* plane = x.data() + (static_cast<std::int64_t>(i) * ch + k) * h * w;
      for (int rr = r; rr < std::min(h, r + ph); ++rr) {
        for (int cc = c; cc < std::min(w, c + pw); ++cc) {
          if (rr >= 0 && cc >= 0) plane[rr * w + cc] += delta;
        }
      }
    }
  }
}

Tensor direct_forward(Network& net, const Tensor& x, int level) {
  SubnetContext ctx;
  ctx.subnet_id = level;
  return net.forward(x, ctx);
}

void expect_bitwise(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                           sizeof(float) *
                               static_cast<std::size_t>(want.numel())))
      << what;
}

// ---------------------------------------------------------------------------
// conv_dirty_out_region: pinned against a brute-force receptive-field scan
// over a kernel x stride x pad grid.
// ---------------------------------------------------------------------------

/// Brute force: bounding box of output positions whose receptive field reads
/// at least one input position inside `in`.
SpatialRegion brute_force_dirty(const Conv2dGeometry& g,
                                const SpatialRegion& in) {
  SpatialRegion out;
  bool any = false;
  for (int y = 0; y < g.out_h(); ++y) {
    for (int x = 0; x < g.out_w(); ++x) {
      bool dirty = false;
      for (int i = 0; i < g.kernel && !dirty; ++i) {
        const int r = y * g.stride - g.pad + i;
        if (r < in.r0 || r >= in.r1) continue;
        for (int j = 0; j < g.kernel; ++j) {
          const int c = x * g.stride - g.pad + j;
          if (c >= in.c0 && c < in.c1) {
            dirty = true;
            break;
          }
        }
      }
      if (!dirty) continue;
      if (!any) {
        out = {y, y + 1, x, x + 1};
        any = true;
      } else {
        out.r0 = std::min(out.r0, y);
        out.r1 = std::max(out.r1, y + 1);
        out.c0 = std::min(out.c0, x);
        out.c1 = std::max(out.c1, x + 1);
      }
    }
  }
  return out;
}

TEST(StreamRegion, ConvDirtyOutRegionMatchesBruteForce) {
  for (const int kernel : {1, 2, 3, 5}) {
    for (const int stride : {1, 2, 3}) {
      for (const int pad : {0, 1, 2}) {
        Conv2dGeometry g;
        g.in_c = 1;
        g.in_h = 13;
        g.in_w = 11;
        g.out_c = 1;
        g.kernel = kernel;
        g.stride = stride;
        g.pad = pad;
        if (g.out_h() < 1 || g.out_w() < 1) continue;
        const SpatialRegion regions[] = {
            {0, 1, 0, 1},    // top-left corner pixel
            {12, 13, 10, 11},  // bottom-right corner pixel
            {5, 8, 3, 7},    // interior rectangle
            {0, 13, 4, 5},   // full-height stripe
            {6, 7, 0, 11},   // full-width stripe
        };
        for (const SpatialRegion& in : regions) {
          const SpatialRegion got =
              conv_dirty_out_region(g, in).clipped(g.out_h(), g.out_w());
          const SpatialRegion want = brute_force_dirty(g, in);
          EXPECT_EQ(got, want)
              << "k=" << kernel << " s=" << stride << " p=" << pad << " in=["
              << in.r0 << "," << in.r1 << ")x[" << in.c0 << "," << in.c1
              << ")";
        }
      }
    }
  }
}

TEST(StreamRegion, TileFingerprintFlagsExactlyTheChangedTile) {
  Tensor x = random_frame(31);
  std::vector<std::uint64_t> before, after;
  stream::tile_fingerprints(x, 8, before);
  ASSERT_EQ(before.size(), 16u);  // 32/8 x 32/8
  // One pixel in tile (2, 1): row 17, col 12.
  perturb_patch(x, 17, 12, 1, 1, 0.5f);
  stream::tile_fingerprints(x, 8, after);
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (i == 2 * 4 + 1) {
      EXPECT_NE(before[i], after[i]) << "changed tile must re-hash";
    } else {
      EXPECT_EQ(before[i], after[i]) << "clean tile " << i << " re-hashed";
    }
  }
}

// ---------------------------------------------------------------------------
// Dirty-tile / halo correctness: bitwise identity over a tile-size x patch-
// position grid, including MAC savings on small patches.
// ---------------------------------------------------------------------------

TEST(StreamDelta, BitwiseIdenticalAcrossTileSizesAndPatchPositions) {
  Network net = nested_net();
  const stream::StreamConfig base;
  const auto sig = stream::network_signature(net);
  const struct { int r, c; } positions[] = {
      {0, 0},    // top-left corner (halo clips at the border)
      {26, 26},  // bottom-right corner
      {12, 14},  // interior
      {0, 14},   // top edge
      {14, 26},  // right edge
  };
  for (const int tile : {4, 8, 16}) {
    stream::StreamConfig cfg = base;
    cfg.tile = tile;
    for (const auto& pos : positions) {
      stream::StreamState st;
      Tensor frame = random_frame(100 + tile);
      const stream::StreamResult cold =
          stream_delta_forward(net, st, frame, 3, cfg, sig);
      EXPECT_TRUE(cold.cold);
      EXPECT_EQ(cold.macs, cold.full_macs);
      expect_bitwise(cold.logits, direct_forward(net, frame, 3), "cold frame");

      perturb_patch(frame, pos.r, pos.c, 6, 6, 0.25f);
      const stream::StreamResult warm =
          stream_delta_forward(net, st, frame, 3, cfg, sig);
      EXPECT_FALSE(warm.cold);
      EXPECT_GT(warm.dirty_tiles, 0);
      EXPECT_LE(warm.macs, warm.full_macs);
      // A coarse grid can legitimately go all-dirty (a centered patch on a
      // 2x2 tile=16 grid); strict savings are required whenever any tile
      // stayed clean.
      if (warm.dirty_tiles < warm.total_tiles) {
        EXPECT_LT(warm.macs, warm.full_macs)
            << "tile=" << tile << " patch at (" << pos.r << "," << pos.c
            << ")";
      }
      expect_bitwise(warm.logits, direct_forward(net, frame, 3),
                     "warm delta frame");
    }
  }
}

TEST(StreamDelta, IdenticalFrameCostsZeroMacs) {
  Network net = nested_net();
  stream::StreamConfig cfg;
  const auto sig = stream::network_signature(net);
  stream::StreamState st;
  const Tensor frame = random_frame(7);
  stream_delta_forward(net, st, frame, 2, cfg, sig);
  const Tensor same = frame;  // different object, equal bytes
  const stream::StreamResult r = stream_delta_forward(net, st, same, 2, cfg, sig);
  EXPECT_FALSE(r.cold);
  EXPECT_EQ(r.dirty_tiles, 0);
  EXPECT_EQ(r.macs, 0);
  expect_bitwise(r.logits, direct_forward(net, frame, 2), "identical frame");
}

TEST(StreamDelta, LevelStepUpReusesDeltaThenLadders) {
  Network net = nested_net();
  stream::StreamConfig cfg;
  const auto sig = stream::network_signature(net);
  stream::StreamState st;
  Tensor frame = random_frame(8);
  stream_delta_forward(net, st, frame, 1, cfg, sig);
  perturb_patch(frame, 10, 10, 4, 4, 0.5f);
  const stream::StreamResult r = stream_delta_forward(net, st, frame, 3, cfg, sig);
  EXPECT_FALSE(r.cold);
  EXPECT_LT(r.macs, r.full_macs) << "delta at 1 + ladder 1->3 beats full 3";
  expect_bitwise(r.logits, direct_forward(net, frame, 3), "step-up frame");
  EXPECT_EQ(st.level, 3);
}

TEST(StreamDelta, LevelStepDownRebuildsCold) {
  Network net = nested_net();
  stream::StreamConfig cfg;
  const auto sig = stream::network_signature(net);
  stream::StreamState st;
  const Tensor frame = random_frame(9);
  stream_delta_forward(net, st, frame, 3, cfg, sig);
  const stream::StreamResult r = stream_delta_forward(net, st, frame, 1, cfg, sig);
  EXPECT_TRUE(r.cold) << "step-down must not mask-reuse streamed state";
  expect_bitwise(r.logits, direct_forward(net, frame, 1), "step-down frame");
  EXPECT_EQ(st.level, 1);
}

TEST(StreamDelta, SignatureBumpInvalidatesCachedState) {
  // Regression for the stale-state hazard the Param::version contract closes
  // (core/incremental.h): after a weight change, an unchanged frame must NOT
  // be answered from the cached ladder — the bumped version vector forces a
  // cold rebuild with the new weights.
  Network net = nested_net();
  stream::StreamConfig cfg;
  stream::StreamState st;
  const Tensor frame = random_frame(10);
  const auto sig1 = stream::network_signature(net);
  const stream::StreamResult before =
      stream_delta_forward(net, st, frame, 2, cfg, sig1);

  Param* p = net.params().front();
  p->value[0] += 0.5f;  // the write an optimizer step / deserialize does ...
  p->version++;         // ... always paired with a version bump
  const auto sig2 = stream::network_signature(net);
  ASSERT_NE(sig1, sig2);

  const stream::StreamResult after =
      stream_delta_forward(net, st, frame, 2, cfg, sig2);
  EXPECT_TRUE(after.cold) << "stale ladder served across a weight change";
  const Tensor direct = direct_forward(net, frame, 2);
  expect_bitwise(after.logits, direct, "post-bump frame");
  EXPECT_NE(0, std::memcmp(before.logits.data(), after.logits.data(),
                           sizeof(float) *
                               static_cast<std::size_t>(direct.numel())))
      << "weight perturbation should change the logits";
}

// ---------------------------------------------------------------------------
// StreamStateCache: LRU eviction and cross-stream isolation.
// ---------------------------------------------------------------------------

TEST(StreamCache, LruEvictsOldestWithinShard) {
  // Capacity 16 over 8 shards = 2 per shard. Ids 0, 8, 16 share shard 0.
  stream::StreamStateCache cache(16);
  bool hit = false;
  auto s0 = cache.acquire(0, &hit);
  EXPECT_FALSE(hit);
  cache.acquire(8, &hit);
  EXPECT_FALSE(hit);
  cache.acquire(0, &hit);  // touch: 0 is now MRU in its shard
  EXPECT_TRUE(hit);
  cache.acquire(16, &hit);  // third id in a 2-deep shard: evicts 8 (LRU)
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.evictions(), 1);
  cache.acquire(0, &hit);
  EXPECT_TRUE(hit) << "recently-touched stream must survive the eviction";
  cache.acquire(8, &hit);
  EXPECT_FALSE(hit) << "evicted stream must re-enter cold";
  // The evicted state's shared_ptr is still alive for in-flight use.
  s0->level = 42;
  EXPECT_EQ(cache.acquire(0, &hit)->level, 42);
}

TEST(StreamCache, StatesAreIsolatedAcrossStreams) {
  stream::StreamStateCache cache(64);
  Network net = nested_net();
  stream::StreamConfig cfg;
  const auto sig = stream::network_signature(net);
  auto a = cache.acquire(1, nullptr);
  auto b = cache.acquire(2, nullptr);
  ASSERT_NE(a.get(), b.get());
  const Tensor fa = random_frame(21);
  const Tensor fb = random_frame(22);
  stream_delta_forward(net, *a, fa, 2, cfg, sig);
  stream_delta_forward(net, *b, fb, 3, cfg, sig);
  // Stream a's state is untouched by stream b's frames.
  EXPECT_EQ(a->level, 2);
  EXPECT_EQ(b->level, 3);
  expect_bitwise(a->logits, direct_forward(net, fa, 2), "stream a");
  expect_bitwise(b->logits, direct_forward(net, fb, 3), "stream b");
}

// ---------------------------------------------------------------------------
// Serve integration: streamed requests are bitwise identical to direct
// forwards across worker counts and re-formation modes; non-stream traffic
// shares the queue unchanged.
// ---------------------------------------------------------------------------

TEST(ServeStream, FramesBitwiseIdenticalAcrossWorkersAndReform) {
  Network net = nested_net();
  Network ref = net.clone();
  constexpr int kStreams = 3;
  constexpr int kFrames = 4;
  for (const int reform : {1, 0}) {
    for (const int workers : {1, 3}) {
      serve::ServeConfig cfg;
      cfg.max_subnet = 3;
      cfg.num_workers = workers;
      cfg.max_batch = 4;
      cfg.reform = reform;
      cfg.admit = serve::AdmitPolicy::kOff;
      cfg.stream = 1;
      serve::Server server(net, cfg);
      // Per-stream drifting scenes: a patch walks across a fixed base frame.
      std::vector<Tensor> frames(kStreams);
      for (int s = 0; s < kStreams; ++s) {
        frames[static_cast<std::size_t>(s)] =
            random_frame(300 + static_cast<std::uint64_t>(s));
      }
      for (int f = 0; f < kFrames; ++f) {
        // One frame per stream in flight at a time (frames of one stream are
        // ordered; distinct streams run concurrently).
        std::vector<std::future<serve::ServedResult>> futs;
        for (int s = 0; s < kStreams; ++s) {
          if (f > 0) {
            perturb_patch(frames[static_cast<std::size_t>(s)], 2 + 3 * f,
                          4 + 2 * f + s, 5, 5, 0.2f);
          }
          serve::Request req;
          req.input = frames[static_cast<std::size_t>(s)];
          req.stream_id = static_cast<std::uint64_t>(s + 1);
          futs.push_back(server.submit(std::move(req)));
        }
        // A plain (stream_id = 0) request rides the same queue untouched.
        serve::Request plain;
        plain.input = random_frame(900 + static_cast<std::uint64_t>(f));
        const Tensor plain_input = plain.input;
        futs.push_back(server.submit(std::move(plain)));

        for (int s = 0; s < kStreams; ++s) {
          const serve::ServedResult res =
              futs[static_cast<std::size_t>(s)].get();
          const Tensor direct = direct_forward(
              ref, frames[static_cast<std::size_t>(s)], res.exit_subnet);
          ASSERT_EQ(res.logits.shape(), direct.shape());
          ASSERT_EQ(0, std::memcmp(res.logits.data(), direct.data(),
                                   sizeof(float) * static_cast<std::size_t>(
                                                       direct.numel())))
              << "reform=" << reform << " workers=" << workers << " stream="
              << s << " frame=" << f;
        }
        const serve::ServedResult plain_res = futs.back().get();
        const Tensor plain_direct =
            direct_forward(ref, plain_input, plain_res.exit_subnet);
        ASSERT_EQ(0, std::memcmp(plain_res.logits.data(), plain_direct.data(),
                                 sizeof(float) * static_cast<std::size_t>(
                                                     plain_direct.numel())))
            << "non-stream request disturbed by stream traffic";
      }
    }
  }
}

}  // namespace
}  // namespace stepping
