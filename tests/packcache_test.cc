// Persistent packed-weight cache + fused bias/ReLU epilogues (ISSUE 5).
//
// Two enforcement arms:
//  * PackCache*: the cache returns exactly the bytes pack_b would produce at
//    every cache state (cold, warm, evicted, flushed), is invalidated by
//    every writer that can change the weights (SGD step, deserialization,
//    blocking flips), evicts LRU under a byte limit, and is safe under
//    concurrent per-replica access (TSan job re-runs this suite).
//  * Epilogue*: the fused bias(+ReLU) store is BITWISE identical to the
//    unfused gemm -> bias -> relu sequence for every blocking, thread count
//    and ragged shape, at the kernel level and through Network::forward's
//    Layer->ReLU fusion.
//
// Ground truths run through the DISPATCHING kernels (not gemmref::*), so
// every check here holds at any ISA tier (ISSUE 6): fusion and caching are
// bitwise-invisible within a tier, while the FMA tiers legitimately differ
// from the reference loops. The CI isa-matrix job re-runs this suite under
// each STEPPING_ISA pin; RefFusedWrappersMatchRefUnfused keeps the pure
// reference wrappers honest independent of the tier.
#include "tensor/gemm_kernel.h"

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "core/train_loops.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "nn/dense.h"
#include "nn/sgd.h"
#include "obs/metrics.h"
#include "tensor/gemm_isa.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace stepping {
namespace {

obs::Counter& hits() {
  return obs::Registry::global().counter("stepping_packcache_hits_total");
}
obs::Counter& misses() {
  return obs::Registry::global().counter("stepping_packcache_misses_total");
}
obs::Counter& evictions() {
  return obs::Registry::global().counter("stepping_packcache_evictions_total");
}

/// Restores blocking, threads and the cache (limit + contents) on exit, so
/// the suite composes with the rest of the test binary in any order.
class PackCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_limit_ = pack_cache_limit_mb();
    flush_pack_cache();
  }
  void TearDown() override {
    set_pack_cache_limit_mb(saved_limit_);
    flush_pack_cache();
    set_gemm_blocking(env_gemm_blocking());
    set_isa_tier(env_isa_tier());
    ThreadPool::set_global_threads(ThreadPool::default_threads());
  }
  long saved_limit_ = 0;
};

using EpilogueParity = PackCacheTest;

Tensor make_operand(int rows, int cols, unsigned seed) {
  Rng rng(seed);
  Tensor t({rows, cols});
  fill_normal(t, 0.0f, 1.0f, rng);
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); i += 5) p[i] = 0.0f;
  return t;
}

std::vector<unsigned char> make_mask(int len, int period) {
  std::vector<unsigned char> m(static_cast<std::size_t>(len), 1);
  for (int i = 0; i < len; ++i) {
    if (i % period == 0) m[static_cast<std::size_t>(i)] = 0;
  }
  return m;
}

::testing::AssertionResult bitwise_equal(const Tensor& a, const Tensor& b,
                                         const std::string& what) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure() << what << ": shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(float) * static_cast<std::size_t>(a.numel())) != 0) {
    return ::testing::AssertionFailure() << what << ": bitwise MISMATCH";
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Fused-epilogue parity grid.
// ---------------------------------------------------------------------------

struct Shape {
  int m, k, n;
};

/// Unfused sequence through the dispatching kernels: gemm (masked) -> bias
/// on active lanes -> relu. Inactive lanes stay zero, exactly like the
/// layer forward paths. Using the dispatcher (not gemmref) makes this the
/// tier-local ground truth: fusion must be invisible at ANY ISA tier.
Tensor nt_cols_unfused(const Tensor& a, const Tensor& bt,
                       const unsigned char* col_active, const Tensor& bias,
                       bool relu) {
  Tensor c({a.dim(0), bt.dim(0)});
  gemm_nt_cols(a, bt, c, col_active);
  const int m = c.dim(0), n = c.dim(1);
  float* pc = c.data();
  const float* pb = bias.data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (col_active[j]) pc[static_cast<std::int64_t>(i) * n + j] += pb[j];
    }
  }
  if (relu) {
    for (std::int64_t i = 0; i < c.numel(); ++i) {
      pc[i] = pc[i] > 0.0f ? pc[i] : 0.0f;
    }
  }
  return c;
}

Tensor rows_unfused(const Tensor& a, const Tensor& b,
                    const unsigned char* row_active, const Tensor& bias,
                    bool relu) {
  Tensor c({a.dim(0), b.dim(1)});
  gemm_rows(a, b, c, row_active);
  const int m = c.dim(0), n = c.dim(1);
  float* pc = c.data();
  const float* pb = bias.data();
  for (int i = 0; i < m; ++i) {
    if (!row_active[i]) continue;
    for (int j = 0; j < n; ++j) {
      pc[static_cast<std::int64_t>(i) * n + j] += pb[i];
    }
  }
  if (relu) {
    for (std::int64_t i = 0; i < c.numel(); ++i) {
      pc[i] = pc[i] > 0.0f ? pc[i] : 0.0f;
    }
  }
  return c;
}

void check_epilogue_shape(const Shape& s, const std::string& ctx) {
  const Tensor a = make_operand(s.m, s.k, 11);
  const Tensor b = make_operand(s.k, s.n, 22);
  const Tensor bt = make_operand(s.n, s.k, 44);
  const Tensor col_bias = make_operand(1, s.n, 55);
  const Tensor row_bias = make_operand(1, s.m, 66);
  const auto row_mask = make_mask(s.m, 3);
  const auto col_mask = make_mask(s.n, 2);
  const std::string tag = ctx + " m=" + std::to_string(s.m) +
                          " k=" + std::to_string(s.k) +
                          " n=" + std::to_string(s.n);

  for (const bool relu : {false, true}) {
    const std::string rtag = tag + (relu ? " relu" : "");
    const Tensor want_cols =
        nt_cols_unfused(a, bt, col_mask.data(), col_bias, relu);
    Tensor got({s.m, s.n});

    // Blocked, uncached.
    got.zero();
    gemm_nt_cols_bias(a, bt, got, col_mask.data(), col_bias.data(), relu, 0);
    EXPECT_TRUE(bitwise_equal(want_cols, got, "nt_cols_bias pack0 " + rtag));

    // Blocked through the cache: miss, then hit, must both match.
    const std::uint64_t id = new_pack_id();
    got.zero();
    gemm_nt_cols_bias(a, bt, got, col_mask.data(), col_bias.data(), relu, id);
    EXPECT_TRUE(bitwise_equal(want_cols, got, "nt_cols_bias cold " + rtag));
    got.zero();
    gemm_nt_cols_bias(a, bt, got, col_mask.data(), col_bias.data(), relu, id);
    EXPECT_TRUE(bitwise_equal(want_cols, got, "nt_cols_bias warm " + rtag));

    const Tensor want_rows =
        rows_unfused(a, b, row_mask.data(), row_bias, relu);
    got.zero();
    gemm_rows_bias(a, b, got, row_mask.data(), row_bias.data(), relu);
    EXPECT_TRUE(bitwise_equal(want_rows, got, "rows_bias " + rtag));
  }
}

TEST_F(EpilogueParity, GridOverBlockingsThreadsAndOddShapes) {
  const Shape shapes[] = {
      {3, 7, 5},       // smaller than one register tile in every dimension
      {17, 9, 33},     // none a multiple of MR/NR
      {31, 33, 8},     // single full panel plus ragged rows
      {65, 129, 33},   // straddles default and tiny blockings
      {128, 100, 96},  // paper-ish, even panels
      {1, 64, 48},     // single-row serving case
  };
  GemmBlocking grid[] = {
      {1, 1, 8, false, 0, 0},       // degenerate: one row, one k per chunk
      {4, 8, 8, false, 0, 0},       // single tile per group, single panel
      {8, 16, 24, false, 0, 0},     // panel pairs + odd tail; nc splits n
      {5, 7, 9, false, 0, 0},       // deliberately misaligned block sizes
      {64, 256, 1024, false, 0, 0}  // production defaults, forced on
  };
  for (const auto& cfg : grid) {
    set_gemm_blocking(cfg);
    flush_pack_cache();  // blockings change the packed layout key (nc)
    for (const int threads : {1, 2, 4}) {
      ThreadPool::set_global_threads(threads);
      const std::string ctx = "blocking=" + std::to_string(cfg.mc) + "x" +
                              std::to_string(cfg.kc) + "x" +
                              std::to_string(cfg.nc) +
                              " threads=" + std::to_string(threads);
      for (const Shape& s : shapes) check_epilogue_shape(s, ctx);
    }
  }
}

TEST_F(EpilogueParity, RefFusedWrappersMatchRefUnfused) {
  // The pure reference wrappers are tier-independent by construction; this
  // keeps gemmref::*_bias honest without routing through the dispatcher.
  const Shape s{17, 9, 33};
  const Tensor a = make_operand(s.m, s.k, 11);
  const Tensor b = make_operand(s.k, s.n, 22);
  const Tensor bt = make_operand(s.n, s.k, 44);
  const Tensor col_bias = make_operand(1, s.n, 55);
  const Tensor row_bias = make_operand(1, s.m, 66);
  const auto row_mask = make_mask(s.m, 3);
  const auto col_mask = make_mask(s.n, 2);
  for (const bool relu : {false, true}) {
    Tensor want({s.m, s.n}), got({s.m, s.n});
    want.zero();
    gemm_nt_cols_ref(a, bt, want, col_mask.data());
    float* pw = want.data();
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        if (col_mask[static_cast<std::size_t>(j)]) {
          pw[static_cast<std::int64_t>(i) * s.n + j] += col_bias.data()[j];
        }
      }
    }
    if (relu) {
      for (std::int64_t i = 0; i < want.numel(); ++i) {
        pw[i] = pw[i] > 0.0f ? pw[i] : 0.0f;
      }
    }
    got.zero();
    gemm_nt_cols_bias_ref(a, bt, got, col_mask.data(), col_bias.data(), relu);
    EXPECT_TRUE(bitwise_equal(want, got,
                              std::string("nt_cols_bias_ref vs unfused ref") +
                                  (relu ? " relu" : "")));

    want.zero();
    gemm_rows_ref(a, b, want, row_mask.data());
    pw = want.data();
    for (int i = 0; i < s.m; ++i) {
      if (!row_mask[static_cast<std::size_t>(i)]) continue;
      for (int j = 0; j < s.n; ++j) {
        pw[static_cast<std::int64_t>(i) * s.n + j] += row_bias.data()[i];
      }
    }
    if (relu) {
      for (std::int64_t i = 0; i < want.numel(); ++i) {
        pw[i] = pw[i] > 0.0f ? pw[i] : 0.0f;
      }
    }
    got.zero();
    gemm_rows_bias_ref(a, b, got, row_mask.data(), row_bias.data(), relu);
    EXPECT_TRUE(bitwise_equal(want, got,
                              std::string("rows_bias_ref vs unfused ref") +
                                  (relu ? " relu" : "")));
  }
}

TEST_F(EpilogueParity, TierSweepFusedMatchesUnfusedAtEveryTier) {
  // One ragged shape through every tier this binary + host can run: the
  // fused epilogues and both cache states must match the tier's own
  // unfused sequence (the full blocking/thread grid runs per tier in CI
  // via the STEPPING_ISA pins).
  set_gemm_blocking(GemmBlocking{8, 16, 24, false, 0, 0});
  for (int t = 0; t <= static_cast<int>(detected_isa_tier()); ++t) {
    const IsaTier tier = static_cast<IsaTier>(t);
    if (!isa_tier_compiled(tier)) continue;
    set_isa_tier(tier);
    check_epilogue_shape({65, 129, 33},
                         std::string("tier=") + isa_tier_name(tier));
  }
}

TEST_F(EpilogueParity, NetworkForwardFusionMatchesLayerByLayer) {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.25,
                 .seed = 17};
  Network net = build_lenet3c1l(mc);
  Rng rng(5);
  Tensor x({3, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;  // inference: Network::forward fuses Layer->ReLU pairs
  const Tensor fused = net.forward(x, ctx);
  // Unfused ground truth: every layer individually, no adjacency fusion.
  Tensor cur = x;
  for (Layer* l : net.layer_ptrs()) cur = l->forward(cur, ctx);
  EXPECT_TRUE(bitwise_equal(fused, cur, "network relu fusion"));
}

// ---------------------------------------------------------------------------
// Cache behaviour.
// ---------------------------------------------------------------------------

/// A wired Dense layer driven directly (flat input of `k` features).
struct DenseRig {
  DenseRig(int units, int k, unsigned seed) : layer("fc", units) {
    Rng rng(seed);
    IOSpec in;
    in.units = k;
    in.features_per_unit = 1;
    in.flat = true;
    in.assignment = std::make_shared<Assignment>(static_cast<std::size_t>(k), 1);
    layer.set_out_spec(layer.wire(in, rng));
  }
  Dense layer;
};

TEST_F(PackCacheTest, WarmForwardHitsAndFlushMisses) {
  DenseRig rig(/*units=*/128, /*k=*/96, 31);
  Rng rng(2);
  Tensor x({4, 96});
  fill_normal(x, 0.0f, 1.0f, rng);
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  SubnetContext ctx;

  const Tensor y0 = rig.layer.forward(x, ctx);  // cold: pack + insert
  const std::uint64_t id = rig.layer.pack_id();
  ASSERT_NE(id, 0u);
  const std::uint64_t h0 = hits().value();
  const Tensor y1 = rig.layer.forward(x, ctx);  // warm: cache hit
  EXPECT_EQ(rig.layer.pack_id(), id);
  EXPECT_GT(hits().value(), h0);
  EXPECT_TRUE(bitwise_equal(y0, y1, "warm forward"));

  const std::uint64_t m0 = misses().value();
  flush_pack_cache();
  const Tensor y2 = rig.layer.forward(x, ctx);  // repack, same id
  EXPECT_GT(misses().value(), m0);
  EXPECT_TRUE(bitwise_equal(y0, y2, "post-flush forward"));
}

TEST_F(PackCacheTest, InvalidatedBySgdStep) {
  DenseRig rig(128, 96, 32);
  Rng rng(3);
  Tensor x({2, 96});
  fill_normal(x, 0.0f, 1.0f, rng);
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  SubnetContext ctx;

  rig.layer.forward(x, ctx);  // populate the cache
  const std::uint64_t id_before = rig.layer.pack_id();

  // An optimizer step rewrites weight bytes without touching the layer's
  // dirty flag; the param version bump must retire the cached panels.
  for (Param* p : rig.layer.params()) {
    p->grad = Tensor(p->value.shape());
    fill_normal(p->grad, 0.1f, 0.5f, rng);
  }
  Sgd sgd(SgdConfig{.lr = 0.05});
  sgd.step(rig.layer.params());

  const Tensor y = rig.layer.forward(x, ctx);
  EXPECT_NE(rig.layer.pack_id(), id_before);
  // Ground truth: a flushed cache cannot serve stale bytes.
  flush_pack_cache();
  const Tensor want = rig.layer.forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(want, y, "forward after SGD step"));
}

TEST_F(PackCacheTest, InvalidatedByDeserialization) {
  // Gates off so the small test model's dense head takes the cached path.
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15,
                 .seed = 7};
  Network donor = build_model("lenet3c1l", mc);
  mc.seed = 99;
  Network net = build_model("lenet3c1l", mc);

  Rng rng(5);
  Tensor x({2, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  net.forward(x, ctx);  // cache packed panels of the pre-load weights

  // load_network writes raw tensor bytes behind the layers' backs.
  std::stringstream buf;
  ASSERT_TRUE(save_network(donor, buf));
  ASSERT_TRUE(load_network(net, buf));

  const Tensor y = net.forward(x, ctx);
  flush_pack_cache();
  const Tensor want = net.forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(want, y, "forward after deserialization"));
  const Tensor donor_y = donor.forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(donor_y, y, "loaded vs donor forward"));
}

TEST_F(PackCacheTest, LruEvictionUnderTinyLimit) {
  // Each packed operand is 512 KiB (ceil(512/8)*8 panels * 256 k * 4 B), so
  // a 1 MiB limit holds exactly two entries.
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  set_pack_cache_limit_mb(1);
  const int m = 4, k = 256, n = 512;
  const Tensor a = make_operand(m, k, 1);
  const Tensor wa = make_operand(n, k, 2), wb = make_operand(n, k, 3),
               wc = make_operand(n, k, 4);
  const Tensor bias = make_operand(1, n, 5);
  const std::vector<unsigned char> active(static_cast<std::size_t>(n), 1);
  Tensor c({m, n});
  const auto run = [&](const Tensor& w, std::uint64_t id) {
    c.zero();
    gemm_nt_cols_bias(a, w, c, active.data(), bias.data(), false, id);
  };

  const std::uint64_t ida = new_pack_id(), idb = new_pack_id(),
                      idc = new_pack_id();
  run(wa, ida);
  run(wb, idb);
  EXPECT_EQ(pack_cache_entries(), 2u);
  run(wa, ida);  // hit: A becomes most-recent, B is now LRU

  const std::uint64_t ev0 = evictions().value();
  run(wc, idc);  // 3rd entry exceeds 1 MiB -> evicts B
  EXPECT_EQ(pack_cache_entries(), 2u);
  EXPECT_LE(pack_cache_bytes(), std::size_t{1} << 20);
  EXPECT_GT(evictions().value(), ev0);

  std::uint64_t h0 = hits().value();
  run(wa, ida);  // survivor
  run(wc, idc);  // survivor
  EXPECT_EQ(hits().value(), h0 + 2);
  const std::uint64_t m0 = misses().value();
  run(wb, idb);  // was evicted -> miss
  EXPECT_GT(misses().value(), m0);

  // Entries larger than the whole limit are never inserted.
  flush_pack_cache();
  set_pack_cache_limit_mb(0);
  run(wa, ida);
  EXPECT_EQ(pack_cache_entries(), 0u);
}

TEST_F(PackCacheTest, FlushedBySetGemmBlocking) {
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  const int m = 4, k = 64, n = 48;
  const Tensor a = make_operand(m, k, 6);
  const Tensor w = make_operand(n, k, 7);
  const Tensor bias = make_operand(1, n, 8);
  const std::vector<unsigned char> active(static_cast<std::size_t>(n), 1);
  const std::uint64_t id = new_pack_id();
  Tensor c({m, n});
  c.zero();
  gemm_nt_cols_bias(a, w, c, active.data(), bias.data(), false, id);
  ASSERT_GT(pack_cache_entries(), 0u);

  // Blocking changes alter the packed layout; stale panels must not survive.
  set_gemm_blocking(GemmBlocking{8, 16, 24, false, 0, 0});
  EXPECT_EQ(pack_cache_entries(), 0u);

  // Flipping blockings between forwards stays bitwise-correct (the bug this
  // guards against: serving a pack laid out for the previous nc). Ground
  // truth is the uncached dispatching path (pack_id 0) — blocked bits are
  // blocking-independent within a tier, so one `want` covers every flip.
  Tensor want({m, n});
  want.zero();
  gemm_nt_cols_bias(a, w, want, active.data(), bias.data(), false, 0);
  c.zero();
  gemm_nt_cols_bias(a, w, c, active.data(), bias.data(), false, id);
  EXPECT_TRUE(bitwise_equal(want, c, "after blocking flip"));
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  c.zero();
  gemm_nt_cols_bias(a, w, c, active.data(), bias.data(), false, id);
  EXPECT_TRUE(bitwise_equal(want, c, "after flip back"));
}

TEST_F(PackCacheTest, TierChangeRetiresCachedPanels) {
  // The cache key carries the ISA tier (panel width NR differs per tier);
  // set_isa_tier additionally flushes, so panels packed for a retired tier
  // neither pin capacity nor ever serve a lookup. Repacking under the new
  // tier must reproduce that tier's uncached bits at every cache state.
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  const int m = 4, k = 64, n = 48;
  const Tensor a = make_operand(m, k, 6);
  const Tensor w = make_operand(n, k, 7);
  const Tensor bias = make_operand(1, n, 8);
  const std::vector<unsigned char> active(static_cast<std::size_t>(n), 1);
  const std::uint64_t id = new_pack_id();
  Tensor c({m, n});
  for (int t = 0; t <= static_cast<int>(detected_isa_tier()); ++t) {
    const IsaTier tier = static_cast<IsaTier>(t);
    if (!isa_tier_compiled(tier)) continue;
    set_isa_tier(tier);
    EXPECT_EQ(pack_cache_entries(), 0u)
        << "stale panels survived the switch to " << isa_tier_name(tier);
    Tensor want({m, n});
    want.zero();
    gemm_nt_cols_bias(a, w, want, active.data(), bias.data(), true, 0);
    c.zero();
    gemm_nt_cols_bias(a, w, c, active.data(), bias.data(), true, id);  // cold
    EXPECT_TRUE(bitwise_equal(want, c,
                              std::string("cold at ") + isa_tier_name(tier)));
    c.zero();
    gemm_nt_cols_bias(a, w, c, active.data(), bias.data(), true, id);  // warm
    EXPECT_TRUE(bitwise_equal(want, c,
                              std::string("warm at ") + isa_tier_name(tier)));
  }
}

TEST_F(PackCacheTest, ConcurrentReplicaAccess) {
  // Serving replicas share the global cache: one pack_id per layer, many
  // worker threads running find/insert/evict concurrently. TSan re-runs
  // this; the assertions here are parity + no lost results.
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  set_pack_cache_limit_mb(1);  // tight: forces concurrent eviction too
  const int m = 2, k = 256, n = 512;
  const Tensor a = make_operand(m, k, 9);
  const Tensor shared_w = make_operand(n, k, 10);
  const Tensor bias = make_operand(1, n, 12);
  const std::vector<unsigned char> active(static_cast<std::size_t>(n), 1);
  Tensor want({m, n});
  want.zero();
  // Uncached dispatching run: what every cached run must reproduce.
  gemm_nt_cols_bias(a, shared_w, want, active.data(), bias.data(), true, 0);
  const std::uint64_t shared_id = new_pack_id();

  constexpr int kThreads = 4, kIters = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Tensor own_w = make_operand(n, k, 100 + static_cast<unsigned>(t));
      const std::uint64_t own_id = new_pack_id();
      Tensor own_want({m, n}), c({m, n});
      own_want.zero();
      gemm_nt_cols_bias(a, own_w, own_want, active.data(), bias.data(), true,
                        0);
      for (int i = 0; i < kIters; ++i) {
        c.zero();
        gemm_nt_cols_bias(a, shared_w, c, active.data(), bias.data(), true,
                          shared_id);
        if (std::memcmp(c.data(), want.data(),
                        sizeof(float) * static_cast<std::size_t>(c.numel())) !=
            0) {
          ++mismatches;
        }
        c.zero();
        gemm_nt_cols_bias(a, own_w, c, active.data(), bias.data(), true,
                          own_id);
        if (std::memcmp(c.data(), own_want.data(),
                        sizeof(float) * static_cast<std::size_t>(c.numel())) !=
            0) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(PackCacheTest, TrainedModelBitwiseIdenticalCacheOnOff) {
  // The cache must be invisible to training: identical seeds + data with the
  // cache enabled vs STEPPING_PACK_CACHE_MB=0 semantics end in bitwise
  // identical parameters (training forwards bypass the cache, and inference
  // hits return the exact pack_b bytes).
  // Gates off so even the tiny model's GEMMs take the blocked/cached path.
  set_gemm_blocking(GemmBlocking{64, 256, 1024, false, 0, 0});
  const auto train_once = [](long limit_mb) {
    flush_pack_cache();
    set_pack_cache_limit_mb(limit_mb);
    DataSplit data = make_synthetic(
        synth_cifar10(/*train_per_class=*/6, /*test_per_class=*/2));
    ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.15,
                   .seed = 21};
    Network net = build_lenet3c1l(mc);
    Sgd sgd(SgdConfig{.lr = 0.05});
    Rng rng(13);
    train_plain(net, data.train, sgd, 1, /*epochs=*/2, /*batch=*/20, rng);
    evaluate(net, data.test, 1);  // inference pass exercises the cache path
    train_plain(net, data.train, sgd, 1, /*epochs=*/1, /*batch=*/20, rng);
    return net;
  };
  Network on = train_once(64);
  Network off = train_once(0);

  const auto pa = on.params();
  const auto pb = off.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(
        bitwise_equal(pa[i]->value, pb[i]->value,
                      "param " + std::to_string(i) + " cache on vs off"));
  }
  Rng rng(3);
  Tensor x({2, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  EXPECT_TRUE(bitwise_equal(on.forward(x, ctx), off.forward(x, ctx),
                            "trained logits cache on vs off"));
}

}  // namespace
}  // namespace stepping
