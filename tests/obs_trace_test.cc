#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace stepping::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Minimal structural JSON check: balanced braces/brackets outside strings.
/// (CI additionally validates traces with python3 -m json.tool.)
bool balanced_json(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(ObsTrace, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(trace_enabled());
  { STEPPING_TRACE_SCOPE("should.not.record"); }
  trace_counter("should.not.record", 1);
  // No path armed: stop is a no-op reporting zero events.
  const TraceStats stats = trace_stop();
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(ObsTrace, SpansAndCountersFlushToValidJson) {
  const std::string path = temp_path("obs_trace_basic.json");
  trace_start(path);
  ASSERT_TRUE(trace_enabled());
  trace_thread_name("test.main");
  {
    STEPPING_TRACE_SCOPE_CAT("testcat", "span.outer");
    STEPPING_TRACE_SCOPE("span.inner");
  }
  trace_counter("test.depth", 3);
  const TraceStats stats = trace_stop();
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(stats.events, 3u);
  EXPECT_EQ(stats.dropped, 0u);

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"span.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"testcat\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter event
  EXPECT_NE(json.find("\"test.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"test.main\""), std::string::npos);  // thread name
  std::remove(path.c_str());
}

TEST(ObsTrace, InstrumentedKernelEmitsSpans) {
  const std::string path = temp_path("obs_trace_kernel.json");
  Rng rng(5);
  Tensor a({8, 8}), b({8, 8}), c({8, 8});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);

  trace_start(path);
  gemm(a, b, c, /*accumulate=*/false);
  const TraceStats stats = trace_stop();
  EXPECT_GE(stats.events, 1u);
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, TracingPreservesBitwiseResults) {
  const std::string path = temp_path("obs_trace_parity.json");
  Rng rng(11);
  Tensor a({16, 24}), b({24, 12}), c_off({16, 12}), c_on({16, 12});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);

  gemm(a, b, c_off, /*accumulate=*/false);
  trace_start(path);
  gemm(a, b, c_on, /*accumulate=*/false);
  trace_stop();
  EXPECT_EQ(std::memcmp(c_off.data(), c_on.data(),
                        sizeof(float) * static_cast<std::size_t>(c_off.numel())),
            0);
  std::remove(path.c_str());
}

TEST(ObsTrace, FullBuffersDropInsteadOfWrapping) {
  const std::string path = temp_path("obs_trace_drop.json");
  // Capacity applies to buffers created AFTER trace_start, so record from a
  // fresh thread (this thread's buffer may already exist at full size).
  trace_start(path, /*buffer_events=*/16);
  std::thread recorder([] {
    for (int i = 0; i < 100; ++i) {
      STEPPING_TRACE_SCOPE("drop.span");
    }
  });
  recorder.join();
  const TraceStats stats = trace_stop();
  EXPECT_GE(stats.events, 16u);  // main-thread buffer may add a few
  EXPECT_EQ(stats.dropped, 84u);
  const std::string json = slurp(path);
  EXPECT_TRUE(balanced_json(json));
  std::remove(path.c_str());
}

TEST(ObsTrace, MidRunFlushKeepsEventsAndStaysValid) {
  // trace_flush (the streaming-flush primitive behind
  // STEPPING_TRACE_FLUSH_SEC) rewrites the whole file without disarming or
  // resetting buffers: the mid-run file is valid JSON, recording continues,
  // and the final flush still carries the pre-flush events.
  const std::string path = temp_path("obs_trace_midflush.json");
  trace_start(path);
  { STEPPING_TRACE_SCOPE("before.flush"); }
  const TraceStats mid = trace_flush();
  EXPECT_TRUE(trace_enabled()) << "flush must not disarm tracing";
  EXPECT_GE(mid.events, 1u);
  const std::string mid_json = slurp(path);
  EXPECT_TRUE(balanced_json(mid_json)) << mid_json;
  EXPECT_NE(mid_json.find("\"before.flush\""), std::string::npos);

  { STEPPING_TRACE_SCOPE("after.flush"); }
  const TraceStats fin = trace_stop();
  EXPECT_GE(fin.events, 2u) << "periodic flushes must not reset buffers";
  const std::string json = slurp(path);
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"before.flush\""), std::string::npos);
  EXPECT_NE(json.find("\"after.flush\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, FlushWhenDisarmedIsNoOp) {
  ASSERT_FALSE(trace_enabled());
  const TraceStats stats = trace_flush();
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(ObsTrace, PeriodicFlusherWritesFileWhileArmed) {
  // STEPPING_TRACE_FLUSH_SEC spawns a background flusher at trace_start:
  // the trace file must appear (and parse) while tracing is still running.
  const std::string path = temp_path("obs_trace_periodic.json");
  ASSERT_EQ(setenv("STEPPING_TRACE_FLUSH_SEC", "0.05", 1), 0);
  trace_start(path);
  { STEPPING_TRACE_SCOPE("periodic.span"); }
  std::string json;
  // Poll up to ~2 s for the flusher's first write (period 50 ms).
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    json = slurp(path);
    if (json.find("\"periodic.span\"") != std::string::npos) break;
  }
  EXPECT_TRUE(trace_enabled());
  EXPECT_NE(json.find("\"periodic.span\""), std::string::npos)
      << "flusher never wrote the file";
  EXPECT_TRUE(balanced_json(json)) << json;
  const TraceStats stats = trace_stop();  // joins the flusher
  EXPECT_GE(stats.events, 1u);
  ASSERT_EQ(unsetenv("STEPPING_TRACE_FLUSH_SEC"), 0);
  std::remove(path.c_str());
}

TEST(ObsTrace, RestartAfterStopRecordsAgain) {
  const std::string path = temp_path("obs_trace_restart.json");
  trace_start(path);
  { STEPPING_TRACE_SCOPE("first.run"); }
  const TraceStats s1 = trace_stop();
  EXPECT_EQ(s1.events, 1u);

  trace_start(path);
  { STEPPING_TRACE_SCOPE("second.run"); }
  const TraceStats s2 = trace_stop();
  EXPECT_EQ(s2.events, 1u);  // buffers were reset by the first flush
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"second.run\""), std::string::npos);
  EXPECT_EQ(json.find("\"first.run\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stepping::obs
