#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/macs.h"
#include "models/models.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

/// A network with a hand-built nested structure across 3 subnets.
Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  Rng rng(11);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, 1 + (u % 3));
    }
  }
  return net;
}

Tensor random_input(int n, Rng& rng) {
  Tensor x({n, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  return x;
}

TEST(Incremental, StepUpBitIdenticalToFromScratch) {
  Network net = nested_net();
  Rng rng(1);
  const Tensor x = random_input(4, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 1);
  ex.run(x, 2);
  const Tensor inc = ex.run(x, 3);

  SubnetContext ctx;
  ctx.subnet_id = 3;
  const Tensor scratch = net.forward(x, ctx);
  ASSERT_EQ(inc.shape(), scratch.shape());
  for (std::int64_t i = 0; i < inc.numel(); ++i) {
    EXPECT_EQ(inc[i], scratch[i]) << "logit index " << i;
  }
}

TEST(Incremental, EverySubnetLevelMatchesDirectEvaluation) {
  Network net = nested_net();
  Rng rng(2);
  const Tensor x = random_input(2, rng);
  IncrementalExecutor ex(net);
  for (int sub = 1; sub <= 3; ++sub) {
    const Tensor inc = ex.run(x, sub);
    SubnetContext ctx;
    ctx.subnet_id = sub;
    const Tensor direct = net.forward(x, ctx);
    for (std::int64_t i = 0; i < inc.numel(); ++i) {
      EXPECT_EQ(inc[i], direct[i]) << "subnet " << sub << " logit " << i;
    }
  }
}

TEST(Incremental, StepMacsLessThanFullMacs) {
  Network net = nested_net();
  Rng rng(3);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 1);
  ex.run(x, 3);
  EXPECT_LT(ex.last_step_macs(), ex.last_full_macs());
  EXPECT_GT(ex.last_step_macs(), 0);
}

TEST(Incremental, CumulativeStepMacsMatchSubnetMacsPlusHeadRecomputes) {
  Network net = nested_net();
  Rng rng(4);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  std::int64_t cumulative = 0;
  for (int sub = 1; sub <= 3; ++sub) {
    ex.run(x, sub);
    cumulative += ex.last_step_macs();
  }
  // Stepping 1->2->3 recomputes only the head at each level; body units are
  // computed exactly once.
  auto* head = net.masked_layers().back();
  const std::int64_t head_extra =
      head->subnet_macs(1) + head->subnet_macs(2);
  EXPECT_EQ(cumulative, subnet_macs(net, 3) + head_extra);
}

TEST(Incremental, FirstRunMacsEqualSubnetMacs) {
  Network net = nested_net();
  Rng rng(5);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 2);
  EXPECT_EQ(ex.last_step_macs(), subnet_macs(net, 2));
  EXPECT_EQ(ex.last_full_macs(), subnet_macs(net, 2));
}

TEST(Incremental, NewInputResetsCache) {
  Network net = nested_net();
  Rng rng(6);
  const Tensor x1 = random_input(1, rng);
  const Tensor x2 = random_input(1, rng);
  IncrementalExecutor ex(net);
  ex.run(x1, 2);
  EXPECT_EQ(ex.cached_subnet(), 2);
  const Tensor y = ex.run(x2, 2);  // different input: transparent reset
  SubnetContext ctx;
  ctx.subnet_id = 2;
  const Tensor direct = net.forward(x2, ctx);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], direct[i]);
}

TEST(Incremental, FingerprintTreatsEqualContentAsSameInput) {
  // The executor keeps a shape + FNV-1a fingerprint, not an input copy
  // (ISSUE 2 satellite): a *different tensor object* with identical bytes
  // must still hit the cache and pay only the incremental step.
  Network net = nested_net();
  Rng rng(21);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 1);
  const Tensor same_bytes = x;  // deep copy, equal content
  const Tensor y = ex.run(same_bytes, 2);
  EXPECT_LT(ex.last_step_macs(), ex.last_full_macs())
      << "equal-content input should step, not restart";
  SubnetContext ctx;
  ctx.subnet_id = 2;
  const Tensor direct = net.forward(x, ctx);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], direct[i]);
}

TEST(Incremental, FingerprintDetectsSingleElementChange) {
  Network net = nested_net();
  Rng rng(22);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 2);
  Tensor x2 = x;
  x2[x2.numel() / 2] += 0.5f;  // one element flips the hash
  const Tensor y = ex.run(x2, 2);
  EXPECT_EQ(ex.last_step_macs(), ex.last_full_macs())
      << "changed input must restart from scratch";
  SubnetContext ctx;
  ctx.subnet_id = 2;
  const Tensor direct = net.forward(x2, ctx);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], direct[i]);
}

TEST(Incremental, StepDownMatchesDirectEvaluation) {
  Network net = nested_net();
  Rng rng(7);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 3);
  const Tensor y1 = ex.run(x, 1);  // step DOWN: masked reuse + head recompute
  SubnetContext ctx;
  ctx.subnet_id = 1;
  const Tensor direct = net.forward(x, ctx);
  for (std::int64_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], direct[i]);
}

TEST(Incremental, StepDownCostsOnlyTheHead) {
  // Paper §II: dynamic subnet REDUCTION also reuses the larger subnet's
  // intermediate results — only the classifier must be re-evaluated.
  Network net = nested_net();
  Rng rng(17);
  const Tensor x = random_input(2, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 3);
  ex.run(x, 2);
  auto* head = net.masked_layers().back();
  EXPECT_EQ(ex.last_step_macs(), head->subnet_macs(2));
  EXPECT_EQ(ex.cached_subnet(), 2);
}

TEST(Incremental, StepDownThenUpStaysBitExact) {
  // Oscillating budgets: 1 -> 3 -> 1 -> 2 must all match direct evaluation.
  Network net = nested_net();
  Rng rng(19);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  for (const int sub : {1, 3, 1, 2, 3, 2}) {
    const Tensor y = ex.run(x, sub);
    SubnetContext ctx;
    ctx.subnet_id = sub;
    const Tensor direct = net.forward(x, ctx);
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      ASSERT_EQ(y[i], direct[i]) << "subnet " << sub;
    }
  }
}

TEST(Incremental, RepeatedRunSameSubnetOnlyRecomputesHead) {
  Network net = nested_net();
  Rng rng(8);
  const Tensor x = random_input(1, rng);
  IncrementalExecutor ex(net);
  ex.run(x, 2);
  ex.run(x, 2);
  auto* head = net.masked_layers().back();
  EXPECT_EQ(ex.last_step_macs(), head->subnet_macs(2));
}

}  // namespace
}  // namespace stepping
