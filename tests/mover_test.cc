#include <gtest/gtest.h>

#include <cmath>
#include "core/macs.h"
#include "core/mover.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"

namespace stepping {
namespace {

Network small_net() {
  Network net;
  net.emplace<Conv2d>("c1", 6, 3);
  net.emplace<Conv2d>("c2", 6, 3);
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", 3);
  Rng rng(3);
  net.wire(2, 8, 8, rng);
  return net;
}

int pruned_count(const MaskedLayer& m) {
  int c = 0;
  for (const auto keep : m.prune_mask()) {
    if (!keep) ++c;
  }
  return c;
}

SteppingConfig cfg2(std::int64_t ref) {
  SteppingConfig cfg;
  cfg.num_subnets = 2;
  cfg.mac_budget_frac = {0.3, 0.8};
  cfg.reference_macs = ref;
  return cfg;
}

/// Seed deterministic importance: unit u of each layer gets score u for
/// every subnet (ascending, so low-index units move first).
void seed_importance(Network& net, int num_subnets) {
  net.reset_importance(num_subnets);
  SubnetContext ctx;
  ctx.training = true;
  ctx.harvest_importance = true;
  // Directly poke the accumulators through a synthetic backward: easier to
  // emulate by const_cast-free friend access — instead run a real backward
  // with crafted gradients. Simpler: rely on selection_score reading the
  // accumulated vector; we reach it via harvesting with scaled grads.
  // For unit tests we shortcut: move through real harvest.
  Tensor x({1, 2, 8, 8});
  Rng rng(9);
  fill_normal(x, 0.0f, 1.0f, rng);
  for (int k = 1; k <= num_subnets; ++k) {
    ctx.subnet_id = k;
    const Tensor y = net.forward(x, ctx);
    Tensor g(y.shape());
    g.fill(1.0f);
    net.backward(g, ctx);
  }
}

TEST(Mover, SelectionScoreWeightsLargerSubnets) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->reset_importance(3);
  // Manually accumulate via harvest shortcut is awkward; instead verify the
  // alpha ladder arithmetic directly.
  SteppingConfig cfg;
  cfg.alpha1 = 1.0;
  cfg.alpha_growth = 1.5;
  EXPECT_DOUBLE_EQ(cfg.alpha(1), 1.0);
  EXPECT_DOUBLE_EQ(cfg.alpha(2), 1.5);
  EXPECT_DOUBLE_EQ(cfg.alpha(3), 2.25);
}

TEST(Mover, ScoreInfiniteForDiscardedUnits) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->reset_importance(2);
  c1->set_unit_subnet(0, 3);  // beyond N=2 -> discard pool
  SteppingConfig cfg = cfg2(1000);
  EXPECT_TRUE(std::isinf(selection_score(*c1, 0, cfg)));
}

TEST(Mover, MoveStepReducesSubnet1Macs) {
  Network net = small_net();
  seed_importance(net, 2);
  SteppingConfig cfg = cfg2(full_macs(net));
  const std::int64_t before = subnet_macs(net, 1);
  const MoveStats ms = move_step(net, cfg, /*per_iter_macs=*/before / 10);
  EXPECT_GT(ms.moved_units, 0);
  EXPECT_LT(subnet_macs(net, 1), before);
}

TEST(Mover, MovedUnitsLandInNextSubnet) {
  Network net = small_net();
  seed_importance(net, 2);
  SteppingConfig cfg = cfg2(full_macs(net));
  move_step(net, cfg, full_macs(net) / 10);
  int in_subnet2 = 0;
  for (MaskedLayer* m : net.body_layers()) {
    for (const int s : m->unit_subnet()) {
      EXPECT_LE(s, 2);  // nothing skips levels
      if (s == 2) ++in_subnet2;
    }
  }
  EXPECT_GT(in_subnet2, 0);
}

TEST(Mover, NeverDrainsLayerBelowFloor) {
  Network net = small_net();
  seed_importance(net, 2);
  SteppingConfig cfg = cfg2(full_macs(net));
  cfg.mac_budget_frac = {0.0001, 0.8};  // impossible budget for subnet 1
  cfg.min_units_per_layer = 1;
  for (int i = 0; i < 50; ++i) move_step(net, cfg, full_macs(net));
  for (MaskedLayer* m : net.body_layers()) {
    int in_s1 = 0;
    for (const int s : m->unit_subnet()) {
      if (s <= 1) ++in_s1;
    }
    EXPECT_GE(in_s1, 1) << m->name();
  }
}

TEST(Mover, QuotaBoundsPerIterationMovement) {
  Network net = small_net();
  seed_importance(net, 2);
  SteppingConfig cfg = cfg2(full_macs(net));
  const MoveStats ms = move_step(net, cfg, /*per_iter_macs=*/1);
  // Quota 1 MAC: the first candidate already exceeds it, so exactly one unit
  // moves per over-budget subnet.
  EXPECT_LE(ms.moved_units, 2);
}

TEST(Mover, RespectsBudgetSatisfiedSubnets) {
  Network net = small_net();
  seed_importance(net, 2);
  SteppingConfig cfg = cfg2(full_macs(net));
  cfg.mac_budget_frac = {2.0, 2.0};  // budgets already met
  const MoveStats ms = move_step(net, cfg, full_macs(net));
  EXPECT_EQ(ms.moved_units, 0);
}

TEST(Mover, FlowGatingHoldsSubnet2UntilHeadroom) {
  Network net = small_net();
  seed_importance(net, 2);
  SteppingConfig cfg = cfg2(full_macs(net));
  // Subnet2 over budget but subnet1 == subnet2 (no units moved yet):
  // headroom 0 <= P2 - P1, so nothing may flow 2 -> discard yet.
  cfg.mac_budget_frac = {2.0, 0.5};
  const MoveStats ms = move_step(net, cfg, full_macs(net));
  for (MaskedLayer* m : net.body_layers()) {
    for (const int s : m->unit_subnet()) EXPECT_LE(s, 2);
  }
  EXPECT_EQ(ms.moved_units, 0);
}

TEST(Mover, MagnitudeCriterionRanksbyMeanAbsWeight) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->reset_importance(2);
  SteppingConfig cfg = cfg2(1000);
  cfg.selection = SelectionCriterion::kWeightMagnitude;
  c1->weight().value.fill(0.5f);
  for (int c = 0; c < c1->num_cols(); ++c) c1->weight().value.at(2, c) = 0.1f;
  EXPECT_LT(selection_score(*c1, 2, cfg), selection_score(*c1, 0, cfg));
  EXPECT_NEAR(selection_score(*c1, 0, cfg), 0.5, 1e-6);
}

TEST(Mover, MagnitudeCriterionStillRespectsDiscardPool) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->reset_importance(2);
  SteppingConfig cfg = cfg2(1000);
  cfg.selection = SelectionCriterion::kWeightMagnitude;
  c1->set_unit_subnet(0, 3);
  EXPECT_TRUE(std::isinf(selection_score(*c1, 0, cfg)));
}

TEST(Mover, MoveRevivesPrunedSynapses) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  auto* c2 = net.body_layers()[1];
  seed_importance(net, 2);
  // Partial pruning: subnet 1 stays over budget so moves still happen, but a
  // substantial fraction of synapses is masked and must be revived on move.
  c1->apply_magnitude_prune(0.05f);
  c2->apply_magnitude_prune(0.05f);
  ASSERT_GT(pruned_count(*c1), 0);
  SteppingConfig cfg = cfg2(full_macs(net));
  cfg.mac_budget_frac = {0.05, 0.8};
  const MoveStats ms = move_step(net, cfg, full_macs(net) / 20);
  ASSERT_GT(ms.moved_units, 0);
  // Find a moved unit in c1 and check its row + consumer cols are revived.
  for (int u = 0; u < c1->num_units(); ++u) {
    if (c1->unit_subnet()[static_cast<std::size_t>(u)] != 2) continue;
    for (int c = 0; c < c1->num_cols(); ++c) {
      EXPECT_EQ(c1->prune_mask()[static_cast<std::size_t>(u) * c1->num_cols() + c], 1);
    }
    for (int v = 0; v < c2->num_units(); ++v) {
      for (int c = u * c2->col_group(); c < (u + 1) * c2->col_group(); ++c) {
        EXPECT_EQ(c2->prune_mask()[static_cast<std::size_t>(v) * c2->num_cols() + c], 1);
      }
    }
    break;
  }
}

}  // namespace
}  // namespace stepping
