#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "nn/sgd.h"
#include "nn/simple_layers.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

Network small_net() {
  Network net;
  net.emplace<Conv2d>("c1", 4, 3);
  net.emplace<BatchNorm2d>("bn1");
  net.emplace<ReLU>("r1");
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", 2);
  Rng rng(2);
  net.wire(1, 6, 6, rng);
  return net;
}

TEST(Suppression, BodyWeightScaleIsBetaPowKMinusOwner) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->set_unit_subnet(0, 1);
  c1->set_unit_subnet(1, 2);
  c1->set_unit_subnet(2, 3);
  const double beta = 0.9;
  net.prepare_lr_suppression(3, beta);
  net.activate_lr_scale(3);
  const auto* scale = c1->weight().elem_lr_scale;
  ASSERT_NE(scale, nullptr);
  const int cols = c1->num_cols();
  EXPECT_NEAR((*scale)[0 * cols], std::pow(beta, 2), 1e-6);  // owner 1, k=3
  EXPECT_NEAR((*scale)[1 * cols], beta, 1e-6);               // owner 2
  EXPECT_NEAR((*scale)[2 * cols], 1.0, 1e-6);                // owner 3
}

TEST(Suppression, TrainingOwnSubnetIsUnsuppressed) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->set_unit_subnet(1, 2);
  net.prepare_lr_suppression(3, 0.9);
  net.activate_lr_scale(2);
  const auto* scale = c1->weight().elem_lr_scale;
  EXPECT_NEAR((*scale)[1 * c1->num_cols()], 1.0, 1e-6);
}

TEST(Suppression, HeadWeightsOwnedByProducerSubnet) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  auto* head = net.masked_layers().back();
  c1->set_unit_subnet(0, 2);
  net.prepare_lr_suppression(2, 0.5);
  net.activate_lr_scale(2);
  const auto* scale = head->weight().elem_lr_scale;
  ASSERT_NE(scale, nullptr);
  const int fpu = head->col_group();
  // Columns from producer unit 0 (subnet 2, = k): scale 1.
  EXPECT_NEAR((*scale)[0], 1.0, 1e-6);
  // Columns from producer unit 1 (subnet 1 < k=2): scale 0.5.
  EXPECT_NEAR((*scale)[static_cast<std::size_t>(fpu)], 0.5, 1e-6);
}

TEST(Suppression, BatchNormScalesFollowChannelOwner) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->set_unit_subnet(0, 1);
  c1->set_unit_subnet(1, 2);
  net.prepare_lr_suppression(2, 0.9);
  net.activate_lr_scale(2);
  BatchNorm2d* bn = nullptr;
  for (Layer* l : net.layer_ptrs()) {
    if ((bn = dynamic_cast<BatchNorm2d*>(l)) != nullptr) break;
  }
  ASSERT_NE(bn, nullptr);
  const auto* scale = bn->params()[0]->elem_lr_scale;
  ASSERT_NE(scale, nullptr);
  EXPECT_NEAR((*scale)[0], 0.9, 1e-6);
  EXPECT_NEAR((*scale)[1], 1.0, 1e-6);
}

TEST(Suppression, DeactivationClearsPointers) {
  Network net = small_net();
  net.prepare_lr_suppression(2, 0.9);
  net.activate_lr_scale(2);
  net.activate_lr_scale(0);
  for (Param* p : net.params()) EXPECT_EQ(p->elem_lr_scale, nullptr);
}

TEST(Suppression, SuppressedWeightsMoveLessUnderTraining) {
  // Train subnet 2 with beta = 0.01: weights owned by subnet 1 must move far
  // less than weights owned by subnet 2.
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->set_unit_subnet(0, 1);
  c1->set_unit_subnet(1, 2);
  net.prepare_lr_suppression(2, 0.01);
  net.activate_lr_scale(2);

  const Tensor w_before = c1->weight().value;
  Rng rng(4);
  Tensor x({8, 1, 6, 6});
  fill_normal(x, 0.0f, 1.0f, rng);
  std::vector<int> y(8);
  for (int i = 0; i < 8; ++i) y[static_cast<std::size_t>(i)] = i % 2;
  Sgd sgd({.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  SubnetContext ctx;
  ctx.subnet_id = 2;
  ctx.num_subnets = 2;
  ctx.training = true;
  for (int i = 0; i < 5; ++i) train_batch(net, sgd, x, y, ctx);

  const int cols = c1->num_cols();
  double delta_owned1 = 0.0, delta_owned2 = 0.0;
  for (int c = 0; c < cols; ++c) {
    delta_owned1 += std::fabs(c1->weight().value[0 * cols + c] - w_before[0 * cols + c]);
    delta_owned2 += std::fabs(c1->weight().value[1 * cols + c] - w_before[1 * cols + c]);
  }
  EXPECT_GT(delta_owned2, 10.0 * delta_owned1);
}

}  // namespace
}  // namespace stepping
