// Batch re-formation + predictive admission control tests (ISSUE 9).
//
// The tentpole contract: re-formation is performance-only. Each batched-GEMM
// output row is computed independently in serial order, so per-request logits
// are bitwise identical no matter how survivors re-merge across micro-batches,
// worker counts or max_batch settings. Admission decisions are pure functions
// of (deadline, queue depth, workers, max_batch, mode) — tests drive them
// with synthetic clocks and depths, no timers involved.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "core/latency.h"
#include "models/models.h"
#include "serve/planner.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace stepping::serve {
namespace {

/// The hand-built 3-subnet network the incremental tests use.
Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, 1 + (u % 3));
    }
  }
  return net;
}

Tensor random_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  return x;
}

LevelCosts synthetic_costs() {
  LevelCosts c;
  c.full = {100'000, 300'000, 600'000, 1'000'000};
  c.body = {90'000, 290'000, 590'000, 990'000};
  return c;
}

DeviceModel synthetic_device() {
  DeviceModel dev;
  dev.name = "synthetic";
  dev.macs_per_second = 1e8;  // 0.1 MMAC/ms
  dev.fixed_overhead_ms = 0.5;
  return dev;
}

ServeConfig reform_config(int workers, int max_batch, int reform) {
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = workers;
  cfg.max_batch = max_batch;
  cfg.reform = reform;
  cfg.admit = AdmitPolicy::kOff;
  cfg.device = synthetic_device();  // planning only; no deadline = no effect
  return cfg;
}

/// Budget that forces a request to exit exactly at `level` on the reuse
/// ladder (covers the ladder through `level`, not the next step).
std::int64_t budget_for_exit(const Planner& p, int level) {
  return p.costs().stepped_macs_through(level);
}

// ---------------------------------------------------------------------------
// LevelRunQueue: bucket selection and the termination protocol, driven with
// synthetic clocks.
// ---------------------------------------------------------------------------

Job make_rjob(std::uint64_t seq, double deadline_abs_ms) {
  Job j;
  j.seq = seq;
  j.deadline_abs_ms = deadline_abs_ms;
  return j;
}

TEST(ReformRunQueue, PopsFullestBucketAndOnlyOneLevel) {
  LevelRunQueue q(16, 3);
  for (std::uint64_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(q.push(make_rjob(s, 0.0)));
  }
  Job s1 = make_rjob(10, 0.0);
  s1.level = 1;
  Job s2 = make_rjob(11, 0.0);
  s2.level = 1;
  q.push_survivor(std::move(s1));
  q.push_survivor(std::move(s2));
  EXPECT_EQ(q.depth(), 5u);

  // Bucket 0 (fill 3) beats bucket 1 (fill 2); the pop is single-level.
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(4, /*now_ms=*/0.0, /*urgent_slack_ms=*/0.0, batch));
  ASSERT_EQ(batch.size(), 3u);
  for (const Job& j : batch) EXPECT_EQ(j.level, 0);
  q.retire(batch.size());

  ASSERT_TRUE(q.pop_batch(4, 0.0, 0.0, batch));
  ASSERT_EQ(batch.size(), 2u);
  for (const Job& j : batch) EXPECT_EQ(j.level, 1);
  q.retire(batch.size());
}

TEST(ReformRunQueue, UrgentHeadOverridesFill) {
  LevelRunQueue q(16, 3);
  for (std::uint64_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(q.push(make_rjob(s, 0.0)));  // no deadline: never urgent
  }
  Job urgent = make_rjob(10, /*deadline_abs_ms=*/5.0);
  urgent.level = 1;
  q.push_survivor(std::move(urgent));

  // Plenty of slack: fill wins, bucket 0 first.
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(4, /*now_ms=*/0.0, /*urgent_slack_ms=*/1.0, batch));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.front().level, 0);
  // Put them back untouched so only the urgency changes between pops.
  for (Job& j : batch) {
    j.level = 0;
    q.push_survivor(std::move(j));
  }

  // Slack below the threshold: the urgent survivor's bucket is served first
  // even though bucket 0 is fuller.
  ASSERT_TRUE(q.pop_batch(4, /*now_ms=*/4.5, /*urgent_slack_ms=*/1.0, batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().seq, 10u);
  q.retire(1);
  ASSERT_TRUE(q.pop_batch(4, 4.5, 1.0, batch));
  EXPECT_EQ(batch.size(), 3u);
  q.retire(batch.size());
}

TEST(ReformRunQueue, CloseRefusesAdmissionsButAcceptsSurvivors) {
  LevelRunQueue q(16, 3);
  ASSERT_TRUE(q.push(make_rjob(0, 0.0)));
  ASSERT_TRUE(q.push(make_rjob(1, 0.0)));
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(2, 0.0, 0.0, batch));
  ASSERT_EQ(batch.size(), 2u);

  q.close();
  EXPECT_FALSE(q.push(make_rjob(2, 0.0)));  // new admissions refused

  // An admitted request is never dropped: its survivor re-enters even after
  // close, and pop_batch keeps draining until nothing is in flight.
  batch[0].level = 1;
  q.push_survivor(std::move(batch[0]));
  q.retire(1);  // batch[1] finalized
  ASSERT_TRUE(q.pop_batch(2, 0.0, 0.0, batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().level, 1);
  q.retire(1);
  EXPECT_FALSE(q.pop_batch(2, 0.0, 0.0, batch))
      << "closed + drained + nothing in flight must return false";
}

// ---------------------------------------------------------------------------
// Re-formation determinism: logits are bitwise identical to a direct forward
// of the exit subnet for EVERY batch composition — worker counts, max_batch
// settings and re-formation on/off only change when work happens.
// ---------------------------------------------------------------------------

TEST(ServeReform, LogitsBitwiseIdenticalAcrossWorkersBatchesAndModes) {
  Network net = nested_net();
  Network ref = net.clone();
  constexpr int kRequests = 12;
  for (const int reform : {1, 0}) {
    for (const int workers : {1, 3}) {
      for (const int max_batch : {1, 2, 5}) {
        Server server(net, reform_config(workers, max_batch, reform));
        std::vector<Tensor> inputs;
        std::vector<int> want(kRequests);
        std::vector<std::future<ServedResult>> futures;
        for (int i = 0; i < kRequests; ++i) {
          inputs.push_back(random_input(900 + static_cast<std::uint64_t>(i)));
          want[static_cast<std::size_t>(i)] = 1 + (i % 3);
          Request req;
          req.input = inputs[static_cast<std::size_t>(i)];
          req.mac_budget = budget_for_exit(server.planner(),
                                           want[static_cast<std::size_t>(i)]);
          futures.push_back(server.submit(std::move(req)));
        }
        for (int i = 0; i < kRequests; ++i) {
          const ServedResult res = futures[static_cast<std::size_t>(i)].get();
          ASSERT_EQ(res.exit_subnet, want[static_cast<std::size_t>(i)])
              << "reform=" << reform << " workers=" << workers
              << " max_batch=" << max_batch << " request " << i;
          SubnetContext ctx;
          ctx.subnet_id = res.exit_subnet;
          const Tensor direct =
              ref.forward(inputs[static_cast<std::size_t>(i)], ctx);
          ASSERT_EQ(res.logits.shape(), direct.shape());
          ASSERT_EQ(0,
                    std::memcmp(res.logits.data(), direct.data(),
                                sizeof(float) * static_cast<std::size_t>(
                                                    direct.numel())))
              << "re-formation must never change the answer (reform=" << reform
              << " workers=" << workers << " max_batch=" << max_batch
              << " request " << i << ")";
        }
      }
    }
  }
}

TEST(ServeReform, PassCountersAttributeEveryLiveRowExactlyOnce) {
  Network net = nested_net();
  Server server(net, reform_config(/*workers=*/2, /*max_batch=*/4,
                                   /*reform=*/1));
  constexpr int kRequests = 16;
  std::vector<std::future<ServedResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.input = random_input(700 + static_cast<std::uint64_t>(i));
    futures.push_back(server.submit(std::move(req)));  // full ladder
  }
  for (auto& f : futures) f.get();

  const CounterSnapshot s = server.counters();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.batched_inputs, static_cast<std::uint64_t>(kRequests));
  // Every request climbs levels 1..3 and is a live row in exactly one pass
  // per level, however the batches re-form.
  EXPECT_EQ(s.pass_rows, static_cast<std::uint64_t>(3 * kRequests));
  // Each pass carries 1..max_batch live rows; at least ceil(16/4) = 4 passes
  // per level even with perfect packing.
  EXPECT_GE(s.passes, 12u);
  EXPECT_LE(s.passes, static_cast<std::uint64_t>(3 * kRequests));
  EXPECT_GE(s.pass_occupancy(), 1.0);
  EXPECT_LE(s.pass_occupancy(), 4.0);
  EXPECT_GE(s.batches, 4u);  // admission micro-batches, max_batch = 4
}

TEST(ServeReform, TimelineRecordsBatchRejoinOnlyUnderReformation) {
  Network net = nested_net();
  for (const int reform : {1, 0}) {
    Server server(net, reform_config(1, 4, reform));
    Request req;
    req.input = random_input(55);
    const ServedResult res = server.serve(std::move(req));
    ASSERT_EQ(res.exit_subnet, 3);
    // The single request is retained as a straggler; under re-formation its
    // level-2 and level-3 passes are re-stacked pops, stamped batch_rejoin.
    const std::string pm = server.postmortems_json();
    if (reform != 0) {
      EXPECT_NE(pm.find("\"batch_rejoin\""), std::string::npos) << pm;
    } else {
      EXPECT_EQ(pm.find("\"batch_rejoin\""), std::string::npos)
          << "legacy path must not emit rejoin events";
    }
  }
}

TEST(ServeReform, EnvToggleResolvesAtConstruction) {
  Network net = nested_net();
  ::setenv("STEPPING_REFORM", "off", 1);
  {
    ServeConfig cfg = reform_config(1, 4, /*reform=*/-1);
    Server server(net, cfg);
    EXPECT_EQ(server.config().reform, 0);
  }
  ::setenv("STEPPING_REFORM", "on", 1);
  {
    ServeConfig cfg = reform_config(1, 4, /*reform=*/-1);
    Server server(net, cfg);
    EXPECT_EQ(server.config().reform, 1);
  }
  ::unsetenv("STEPPING_REFORM");
}

// ---------------------------------------------------------------------------
// Predictive admission control: pure planner decisions first, then the
// server-level accept / degrade / reject paths.
// ---------------------------------------------------------------------------

TEST(ServeAdmit, DecisionIsDeterministicAndMonotonicInDepth) {
  const Planner p(synthetic_costs(), synthetic_device());
  const int workers = 2, max_batch = 4;
  const Planner::LadderMode mode = Planner::LadderMode::kReuse;

  // No deadline: always admitted at the full ladder, whatever the depth.
  for (const std::size_t depth : {0u, 7u, 1000u}) {
    const Planner::AdmitDecision d =
        p.admit_decision(0.0, depth, workers, max_batch, mode);
    EXPECT_TRUE(d.admit);
    EXPECT_FALSE(d.degraded);
    EXPECT_EQ(d.target, 4);
  }

  // An empty queue predicts zero wait; deeper queues predict (weakly) more.
  EXPECT_EQ(p.predicted_queue_ms(0, workers, max_batch, mode), 0.0);
  double prev = 0.0;
  for (std::size_t depth = 1; depth <= 64; depth *= 2) {
    const double wait = p.predicted_queue_ms(depth, workers, max_batch, mode);
    EXPECT_GE(wait, prev) << "depth " << depth;
    prev = wait;
  }

  // With a fixed generous-but-finite deadline, the reachable target can only
  // fall as the queue deepens, and the same inputs give the same verdict.
  const double deadline = p.ladder_ms(4, max_batch) + 0.01;
  int prev_target = 5;
  for (std::size_t depth = 0; depth <= 256; depth = depth ? depth * 4 : 1) {
    const Planner::AdmitDecision d =
        p.admit_decision(deadline, depth, workers, max_batch, mode);
    EXPECT_LE(d.target, prev_target) << "depth " << depth;
    EXPECT_EQ(d.admit, d.target >= 1);
    EXPECT_EQ(d.degraded, d.admit && d.target < 4);
    const Planner::AdmitDecision again =
        p.admit_decision(deadline, depth, workers, max_batch, mode);
    EXPECT_EQ(again.admit, d.admit);
    EXPECT_EQ(again.target, d.target);
    EXPECT_EQ(again.predicted_wait_ms, d.predicted_wait_ms);
    prev_target = d.target;
  }

  // Hopeless: even level 1 is predicted late -> not admitted.
  const Planner::AdmitDecision hopeless =
      p.admit_decision(1e-4, 0, workers, max_batch, mode);
  EXPECT_FALSE(hopeless.admit);
  EXPECT_EQ(hopeless.target, 0);
}

TEST(ServeAdmit, OffPolicyIsAPinnedNoOp) {
  Network net = nested_net();
  ::unsetenv("STEPPING_ADMIT");
  ServeConfig cfg = reform_config(1, 4, 1);
  cfg.admit = AdmitPolicy::kEnv;  // resolves to kOff
  Server server(net, cfg);
  EXPECT_EQ(server.config().admit, AdmitPolicy::kOff);
  for (int i = 0; i < 4; ++i) {
    Request req;
    req.input = random_input(40 + static_cast<std::uint64_t>(i));
    req.deadline_ms = 1e6;  // a deadline alone must not trigger admission
    server.serve(std::move(req));
  }
  const CounterSnapshot s = server.counters();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.admit_accepted, 0u);
  EXPECT_EQ(s.admit_degraded, 0u);
  EXPECT_EQ(s.admit_rejected, 0u);
}

TEST(ServeAdmit, RejectFailsHopelessRequestsWithoutCountingAMiss) {
  Network net = nested_net();
  ServeConfig cfg = reform_config(1, 4, 1);
  cfg.admit = AdmitPolicy::kReject;
  Server server(net, cfg);

  Request req;
  req.input = random_input(41);
  req.deadline_ms = 1e-4;  // even level 1 is predicted to finish late
  auto fut = server.submit(std::move(req));
  try {
    fut.get();
    FAIL() << "hopeless request must be rejected at admission";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("admission"), std::string::npos)
        << e.what();
  }
  CounterSnapshot s = server.counters();
  EXPECT_EQ(s.admit_rejected, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.deadline_misses, 0u)
      << "a rejected request never ran, so it cannot count as a miss";

  // A request without a deadline is always admitted and completes normally.
  Request ok;
  ok.input = random_input(42);
  const ServedResult res = server.serve(std::move(ok));
  EXPECT_EQ(res.exit_subnet, 3);
  s = server.counters();
  EXPECT_EQ(s.admit_accepted, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(ServeAdmit, DegradeCapsTheTargetLevel) {
  Network net = nested_net();
  ServeConfig cfg = reform_config(1, 4, 1);
  cfg.admit = AdmitPolicy::kDegrade;
  Server server(net, cfg);
  const Planner& p = server.planner();

  // A deadline that reaches level 1 but not the full ladder (queue empty, so
  // the admission verdict is a pure function of this deadline).
  const double deadline =
      (p.ladder_ms(1, cfg.max_batch) + p.ladder_ms(2, cfg.max_batch)) / 2.0;
  const Planner::AdmitDecision want = p.admit_decision(
      deadline, 0, cfg.num_workers, cfg.max_batch, Planner::LadderMode::kReuse);
  ASSERT_TRUE(want.admit);
  ASSERT_TRUE(want.degraded);
  ASSERT_EQ(want.target, 1);

  Request req;
  req.input = random_input(43);
  req.deadline_ms = deadline;
  const ServedResult res = server.serve(std::move(req));
  EXPECT_LE(res.exit_subnet, want.target)
      << "the degrade cap bounds the exit level";
  const CounterSnapshot s = server.counters();
  EXPECT_EQ(s.admit_degraded, 1u);
  EXPECT_EQ(s.admit_rejected, 0u);
  EXPECT_EQ(s.completed, 1u);

  // Hopeless requests are still rejected under degrade.
  Request bad;
  bad.input = random_input(44);
  bad.deadline_ms = 1e-4;
  auto fut = server.submit(std::move(bad));
  EXPECT_THROW(fut.get(), std::runtime_error);
  EXPECT_EQ(server.counters().admit_rejected, 1u);
}

TEST(ServeAdmit, PolicyNamesParseAndRoundTrip) {
  AdmitPolicy p = AdmitPolicy::kEnv;
  EXPECT_TRUE(parse_admit_policy("off", &p));
  EXPECT_EQ(p, AdmitPolicy::kOff);
  EXPECT_TRUE(parse_admit_policy("reject", &p));
  EXPECT_EQ(p, AdmitPolicy::kReject);
  EXPECT_TRUE(parse_admit_policy("degrade", &p));
  EXPECT_EQ(p, AdmitPolicy::kDegrade);
  EXPECT_FALSE(parse_admit_policy("nope", &p));
  EXPECT_EQ(p, AdmitPolicy::kDegrade) << "failed parse must not clobber *out";
  EXPECT_STREQ(admit_policy_name(AdmitPolicy::kOff), "off");
  EXPECT_STREQ(admit_policy_name(AdmitPolicy::kReject), "reject");
  EXPECT_STREQ(admit_policy_name(AdmitPolicy::kDegrade), "degrade");

  ::setenv("STEPPING_ADMIT", "degrade", 1);
  Network net = nested_net();
  ServeConfig cfg = reform_config(1, 4, 1);
  cfg.admit = AdmitPolicy::kEnv;
  Server server(net, cfg);
  EXPECT_EQ(server.config().admit, AdmitPolicy::kDegrade);
  ::unsetenv("STEPPING_ADMIT");
}

}  // namespace
}  // namespace stepping::serve
