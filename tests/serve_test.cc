// Anytime-serving subsystem tests (ISSUE 2): deterministic-clock planner
// decisions, EDF queue semantics, and the end-to-end property that served
// logits are bitwise-identical to a direct Network::forward of the exit
// subnet — batching, stepping and scheduling must change *when* work
// happens, never the answer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/latency.h"
#include "core/macs.h"
#include "models/models.h"
#include "serve/planner.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace stepping::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The hand-built 3-subnet network the incremental tests use.
Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, 1 + (u % 3));
    }
  }
  return net;
}

Tensor random_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  return x;
}

/// A synthetic cost table: full = 100/300/600/1000, head = 10 at every
/// level. On a 1 MMAC/ms device with 0.5 ms overhead the ladder steps cost
/// 0.6 / 0.71 / 0.81 / 0.91 ms (per image).
LevelCosts synthetic_costs() {
  LevelCosts c;
  c.full = {100'000, 300'000, 600'000, 1'000'000};
  c.body = {90'000, 290'000, 590'000, 990'000};
  return c;
}

DeviceModel synthetic_device() {
  DeviceModel dev;
  dev.name = "synthetic";
  dev.macs_per_second = 1e8;  // 0.1 MMAC/ms
  dev.fixed_overhead_ms = 0.5;
  return dev;
}

// ---------------------------------------------------------------------------
// Planner: pure functions of (remaining time, remaining budget) — every
// decision below is driven by a synthetic "clock" value, no timers involved.
// ---------------------------------------------------------------------------

TEST(ServePlanner, LevelCostsMatchAnalyticMacCounts) {
  Network net = nested_net();
  const LevelCosts costs = measure_level_costs(net, 3);
  ASSERT_EQ(costs.max_level(), 3);
  for (int l = 1; l <= 3; ++l) {
    EXPECT_EQ(costs.full[static_cast<std::size_t>(l - 1)], subnet_macs(net, l));
    EXPECT_LT(costs.body[static_cast<std::size_t>(l - 1)],
              costs.full[static_cast<std::size_t>(l - 1)]);
  }
  // Reuse identity: stepping the whole ladder costs full(L) plus the head
  // recomputes of the intermediate levels — strictly less than re-running
  // every subnet from scratch.
  const std::int64_t ladder = costs.stepped_macs_through(3);
  const std::int64_t from_scratch =
      std::accumulate(costs.full.begin(), costs.full.end(), std::int64_t{0});
  EXPECT_LT(ladder, from_scratch);
  EXPECT_GE(ladder, costs.full[2]);
}

TEST(ServePlanner, StepMacsFollowsReuseIdentity) {
  const LevelCosts c = synthetic_costs();
  for (int to = 1; to <= 4; ++to) {
    EXPECT_EQ(c.step_macs(0, to), c.full[static_cast<std::size_t>(to - 1)]);
    for (int from = 1; from < to; ++from) {
      EXPECT_EQ(c.step_macs(from, to),
                c.full[static_cast<std::size_t>(to - 1)] -
                    c.body[static_cast<std::size_t>(from - 1)]);
    }
  }
  EXPECT_EQ(c.stepped_macs_through(1), c.full[0]);
  EXPECT_EQ(c.stepped_macs_through(2), c.full[0] + c.step_macs(1, 2));
}

TEST(ServePlanner, TargetLevelIsMonotonicInRemainingTime) {
  const Planner p(synthetic_costs(), synthetic_device());
  int prev = 0;
  for (const double remaining : {0.0, 0.5, 1.5, 3.0, 6.0, 10.0, 1e9}) {
    const int target = p.target_level(remaining);
    EXPECT_GE(target, prev) << "more slack must never lower the target";
    prev = target;
  }
  EXPECT_EQ(p.target_level(kInf), 4);
  EXPECT_EQ(p.target_level(-1.0), 0);   // hopeless: caller still runs level 1
  EXPECT_EQ(p.target_level(0.0), 0);
}

TEST(ServePlanner, TargetLevelStepsDownUnderLoad) {
  // The server feeds the planner `deadline - now`; queueing shrinks that
  // remainder, so the same request plans a smaller subnet when it waited.
  const Planner p(synthetic_costs(), synthetic_device());
  const double deadline = p.ladder_ms(4) + 0.01;
  const int fresh = p.target_level(deadline);
  EXPECT_EQ(fresh, 4);
  const int after_wait = p.target_level(deadline - p.ladder_ms(2));
  EXPECT_LT(after_wait, fresh);
  EXPECT_GE(after_wait, 1);
}

TEST(ServePlanner, TargetLevelAccountsForBatchSize) {
  const Planner p(synthetic_costs(), synthetic_device());
  const double remaining = p.ladder_ms(4, /*batch=*/1) + 0.01;
  EXPECT_EQ(p.target_level(remaining, 1), 4);
  // A batch multiplies the MAC term; the same slack plans fewer levels.
  EXPECT_LT(p.target_level(remaining, 8), 4);
}

TEST(ServePlanner, StepFitsBudgetExhaustion) {
  const LevelCosts c = synthetic_costs();
  const Planner p(c, synthetic_device());
  // Unlimited budget, unlimited time: everything fits.
  EXPECT_TRUE(p.step_fits(1, 2, kInf, -1));
  // Budget one MAC short of the step: exhausted.
  EXPECT_FALSE(p.step_fits(1, 2, kInf, c.step_macs(1, 2) - 1));
  EXPECT_TRUE(p.step_fits(1, 2, kInf, c.step_macs(1, 2)));
  // Zero budget blocks even the cheapest step.
  EXPECT_FALSE(p.step_fits(3, 4, kInf, 0));
  // Deadline side: the step's wall-clock must fit the remaining slack.
  EXPECT_FALSE(p.step_fits(1, 2, 0.0, -1));
  EXPECT_TRUE(p.step_fits(1, 2, p.step_ms(1, 2) + 0.01, -1));
  EXPECT_FALSE(p.step_fits(1, 2, p.step_ms(1, 2, 4) - 0.01, -1, /*batch=*/4));
}

// ---------------------------------------------------------------------------
// RequestQueue: EDF ordering, bounded admission, close semantics.
// ---------------------------------------------------------------------------

Job make_job(std::uint64_t seq, double deadline_abs_ms) {
  Job j;
  j.seq = seq;
  j.deadline_abs_ms = deadline_abs_ms;
  return j;
}

TEST(ServeQueue, PopsInDeadlineOrder) {
  RequestQueue q(16);
  ASSERT_TRUE(q.push(make_job(0, 30.0)));
  ASSERT_TRUE(q.push(make_job(1, 10.0)));
  ASSERT_TRUE(q.push(make_job(2, 0.0)));  // no deadline: sorts last
  ASSERT_TRUE(q.push(make_job(3, 20.0)));
  EXPECT_EQ(q.depth(), 4u);
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(4, batch));
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].seq, 1u);
  EXPECT_EQ(batch[1].seq, 3u);
  EXPECT_EQ(batch[2].seq, 0u);
  EXPECT_EQ(batch[3].seq, 2u);
}

TEST(ServeQueue, FifoAmongEqualDeadlines) {
  RequestQueue q(16);
  for (std::uint64_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(q.push(make_job(s, 5.0)));
  }
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(4, batch));
  for (std::uint64_t s = 0; s < 4; ++s) {
    EXPECT_EQ(batch[static_cast<std::size_t>(s)].seq, s);
  }
}

TEST(ServeQueue, PopBatchHonoursMaxBatch) {
  RequestQueue q(16);
  for (std::uint64_t s = 0; s < 5; ++s) {
    ASSERT_TRUE(q.push(make_job(s, 1.0 + static_cast<double>(s))));
  }
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(2, batch));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(q.depth(), 3u);
  ASSERT_TRUE(q.pop_batch(2, batch));
  EXPECT_EQ(batch.size(), 2u);
  ASSERT_TRUE(q.pop_batch(2, batch));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(ServeQueue, CapacityBoundsAdmission) {
  RequestQueue q(2);
  EXPECT_TRUE(q.push(make_job(0, 1.0)));
  EXPECT_TRUE(q.push(make_job(1, 2.0)));
  EXPECT_FALSE(q.push(make_job(2, 3.0)));
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(1, batch));
  EXPECT_TRUE(q.push(make_job(3, 4.0)));  // slot freed
}

TEST(ServeQueue, CloseDrainsThenStops) {
  RequestQueue q(8);
  ASSERT_TRUE(q.push(make_job(0, 1.0)));
  ASSERT_TRUE(q.push(make_job(1, 2.0)));
  q.close();
  EXPECT_FALSE(q.push(make_job(2, 3.0)));
  std::vector<Job> batch;
  ASSERT_TRUE(q.pop_batch(8, batch));  // drains the two admitted jobs
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(q.pop_batch(8, batch)) << "closed + empty must return false";
}

// ---------------------------------------------------------------------------
// Server: end-to-end parity and scheduling behavior.
// ---------------------------------------------------------------------------

ServeConfig base_config(int workers = 1, bool reuse = true) {
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = workers;
  cfg.max_batch = 4;
  cfg.reuse = reuse;
  cfg.device = synthetic_device();  // planning only; no deadline = no effect
  return cfg;
}

/// Budget that forces a request to exit exactly at `level`: it covers the
/// ladder through `level` but not the next step. In no-reuse mode every
/// level pays full cost, so the ladder sum differs.
std::int64_t budget_for_exit(const Planner& p, int level, bool reuse) {
  if (reuse) return p.costs().stepped_macs_through(level);
  std::int64_t sum = 0;
  for (int l = 1; l <= level; ++l) {
    sum += p.costs().full[static_cast<std::size_t>(l - 1)];
  }
  return sum;
}

TEST(ServeServer, ServedLogitsBitwiseEqualDirectForwardAtEveryExitLevel) {
  Network net = nested_net();
  for (const bool reuse : {true, false}) {
    Server server(net, base_config(/*workers=*/1, reuse));
    for (int level = 1; level <= 3; ++level) {
      const Tensor x = random_input(100 + static_cast<std::uint64_t>(level));
      Request req;
      req.input = x;
      req.mac_budget = budget_for_exit(server.planner(), level, reuse);
      const ServedResult res = server.serve(std::move(req));
      ASSERT_EQ(res.exit_subnet, level) << "reuse=" << reuse;

      SubnetContext ctx;
      ctx.subnet_id = level;
      const Tensor direct = net.forward(x, ctx);
      ASSERT_EQ(res.logits.shape(), direct.shape());
      EXPECT_EQ(0, std::memcmp(res.logits.data(), direct.data(),
                               sizeof(float) *
                                   static_cast<std::size_t>(direct.numel())))
          << "serving must not change the answer (reuse=" << reuse
          << ", level=" << level << ")";
    }
  }
}

TEST(ServeServer, ReuseAndBaselineAgreeBitwiseAtEqualExitLevel) {
  Network net = nested_net();
  const Tensor x = random_input(7);
  Tensor logits[2];
  std::int64_t macs[2] = {0, 0};
  for (const bool reuse : {true, false}) {
    Server server(net, base_config(1, reuse));
    Request req;
    req.input = x;
    const ServedResult res = server.serve(std::move(req));
    EXPECT_EQ(res.exit_subnet, 3);
    logits[reuse ? 0 : 1] = res.logits;
    macs[reuse ? 0 : 1] = res.macs;
  }
  ASSERT_EQ(logits[0].shape(), logits[1].shape());
  EXPECT_EQ(0, std::memcmp(logits[0].data(), logits[1].data(),
                           sizeof(float) *
                               static_cast<std::size_t>(logits[0].numel())));
  EXPECT_LT(macs[0], macs[1])
      << "identical answers, but reuse must attribute fewer MACs";
}

TEST(ServeServer, PreliminaryResultPrecedesRefinements) {
  Network net = nested_net();
  Server server(net, base_config());
  Request req;
  req.input = random_input(8);
  std::vector<StepUpdate> seen;
  std::mutex seen_mutex;
  req.on_step = [&](const StepUpdate& s) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    seen.push_back(s);
  };
  const ServedResult res = server.serve(std::move(req));
  ASSERT_EQ(res.exit_subnet, 3);
  ASSERT_EQ(seen.size(), 3u) << "one update per level, preliminary first";
  EXPECT_EQ(seen.front().subnet, 1);
  EXPECT_FALSE(seen.front().final);
  EXPECT_TRUE(seen.back().final);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].subnet, seen[i - 1].subnet + 1);
    EXPECT_GE(seen[i].at_ms, seen[i - 1].at_ms);
    EXPECT_GT(seen[i].macs, seen[i - 1].macs);
  }
  EXPECT_EQ(res.steps.size(), 3u);
  EXPECT_LE(res.first_result_ms, res.final_ms);
}

TEST(ServeServer, BudgetExhaustionExitsAtLevelOne) {
  Network net = nested_net();
  Server server(net, base_config());
  Request req;
  req.input = random_input(9);
  req.mac_budget = 1;  // absurdly small — still gets the anytime answer
  const ServedResult res = server.serve(std::move(req));
  EXPECT_EQ(res.exit_subnet, 1);
  EXPECT_EQ(res.steps.size(), 1u);
}

TEST(ServeServer, HopelessDeadlineStillAnswersAndCountsMiss) {
  Network net = nested_net();
  ServeConfig cfg = base_config();
  // A real (calibrated-scale) device model so the planner's level-1 estimate
  // genuinely exceeds the microsecond deadline below.
  cfg.device = synthetic_device();
  Server server(net, cfg);
  Request req;
  req.input = random_input(10);
  req.deadline_ms = 1e-4;
  const ServedResult res = server.serve(std::move(req));
  EXPECT_EQ(res.exit_subnet, 1) << "anytime: always answer something";
  EXPECT_TRUE(res.deadline_missed);
  EXPECT_EQ(server.counters().deadline_misses, 1u);
}

TEST(ServeServer, ConfidenceGateStopsRefinement) {
  Network net = nested_net();
  ServeConfig cfg = base_config();
  cfg.confidence_threshold = 1e-9;  // any probability clears it
  Server server(net, cfg);
  Request req;
  req.input = random_input(11);
  const ServedResult res = server.serve(std::move(req));
  EXPECT_EQ(res.exit_subnet, 1);
  EXPECT_GT(res.confidence, 0.0);
}

TEST(ServeServer, RejectsWrongShapeAndCountsIt) {
  Network net = nested_net();
  Server server(net, base_config());
  Request req;
  req.input = Tensor({1, 3, 8, 8});  // wrong spatial size
  auto fut = server.submit(std::move(req));
  EXPECT_THROW(fut.get(), std::invalid_argument);
  EXPECT_EQ(server.counters().rejected, 1u);
  EXPECT_EQ(server.counters().completed, 0u);
}

TEST(ServeServer, SubmitAfterShutdownFailsTheFuture) {
  Network net = nested_net();
  Server server(net, base_config());
  server.shutdown();
  Request req;
  req.input = random_input(12);
  auto fut = server.submit(std::move(req));
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ServeServer, MultiWorkerParityUnderConcurrentLoad) {
  Network net = nested_net();
  ServeConfig cfg = base_config(/*workers=*/3);
  Server server(net, cfg);
  const Planner& planner = server.planner();

  constexpr int kRequests = 24;
  std::vector<Tensor> inputs;
  std::vector<int> want_level(kRequests);
  std::vector<std::future<ServedResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(random_input(200 + static_cast<std::uint64_t>(i)));
    want_level[static_cast<std::size_t>(i)] = 1 + (i % 3);
    Request req;
    req.input = inputs[static_cast<std::size_t>(i)];
    req.mac_budget = budget_for_exit(
        planner, want_level[static_cast<std::size_t>(i)], /*reuse=*/true);
    futures.push_back(server.submit(std::move(req)));
  }

  Network ref = net.clone();  // futures are drained serially below
  for (int i = 0; i < kRequests; ++i) {
    const ServedResult res = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(res.exit_subnet, want_level[static_cast<std::size_t>(i)]);
    SubnetContext ctx;
    ctx.subnet_id = res.exit_subnet;
    const Tensor direct =
        ref.forward(inputs[static_cast<std::size_t>(i)], ctx);
    ASSERT_EQ(0, std::memcmp(res.logits.data(), direct.data(),
                             sizeof(float) *
                                 static_cast<std::size_t>(direct.numel())))
        << "request " << i;
  }

  const CounterSnapshot snap = server.counters();
  EXPECT_EQ(snap.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(std::accumulate(snap.exits_per_subnet.begin(),
                            snap.exits_per_subnet.end(), std::uint64_t{0}),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(snap.batches, 1u);
  EXPECT_EQ(snap.batched_inputs, static_cast<std::uint64_t>(kRequests));
}

TEST(ServeServer, MetricsSnapshotConsistentUnderConcurrentLoad) {
  Network net = nested_net();
  ServeConfig cfg = base_config(/*workers=*/3);
  Server server(net, cfg);

  constexpr int kRequests = 48;
  std::vector<std::future<ServedResult>> futures;
  std::atomic<bool> done{false};

  // Snapshot continuously while the load runs: the ordered counter updates
  // must keep the invariants true at EVERY observation, not just at rest.
  std::thread snapshotter([&] {
    while (!done.load()) {
      const CounterSnapshot s = server.counters();
      const std::uint64_t exits_sum =
          std::accumulate(s.exits_per_subnet.begin(), s.exits_per_subnet.end(),
                          std::uint64_t{0});
      EXPECT_LE(s.deadline_misses, s.completed);
      EXPECT_LE(exits_sum, s.completed);
      EXPECT_LE(s.completed, s.submitted);
      EXPECT_LE(s.batched_inputs, s.completed);
    }
  });

  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.input = random_input(500 + static_cast<std::uint64_t>(i));
    req.mac_budget =
        budget_for_exit(server.planner(), 1 + (i % 3), /*reuse=*/true);
    futures.push_back(server.submit(std::move(req)));
  }
  for (auto& f : futures) f.get();
  done.store(true);
  snapshotter.join();

  // Quiescent: the inequalities tighten to equalities.
  const CounterSnapshot s = server.counters();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(std::accumulate(s.exits_per_subnet.begin(),
                            s.exits_per_subnet.end(), std::uint64_t{0}),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.batched_inputs, static_cast<std::uint64_t>(kRequests));
  EXPECT_LE(s.deadline_misses, s.completed);
}

TEST(ServeServer, MetricsJsonReflectsRegistryAndReuseSavings) {
  Network net = nested_net();
  Server server(net, base_config());
  Request req;
  req.input = random_input(90);
  server.serve(std::move(req));  // full ladder: levels 2 and 3 reuse level 1

  const std::string json = server.metrics_json();
  EXPECT_NE(json.find("\"serve_completed_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"serve_exits_subnet_3_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"serve_final_ms\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(json, server.metrics_json()) << "idle snapshots are deterministic";

  // Reuse must have saved MACs vs the no-reuse baseline on levels 2 and 3.
  EXPECT_GT(server.metrics().counter("serve_reuse_macs_saved_total").value(),
            0u);
  const std::string prom = server.metrics_prometheus();
  EXPECT_NE(prom.find("# TYPE serve_completed_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("serve_final_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Precision policies (ISSUE 7): int8 as a rung of the anytime ladder.
// ---------------------------------------------------------------------------

/// Calibration table for nested_net() over a few random inputs.
std::shared_ptr<quant::CalibrationTable> nested_calibration(Network& net) {
  Rng rng(77);
  Tensor xs({4, 3, 32, 32});
  fill_normal(xs, 0.0f, 1.0f, rng);
  return calibrate_int8(net, xs, /*batch=*/4, /*max_level=*/3);
}

TEST(ServeQuant, AutoPublishesInt8PreliminaryThenFp32Refines) {
  Network net = nested_net();
  ServeConfig cfg = base_config();
  cfg.precision = quant::Precision::kAuto;
  cfg.calibration = nested_calibration(net);
  Server server(net, cfg);

  Request req;
  req.input = random_input(60);
  std::vector<StepUpdate> seen;
  std::mutex seen_mutex;
  req.on_step = [&](const StepUpdate& s) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    seen.push_back(s);
  };
  const ServedResult res = server.serve(std::move(req));
  ASSERT_EQ(res.exit_subnet, 3);

  // First update: the int8 preliminary at the planned target, never final.
  ASSERT_GE(seen.size(), 2u);
  EXPECT_TRUE(seen.front().int8);
  EXPECT_FALSE(seen.front().final);
  EXPECT_EQ(seen.front().subnet, 3) << "preliminary runs at the target level";
  // Refinements are the fp32 ladder: the final answer stays bitwise equal to
  // the pure-fp32 reference — auto only changes WHEN a first answer exists.
  EXPECT_FALSE(seen.back().int8);
  EXPECT_TRUE(seen.back().final);
  SubnetContext ctx;
  ctx.subnet_id = 3;
  const Tensor direct = net.forward(random_input(60), ctx);
  ASSERT_EQ(res.logits.shape(), direct.shape());
  EXPECT_EQ(0, std::memcmp(res.logits.data(), direct.data(),
                           sizeof(float) *
                               static_cast<std::size_t>(direct.numel())));
  EXPECT_GT(server.metrics().counter("serve_int8_passes_total").value(), 0u);
  EXPECT_LE(res.first_result_ms, res.final_ms);
}

TEST(ServeQuant, Int8LadderMatchesDirectInt8ForwardBitwise) {
  Network net = nested_net();
  ServeConfig cfg = base_config();
  cfg.precision = quant::Precision::kInt8;
  cfg.calibration = nested_calibration(net);
  Server server(net, cfg);

  const Tensor x = random_input(61);
  Request req;
  req.input = x;
  std::vector<StepUpdate> seen;
  std::mutex seen_mutex;
  req.on_step = [&](const StepUpdate& s) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    seen.push_back(s);
  };
  const ServedResult res = server.serve(std::move(req));
  ASSERT_EQ(res.exit_subnet, 3);
  ASSERT_EQ(seen.size(), 3u);
  for (const StepUpdate& s : seen) EXPECT_TRUE(s.int8);

  // The int8 ladder never reuses (exact-reuse is an fp32-only property), so
  // no reuse savings may be attributed...
  EXPECT_EQ(server.metrics().counter("serve_reuse_macs_saved_total").value(),
            0u);
  // ...and the answer equals a direct int8 forward of the exit subnet (the
  // single-TU dequant makes int8 outputs deterministic too).
  SubnetContext ctx;
  ctx.subnet_id = 3;
  ctx.num_subnets = 3;
  ctx.precision = quant::Precision::kInt8;
  ctx.calibration = cfg.calibration.get();
  const Tensor direct = net.forward(x, ctx);
  ASSERT_EQ(res.logits.shape(), direct.shape());
  EXPECT_EQ(0, std::memcmp(res.logits.data(), direct.data(),
                           sizeof(float) *
                               static_cast<std::size_t>(direct.numel())));
}

TEST(ServeServer, ThreeDInputIsNormalized) {
  Network net = nested_net();
  Server server(net, base_config());
  Rng rng(33);
  Tensor x3({3, 32, 32});
  fill_normal(x3, 0.0f, 1.0f, rng);
  Request req;
  req.input = x3;
  const ServedResult res = server.serve(std::move(req));
  EXPECT_EQ(res.exit_subnet, 3);
  EXPECT_EQ(res.logits.dim(0), 1);
  EXPECT_EQ(res.logits.dim(1), 10);
}

}  // namespace
}  // namespace stepping::serve
