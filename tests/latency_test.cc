#include <gtest/gtest.h>

#include "baselines/any_width.h"
#include "core/latency.h"
#include "core/macs.h"
#include "models/models.h"

namespace stepping {
namespace {

Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets = {full / 8, full / 3, (2 * full) / 3};
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
  return net;
}

TEST(Latency, ModelIsAffineInMacs) {
  DeviceModel dev{"test", 1e9, 1.0};
  EXPECT_DOUBLE_EQ(dev.latency_ms(0), 1.0);
  EXPECT_DOUBLE_EQ(dev.latency_ms(1'000'000), 2.0);
  EXPECT_DOUBLE_EQ(dev.latency_ms(2'000'000), 3.0);
}

TEST(Latency, PresetsOrderedByThroughput) {
  EXPECT_LT(device_mcu().macs_per_second, device_mobile_cpu().macs_per_second);
  EXPECT_LT(device_mobile_cpu().macs_per_second,
            device_mobile_npu().macs_per_second);
}

TEST(Latency, SubnetLatenciesMonotone) {
  Network net = nested_net();
  const auto lat = subnet_latencies_ms(net, 3, device_mobile_cpu());
  ASSERT_EQ(lat.size(), 3u);
  EXPECT_LT(lat[0], lat[1]);
  EXPECT_LT(lat[1], lat[2]);
}

TEST(Latency, LargestSubnetWithinDeadline) {
  Network net = nested_net();
  const DeviceModel dev{"test", 1e9, 0.0};
  const auto lat = subnet_latencies_ms(net, 3, dev);
  // Deadline exactly between subnet 2 and subnet 3.
  const double deadline = 0.5 * (lat[1] + lat[2]);
  EXPECT_EQ(largest_subnet_within(net, 3, dev, deadline), 2);
  EXPECT_EQ(largest_subnet_within(net, 3, dev, lat[2] + 1.0), 3);
  // Impossible deadline: even subnet 1 misses.
  EXPECT_EQ(largest_subnet_within(net, 3, dev, lat[0] * 0.5), 0);
}

TEST(Latency, BudgetsForLatenciesInvertTheModel) {
  const DeviceModel dev{"test", 2e9, 0.5};
  const std::int64_t ref = 10'000'000;
  const auto budgets = budgets_for_latencies({1.0, 3.0, 5.5}, dev, ref);
  ASSERT_EQ(budgets.size(), 3u);
  // target 1.0ms: (1.0 - 0.5)ms * 2e9 MAC/s = 1e6 MACs = 0.1 of ref.
  EXPECT_NEAR(budgets[0], 0.1, 1e-9);
  EXPECT_NEAR(budgets[1], 0.5, 1e-9);
  EXPECT_NEAR(budgets[2], 1.0, 1e-9);
}

TEST(Latency, BudgetsClampedNonDecreasing) {
  const DeviceModel dev{"test", 1e9, 0.0};
  const auto budgets = budgets_for_latencies({5.0, 2.0, 8.0}, dev, 1'000'000);
  EXPECT_LE(budgets[0], budgets[1]);
  EXPECT_LE(budgets[1], budgets[2]);
}

TEST(Latency, CalibrationProducesPositiveThroughput) {
  Network net = nested_net();
  const DeviceModel host = calibrate_device(net, /*subnet_id=*/1, /*batch=*/2,
                                            /*reps=*/1);
  EXPECT_GT(host.macs_per_second, 0.0);
  // One CPU core lands somewhere between an MCU and a datacenter GPU.
  EXPECT_GT(host.macs_per_second, 1e6);
  EXPECT_LT(host.macs_per_second, 1e13);
}

}  // namespace
}  // namespace stepping
