#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.h"

namespace stepping {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ConstructZeroFilled) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructFromData) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, ShapeDataMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, NonPositiveExtentThrows) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1}), std::invalid_argument);
}

TEST(Tensor, RowMajor2dIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
}

TEST(Tensor, Nchw4dIndexing) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
  t.at(0, 0, 0, 1) = 2.0f;
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(2.5f);
  EXPECT_EQ(t.sum(), 7.5);
  t.zero();
  EXPECT_EQ(t.sum(), 0.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.rank(), 2);
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at(2, 1), 5.0f);
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, Argmax) {
  Tensor t({5}, {1.0f, 7.0f, 3.0f, 7.0f, 0.0f});
  EXPECT_EQ(t.argmax(), 1);  // first on ties
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, ShapeStr) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.shape_str(), "[2, 3, 4]");
}

}  // namespace
}  // namespace stepping
