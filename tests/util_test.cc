#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/env.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace stepping {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(21), b(21);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Env, FallbackWhenUnset) {
  EXPECT_EQ(env_or("STEPPING_DEFINITELY_UNSET_VAR", "dflt"), "dflt");
  EXPECT_EQ(env_or_int("STEPPING_DEFINITELY_UNSET_VAR", 42), 42);
  EXPECT_DOUBLE_EQ(env_or_double("STEPPING_DEFINITELY_UNSET_VAR", 1.5), 1.5);
}

TEST(Env, ParsesSetValues) {
  setenv("STEPPING_TEST_VAR", "123", 1);
  EXPECT_EQ(env_or_int("STEPPING_TEST_VAR", 0), 123);
  setenv("STEPPING_TEST_VAR", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_or_double("STEPPING_TEST_VAR", 0.0), 2.25);
  setenv("STEPPING_TEST_VAR", "not_a_number", 1);
  EXPECT_EQ(env_or_int("STEPPING_TEST_VAR", 9), 9);
  unsetenv("STEPPING_TEST_VAR");
}

TEST(Table, FormatsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2.50%"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   |"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
}

TEST(Table, PercentFormatter) {
  EXPECT_EQ(Table::fmt_pct(0.685), "68.50%");
  EXPECT_EQ(Table::fmt_pct(1.0, 0), "100%");
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"x,y", "plain"});
  const std::string path = ::testing::TempDir() + "/stepping_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);  // header
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);  // row
  EXPECT_NE(std::string(buf).find("\"x,y\""), std::string::npos);
  std::fclose(f);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.seconds(), 0.0);
  (void)sink;
  EXPECT_GE(t.milliseconds(), t.seconds() * 1000.0 * 0.99);
}

}  // namespace
}  // namespace stepping
