#include <gtest/gtest.h>

#include "baselines/any_width.h"
#include "baselines/slimmable.h"
#include "core/macs.h"
#include "core/train_loops.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

// ---------------------------------------------------------------------------
// Any-width
// ---------------------------------------------------------------------------

Network small_expanded() {
  return build_lenet3c1l(
      ModelConfig{.classes = 10, .expansion = 1.5, .width_mult = 0.2});
}

TEST(AnyWidth, PrefixMacsMonotoneInFraction) {
  Network net = small_expanded();
  std::int64_t prev = 0;
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    const std::int64_t m = prefix_macs(net, f);
    EXPECT_GE(m, prev);
    prev = m;
  }
  EXPECT_EQ(prefix_macs(net, 1.0), full_macs(net));
}

TEST(AnyWidth, SolvedFractionsHitBudgets) {
  Network net = small_expanded();
  const std::int64_t full = full_macs(net);
  const std::vector<std::int64_t> budgets = {full / 10, full / 3, full / 2};
  const auto fracs = solve_prefix_fractions(net, budgets);
  ASSERT_EQ(fracs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const std::int64_t got = prefix_macs(net, fracs[i]);
    EXPECT_LE(got, budgets[i]);
    // Within one quantization step of the budget (unit granularity).
    EXPECT_GT(got, static_cast<std::int64_t>(0.5 * budgets[i]));
  }
  EXPECT_LE(fracs[0], fracs[1]);
  EXPECT_LE(fracs[1], fracs[2]);
}

TEST(AnyWidth, PrefixAssignmentsAreNestedPrefixes) {
  Network net = small_expanded();
  assign_prefix_subnets(net, {0.25, 0.5, 0.75});
  for (MaskedLayer* m : net.body_layers()) {
    const auto& a = m->unit_subnet();
    // Assignments must be non-decreasing along the unit index (prefix
    // structure) and within [1, 4].
    for (std::size_t u = 1; u < a.size(); ++u) EXPECT_GE(a[u], a[u - 1]);
    EXPECT_GE(a.front(), 1);
    EXPECT_LE(a.back(), 4);
  }
}

TEST(AnyWidth, EndToEndTrainsAboveChance) {
  const DataSplit data =
      make_synthetic(synth_cifar10(/*train_per_class=*/20, /*test_per_class=*/8));
  AnyWidthConfig cfg;
  cfg.num_subnets = 3;
  cfg.mac_budget_frac = {0.1, 0.4, 0.8};
  Network net = small_expanded();
  cfg.reference_macs = full_macs(net);
  AnyWidthNet awn(std::move(net), cfg);
  awn.configure();
  awn.train(data.train, /*epochs=*/4, /*batch_size=*/20);
  const double acc3 = awn.accuracy(data.test, 3);
  EXPECT_GT(acc3, 0.2);
  // MAC fractions respect the ladder.
  EXPECT_LE(awn.mac_fraction(1), 0.11);
  EXPECT_LE(awn.mac_fraction(2), 0.41);
  EXPECT_LE(awn.mac_fraction(3), 0.81);
}

// ---------------------------------------------------------------------------
// Slimmable
// ---------------------------------------------------------------------------

TEST(Slimmable, SpecMacsMatchFullNetworkAtFractionOne) {
  const SlimSpec spec = slim_spec_for_model("lenet3c1l", 10, 1.5, 0.2);
  Network ref = small_expanded();
  EXPECT_EQ(slim_macs_for_fraction(spec, 1.0), full_macs(ref));
}

TEST(Slimmable, MacsMonotoneInFraction) {
  const SlimSpec spec = slim_spec_for_model("lenet5", 10, 1.0, 0.5);
  std::int64_t prev = 0;
  for (double f = 0.1; f <= 1.0; f += 0.1) {
    const std::int64_t m = slim_macs_for_fraction(spec, f);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(Slimmable, SolvedFractionsNestAndRespectBudgets) {
  const SlimSpec spec = slim_spec_for_model("lenet3c1l", 10, 1.5, 0.2);
  const std::int64_t full = slim_macs_for_fraction(spec, 1.0);
  const auto fracs = solve_slim_fractions(spec, {full / 8, full / 3, full / 2});
  EXPECT_LE(fracs[0], fracs[1]);
  EXPECT_LE(fracs[1], fracs[2]);
  EXPECT_LE(slim_macs_for_fraction(spec, fracs[0]), full / 8);
}

TEST(Slimmable, ForwardShapesAndWidthSelection) {
  const SlimSpec spec = slim_spec_for_model("lenet3c1l", 10, 1.0, 0.3);
  SlimmableNet net(spec, {0.3, 0.6, 1.0});
  Rng rng(3);
  Tensor x({2, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  for (int sub = 1; sub <= 3; ++sub) {
    const Tensor y = net.forward(x, sub, /*training=*/false);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}));
  }
  EXPECT_LT(net.macs(1), net.macs(2));
  EXPECT_LT(net.macs(2), net.macs(3));
}

TEST(Slimmable, UnknownModelThrows) {
  EXPECT_THROW(slim_spec_for_model("alexnet", 10, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Slimmable, JointTrainingLearnsAllSwitches) {
  const DataSplit data =
      make_synthetic(synth_cifar10(/*train_per_class=*/20, /*test_per_class=*/8));
  const SlimSpec spec = slim_spec_for_model("lenet3c1l", 10, 1.0, 0.25);
  SlimmableNet net(spec, {0.35, 0.7, 1.0});
  net.train(data.train, /*epochs=*/4, /*batch_size=*/20, SgdConfig{});
  for (int sub = 1; sub <= 3; ++sub) {
    EXPECT_GT(net.accuracy(data.test, sub), 0.15) << "switch " << sub;
  }
}

TEST(Slimmable, SwitchableBnKeepsPerSwitchStatistics) {
  // Train only switch 2 on shifted data: switch 1's BN statistics must stay
  // untouched (separate parameter sets per switch).
  const SlimSpec spec = slim_spec_for_model("lenet3c1l", 10, 1.0, 0.2);
  SlimmableNet net(spec, {0.5, 1.0});
  Rng rng(5);
  Tensor x({4, 3, 32, 32});
  fill_normal(x, 3.0f, 1.0f, rng);
  const Tensor before1 = net.forward(x, 1, /*training=*/false);
  // Forward switch 2 in training mode a few times (updates its BN stats).
  for (int i = 0; i < 5; ++i) net.forward(x, 2, /*training=*/true);
  const Tensor after1 = net.forward(x, 1, /*training=*/false);
  for (std::int64_t i = 0; i < before1.numel(); ++i) {
    EXPECT_EQ(before1[i], after1[i]);
  }
}

}  // namespace
}  // namespace stepping
