// Tests for the benchmark harness configuration (bench/common.{h,cc}):
// the paper parameters baked into each spec and the scale ladder.
#include <gtest/gtest.h>

#include "common.h"
#include "core/macs.h"
#include "models/models.h"

namespace stepping::bench {
namespace {

TEST(BenchSpec, PaperBudgetsPerNetwork) {
  const ExperimentSpec a = spec_for("lenet3c1l", BenchScale::kQuick);
  EXPECT_EQ(a.budgets, (std::vector<double>{0.10, 0.30, 0.50, 0.85}));
  EXPECT_DOUBLE_EQ(a.expansion, 1.8);
  EXPECT_EQ(a.dataset, "c10");

  const ExperimentSpec b = spec_for("lenet5", BenchScale::kQuick);
  EXPECT_EQ(b.budgets, (std::vector<double>{0.15, 0.30, 0.60, 0.85}));
  EXPECT_DOUBLE_EQ(b.expansion, 2.0);

  const ExperimentSpec c = spec_for("vgg16", BenchScale::kQuick);
  EXPECT_EQ(c.budgets, (std::vector<double>{0.20, 0.40, 0.50, 0.70}));
  EXPECT_EQ(c.dataset, "c100");
}

TEST(BenchSpec, ScalesAreMonotoneInFidelity) {
  for (const char* model : {"lenet3c1l", "lenet5", "vgg16"}) {
    const ExperimentSpec q = spec_for(model, BenchScale::kQuick);
    const ExperimentSpec f = spec_for(model, BenchScale::kFull);
    const ExperimentSpec p = spec_for(model, BenchScale::kPaper);
    EXPECT_LE(q.width_mult, f.width_mult) << model;
    EXPECT_LE(f.width_mult, p.width_mult) << model;
    EXPECT_LE(q.train_per_class, f.train_per_class) << model;
    EXPECT_LE(f.train_per_class, p.train_per_class) << model;
    EXPECT_LE(q.max_iters, p.max_iters) << model;
  }
}

TEST(BenchSpec, PaperScaleMatchesPublishedIterationCounts) {
  const ExperimentSpec p = spec_for("lenet3c1l", BenchScale::kPaper);
  EXPECT_EQ(p.max_iters, 300);           // N_t
  EXPECT_EQ(p.batches_per_iter, 250);    // m for LeNets
  const ExperimentSpec v = spec_for("vgg16", BenchScale::kPaper);
  EXPECT_EQ(v.batches_per_iter, 100);    // m for VGG-16
  EXPECT_DOUBLE_EQ(p.width_mult, 1.0);
}

TEST(BenchSpec, MakeDataMatchesSpecSizes) {
  ExperimentSpec s = spec_for("lenet3c1l", BenchScale::kQuick);
  s.train_per_class = 5;
  s.test_per_class = 2;
  const DataSplit d = make_data(s);
  EXPECT_EQ(d.train.size(), 50);
  EXPECT_EQ(d.test.size(), 20);
  EXPECT_EQ(d.train.num_classes, 10);
}

TEST(BenchSpec, NoiseOverrideChangesData) {
  ExperimentSpec s = spec_for("lenet3c1l", BenchScale::kQuick);
  s.train_per_class = 3;
  s.test_per_class = 1;
  const DataSplit base = make_data(s);
  s.noise_override = 5.0;
  const DataSplit noisy = make_data(s);
  int diff = 0;
  for (std::int64_t i = 0; i < 200; ++i) {
    if (base.train.images[i] != noisy.train.images[i]) ++diff;
  }
  EXPECT_GT(diff, 100);
}

TEST(BenchSpec, ReferenceMacsUsesUnexpandedModel) {
  const ExperimentSpec s = spec_for("lenet3c1l", BenchScale::kQuick);
  ModelConfig mc;
  mc.classes = 10;
  mc.expansion = 1.0;
  mc.width_mult = s.width_mult;
  mc.seed = s.seed + 7;
  Network ref = build_model(s.model, mc);
  EXPECT_EQ(reference_macs(s), full_macs(ref));
}

}  // namespace
}  // namespace stepping::bench
