// Loopback TCP front end tests (ISSUE 2): wire-format round trips and a
// multi-client smoke test against an in-process server — replies must carry
// logits bitwise-identical to a direct forward of the exit subnet.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "models/models.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "tensor/ops.h"

namespace stepping::serve {
namespace {

Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, 1 + (u % 3));
    }
  }
  return net;
}

Tensor random_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  return x;
}

TEST(ServeProtocol, RequestRoundTrip) {
  WireRequest req;
  req.opcode = Opcode::kInfer;
  req.deadline_ms = 12.5;
  req.mac_budget = 123456789;
  req.c = 3;
  req.h = 4;
  req.w = 5;
  req.data.resize(60);
  for (std::size_t i = 0; i < req.data.size(); ++i) {
    req.data[i] = static_cast<float>(i) * 0.25f;
  }
  WireRequest out;
  ASSERT_TRUE(decode_request(encode_request(req), out));
  EXPECT_EQ(out.opcode, Opcode::kInfer);
  EXPECT_EQ(out.deadline_ms, 12.5);
  EXPECT_EQ(out.mac_budget, 123456789);
  EXPECT_EQ(out.c, 3u);
  EXPECT_EQ(out.h, 4u);
  EXPECT_EQ(out.w, 5u);
  EXPECT_EQ(out.data, req.data);
}

TEST(ServeProtocol, ReplyRoundTrip) {
  WireReply reply;
  reply.exit_subnet = 3;
  reply.confidence = 0.875;
  reply.deadline_missed = 1;
  reply.macs = 987654321;
  reply.first_result_ms = 1.5;
  reply.final_ms = 4.25;
  reply.logits = {0.5f, -1.25f, 3.0f};
  WireReply out;
  ASSERT_TRUE(decode_reply(encode_reply(reply), out));
  EXPECT_EQ(out.exit_subnet, 3u);
  EXPECT_EQ(out.confidence, 0.875);
  EXPECT_EQ(out.deadline_missed, 1);
  EXPECT_EQ(out.macs, 987654321);
  EXPECT_EQ(out.first_result_ms, 1.5);
  EXPECT_EQ(out.final_ms, 4.25);
  EXPECT_EQ(out.logits, reply.logits);
}

TEST(ServeProtocol, DecodeRejectsTruncatedPayloads) {
  WireRequest req;
  req.opcode = Opcode::kInfer;
  req.c = 2;
  req.h = 2;
  req.w = 2;
  req.data.resize(8, 1.0f);
  std::vector<std::uint8_t> bytes = encode_request(req);
  bytes.resize(bytes.size() - 5);  // truncate mid-data
  WireRequest out;
  EXPECT_FALSE(decode_request(bytes, out));
  WireReply reply_out;
  EXPECT_FALSE(decode_reply({0x01, 0x02}, reply_out));
}

TEST(ServeTcp, MultiClientSmokeWithBitwiseParity) {
  Network net = nested_net();
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  Server server(net, cfg);
  TcpServer tcp(server, /*port=*/0);
  ASSERT_GT(tcp.port(), 0);
  std::thread loop([&] { tcp.run(); });

  constexpr int kClients = 3;
  constexpr int kPerClient = 4;
  // One reference replica per client: Network::forward keeps scratch state.
  std::vector<Network> refs;
  for (int t = 0; t < kClients; ++t) refs.push_back(net.clone());
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        TcpClient client(tcp.port());
        for (int i = 0; i < kPerClient; ++i) {
          const Tensor x = random_input(
              static_cast<std::uint64_t>(1000 + t * kPerClient + i));
          WireReply reply;
          if (!client.infer(x, /*deadline_ms=*/0.0, /*mac_budget=*/0,
                            reply) ||
              reply.exit_subnet == 0) {
            ++failures;
            continue;
          }
          SubnetContext ctx;
          ctx.subnet_id = static_cast<int>(reply.exit_subnet);
          const Tensor direct =
              refs[static_cast<std::size_t>(t)].forward(x, ctx);
          if (static_cast<std::int64_t>(reply.logits.size()) !=
                  direct.numel() ||
              std::memcmp(reply.logits.data(), direct.data(),
                          sizeof(float) * static_cast<std::size_t>(
                                              direct.numel())) != 0) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  // Shutdown opcode: acked with an empty frame, then the accept loop exits.
  {
    TcpClient client(tcp.port());
    EXPECT_TRUE(client.shutdown_server());
  }
  loop.join();
  server.shutdown();
  const CounterSnapshot snap = server.counters();
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(snap.rejected, 0u);
}

TEST(ServeTcp, StatsOpcodeReturnsInProcessMetricsJson) {
  Network net = nested_net();
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = 1;
  Server server(net, cfg);
  TcpServer tcp(server, /*port=*/0);
  ASSERT_GT(tcp.port(), 0);
  std::thread loop([&] { tcp.run(); });

  {
    TcpClient client(tcp.port());
    // Stats on a fresh server: valid JSON with zeroed serve counters.
    std::string idle_json;
    ASSERT_TRUE(client.stats(idle_json));
    EXPECT_EQ(idle_json, server.metrics_json());
    EXPECT_NE(idle_json.find("\"serve_completed_total\":0"),
              std::string::npos);

    // Run a few inferences, then verify the wire snapshot matches the
    // in-process registry once the server is quiescent again.
    for (int i = 0; i < 3; ++i) {
      WireReply reply;
      ASSERT_TRUE(client.infer(random_input(static_cast<std::uint64_t>(i)),
                               /*deadline_ms=*/0.0, /*mac_budget=*/0, reply));
      EXPECT_GT(reply.exit_subnet, 0u);
    }
    std::string busy_json;
    ASSERT_TRUE(client.stats(busy_json));
    // Exposition is deterministic (ordered names, fixed float formatting),
    // so equal state must serialize to byte-equal text.
    EXPECT_EQ(busy_json, server.metrics_json());
    EXPECT_NE(busy_json.find("\"serve_completed_total\":3"),
              std::string::npos);
    EXPECT_NE(busy_json.find("\"serve_final_ms\""), std::string::npos);
  }

  {
    TcpClient client(tcp.port());
    EXPECT_TRUE(client.shutdown_server());
  }
  loop.join();
  server.shutdown();
}

TEST(ServeTcp, StatsPromOpcodeReturnsPrometheusExposition) {
  Network net = nested_net();
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = 1;
  Server server(net, cfg);
  TcpServer tcp(server, /*port=*/0);
  ASSERT_GT(tcp.port(), 0);
  std::thread loop([&] { tcp.run(); });

  {
    TcpClient client(tcp.port());
    {
      WireReply reply;
      ASSERT_TRUE(client.infer(random_input(4), /*deadline_ms=*/0.0,
                               /*mac_budget=*/0, reply));
    }
    // The kStatsProm opcode answers with the text exposition — byte-equal
    // to the in-process rendering once the server is quiescent.
    std::string text;
    ASSERT_TRUE(client.stats_prometheus(text));
    EXPECT_EQ(text, server.metrics_prometheus());
    EXPECT_NE(text.find("# TYPE serve_completed_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("serve_completed_total 1"), std::string::npos);
    // The two stats opcodes stay independently routable on one connection.
    std::string json;
    ASSERT_TRUE(client.stats(json));
    EXPECT_EQ(json, server.metrics_json());
  }

  {
    TcpClient client(tcp.port());
    EXPECT_TRUE(client.shutdown_server());
  }
  loop.join();
  server.shutdown();
}

TEST(ServeTcp, TimelineOpcodeReturnsPostmortemBytes) {
  Network net = nested_net();
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = 1;
  cfg.flight.ring = 32;
  cfg.flight.retain_misses = 8;
  cfg.flight.retain_stragglers = 4;
  Server server(net, cfg);
  TcpServer tcp(server, /*port=*/0);
  ASSERT_GT(tcp.port(), 0);
  std::thread loop([&] { tcp.run(); });

  {
    TcpClient client(tcp.port());
    // A fresh server: valid dump, no postmortems yet.
    std::string idle;
    ASSERT_TRUE(client.timeline(idle));
    EXPECT_EQ(idle, server.postmortems_json());
    EXPECT_NE(idle.find("\"postmortems\":[]"), std::string::npos);

    // Force a deterministic deadline miss, then fetch its postmortem.
    WireReply reply;
    ASSERT_TRUE(client.infer(random_input(9), /*deadline_ms=*/1e-3,
                             /*mac_budget=*/0, reply));
    EXPECT_EQ(reply.deadline_missed, 1);
    std::string busy;
    ASSERT_TRUE(client.timeline(busy));
    // The kTimeline frame carries exactly the in-process rendering's bytes.
    EXPECT_EQ(busy, server.postmortems_json());
    EXPECT_NE(busy.find("\"kind\":\"deadline_miss\""), std::string::npos);
    EXPECT_NE(busy.find("\"event\":\"final_publish\""), std::string::npos);
    // Timeline and stats opcodes stay independently routable.
    std::string json;
    ASSERT_TRUE(client.stats(json));
    EXPECT_EQ(json, server.metrics_json());
  }

  {
    TcpClient client(tcp.port());
    EXPECT_TRUE(client.shutdown_server());
  }
  loop.join();
  server.shutdown();
}

TEST(ServeTcp, StopUnblocksRunWithoutClients) {
  Network net = nested_net();
  ServeConfig cfg;
  cfg.max_subnet = 3;
  Server server(net, cfg);
  TcpServer tcp(server, 0);
  std::thread loop([&] { tcp.run(); });
  // Give the loop a moment to block in accept(), then stop from outside.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tcp.stop();
  loop.join();  // must not hang
}

}  // namespace
}  // namespace stepping::serve
