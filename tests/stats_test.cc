#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace stepping {
namespace {

TEST(Stats, EmptyAccumulator) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, NumericallyStableWithLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Stats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Stats, MergeTwoEmpties) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Stats, MergeSingleSampleSides) {
  // The Welford combination's delta term degenerates when both sides have
  // one sample; the result must still match sequential accumulation.
  RunningStats a, b, seq;
  a.add(-4.0);
  b.add(10.0);
  seq.add(-4.0);
  seq.add(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), seq.mean());
  EXPECT_DOUBLE_EQ(a.variance(), seq.variance());
  EXPECT_DOUBLE_EQ(a.min(), -4.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(Stats, MultiWayMergeMatchesSequential) {
  // Simulates the parallel pattern: one accumulator per chunk, folded left.
  Rng rng(21);
  RunningStats all;
  RunningStats chunks[4];
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.normal(-1.0, 5.0);
    all.add(v);
    chunks[i % 4].add(v);
  }
  RunningStats merged;
  for (RunningStats& c : chunks) merged.merge(c);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

}  // namespace
}  // namespace stepping
