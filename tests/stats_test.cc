#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace stepping {
namespace {

TEST(Stats, EmptyAccumulator) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, NumericallyStableWithLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Stats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

}  // namespace
}  // namespace stepping
