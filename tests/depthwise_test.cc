#include <gtest/gtest.h>

#include "core/incremental.h"
#include "nn/trainer.h"
#include "core/macs.h"
#include "core/mover.h"
#include "models/models.h"
#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

IOSpec image_spec(int c, int h, int w) {
  IOSpec s;
  s.units = c;
  s.h = h;
  s.w = w;
  s.assignment = std::make_shared<Assignment>(static_cast<std::size_t>(c), 1);
  return s;
}

/// Direct per-channel convolution reference.
Tensor ref_depthwise(const Tensor& x, const Tensor& w, const Tensor& b, int k,
                     int pad) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), ww = x.dim(3);
  Tensor y({n, c, h, ww});
  for (int i = 0; i < n; ++i) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < h; ++oy) {
        for (int ox = 0; ox < ww; ++ox) {
          double acc = b[ch];
          for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
              const int iy = oy + ky - pad, ix = ox + kx - pad;
              if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
              acc += static_cast<double>(w.at(ch, ky * k + kx)) *
                     x.at(i, ch, iy, ix);
            }
          }
          y.at(i, ch, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

TEST(Depthwise, ForwardMatchesDirectReference) {
  DepthwiseConv2d dw("dw", 3);
  Rng rng(1);
  dw.wire(image_spec(4, 6, 6), rng);
  Tensor x({2, 4, 6, 6});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  const Tensor y = dw.forward(x, ctx);
  const Tensor ref = ref_depthwise(x, dw.weight().value, dw.bias().value, 3, 1);
  ASSERT_EQ(y.shape(), ref.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-4f);
}

TEST(Depthwise, WeightAndInputGradientsMatchNumeric) {
  DepthwiseConv2d dw("dw", 3);
  Rng rng(2);
  dw.wire(image_spec(3, 5, 5), rng);
  Tensor x({2, 3, 5, 5}), r({2, 3, 5, 5});
  fill_normal(x, 0.0f, 1.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;

  auto loss_of = [&](const Tensor& xx) {
    const Tensor y = dw.forward(xx, ctx);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * r[i];
    return s;
  };

  dw.weight().zero_grad();
  dw.bias().zero_grad();
  dw.forward(x, ctx);
  const Tensor gx = dw.backward(r, ctx);

  const float eps = 1e-2f;
  // Weight gradients.
  for (std::int64_t i = 0; i < dw.weight().value.numel(); i += 5) {
    const float saved = dw.weight().value[i];
    dw.weight().value[i] = saved + eps;
    const double lp = loss_of(x);
    dw.weight().value[i] = saved - eps;
    const double lm = loss_of(x);
    dw.weight().value[i] = saved;
    EXPECT_NEAR(dw.weight().grad[i], (lp - lm) / (2.0 * eps), 2e-2)
        << "weight " << i;
  }
  // Input gradients.
  for (std::int64_t i = 0; i < x.numel(); i += 17) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(gx[i], (loss_of(xp) - loss_of(xm)) / (2.0 * eps), 2e-2)
        << "input " << i;
  }
}

TEST(Depthwise, SharesProducerAssignment) {
  Conv2d c1("c1", 4, 3);
  DepthwiseConv2d dw("dw", 3);
  Rng rng(3);
  const IOSpec mid = c1.wire(image_spec(1, 6, 6), rng);
  dw.wire(mid, rng);
  c1.set_unit_subnet(2, 3);
  // Depthwise mirrors the producer's assignment (shared storage).
  EXPECT_EQ(dw.unit_subnet()[2], 3);
  EXPECT_FALSE(dw.units_movable());
}

TEST(Depthwise, InactiveChannelsZero) {
  Conv2d c1("c1", 3, 3);
  DepthwiseConv2d dw("dw", 3);
  Rng rng(4);
  const IOSpec mid = c1.wire(image_spec(1, 4, 4), rng);
  dw.wire(mid, rng);
  c1.set_unit_subnet(1, 2);
  Tensor x({1, 1, 4, 4});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = 1;
  const Tensor y = dw.forward(c1.forward(x, ctx), ctx);
  for (int h = 0; h < 4; ++h) {
    for (int w = 0; w < 4; ++w) EXPECT_EQ(y.at(0, 1, h, w), 0.0f);
  }
}

TEST(Depthwise, MacsCountOnlyActiveChannels) {
  Conv2d c1("c1", 4, 3);
  DepthwiseConv2d dw("dw", 3);
  Rng rng(5);
  const IOSpec mid = c1.wire(image_spec(1, 8, 8), rng);
  dw.wire(mid, rng);
  EXPECT_EQ(dw.subnet_macs(1), 4 * 9 * 64);
  c1.set_unit_subnet(0, 2);  // dw unit 0 follows implicitly
  EXPECT_EQ(dw.subnet_macs(1), 3 * 9 * 64);
  EXPECT_EQ(dw.subnet_macs(2), 4 * 9 * 64);
}

TEST(Depthwise, MobilenetSmallForwardAndStructure) {
  ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.5};
  Network net = build_mobilenet_small(mc);
  Tensor x({2, 3, 32, 32});
  Rng rng(6);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  EXPECT_EQ(net.forward(x, ctx).shape(), (std::vector<int>{2, 10}));
  // stem + 3x(dw + pw) + head = 8 masked layers.
  EXPECT_EQ(net.masked_layers().size(), 8u);
}

TEST(Depthwise, MobilenetTrainsAboveChance) {
  ModelConfig mc{.classes = 3, .expansion = 1.0, .width_mult = 0.5};
  Network net = build_mobilenet_small(mc);
  Rng rng(7);
  Tensor x({12, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  std::vector<int> y(12);
  for (int i = 0; i < 12; ++i) y[static_cast<std::size_t>(i)] = i % 3;
  Sgd sgd({.lr = 0.05, .momentum = 0.9, .weight_decay = 0.0});
  SubnetContext ctx;
  ctx.training = true;
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 40; ++step) {
    const BatchStats s = train_batch(net, sgd, x, y, ctx);
    if (step == 0) first = s.loss;
    last = s.loss;
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(Depthwise, IncrementalStepUpBitExactWithDepthwise) {
  ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.5};
  Network net = build_mobilenet_small(mc);
  // Scatter pointwise/stem units (depthwise follows producers).
  Rng rng(8);
  for (MaskedLayer* m : net.body_layers()) {
    if (!m->units_movable()) continue;
    for (int u = 1; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, rng.uniform_int(1, 3));
    }
  }
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  IncrementalExecutor ex(net);
  for (int sub = 1; sub <= 3; ++sub) {
    const Tensor inc = ex.run(x, sub);
    SubnetContext ctx;
    ctx.subnet_id = sub;
    const Tensor direct = net.forward(x, ctx);
    for (std::int64_t i = 0; i < inc.numel(); ++i) {
      ASSERT_EQ(inc[i], direct[i]) << "subnet " << sub;
    }
  }
}

TEST(Depthwise, MoverSkipsDepthwiseUnits) {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.5};
  Network net = build_mobilenet_small(mc);
  net.reset_importance(2);
  SteppingConfig cfg;
  cfg.num_subnets = 2;
  cfg.mac_budget_frac = {0.1, 0.6};
  cfg.reference_macs = full_macs(net);
  // Without importance data all scores are 0; a move step must still never
  // list depthwise units as candidates (they only move with producers).
  move_step(net, cfg, full_macs(net) / 10);
  for (MaskedLayer* m : net.body_layers()) {
    if (m->units_movable()) continue;
    // Depthwise assignments always equal their producer's.
    EXPECT_EQ(&m->unit_subnet(), &m->in_subnet());
  }
}

}  // namespace
}  // namespace stepping
