#include <gtest/gtest.h>

#include "util/cli.h"

namespace stepping {
namespace {

CliArgs parse(std::initializer_list<const char*> argv,
              std::vector<std::string> known = {"model", "width", "verbose",
                                                "epochs"}) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data(), known);
}

TEST(Cli, PositionalArguments) {
  const CliArgs args = parse({"train", "extra"});
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "train");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(Cli, SpaceSeparatedValue) {
  const CliArgs args = parse({"--model", "lenet5"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.get("model"), "lenet5");
}

TEST(Cli, EqualsSeparatedValue) {
  const CliArgs args = parse({"--model=vgg16"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.get("model"), "vgg16");
}

TEST(Cli, BooleanFlagBeforeAnotherFlag) {
  const CliArgs args = parse({"--verbose", "--model", "lenet5"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose"), "");
  EXPECT_EQ(args.get("model"), "lenet5");
}

TEST(Cli, UnknownFlagIsAnError) {
  const CliArgs args = parse({"--mdoel", "lenet5"});
  EXPECT_FALSE(args.ok());
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_NE(args.errors()[0].find("mdoel"), std::string::npos);
}

TEST(Cli, NumericAccessorsWithFallback) {
  const CliArgs args = parse({"--epochs", "12", "--width", "0.5"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.get_int("epochs", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("width", 0.0), 0.5);
  EXPECT_EQ(args.get_int("model", 7), 7);  // absent -> fallback
}

TEST(Cli, MalformedNumberFallsBack) {
  const CliArgs args = parse({"--epochs", "twelve"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.get_int("epochs", 3), 3);
}

TEST(Cli, MixedPositionalAndFlags) {
  const CliArgs args = parse({"train", "--model=lenet5", "--epochs", "3"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.get("model"), "lenet5");
  EXPECT_EQ(args.get_int("epochs", 0), 3);
}

}  // namespace
}  // namespace stepping
