#include <gtest/gtest.h>

#include "core/metrics.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

/// A 1x1-image "network" whose head weights are hand-set so predictions are
/// fully controlled: logit_c = w_c * x where x is the single input pixel.
struct Rig {
  Network net;
  Dataset data;
};

Rig make_rig() {
  Rig r;
  r.net.emplace<Flatten>("flat");
  r.net.emplace<Dense>("fc", 3);
  Rng rng(1);
  r.net.wire(1, 1, 1, rng);
  auto* fc = r.net.masked_layers().back();
  // logits = [x, -x, 0.5x]: positive pixel -> class 0; negative -> class 1.
  fc->weight().value = Tensor({3, 1}, {1.0f, -1.0f, 0.5f});
  fc->bias().value.zero();

  r.data.num_classes = 3;
  r.data.images = Tensor({6, 1, 1, 1}, {1, 1, 1, -1, -1, 1});
  //               predictions:         0  0  0   1   1  0
  r.data.labels = {0, 0, 1, 1, 2, 2};
  return r;
}

TEST(Metrics, Top1CountsMatchHandComputation) {
  Rig r = make_rig();
  const EvaluationMetrics m = evaluate_metrics(r.net, r.data, 1, /*k=*/1);
  // Correct: samples 0, 1 (class 0), sample 3 (class 1) = 3 of 6.
  EXPECT_EQ(m.total, 6);
  EXPECT_EQ(m.top1_correct, 3);
  EXPECT_DOUBLE_EQ(m.top1_accuracy(), 0.5);
}

TEST(Metrics, ConfusionMatrixRowsSumToSupport) {
  Rig r = make_rig();
  const EvaluationMetrics m = evaluate_metrics(r.net, r.data, 1);
  for (int t = 0; t < 3; ++t) {
    int row_sum = 0;
    for (int p = 0; p < 3; ++p) row_sum += m.confusion[static_cast<std::size_t>(t) * 3 + p];
    EXPECT_EQ(row_sum, m.per_class[static_cast<std::size_t>(t)].support);
  }
  // Specific cells: true 2 predicted 1 once (sample 4), predicted 0 once.
  EXPECT_EQ(m.confusion[2 * 3 + 1], 1);
  EXPECT_EQ(m.confusion[2 * 3 + 0], 1);
}

TEST(Metrics, PerClassPrecisionRecall) {
  Rig r = make_rig();
  const EvaluationMetrics m = evaluate_metrics(r.net, r.data, 1);
  // Class 0: predicted 4x (samples 0,1,2,5), correct 2x -> precision 0.5;
  // support 2, TP 2 -> recall 1.0.
  EXPECT_DOUBLE_EQ(m.per_class[0].precision(), 0.5);
  EXPECT_DOUBLE_EQ(m.per_class[0].recall(), 1.0);
  // Class 2: never predicted -> precision 0, recall 0, f1 0.
  EXPECT_DOUBLE_EQ(m.per_class[2].precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.per_class[2].f1(), 0.0);
}

TEST(Metrics, TopKGreaterOrEqualTop1) {
  Rig r = make_rig();
  const EvaluationMetrics m1 = evaluate_metrics(r.net, r.data, 1, /*k=*/1);
  const EvaluationMetrics m2 = evaluate_metrics(r.net, r.data, 1, /*k=*/2);
  const EvaluationMetrics m3 = evaluate_metrics(r.net, r.data, 1, /*k=*/3);
  EXPECT_GE(m2.topk_correct, m1.top1_correct);
  EXPECT_GE(m3.topk_correct, m2.topk_correct);
  EXPECT_EQ(m3.topk_correct, 6);  // k == classes: always a hit
}

TEST(Metrics, KClampedToNumClasses) {
  Rig r = make_rig();
  const EvaluationMetrics m = evaluate_metrics(r.net, r.data, 1, /*k=*/50);
  EXPECT_EQ(m.k, 3);
}

TEST(Metrics, MacroF1AveragesClasses) {
  Rig r = make_rig();
  const EvaluationMetrics m = evaluate_metrics(r.net, r.data, 1);
  double expect = 0.0;
  for (const auto& c : m.per_class) expect += c.f1();
  expect /= 3.0;
  EXPECT_DOUBLE_EQ(m.macro_f1(), expect);
  EXPECT_GT(m.macro_f1(), 0.0);
  EXPECT_LT(m.macro_f1(), 1.0);
}

}  // namespace
}  // namespace stepping
