#include <gtest/gtest.h>

#include "core/macs.h"
#include "core/report.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"

namespace stepping {
namespace {

Network small_net() {
  Network net;
  net.emplace<Conv2d>("c1", 4, 3);
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", 2);
  Rng rng(1);
  net.wire(1, 6, 6, rng);
  return net;
}

TEST(Report, CountsUnitsPerSubnet) {
  Network net = small_net();
  auto* c1 = net.body_layers()[0];
  c1->set_unit_subnet(0, 1);
  c1->set_unit_subnet(1, 2);
  c1->set_unit_subnet(2, 2);
  c1->set_unit_subnet(3, 3);  // discard pool for num_subnets = 2
  const NetworkReport r = build_report(net, 2);
  ASSERT_EQ(r.layers.size(), 2u);
  const LayerReport& lr = r.layers[0];
  EXPECT_EQ(lr.name, "c1");
  ASSERT_EQ(lr.units_per_subnet.size(), 3u);
  EXPECT_EQ(lr.units_per_subnet[0], 1);
  EXPECT_EQ(lr.units_per_subnet[1], 2);
  EXPECT_EQ(lr.units_per_subnet[2], 1);
}

TEST(Report, MacsMatchCounter) {
  Network net = small_net();
  net.body_layers()[0]->set_unit_subnet(2, 2);
  const NetworkReport r = build_report(net, 2);
  EXPECT_EQ(r.total_macs_per_subnet[0], subnet_macs(net, 1));
  EXPECT_EQ(r.total_macs_per_subnet[1], subnet_macs(net, 2));
}

TEST(Report, MarksHead) {
  Network net = small_net();
  const NetworkReport r = build_report(net, 2);
  EXPECT_FALSE(r.layers[0].is_head);
  EXPECT_TRUE(r.layers[1].is_head);
}

TEST(Report, PrunedFractionReflected) {
  Network net = small_net();
  net.body_layers()[0]->apply_magnitude_prune(1e9f);
  const NetworkReport r = build_report(net, 1);
  EXPECT_DOUBLE_EQ(r.layers[0].pruned_fraction, 1.0);
  EXPECT_LT(r.layers[1].pruned_fraction, 1.0);
}

TEST(Report, RendersTextWithTotals) {
  Network net = small_net();
  const std::string s = build_report(net, 2).to_string();
  EXPECT_NE(s.find("c1"), std::string::npos);
  EXPECT_NE(s.find("fc (head)"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace stepping
