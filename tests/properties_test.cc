// Property-based suites (parameterized over seeds / sizes) for the
// load-bearing invariants of the subnet masking engine.
#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/macs.h"
#include "models/models.h"
#include "nn/loss.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

/// Build a small network and scatter its units across `n_subnets` (+ discard
/// pool) pseudo-randomly by `seed`.
Network scattered_net(std::uint64_t seed, int n_subnets) {
  ModelConfig mc{.classes = 10, .expansion = 1.4, .width_mult = 0.15,
                 .seed = seed};
  Network net = build_lenet3c1l(mc);
  Rng rng(seed * 7919 + 13);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      // Bias toward small subnets; occasionally discard (n_subnets + 1).
      const int s = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(n_subnets) + 1));
      m->set_unit_subnet(u, s);
    }
    // Keep subnet 1 viable in every layer.
    m->set_unit_subnet(0, 1);
  }
  return net;
}

class SubnetInvariants : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SubnetInvariants,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u));

TEST_P(SubnetInvariants, ReuseInvariantPerLayerOutputsStableAcrossSubnets) {
  // The paper's core structural claim: a unit active in subnet i produces
  // the SAME value in every subnet j >= i, at every layer. This is what
  // makes intermediate-result reuse sound.
  const int n_subnets = 3;
  Network net = scattered_net(GetParam(), n_subnets);
  Rng rng(GetParam());
  Tensor x({2, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);

  // Collect per-layer outputs for each subnet.
  std::vector<std::vector<Tensor>> outs(static_cast<std::size_t>(n_subnets));
  for (int sub = 1; sub <= n_subnets; ++sub) {
    SubnetContext ctx;
    ctx.subnet_id = sub;
    Tensor cur = x;
    for (Layer* l : net.layer_ptrs()) {
      cur = l->forward(cur, ctx);
      outs[static_cast<std::size_t>(sub - 1)].push_back(cur);
    }
  }

  // For every pair i < j and every non-head layer with unit structure:
  // channels with s(c) <= i must agree exactly between runs i and j.
  const auto layers = net.layer_ptrs();
  const auto masked = net.masked_layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    // Identify the channel assignment governing this layer's output (if
    // any): use the most recent masked body layer at or before li.
    const MaskedLayer* governing = nullptr;
    {
      Layer* cursor = layers[li];
      for (MaskedLayer* m : masked) {
        if (m == dynamic_cast<MaskedLayer*>(cursor)) governing = m;
      }
    }
    if (governing == nullptr || governing->is_head()) continue;
    const auto& assign = governing->unit_subnet();
    for (int i = 1; i <= n_subnets; ++i) {
      for (int j = i + 1; j <= n_subnets; ++j) {
        const Tensor& yi = outs[static_cast<std::size_t>(i - 1)][li];
        const Tensor& yj = outs[static_cast<std::size_t>(j - 1)][li];
        ASSERT_EQ(yi.shape(), yj.shape());
        const int units = static_cast<int>(assign.size());
        const std::int64_t per_unit = yi.numel() / (yi.dim(0) * units);
        for (int b = 0; b < yi.dim(0); ++b) {
          for (int u = 0; u < units; ++u) {
            if (assign[static_cast<std::size_t>(u)] > i) continue;
            const std::int64_t base =
                (static_cast<std::int64_t>(b) * units + u) * per_unit;
            for (std::int64_t k = 0; k < per_unit; ++k) {
              ASSERT_EQ(yi[base + k], yj[base + k])
                  << "layer " << li << " unit " << u << " subnets " << i
                  << "/" << j;
            }
          }
        }
      }
    }
  }
}

TEST_P(SubnetInvariants, MacsMonotoneAcrossSubnets) {
  Network net = scattered_net(GetParam(), 3);
  const auto macs = all_subnet_macs(net, 4);
  for (std::size_t i = 1; i < macs.size(); ++i) EXPECT_GE(macs[i], macs[i - 1]);
}

TEST_P(SubnetInvariants, MacsMonotoneUnderRandomPruning) {
  Network net = scattered_net(GetParam(), 3);
  // Magnitude pruning at a mid-scale threshold knocks out a real fraction.
  for (MaskedLayer* m : net.masked_layers()) m->apply_magnitude_prune(0.05f);
  const auto macs = all_subnet_macs(net, 4);
  for (std::size_t i = 1; i < macs.size(); ++i) EXPECT_GE(macs[i], macs[i - 1]);
}

TEST_P(SubnetInvariants, IncrementalStepUpBitExact) {
  Network net = scattered_net(GetParam(), 3);
  Rng rng(GetParam() + 99);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  IncrementalExecutor ex(net);
  for (int sub = 1; sub <= 3; ++sub) {
    const Tensor inc = ex.run(x, sub);
    SubnetContext ctx;
    ctx.subnet_id = sub;
    const Tensor direct = net.forward(x, ctx);
    for (std::int64_t i = 0; i < inc.numel(); ++i) {
      ASSERT_EQ(inc[i], direct[i]) << "subnet " << sub;
    }
  }
}

TEST_P(SubnetInvariants, MoveDeltaPredictionExact) {
  Network net = scattered_net(GetParam(), 3);
  Rng rng(GetParam() + 7);
  auto bodies = net.body_layers();
  for (int trial = 0; trial < 5; ++trial) {
    auto* layer = bodies[rng.next_below(bodies.size())];
    const int u = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(layer->num_units())));
    const int s = layer->unit_subnet()[static_cast<std::size_t>(u)];
    if (s > 3) continue;  // discard pool: no further moves
    const std::int64_t predicted =
        layer->move_delta_macs(u, net.consumer_of(layer));
    const std::int64_t before = subnet_macs(net, s);
    layer->set_unit_subnet(u, s + 1);
    EXPECT_EQ(predicted, before - subnet_macs(net, s));
    layer->set_unit_subnet(u, s);  // restore
  }
}

TEST_P(SubnetInvariants, TrainingIsBitDeterministicGivenSeed) {
  // Two identically seeded mini-trainings must produce identical weights —
  // the reproducibility contract every experiment in this repo relies on.
  auto run = [&] {
    Network net = scattered_net(GetParam(), 3);
    Sgd sgd(SgdConfig{.lr = 0.05});
    Rng rng(GetParam() + 1);
    Tensor x({8, 3, 32, 32});
    fill_normal(x, 0.0f, 1.0f, rng);
    std::vector<int> y(8);
    for (int i = 0; i < 8; ++i) y[static_cast<std::size_t>(i)] = i % 10;
    SubnetContext ctx;
    ctx.training = true;
    for (int b = 0; b < 5; ++b) {
      for (int k = 1; k <= 3; ++k) {
        ctx.subnet_id = k;
        train_batch(net, sgd, x, y, ctx);
      }
    }
    return net;
  };
  Network a = run();
  Network b = run();
  const auto ma = a.masked_layers();
  const auto mb = b.masked_layers();
  for (std::size_t i = 0; i < ma.size(); ++i) {
    const Tensor& wa = ma[i]->weight().value;
    const Tensor& wb = mb[i]->weight().value;
    for (std::int64_t j = 0; j < wa.numel(); ++j) {
      ASSERT_EQ(wa[j], wb[j]) << "layer " << i << " weight " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Masked GEMM variants vs the plain kernels (parameterized over sizes).
// ---------------------------------------------------------------------------

struct GemmDims {
  int m, k, n;
};

class MaskedGemm : public ::testing::TestWithParam<GemmDims> {};

INSTANTIATE_TEST_SUITE_P(Sizes, MaskedGemm,
                         ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                                           GemmDims{8, 8, 8},
                                           GemmDims{16, 4, 32},
                                           GemmDims{5, 33, 2}));

TEST_P(MaskedGemm, GemmRowsEqualsGemmWithZeroedRows) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Tensor a({m, k}), b({k, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  std::vector<unsigned char> active(static_cast<std::size_t>(m));
  for (auto& v : active) v = rng.bernoulli(0.6) ? 1 : 0;

  Tensor c_masked({m, n});
  gemm_rows(a, b, c_masked, active.data());

  Tensor a_zeroed = a;
  for (int i = 0; i < m; ++i) {
    if (!active[static_cast<std::size_t>(i)]) {
      for (int p = 0; p < k; ++p) a_zeroed.at(i, p) = 0.0f;
    }
  }
  Tensor c_full({m, n});
  gemm(a_zeroed, b, c_full);
  for (std::int64_t i = 0; i < c_full.numel(); ++i) {
    EXPECT_EQ(c_masked[i], c_full[i]);
  }
}

TEST_P(MaskedGemm, GemmNtColsEqualsGemmNtWithZeroedRows) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 3 + n);
  Tensor a({m, k}), bt({n, k});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(bt, 0.0f, 1.0f, rng);
  std::vector<unsigned char> active(static_cast<std::size_t>(n));
  for (auto& v : active) v = rng.bernoulli(0.6) ? 1 : 0;

  Tensor c_masked({m, n});
  gemm_nt_cols(a, bt, c_masked, active.data());

  Tensor c_full({m, n});
  gemm_nt(a, bt, c_full);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (active[static_cast<std::size_t>(j)]) {
        EXPECT_EQ(c_masked.at(i, j), c_full.at(i, j));
      } else {
        EXPECT_EQ(c_masked.at(i, j), 0.0f);
      }
    }
  }
}

TEST_P(MaskedGemm, GemmTnRowsEqualsGemmTnWithZeroedRows) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Tensor at({k, m}), b({k, n});
  fill_normal(at, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  std::vector<unsigned char> k_active(static_cast<std::size_t>(k));
  for (auto& v : k_active) v = rng.bernoulli(0.6) ? 1 : 0;

  Tensor c_masked({m, n});
  gemm_tn_rows(at, b, c_masked, k_active.data());

  Tensor at_zeroed = at;
  Tensor b_zeroed = b;
  for (int p = 0; p < k; ++p) {
    if (!k_active[static_cast<std::size_t>(p)]) {
      for (int i = 0; i < m; ++i) at_zeroed.at(p, i) = 0.0f;
    }
  }
  Tensor c_full({m, n});
  gemm_tn(at_zeroed, b_zeroed, c_full);
  for (std::int64_t i = 0; i < c_full.numel(); ++i) {
    EXPECT_EQ(c_masked[i], c_full[i]);
  }
}

// ---------------------------------------------------------------------------
// Distillation loss gradient: numeric agreement across gamma.
// ---------------------------------------------------------------------------

class DistillGamma : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Gammas, DistillGamma,
                         ::testing::Values(0.0, 0.25, 0.4, 0.75, 1.0));

TEST_P(DistillGamma, GradientMatchesNumeric) {
  const double gamma = GetParam();
  Rng rng(static_cast<std::uint64_t>(gamma * 1000) + 5);
  Tensor logits({3, 4}), t_logits({3, 4});
  fill_normal(logits, 0.0f, 1.0f, rng);
  fill_normal(t_logits, 0.0f, 1.0f, rng);
  Tensor teacher;
  softmax_rows(t_logits, teacher);
  const std::vector<int> labels = {0, 2, 3};
  const LossOutput lo = distillation_loss(logits, labels, teacher, gamma);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double num = (distillation_loss(lp, labels, teacher, gamma).loss -
                        distillation_loss(lm, labels, teacher, gamma).loss) /
                       (2.0 * eps);
    EXPECT_NEAR(lo.grad_logits[i], num, 2e-3);
  }
}

}  // namespace
}  // namespace stepping
