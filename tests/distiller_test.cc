#include <gtest/gtest.h>

#include "core/distiller.h"
#include "core/train_loops.h"
#include "data/synthetic.h"
#include "models/models.h"

namespace stepping {
namespace {

TEST(Distiller, ImprovesSubnetAccuracyOverUntrainedBaseline) {
  // Tiny end-to-end: pretrain briefly, hand-assign a nested structure, then
  // distill; every subnet must end well above chance.
  const DataSplit data =
      make_synthetic(synth_cifar10(/*train_per_class=*/25, /*test_per_class=*/10));
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);

  SteppingConfig cfg;
  cfg.num_subnets = 2;
  cfg.mac_budget_frac = {0.3, 0.8};
  cfg.gamma = 0.4;

  Sgd sgd(cfg.sgd);
  Rng rng(5);
  train_plain(net, data.train, sgd, /*subnet_id=*/1, /*epochs=*/4,
              /*batch_size=*/25, rng);
  const Tensor teacher = compute_teacher_probs(net, data.train, 1);

  // Nested structure: every other unit to subnet 2.
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); u += 2) m->set_unit_subnet(u, 2);
  }

  const double acc1_before = evaluate(net, data.test, 1);
  distill_subnets(net, cfg, data.train, teacher, sgd, /*epochs=*/4,
                  /*batch_size=*/25, rng);
  const double acc1 = evaluate(net, data.test, 1);
  const double acc2 = evaluate(net, data.test, 2);
  EXPECT_GT(acc1, 0.2);  // way above 10% chance
  EXPECT_GT(acc2, 0.2);
  EXPECT_GE(acc1, acc1_before - 0.05);  // distillation must not wreck it
}

TEST(Distiller, TeacherProbsRowAlignedAndNormalized) {
  const DataSplit data =
      make_synthetic(synth_cifar10(/*train_per_class=*/5, /*test_per_class=*/2));
  ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.1};
  Network net = build_lenet3c1l(mc);
  const Tensor probs = compute_teacher_probs(net, data.train, 1);
  ASSERT_EQ(probs.dim(0), data.train.size());
  ASSERT_EQ(probs.dim(1), 10);
  for (int i = 0; i < probs.dim(0); ++i) {
    double s = 0.0;
    for (int j = 0; j < 10; ++j) s += probs.at(i, j);
    EXPECT_NEAR(s, 1.0, 1e-4);
  }
}

TEST(Distiller, DistillationDisabledFallsBackToCrossEntropy) {
  // With enable_distillation = false the Fig. 8 ablation path trains with CE
  // only — it must still run and learn.
  const DataSplit data =
      make_synthetic(synth_cifar10(/*train_per_class=*/15, /*test_per_class=*/5));
  ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  SteppingConfig cfg;
  cfg.num_subnets = 1;
  cfg.mac_budget_frac = {1.0};
  cfg.enable_distillation = false;
  Sgd sgd(cfg.sgd);
  Rng rng(6);
  Tensor dummy_teacher({data.train.size(), 10});
  dummy_teacher.fill(0.1f);
  distill_subnets(net, cfg, data.train, dummy_teacher, sgd, /*epochs=*/5,
                  /*batch_size=*/30, rng);
  EXPECT_GT(evaluate(net, data.test, 1), 0.2);
}

}  // namespace
}  // namespace stepping
