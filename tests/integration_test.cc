#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/macs.h"
#include "core/stepping_net.h"
#include "data/synthetic.h"
#include "models/models.h"

namespace stepping {
namespace {

/// One miniature end-to-end pipeline, shared across assertions.
struct Pipeline {
  DataSplit data;
  SteppingConfig cfg;
  std::unique_ptr<SteppingNet> sn;
  ConstructionReport report;
};

Pipeline& pipeline() {
  static Pipeline* p = [] {
    auto* px = new Pipeline();
    px->data = make_synthetic(
        synth_cifar10(/*train_per_class=*/40, /*test_per_class=*/15));

    ModelConfig ref{.classes = 10, .expansion = 1.0, .width_mult = 0.15};
    Network reference = build_lenet3c1l(ref);
    ModelConfig mc = ref;
    mc.expansion = 1.8;
    Network net = build_lenet3c1l(mc);

    px->cfg.num_subnets = 3;
    px->cfg.mac_budget_frac = {0.12, 0.45, 0.85};
    px->cfg.reference_macs = full_macs(reference);
    px->cfg.batches_per_iter = 3;
    px->cfg.max_iters = 40;

    px->sn = std::make_unique<SteppingNet>(std::move(net), px->cfg);
    px->sn->pretrain(px->data.train, /*epochs=*/4, /*batch_size=*/20);
    px->report = px->sn->construct(px->data.train, /*batch_size=*/20);
    px->sn->distill(px->data.train, /*epochs=*/3, /*batch_size=*/20);
    return px;
  }();
  return *p;
}

TEST(Integration, ConstructionMeetsBudgets) {
  auto& p = pipeline();
  EXPECT_TRUE(p.report.budgets_met);
}

TEST(Integration, AccuracyAboveChanceForAllSubnets) {
  auto& p = pipeline();
  for (int i = 1; i <= p.cfg.num_subnets; ++i) {
    EXPECT_GT(p.sn->accuracy(p.data.test, i), 0.2) << "subnet " << i;
  }
}

TEST(Integration, AccuracyLadderRoughlyMonotone) {
  // Paper Table I: accuracy grows with MACs (tiny nets can jitter; allow a
  // small tolerance on each rung).
  auto& p = pipeline();
  double prev = 0.0;
  for (int i = 1; i <= p.cfg.num_subnets; ++i) {
    const double acc = p.sn->accuracy(p.data.test, i);
    EXPECT_GE(acc, prev - 0.08) << "subnet " << i;
    prev = std::max(prev, acc);
  }
}

TEST(Integration, MacFractionsMatchReport) {
  auto& p = pipeline();
  for (int i = 1; i <= p.cfg.num_subnets; ++i) {
    EXPECT_NEAR(p.sn->mac_fraction(i),
                p.report.subnet_mac_frac[static_cast<std::size_t>(i - 1)], 1e-9);
  }
}

TEST(Integration, LargestSubnetNearTeacherAccuracy) {
  auto& p = pipeline();
  // The paper reports the largest subnet within a few points of the original
  // network; at this tiny scale allow a wide but meaningful margin.
  const double teacher_acc = p.sn->accuracy(p.data.test, p.cfg.num_subnets + 1);
  const double largest = p.sn->accuracy(p.data.test, p.cfg.num_subnets);
  EXPECT_GT(largest, teacher_acc - 0.15);
}

TEST(Integration, IncrementalExecutorConsistentAfterFullPipeline) {
  auto& p = pipeline();
  Tensor x;
  std::vector<int> y;
  p.data.test.batch(0, 4, x, y);
  IncrementalExecutor ex(p.sn->network());
  for (int i = 1; i <= p.cfg.num_subnets; ++i) {
    const Tensor inc = ex.run(x, i);
    const Tensor direct = p.sn->predict(x, i);
    ASSERT_EQ(inc.shape(), direct.shape());
    for (std::int64_t j = 0; j < inc.numel(); ++j) {
      ASSERT_EQ(inc[j], direct[j]) << "subnet " << i;
    }
  }
}

TEST(Integration, PredictArgmaxMatchesAccuracyAccounting) {
  auto& p = pipeline();
  Tensor x;
  std::vector<int> y;
  p.data.test.batch(0, 16, x, y);
  const Tensor logits = p.sn->predict(x, p.cfg.num_subnets);
  int correct = 0;
  for (int i = 0; i < 16; ++i) {
    int best = 0;
    for (int c = 1; c < 10; ++c) {
      if (logits.at(i, c) > logits.at(i, best)) best = c;
    }
    if (best == y[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GE(correct, 0);  // smoke: accounting runs without contradiction
  EXPECT_LE(correct, 16);
}

TEST(Integration, ThrowsWithoutPretrainBeforeDistill) {
  ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.1};
  Network net = build_lenet3c1l(mc);
  SteppingConfig cfg;
  cfg.num_subnets = 2;
  cfg.mac_budget_frac = {0.3, 0.8};
  SteppingNet sn(std::move(net), cfg);
  const DataSplit tiny =
      make_synthetic(synth_cifar10(/*train_per_class=*/2, /*test_per_class=*/1));
  EXPECT_THROW(sn.distill(tiny.train, 1), std::logic_error);
}

TEST(Integration, ConfigValidationRejectsBadBudgetCount) {
  ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.1};
  Network net = build_lenet3c1l(mc);
  SteppingConfig cfg;
  cfg.num_subnets = 3;
  cfg.mac_budget_frac = {0.3, 0.8};  // wrong arity
  EXPECT_THROW(SteppingNet(std::move(net), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace stepping
