#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

IOSpec image_spec(int c, int h, int w) {
  IOSpec s;
  s.units = c;
  s.h = h;
  s.w = w;
  s.assignment = std::make_shared<Assignment>(static_cast<std::size_t>(c), 1);
  return s;
}

IOSpec flat_spec(int units, int fpu = 1) {
  IOSpec s;
  s.units = units;
  s.features_per_unit = fpu;
  s.flat = true;
  s.assignment = std::make_shared<Assignment>(static_cast<std::size_t>(units), 1);
  return s;
}

/// Scalar pseudo-loss L = <y, R> so dL/dy = R; lets us numerically check
/// every parameter and input gradient of a layer.
double loss_of(Layer& layer, const Tensor& x, const Tensor& r,
               const SubnetContext& ctx) {
  const Tensor y = layer.forward(x, ctx);
  double s = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    s += static_cast<double>(y[i]) * r[i];
  }
  return s;
}

void check_param_gradients(Layer& layer, Param& p, const Tensor& x,
                           const Tensor& r, const SubnetContext& ctx,
                           double tol = 2e-2, int samples = 12) {
  // Analytic gradients.
  p.zero_grad();
  const Tensor y = layer.forward(x, ctx);
  ASSERT_EQ(y.shape(), r.shape());
  layer.backward(r, ctx);

  Rng pick(99);
  const float eps = 1e-2f;
  for (int s = 0; s < samples; ++s) {
    const auto i =
        static_cast<std::int64_t>(pick.next_below(static_cast<std::uint64_t>(p.value.numel())));
    const float saved = p.value[i];
    p.value[i] = saved + eps;
    const double lp = loss_of(layer, x, r, ctx);
    p.value[i] = saved - eps;
    const double lm = loss_of(layer, x, r, ctx);
    p.value[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double analytic = p.grad[i];
    EXPECT_NEAR(analytic, numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "param " << p.name << " index " << i;
  }
}

void check_input_gradients(Layer& layer, const Tensor& x0, const Tensor& r,
                           const SubnetContext& ctx, double tol = 2e-2,
                           int samples = 12) {
  Tensor x = x0;
  layer.forward(x, ctx);
  const Tensor gx = layer.backward(r, ctx);
  Rng pick(123);
  const float eps = 1e-2f;
  for (int s = 0; s < samples; ++s) {
    const auto i =
        static_cast<std::int64_t>(pick.next_below(static_cast<std::uint64_t>(x.numel())));
    const float saved = x[i];
    x[i] = saved + eps;
    const double lp = loss_of(layer, x, r, ctx);
    x[i] = saved - eps;
    const double lm = loss_of(layer, x, r, ctx);
    x[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gx[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "input index " << i;
  }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

TEST(Conv2dTest, OutputShape) {
  Conv2d conv("c", 5, 3);
  Rng rng(1);
  const IOSpec out = conv.wire(image_spec(2, 8, 8), rng);
  EXPECT_EQ(out.units, 5);
  EXPECT_EQ(out.h, 8);  // same padding
  EXPECT_EQ(out.w, 8);
  Tensor x({3, 2, 8, 8});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  const Tensor y = conv.forward(x, ctx);
  EXPECT_EQ(y.shape(), (std::vector<int>{3, 5, 8, 8}));
}

TEST(Conv2dTest, WeightGradientsMatchNumeric) {
  Conv2d conv("c", 3, 3);
  Rng rng(2);
  conv.wire(image_spec(2, 5, 5), rng);
  Tensor x({2, 2, 5, 5}), r({2, 3, 5, 5});
  fill_normal(x, 0.0f, 1.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  check_param_gradients(conv, conv.weight(), x, r, ctx);
}

TEST(Conv2dTest, BiasGradientsMatchNumeric) {
  Conv2d conv("c", 3, 3);
  Rng rng(3);
  conv.wire(image_spec(2, 5, 5), rng);
  Tensor x({2, 2, 5, 5}), r({2, 3, 5, 5});
  fill_normal(x, 0.0f, 1.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  check_param_gradients(conv, conv.bias(), x, r, ctx);
}

TEST(Conv2dTest, InputGradientsMatchNumeric) {
  Conv2d conv("c", 4, 3);
  Rng rng(4);
  conv.wire(image_spec(3, 6, 6), rng);
  Tensor x({1, 3, 6, 6}), r({1, 4, 6, 6});
  fill_normal(x, 0.0f, 1.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  check_input_gradients(conv, x, r, ctx);
}

TEST(Conv2dTest, InactiveUnitsOutputZero) {
  Conv2d conv("c", 4, 3);
  Rng rng(5);
  conv.wire(image_spec(2, 5, 5), rng);
  conv.set_unit_subnet(2, 2);
  conv.set_unit_subnet(3, 3);
  Tensor x({1, 2, 5, 5});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = 1;
  const Tensor y = conv.forward(x, ctx);
  for (int h = 0; h < 5; ++h) {
    for (int w = 0; w < 5; ++w) {
      EXPECT_EQ(y.at(0, 2, h, w), 0.0f);
      EXPECT_EQ(y.at(0, 3, h, w), 0.0f);
      EXPECT_NE(y.at(0, 0, h, w), 0.0f);
    }
  }
}

TEST(Conv2dTest, StructuralRuleBlocksHigherToLowerSynapses) {
  // Two chained convs: mark an input unit as subnet 2; weights from it into
  // subnet-1 units of the consumer must have no effect even in subnet 2.
  Conv2d c1("c1", 3, 3);
  Conv2d c2("c2", 2, 3);
  Rng rng(6);
  const IOSpec mid = c1.wire(image_spec(1, 5, 5), rng);
  c2.wire(mid, rng);
  c1.set_unit_subnet(1, 2);  // producer unit in subnet 2 only
  // c2 unit 0 stays subnet 1; its weights from producer unit 1 are blocked.
  Tensor x({1, 1, 5, 5});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx2;
  ctx2.subnet_id = 2;
  const Tensor y_before = c2.forward(c1.forward(x, ctx2), ctx2);
  // Mutate exactly the blocked weights; the subnet-1 unit must not change.
  const int kk = 9;
  for (int col = 1 * kk; col < 2 * kk; ++col) {
    c2.weight().value.at(0, col) += 100.0f;
  }
  const Tensor y_after = c2.forward(c1.forward(x, ctx2), ctx2);
  for (int h = 0; h < 5; ++h) {
    for (int w = 0; w < 5; ++w) {
      EXPECT_EQ(y_before.at(0, 0, h, w), y_after.at(0, 0, h, w));
      // Unit 1 of c2 (same subnet as producer or head-free) is unconstrained
      // only if its subnet >= 2; it is subnet 1 too, so also unchanged.
      EXPECT_EQ(y_before.at(0, 1, h, w), y_after.at(0, 1, h, w));
    }
  }
}

TEST(Conv2dTest, HeadLayerIgnoresStructuralRule) {
  Conv2d c1("c1", 2, 3);
  Conv2d c2("c2", 2, 3);
  Rng rng(7);
  const IOSpec mid = c1.wire(image_spec(1, 5, 5), rng);
  c2.wire(mid, rng);
  c2.set_head(true);
  c1.set_unit_subnet(1, 2);
  Tensor x({1, 1, 5, 5});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx2;
  ctx2.subnet_id = 2;
  const Tensor y_before = c2.forward(c1.forward(x, ctx2), ctx2);
  for (int col = 9; col < 18; ++col) c2.weight().value.at(0, col) += 1.0f;
  const Tensor y_after = c2.forward(c1.forward(x, ctx2), ctx2);
  // Head weights from the subnet-2 producer ARE used in subnet 2.
  bool changed = false;
  for (std::int64_t i = 0; i < y_before.numel() && !changed; ++i) {
    changed = y_before[i] != y_after[i];
  }
  EXPECT_TRUE(changed);
}

TEST(Conv2dTest, PruneMaskZeroesWeightsButKeepsGradients) {
  Conv2d conv("c", 2, 3);
  Rng rng(8);
  conv.wire(image_spec(1, 4, 4), rng);
  // Prune everything: output must be bias-only.
  conv.apply_magnitude_prune(1e9f);
  Tensor x({1, 1, 4, 4});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  conv.bias().value.fill(0.25f);
  const Tensor y = conv.forward(x, ctx);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 0.25f);
  // Gradients still flow to pruned weights (revival support).
  Tensor r(y.shape());
  fill_normal(r, 0.0f, 1.0f, rng);
  conv.weight().zero_grad();
  conv.backward(r, ctx);
  double gsum = 0.0;
  for (std::int64_t i = 0; i < conv.weight().grad.numel(); ++i) {
    gsum += std::fabs(conv.weight().grad[i]);
  }
  EXPECT_GT(gsum, 0.0);
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

TEST(DenseTest, ForwardComputesAffine) {
  Dense d("d", 2);
  Rng rng(9);
  d.wire(flat_spec(3), rng);
  d.weight().value = Tensor({2, 3}, {1, 0, 0, 0, 1, 0});
  d.bias().value = Tensor({2}, {0.5f, -0.5f});
  Tensor x({1, 3}, {2.0f, 3.0f, 4.0f});
  SubnetContext ctx;
  const Tensor y = d.forward(x, ctx);
  EXPECT_NEAR(y[0], 2.5f, 1e-6f);
  EXPECT_NEAR(y[1], 2.5f, 1e-6f);
}

TEST(DenseTest, WeightGradientsMatchNumeric) {
  Dense d("d", 4);
  Rng rng(10);
  d.wire(flat_spec(6), rng);
  Tensor x({3, 6}), r({3, 4});
  fill_normal(x, 0.0f, 1.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  check_param_gradients(d, d.weight(), x, r, ctx);
  check_param_gradients(d, d.bias(), x, r, ctx);
}

TEST(DenseTest, InputGradientsMatchNumeric) {
  Dense d("d", 4);
  Rng rng(11);
  d.wire(flat_spec(5), rng);
  Tensor x({2, 5}), r({2, 4});
  fill_normal(x, 0.0f, 1.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  check_input_gradients(d, x, r, ctx);
}

TEST(DenseTest, FeatureGroupingMapsColumnsToUnits) {
  Dense d("d", 2);
  Rng rng(12);
  d.wire(flat_spec(3, /*fpu=*/4), rng);  // 12 input features, 3 units
  EXPECT_EQ(d.num_cols(), 12);
  EXPECT_EQ(d.in_unit_of_col(0), 0);
  EXPECT_EQ(d.in_unit_of_col(3), 0);
  EXPECT_EQ(d.in_unit_of_col(4), 1);
  EXPECT_EQ(d.in_unit_of_col(11), 2);
}

TEST(DenseTest, ImportanceHarvestMatchesDefinition) {
  // dL/dr_j = sum(grad_preact_j * (preact_j - b_j)) (Eq. 2); with L = <y, R>,
  // grad_preact = R for active units.
  Dense d("d", 2);
  Rng rng(13);
  d.wire(flat_spec(3), rng);
  d.reset_importance(1);
  Tensor x({2, 3}), r({2, 2});
  fill_normal(x, 0.0f, 1.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  ctx.harvest_importance = true;
  const Tensor y = d.forward(x, ctx);
  d.backward(r, ctx);
  for (int u = 0; u < 2; ++u) {
    double expect = 0.0;
    for (int i = 0; i < 2; ++i) {
      expect += static_cast<double>(r.at(i, u)) *
                (y.at(i, u) - d.bias().value[u]);
    }
    EXPECT_NEAR(d.importance()[0][static_cast<std::size_t>(u)],
                std::fabs(expect), 1e-4);
  }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

TEST(BatchNormTest, NormalizesPerChannelInTraining) {
  BatchNorm2d bn("bn");
  Rng rng(14);
  bn.wire(image_spec(3, 4, 4), rng);
  Tensor x({8, 3, 4, 4});
  fill_normal(x, 5.0f, 3.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  const Tensor y = bn.forward(x, ctx);
  for (int c = 0; c < 3; ++c) {
    double s = 0.0, s2 = 0.0;
    int n = 0;
    for (int i = 0; i < 8; ++i) {
      for (int h = 0; h < 4; ++h) {
        for (int w = 0; w < 4; ++w) {
          const float v = y.at(i, c, h, w);
          s += v;
          s2 += static_cast<double>(v) * v;
          ++n;
        }
      }
    }
    EXPECT_NEAR(s / n, 0.0, 1e-3);
    EXPECT_NEAR(s2 / n, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, GammaBetaGradientsMatchNumeric) {
  BatchNorm2d bn("bn");
  Rng rng(15);
  bn.wire(image_spec(2, 3, 3), rng);
  Tensor x({4, 2, 3, 3}), r({4, 2, 3, 3});
  fill_normal(x, 1.0f, 2.0f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  check_param_gradients(bn, *bn.params()[0], x, r, ctx, 3e-2);
  check_param_gradients(bn, *bn.params()[1], x, r, ctx, 3e-2);
}

TEST(BatchNormTest, InputGradientsMatchNumeric) {
  BatchNorm2d bn("bn");
  Rng rng(16);
  bn.wire(image_spec(2, 3, 3), rng);
  Tensor x({4, 2, 3, 3}), r({4, 2, 3, 3});
  fill_normal(x, 0.0f, 1.5f, rng);
  fill_normal(r, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  check_input_gradients(bn, x, r, ctx, 5e-2);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm2d bn("bn");
  Rng rng(17);
  bn.wire(image_spec(1, 2, 2), rng);
  Tensor x({16, 1, 2, 2});
  fill_normal(x, 2.0f, 1.0f, rng);
  SubnetContext train_ctx;
  train_ctx.training = true;
  for (int i = 0; i < 200; ++i) bn.forward(x, train_ctx);
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.3f);
  SubnetContext eval_ctx;
  const Tensor y = bn.forward(x, eval_ctx);
  double s = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) s += y[i];
  EXPECT_NEAR(s / y.numel(), 0.0, 0.1);
}

TEST(BatchNormTest, InactiveChannelStatsNotCorrupted) {
  BatchNorm2d bn("bn");
  Rng rng(18);
  IOSpec spec = image_spec(2, 2, 2);
  (*spec.assignment)[1] = 2;  // channel 1 only in subnet 2
  bn.wire(spec, rng);
  const float mean_before = bn.running_mean()[1];
  Tensor x({4, 2, 2, 2});
  fill_normal(x, 3.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.training = true;
  ctx.subnet_id = 1;
  bn.forward(x, ctx);
  EXPECT_EQ(bn.running_mean()[1], mean_before);  // untouched
  EXPECT_NE(bn.running_mean()[0], 0.0f);
}

TEST(BatchNormTest, InactiveChannelsOutputZero) {
  BatchNorm2d bn("bn");
  Rng rng(19);
  IOSpec spec = image_spec(2, 2, 2);
  (*spec.assignment)[1] = 3;
  bn.wire(spec, rng);
  // Nonzero beta would leak through without explicit masking.
  bn.params()[1]->value.fill(0.7f);
  Tensor x({2, 2, 2, 2});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = 1;
  ctx.training = true;
  const Tensor y = bn.forward(x, ctx);
  for (int i = 0; i < 2; ++i) {
    for (int h = 0; h < 2; ++h) {
      for (int w = 0; w < 2; ++w) EXPECT_EQ(y.at(i, 1, h, w), 0.0f);
    }
  }
}

// ---------------------------------------------------------------------------
// Simple layers
// ---------------------------------------------------------------------------

TEST(FlattenTest, RoundTripsShapes) {
  Flatten f("flat");
  Rng rng(20);
  const IOSpec out = f.wire(image_spec(3, 4, 4), rng);
  EXPECT_TRUE(out.flat);
  EXPECT_EQ(out.units, 3);
  EXPECT_EQ(out.features_per_unit, 16);
  Tensor x({2, 3, 4, 4});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  const Tensor y = f.forward(x, ctx);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 48}));
  const Tensor back = f.backward(y, ctx);
  EXPECT_EQ(back.shape(), x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(back[i], x[i]);
}

TEST(MaxPoolLayerTest, RejectsIndivisibleExtent) {
  MaxPool2d p("p", 2);
  Rng rng(21);
  EXPECT_THROW(p.wire(image_spec(1, 5, 4), rng), std::invalid_argument);
}

TEST(ReLULayerTest, GradientBlockedAtNegative) {
  ReLU relu("r");
  Rng rng(22);
  relu.wire(image_spec(1, 2, 2), rng);
  Tensor x({1, 1, 2, 2}, {-1.0f, 2.0f, -3.0f, 4.0f});
  SubnetContext ctx;
  ctx.training = true;
  relu.forward(x, ctx);
  Tensor g({1, 1, 2, 2}, {1.0f, 1.0f, 1.0f, 1.0f});
  const Tensor gx = relu.backward(g, ctx);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 1.0f);
  EXPECT_EQ(gx[2], 0.0f);
  EXPECT_EQ(gx[3], 1.0f);
}

}  // namespace
}  // namespace stepping
