#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/macs.h"
#include "data/synthetic.h"
#include "models/models.h"

namespace stepping {
namespace {

struct BuiltFixture {
  Network net;
  ConstructionReport report;
  SteppingConfig cfg;
  std::int64_t ref_macs;
};

/// Run a miniature construction once and share it across assertions (the
/// loop trains, so it is the slow part of this suite).
BuiltFixture& fixture() {
  static BuiltFixture* f = [] {
    auto* fx = new BuiltFixture();
    ModelConfig ref_cfg{.classes = 10, .expansion = 1.0, .width_mult = 0.15};
    Network reference = build_lenet3c1l(ref_cfg);
    fx->ref_macs = full_macs(reference);

    ModelConfig mc = ref_cfg;
    mc.expansion = 1.8;
    fx->net = build_lenet3c1l(mc);

    fx->cfg.num_subnets = 3;
    fx->cfg.mac_budget_frac = {0.15, 0.45, 0.85};
    fx->cfg.reference_macs = fx->ref_macs;
    fx->cfg.batches_per_iter = 2;
    fx->cfg.max_iters = 40;
    fx->cfg.sgd.lr = 0.05;

    const DataSplit data =
        make_synthetic(synth_cifar10(/*train_per_class=*/20, /*test_per_class=*/5));
    LoaderConfig lc;
    lc.batch_size = 16;
    DataLoader loader(data.train, lc, Rng(3));
    Sgd sgd(fx->cfg.sgd);
    fx->report = construct_subnets(fx->net, fx->cfg, loader, sgd);
    return fx;
  }();
  return *f;
}

TEST(Builder, MeetsAllMacBudgets) {
  auto& f = fixture();
  EXPECT_TRUE(f.report.budgets_met);
  for (int i = 0; i < f.cfg.num_subnets; ++i) {
    EXPECT_LE(f.report.subnet_mac_frac[static_cast<std::size_t>(i)],
              f.cfg.mac_budget_frac[static_cast<std::size_t>(i)] + 1e-9);
  }
}

TEST(Builder, SubnetMacsNearBudgetsNotFarBelow) {
  // The quota bound keeps each subnet reasonably close to its budget rather
  // than collapsing far beneath it.
  auto& f = fixture();
  EXPECT_GT(f.report.subnet_mac_frac[0], f.cfg.mac_budget_frac[0] * 0.4);
  EXPECT_GT(f.report.subnet_mac_frac[1], f.cfg.mac_budget_frac[1] * 0.4);
}

TEST(Builder, NestingInvariantHolds) {
  auto& f = fixture();
  const auto macs = all_subnet_macs(f.net, f.cfg.num_subnets);
  for (std::size_t i = 1; i < macs.size(); ++i) EXPECT_GE(macs[i], macs[i - 1]);
}

TEST(Builder, AssignmentsStayInValidRange) {
  auto& f = fixture();
  for (MaskedLayer* m : f.net.body_layers()) {
    for (const int s : m->unit_subnet()) {
      EXPECT_GE(s, 1);
      EXPECT_LE(s, f.cfg.num_subnets + 1);  // +1 = discard pool
    }
  }
}

TEST(Builder, EverySubnetKeepsUnitsInEveryLayer) {
  auto& f = fixture();
  for (MaskedLayer* m : f.net.body_layers()) {
    for (int i = 1; i <= f.cfg.num_subnets; ++i) {
      int count = 0;
      for (const int s : m->unit_subnet()) {
        if (s <= i) ++count;
      }
      EXPECT_GE(count, f.cfg.min_units_per_layer)
          << m->name() << " subnet " << i;
    }
  }
}

TEST(Builder, ReportsMovedUnitsAndIterations) {
  auto& f = fixture();
  EXPECT_GT(f.report.total_moved_units, 0);
  EXPECT_GT(f.report.iterations, 1);
  EXPECT_LE(f.report.iterations, f.cfg.max_iters);
}

TEST(Builder, ExpandedMacsLargerThanReference) {
  auto& f = fixture();
  EXPECT_GT(f.report.expanded_macs, f.ref_macs);
}

TEST(Builder, DiscardPoolNonEmpty) {
  // Budgets sum far below the expanded network, so construction must have
  // discarded units entirely (the N+1 pool).
  auto& f = fixture();
  int discarded = 0;
  for (MaskedLayer* m : f.net.body_layers()) {
    for (const int s : m->unit_subnet()) {
      if (s == f.cfg.num_subnets + 1) ++discarded;
    }
  }
  EXPECT_GT(discarded, 0);
}

}  // namespace
}  // namespace stepping
