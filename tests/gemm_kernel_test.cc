// Parity grid for the blocked GEMM layer (ISSUE 4, tiered in ISSUE 6):
// every kernel in the family must be BITWISE identical to its reference
// loop on the non-FMA tiers (scalar, sse) for every block configuration,
// every thread count, and shapes that are not multiples of the register
// tile — and BITWISE STABLE within every supported ISA tier across the
// same grid. This is the enforcement arm of the determinism contract
// documented in gemm_kernel.h / gemm_isa.h.
#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tensor/gemm_isa.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace stepping {
namespace {

/// Restores the env-derived blocking, ISA tier and default threads when a
/// test exits.
class GemmBlockedParity : public ::testing::Test {
 protected:
  void TearDown() override {
    set_gemm_blocking(env_gemm_blocking());
    set_isa_tier(env_isa_tier());
    ThreadPool::set_global_threads(ThreadPool::default_threads());
  }
};

/// Every tier this binary + host can actually run, narrowest first.
std::vector<IsaTier> supported_tiers() {
  std::vector<IsaTier> tiers;
  for (int t = 0; t <= static_cast<int>(detected_isa_tier()); ++t) {
    const IsaTier tier = static_cast<IsaTier>(t);
    if (isa_tier_compiled(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// Widest tier whose multiply-add is unfused (two roundings) — the tiers
/// contracted to match the reference kernels bit for bit.
IsaTier widest_nonfma_tier() {
  IsaTier best = IsaTier::kScalar;
  for (IsaTier t : supported_tiers()) {
    if (t <= IsaTier::kSse) best = t;
  }
  return best;
}

/// ~20% exact zeros, like masked subnet weights: exercises the axpy
/// family's zero-skip on both paths.
Tensor make_operand(int rows, int cols, unsigned seed) {
  Rng rng(seed);
  Tensor t({rows, cols});
  fill_normal(t, 0.0f, 1.0f, rng);
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); i += 5) p[i] = 0.0f;
  return t;
}

std::vector<unsigned char> make_mask(int len, int period, unsigned char keep) {
  std::vector<unsigned char> m(static_cast<std::size_t>(len), 1);
  for (int i = 0; i < len; ++i) {
    m[static_cast<std::size_t>(i)] =
        (i % period == 0) ? static_cast<unsigned char>(keep ^ 1) : keep;
  }
  return m;
}

::testing::AssertionResult bitwise_equal(const Tensor& a, const Tensor& b,
                                         const std::string& what) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure() << what << ": shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(float) * static_cast<std::size_t>(a.numel())) != 0) {
    return ::testing::AssertionFailure() << what << ": bitwise MISMATCH";
  }
  return ::testing::AssertionSuccess();
}

struct Shape {
  int m, k, n;
};

/// Runs all seven kernels on one shape and compares against the *_ref
/// wrappers element-for-element, byte-for-byte.
void check_shape(const Shape& s, const std::string& ctx) {
  const Tensor a = make_operand(s.m, s.k, 11);
  const Tensor b = make_operand(s.k, s.n, 22);
  const Tensor at = make_operand(s.k, s.m, 33);
  const Tensor bt = make_operand(s.n, s.k, 44);
  const auto row_mask = make_mask(s.m, 3, 1);
  const auto col_mask = make_mask(s.n, 2, 1);
  const auto k_mask = make_mask(s.k, 4, 1);
  const std::string tag = ctx + " m=" + std::to_string(s.m) +
                          " k=" + std::to_string(s.k) +
                          " n=" + std::to_string(s.n);

  Tensor c_ref({s.m, s.n}), c_blk({s.m, s.n});

  gemm_ref(a, b, c_ref);
  gemm(a, b, c_blk);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm " + tag));

  // Accumulating flavor on top of a nonzero C.
  Tensor c0 = make_operand(s.m, s.n, 55);
  c_ref = c0;
  c_blk = c0;
  gemm_ref(a, b, c_ref, /*accumulate=*/true);
  gemm(a, b, c_blk, /*accumulate=*/true);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm acc " + tag));

  gemm_tn_ref(at, b, c_ref);
  gemm_tn(at, b, c_blk);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_tn " + tag));

  gemm_nt_ref(a, bt, c_ref);
  gemm_nt(a, bt, c_blk);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_nt " + tag));

  c_ref.zero();
  c_blk.zero();
  gemm_rows_ref(a, b, c_ref, row_mask.data());
  gemm_rows(a, b, c_blk, row_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_rows " + tag));

  c_ref.zero();
  c_blk.zero();
  gemm_nt_cols_ref(a, bt, c_ref, col_mask.data());
  gemm_nt_cols(a, bt, c_blk, col_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_nt_cols " + tag));

  c_ref = c0;
  c_blk = c0;
  gemm_nt_rows_acc_ref(a, bt, c_ref, row_mask.data());
  gemm_nt_rows_acc(a, bt, c_blk, row_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_nt_rows_acc " + tag));

  gemm_tn_rows_ref(at, b, c_ref, k_mask.data());
  gemm_tn_rows(at, b, c_blk, k_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_tn_rows " + tag));
}

const Shape kOddShapes[] = {
    {3, 7, 5},      // smaller than one register tile in every dimension
    {17, 9, 33},    // none a multiple of MR/NR
    {31, 33, 8},    // single full panel plus ragged rows
    {65, 129, 33},  // straddles default and tiny blockings
    {128, 100, 96}, // paper-ish, even panels
    {12, 64, 48},   // k a multiple of small kc values
};

const GemmBlocking kBlockingGrid[] = {
    {1, 1, 8, false, 0, 0},      // degenerate: one row, one k per chunk
    {4, 8, 8, false, 0, 0},      // single tile per group, single panel
    {8, 16, 24, false, 0, 0},    // panel pairs + odd tail
    {5, 7, 9, false, 0, 0},      // deliberately misaligned block sizes
    {64, 256, 1024, false, 0, 0} // production defaults, forced on
};

TEST_F(GemmBlockedParity, GridOverBlockingsThreadsAndOddShapes) {
  // vs-reference bitwise parity is the non-FMA tiers' contract; pin the
  // widest such tier (sse where compiled — the pre-ISSUE-6 kernels).
  set_isa_tier(widest_nonfma_tier());
  for (const auto& cfg : kBlockingGrid) {
    set_gemm_blocking(cfg);
    for (const int threads : {1, 2, 4}) {
      ThreadPool::set_global_threads(threads);
      const std::string ctx = "blocking=" + std::to_string(cfg.mc) + "x" +
                              std::to_string(cfg.kc) + "x" +
                              std::to_string(cfg.nc) +
                              " threads=" + std::to_string(threads);
      for (const Shape& s : kOddShapes) check_shape(s, ctx);
    }
  }
}

/// All seven kernels (plus the accumulating flavor) on one shape through
/// the dispatching path, outputs collected for cross-run comparison.
std::vector<Tensor> run_family(const Shape& s) {
  const Tensor a = make_operand(s.m, s.k, 11);
  const Tensor b = make_operand(s.k, s.n, 22);
  const Tensor at = make_operand(s.k, s.m, 33);
  const Tensor bt = make_operand(s.n, s.k, 44);
  const Tensor c0 = make_operand(s.m, s.n, 55);
  const auto row_mask = make_mask(s.m, 3, 1);
  const auto col_mask = make_mask(s.n, 2, 1);
  const auto k_mask = make_mask(s.k, 4, 1);

  std::vector<Tensor> out;
  Tensor c({s.m, s.n});
  gemm(a, b, c);
  out.push_back(c);
  c = c0;
  gemm(a, b, c, /*accumulate=*/true);
  out.push_back(c);
  gemm_tn(at, b, c);
  out.push_back(c);
  gemm_nt(a, bt, c);
  out.push_back(c);
  c.zero();
  gemm_rows(a, b, c, row_mask.data());
  out.push_back(c);
  c.zero();
  gemm_nt_cols(a, bt, c, col_mask.data());
  out.push_back(c);
  c = c0;
  gemm_nt_rows_acc(a, bt, c, row_mask.data());
  out.push_back(c);
  gemm_tn_rows(at, b, c, k_mask.data());
  out.push_back(c);
  return out;
}

TEST_F(GemmBlockedParity, TierSweepBitwiseStableWithinEachTier) {
  // Within one ISA tier, bits must not move for ANY blocking or thread
  // count — including the FMA tiers, whose values differ from the
  // reference but must be exactly as stable. The baseline per (tier,
  // shape) is the production blocking on one thread; every other grid
  // point must memcmp-match it.
  for (const IsaTier tier : supported_tiers()) {
    set_isa_tier(tier);
    const std::string tname = isa_tier_name(tier);
    for (const Shape& s : kOddShapes) {
      set_gemm_blocking(kBlockingGrid[4]);
      ThreadPool::set_global_threads(1);
      const std::vector<Tensor> base = run_family(s);
      for (const auto& cfg : kBlockingGrid) {
        set_gemm_blocking(cfg);
        for (const int threads : {1, 2, 4}) {
          ThreadPool::set_global_threads(threads);
          const std::vector<Tensor> got = run_family(s);
          ASSERT_EQ(base.size(), got.size());
          for (std::size_t i = 0; i < base.size(); ++i) {
            EXPECT_TRUE(bitwise_equal(
                base[i], got[i],
                "tier=" + tname + " kernel#" + std::to_string(i) + " m=" +
                    std::to_string(s.m) + " k=" + std::to_string(s.k) +
                    " n=" + std::to_string(s.n) + " blocking=" +
                    std::to_string(cfg.mc) + "x" + std::to_string(cfg.kc) +
                    "x" + std::to_string(cfg.nc) +
                    " threads=" + std::to_string(threads)));
          }
        }
      }
    }
  }
}

TEST_F(GemmBlockedParity, FallbackMatchesBlockedBitwiseAtEveryTier) {
  // The routing-boundary invariant: a value must not depend on WHICH path
  // (small-shape fallback vs blocked) the dispatcher picked — SteppingNet's
  // incremental step-up computes tiny delta GEMMs that must splice bitwise
  // into activations produced by full blocked forwards. Force each route in
  // turn and memcmp the whole kernel family.
  for (const IsaTier tier : supported_tiers()) {
    set_isa_tier(tier);
    const std::string tname = isa_tier_name(tier);
    for (const Shape& s : kOddShapes) {
      GemmBlocking ref_cfg;
      ref_cfg.force_ref = true;  // tier fallback kernels
      set_gemm_blocking(ref_cfg);
      const std::vector<Tensor> via_fallback = run_family(s);
      set_gemm_blocking(kBlockingGrid[2]);  // forced blocked, panel pairs
      const std::vector<Tensor> via_blocked = run_family(s);
      ASSERT_EQ(via_fallback.size(), via_blocked.size());
      for (std::size_t i = 0; i < via_fallback.size(); ++i) {
        EXPECT_TRUE(bitwise_equal(
            via_fallback[i], via_blocked[i],
            "tier=" + tname + " kernel#" + std::to_string(i) +
                " m=" + std::to_string(s.m) + " k=" + std::to_string(s.k) +
                " n=" + std::to_string(s.n)));
      }
    }
  }
}

TEST_F(GemmBlockedParity, IsaTierSelectionParsesAndClamps) {
  IsaTier t = IsaTier::kScalar;
  EXPECT_TRUE(parse_isa_tier("scalar", &t));
  EXPECT_EQ(t, IsaTier::kScalar);
  EXPECT_TRUE(parse_isa_tier("sse", &t));
  EXPECT_EQ(t, IsaTier::kSse);
  EXPECT_TRUE(parse_isa_tier("avx2", &t));
  EXPECT_EQ(t, IsaTier::kAvx2);
  EXPECT_TRUE(parse_isa_tier("avx512", &t));
  EXPECT_EQ(t, IsaTier::kAvx512);
  t = IsaTier::kSse;
  EXPECT_FALSE(parse_isa_tier("neon", &t));
  EXPECT_FALSE(parse_isa_tier("AVX2", &t));  // names are exact lowercase
  EXPECT_EQ(t, IsaTier::kSse);               // untouched on failure

  // Requests above the host's capability clamp down; a request at or below
  // it sticks. Covers STEPPING_ISA=avx512 on hosts without AVX-512 (where
  // env_isa_tier() returns the host max) and on hosts with it (identity).
  const IsaTier host_max = detected_isa_tier();
  const char* saved = std::getenv("STEPPING_ISA");
  const std::string saved_val = saved ? saved : "";
  ::setenv("STEPPING_ISA", "avx512", 1);
  EXPECT_EQ(env_isa_tier(),
            std::min(IsaTier::kAvx512, host_max));
  ::setenv("STEPPING_ISA", "scalar", 1);
  EXPECT_EQ(env_isa_tier(), IsaTier::kScalar);
  ::setenv("STEPPING_ISA", "bogus", 1);
  EXPECT_EQ(env_isa_tier(), host_max);  // unknown names fall back to host max
  if (saved) {
    ::setenv("STEPPING_ISA", saved_val.c_str(), 1);
  } else {
    ::unsetenv("STEPPING_ISA");
  }

  // set_isa_tier clamps the same way and the gauge tracks the selection.
  set_isa_tier(IsaTier::kAvx512);
  EXPECT_LE(static_cast<int>(isa_tier()), static_cast<int>(host_max));
  EXPECT_EQ(obs::Registry::global().gauge("stepping_isa_tier").value(),
            static_cast<std::int64_t>(isa_tier()));

  // Panel width follows the active tier.
  for (const IsaTier tier : supported_tiers()) {
    set_isa_tier(tier);
    const int nr = gemm_panel_width();
    switch (tier) {
      case IsaTier::kScalar:
      case IsaTier::kSse:
        EXPECT_EQ(nr, 8) << isa_tier_name(tier);
        break;
      case IsaTier::kAvx2:
        EXPECT_EQ(nr, 16) << isa_tier_name(tier);
        break;
      case IsaTier::kAvx512:
        EXPECT_EQ(nr, 32) << isa_tier_name(tier);
        break;
    }
  }
}

TEST_F(GemmBlockedParity, ForceRefRoutesEverythingToReference) {
  // check_shape compares against gemmref, which only the non-FMA tiers'
  // fallbacks alias; the counter assertions are tier-independent.
  set_isa_tier(widest_nonfma_tier());
  GemmBlocking cfg;
  cfg.force_ref = true;
  set_gemm_blocking(cfg);
  obs::Counter& blocked =
      obs::Registry::global().counter("stepping_gemm_blocked_total");
  obs::Counter& ref =
      obs::Registry::global().counter("stepping_gemm_ref_total");
  const std::uint64_t blocked_before = blocked.value();
  const std::uint64_t ref_before = ref.value();
  check_shape({64, 64, 64}, "force_ref");
  EXPECT_EQ(blocked.value(), blocked_before);
  EXPECT_GT(ref.value(), ref_before);
}

TEST_F(GemmBlockedParity, DispatchCountersTrackBlockedCalls) {
  GemmBlocking cfg;
  cfg.min_macs = 0;
  cfg.min_k = 0;
  set_gemm_blocking(cfg);
  obs::Counter& blocked =
      obs::Registry::global().counter("stepping_gemm_blocked_total");
  obs::Counter& packs =
      obs::Registry::global().counter("stepping_gemm_packs_total");
  const std::uint64_t blocked_before = blocked.value();
  const std::uint64_t packs_before = packs.value();
  Tensor a = make_operand(32, 48, 1), b = make_operand(48, 40, 2);
  Tensor c({32, 40});
  gemm(a, b, c);
  EXPECT_EQ(blocked.value(), blocked_before + 1);
  EXPECT_GT(packs.value(), packs_before);
}

TEST_F(GemmBlockedParity, SmallShapesFallBackToReference) {
  set_isa_tier(widest_nonfma_tier());  // vs-ref parity is their contract
  set_gemm_blocking(GemmBlocking{});  // production thresholds
  const GemmBlocking cfg = gemm_blocking();
  EXPECT_FALSE(gemm_uses_blocked(4, 4, 4, cfg));      // below min_macs
  EXPECT_FALSE(gemm_uses_blocked(1024, 8, 1024, cfg));  // below min_k
  EXPECT_TRUE(gemm_uses_blocked(128, 400, 1024, cfg));
  // Tiny shapes still compute correctly through the dispatcher.
  check_shape({2, 3, 2}, "fallback");
}

TEST_F(GemmBlockedParity, EnvParsingAcceptsSizesAndRefKeyword) {
  // env_gemm_blocking reads the ambient STEPPING_GEMM_BLOCK which isn't set
  // in tests; the parse itself is covered via set_gemm_blocking round trips
  // plus the documented default.
  const GemmBlocking dflt;
  EXPECT_EQ(dflt.mc, 64);
  EXPECT_EQ(dflt.kc, 256);
  EXPECT_EQ(dflt.nc, 1024);
  EXPECT_FALSE(dflt.force_ref);
  GemmBlocking cfg{7, 9, 24, false, 0, 0};
  set_gemm_blocking(cfg);
  const GemmBlocking got = gemm_blocking();
  EXPECT_EQ(got.mc, 7);
  EXPECT_EQ(got.kc, 9);
  EXPECT_EQ(got.nc, 24);
}

}  // namespace
}  // namespace stepping
