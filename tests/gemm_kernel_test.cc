// Parity grid for the blocked GEMM layer (ISSUE 4): every kernel in the
// family must be BITWISE identical to its reference loop for every block
// configuration, every thread count, and shapes that are not multiples of
// the register tile. This is the enforcement arm of the determinism
// contract documented in gemm_kernel.h.
#include "tensor/gemm_kernel.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace stepping {
namespace {

/// Restores the env-derived blocking and default threads when a test exits.
class GemmBlockedParity : public ::testing::Test {
 protected:
  void TearDown() override {
    set_gemm_blocking(env_gemm_blocking());
    ThreadPool::set_global_threads(ThreadPool::default_threads());
  }
};

/// ~20% exact zeros, like masked subnet weights: exercises the axpy
/// family's zero-skip on both paths.
Tensor make_operand(int rows, int cols, unsigned seed) {
  Rng rng(seed);
  Tensor t({rows, cols});
  fill_normal(t, 0.0f, 1.0f, rng);
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); i += 5) p[i] = 0.0f;
  return t;
}

std::vector<unsigned char> make_mask(int len, int period, unsigned char keep) {
  std::vector<unsigned char> m(static_cast<std::size_t>(len), 1);
  for (int i = 0; i < len; ++i) {
    m[static_cast<std::size_t>(i)] =
        (i % period == 0) ? static_cast<unsigned char>(keep ^ 1) : keep;
  }
  return m;
}

::testing::AssertionResult bitwise_equal(const Tensor& a, const Tensor& b,
                                         const std::string& what) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure() << what << ": shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(float) * static_cast<std::size_t>(a.numel())) != 0) {
    return ::testing::AssertionFailure() << what << ": bitwise MISMATCH";
  }
  return ::testing::AssertionSuccess();
}

struct Shape {
  int m, k, n;
};

/// Runs all seven kernels on one shape and compares against the *_ref
/// wrappers element-for-element, byte-for-byte.
void check_shape(const Shape& s, const std::string& ctx) {
  const Tensor a = make_operand(s.m, s.k, 11);
  const Tensor b = make_operand(s.k, s.n, 22);
  const Tensor at = make_operand(s.k, s.m, 33);
  const Tensor bt = make_operand(s.n, s.k, 44);
  const auto row_mask = make_mask(s.m, 3, 1);
  const auto col_mask = make_mask(s.n, 2, 1);
  const auto k_mask = make_mask(s.k, 4, 1);
  const std::string tag = ctx + " m=" + std::to_string(s.m) +
                          " k=" + std::to_string(s.k) +
                          " n=" + std::to_string(s.n);

  Tensor c_ref({s.m, s.n}), c_blk({s.m, s.n});

  gemm_ref(a, b, c_ref);
  gemm(a, b, c_blk);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm " + tag));

  // Accumulating flavor on top of a nonzero C.
  Tensor c0 = make_operand(s.m, s.n, 55);
  c_ref = c0;
  c_blk = c0;
  gemm_ref(a, b, c_ref, /*accumulate=*/true);
  gemm(a, b, c_blk, /*accumulate=*/true);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm acc " + tag));

  gemm_tn_ref(at, b, c_ref);
  gemm_tn(at, b, c_blk);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_tn " + tag));

  gemm_nt_ref(a, bt, c_ref);
  gemm_nt(a, bt, c_blk);
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_nt " + tag));

  c_ref.zero();
  c_blk.zero();
  gemm_rows_ref(a, b, c_ref, row_mask.data());
  gemm_rows(a, b, c_blk, row_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_rows " + tag));

  c_ref.zero();
  c_blk.zero();
  gemm_nt_cols_ref(a, bt, c_ref, col_mask.data());
  gemm_nt_cols(a, bt, c_blk, col_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_nt_cols " + tag));

  c_ref = c0;
  c_blk = c0;
  gemm_nt_rows_acc_ref(a, bt, c_ref, row_mask.data());
  gemm_nt_rows_acc(a, bt, c_blk, row_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_nt_rows_acc " + tag));

  gemm_tn_rows_ref(at, b, c_ref, k_mask.data());
  gemm_tn_rows(at, b, c_blk, k_mask.data());
  EXPECT_TRUE(bitwise_equal(c_ref, c_blk, "gemm_tn_rows " + tag));
}

TEST_F(GemmBlockedParity, GridOverBlockingsThreadsAndOddShapes) {
  const Shape shapes[] = {
      {3, 7, 5},      // smaller than one register tile in every dimension
      {17, 9, 33},    // none a multiple of MR/NR
      {31, 33, 8},    // single full panel plus ragged rows
      {65, 129, 33},  // straddles default and tiny blockings
      {128, 100, 96}, // paper-ish, even panels
      {12, 64, 48},   // k a multiple of small kc values
  };
  GemmBlocking grid[] = {
      {1, 1, 8, false, 0, 0},      // degenerate: one row, one k per chunk
      {4, 8, 8, false, 0, 0},      // single tile per group, single panel
      {8, 16, 24, false, 0, 0},    // panel pairs + odd tail
      {5, 7, 9, false, 0, 0},      // deliberately misaligned block sizes
      {64, 256, 1024, false, 0, 0} // production defaults, forced on
  };
  for (const auto& cfg : grid) {
    set_gemm_blocking(cfg);
    for (const int threads : {1, 2, 4}) {
      ThreadPool::set_global_threads(threads);
      const std::string ctx = "blocking=" + std::to_string(cfg.mc) + "x" +
                              std::to_string(cfg.kc) + "x" +
                              std::to_string(cfg.nc) +
                              " threads=" + std::to_string(threads);
      for (const Shape& s : shapes) check_shape(s, ctx);
    }
  }
}

TEST_F(GemmBlockedParity, ForceRefRoutesEverythingToReference) {
  GemmBlocking cfg;
  cfg.force_ref = true;
  set_gemm_blocking(cfg);
  obs::Counter& blocked =
      obs::Registry::global().counter("stepping_gemm_blocked_total");
  obs::Counter& ref =
      obs::Registry::global().counter("stepping_gemm_ref_total");
  const std::uint64_t blocked_before = blocked.value();
  const std::uint64_t ref_before = ref.value();
  check_shape({64, 64, 64}, "force_ref");
  EXPECT_EQ(blocked.value(), blocked_before);
  EXPECT_GT(ref.value(), ref_before);
}

TEST_F(GemmBlockedParity, DispatchCountersTrackBlockedCalls) {
  GemmBlocking cfg;
  cfg.min_macs = 0;
  cfg.min_k = 0;
  set_gemm_blocking(cfg);
  obs::Counter& blocked =
      obs::Registry::global().counter("stepping_gemm_blocked_total");
  obs::Counter& packs =
      obs::Registry::global().counter("stepping_gemm_packs_total");
  const std::uint64_t blocked_before = blocked.value();
  const std::uint64_t packs_before = packs.value();
  Tensor a = make_operand(32, 48, 1), b = make_operand(48, 40, 2);
  Tensor c({32, 40});
  gemm(a, b, c);
  EXPECT_EQ(blocked.value(), blocked_before + 1);
  EXPECT_GT(packs.value(), packs_before);
}

TEST_F(GemmBlockedParity, SmallShapesFallBackToReference) {
  set_gemm_blocking(GemmBlocking{});  // production thresholds
  const GemmBlocking cfg = gemm_blocking();
  EXPECT_FALSE(gemm_uses_blocked(4, 4, 4, cfg));      // below min_macs
  EXPECT_FALSE(gemm_uses_blocked(1024, 8, 1024, cfg));  // below min_k
  EXPECT_TRUE(gemm_uses_blocked(128, 400, 1024, cfg));
  // Tiny shapes still compute correctly through the dispatcher.
  check_shape({2, 3, 2}, "fallback");
}

TEST_F(GemmBlockedParity, EnvParsingAcceptsSizesAndRefKeyword) {
  // env_gemm_blocking reads the ambient STEPPING_GEMM_BLOCK which isn't set
  // in tests; the parse itself is covered via set_gemm_blocking round trips
  // plus the documented default.
  const GemmBlocking dflt;
  EXPECT_EQ(dflt.mc, 64);
  EXPECT_EQ(dflt.kc, 256);
  EXPECT_EQ(dflt.nc, 1024);
  EXPECT_FALSE(dflt.force_ref);
  GemmBlocking cfg{7, 9, 24, false, 0, 0};
  set_gemm_blocking(cfg);
  const GemmBlocking got = gemm_blocking();
  EXPECT_EQ(got.mc, 7);
  EXPECT_EQ(got.kc, 9);
  EXPECT_EQ(got.nc, 24);
}

}  // namespace
}  // namespace stepping
