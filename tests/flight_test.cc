// Flight recorder + SLO tracker tests (ISSUE 8).
//
// The two contracts pinned here:
//  * Observation-only: served logits are bitwise identical with the
//    recorder on or off — the recorder may never change the answer.
//  * Drop, never block: ring wraparound onto an in-flight record and
//    per-record event overflow drop the new data and count it; nothing
//    in the hot path waits.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/latency.h"
#include "models/models.h"
#include "obs/flight.h"
#include "obs/slo.h"
#include "serve/planner.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace stepping::obs {
namespace {

using serve::LevelCosts;
using serve::Planner;
using serve::Request;
using serve::ServeConfig;
using serve::ServedResult;
using serve::Server;

FlightRecorder::Config small_cfg(int ring, int misses = 8, int stragglers = 4) {
  FlightRecorder::Config cfg;
  cfg.ring = ring;
  cfg.retain_misses = misses;
  cfg.retain_stragglers = stragglers;
  return cfg;
}

// ---------------------------------------------------------------------------
// FlightRecorder: ring mechanics, drop accounting, retention.
// ---------------------------------------------------------------------------

TEST(FlightRecorder, DisabledRingRecordsNothingAndCountsNoDrops) {
  FlightRecorder rec(small_cfg(/*ring=*/0));
  EXPECT_FALSE(rec.enabled());
  FlightHandle h = rec.begin(1, 0.0, 0.0, 0);
  EXPECT_FALSE(static_cast<bool>(h));
  // A disabled recorder is not "dropping" — it was asked to do nothing.
  EXPECT_EQ(rec.records(), 0u);
  EXPECT_EQ(rec.ring_dropped(), 0u);
  // Null-handle calls are no-ops, not errors.
  rec.event(h, FlightEventKind::kEnqueue, 0.0);
  rec.set_batch(h, 1, 1, 1, 0, 0);
  rec.set_level(h, 1, 1.0, 1.0, 100);
  rec.finish(h, 1, HaltReason::kMaxLevel, false, 0.0, 0.0, 1.0);
  EXPECT_EQ(rec.records(), 0u);
  EXPECT_NE(rec.postmortems_json().find("\"ring\":0"), std::string::npos);
}

TEST(FlightRecorder, WraparoundOntoOpenRecordDropsTheNewRequest) {
  FlightRecorder rec(small_cfg(/*ring=*/2));
  FlightHandle h1 = rec.begin(1, 0.0, 0.0, 0);
  FlightHandle h2 = rec.begin(2, 0.0, 0.0, 0);
  ASSERT_TRUE(static_cast<bool>(h1));
  ASSERT_TRUE(static_cast<bool>(h2));
  // Both slots are open: the next begin wraps onto slot 0 and must drop.
  FlightHandle h3 = rec.begin(3, 0.0, 0.0, 0);
  EXPECT_FALSE(static_cast<bool>(h3));
  EXPECT_EQ(rec.ring_dropped(), 1u);

  rec.finish(h1, 1, HaltReason::kMaxLevel, false, 0.0, 0.0, 1.0);
  // The cursor has moved on: the next begin targets slot 1, still open.
  FlightHandle h4 = rec.begin(4, 0.0, 0.0, 0);
  EXPECT_FALSE(static_cast<bool>(h4));
  EXPECT_EQ(rec.ring_dropped(), 2u);

  rec.finish(h2, 1, HaltReason::kMaxLevel, false, 0.0, 0.0, 1.0);
  // Slot 0 is kDone now — reusable.
  FlightHandle h5 = rec.begin(5, 0.0, 0.0, 0);
  EXPECT_TRUE(static_cast<bool>(h5));
  rec.finish(h5, 1, HaltReason::kMaxLevel, false, 0.0, 0.0, 1.0);
  EXPECT_EQ(rec.records(), 3u);
}

TEST(FlightRecorder, EventOverflowDropsAndCountsPerRecordAndGlobally) {
  FlightRecorder rec(small_cfg(/*ring=*/4));
  FlightHandle h = rec.begin(7, 0.0, 0.0, 0);
  ASSERT_TRUE(static_cast<bool>(h));
  const int extra = 5;
  for (int i = 0; i < kFlightMaxEvents + extra; ++i) {
    rec.event(h, FlightEventKind::kStepStart, static_cast<double>(i), i);
  }
  rec.finish(h, 1, HaltReason::kMaxLevel, /*missed=*/true, 0.0, 0.5, 1.0);
  EXPECT_EQ(rec.events_dropped(), static_cast<std::uint64_t>(extra));
  std::vector<FlightData> misses = rec.retained_misses();
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].num_events, kFlightMaxEvents);
  EXPECT_EQ(misses[0].events_dropped, static_cast<std::uint32_t>(extra));
  // The kept prefix is intact: stamped in submission order.
  EXPECT_EQ(misses[0].events[kFlightMaxEvents - 1].a0, kFlightMaxEvents - 1);
}

TEST(FlightRecorder, SetLevelIgnoresOutOfRangeLevels) {
  FlightRecorder rec(small_cfg(/*ring=*/2));
  FlightHandle h = rec.begin(1, 0.0, 0.0, 0);
  ASSERT_TRUE(static_cast<bool>(h));
  rec.set_level(h, 0, 1.0, 1.0, 10);                     // below range
  rec.set_level(h, kFlightMaxLevels + 1, 1.0, 1.0, 10);  // above range
  rec.set_level(h, 2, 0.25, 0.5, 42);
  rec.finish(h, 2, HaltReason::kTarget, /*missed=*/true, 0.0, 0.5, 1.0);
  std::vector<FlightData> misses = rec.retained_misses();
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].num_levels, 2);
  EXPECT_EQ(misses[0].predicted_ms[1], 0.25);
  EXPECT_EQ(misses[0].actual_ms[1], 0.5);
  EXPECT_EQ(misses[0].level_macs[1], 42);
}

TEST(FlightRecorder, MissRetentionKeepsMostRecent) {
  FlightRecorder rec(small_cfg(/*ring=*/8, /*misses=*/2, /*stragglers=*/0));
  for (std::uint64_t id = 11; id <= 13; ++id) {
    FlightHandle h = rec.begin(id, 0.0, 1.0, 0);
    ASSERT_TRUE(static_cast<bool>(h));
    rec.finish(h, 1, HaltReason::kDeadline, /*missed=*/true, 0.0, 2.0, 2.0);
  }
  std::vector<FlightData> misses = rec.retained_misses();
  ASSERT_EQ(misses.size(), 2u);  // capped; oldest evicted
  EXPECT_EQ(misses[0].request_id, 12u);
  EXPECT_EQ(misses[1].request_id, 13u);
}

TEST(FlightRecorder, StragglerRetentionKeepsWorstNSortedDescending) {
  FlightRecorder rec(small_cfg(/*ring=*/8, /*misses=*/0, /*stragglers=*/3));
  for (int i = 1; i <= 6; ++i) {
    FlightHandle h = rec.begin(static_cast<std::uint64_t>(i), 0.0, 0.0, 0);
    ASSERT_TRUE(static_cast<bool>(h));
    rec.finish(h, 1, HaltReason::kMaxLevel, /*missed=*/false, 0.0, 0.0,
               static_cast<double>(i));
  }
  std::vector<FlightData> worst = rec.retained_stragglers();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].final_ms, 6.0);
  EXPECT_EQ(worst[1].final_ms, 5.0);
  EXPECT_EQ(worst[2].final_ms, 4.0);
}

TEST(FlightRecorder, RejectedRecordsAreNotPostmortemMaterial) {
  FlightRecorder rec(small_cfg(/*ring=*/4));
  FlightHandle h = rec.begin(1, 0.0, 0.0, 0);
  ASSERT_TRUE(static_cast<bool>(h));
  // exit_level 0 marks a never-executed request (rejection/shutdown).
  rec.finish(h, 0, HaltReason::kRejected, /*missed=*/false, 0.0, 0.0, 0.0);
  EXPECT_TRUE(rec.retained_misses().empty());
  EXPECT_TRUE(rec.retained_stragglers().empty());
}

TEST(FlightRecorder, PostmortemJsonCarriesTimelineAndPlanError) {
  FlightRecorder rec(small_cfg(/*ring=*/4));
  FlightHandle h = rec.begin(42, 1.5, 4.0, 1000);
  ASSERT_TRUE(static_cast<bool>(h));
  rec.event(h, FlightEventKind::kEnqueue, 1.5);
  rec.event(h, FlightEventKind::kAdmit, 1.75, /*worker=*/3);
  rec.event(h, FlightEventKind::kBatchJoin, 1.75, /*batch_id=*/9, /*size=*/2);
  rec.set_batch(h, 9, 2, 1, 0, 0);
  rec.event(h, FlightEventKind::kStepStart, 1.8, 1, 0, 2);
  rec.event(h, FlightEventKind::kStepEnd, 4.5, 1, 100, 812000);
  rec.set_level(h, 1, 0.5, 2.7, 100);
  rec.event(h, FlightEventKind::kPrelimPublish, 4.5, 1, 812000);
  rec.event(h, FlightEventKind::kHalt, 4.5,
            static_cast<std::int64_t>(HaltReason::kDeadline), 1);
  rec.event(h, FlightEventKind::kFinalPublish, 4.6, 1, 1);
  rec.finish(h, 1, HaltReason::kDeadline, /*missed=*/true, 0.25, 3.0, 3.1);

  const std::string json = rec.postmortems_json();
  for (const char* needle :
       {"\"kind\":\"deadline_miss\"", "\"request_id\":42",
        "\"halt_reason\":\"deadline\"", "\"missed\":true",
        "\"event\":\"enqueue\"", "\"worker\":3", "\"batch_id\":9",
        "\"event\":\"step_start\"", "\"event\":\"prelim_publish\"",
        "\"reason\":\"deadline\"", "\"event\":\"final_publish\"",
        "\"predicted_ms\":0.5", "\"actual_ms\":2.7", "\"macs\":100"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
  // Deterministic formatting: equal state renders byte-equal bytes.
  EXPECT_EQ(json, rec.postmortems_json());
}

TEST(FlightRecorder, EnvKnobsResolveWhenConfigIsDefault) {
  ::setenv("STEPPING_FLIGHT_RING", "8", 1);
  ::setenv("STEPPING_FLIGHT_RETAIN", "1", 1);
  ::setenv("STEPPING_FLIGHT_STRAGGLERS", "1", 1);
  {
    FlightRecorder rec;
    EXPECT_EQ(rec.ring_size(), 8u);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      FlightHandle h = rec.begin(id, 0.0, 1.0, 0);
      ASSERT_TRUE(static_cast<bool>(h));
      rec.finish(h, 1, HaltReason::kDeadline, /*missed=*/true, 0.0, 2.0, 2.0);
    }
    EXPECT_EQ(rec.retained_misses().size(), 1u);
    EXPECT_EQ(rec.retained_stragglers().size(), 1u);
  }
  ::unsetenv("STEPPING_FLIGHT_RING");
  ::unsetenv("STEPPING_FLIGHT_RETAIN");
  ::unsetenv("STEPPING_FLIGHT_STRAGGLERS");
}

TEST(FlightRecorder, ConcurrentBeginFinishConservesEveryAttempt) {
  FlightRecorder rec(small_cfg(/*ring=*/64, /*misses=*/4, /*stragglers=*/4));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto id = static_cast<std::uint64_t>(t * kPerThread + i);
        FlightHandle h = rec.begin(id, 0.0, 0.0, 0);
        if (!h) continue;  // dropped — counted, not an error
        rec.event(h, FlightEventKind::kEnqueue, 0.0);
        rec.event(h, FlightEventKind::kAdmit, 0.1, t);
        rec.set_level(h, 1, 0.5, 0.6, 100);
        rec.finish(h, 1, HaltReason::kMaxLevel, false, 0.0, 0.5,
                   static_cast<double>(i % 7));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // Every begin() either recorded or counted a drop — nothing vanishes.
  EXPECT_EQ(rec.records() + rec.ring_dropped(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GT(rec.records(), 0u);
  EXPECT_EQ(rec.events_dropped(), 0u);
  // The retained buffers and dump stay coherent under the mutex.
  const std::string json = rec.postmortems_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_LE(rec.retained_stragglers().size(), 4u);
}

// ---------------------------------------------------------------------------
// SloTracker: synthetic-timestamp window edge cases.
// ---------------------------------------------------------------------------

TEST(SloTracker, EmptyWindowReportsPerfectHitRateZeroBurn) {
  SloTracker slo(SloTracker::Config{60.0, 60, 0.99});
  const SloTracker::WindowStats s = slo.window(0.0);
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.missed, 0u);
  EXPECT_EQ(s.hit_rate, 1.0);
  EXPECT_EQ(s.budget_burn, 0.0);
}

TEST(SloTracker, SingleMissBurnsTheFullInverseBudget) {
  SloTracker slo(SloTracker::Config{10.0, 10, 0.9});
  slo.record(500.0, /*miss=*/true);
  const SloTracker::WindowStats s = slo.window(600.0);
  EXPECT_EQ(s.total, 1u);
  EXPECT_EQ(s.missed, 1u);
  EXPECT_EQ(s.hit_rate, 0.0);
  EXPECT_NEAR(s.budget_burn, 10.0, 1e-9);  // miss_rate 1.0 / (1 - 0.9)
}

TEST(SloTracker, BucketsOlderThanTheWindowAreExcluded) {
  // 2 s window, two 1 s buckets.
  SloTracker slo(SloTracker::Config{2.0, 2, 0.5});
  slo.record(100.0, /*miss=*/false);   // bucket id 0
  slo.record(1100.0, /*miss=*/true);   // bucket id 1
  const SloTracker::WindowStats in = slo.window(1500.0);
  EXPECT_EQ(in.total, 2u);
  EXPECT_EQ(in.missed, 1u);
  EXPECT_NEAR(in.hit_rate, 0.5, 1e-12);
  EXPECT_NEAR(in.budget_burn, 1.0, 1e-9);
  // Two buckets later both are stale even though never overwritten.
  const SloTracker::WindowStats out = slo.window(3500.0);
  EXPECT_EQ(out.total, 0u);
  EXPECT_EQ(out.hit_rate, 1.0);
}

TEST(SloTracker, LappedBucketResetsForTheNewInterval) {
  SloTracker slo(SloTracker::Config{2.0, 2, 0.5});
  slo.record(100.0, /*miss=*/true);  // bucket id 0 -> slot 0
  slo.record(2100.0, /*miss=*/false);  // bucket id 2 laps slot 0, resets it
  const SloTracker::WindowStats s = slo.window(2500.0);
  EXPECT_EQ(s.total, 1u);
  EXPECT_EQ(s.missed, 0u);
  EXPECT_EQ(s.hit_rate, 1.0);
}

TEST(SloTracker, SummaryRendersRatesAndBurn) {
  SloTracker slo(SloTracker::Config{60.0, 60, 0.99});
  slo.record(100.0, false);
  slo.record(200.0, false);
  slo.record(300.0, true);
  const std::string line = slo.summary(400.0);
  EXPECT_NE(line.find("completed=3"), std::string::npos) << line;
  EXPECT_NE(line.find("misses=1"), std::string::npos) << line;
  EXPECT_NE(line.find("hit_rate=66.67%"), std::string::npos) << line;
  EXPECT_NE(line.find("objective=99.00%"), std::string::npos) << line;
  EXPECT_NE(line.find("budget_burn=33.33x"), std::string::npos) << line;
}

// ---------------------------------------------------------------------------
// Planner prediction figures: the exact numbers the flight recorder stores.
// ---------------------------------------------------------------------------

TEST(PlannerPrediction, LadderModesReproducePlanningFigures) {
  LevelCosts c;
  c.full = {100'000, 300'000, 600'000, 1'000'000};
  c.body = {90'000, 290'000, 590'000, 990'000};
  DeviceModel dev;
  dev.name = "synthetic";
  dev.macs_per_second = 1e8;
  dev.fixed_overhead_ms = 0.5;
  const Planner p(c, dev);
  for (int level = 1; level <= 4; ++level) {
    for (int batch : {1, 3}) {
      EXPECT_EQ(p.predicted_level_ms(level, batch, Planner::LadderMode::kReuse),
                p.step_ms(level - 1, level, batch));
      EXPECT_EQ(
          p.predicted_level_ms(level, batch, Planner::LadderMode::kFromScratch),
          dev.latency_ms(c.full[static_cast<std::size_t>(level - 1)] * batch));
      EXPECT_EQ(p.predicted_level_ms(level, batch, Planner::LadderMode::kInt8),
                p.int8_full_ms(level, batch));
      // Deterministic: same inputs, same figure, every call.
      EXPECT_EQ(p.predicted_level_ms(level, batch, Planner::LadderMode::kReuse),
                p.predicted_level_ms(level, batch,
                                     Planner::LadderMode::kReuse));
    }
  }
}

// ---------------------------------------------------------------------------
// Server-level: bitwise invisibility and forced-miss postmortems.
// ---------------------------------------------------------------------------

Network nested_net() {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15};
  Network net = build_lenet3c1l(mc);
  for (MaskedLayer* m : net.body_layers()) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, 1 + (u % 3));
    }
  }
  return net;
}

Tensor random_input(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x({1, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  return x;
}

TEST(FlightServe, RecorderOnOrOffServesBitwiseIdenticalLogits) {
  Network net = nested_net();
  auto run = [&net](int ring) {
    ServeConfig cfg;
    cfg.max_subnet = 3;
    cfg.num_workers = 2;
    cfg.max_batch = 4;
    cfg.flight.ring = ring;
    cfg.flight.retain_misses = 8;
    cfg.flight.retain_stragglers = 4;
    Server server(net, cfg);
    std::vector<int> exits;
    std::vector<std::vector<float>> logits;
    for (int i = 0; i < 8; ++i) {
      Request req;
      req.input = random_input(static_cast<std::uint64_t>(7000 + i));
      const ServedResult res = server.serve(std::move(req));
      exits.push_back(res.exit_subnet);
      logits.emplace_back(
          res.logits.data(),
          res.logits.data() + static_cast<std::size_t>(res.logits.numel()));
    }
    server.shutdown();
    return std::make_pair(exits, logits);
  };
  const auto on = run(/*ring=*/64);
  const auto off = run(/*ring=*/0);
  EXPECT_EQ(on.first, off.first);
  ASSERT_EQ(on.second.size(), off.second.size());
  for (std::size_t i = 0; i < on.second.size(); ++i) {
    ASSERT_EQ(on.second[i].size(), off.second[i].size());
    EXPECT_EQ(std::memcmp(on.second[i].data(), off.second[i].data(),
                          sizeof(float) * on.second[i].size()),
              0)
        << "recorder changed logits of request " << i;
  }
}

TEST(FlightServe, ForcedMissYieldsOrderedTimelineAndPostmortem) {
  Network net = nested_net();
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = 1;
  cfg.max_batch = 2;
  cfg.flight.ring = 32;
  cfg.flight.retain_misses = 8;
  cfg.flight.retain_stragglers = 4;
  Server server(net, cfg);
  for (int i = 0; i < 4; ++i) {
    Request req;
    req.input = random_input(static_cast<std::uint64_t>(i));
    req.deadline_ms = 1e-3;  // un-meetable: every request misses
    const ServedResult res = server.serve(std::move(req));
    EXPECT_TRUE(res.deadline_missed);
    EXPECT_GE(res.exit_subnet, 1);
  }
  server.shutdown();

  const FlightRecorder& rec = server.flight();
  EXPECT_EQ(rec.records(), 4u);
  EXPECT_EQ(rec.ring_dropped(), 0u);
  EXPECT_EQ(rec.events_dropped(), 0u);

  std::vector<FlightData> misses = rec.retained_misses();
  ASSERT_EQ(misses.size(), 4u);
  const FlightData& d = misses.front();
  EXPECT_TRUE(d.missed);
  EXPECT_EQ(d.halt, HaltReason::kDeadline);
  EXPECT_GE(d.exit_level, 1);
  EXPECT_GT(d.deadline_abs_ms, 0.0);
  ASSERT_GE(d.num_levels, 1);
  EXPECT_GT(d.predicted_ms[0], 0.0);  // the planner's figure rides along
  EXPECT_GT(d.actual_ms[0], 0.0);
  EXPECT_GT(d.level_macs[0], 0);
  // The timeline is causal: enqueue first, final publish last, time
  // monotonically non-decreasing in between.
  ASSERT_GE(d.num_events, 5);
  EXPECT_EQ(d.events[0].kind, FlightEventKind::kEnqueue);
  EXPECT_EQ(d.events[d.num_events - 1].kind, FlightEventKind::kFinalPublish);
  for (int i = 1; i < d.num_events; ++i) {
    EXPECT_GE(d.events[i].t_ms, d.events[i - 1].t_ms) << "event " << i;
  }

  const std::string json = server.postmortems_json();
  for (const char* needle :
       {"\"kind\":\"deadline_miss\"", "\"halt_reason\":\"deadline\"",
        "\"timeline\":[", "\"event\":\"enqueue\"",
        "\"event\":\"final_publish\"", "\"predicted_ms\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // The SLO window saw all four misses; the recorder dropped nothing.
  EXPECT_NE(server.slo_summary().find("misses=4"), std::string::npos);
  EXPECT_NE(server.flight_summary().find("drops=0"), std::string::npos);

  // Plan-error telemetry and build identity ride the standard exposition.
  const std::string metrics = server.metrics_json();
  EXPECT_NE(metrics.find("\"serve_plan_error_ratio_subnet_1\""),
            std::string::npos);
  EXPECT_NE(metrics.find("\"stepping_build_info\""), std::string::npos);
  EXPECT_NE(metrics.find("\"serve_slo_hit_rate_ppm\""), std::string::npos);
  const std::string prom = server.metrics_prometheus();
  EXPECT_NE(prom.find("stepping_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("serve_flight_records"), std::string::npos);
}

TEST(FlightServe, HealthyRunHitsNoMissesAndBurnsNoBudget) {
  Network net = nested_net();
  ServeConfig cfg;
  cfg.max_subnet = 3;
  cfg.num_workers = 1;
  cfg.flight.ring = 16;
  Server server(net, cfg);
  for (int i = 0; i < 3; ++i) {
    Request req;
    req.input = random_input(static_cast<std::uint64_t>(100 + i));
    const ServedResult res = server.serve(std::move(req));
    EXPECT_FALSE(res.deadline_missed);
    EXPECT_EQ(res.exit_subnet, 3);  // no deadline: the full ladder runs
  }
  server.shutdown();
  EXPECT_TRUE(server.flight().retained_misses().empty());
  // Stragglers are retained even on healthy runs — that is their point.
  EXPECT_FALSE(server.flight().retained_stragglers().empty());
  const std::string line = server.slo_summary();
  EXPECT_NE(line.find("misses=0"), std::string::npos) << line;
  EXPECT_NE(line.find("hit_rate=100.00%"), std::string::npos) << line;
  EXPECT_NE(line.find("budget_burn=0.00x"), std::string::npos) << line;
}

}  // namespace
}  // namespace stepping::obs
