// ThreadPool / parallel_for semantics and the bitwise-determinism contract
// of the parallel GEMM family: for any thread count, every kernel must
// produce output identical byte-for-byte to a serial run (ISSUE 1; the
// exact-reuse property tests in properties_test.cc depend on this).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace stepping {
namespace {

TEST(ThreadPool, SizeZeroAndOneFallBackToSerial) {
  for (const int threads : {0, 1}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    int calls = 0;
    std::int64_t covered = 0;
    pool.parallel_for(0, 100, [&](std::int64_t b, std::int64_t e) {
      // Serial fallback: one chunk, on the calling thread.
      EXPECT_EQ(std::this_thread::get_id(), caller);
      ++calls;
      covered += e - b;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(covered, 100);
  }
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::int64_t n : {0, 1, 2, 3, 4, 5, 7, 64, 1000, 4099}) {
    std::vector<int> hits(static_cast<std::size_t>(n), 0);
    pool.parallel_for(0, n, [&](std::int64_t b, std::int64_t e) {
      // Chunks are disjoint, so unsynchronized writes to distinct indices
      // are race-free by construction.
      for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::vector<int> hits(50, 0);
  pool.parallel_for(10, 40, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], (i >= 10 && i < 40) ? 1 : 0);
  }
}

TEST(ThreadPool, ChunkCountNeverExceedsPoolSizeOrRange) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  pool.parallel_for(0, 1000, [&](std::int64_t, std::int64_t) {
    chunks.fetch_add(1);
  });
  EXPECT_LE(chunks.load(), 4);
  chunks = 0;
  pool.parallel_for(0, 2, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(e - b, 1);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 2);
}

TEST(ThreadPool, ExceptionInTaskPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::int64_t b, std::int64_t) {
                          if (b == 0) throw std::runtime_error("chunk failed");
                        }),
      std::runtime_error);
  // A throwing chunk on a worker (not the caller) must also surface.
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::int64_t b, std::int64_t) {
                          if (b != 0) throw std::runtime_error("worker failed");
                        }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<std::int64_t> covered{0};
  pool.parallel_for(0, 64, [&](std::int64_t b, std::int64_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      pool.parallel_for(0, 10, [&](std::int64_t ib, std::int64_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, GlobalPoolResizes) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().size(), 1);
  ThreadPool::set_global_threads(ThreadPool::default_threads());
}

// ---------------------------------------------------------------------------
// Bitwise parity: every parallel kernel vs its serial execution.
// ---------------------------------------------------------------------------

class ParallelKernelParity : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::set_global_threads(ThreadPool::default_threads());
  }

  static Tensor random_tensor(std::vector<int> shape, Rng& rng) {
    Tensor t(std::move(shape));
    fill_normal(t, 0.0f, 1.0f, rng);
    return t;
  }

  static std::vector<unsigned char> random_mask(int n, Rng& rng) {
    std::vector<unsigned char> mask(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      mask[static_cast<std::size_t>(i)] = rng.uniform() < 0.6 ? 1 : 0;
    }
    return mask;
  }

  static void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                                   const char* what) {
    ASSERT_EQ(a.shape(), b.shape()) << what;
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                             sizeof(float) * static_cast<std::size_t>(a.numel())))
        << what << ": parallel output differs from serial";
  }

  /// Runs `kernel` (writing into its Tensor argument) once per thread count
  /// and requires byte-identical outputs. Thread count 1 is the serial
  /// reference; 2..5 cover uneven chunk boundaries.
  template <typename Fn>
  void check_parity(const char* what, const Tensor& out_template, Fn kernel) {
    Tensor ref = out_template;
    ThreadPool::set_global_threads(1);
    kernel(ref);
    for (const int threads : {2, 3, 4, 5}) {
      Tensor out = out_template;
      ThreadPool::set_global_threads(threads);
      kernel(out);
      expect_bitwise_equal(ref, out,
                           (std::string(what) + " @" + std::to_string(threads) +
                            " threads")
                               .c_str());
    }
  }
};

TEST_F(ParallelKernelParity, GemmFamilyMatchesSerialBitwise) {
  Rng rng(42);
  // Shapes straddle the parallel grain cut-off; the larger ones exceed it
  // by a wide margin so the pool genuinely splits rows across threads.
  const int shapes[][3] = {
      {1, 8, 8}, {3, 17, 5}, {37, 64, 40}, {65, 48, 33}, {128, 96, 64}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({k, n}, rng);
    const Tensor at = random_tensor({k, m}, rng);
    const Tensor bt = random_tensor({n, k}, rng);
    const Tensor c0 = random_tensor({m, n}, rng);  // accumulate seed
    const auto row_mask = random_mask(m, rng);
    const auto col_mask = random_mask(n, rng);
    const auto k_mask = random_mask(k, rng);

    check_parity("gemm", c0,
                 [&](Tensor& c) { gemm(a, b, c, /*accumulate=*/true); });
    check_parity("gemm_tn", c0,
                 [&](Tensor& c) { gemm_tn(at, b, c, /*accumulate=*/true); });
    check_parity("gemm_nt", c0,
                 [&](Tensor& c) { gemm_nt(a, bt, c, /*accumulate=*/true); });
    check_parity("gemm_rows", c0,
                 [&](Tensor& c) { gemm_rows(a, b, c, row_mask.data()); });
    check_parity("gemm_nt_cols", c0,
                 [&](Tensor& c) { gemm_nt_cols(a, bt, c, col_mask.data()); });
    check_parity("gemm_nt_rows_acc", c0, [&](Tensor& c) {
      gemm_nt_rows_acc(a, bt, c, row_mask.data());
    });
    check_parity("gemm_tn_rows", c0,
                 [&](Tensor& c) { gemm_tn_rows(at, b, c, k_mask.data()); });
  }
}

TEST_F(ParallelKernelParity, MaskedRowsAreLeftUntouchedUnderParallelism) {
  Rng rng(7);
  const int m = 64, k = 48, n = 40;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  const auto mask = random_mask(m, rng);
  const Tensor sentinel = random_tensor({m, n}, rng);
  ThreadPool::set_global_threads(4);
  Tensor c = sentinel;
  gemm_rows(a, b, c, mask.data());
  for (int i = 0; i < m; ++i) {
    if (mask[static_cast<std::size_t>(i)]) continue;
    ASSERT_EQ(0, std::memcmp(c.data() + static_cast<std::size_t>(i) * n,
                             sentinel.data() + static_cast<std::size_t>(i) * n,
                             sizeof(float) * static_cast<std::size_t>(n)))
        << "inactive row " << i << " was modified";
  }
}

TEST_F(ParallelKernelParity, Im2colMatchesSerialBitwise) {
  Rng rng(11);
  const Conv2dGeometry geoms[] = {
      {3, 8, 8, 4, 3, 1, 1},     // tiny (below grain: serial either way)
      {16, 32, 32, 32, 3, 1, 1},  // conv-layer scale
      {8, 19, 23, 8, 5, 2, 2},    // odd sizes, stride 2
  };
  for (const Conv2dGeometry& g : geoms) {
    Tensor x = random_tensor({g.in_c, g.in_h, g.in_w}, rng);
    const Tensor cols_template({g.patch(), g.out_h() * g.out_w()});
    check_parity("im2col", cols_template,
                 [&](Tensor& cols) { im2col(x.data(), g, cols.data()); });
  }
}

TEST_F(ParallelKernelParity, Col2imMatchesSerialBitwise) {
  Rng rng(17);
  // col2im is a scatter-add: overlapping patches accumulate, but only within
  // one input channel, so the channel partition must reproduce the serial
  // accumulation order exactly (ISSUE 2 satellite). Geometries cover heavy
  // overlap (stride < kernel), padding, and a cost large enough that the
  // pool genuinely splits the channels across threads.
  const Conv2dGeometry geoms[] = {
      //             in_c in_h in_w out_c k  s  p
      {3, 8, 8, 4, 3, 1, 1},      // below the grain: serial fallback path
      {16, 32, 32, 8, 5, 1, 2},   // ~410k ops: splits across threads
      {24, 16, 16, 8, 3, 1, 0},   // channel count > thread count
      {9, 19, 23, 8, 5, 2, 2},    // odd sizes, stride 2
  };
  for (const Conv2dGeometry& g : geoms) {
    const Tensor cols = random_tensor({g.patch(), g.out_h() * g.out_w()}, rng);
    const Tensor x_template({g.in_c, g.in_h, g.in_w});
    check_parity("col2im", x_template,
                 [&](Tensor& x) { col2im(cols.data(), g, x.data()); });
  }
}

TEST_F(ParallelKernelParity, SoftmaxAndReluMatchSerialBitwise) {
  Rng rng(13);
  const Tensor logits = random_tensor({256, 100}, rng);
  check_parity("softmax_rows", Tensor({256, 100}),
               [&](Tensor& probs) { softmax_rows(logits, probs); });

  const Tensor x = random_tensor({2, 16, 32, 32}, rng);
  check_parity("relu_forward", Tensor(x.shape()), [&](Tensor& y) {
    std::vector<unsigned char> mask;
    relu_forward(x, y, mask);
  });
  std::vector<unsigned char> mask;
  Tensor y0(x.shape());
  relu_forward(x, y0, mask);
  check_parity("relu_backward", Tensor(x.shape()),
               [&](Tensor& gx) { relu_backward(x, mask, gx); });
}

}  // namespace
}  // namespace stepping
