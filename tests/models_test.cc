#include <gtest/gtest.h>

#include <stdexcept>

#include "core/macs.h"
#include "models/models.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

ModelConfig small_cfg(double expansion = 1.0) {
  ModelConfig cfg;
  cfg.classes = 10;
  cfg.expansion = expansion;
  cfg.width_mult = 0.2;
  return cfg;
}

TEST(Models, LeNet3c1lForwardShape) {
  Network net = build_lenet3c1l(small_cfg());
  Tensor x({2, 3, 32, 32});
  Rng rng(1);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  EXPECT_EQ(net.forward(x, ctx).shape(), (std::vector<int>{2, 10}));
  // 3 conv + 1 FC = 4 masked layers; the FC is the head.
  EXPECT_EQ(net.masked_layers().size(), 4u);
  EXPECT_EQ(net.body_layers().size(), 3u);
}

TEST(Models, LeNet5ForwardShape) {
  Network net = build_lenet5(small_cfg());
  Tensor x({2, 3, 32, 32});
  Rng rng(2);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  EXPECT_EQ(net.forward(x, ctx).shape(), (std::vector<int>{2, 10}));
  // 2 conv + 3 FC = 5 masked layers.
  EXPECT_EQ(net.masked_layers().size(), 5u);
}

TEST(Models, Vgg16ForwardShapeAndDepth) {
  ModelConfig cfg = small_cfg();
  cfg.width_mult = 0.05;  // keep the test fast
  Network net = build_vgg16(cfg);
  Tensor x({1, 3, 32, 32});
  Rng rng(3);
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  EXPECT_EQ(net.forward(x, ctx).shape(), (std::vector<int>{1, 10}));
  // 13 conv + 1 FC = 14 masked layers.
  EXPECT_EQ(net.masked_layers().size(), 14u);
}

TEST(Models, ExpansionScalesMacsQuadratically) {
  Network n1 = build_lenet3c1l(small_cfg(1.0));
  Network n2 = build_lenet3c1l(small_cfg(2.0));
  const double ratio = static_cast<double>(full_macs(n2)) /
                       static_cast<double>(full_macs(n1));
  // First layer scales linearly (fixed 3 input channels), interior layers
  // quadratically; the overall ratio sits in between.
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(Models, DispatchByName) {
  EXPECT_NO_THROW(build_model("lenet5", small_cfg()));
  EXPECT_THROW(build_model("resnet50", small_cfg()), std::invalid_argument);
}

TEST(Models, Cifar100HeadWidth) {
  ModelConfig cfg = small_cfg();
  cfg.classes = 100;
  Network net = build_lenet5(cfg);
  EXPECT_EQ(net.num_classes(), 100);
}

TEST(Models, AllUnitsStartInSubnet1) {
  Network net = build_lenet3c1l(small_cfg(1.8));
  for (MaskedLayer* m : net.body_layers()) {
    for (const int s : m->unit_subnet()) EXPECT_EQ(s, 1);
  }
}

TEST(Models, DeterministicInitializationGivenSeed) {
  Network a = build_lenet5(small_cfg());
  Network b = build_lenet5(small_cfg());
  const auto wa = a.masked_layers()[0]->weight().value;
  const auto wb = b.masked_layers()[0]->weight().value;
  for (std::int64_t i = 0; i < wa.numel(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

}  // namespace
}  // namespace stepping
