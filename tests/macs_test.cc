#include <gtest/gtest.h>

#include "core/macs.h"
#include "models/models.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/simple_layers.h"

namespace stepping {
namespace {

Network two_conv_net() {
  Network net;
  net.emplace<Conv2d>("c1", 4, 3);
  net.emplace<Conv2d>("c2", 6, 3);
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", 2);
  Rng rng(1);
  net.wire(2, 8, 8, rng);
  return net;
}

TEST(Macs, FullMacsMatchHandComputation) {
  Network net = two_conv_net();
  // c1: 4 units x (2*9) cols x 64 positions = 4608
  // c2: 6 x (4*9) x 64 = 13824
  // fc: 2 x (6*64) x 1 = 768
  EXPECT_EQ(full_macs(net), 4608 + 13824 + 768);
}

TEST(Macs, SubnetOneOfFreshNetworkEqualsFullMacs) {
  Network net = two_conv_net();
  EXPECT_EQ(subnet_macs(net, 1), full_macs(net));
}

TEST(Macs, MovingUnitRemovesItsMacsFromSmallSubnet) {
  Network net = two_conv_net();
  auto* c1 = net.body_layers()[0];
  const std::int64_t before = subnet_macs(net, 1);
  c1->set_unit_subnet(0, 2);
  const std::int64_t after = subnet_macs(net, 1);
  // Unit 0 of c1: 18 incoming weights x 64, plus its outgoing synapses into
  // c2's subnet-1 units: 6 units x 9 weights x 64.
  EXPECT_EQ(before - after, 18 * 64 + 6 * 9 * 64);
  // Subnet 2 regains the unit's incoming weights but NOT its severed
  // outgoing synapses into subnet-1 units (paper: moving removes them so the
  // smaller subnet's results stay valid — in every subnet).
  EXPECT_EQ(subnet_macs(net, 2), before - 6 * 9 * 64);
}

TEST(Macs, StructuralRuleExcludesDownwardSynapses) {
  Network net = two_conv_net();
  auto* c1 = net.body_layers()[0];
  auto* c2 = net.body_layers()[1];
  c1->set_unit_subnet(0, 2);  // producer in subnet 2
  // In subnet 2, c2's subnet-1 units must NOT count weights from that
  // producer, even though both are active in subnet 2.
  const std::int64_t macs2 = subnet_macs(net, 2);
  std::int64_t expected_c2 = 0;
  for (int u = 0; u < c2->num_units(); ++u) {
    // all c2 units in subnet 1; producers: units 1..3 of c1 (subnet 1) + unit
    // 0 blocked by the structural rule.
    expected_c2 += 3 * 9 * 64;
  }
  const std::int64_t c1_macs = 4 * 18 * 64;
  const std::int64_t head = 2 * 6 * 64;
  EXPECT_EQ(macs2, c1_macs + expected_c2 + head);
}

TEST(Macs, HeadCountsOnlyActiveProducers) {
  Network net = two_conv_net();
  auto* c2 = net.body_layers()[1];
  c2->set_unit_subnet(5, 3);
  // In subnet 1 the head reads 5 active producers x 64 features each.
  const std::int64_t head1 = net.masked_layers().back()->subnet_macs(1);
  EXPECT_EQ(head1, 2 * 5 * 64);
  const std::int64_t head3 = net.masked_layers().back()->subnet_macs(3);
  EXPECT_EQ(head3, 2 * 6 * 64);
}

TEST(Macs, PruningReducesCount) {
  Network net = two_conv_net();
  const std::int64_t before = subnet_macs(net, 1);
  net.masked_layers()[0]->apply_magnitude_prune(1e9f);  // prune all of c1
  const std::int64_t after = subnet_macs(net, 1);
  EXPECT_EQ(before - after, 4608);
}

TEST(Macs, AllSubnetMacsMonotoneNondecreasing) {
  Network net = build_lenet3c1l(
      ModelConfig{.classes = 10, .expansion = 1.5, .width_mult = 0.2});
  // Scatter units across subnets.
  auto bodies = net.body_layers();
  Rng rng(5);
  for (MaskedLayer* m : bodies) {
    for (int u = 0; u < m->num_units(); ++u) {
      m->set_unit_subnet(u, rng.uniform_int(1, 4));
    }
  }
  const auto macs = all_subnet_macs(net, 4);
  for (std::size_t i = 1; i < macs.size(); ++i) {
    EXPECT_GE(macs[i], macs[i - 1]);
  }
}

TEST(Macs, MoveDeltaMatchesActualSubnetDifference) {
  Network net = two_conv_net();
  auto* c1 = net.body_layers()[0];
  auto* c2 = net.body_layers()[1];
  const std::int64_t predicted = c1->move_delta_macs(1, c2);
  const std::int64_t before = subnet_macs(net, 1);
  c1->set_unit_subnet(1, 2);
  const std::int64_t after = subnet_macs(net, 1);
  EXPECT_EQ(predicted, before - after);
}

TEST(Macs, DiscardPoolUnitsCountInNoSubnet) {
  Network net = two_conv_net();
  auto* c1 = net.body_layers()[0];
  const std::int64_t full = subnet_macs(net, 2);
  c1->set_unit_subnet(3, 3);  // with 2 executable subnets, 3 = discard pool
  EXPECT_LT(subnet_macs(net, 2), full);
}

}  // namespace
}  // namespace stepping
