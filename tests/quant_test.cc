// Int8 quantization subsystem (ISSUE 7).
//
// Enforcement arms:
//  * QuantRounding / QuantWeights / QuantActivations: the documented
//    numeric semantics of the quantization core — saturation at +/-127
//    (never -128), round-half-to-even ties, zero-range channels degrading
//    to bias-only outputs, per-channel == per-tensor on single-channel
//    layers, and exact zero-point mapping of 0.0f inputs.
//  * QuantProviderParity: every int8 GEMM provider this binary + host can
//    run produces BIT-IDENTICAL i32 accumulators (the i8gemm.h exactness
//    contract — the documented cross-provider error bound is zero).
//  * QuantPackCache: int8 panel blobs share the fp32 pack cache's
//    invalidation discipline — SGD steps, deserialization and prune-mask
//    edits must all retire cached panels (pack kind 1).
//  * QuantLayerPath: Dense/Conv2d int8 forwards track their fp32 forwards
//    within quantization-noise tolerances, mask inactive units to exact
//    zeros, and leave every fp32 path bitwise untouched (STEPPING_PRECISION
//    unset is a pure no-op, including during a calibration pass).
//  * QuantAccuracyGate: the ISSUE 7 acceptance bound — the int8 ladder
//    loses at most 1.0 top-1 percentage point vs fp32 at every level.
//
// CI's sanitize/TSan/isa-matrix jobs re-run this suite (ctest -R Quant).
#include "quant/quantize.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/any_width.h"
#include "core/macs.h"
#include "core/serialize.h"
#include "core/train_loops.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sgd.h"
#include "nn/trainer.h"
#include "obs/metrics.h"
#include "quant/calibration.h"
#include "quant/policy.h"
#include "quant/prepared.h"
#include "tensor/gemm_isa.h"
#include "tensor/gemm_kernel.h"
#include "tensor/i8gemm.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace stepping {
namespace {

obs::Counter& quant_packs() {
  return obs::Registry::global().counter("stepping_quant_packs_total");
}

::testing::AssertionResult bitwise_equal(const Tensor& a, const Tensor& b,
                                         const std::string& what) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure() << what << ": shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(float) * static_cast<std::size_t>(a.numel())) != 0) {
    return ::testing::AssertionFailure() << what << ": bitwise MISMATCH";
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Core numeric semantics.
// ---------------------------------------------------------------------------

TEST(QuantRounding, SaturatesAtPlusMinus127) {
  EXPECT_EQ(quant::quantize_value(1e6f, 1.0f, 0, -127, 127), 127);
  EXPECT_EQ(quant::quantize_value(-1e6f, 1.0f, 0, -127, 127), -127);
  EXPECT_EQ(quant::quantize_value(127.4f, 1.0f, 0, -127, 127), 127);
  EXPECT_EQ(quant::quantize_value(-127.6f, 1.0f, 0, -127, 127), -127);

  // Weight quantization never emits -128: the range endpoints map to the
  // symmetric codes +/-127 exactly.
  const float wt[] = {3.0f, -3.0f, 1.5f, 0.0f};
  quant::WeightQuant wq;
  quant::quantize_weights_per_channel(wt, /*n=*/1, /*k=*/4, &wq);
  EXPECT_EQ(wq.q[0], 127);
  EXPECT_EQ(wq.q[1], -127);
  EXPECT_EQ(wq.q[3], 0);
  for (const std::int8_t c : wq.q) EXPECT_GE(c, -127);

  // Activations beyond the calibrated range saturate at the top code.
  const quant::ActQuant aq = quant::activation_params(1.0f, /*nonneg=*/true);
  const float x[] = {50.0f, 1.0f};
  std::uint8_t q[4] = {9, 9, 9, 9};
  quant::quantize_activations(x, /*m=*/1, /*k=*/2, /*k4=*/4, aq, q);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], 127);
  EXPECT_EQ(q[2], 0);  // zero padding past k
  EXPECT_EQ(q[3], 0);
}

TEST(QuantRounding, HalfToEvenTies) {
  EXPECT_EQ(quant::quantize_value(0.5f, 1.0f, 0, -127, 127), 0);
  EXPECT_EQ(quant::quantize_value(1.5f, 1.0f, 0, -127, 127), 2);
  EXPECT_EQ(quant::quantize_value(2.5f, 1.0f, 0, -127, 127), 2);
  EXPECT_EQ(quant::quantize_value(3.5f, 1.0f, 0, -127, 127), 4);
  EXPECT_EQ(quant::quantize_value(-0.5f, 1.0f, 0, -127, 127), 0);
  EXPECT_EQ(quant::quantize_value(-2.5f, 1.0f, 0, -127, 127), -2);
  EXPECT_EQ(quant::quantize_value(-3.5f, 1.0f, 0, -127, 127), -4);
}

TEST(QuantRounding, NanMapsToZeroPoint) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(quant::quantize_value(nan, 1.0f, 64, 0, 127), 64);
  EXPECT_EQ(quant::quantize_value(nan, 1.0f, 0, -127, 127), 0);
}

TEST(QuantWeights, ZeroRangeChannelDegeneratesToBias) {
  // Channel 0 is all-zero: scale 1, all-zero codes, zero compensation —
  // its int8 output must be EXACTLY the bias for every row.
  const int n = 2, k = 8;
  std::vector<float> wt(static_cast<std::size_t>(n) * k, 0.0f);
  Rng rng(7);
  for (int j = 0; j < k; ++j) {
    wt[static_cast<std::size_t>(k + j)] = static_cast<float>(rng.normal());
  }
  quant::WeightQuant wq;
  quant::quantize_weights_per_channel(wt.data(), n, k, &wq);
  EXPECT_EQ(wq.scale[0], 1.0f);
  EXPECT_EQ(wq.wsum[0], 0);
  for (int j = 0; j < k; ++j) EXPECT_EQ(wq.q[static_cast<std::size_t>(j)], 0);

  const quant::PreparedInt8 pw =
      quant::prepare_int8_weights(/*pack_id=*/0, wt.data(), n, k);
  const int m = 3;
  Tensor x({m, k});
  fill_normal(x, 0.0f, 1.0f, rng);
  const quant::ActQuant aq = quant::activation_params(4.0f, /*nonneg=*/false);
  const std::vector<unsigned char> active(static_cast<std::size_t>(n), 1);
  const float bias[] = {0.75f, -1.25f};
  Tensor y({m, n});
  quant::int8_dense_forward(x.data(), m, pw, aq, active.data(), bias,
                            /*relu=*/false, y.data());
  for (int i = 0; i < m; ++i) {
    EXPECT_EQ(y.data()[i * n + 0], 0.75f) << "row " << i;
  }
}

TEST(QuantWeights, PerChannelMatchesPerTensorOnSingleChannel) {
  const int k = 13;
  std::vector<float> wt(static_cast<std::size_t>(k));
  Rng rng(11);
  for (auto& v : wt) v = static_cast<float>(rng.normal());
  quant::WeightQuant pc, pt;
  quant::quantize_weights_per_channel(wt.data(), 1, k, &pc);
  quant::quantize_weights_per_tensor(wt.data(), 1, k, &pt);
  EXPECT_EQ(pc.q, pt.q);
  EXPECT_EQ(pc.scale, pt.scale);
  EXPECT_EQ(pc.wsum, pt.wsum);
}

TEST(QuantActivations, ZeroMapsToZeroPointExactly) {
  const float x[] = {0.0f, -2.0f, 2.0f, 0.0f};
  std::uint8_t q[4];
  const quant::ActQuant general =
      quant::activation_params(2.0f, /*nonneg=*/false);
  EXPECT_EQ(general.zero_point, 64);
  quant::quantize_activations(x, 1, 4, 4, general, q);
  EXPECT_EQ(q[0], 64);
  EXPECT_EQ(q[1], 1);    // -2 -> clamp(round(-63), -64, 63) + 64
  EXPECT_EQ(q[2], 127);  //  2 -> 63 + 64
  EXPECT_EQ(q[3], 64);

  const quant::ActQuant nonneg =
      quant::activation_params(2.0f, /*nonneg=*/true);
  EXPECT_EQ(nonneg.zero_point, 0);
  quant::quantize_activations(x, 1, 4, 4, nonneg, q);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[2], 127);
}

// The vectorized transposed gather (4x4 block transpose, ISSUE 9) must be
// bit-exact with the scalar reference on every shape — including the m % 4
// and k % 4 tails, both zero-point layouts, padding and hostile values.
TEST(QuantActivations, TransposedGatherMatchesReference) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next_float = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Uniform-ish in [-6, 6): well past the calibrated range on both sides,
    // so saturation paths are exercised too.
    return static_cast<float>((state >> 33) % 12000) / 1000.0f - 6.0f;
  };
  for (const int m : {1, 2, 3, 4, 5, 7, 8, 16, 33}) {
    for (const int k : {1, 3, 4, 5, 8, 27, 150}) {
      const int k4 = (k + 3) & ~3;
      std::vector<float> x(static_cast<std::size_t>(m) * k);
      for (float& v : x) v = next_float();
      x[0] = 0.0f;  // exact zero-point mapping rides along
      if (x.size() > 5) {
        x[3] = std::numeric_limits<float>::infinity();
        x[5] = -std::numeric_limits<float>::quiet_NaN();
      }
      for (const bool nonneg : {false, true}) {
        const quant::ActQuant aq = quant::activation_params(4.0f, nonneg);
        std::vector<std::uint8_t> got(static_cast<std::size_t>(m) * k4, 0xee);
        std::vector<std::uint8_t> want(static_cast<std::size_t>(m) * k4, 0xbb);
        quant::quantize_activations_transposed(x.data(), m, k, k4, aq,
                                               got.data());
        quant::quantize_activations_transposed_ref(x.data(), m, k, k4, aq,
                                                   want.data());
        ASSERT_EQ(got, want) << "m=" << m << " k=" << k
                             << " nonneg=" << nonneg;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Provider parity: bit-identical accumulators at every tier.
// ---------------------------------------------------------------------------

class QuantProviderParity : public ::testing::Test {
 protected:
  void TearDown() override {
    set_isa_tier(env_isa_tier());
    ThreadPool::set_global_threads(ThreadPool::default_threads());
    flush_pack_cache();
  }
};

TEST_F(QuantProviderParity, AccumulatorsBitIdenticalAcrossTiers) {
  const struct { int m, k, n; } shapes[] = {
      {65, 129, 33},   // ragged everything
      {10, 512, 128},  // deep-k classifier tail
      {7, 3, 9},       // k below one contraction granule
      {1, 40, 16},     // single serving row
  };
  for (const auto& s : shapes) {
    Rng rng(23);
    std::vector<float> wt(static_cast<std::size_t>(s.n) * s.k);
    for (auto& v : wt) v = static_cast<float>(rng.normal());
    quant::WeightQuant wq;
    quant::quantize_weights_per_channel(wt.data(), s.n, s.k, &wq);
    const int k4 = i8gemm_k4(s.k);
    Tensor x({s.m, s.k});
    fill_normal(x, 0.5f, 1.0f, rng);
    float absmax = 0.0f;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      absmax = std::max(absmax, std::abs(x.data()[i]));
    }
    const quant::ActQuant aq = quant::activation_params(absmax, false);
    std::vector<std::uint8_t> a8(static_cast<std::size_t>(s.m) * k4);
    quant::quantize_activations(x.data(), s.m, s.k, k4, aq, a8.data());

    const I8GemmKernel& ref = i8gemm_ref_kernel();
    std::vector<std::int8_t> pref(i8gemm_packed_bytes(s.k, s.n, ref.nr));
    i8gemm_pack(wq.q.data(), s.k, s.n, ref.nr, pref.data());
    std::vector<std::int32_t> want(static_cast<std::size_t>(s.m) * s.n);
    i8gemm_run(ref, a8.data(), s.m, s.k, pref.data(), s.n, nullptr,
               want.data());

    for (int t = 0; t <= static_cast<int>(detected_isa_tier()); ++t) {
      const IsaTier tier = static_cast<IsaTier>(t);
      if (!isa_tier_compiled(tier)) continue;
      set_isa_tier(tier);
      const I8GemmKernel& kern = i8gemm_kernel();
      std::vector<std::int8_t> pk(i8gemm_packed_bytes(s.k, s.n, kern.nr));
      i8gemm_pack(wq.q.data(), s.k, s.n, kern.nr, pk.data());
      for (const int threads : {1, 3}) {
        ThreadPool::set_global_threads(threads);
        std::vector<std::int32_t> got(static_cast<std::size_t>(s.m) * s.n);
        i8gemm_run(kern, a8.data(), s.m, s.k, pk.data(), s.n, nullptr,
                   got.data());
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                                 sizeof(std::int32_t) * want.size()))
            << "provider " << kern.name << " vs " << ref.name << " m=" << s.m
            << " k=" << s.k << " n=" << s.n << " threads=" << threads;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pack-cache discipline for int8 panel blobs (pack kind 1).
// ---------------------------------------------------------------------------

/// A wired Dense layer driven directly (flat input of `k` features), plus
/// a calibration table covering its level-1 input range.
struct DenseRig {
  DenseRig(int units, int k, unsigned seed) : layer("fc", units) {
    Rng rng(seed);
    IOSpec in;
    in.units = k;
    in.features_per_unit = 1;
    in.flat = true;
    in.assignment = std::make_shared<Assignment>(static_cast<std::size_t>(k), 1);
    layer.set_out_spec(layer.wire(in, rng));
  }

  /// fp32 calibration pass for `x` at the context's level, then an int8
  /// inference context bound to the recorded table.
  SubnetContext int8_ctx(const Tensor& x) {
    SubnetContext rec;
    rec.training = false;
    rec.calib_record = &table;
    layer.forward(x, rec);
    SubnetContext ctx;
    ctx.training = false;
    ctx.precision = quant::Precision::kInt8;
    ctx.calibration = &table;
    return ctx;
  }

  Dense layer;
  quant::CalibrationTable table;
};

class QuantPackCache : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_limit_ = pack_cache_limit_mb();
    flush_pack_cache();
  }
  void TearDown() override {
    set_pack_cache_limit_mb(saved_limit_);
    flush_pack_cache();
    set_isa_tier(env_isa_tier());
    ThreadPool::set_global_threads(ThreadPool::default_threads());
  }
  long saved_limit_ = 0;
};

TEST_F(QuantPackCache, WarmHitsThenSgdStepRetiresPanels) {
  DenseRig rig(/*units=*/96, /*k=*/64, 41);
  Rng rng(2);
  Tensor x({4, 64});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx = rig.int8_ctx(x);

  const std::uint64_t p0 = quant_packs().value();
  const Tensor y0 = rig.layer.forward(x, ctx);  // cold: quantize + pack
  EXPECT_GT(quant_packs().value(), p0);
  const std::uint64_t p1 = quant_packs().value();
  const Tensor y1 = rig.layer.forward(x, ctx);  // warm: blob served from cache
  EXPECT_EQ(quant_packs().value(), p1);
  EXPECT_TRUE(bitwise_equal(y0, y1, "warm int8 forward"));

  // An optimizer step rewrites weight bytes behind the cache; the pack_id
  // bump must retire the int8 blob exactly like the fp32 panels.
  for (Param* p : rig.layer.params()) {
    p->grad = Tensor(p->value.shape());
    fill_normal(p->grad, 0.1f, 0.5f, rng);
  }
  Sgd sgd(SgdConfig{.lr = 0.05});
  sgd.step(rig.layer.params());

  const Tensor y2 = rig.layer.forward(x, ctx);
  EXPECT_GT(quant_packs().value(), p1);
  flush_pack_cache();
  const Tensor want = rig.layer.forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(want, y2, "int8 forward after SGD step"));
}

TEST_F(QuantPackCache, MaskChangeRetiresPanels) {
  DenseRig rig(96, 64, 42);
  Rng rng(3);
  Tensor x({2, 64});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx = rig.int8_ctx(x);

  rig.layer.forward(x, ctx);  // populate
  const std::uint64_t p0 = quant_packs().value();

  // A prune-mask edit changes the effective weights; cached panels for the
  // old mask must not serve the new forward.
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(rig.layer.num_units() * rig.layer.num_cols()),
      1);
  for (std::size_t i = 0; i < mask.size(); i += 3) mask[i] = 0;
  rig.layer.set_prune_mask(mask);

  const Tensor y = rig.layer.forward(x, ctx);
  EXPECT_GT(quant_packs().value(), p0);
  flush_pack_cache();
  const Tensor want = rig.layer.forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(want, y, "int8 forward after mask change"));
}

TEST_F(QuantPackCache, DeserializationRetiresPanels) {
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15,
                 .seed = 7};
  Network donor = build_model("lenet3c1l", mc);
  mc.seed = 99;
  Network net = build_model("lenet3c1l", mc);

  Rng rng(5);
  Tensor x({2, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  const std::shared_ptr<quant::CalibrationTable> table =
      calibrate_int8(net, x, /*batch=*/2, /*max_level=*/1);
  SubnetContext ctx;
  ctx.training = false;
  ctx.precision = quant::Precision::kInt8;
  ctx.calibration = table.get();
  net.forward(x, ctx);  // cache int8 blobs of the pre-load weights

  // load_network writes raw tensor bytes behind the layers' backs.
  std::stringstream buf;
  ASSERT_TRUE(save_network(donor, buf));
  ASSERT_TRUE(load_network(net, buf));

  const Tensor y = net.forward(x, ctx);
  flush_pack_cache();
  const Tensor want = net.forward(x, ctx);
  EXPECT_TRUE(bitwise_equal(want, y, "int8 forward after deserialization"));
}

// ---------------------------------------------------------------------------
// Layer-level int8 paths + the fp32 no-op guarantee.
// ---------------------------------------------------------------------------

using QuantLayerPath = QuantPackCache;

TEST_F(QuantLayerPath, DenseInt8TracksFp32AndMasksExactZeros) {
  DenseRig rig(/*units=*/48, /*k=*/64, 51);
  // Units 32.. belong to subnet 2: inactive at level 1, must be exact 0.
  for (int u = 32; u < 48; ++u) rig.layer.set_unit_subnet(u, 2);
  Rng rng(6);
  Tensor x({8, 64});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx = rig.int8_ctx(x);

  SubnetContext fp;
  fp.training = false;
  const Tensor want = rig.layer.forward(x, fp);
  const Tensor got = rig.layer.forward(x, ctx);
  ASSERT_EQ(want.shape(), got.shape());
  double max_diff = 0.0, sum_diff = 0.0;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    const double d = std::abs(want.data()[i] - got.data()[i]);
    max_diff = std::max(max_diff, d);
    sum_diff += d;
  }
  EXPECT_LT(max_diff, 0.5);
  EXPECT_LT(sum_diff / static_cast<double>(want.numel()), 0.1);
  for (int i = 0; i < 8; ++i) {
    for (int j = 32; j < 48; ++j) {
      EXPECT_EQ(got.data()[i * 48 + j], 0.0f) << "masked unit " << j;
    }
  }
}

TEST_F(QuantLayerPath, ConvInt8TracksFp32) {
  Conv2d conv("c1", /*units=*/16, /*ksize=*/3);
  Rng rng(8);
  IOSpec in;
  in.units = 8;
  in.h = 8;
  in.w = 8;
  in.assignment = std::make_shared<Assignment>(8, 1);
  conv.set_out_spec(conv.wire(in, rng));
  Tensor x({2, 8, 8, 8});
  fill_normal(x, 0.0f, 1.0f, rng);

  quant::CalibrationTable table;
  SubnetContext rec;
  rec.training = false;
  rec.calib_record = &table;
  conv.forward(x, rec);

  SubnetContext fp;
  fp.training = false;
  const Tensor want = conv.forward(x, fp);
  SubnetContext ctx;
  ctx.training = false;
  ctx.precision = quant::Precision::kInt8;
  ctx.calibration = &table;
  const Tensor got = conv.forward(x, ctx);
  ASSERT_EQ(want.shape(), got.shape());
  double max_diff = 0.0, sum_diff = 0.0;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    const double d = std::abs(want.data()[i] - got.data()[i]);
    max_diff = std::max(max_diff, d);
    sum_diff += d;
  }
  EXPECT_LT(max_diff, 0.5);
  EXPECT_LT(sum_diff / static_cast<double>(want.numel()), 0.1);
}

TEST_F(QuantLayerPath, Fp32PathIsPureNoOp) {
  // STEPPING_PRECISION's default must leave fp32 bits untouched: a context
  // carrying a calibration table (precision fp32) and a recording pass both
  // produce outputs bitwise identical to the plain fp32 forward.
  ModelConfig mc{.classes = 10, .expansion = 1.5, .width_mult = 0.15,
                 .seed = 17};
  Network net = build_model("lenet3c1l", mc);
  Rng rng(9);
  Tensor x({3, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);

  SubnetContext plain;
  plain.training = false;
  const Tensor want = net.forward(x, plain);

  quant::CalibrationTable table;
  SubnetContext rec;
  rec.training = false;
  rec.calib_record = &table;
  EXPECT_TRUE(bitwise_equal(want, net.forward(x, rec),
                            "calibration-recording forward"));
  EXPECT_FALSE(table.empty());

  SubnetContext carry;
  carry.training = false;
  carry.calibration = &table;  // present but precision stays kFp32
  EXPECT_TRUE(bitwise_equal(want, net.forward(x, carry),
                            "fp32 forward with table attached"));
}

// ---------------------------------------------------------------------------
// ISSUE 7 acceptance: <= 1.0 top-1 pp loss at every ladder level.
// ---------------------------------------------------------------------------

TEST(QuantAccuracyGate, Int8LadderWithinOnePointOfFp32PerLevel) {
  DataSplit data = make_synthetic(
      synth_cifar10(/*train_per_class=*/20, /*test_per_class=*/20));
  ModelConfig mc{.classes = 10, .expansion = 1.2, .width_mult = 0.2,
                 .seed = 33};
  Network net = build_lenet3c1l(mc);
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets;
  for (const double f : {0.15, 0.4, 0.85}) {
    budgets.push_back(static_cast<std::int64_t>(f * 0.5 * full));
  }
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
  const int levels = 3;

  Sgd sgd(SgdConfig{.lr = 0.05});
  Rng rng(9);
  for (int pass = 0; pass < 2; ++pass) {
    for (int level = 1; level <= levels; ++level) {
      train_plain(net, data.train, sgd, level, /*epochs=*/1, /*batch=*/20,
                  rng);
    }
  }

  Tensor cx;
  std::vector<int> cy;
  data.train.batch(0, data.train.size(), cx, cy);
  const std::shared_ptr<quant::CalibrationTable> table =
      calibrate_int8(net, cx, /*batch=*/64, levels);

  for (int level = 1; level <= levels; ++level) {
    const double fp = dataset_accuracy(
        data.test, 64, [&](const Tensor& x, const std::vector<int>& y) {
          return eval_batch(net, x, y, level);
        });
    SubnetContext ctx;
    ctx.subnet_id = level;
    ctx.num_subnets = levels;
    ctx.training = false;
    ctx.precision = quant::Precision::kInt8;
    ctx.calibration = table.get();
    const double i8 = dataset_accuracy(
        data.test, 64, [&](const Tensor& x, const std::vector<int>& y) {
          return eval_batch(net, x, y, ctx);
        });
    EXPECT_GE(i8, fp - 0.0100001)
        << "level " << level << ": int8 " << i8 << " vs fp32 " << fp;
  }
}

}  // namespace
}  // namespace stepping
