#include <gtest/gtest.h>

#include "core/train_loops.h"
#include "data/synthetic.h"
#include "models/models.h"

namespace stepping {
namespace {

struct Fixture {
  DataSplit data;
  Network net;
};

Fixture make_fixture() {
  Fixture f;
  f.data = make_synthetic(synth_cifar10(/*train_per_class=*/12, /*test_per_class=*/4));
  ModelConfig mc{.classes = 10, .expansion = 1.0, .width_mult = 0.15};
  f.net = build_lenet3c1l(mc);
  return f;
}

TEST(TrainLoops, EvaluateUntrainedNearChance) {
  Fixture f = make_fixture();
  const double acc = evaluate(f.net, f.data.test, 1);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 0.45);  // untrained: close to 10% chance, generous bound
}

TEST(TrainLoops, TrainPlainImprovesAccuracy) {
  Fixture f = make_fixture();
  const double before = evaluate(f.net, f.data.train, 1);
  Sgd sgd(SgdConfig{.lr = 0.05});
  Rng rng(3);
  const double loss =
      train_plain(f.net, f.data.train, sgd, 1, /*epochs=*/6, /*batch=*/30, rng);
  EXPECT_GT(loss, 0.0);
  const double after = evaluate(f.net, f.data.train, 1);
  EXPECT_GT(after, before + 0.2);  // memorizes 120 images quickly
}

TEST(TrainLoops, TeacherProbsValidDistributions) {
  Fixture f = make_fixture();
  const Tensor probs = compute_teacher_probs(f.net, f.data.train, 1, /*batch=*/7);
  ASSERT_EQ(probs.dim(0), f.data.train.size());
  for (int i = 0; i < probs.dim(0); ++i) {
    double s = 0.0;
    for (int j = 0; j < probs.dim(1); ++j) {
      EXPECT_GE(probs.at(i, j), 0.0f);
      s += probs.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-4);
  }
}

TEST(TrainLoops, TeacherProbsIndependentOfBatchSize) {
  // Row alignment must not depend on the batching used to compute them.
  Fixture f = make_fixture();
  const Tensor a = compute_teacher_probs(f.net, f.data.train, 1, 7);
  const Tensor b = compute_teacher_probs(f.net, f.data.train, 1, 32);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5f);
  }
}

TEST(TrainLoops, JointTrainTouchesAllSubnets) {
  Fixture f = make_fixture();
  // Partition units across 2 subnets.
  for (MaskedLayer* m : f.net.body_layers()) {
    for (int u = 0; u < m->num_units(); u += 2) m->set_unit_subnet(u, 2);
  }
  f.net.reset_importance(2);  // harvesting contract: accumulators sized first
  LoaderConfig lc;
  lc.batch_size = 20;
  DataLoader loader(f.data.train, lc, Rng(4));
  Sgd sgd(SgdConfig{.lr = 0.05});
  const Tensor w_before = f.net.body_layers()[0]->weight().value;
  const BatchStats s = joint_train_batches(f.net, loader, sgd, /*subnets=*/2,
                                           /*batches=*/4, /*suppression=*/false,
                                           /*harvest=*/true);
  EXPECT_EQ(s.total, 4 * 20);
  // Weights of both subnets' units changed.
  auto* layer = f.net.body_layers()[0];
  const int cols = layer->num_cols();
  bool s1_changed = false, s2_changed = false;
  for (int u = 0; u < layer->num_units(); ++u) {
    for (int c = 0; c < cols; ++c) {
      if (layer->weight().value[static_cast<std::int64_t>(u) * cols + c] !=
          w_before[static_cast<std::int64_t>(u) * cols + c]) {
        (layer->unit_subnet()[static_cast<std::size_t>(u)] == 1 ? s1_changed
                                                                : s2_changed) = true;
      }
    }
  }
  EXPECT_TRUE(s1_changed);
  EXPECT_TRUE(s2_changed);
  // Importance was harvested for both cost functions.
  const auto& imp = layer->importance();
  ASSERT_EQ(imp.size(), 2u);
  double sum1 = 0.0, sum2 = 0.0;
  for (const double v : imp[0]) sum1 += v;
  for (const double v : imp[1]) sum2 += v;
  EXPECT_GT(sum1, 0.0);
  EXPECT_GT(sum2, 0.0);
}

TEST(TrainLoops, JointTrainClearsLrScaleAfterwards) {
  Fixture f = make_fixture();
  f.net.prepare_lr_suppression(2, 0.9);
  LoaderConfig lc;
  lc.batch_size = 20;
  DataLoader loader(f.data.train, lc, Rng(5));
  Sgd sgd(SgdConfig{.lr = 0.05});
  joint_train_batches(f.net, loader, sgd, 2, 2, /*suppression=*/true,
                      /*harvest=*/false);
  for (Param* p : f.net.params()) EXPECT_EQ(p->elem_lr_scale, nullptr);
}

}  // namespace
}  // namespace stepping
