// Reproduces Fig. 7: effect of the width-expansion ratio on subnet accuracy.
//
// The paper expands every layer's unit count by a ratio before construction
// (1.8 / 2.0 / 1.8 chosen for Table I) and shows that the ratio materially
// changes subnet accuracy because it widens the space of reachable subnet
// structures. MAC budgets are always relative to the UNexpanded original.
//
// Shape to check: ratio 1.0 (no expansion) underperforms for the small
// subnets; moderate expansion helps; returns diminish (or reverse) for the
// largest ratios.
#include <cstdio>
#include <vector>

#include "common.h"
#include "util/table.h"

using namespace stepping;
using namespace stepping::bench;

int main() {
  const BenchScale scale = bench_scale();
  std::vector<double> ratios = {1.0, 1.4, 1.8};
  if (scale != BenchScale::kQuick) ratios.push_back(2.2);

  Table table({"expansion", "subnet", "MACs/Mt", "test acc"});
  for (const double ratio : ratios) {
    ExperimentSpec spec = spec_for("lenet3c1l", scale);
    spec.expansion = ratio;
    print_banner("fig7", spec);
    const PipelineResult r = run_steppingnet(spec);
    for (std::size_t i = 0; i < r.acc.size(); ++i) {
      table.add_row({Table::fmt(ratio, 1), std::to_string(i + 1),
                     Table::fmt_pct(r.mac_frac[i]), Table::fmt_pct(r.acc[i])});
    }
    std::printf("  expansion %.1f done (%.0fs)\n", ratio, r.seconds);
    std::fflush(stdout);
  }

  table.print("\n== Fig. 7 (subnet accuracy vs expansion ratio) ==");
  table.write_csv("bench_fig7.csv");
  std::printf(
      "\nPaper shape check: expansion > 1.0 lifts small-subnet accuracy; the "
      "best overall ratio is an interior point.\nCSV written to "
      "bench_fig7.csv\n");
  return 0;
}
