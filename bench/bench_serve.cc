// Load generator for the anytime-inference serving subsystem (ISSUE 2).
//
// Two modes:
//
//  * default: in-process closed- and open-loop load against serve::Server,
//    once with incremental reuse and once with the no-reuse baseline (every
//    refinement level re-runs the full subnet). Reports throughput,
//    p50/p95/p99 latency, deadline-miss rate, mean exit subnet and mean
//    MACs/request; the summary line shows the reuse saving at equal exit
//    levels (same inputs, same ladder, so accuracy is identical by
//    construction). A final tight-deadline open-loop run demonstrates
//    step-down under load.
//
//  * --smoke: drive a TCP server (self-hosted on an ephemeral port, or an
//    external `steppingnet serve` via --port) from several client threads
//    and check that every reply's logits are bitwise-identical to a direct
//    Network::forward of the reply's exit subnet on the same input. Prints a
//    single `smoke: parity=...` line for CI to grep; --shutdown sends the
//    kShutdown opcode afterwards so the server exits and dumps counters.
//
//  * --precision auto|int8 (ISSUE 7): open-loop comparison of the fp32-only
//    ladder against the requested precision policy at IDENTICAL offered
//    load and deadline — reports the miss-rate and mean-exit movement the
//    int8 rung buys. Prints a `precision summary:` line for CI to grep.
//
// The default mode also measures the flight recorder's cost (ISSUE 8):
// identical closed-loop load with the recorder on vs off, plus the idle
// per-event-site cost with recording disabled, and writes every run
// machine-readably to BENCH_serve.json in the working directory. --smoke
// additionally fires a few hopeless-deadline requests, fetches the
// kTimeline postmortem dump and writes it to BENCH_timeline.json.
//
// Honours STEPPING_SCALE (quick|full|paper) for request counts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/any_width.h"
#include "common.h"
#include "core/macs.h"
#include "obs/flight.h"
#include "core/serialize.h"
#include "models/models.h"
#include "quant/policy.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace stepping::bench {
namespace {

struct ServeBenchConfig {
  std::string model = "lenet3c1l";
  int classes = 10;
  double expansion = 1.8;
  double width = 0.25;
  int subnets = 4;
  std::uint64_t seed = 42;
  std::string in;  ///< optional serialized weights (must match the flags)
  int workers = 2;
  int batch = 4;
  int clients = 4;
  int requests = 0;  ///< per client; 0 = scale default
};

/// Build the model exactly like the CLI does (so --in files written by
/// `steppingnet train` load here too); without --in, fall back to prefix
/// subnet assignments on the random-init net (bench_threads' trick — the
/// serving numbers don't depend on trained weights).
Network make_model(const ServeBenchConfig& c) {
  ModelConfig mc;
  mc.classes = c.classes;
  mc.expansion = c.expansion;
  mc.width_mult = c.width;
  mc.seed = c.seed + 7;
  Network net = build_model(c.model, mc);
  if (!c.in.empty()) {
    if (!load_network(net, c.in)) {
      throw std::runtime_error("bench_serve: failed to read " + c.in);
    }
    return net;
  }
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets;
  for (int i = 1; i <= c.subnets; ++i) {
    budgets.push_back(full * i / (c.subnets + 1));
  }
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
  return net;
}

std::vector<Tensor> make_inputs(const Network& net, int n, std::uint64_t seed) {
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Tensor x({1, net.input_channels(), net.input_h(), net.input_w()});
    fill_normal(x, 0.0f, 1.0f, rng);
    inputs.push_back(std::move(x));
  }
  return inputs;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct LoadStats {
  double seconds = 0.0;
  std::vector<double> latency_ms;  ///< submit -> final result
  std::uint64_t misses = 0;
  std::uint64_t rejected = 0;  ///< futures failing (queue-full / admission)
  std::int64_t total_macs = 0;
  double exit_sum = 0.0;
  std::size_t completed = 0;

  void add(const serve::ServedResult& r) {
    latency_ms.push_back(r.final_ms);
    if (r.deadline_missed) ++misses;
    total_macs += r.macs;
    exit_sum += r.exit_subnet;
    ++completed;
  }
  double macs_per_req() const {
    return completed ? static_cast<double>(total_macs) /
                           static_cast<double>(completed)
                     : 0.0;
  }
  void print(const char* label) const {
    std::printf(
        "%-24s %5zu req  %7.1f req/s  p50=%6.2f p95=%6.2f p99=%6.2f ms  "
        "miss=%4.1f%%  mean_exit=%.2f  macs/req=%.0f\n",
        label, completed,
        seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0,
        percentile(latency_ms, 0.50), percentile(latency_ms, 0.95),
        percentile(latency_ms, 0.99),
        completed ? 100.0 * static_cast<double>(misses) /
                        static_cast<double>(completed)
                  : 0.0,
        completed ? exit_sum / static_cast<double>(completed) : 0.0,
        macs_per_req());
  }
};

/// One finished load run, labelled for the BENCH_serve.json report.
/// `occupancy` is serve_pass_rows_total / serve_passes_total for that run's
/// server (mean live rows per ladder pass); 0 when it wasn't sampled.
struct BenchRow {
  std::string label;
  LoadStats stats;
  double occupancy = 0.0;
};

void write_bench_json(const std::vector<BenchRow>& rows, double rec_on_rps,
                      double rec_off_rps, double idle_event_ns) {
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LoadStats& s = rows[i].stats;
    std::fprintf(
        f,
        "    {\"label\": \"%s\", \"requests\": %zu, \"req_per_s\": %.2f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"miss_rate\": %.4f, \"mean_exit\": %.3f, \"macs_per_req\": %.0f, "
        "\"occupancy\": %.3f, \"rejected\": %llu}%s\n",
        rows[i].label.c_str(), s.completed,
        s.seconds > 0.0 ? static_cast<double>(s.completed) / s.seconds : 0.0,
        percentile(s.latency_ms, 0.50), percentile(s.latency_ms, 0.95),
        percentile(s.latency_ms, 0.99),
        s.completed ? static_cast<double>(s.misses) /
                          static_cast<double>(s.completed)
                    : 0.0,
        s.completed ? s.exit_sum / static_cast<double>(s.completed) : 0.0,
        s.macs_per_req(), rows[i].occupancy,
        static_cast<unsigned long long>(s.rejected),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"flight_overhead\": {\"recorder_on_req_per_s\": "
               "%.2f, \"recorder_off_req_per_s\": %.2f, "
               "\"overhead_pct\": %.2f, \"idle_event_ns\": %.2f}\n}\n",
               rec_on_rps, rec_off_rps,
               rec_off_rps > 0.0 ? 100.0 * (1.0 - rec_on_rps / rec_off_rps)
                                 : 0.0,
               idle_event_ns);
  std::fclose(f);
  std::printf("wrote BENCH_serve.json (%zu runs)\n", rows.size());
}

/// Closed loop: `clients` threads, each submitting its requests serially
/// (a new request only after the previous reply).
LoadStats closed_loop(serve::Server& server, const std::vector<Tensor>& inputs,
                      int clients, double deadline_ms) {
  std::vector<LoadStats> per_client(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  Timer timer;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < inputs.size();
           i += static_cast<std::size_t>(clients)) {
        serve::Request req;
        req.input = inputs[i];  // deep copy — tensors are values
        req.deadline_ms = deadline_ms;
        per_client[static_cast<std::size_t>(t)].add(
            server.serve(std::move(req)));
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadStats all;
  all.seconds = timer.seconds();
  for (const LoadStats& s : per_client) {
    all.latency_ms.insert(all.latency_ms.end(), s.latency_ms.begin(),
                          s.latency_ms.end());
    all.misses += s.misses;
    all.total_macs += s.total_macs;
    all.exit_sum += s.exit_sum;
    all.completed += s.completed;
  }
  return all;
}

/// Open loop: requests arrive on a fixed schedule regardless of completions
/// (interval = 1/rate), then all futures are drained.
LoadStats open_loop(serve::Server& server, const std::vector<Tensor>& inputs,
                    double rate_per_s, double deadline_ms) {
  std::vector<std::future<serve::ServedResult>> futures;
  futures.reserve(inputs.size());
  const double interval_s = rate_per_s > 0.0 ? 1.0 / rate_per_s : 0.0;
  Timer timer;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double due = static_cast<double>(i) * interval_s;
    while (timer.seconds() < due) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    serve::Request req;
    req.input = inputs[i];
    req.deadline_ms = deadline_ms;
    futures.push_back(server.submit(std::move(req)));
  }
  LoadStats all;
  for (auto& f : futures) {
    try {
      all.add(f.get());
    } catch (const std::exception&) {
      // Queue-full / admission rejection: neither a completion nor a miss —
      // tallied separately (the server's own counters agree).
      ++all.rejected;
    }
  }
  all.seconds = timer.seconds();
  return all;
}

int run_load(const ServeBenchConfig& c) {
  const BenchScale scale = bench_scale();
  const int per_client =
      c.requests > 0 ? c.requests : (scale == BenchScale::kQuick ? 16 : 64);
  const int total = per_client * c.clients;
  Network net = make_model(c);
  const std::vector<Tensor> inputs = make_inputs(net, total, c.seed + 101);
  const DeviceModel host = calibrate_device(net, c.subnets);

  std::printf(
      "bench_serve  scale=%s  model=%s subnets=%d workers=%d batch=%d "
      "clients=%d requests=%d\n",
      to_string(scale), c.model.c_str(), c.subnets, c.workers, c.batch,
      c.clients, total);

  // Reuse vs no-reuse at equal exit levels: no deadline / budget / gate, so
  // every request climbs the full ladder and the answers are identical —
  // only the MACs (and therefore time) differ.
  auto make_server = [&](bool reuse) {
    serve::ServeConfig cfg;
    cfg.max_subnet = c.subnets;
    cfg.num_workers = c.workers;
    cfg.max_batch = c.batch;
    cfg.reuse = reuse;
    cfg.device = host;
    return std::make_unique<serve::Server>(net, cfg);
  };
  std::vector<BenchRow> rows;
  double min_thr = 0.0;
  double capacity = 0.0;  ///< closed-loop reuse throughput (req/s)
  for (const bool reuse : {true, false}) {
    auto server = make_server(reuse);
    LoadStats closed = closed_loop(*server, inputs, c.clients, 0.0);
    closed.print(reuse ? "closed-loop reuse" : "closed-loop no-reuse");
    const double thr =
        static_cast<double>(closed.completed) / closed.seconds;
    if (reuse) capacity = thr;
    min_thr = min_thr == 0.0 ? thr : std::min(min_thr, thr);
    rows.push_back(
        {reuse ? "closed_loop_reuse" : "closed_loop_no_reuse", std::move(closed)});
  }
  // One common arrival rate below the slower server's capacity, so the two
  // open-loop runs face identical offered load.
  const double rate = 0.75 * min_thr;
  LoadStats stats[2];
  for (const bool reuse : {true, false}) {
    auto server = make_server(reuse);
    LoadStats open = open_loop(*server, inputs, rate, 0.0);
    open.print(reuse ? "open-loop   reuse" : "open-loop   no-reuse");
    rows.push_back({reuse ? "open_loop_reuse" : "open_loop_no_reuse", open});
    stats[reuse ? 0 : 1] = std::move(open);
  }
  std::printf(
      "summary: macs/req reuse=%.0f no-reuse=%.0f (saving %.1f%%)  "
      "p95 reuse=%.2fms no-reuse=%.2fms\n",
      stats[0].macs_per_req(), stats[1].macs_per_req(),
      stats[1].macs_per_req() > 0.0
          ? 100.0 * (1.0 - stats[0].macs_per_req() / stats[1].macs_per_req())
          : 0.0,
      percentile(stats[0].latency_ms, 0.95),
      percentile(stats[1].latency_ms, 0.95));

  // Per-level latency with the packed-weight cache on vs off (ISSUE 5):
  // no deadline, so every request climbs the full ladder; the per-step
  // timestamps in each reply give the incremental cost of every level.
  // Cache off = STEPPING_PACK_CACHE_MB=0 semantics (pack per call).
  {
    const long saved_limit = pack_cache_limit_mb();
    const std::size_t probe = std::min<std::size_t>(inputs.size(), 64);
    for (const bool cache_on : {true, false}) {
      flush_pack_cache();
      set_pack_cache_limit_mb(cache_on ? saved_limit : 0);
      serve::ServeConfig cfg;
      cfg.max_subnet = c.subnets;
      cfg.num_workers = c.workers;
      cfg.max_batch = c.batch;
      cfg.device = host;
      serve::Server server(net, cfg);
      std::vector<std::vector<double>> level_ms(
          static_cast<std::size_t>(c.subnets));
      for (std::size_t i = 0; i < probe; ++i) {
        serve::Request req;
        req.input = inputs[i];
        const serve::ServedResult r = server.serve(std::move(req));
        double prev = 0.0;
        for (const serve::StepUpdate& s : r.steps) {
          level_ms[static_cast<std::size_t>(s.subnet - 1)].push_back(s.at_ms -
                                                                     prev);
          prev = s.at_ms;
        }
      }
      std::printf("per-level ms (p50) packcache=%-3s", cache_on ? "on" : "off");
      for (std::size_t l = 0; l < level_ms.size(); ++l) {
        std::printf("  L%zu=%.3f", l + 1, percentile(level_ms[l], 0.50));
      }
      std::printf("\n");
      server.shutdown();
    }
    set_pack_cache_limit_mb(saved_limit);
  }

  // Step-down under load: a deadline near the ladder's midpoint forces the
  // planner to settle for smaller subnets once queueing eats the slack.
  {
    serve::ServeConfig cfg;
    cfg.max_subnet = c.subnets;
    cfg.num_workers = c.workers;
    cfg.max_batch = c.batch;
    cfg.device = host;
    serve::Server server(net, cfg);
    const double tight =
        server.planner().ladder_ms((c.subnets + 1) / 2, c.batch);
    const double rate =
        1.5 * static_cast<double>(stats[0].completed) / stats[0].seconds;
    LoadStats open = open_loop(server, inputs, rate, tight);
    char label[64];
    std::snprintf(label, sizeof(label), "open-loop tight %.1fms", tight);
    open.print(label);
    server.shutdown();
    std::printf("%s", server.counters().to_string().c_str());
    std::printf("%s\n", server.slo_summary().c_str());
    std::printf("%s\n", server.flight_summary().c_str());
    rows.push_back({"open_loop_tight_deadline", std::move(open)});
  }

  // Overload sweep (ISSUE 9): open loop at 1.25x / 1.5x / 2x the closed-loop
  // reuse capacity with a mid-ladder deadline, re-formation on vs off at
  // IDENTICAL offered load. In this regime requests still climb 2-3 ladder
  // levels, so batches genuinely shed early-halting rows: without
  // re-formation the remaining survivors step in part-empty passes, with it
  // they re-merge (with each other and with fresh admissions) into full
  // batches. Occupancy = serve_pass_rows_total / serve_passes_total (mean
  // live rows per executed pass). The sweep cycles the input set 4x so each
  // run is long enough for queueing effects to dominate scheduling noise.
  std::vector<Tensor> sweep_inputs;
  sweep_inputs.reserve(inputs.size() * 4);
  for (int rep = 0; rep < 4; ++rep) {
    for (const Tensor& x : inputs) sweep_inputs.push_back(x);
  }
  {
    for (const double mult : {1.25, 1.5, 2.0}) {
      for (const int reform : {1, 0}) {
        serve::ServeConfig cfg;
        cfg.max_subnet = c.subnets;
        cfg.num_workers = c.workers;
        cfg.max_batch = c.batch;
        cfg.device = host;
        cfg.reform = reform;
        serve::Server server(net, cfg);
        const double tight =
            server.planner().ladder_ms((c.subnets + 1) / 2, c.batch);
        LoadStats open =
            open_loop(server, sweep_inputs, mult * capacity, tight);
        server.shutdown();
        const double occupancy = server.counters().pass_occupancy();
        char label[64];
        std::snprintf(label, sizeof(label), "overload %.2fx reform=%s", mult,
                      reform ? "on" : "off");
        open.print(label);
        std::printf("%-24s occupancy=%.2f rows/pass\n", "", occupancy);
        char jlabel[64];
        std::snprintf(jlabel, sizeof(jlabel), "overload_%.2fx_reform_%s", mult,
                      reform ? "on" : "off");
        rows.push_back({jlabel, std::move(open), occupancy});
      }
    }
  }

  // Occupancy probe (ISSUE 9): every request submitted at once (deep queue,
  // no deadlines, so the run-queue's urgency override never fires) with
  // per-request MAC budgets spreading the exits over 1..subnets. Rows
  // therefore halt at different levels: the legacy path steps each batch's
  // survivors with the halted rows riding along as dead weight, re-formation
  // re-packs survivors of different batches into full same-level passes —
  // higher pass occupancy and higher throughput on identical work.
  {
    for (const int reform : {1, 0}) {
      serve::ServeConfig cfg;
      cfg.max_subnet = c.subnets;
      cfg.num_workers = c.workers;
      cfg.max_batch = c.batch;
      cfg.device = host;
      cfg.reform = reform;
      cfg.queue_capacity = sweep_inputs.size() + 16;
      serve::Server server(net, cfg);
      const serve::LevelCosts& costs = server.planner().costs();
      std::vector<std::future<serve::ServedResult>> futures;
      futures.reserve(sweep_inputs.size());
      Timer timer;
      for (std::size_t i = 0; i < sweep_inputs.size(); ++i) {
        serve::Request req;
        req.input = sweep_inputs[i];
        req.mac_budget = costs.stepped_macs_through(
            1 + static_cast<int>(i) % c.subnets);
        futures.push_back(server.submit(std::move(req)));
      }
      LoadStats s;
      for (auto& f : futures) s.add(f.get());
      s.seconds = timer.seconds();
      server.shutdown();
      const double occupancy = server.counters().pass_occupancy();
      s.print(reform ? "occupancy probe on" : "occupancy probe off");
      std::printf("%-24s occupancy=%.2f rows/pass\n", "", occupancy);
      rows.push_back({reform ? "occupancy_probe_reform_on"
                             : "occupancy_probe_reform_off",
                      std::move(s), occupancy});
    }
  }

  // Predictive admission under 2x overload (re-formation on): `off` admits
  // everything and eats the misses, `reject` refuses requests whose
  // predicted queue wait leaves no reachable subnet (fail-fast, the future
  // throws), `degrade` admits them at a reduced target level instead.
  {
    const serve::AdmitPolicy policies[3] = {serve::AdmitPolicy::kOff,
                                            serve::AdmitPolicy::kReject,
                                            serve::AdmitPolicy::kDegrade};
    for (const serve::AdmitPolicy p : policies) {
      serve::ServeConfig cfg;
      cfg.max_subnet = c.subnets;
      cfg.num_workers = c.workers;
      cfg.max_batch = c.batch;
      cfg.device = host;
      cfg.reform = 1;
      cfg.admit = p;
      serve::Server server(net, cfg);
      const double tight =
          server.planner().ladder_ms((c.subnets + 1) / 2, c.batch);
      LoadStats open = open_loop(server, sweep_inputs, 2.0 * capacity, tight);
      server.shutdown();
      const serve::CounterSnapshot snap = server.counters();
      char label[64];
      std::snprintf(label, sizeof(label), "overload 2.0x admit=%s",
                    serve::admit_policy_name(p));
      open.print(label);
      std::printf(
          "%-24s occupancy=%.2f rows/pass  admitted=%llu degraded=%llu "
          "rejected=%llu\n",
          "", snap.pass_occupancy(),
          static_cast<unsigned long long>(snap.admit_accepted),
          static_cast<unsigned long long>(snap.admit_degraded),
          static_cast<unsigned long long>(snap.admit_rejected));
      char jlabel[64];
      std::snprintf(jlabel, sizeof(jlabel), "overload_2.0x_admit_%s",
                    serve::admit_policy_name(p));
      rows.push_back({jlabel, std::move(open), snap.pass_occupancy()});
    }
  }

  // Flight-recorder overhead (ISSUE 8): the same closed-loop load with the
  // recorder enabled (default ring) vs disabled (ring = 0). Request work is
  // milliseconds-scale, so the delta should be indistinguishable from noise
  // — the JSON report keeps the receipts.
  double rec_rps[2] = {0.0, 0.0};
  for (const bool rec_on : {true, false}) {
    serve::ServeConfig cfg;
    cfg.max_subnet = c.subnets;
    cfg.num_workers = c.workers;
    cfg.max_batch = c.batch;
    cfg.device = host;
    cfg.flight.ring = rec_on ? 1024 : 0;
    serve::Server server(net, cfg);
    LoadStats s = closed_loop(server, inputs, c.clients, 0.0);
    const double rps =
        s.seconds > 0.0 ? static_cast<double>(s.completed) / s.seconds : 0.0;
    rec_rps[rec_on ? 0 : 1] = rps;
    std::printf("closed-loop recorder=%-3s %7.1f req/s\n", rec_on ? "on" : "off",
                rps);
    rows.push_back(
        {rec_on ? "closed_loop_recorder_on" : "closed_loop_recorder_off",
         std::move(s)});
    server.shutdown();
  }

  // Idle per-event-site cost: with recording disabled every hook reduces to
  // a null-handle check inside an out-of-line call. This is the price each
  // instrumented code path pays when the recorder is off.
  double idle_event_ns = 0.0;
  {
    obs::FlightRecorder::Config fcfg;
    fcfg.ring = 0;
    fcfg.retain_misses = 0;
    fcfg.retain_stragglers = 0;
    obs::FlightRecorder off(fcfg);
    const obs::FlightHandle h =
        off.begin(0, 0.0, 0.0, 0);  // null: recorder disabled
    const long reps = bench_scale() == BenchScale::kQuick ? 2000000 : 20000000;
    Timer t;
    for (long i = 0; i < reps; ++i) {
      off.event(h, obs::FlightEventKind::kStepEnd, 0.0, i, 0, 0);
    }
    idle_event_ns = t.milliseconds() * 1e6 / static_cast<double>(reps);
    std::printf("flight idle event site: %.2f ns (%ld calls, recorder off)\n",
                idle_event_ns, reps);
  }

  write_bench_json(rows, rec_rps[0], rec_rps[1], idle_event_ns);
  return 0;
}

/// fp32-only vs `precision` (auto or int8) at identical offered load: same
/// inputs, same arrival rate, same per-request deadline. The servers
/// self-calibrate (random-input calibration — representative enough for
/// latency work; accuracy comparisons live in `steppingnet eval`).
int run_precision(const ServeBenchConfig& c, quant::Precision precision) {
  const BenchScale scale = bench_scale();
  const int per_client =
      c.requests > 0 ? c.requests : (scale == BenchScale::kQuick ? 16 : 64);
  const int total = per_client * c.clients;
  Network net = make_model(c);
  const std::vector<Tensor> inputs = make_inputs(net, total, c.seed + 303);
  const DeviceModel host = calibrate_device(net, c.subnets);

  std::printf(
      "bench_serve precision  scale=%s  model=%s subnets=%d workers=%d "
      "batch=%d requests=%d policy=%s\n",
      to_string(scale), c.model.c_str(), c.subnets, c.workers, c.batch, total,
      quant::precision_name(precision));

  auto make_server = [&](quant::Precision p) {
    serve::ServeConfig cfg;
    cfg.max_subnet = c.subnets;
    cfg.num_workers = c.workers;
    cfg.max_batch = c.batch;
    cfg.device = host;
    cfg.precision = p;
    return std::make_unique<serve::Server>(net, cfg);
  };

  // Offered load calibrated once, from the fp32 server's closed-loop
  // capacity, so both open-loop runs face the same arrival schedule.
  double rate = 0.0, deadline = 0.0;
  {
    auto server = make_server(quant::Precision::kFp32);
    deadline = server->planner().ladder_ms(c.subnets, c.batch);
    LoadStats closed = closed_loop(*server, inputs, c.clients, 0.0);
    rate = 0.75 * static_cast<double>(closed.completed) / closed.seconds;
  }

  const quant::Precision modes[2] = {quant::Precision::kFp32, precision};
  const char* labels[2] = {"open-loop fp32-only",
                           precision == quant::Precision::kAuto
                               ? "open-loop auto"
                               : "open-loop int8"};
  LoadStats res[2];
  std::uint64_t int8_passes[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    auto server = make_server(modes[m]);
    LoadStats open = open_loop(*server, inputs, rate, deadline);
    open.print(labels[m]);
    int8_passes[m] =
        server->metrics().counter("serve_int8_passes_total").value();
    res[m] = std::move(open);
    server->shutdown();
  }
  const auto miss_pct = [](const LoadStats& s) {
    return s.completed ? 100.0 * static_cast<double>(s.misses) /
                             static_cast<double>(s.completed)
                       : 0.0;
  };
  const auto mean_exit = [](const LoadStats& s) {
    return s.completed ? s.exit_sum / static_cast<double>(s.completed) : 0.0;
  };
  std::printf(
      "precision summary: rate=%.1f req/s deadline=%.2fms  "
      "miss fp32=%.1f%% %s=%.1f%%  mean_exit fp32=%.2f %s=%.2f  "
      "int8_passes=%llu\n",
      rate, deadline, miss_pct(res[0]), quant::precision_name(precision),
      miss_pct(res[1]), mean_exit(res[0]), quant::precision_name(precision),
      mean_exit(res[1]), static_cast<unsigned long long>(int8_passes[1]));
  return 0;
}

int run_smoke(const ServeBenchConfig& c, int port, bool send_shutdown) {
  Network net = make_model(c);

  // Self-host when no --port was given: the reference model and the served
  // model are then the same object graph by construction.
  std::unique_ptr<serve::Server> local;
  std::unique_ptr<serve::TcpServer> tcp;
  std::thread tcp_thread;
  if (port == 0) {
    serve::ServeConfig cfg;
    cfg.max_subnet = c.subnets;
    cfg.num_workers = c.workers;
    cfg.max_batch = c.batch;
    cfg.device = calibrate_device(net, c.subnets);
    local = std::make_unique<serve::Server>(net, cfg);
    tcp = std::make_unique<serve::TcpServer>(*local, 0);
    port = tcp->port();
    tcp_thread = std::thread([&] { tcp->run(); });
    send_shutdown = true;
  }

  const int per_client = 6;
  const std::vector<Tensor> inputs =
      make_inputs(net, c.clients * per_client, c.seed + 202);
  // One reference replica per client thread: Network::forward keeps layer
  // scratch state, so concurrent parity checks need their own copies.
  std::vector<Network> refs;
  refs.reserve(static_cast<std::size_t>(c.clients));
  for (int t = 0; t < c.clients; ++t) refs.push_back(net.clone());
  std::atomic<int> parity_fail{0}, io_fail{0}, misses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < c.clients; ++t) {
    threads.emplace_back([&, t] {
      try {
        Network& ref = refs[static_cast<std::size_t>(t)];
        serve::TcpClient client(port);
        for (int i = 0; i < per_client; ++i) {
          const Tensor& x = inputs[static_cast<std::size_t>(
              t * per_client + i)];
          serve::WireReply reply;
          if (!client.infer(x, 0.0, 0, reply) || reply.exit_subnet == 0) {
            ++io_fail;
            continue;
          }
          if (reply.deadline_missed) ++misses;
          SubnetContext ctx;
          ctx.subnet_id = static_cast<int>(reply.exit_subnet);
          Tensor direct = ref.forward(x, ctx);
          const bool same =
              static_cast<std::int64_t>(reply.logits.size()) ==
                  direct.numel() &&
              std::memcmp(reply.logits.data(), direct.data(),
                          sizeof(float) *
                              static_cast<std::size_t>(direct.numel())) == 0;
          if (!same) ++parity_fail;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "smoke client %d: %s\n", t, e.what());
        ++io_fail;
      }
    });
  }
  for (auto& t : threads) t.join();

  // Forced deadline misses (ISSUE 8): hopeless deadlines make the planner
  // clamp to level 1 and the first publish still lands late, so the flight
  // recorder retains a postmortem per request — the anytime answer (and
  // logits parity above) is unaffected. The kTimeline dump is then fetched
  // over TCP and written for CI to json-validate.
  int timeline_fail = 0;
  {
    try {
      serve::TcpClient client(port);
      for (int i = 0; i < 4; ++i) {
        serve::WireReply reply;
        if (!client.infer(inputs[static_cast<std::size_t>(i)], 1e-3, 0,
                          reply) ||
            reply.exit_subnet == 0) {
          ++io_fail;
        }
      }
      std::string tl;
      if (!client.timeline(tl) ||
          tl.find("\"postmortems\"") == std::string::npos) {
        ++timeline_fail;
      } else {
        if (local != nullptr && tl.find("deadline_miss") == std::string::npos) {
          ++timeline_fail;  // self-hosted: the forced misses must be retained
        }
        if (std::FILE* f = std::fopen("BENCH_timeline.json", "w")) {
          std::fwrite(tl.data(), 1, tl.size(), f);
          std::fputc('\n', f);
          std::fclose(f);
          std::printf("wrote BENCH_timeline.json (%zu bytes)\n", tl.size());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "smoke timeline: %s\n", e.what());
      ++timeline_fail;
    }
  }

  if (send_shutdown) {
    try {
      serve::TcpClient(port).shutdown_server();
    } catch (const std::exception&) {
      ++io_fail;
    }
  }
  if (tcp_thread.joinable()) tcp_thread.join();
  if (local) {
    local->shutdown();
    std::printf("%s", local->counters().to_string().c_str());
    std::printf("%s\n", local->slo_summary().c_str());
    std::printf("%s\n", local->flight_summary().c_str());
  }

  const int total = c.clients * per_client;
  const bool ok = parity_fail.load() == 0 && io_fail.load() == 0 &&
                  timeline_fail == 0;
  std::printf("smoke: parity=%s requests=%d io_errors=%d timeline_errors=%d "
              "miss_rate=%.2f\n",
              ok ? "ok" : "FAIL", total, io_fail.load(), timeline_fail,
              static_cast<double>(misses.load()) / total);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace stepping::bench

int main(int argc, char** argv) {
  using namespace stepping;
  using namespace stepping::bench;
  const std::vector<std::string> known = {
      "model",   "classes", "expansion", "width",    "subnets",
      "seed",    "in",      "workers",   "batch",    "clients",
      "requests", "port",   "smoke",     "shutdown", "precision"};
  CliArgs args(argc, argv, known);
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "%s\n", e.c_str());
    return 2;
  }
  ServeBenchConfig c;
  c.model = args.get("model", c.model);
  c.classes = static_cast<int>(args.get_int("classes", c.classes));
  c.expansion = args.get_double("expansion", c.expansion);
  c.width = args.get_double("width", c.width);
  c.subnets = static_cast<int>(args.get_int("subnets", c.subnets));
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  c.in = args.get("in");
  c.workers = static_cast<int>(args.get_int("workers", c.workers));
  c.batch = static_cast<int>(args.get_int("batch", c.batch));
  c.clients = static_cast<int>(args.get_int("clients", c.clients));
  c.requests = static_cast<int>(args.get_int("requests", 0));
  try {
    if (args.has("smoke")) {
      return run_smoke(c, static_cast<int>(args.get_int("port", 0)),
                       args.has("shutdown"));
    }
    if (args.has("precision")) {
      quant::Precision p = quant::Precision::kAuto;
      const std::string s = args.get("precision", "auto");
      if (!quant::parse_precision(s, &p) || p == quant::Precision::kFp32) {
        std::fprintf(stderr,
                     "bench_serve: --precision must be auto or int8\n");
        return 2;
      }
      return run_precision(c, p);
    }
    return run_load(c);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
