// Extension benchmark (paper §I: "a preliminary decision should be made
// early and refined further"): confidence-gated early exit on top of the
// SteppingNet ladder.
//
// After the standard pipeline, sweep the exit-confidence threshold and
// report accuracy vs mean MACs per input, plus the exit histogram. The
// interesting shape: adaptive points dominate the static subnets — e.g. the
// policy reaches near-top accuracy at a fraction of the largest subnet's
// mean compute, because easy inputs exit early and reuse makes late exits
// pay only the increment.
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/adaptive.h"
#include "core/stepping_net.h"
#include "util/table.h"

using namespace stepping;
using namespace stepping::bench;

int main() {
  ExperimentSpec spec = spec_for("lenet3c1l", bench_scale());
  print_banner("adaptive", spec);

  PipelineOptions opts;
  opts.keep_network = true;
  PipelineResult r = run_steppingnet(spec, opts);
  SteppingNet& sn = *r.net;
  const DataSplit data = make_data(spec);
  const int n_subnets = static_cast<int>(spec.budgets.size());

  Table static_table({"static subnet", "accuracy", "MACs/input"});
  for (int i = 1; i <= n_subnets; ++i) {
    static_table.add_row({std::to_string(i), Table::fmt_pct(r.acc[static_cast<std::size_t>(i - 1)]),
                          std::to_string(sn.macs(i))});
  }
  static_table.print("\n== Static subnets (baseline operating points) ==");

  Table table({"threshold", "accuracy", "mean MACs/input", "exit histogram"});
  Tensor x;
  std::vector<int> y;
  for (const double th : {0.5, 0.7, 0.85, 0.95, 0.999}) {
    AdaptiveConfig acfg;
    acfg.confidence_threshold = th;
    acfg.max_subnet = n_subnets;
    AdaptiveExecutor ex(sn.network(), acfg);
    std::vector<int> hist(static_cast<std::size_t>(n_subnets), 0);
    long long total_macs = 0;
    int correct = 0;
    for (int i = 0; i < data.test.size(); ++i) {
      data.test.batch(i, 1, x, y);
      const AdaptiveResult res = ex.run(x);
      total_macs += res.macs;
      ++hist[static_cast<std::size_t>(res.exit_subnet - 1)];
      int best = 0;
      for (int c = 1; c < res.logits.dim(1); ++c) {
        if (res.logits.at(0, c) > res.logits.at(0, best)) best = c;
      }
      if (best == y[0]) ++correct;
    }
    std::string hist_str;
    for (std::size_t i = 0; i < hist.size(); ++i) {
      if (i) hist_str += "/";
      hist_str += std::to_string(hist[i]);
    }
    table.add_row({Table::fmt(th, 3),
                   Table::fmt_pct(static_cast<double>(correct) / data.test.size()),
                   std::to_string(total_macs / data.test.size()), hist_str});
  }
  table.print("\n== Confidence-gated adaptive stepping ==");
  table.write_csv("bench_adaptive.csv");
  std::printf(
      "\nShape check: rising threshold trades MACs for accuracy; mid "
      "thresholds approach top-subnet accuracy well below its MAC cost.\n");
  return 0;
}
