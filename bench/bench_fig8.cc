// Reproduces Fig. 8: ablation of the two training techniques —
// weight-update suppression (beta^(k-o), paper §III-A2) and knowledge
// distillation (Eq. 4, paper §III-B).
//
// Four configurations on LeNet-3C1L / SynthC10:
//   full          suppression + KD (the Table-I pipeline)
//   no-suppress   KD only
//   no-KD         suppression only (plain CE retraining)
//   neither       plain CE, no suppression
//
// Shape to check: both techniques individually help, especially the smaller
// subnets; combined they are the strongest; large subnets move little.
#include <cstdio>

#include "common.h"
#include "util/table.h"

using namespace stepping;
using namespace stepping::bench;

int main() {
  const BenchScale scale = bench_scale();

  struct Config {
    const char* name;
    bool suppression;
    bool kd;
  };
  const Config configs[] = {
      {"full", true, true},
      {"no-suppress", false, true},
      {"no-KD", true, false},
      {"neither", false, false},
  };

  Table table({"config", "A1", "A2", "A3", "A4", "secs"});
  for (const Config& c : configs) {
    ExperimentSpec spec = spec_for("lenet3c1l", scale);
    print_banner(std::string("fig8:") + c.name, spec);
    PipelineOptions opts;
    opts.suppression = c.suppression;
    opts.distillation = c.kd;
    const PipelineResult r = run_steppingnet(spec, opts);
    std::vector<std::string> row = {c.name};
    for (const double a : r.acc) row.push_back(Table::fmt_pct(a));
    row.push_back(Table::fmt(r.seconds, 1));
    table.add_row(row);
  }

  table.print("\n== Fig. 8 (ablation: suppression / distillation) ==");
  table.write_csv("bench_fig8.csv");
  std::printf(
      "\nPaper shape check: 'full' >= single-technique >= 'neither' for the "
      "small subnets; large subnets roughly stable.\nCSV written to "
      "bench_fig8.csv\n");
  return 0;
}
