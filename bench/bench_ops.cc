// Micro-benchmarks (google-benchmark) for the numerical substrate: GEMM
// kernels, im2col convolution, masked-forward overhead, and incremental
// step cost. These quantify the design decisions in DESIGN.md §6.
#include <benchmark/benchmark.h>

#include "baselines/any_width.h"
#include "core/incremental.h"
#include "core/macs.h"
#include "models/models.h"
#include "nn/conv2d.h"
#include "tensor/ops.h"

namespace stepping {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmRowsHalfActive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  std::vector<unsigned char> active(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) active[static_cast<std::size_t>(i)] = i % 2;
  for (auto _ : state) {
    c.zero();
    gemm_rows(a, b, c, active.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n * n / 2);
}
BENCHMARK(BM_GemmRowsHalfActive)->Arg(64)->Arg(128);

void BM_Im2col(benchmark::State& state) {
  Conv2dGeometry g{16, 32, 32, 32, 3, 1, 1};
  Rng rng(3);
  Tensor x({g.in_c, g.in_h, g.in_w});
  fill_normal(x, 0.0f, 1.0f, rng);
  Tensor cols({g.patch(), g.out_h() * g.out_w()});
  for (auto _ : state) {
    im2col(x.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Conv2d conv("c", c, 3);
  Rng rng(4);
  IOSpec spec;
  spec.units = c;
  spec.h = 16;
  spec.w = 16;
  spec.assignment = std::make_shared<Assignment>(static_cast<std::size_t>(c), 1);
  conv.wire(spec, rng);
  Tensor x({4, c, 16, 16});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  for (auto _ : state) {
    Tensor y = conv.forward(x, ctx);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(32);

/// Overhead of subnet masking: full network vs subnet-1 (10% MACs) forward.
void BM_SubnetForward(benchmark::State& state) {
  ModelConfig mc{.classes = 10, .expansion = 1.8, .width_mult = 0.5};
  static Network net = build_lenet3c1l(mc);
  static bool configured = [] {
    const std::int64_t full = full_macs(net);
    std::vector<std::int64_t> budgets;
    for (const double f : {0.1, 0.3, 0.5, 0.85}) {
      budgets.push_back(static_cast<std::int64_t>(f * 0.5 * full));
    }
    assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
    return true;
  }();
  (void)configured;
  Rng rng(5);
  Tensor x({4, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Tensor y = net.forward(x, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel("macs=" + std::to_string(subnet_macs(net, ctx.subnet_id)));
}
BENCHMARK(BM_SubnetForward)->Arg(1)->Arg(2)->Arg(4);

/// Incremental step 3->4 vs from-scratch subnet-4 evaluation.
void BM_IncrementalStep(benchmark::State& state) {
  static Network net = [] {
    const ModelConfig mc{.classes = 10, .expansion = 1.8, .width_mult = 0.5};
    Network n = build_lenet3c1l(mc);
    const std::int64_t full = full_macs(n);
    std::vector<std::int64_t> budgets;
    for (const double f : {0.1, 0.3, 0.5, 0.85}) {
      budgets.push_back(static_cast<std::int64_t>(f * 0.5 * full));
    }
    assign_prefix_subnets(n, solve_prefix_fractions(n, budgets));
    return n;
  }();
  Rng rng(6);
  Tensor x({4, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  IncrementalExecutor ex(net);
  const bool incremental = state.range(0) == 1;
  for (auto _ : state) {
    if (incremental) {
      ex.reset();
      ex.run(x, 3);
      Tensor y = ex.run(x, 4);
      benchmark::DoNotOptimize(y.data());
    } else {
      SubnetContext ctx;
      ctx.subnet_id = 4;
      Tensor y3;
      {
        SubnetContext c3;
        c3.subnet_id = 3;
        y3 = net.forward(x, c3);  // pay for level 3 ...
      }
      Tensor y = net.forward(x, ctx);  // ... then restart level 4
      benchmark::DoNotOptimize(y.data());
      benchmark::DoNotOptimize(y3.data());
    }
  }
  state.SetLabel(incremental ? "3-then-step-to-4" : "3-then-scratch-4");
}
BENCHMARK(BM_IncrementalStep)->Arg(1)->Arg(0);

}  // namespace
}  // namespace stepping

BENCHMARK_MAIN();
