// Micro-benchmarks (google-benchmark) for the numerical substrate: GEMM
// kernels, im2col convolution, masked-forward overhead, and incremental
// step cost. These quantify the design decisions in DESIGN.md §6.
//
// Before the google-benchmark suite runs, main() executes a GEMM shape
// sweep over the paper's layer shapes comparing the blocked dispatch path
// against the reference kernels: each shape line reports ns/op and GFLOP/s
// for both paths, the blocked/ref speedup, and a bitwise=ok / MISMATCH
// verdict (CI greps for these). The verdict memcmps the blocked route
// against the dispatcher's fallback route, which is tier-correct at every
// STEPPING_ISA level; rows carry an "isa" field naming the active tier.
// The sweep is also written machine-readably to BENCH_gemm.json in the
// working directory. STEPPING_BENCH_REPS overrides the per-shape rep count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/any_width.h"
#include "core/incremental.h"
#include "core/macs.h"
#include "models/models.h"
#include "nn/conv2d.h"
#include "quant/quantize.h"
#include "tensor/gemm_isa.h"
#include "tensor/gemm_kernel.h"
#include "tensor/i8gemm.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace stepping {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmRowsHalfActive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  std::vector<unsigned char> active(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) active[static_cast<std::size_t>(i)] = i % 2;
  for (auto _ : state) {
    c.zero();
    gemm_rows(a, b, c, active.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n * n / 2);
}
BENCHMARK(BM_GemmRowsHalfActive)->Arg(64)->Arg(128);

void BM_Im2col(benchmark::State& state) {
  Conv2dGeometry g{16, 32, 32, 32, 3, 1, 1};
  Rng rng(3);
  Tensor x({g.in_c, g.in_h, g.in_w});
  fill_normal(x, 0.0f, 1.0f, rng);
  Tensor cols({g.patch(), g.out_h() * g.out_w()});
  for (auto _ : state) {
    im2col(x.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Conv2d conv("c", c, 3);
  Rng rng(4);
  IOSpec spec;
  spec.units = c;
  spec.h = 16;
  spec.w = 16;
  spec.assignment = std::make_shared<Assignment>(static_cast<std::size_t>(c), 1);
  conv.wire(spec, rng);
  Tensor x({4, c, 16, 16});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  for (auto _ : state) {
    Tensor y = conv.forward(x, ctx);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(32);

/// Overhead of subnet masking: full network vs subnet-1 (10% MACs) forward.
void BM_SubnetForward(benchmark::State& state) {
  ModelConfig mc{.classes = 10, .expansion = 1.8, .width_mult = 0.5};
  static Network net = build_lenet3c1l(mc);
  static bool configured = [] {
    const std::int64_t full = full_macs(net);
    std::vector<std::int64_t> budgets;
    for (const double f : {0.1, 0.3, 0.5, 0.85}) {
      budgets.push_back(static_cast<std::int64_t>(f * 0.5 * full));
    }
    assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
    return true;
  }();
  (void)configured;
  Rng rng(5);
  Tensor x({4, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Tensor y = net.forward(x, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel("macs=" + std::to_string(subnet_macs(net, ctx.subnet_id)));
}
BENCHMARK(BM_SubnetForward)->Arg(1)->Arg(2)->Arg(4);

/// Incremental step 3->4 vs from-scratch subnet-4 evaluation.
void BM_IncrementalStep(benchmark::State& state) {
  static Network net = [] {
    const ModelConfig mc{.classes = 10, .expansion = 1.8, .width_mult = 0.5};
    Network n = build_lenet3c1l(mc);
    const std::int64_t full = full_macs(n);
    std::vector<std::int64_t> budgets;
    for (const double f : {0.1, 0.3, 0.5, 0.85}) {
      budgets.push_back(static_cast<std::int64_t>(f * 0.5 * full));
    }
    assign_prefix_subnets(n, solve_prefix_fractions(n, budgets));
    return n;
  }();
  Rng rng(6);
  Tensor x({4, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);
  IncrementalExecutor ex(net);
  const bool incremental = state.range(0) == 1;
  for (auto _ : state) {
    if (incremental) {
      ex.reset();
      ex.run(x, 3);
      Tensor y = ex.run(x, 4);
      benchmark::DoNotOptimize(y.data());
    } else {
      SubnetContext ctx;
      ctx.subnet_id = 4;
      Tensor y3;
      {
        SubnetContext c3;
        c3.subnet_id = 3;
        y3 = net.forward(x, c3);  // pay for level 3 ...
      }
      Tensor y = net.forward(x, ctx);  // ... then restart level 4
      benchmark::DoNotOptimize(y.data());
      benchmark::DoNotOptimize(y3.data());
    }
  }
  state.SetLabel(incremental ? "3-then-step-to-4" : "3-then-scratch-4");
}
BENCHMARK(BM_IncrementalStep)->Arg(1)->Arg(0);

// ---------------------------------------------------------------------------
// Blocked-vs-reference GEMM sweep (ISSUE 4 acceptance: >= 1.4x at 1 thread
// on 128x400x1024, bitwise parity everywhere).
// ---------------------------------------------------------------------------

double median_seconds(int reps, const std::function<void()>& fn) {
  std::vector<double> t(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    t[static_cast<std::size_t>(r)] =
        std::chrono::duration<double>(t1 - t0).count();
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

struct SweepRow {
  int m, k, n, threads;
  double ref_ns, blocked_ns, speedup, blocked_gflops;
  bool bitwise;
};

/// One shape at the current thread count: median-time ref and blocked gemm,
/// memcmp outputs. Shapes come from the paper models' im2col lowerings
/// (LeNet/VGG-ish layers; see ROADMAP).
SweepRow sweep_shape(int m, int k, int n, int threads, int reps) {
  Rng rng(42);
  Tensor a({m, k}), b({k, n}), c_ref({m, n}), c_blk({m, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  // ~20% exact zeros in A, like masked subnet weights (exercises the
  // zero-skip on both paths identically).
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); i += 5) pa[i] = 0.0f;

  // Bitwise verdict: the blocked route against the dispatcher's small-shape
  // fallback route — the within-tier routing invariant that holds at EVERY
  // ISA tier. On scalar/sse the fallback aliases the reference kernels, so
  // there this is exactly the historical vs-ref check.
  Tensor c_fb({m, n});
  const GemmBlocking ambient = gemm_blocking();
  GemmBlocking fb_cfg;
  fb_cfg.force_ref = true;
  set_gemm_blocking(fb_cfg);
  gemm(a, b, c_fb);
  set_gemm_blocking(ambient);
  gemm_ref(a, b, c_ref);  // warm
  gemm(a, b, c_blk);
  const bool bitwise =
      std::memcmp(c_fb.data(), c_blk.data(),
                  sizeof(float) * static_cast<std::size_t>(c_fb.numel())) == 0;

  const double ref_s = median_seconds(reps, [&] { gemm_ref(a, b, c_ref); });
  const double blk_s = median_seconds(reps, [&] { gemm(a, b, c_blk); });
  const double flop = 2.0 * m * k * n;
  SweepRow row;
  row.m = m;
  row.k = k;
  row.n = n;
  row.threads = threads;
  row.ref_ns = ref_s * 1e9;
  row.blocked_ns = blk_s * 1e9;
  row.speedup = ref_s / blk_s;
  row.blocked_gflops = flop / blk_s * 1e-9;
  row.bitwise = bitwise;
  return row;
}

void run_gemm_sweep() {
  const struct { int m, k, n; } shapes[] = {
      {128, 400, 1024},  // lenet3c1l dense head, batch 128 (acceptance shape)
      {64, 27, 1024},    // conv1 3x3x3 -> 64 units over 32x32 output
      {128, 576, 256},   // mid conv, 64ch 3x3 patch
      {256, 1152, 64},   // late conv, 128ch 3x3 patch, small spatial
      {10, 512, 128},    // classifier tail
      {65, 129, 33},     // odd non-multiple-of-tile shape
  };
  int reps = 7;
  if (const char* e = std::getenv("STEPPING_BENCH_REPS")) {
    reps = std::max(1, std::atoi(e));
  }
  std::vector<int> thread_counts = {1};
  if (ThreadPool::default_threads() != 1) {
    thread_counts.push_back(ThreadPool::default_threads());
  }

  std::vector<SweepRow> rows;
  // CI's isa-matrix job greps this line to confirm the tier pin took hold.
  std::printf("gemm sweep isa=%s host_max=%s\n", isa_tier_name(isa_tier()),
              isa_tier_name(detected_isa_tier()));
  std::printf("GEMM sweep: blocked dispatch vs reference (reps=%d)\n", reps);
  for (const int t : thread_counts) {
    ThreadPool::set_global_threads(t);
    for (const auto& s : shapes) {
      const SweepRow row = sweep_shape(s.m, s.k, s.n, t, reps);
      rows.push_back(row);
      std::printf(
          "gemm m=%d k=%d n=%d threads=%d ref=%.0fns blocked=%.0fns "
          "speedup=%.2fx gflops=%.2f %s\n",
          row.m, row.k, row.n, row.threads, row.ref_ns, row.blocked_ns,
          row.speedup, row.blocked_gflops,
          row.bitwise ? "bitwise=ok" : "bitwise=MISMATCH");
    }
  }
  ThreadPool::set_global_threads(ThreadPool::default_threads());

  if (std::FILE* f = std::fopen("BENCH_gemm.json", "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(f,
                   "  {\"isa\": \"%s\", \"m\": %d, \"k\": %d, \"n\": %d, "
                   "\"threads\": %d, "
                   "\"ref_ns\": %.1f, \"blocked_ns\": %.1f, "
                   "\"speedup\": %.3f, \"blocked_gflops\": %.3f, "
                   "\"bitwise\": %s}%s\n",
                   isa_tier_name(isa_tier()), r.m, r.k, r.n, r.threads,
                   r.ref_ns, r.blocked_ns, r.speedup,
                   r.blocked_gflops, r.bitwise ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote BENCH_gemm.json (%zu rows)\n", rows.size());
  }
}

// ---------------------------------------------------------------------------
// Packed-weight cache sweep (ISSUE 5 acceptance: >= 1.2x warm vs cold on a
// repeated forward of a paper shape, bitwise parity at every cache state).
// Modes: cold (cache flushed before every rep — each call repacks), warm
// (packed once, every rep hits), off (STEPPING_PACK_CACHE_MB=0 semantics —
// caching disabled, per-call packing without cache bookkeeping).
// ---------------------------------------------------------------------------

struct PackRow {
  int m, k, n;
  double cold_ns, warm_ns, off_ns, warm_speedup;
  bool bitwise;
};

PackRow packcache_shape(int m, int k, int n, int reps) {
  Rng rng(43);
  Tensor a({m, k}), w({n, k}), bias({n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(w, 0.0f, 1.0f, rng);
  fill_normal(bias, 0.0f, 0.5f, rng);
  float* pw = w.data();
  for (std::int64_t i = 0; i < w.numel(); i += 5) pw[i] = 0.0f;
  std::vector<unsigned char> active(static_cast<std::size_t>(n), 1);

  // Ground truth: the same dispatcher with pack_id 0 (uncached route) —
  // tier-correct at every ISA level; the sweep's verdict is bitwise
  // stability ACROSS CACHE STATES, which must hold regardless of tier.
  Tensor c_ref({m, n}), c({m, n});
  gemm_nt_cols_bias(a, w, c_ref, active.data(), bias.data(), /*relu=*/true,
                    /*pack_id=*/0);

  const std::uint64_t id = new_pack_id();
  const auto run = [&](std::uint64_t pack_id) {
    c.zero();
    gemm_nt_cols_bias(a, w, c, active.data(), bias.data(), /*relu=*/true,
                      pack_id);
  };
  const auto matches_ref = [&] {
    return std::memcmp(c_ref.data(), c.data(),
                       sizeof(float) * static_cast<std::size_t>(c.numel())) == 0;
  };

  const long saved_limit = pack_cache_limit_mb();
  bool bitwise = true;

  // Cold: flush before every rep so each call pays a full pack (miss).
  flush_pack_cache();
  run(id);
  bitwise = bitwise && matches_ref();
  const double cold_s = median_seconds(reps, [&] {
    flush_pack_cache();
    run(id);
  });

  // Warm: one packing call, then every timed rep hits the cache.
  flush_pack_cache();
  run(id);
  bitwise = bitwise && matches_ref();
  const double warm_s = median_seconds(reps, [&] { run(id); });
  bitwise = bitwise && matches_ref();

  // Off: limit 0 disables the cache entirely (pack per call, no lookups).
  set_pack_cache_limit_mb(0);
  run(id);
  bitwise = bitwise && matches_ref();
  const double off_s = median_seconds(reps, [&] { run(id); });
  set_pack_cache_limit_mb(saved_limit);

  PackRow row;
  row.m = m;
  row.k = k;
  row.n = n;
  row.cold_ns = cold_s * 1e9;
  row.warm_ns = warm_s * 1e9;
  row.off_ns = off_s * 1e9;
  row.warm_speedup = cold_s / warm_s;
  row.bitwise = bitwise;
  return row;
}

void run_packcache_sweep() {
  // Dense-head shapes from the paper models (x (m x k) * w^T, w is (n x k)):
  // small m is the serving case where packing dominates the GEMM itself.
  const struct { int m, k, n; } shapes[] = {
      {1, 400, 1024},    // lenet3c1l dense head, single request
      {4, 400, 1024},    // small serving micro-batch
      {128, 400, 1024},  // full training-size batch (pack cost amortized)
      {1, 512, 128},     // classifier tail, single request
  };
  int reps = 7;
  if (const char* e = std::getenv("STEPPING_BENCH_REPS")) {
    reps = std::max(1, std::atoi(e));
  }
  std::vector<PackRow> rows;
  std::printf("pack-cache sweep: cold vs warm vs disabled (reps=%d)\n", reps);
  for (const auto& s : shapes) {
    const PackRow row = packcache_shape(s.m, s.k, s.n, reps);
    rows.push_back(row);
    std::printf(
        "packcache m=%d k=%d n=%d cold=%.0fns warm=%.0fns off=%.0fns "
        "warm_speedup=%.2fx %s\n",
        row.m, row.k, row.n, row.cold_ns, row.warm_ns, row.off_ns,
        row.warm_speedup, row.bitwise ? "bitwise=ok" : "bitwise=MISMATCH");
  }

  if (std::FILE* f = std::fopen("BENCH_packcache.json", "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PackRow& r = rows[i];
      std::fprintf(f,
                   "  {\"isa\": \"%s\", \"m\": %d, \"k\": %d, \"n\": %d, "
                   "\"cold_ns\": %.1f, \"warm_ns\": %.1f, \"off_ns\": %.1f, "
                   "\"warm_speedup\": %.3f, \"bitwise\": %s}%s\n",
                   isa_tier_name(isa_tier()), r.m, r.k, r.n, r.cold_ns,
                   r.warm_ns, r.off_ns,
                   r.warm_speedup, r.bitwise ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote BENCH_packcache.json (%zu rows)\n", rows.size());
  }
}

// ---------------------------------------------------------------------------
// Int8 GEMM sweep (ISSUE 7 acceptance: the int8 path beats the fp32 blocked
// path on the paper deep-k shapes; every provider's i32 accumulators are
// bit-identical to the scalar reference).
//
// The timed int8 path is the per-call work a serving forward actually pays
// with a warm pack cache: quantize activations + u8 x i8 GEMM + fp32 dequant.
// Weight quantization/packing is one-time (cached per pack_id) and excluded,
// matching the fp32 side's packed-panel caching.
// ---------------------------------------------------------------------------

struct I8Row {
  int m, k, n;
  double fp32_ns, int8_ns, speedup, int8_gops;
  bool parity;
};

I8Row i8_shape(int m, int k, int n, int reps) {
  Rng rng(44);
  // Generate Wt (n x k, the Dense/Conv2d layout) and derive the fp32 GEMM's
  // B = Wt^T so both paths compute the same m x k x n contraction.
  Tensor a({m, k}), wt({n, k}), b({k, n}), c_fp({m, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(wt, 0.0f, 1.0f, rng);
  // Post-ReLU-like activations (the int8 layers' serving case): non-negative,
  // with the same ~20% exact zeros as the fp32 sweep.
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] = pa[i] < 0 ? -pa[i] : pa[i];
  for (std::int64_t i = 0; i < a.numel(); i += 5) pa[i] = 0.0f;
  const float* pw = wt.data();
  float* pb = b.data();
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) pb[i * n + j] = pw[j * k + i];
  }

  const double fp_s = median_seconds(reps, [&] { gemm(a, b, c_fp); });

  quant::WeightQuant wq;
  quant::quantize_weights_per_channel(wt.data(), n, k, &wq);
  float absmax = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) absmax = std::max(absmax, pa[i]);
  const quant::ActQuant aq = quant::activation_params(absmax, /*nonneg=*/true);
  const int k4 = i8gemm_k4(k);

  const I8GemmKernel& kern = i8gemm_kernel();
  const I8GemmKernel& ref = i8gemm_ref_kernel();
  std::vector<std::int8_t> packed(i8gemm_packed_bytes(k, n, kern.nr));
  std::vector<std::int8_t> packed_ref(i8gemm_packed_bytes(k, n, ref.nr));
  i8gemm_pack(wq.q.data(), k, n, kern.nr, packed.data());
  i8gemm_pack(wq.q.data(), k, n, ref.nr, packed_ref.data());

  std::vector<std::uint8_t> a8(static_cast<std::size_t>(m) * k4);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(m) * n);
  std::vector<std::int32_t> acc_ref(static_cast<std::size_t>(m) * n);
  quant::quantize_activations(a.data(), m, k, k4, aq, a8.data());
  i8gemm_run(kern, a8.data(), m, k, packed.data(), n, nullptr, acc.data());
  i8gemm_run(ref, a8.data(), m, k, packed_ref.data(), n, nullptr,
             acc_ref.data());
  const bool parity =
      std::memcmp(acc.data(), acc_ref.data(),
                  sizeof(std::int32_t) * acc.size()) == 0;

  std::vector<float> bias(static_cast<std::size_t>(n), 0.0f);
  std::vector<unsigned char> active(static_cast<std::size_t>(n), 1);
  Tensor y({m, n});
  const double i8_s = median_seconds(reps, [&] {
    quant::quantize_activations(a.data(), m, k, k4, aq, a8.data());
    i8gemm_run(kern, a8.data(), m, k, packed.data(), n, nullptr, acc.data());
    quant::dequantize_bias(acc.data(), m, n, aq, wq, active.data(),
                           bias.data(), /*relu=*/false, y.data());
  });

  I8Row row;
  row.m = m;
  row.k = k;
  row.n = n;
  row.fp32_ns = fp_s * 1e9;
  row.int8_ns = i8_s * 1e9;
  row.speedup = fp_s / i8_s;
  row.int8_gops = 2.0 * m * k * n / i8_s * 1e-9;
  row.parity = parity;
  return row;
}

void run_i8_sweep() {
  const struct { int m, k, n; } shapes[] = {
      {128, 400, 1024},  // lenet3c1l dense head, batch 128
      {64, 27, 1024},    // conv1 3x3x3 -> 64 units over 32x32 output
      {128, 576, 256},   // mid conv, 64ch 3x3 patch
      {256, 1152, 64},   // late conv, 128ch 3x3 patch (deep-k serving shape)
      {10, 512, 128},    // classifier tail
      {65, 129, 33},     // odd non-multiple-of-panel shape
  };
  int reps = 7;
  if (const char* e = std::getenv("STEPPING_BENCH_REPS")) {
    reps = std::max(1, std::atoi(e));
  }
  const I8GemmKernel& kern = i8gemm_kernel();
  // CI's isa-matrix job greps this line (provider must match the tier pin).
  std::printf("i8 sweep isa=%s provider=%s (reps=%d)\n",
              isa_tier_name(isa_tier()), kern.name, reps);
  std::vector<I8Row> rows;
  bool all_parity = true;
  for (const auto& s : shapes) {
    const I8Row row = i8_shape(s.m, s.k, s.n, reps);
    rows.push_back(row);
    all_parity = all_parity && row.parity;
    std::printf(
        "i8 m=%d k=%d n=%d fp32=%.0fns int8=%.0fns speedup=%.2fx gops=%.2f "
        "%s\n",
        row.m, row.k, row.n, row.fp32_ns, row.int8_ns, row.speedup,
        row.int8_gops, row.parity ? "acc=ok" : "acc=MISMATCH");
  }
  // CI greps this exact line: scalar vs active provider accumulator parity.
  std::printf("i8 parity=%s\n", all_parity ? "ok" : "MISMATCH");

  if (std::FILE* f = std::fopen("BENCH_int8.json", "w")) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const I8Row& r = rows[i];
      std::fprintf(f,
                   "  {\"isa\": \"%s\", \"provider\": \"%s\", \"m\": %d, "
                   "\"k\": %d, \"n\": %d, \"fp32_ns\": %.1f, "
                   "\"int8_ns\": %.1f, \"speedup\": %.3f, "
                   "\"int8_gops\": %.3f, \"parity\": %s}%s\n",
                   isa_tier_name(isa_tier()), kern.name, r.m, r.k, r.n,
                   r.fp32_ns, r.int8_ns, r.speedup, r.int8_gops,
                   r.parity ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote BENCH_int8.json (%zu rows)\n", rows.size());
  }
}

// ---------------------------------------------------------------------------
// Transposed activation-quantization gather (ISSUE 9): the int8 Conv2d path
// quantizes the im2col column matrix (k x m) row-by-row into u8; the scalar
// reference pays one strided load per element, the shipped kernel transposes
// 4x4 blocks in registers (8x8 on the AVX2+ tier, ISSUE 10). Codes must
// match bit-for-bit regardless of the active tier.
// ---------------------------------------------------------------------------

void run_transposed_quant_sweep() {
  const struct { int m, k; } shapes[] = {
      {1024, 27},   // conv1 3x3x3 patches over a 32x32 output
      {1024, 576},  // mid conv, 64ch 3x3 patches
      {256, 1152},  // late conv, 128ch 3x3 patches (deep-k serving shape)
      {961, 75},    // odd spatial extent, 5x5x3 patches
  };
  int reps = 7;
  if (const char* e = std::getenv("STEPPING_BENCH_REPS")) {
    reps = std::max(1, std::atoi(e));
  }
  bool all_match = true;
  for (const auto& s : shapes) {
    Rng rng(45);
    Tensor x({s.k, s.m});
    fill_normal(x, 0.0f, 1.0f, rng);
    const quant::ActQuant aq = quant::activation_params(3.0f, /*nonneg=*/false);
    const int k4 = i8gemm_k4(s.k);
    std::vector<std::uint8_t> q_ref(static_cast<std::size_t>(s.m) * k4);
    std::vector<std::uint8_t> q_vec(static_cast<std::size_t>(s.m) * k4);
    const double ref_s = median_seconds(reps, [&] {
      quant::quantize_activations_transposed_ref(x.data(), s.m, s.k, k4, aq,
                                                 q_ref.data());
    });
    const double vec_s = median_seconds(reps, [&] {
      quant::quantize_activations_transposed(x.data(), s.m, s.k, k4, aq,
                                             q_vec.data());
    });
    const bool match = q_ref == q_vec;
    all_match = all_match && match;
    std::printf(
        "i8 tq isa=%s m=%d k=%d scalar=%.0fns vec=%.0fns speedup=%.2fx %s\n",
        isa_tier_name(isa_tier()), s.m, s.k, ref_s * 1e9, vec_s * 1e9,
        ref_s / vec_s, match ? "codes=ok" : "codes=MISMATCH");
  }
  // CI greps this exact line: vectorized gather vs scalar reference codes.
  std::printf("i8 tq parity=%s\n", all_match ? "ok" : "MISMATCH");
}

}  // namespace
}  // namespace stepping

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  stepping::run_gemm_sweep();
  stepping::run_packcache_sweep();
  stepping::run_i8_sweep();
  stepping::run_transposed_quant_sweep();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
