// Reproduces Table I: per-subnet inference accuracy (A_1..A_4) and MAC
// ratios (M_i/M_t) for LeNet-3C1L/SynthC10, LeNet-5/SynthC10 and
// VGG-16/SynthC100, against the original (unexpanded) network's accuracy.
//
// Shapes to check against the paper (absolute numbers differ — synthetic
// data, scaled widths; see EXPERIMENTS.md):
//   * accuracy grows monotonically (with small jitter) in MACs;
//   * the smallest subnet is already far above chance at ~10-20% MACs;
//   * the largest subnet lands near the original network's accuracy;
//   * M_i/M_t land at or just below the configured budgets.
#include <cstdio>

#include "common.h"
#include "util/table.h"

using namespace stepping;
using namespace stepping::bench;

namespace {

struct PaperRow {
  const char* network;
  const char* dataset;
  double orig;
  double acc[4];
  double mac[4];
};

// The paper's Table I, for side-by-side shape comparison.
constexpr PaperRow kPaper[] = {
    {"LeNet-3C1L", "Cifar10", 83.36, {68.50, 77.38, 79.81, 80.40},
     {9.65, 29.55, 48.62, 78.52}},
    {"LeNet-5", "Cifar10", 74.96, {51.80, 59.56, 68.64, 72.03},
     {13.64, 26.54, 55.07, 82.74}},
    {"VGG-16", "Cifar100", 70.32, {63.26, 68.19, 68.19, 68.14},
     {15.97, 32.54, 47.39, 67.78}},
};

}  // namespace

int main() {
  const BenchScale scale = bench_scale();
  const char* models[] = {"lenet3c1l", "lenet5", "vgg16"};
  // Optional filter for calibration runs: STEPPING_MODELS=lenet5,vgg16.
  const std::string filter = env_or("STEPPING_MODELS", "");

  Table table({"Network", "Dataset", "Orig.Acc", "Teacher", "A1", "M1/Mt",
               "A2", "M2/Mt", "A3", "M3/Mt", "A4", "M4/Mt", "secs"});
  Table paper_table({"Network", "Dataset", "Orig.Acc", "A1", "M1/Mt", "A2",
                     "M2/Mt", "A3", "M3/Mt", "A4", "M4/Mt"});

  for (int mi = 0; mi < 3; ++mi) {
    if (!filter.empty() && filter.find(models[mi]) == std::string::npos) {
      continue;
    }
    const ExperimentSpec spec = spec_for(models[mi], scale);
    print_banner("table1", spec);
    PipelineOptions opts;
    opts.train_reference = true;
    const PipelineResult r = run_steppingnet(spec, opts);

    std::vector<std::string> row = {spec.model, spec.dataset,
                                    Table::fmt_pct(r.orig_acc),
                                    Table::fmt_pct(r.teacher_acc)};
    for (std::size_t i = 0; i < 4; ++i) {
      row.push_back(Table::fmt_pct(r.acc[i]));
      row.push_back(Table::fmt_pct(r.mac_frac[i]));
    }
    row.push_back(Table::fmt(r.seconds, 1));
    table.add_row(row);

    const PaperRow& p = kPaper[mi];
    std::vector<std::string> prow = {p.network, p.dataset,
                                     Table::fmt(p.orig, 2) + "%"};
    for (int i = 0; i < 4; ++i) {
      prow.push_back(Table::fmt(p.acc[i], 2) + "%");
      prow.push_back(Table::fmt(p.mac[i], 2) + "%");
    }
    paper_table.add_row(prow);
  }

  table.print("\n== Table I (reproduced; synthetic data, scaled widths) ==");
  table.write_csv("bench_table1.csv");
  paper_table.print("\n== Table I (paper reference values) ==");
  std::printf("\nCSV written to bench_table1.csv\n");
  return 0;
}
