// Shared harness for the paper-reproduction benchmarks (Table I, Fig. 6-8).
//
// Each bench binary assembles ExperimentSpecs, runs the SteppingNet pipeline
// (and/or baselines) and prints the same rows/series the paper reports.
// STEPPING_SCALE=quick|full|paper controls dataset size, width multiplier
// and iteration counts; `paper` matches the paper's construction counts
// (N_t=300, m=100-250) and is CPU-hours scale.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/config.h"
#include "core/stepping_net.h"
#include "data/dataset.h"
#include "util/env.h"

namespace stepping::bench {

struct ExperimentSpec {
  std::string model = "lenet3c1l";   // lenet3c1l | lenet5 | vgg16
  std::string dataset = "c10";       // c10 | c100
  double expansion = 1.8;
  std::vector<double> budgets = {0.10, 0.30, 0.50, 0.85};

  // Scale knobs (filled by apply_scale).
  double width_mult = 0.25;
  int train_per_class = 120;
  int test_per_class = 40;
  int batch_size = 32;
  int pretrain_epochs = 5;
  int distill_epochs = 3;
  int batches_per_iter = 3;   // m
  int max_iters = 50;         // N_t
  double lr = 0.05;
  std::uint64_t seed = 42;
  /// Per-spec dataset difficulty override (0 = preset default). Used to keep
  /// each network in the paper's regime: accuracy well below saturation with
  /// a visible capacity gradient.
  double noise_override = 0.0;
};

/// The paper's per-network spec (model, dataset, expansion, budgets) with
/// scale-dependent knobs for the current STEPPING_SCALE.
ExperimentSpec spec_for(const std::string& model, BenchScale scale);

struct PipelineResult {
  std::vector<double> acc;       ///< per-subnet test accuracy
  std::vector<double> mac_frac;  ///< per-subnet M_i / M_t
  double orig_acc = 0.0;         ///< unexpanded original net (Table I col 3)
  double teacher_acc = 0.0;      ///< expanded pretrained net
  ConstructionReport report;
  double seconds = 0.0;
  /// The trained model, kept when PipelineOptions::keep_network is set
  /// (benches that post-process the model, e.g. the adaptive sweep).
  std::unique_ptr<SteppingNet> net;
};

struct PipelineOptions {
  bool suppression = true;       ///< beta LR-suppression (Fig. 8 ablation)
  bool distillation = true;      ///< KD retraining (Fig. 8 ablation)
  bool train_reference = false;  ///< also train the unexpanded original
  /// Hook applied to the SteppingConfig before construction (further
  /// ablations: selection criterion, alpha ladder, pruning semantics, ...).
  std::function<void(SteppingConfig&)> tweak_config;
  /// Keep the trained SteppingNet in PipelineResult::net.
  bool keep_network = false;
};

/// Full SteppingNet pipeline: data -> reference MACs -> pretrain ->
/// construct -> distill -> evaluate.
PipelineResult run_steppingnet(const ExperimentSpec& spec,
                               const PipelineOptions& opts = {});

/// Synthetic data split for a spec (c10 or c100 preset).
DataSplit make_data(const ExperimentSpec& spec);

/// MACs of the unexpanded original network for a spec (M_t).
std::int64_t reference_macs(const ExperimentSpec& spec);

/// Print the standard bench banner (scale, spec sizes).
void print_banner(const std::string& bench_name, const ExperimentSpec& spec);

}  // namespace stepping::bench
