// Thread-scaling benchmark for the parallel execution layer (ISSUE 1).
//
// Sweeps the global ThreadPool over 1/2/4/N threads and measures:
//  * forward-pass throughput of the Fig. 6 models (full net and subnet 1,
//    so the speedup is visible on both the full and the stepping path);
//  * raw gemm throughput at a conv-layer-like shape.
// For every thread count the outputs are compared byte-for-byte against the
// single-thread run — the speedup must come with bitwise determinism.
//
// Honours STEPPING_SCALE (quick|full|paper) for model widths/batch and
// STEPPING_BENCH_REPS to override the repetition count (CI smoke runs use 1).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "baselines/any_width.h"
#include "common.h"
#include "core/macs.h"
#include "models/models.h"
#include "tensor/ops.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace stepping::bench {
namespace {

std::vector<int> thread_counts() {
  std::vector<int> counts = {1, 2, 4};
  const int hw = ThreadPool::default_threads();
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());
  return counts;
}

double median_seconds(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void bench_model_forward(const std::string& model, BenchScale scale, int reps) {
  const ExperimentSpec spec = spec_for(model, scale);
  ModelConfig mc;
  mc.classes = spec.dataset == "c100" ? 100 : 10;
  mc.expansion = spec.expansion;
  mc.width_mult = spec.width_mult;
  Network net = build_model(model, mc);
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets;
  for (const double f : spec.budgets) {
    budgets.push_back(static_cast<std::int64_t>(f * 0.5 * full));
  }
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
  const int num_subnets = static_cast<int>(spec.budgets.size());

  Rng rng(spec.seed);
  Tensor x({spec.batch_size, mc.in_channels, mc.in_h, mc.in_w});
  fill_normal(x, 0.0f, 1.0f, rng);

  for (const int subnet : {1, num_subnets}) {
    SubnetContext ctx;
    ctx.subnet_id = subnet;
    Tensor ref;  // single-thread output, the bitwise reference
    double base_ms = 0.0;
    for (const int threads : thread_counts()) {
      ThreadPool::set_global_threads(threads);
      Tensor y = net.forward(x, ctx);  // warm-up + output for parity check
      Tensor scratch;
      const double sec =
          median_seconds(reps, [&] { scratch = net.forward(x, ctx); });
      const char* bitwise = "ok";
      if (threads == 1) {
        ref = y;
        base_ms = sec * 1e3;
      } else if (ref.numel() != y.numel() ||
                 std::memcmp(ref.data(), y.data(),
                             sizeof(float) *
                                 static_cast<std::size_t>(y.numel())) != 0) {
        bitwise = "MISMATCH";
      }
      std::printf(
          "%-16s subnet=%d threads=%d  %6.2f ms/batch  %7.1f img/s  "
          "speedup=%4.2fx  bitwise=%s\n",
          model.c_str(), subnet, threads, sec * 1e3, spec.batch_size / sec,
          base_ms / (sec * 1e3), bitwise);
    }
  }
}

void bench_raw_gemm(int reps) {
  // Conv-layer-like shape: (units x patch) * (patch x spatial).
  const int m = 128, k = 400, n = 1024;
  Rng rng(1);
  Tensor a({m, k}), b({k, n}), c({m, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);
  const double flops = 2.0 * m * k * n;
  double base_ms = 0.0;
  for (const int threads : thread_counts()) {
    ThreadPool::set_global_threads(threads);
    gemm(a, b, c);  // warm-up
    const double sec = median_seconds(reps, [&] { gemm(a, b, c); });
    if (threads == 1) base_ms = sec * 1e3;
    std::printf(
        "gemm %dx%dx%d  threads=%d  %6.2f ms  %6.2f GFLOP/s  speedup=%4.2fx\n",
        m, k, n, threads, sec * 1e3, flops / sec * 1e-9,
        base_ms / (sec * 1e3));
  }
}

}  // namespace
}  // namespace stepping::bench

int main() {
  using namespace stepping;
  using namespace stepping::bench;
  const BenchScale scale = bench_scale();
  const int default_reps = scale == BenchScale::kQuick ? 9 : 21;
  const int reps = static_cast<int>(
      env_or_int("STEPPING_BENCH_REPS", default_reps));
  std::printf("bench_threads  scale=%s  reps=%d  hardware_concurrency=%d  "
              "STEPPING_THREADS=%s\n",
              to_string(scale), reps, ThreadPool::default_threads(),
              env_or("STEPPING_THREADS", "(unset)").c_str());
  bench_raw_gemm(reps);
  for (const std::string model : {"lenet3c1l", "lenet5", "vgg16"}) {
    bench_model_forward(model, scale, reps);
  }
  ThreadPool::set_global_threads(ThreadPool::default_threads());
  return 0;
}
