// Reproduces Fig. 6: accuracy-vs-MACs comparison of SteppingNet against the
// any-width network [13] and the slimmable network [10], five subnets per
// method, on the Table-I networks.
//
// Shape to check against the paper: SteppingNet's curve dominates (or ties)
// both baselines at matched MAC fractions, with the gap largest for the
// smaller subnets where flexible (irregular) structures matter most.
//
// Scale note: quick runs LeNet-3C1L only; full/paper sweep all three
// networks (the comparison is per-network, so this only reduces coverage,
// not validity).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/any_width.h"
#include "baselines/slimmable.h"
#include "common.h"
#include "core/macs.h"
#include "core/train_loops.h"
#include "models/models.h"
#include "util/table.h"

using namespace stepping;
using namespace stepping::bench;

namespace {

const std::vector<double> kFig6Budgets = {0.10, 0.25, 0.45, 0.65, 0.85};

ModelConfig expanded_cfg(const ExperimentSpec& spec) {
  ModelConfig mc;
  mc.classes = spec.dataset == "c100" ? 100 : 10;
  mc.expansion = spec.expansion;
  mc.width_mult = spec.width_mult;
  mc.seed = spec.seed + 7;
  return mc;
}

}  // namespace

int main() {
  const BenchScale scale = bench_scale();
  std::vector<std::string> models = {"lenet3c1l"};
  if (scale != BenchScale::kQuick) {
    models.push_back("lenet5");
    models.push_back("vgg16");
  }

  Table table({"network", "method", "subnet", "MACs/Mt", "test acc"});

  for (const std::string& model : models) {
    ExperimentSpec spec = spec_for(model, scale);
    spec.budgets = kFig6Budgets;
    print_banner("fig6", spec);
    const int n = static_cast<int>(kFig6Budgets.size());
    const DataSplit data = make_data(spec);
    const std::int64_t ref_macs = reference_macs(spec);

    // --- SteppingNet -------------------------------------------------------
    {
      // Training-budget parity: the baselines below train their FIXED final
      // structures for (pretrain + distill) epochs; SteppingNet's structure
      // only exists after construction, so its final-structure training is
      // the retraining phase — give it the same number of epochs there
      // (paper §III-B retrains to convergence).
      ExperimentSpec sspec = spec;
      sspec.distill_epochs = spec.pretrain_epochs + spec.distill_epochs;
      const PipelineResult r = run_steppingnet(sspec);
      for (int i = 0; i < n; ++i) {
        table.add_row({model, "SteppingNet", std::to_string(i + 1),
                       Table::fmt_pct(r.mac_frac[static_cast<std::size_t>(i)]),
                       Table::fmt_pct(r.acc[static_cast<std::size_t>(i)])});
      }
      std::printf("  steppingnet done (%.0fs)\n", r.seconds);
    }

    // --- Any-width [13] ----------------------------------------------------
    {
      AnyWidthConfig cfg;
      cfg.num_subnets = n;
      cfg.mac_budget_frac = kFig6Budgets;
      cfg.reference_macs = ref_macs;
      cfg.sgd.lr = spec.lr;
      AnyWidthNet awn(build_model(model, expanded_cfg(spec)), cfg,
                      spec.seed + 31);
      awn.configure();
      // Joint training for the same number of passes SteppingNet spends on
      // pretraining + distillation.
      awn.train(data.train, spec.pretrain_epochs + spec.distill_epochs,
                spec.batch_size);
      for (int i = 1; i <= n; ++i) {
        table.add_row({model, "AnyWidth", std::to_string(i),
                       Table::fmt_pct(awn.mac_fraction(i)),
                       Table::fmt_pct(awn.accuracy(data.test, i))});
      }
      std::printf("  any-width done\n");
      std::fflush(stdout);
    }

    // --- Slimmable [10] ----------------------------------------------------
    {
      const SlimSpec sspec = slim_spec_for_model(
          model, spec.dataset == "c100" ? 100 : 10, spec.expansion,
          spec.width_mult);
      std::vector<std::int64_t> budgets;
      for (const double f : kFig6Budgets) {
        budgets.push_back(static_cast<std::int64_t>(
            f * static_cast<double>(ref_macs)));
      }
      const auto fracs = solve_slim_fractions(sspec, budgets);
      SlimmableNet slim(sspec, fracs, spec.seed + 41);
      SgdConfig sgd;
      sgd.lr = spec.lr;
      slim.train(data.train, spec.pretrain_epochs + spec.distill_epochs,
                 spec.batch_size, sgd);
      for (int i = 1; i <= n; ++i) {
        table.add_row(
            {model, "Slimmable", std::to_string(i),
             Table::fmt_pct(static_cast<double>(slim.macs(i)) /
                            static_cast<double>(ref_macs)),
             Table::fmt_pct(slim.accuracy(data.test, i))});
      }
      std::printf("  slimmable done\n");
      std::fflush(stdout);
    }
  }

  table.print("\n== Fig. 6 (accuracy vs MACs, three methods) ==");
  table.write_csv("bench_fig6.csv");
  std::printf(
      "\nPaper shape check: SteppingNet >= AnyWidth >= / ~ Slimmable at "
      "matched MACs, largest gaps at small subnets.\nCSV written to "
      "bench_fig6.csv\n");
  return 0;
}
