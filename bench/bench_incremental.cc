// Supporting benchmark (paper Figs. 1/2/5 concept): quantifies the value of
// SteppingNet's computational-reuse property during dynamic subnet
// expansion.
//
// For a 4-subnet nested structure it measures, per expansion step:
//   * MACs executed by the incremental executor vs a from-scratch
//     evaluation of the same subnet (analytic), and
//   * wall time of both paths.
// The cumulative ladder (1 -> 2 -> 3 -> 4) is compared against re-running
// every subnet from scratch — the cost a slimmable-style network would pay.
#include <cstdio>
#include <vector>

#include "baselines/any_width.h"
#include "core/incremental.h"
#include "core/macs.h"
#include "models/models.h"
#include "tensor/ops.h"
#include "util/env.h"
#include "util/table.h"
#include "util/timer.h"

using namespace stepping;

int main() {
  const double width = env_or_double("STEPPING_WIDTH", 0.5);
  ModelConfig mc{.classes = 10, .expansion = 1.8, .width_mult = width};
  Network net = build_lenet3c1l(mc);

  // Nested structure at the Table-I budgets via the prefix solver (the reuse
  // property is structural — training state is irrelevant to this bench).
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets;
  for (const double f : {0.10, 0.30, 0.50, 0.85}) {
    budgets.push_back(static_cast<std::int64_t>(f * 0.55 * full));
  }
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));

  Rng rng(3);
  Tensor x({8, 3, 32, 32});
  fill_normal(x, 0.0f, 1.0f, rng);

  IncrementalExecutor ex(net);
  Table table({"step", "step MACs", "scratch MACs", "MACs saved", "step ms",
               "scratch ms", "speedup"});

  const int reps = 5;
  std::int64_t cumulative = 0, scratch_total = 0;
  for (int sub = 1; sub <= 4; ++sub) {
    // Incremental step timing (re-prime the cache to the previous level
    // before each rep so every rep measures the same step).
    double step_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      ex.reset();
      if (sub > 1) ex.run(x, sub - 1);
      Timer t;
      ex.run(x, sub);
      step_ms += t.milliseconds();
    }
    step_ms /= reps;

    double scratch_ms = 0.0;
    SubnetContext ctx;
    ctx.subnet_id = sub;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      net.forward(x, ctx);
      scratch_ms += t.milliseconds();
    }
    scratch_ms /= reps;

    ex.reset();
    if (sub > 1) ex.run(x, sub - 1);
    ex.run(x, sub);
    const std::int64_t step_macs = ex.last_step_macs();
    const std::int64_t scratch_macs = ex.last_full_macs();
    cumulative += step_macs;
    scratch_total += scratch_macs;

    table.add_row(
        {(sub == 1 ? "fresh->1" : std::to_string(sub - 1) + "->" + std::to_string(sub)),
         std::to_string(step_macs), std::to_string(scratch_macs),
         Table::fmt_pct(1.0 - static_cast<double>(step_macs) /
                                  static_cast<double>(scratch_macs)),
         Table::fmt(step_ms, 2), Table::fmt(scratch_ms, 2),
         Table::fmt(scratch_ms / std::max(step_ms, 1e-9), 2) + "x"});
  }

  table.print("== Incremental step-up reuse (batch of 8 images) ==");
  std::printf(
      "\nfull ladder 1->4: %lld MACs executed incrementally vs %lld if each "
      "level restarted from scratch (%.2fx saved)\n",
      static_cast<long long>(cumulative), static_cast<long long>(scratch_total),
      static_cast<double>(scratch_total) / static_cast<double>(cumulative));
  table.write_csv("bench_incremental.csv");
  return 0;
}
