#include "common.h"

#include <cstdio>

#include "core/macs.h"
#include "core/stepping_net.h"
#include "core/train_loops.h"
#include "data/synthetic.h"
#include "models/models.h"
#include "util/timer.h"

namespace stepping::bench {

ExperimentSpec spec_for(const std::string& model, BenchScale scale) {
  ExperimentSpec s;
  s.model = model;

  // Paper Table I parameters.
  if (model == "lenet3c1l") {
    s.dataset = "c10";
    s.expansion = 1.8;
    s.budgets = {0.10, 0.30, 0.50, 0.85};
  } else if (model == "lenet5") {
    s.dataset = "c10";
    s.expansion = 2.0;
    s.budgets = {0.15, 0.30, 0.60, 0.85};
  } else if (model == "vgg16") {
    s.dataset = "c100";
    s.expansion = 1.8;
    s.budgets = {0.20, 0.40, 0.50, 0.70};
  }

  const bool c100 = s.dataset == "c100";
  switch (scale) {
    case BenchScale::kQuick:
      // LeNet-5 is tiny (1.1M MACs at width 1.0): narrower widths make
      // single conv filters exceed the subnet-1 budget, so it runs at full
      // width even at quick scale. VGG-16 dominates quick wall-clock; 0.12
      // is the narrowest width at which SynthC100 is learnable.
      if (model == "lenet5") {
        s.width_mult = 1.0;
        // At full width LeNet-5 saturates the default SynthC10; raise the
        // noise so subnet capacity differences stay visible (paper regime).
        s.noise_override = 2.8;
      } else if (model == "vgg16") {
        s.width_mult = 0.12;
      } else {
        s.width_mult = 0.25;
      }
      s.train_per_class = c100 ? 16 : 120;
      s.test_per_class = c100 ? 5 : 40;
      s.batch_size = 25;
      s.pretrain_epochs = model == "vgg16" ? 8 : (model == "lenet5" ? 7 : 5);
      s.distill_epochs = model == "lenet5" ? 4 : 2;
      s.batches_per_iter = 3;
      s.max_iters = model == "vgg16" ? 35 : 50;
      break;
    case BenchScale::kFull:
      s.width_mult = model == "vgg16" ? 0.25 : (model == "lenet5" ? 1.0 : 0.5);
      s.train_per_class = c100 ? 40 : 400;
      s.test_per_class = c100 ? 10 : 100;
      s.batch_size = 32;
      s.pretrain_epochs = 10;
      s.distill_epochs = 4;
      s.batches_per_iter = 10;
      s.max_iters = 100;
      break;
    case BenchScale::kPaper:
      s.width_mult = 1.0;
      s.train_per_class = c100 ? 500 : 5000;  // CIFAR-scale
      s.test_per_class = c100 ? 100 : 1000;
      s.batch_size = 64;
      s.pretrain_epochs = 30;
      s.distill_epochs = 10;
      s.batches_per_iter = model == "vgg16" ? 100 : 250;
      s.max_iters = 300;  // the paper's N_t
      break;
  }
  // Override hooks for ad-hoc experimentation.
  s.width_mult = env_or_double("STEPPING_WIDTH", s.width_mult);
  s.pretrain_epochs =
      static_cast<int>(env_or_int("STEPPING_EPOCHS", s.pretrain_epochs));
  return s;
}

DataSplit make_data(const ExperimentSpec& spec) {
  SynthConfig cfg = spec.dataset == "c100"
                        ? synth_cifar100(spec.train_per_class, spec.test_per_class)
                        : synth_cifar10(spec.train_per_class, spec.test_per_class);
  cfg.seed = spec.seed;
  if (spec.noise_override > 0.0) cfg.noise_stddev = spec.noise_override;
  return make_synthetic(cfg);
}

namespace {

ModelConfig model_cfg(const ExperimentSpec& spec, double expansion) {
  ModelConfig mc;
  mc.classes = spec.dataset == "c100" ? 100 : 10;
  mc.expansion = expansion;
  mc.width_mult = spec.width_mult;
  mc.seed = spec.seed + 7;
  return mc;
}

}  // namespace

std::int64_t reference_macs(const ExperimentSpec& spec) {
  Network ref = build_model(spec.model, model_cfg(spec, 1.0));
  return full_macs(ref);
}

PipelineResult run_steppingnet(const ExperimentSpec& spec,
                               const PipelineOptions& opts) {
  Timer timer;
  PipelineResult out;
  const DataSplit data = make_data(spec);

  Network reference = build_model(spec.model, model_cfg(spec, 1.0));
  const std::int64_t ref_macs = full_macs(reference);

  if (opts.train_reference) {
    Sgd ref_sgd(SgdConfig{.lr = spec.lr});
    Rng ref_rng(spec.seed + 13);
    train_plain(reference, data.train, ref_sgd, /*subnet_id=*/1,
                spec.pretrain_epochs, spec.batch_size, ref_rng);
    out.orig_acc = evaluate(reference, data.test, 1);
  }

  Network expanded = build_model(spec.model, model_cfg(spec, spec.expansion));

  SteppingConfig cfg;
  cfg.num_subnets = static_cast<int>(spec.budgets.size());
  cfg.mac_budget_frac = spec.budgets;
  cfg.reference_macs = ref_macs;
  cfg.batches_per_iter = spec.batches_per_iter;
  cfg.max_iters = spec.max_iters;
  cfg.enable_suppression = opts.suppression;
  cfg.enable_distillation = opts.distillation;
  cfg.sgd.lr = spec.lr;
  if (opts.tweak_config) opts.tweak_config(cfg);

  auto sn = std::make_unique<SteppingNet>(std::move(expanded), cfg,
                                          spec.seed + 21);
  sn->pretrain(data.train, spec.pretrain_epochs, spec.batch_size);
  out.teacher_acc = sn->accuracy(data.test, 1);
  out.report = sn->construct(data.train, spec.batch_size);
  sn->distill(data.train, spec.distill_epochs, spec.batch_size);

  for (int i = 1; i <= cfg.num_subnets; ++i) {
    out.acc.push_back(sn->accuracy(data.test, i));
    out.mac_frac.push_back(sn->mac_fraction(i));
  }
  out.seconds = timer.seconds();
  if (opts.keep_network) out.net = std::move(sn);
  return out;
}

void print_banner(const std::string& bench_name, const ExperimentSpec& spec) {
  std::printf(
      "[%s] scale=%s model=%s dataset=%s width_mult=%.2f train=%d "
      "expansion=%.1f\n",
      bench_name.c_str(), to_string(bench_scale()), spec.model.c_str(),
      spec.dataset.c_str(), spec.width_mult,
      spec.train_per_class * (spec.dataset == "c100" ? 100 : 10),
      spec.expansion);
  std::fflush(stdout);
}

}  // namespace stepping::bench
