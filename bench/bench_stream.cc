// Streaming inference benchmark (ISSUE 10): synthetic drifting scenes.
//
// Each stream is a fixed base frame with a small bright patch that drifts
// one pixel per frame — the canonical near-duplicate workload (dashcam,
// fixed security camera, sensor sweep). Every frame is evaluated twice:
//
//  * full:   a from-scratch forward at the top subnet level (what a server
//            without stream state must do), and
//  * stream: stream_delta_forward over the per-stream cached ladder — only
//            dirty tiles + conv receptive-field halos recompute.
//
// The two logits vectors are memcmp'd per frame (the exact-mode bitwise
// contract; any mismatch fails the run), MACs are the analytic counts both
// paths report, and wall-clock per-frame latency is measured for each. A
// final section drives the serve path (STEPPING_STREAM=exact semantics via
// ServeConfig::stream) with the same scenes to time the end-to-end frame
// loop. Results go to BENCH_stream.json; the summary line prints
// `bitwise=ok` for CI to grep, and the process exits non-zero if bitwise
// parity fails or the MAC reduction falls below the 30% acceptance gate.
//
// Honours STEPPING_SCALE (quick|full|paper) for stream/frame counts.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "baselines/any_width.h"
#include "common.h"
#include "core/latency.h"
#include "core/macs.h"
#include "models/models.h"
#include "serve/server.h"
#include "stream/stream.h"
#include "tensor/ops.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace stepping::bench {
namespace {

struct StreamBenchConfig {
  std::string model = "lenet3c1l";
  int classes = 10;
  double expansion = 1.8;
  double width = 0.25;
  int subnets = 4;
  std::uint64_t seed = 42;
  int streams = 0;  ///< 0 = scale default
  int frames = 0;   ///< per stream; 0 = scale default
  int tile = 8;
  int patch = 6;  ///< drifting-patch edge in pixels
};

Network make_model(const StreamBenchConfig& c) {
  ModelConfig mc;
  mc.classes = c.classes;
  mc.expansion = c.expansion;
  mc.width_mult = c.width;
  mc.seed = c.seed + 7;
  Network net = build_model(c.model, mc);
  const std::int64_t full = full_macs(net);
  std::vector<std::int64_t> budgets;
  for (int i = 1; i <= c.subnets; ++i) {
    budgets.push_back(full * i / (c.subnets + 1));
  }
  assign_prefix_subnets(net, solve_prefix_fractions(net, budgets));
  return net;
}

/// Frame f of stream s: the stream's base image with a patch x patch square
/// brightened at a position drifting one pixel per frame (wrapping). Frame
/// f differs from frame f-1 only inside the union of the two patch
/// positions, so consecutive frames are near-duplicates by construction.
Tensor scene_frame(const Tensor& base, int patch, int f) {
  Tensor x = base;  // deep copy
  const int ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int r = f % (h - patch);
  const int c = (2 * f) % (w - patch);
  for (int k = 0; k < ch; ++k) {
    float* plane = x.data() + static_cast<std::int64_t>(k) * h * w;
    for (int rr = r; rr < r + patch; ++rr) {
      for (int cc = c; cc < c + patch; ++cc) plane[rr * w + cc] += 1.0f;
    }
  }
  return x;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct PathStats {
  std::vector<double> frame_ms;
  std::int64_t total_macs = 0;
  std::size_t frames = 0;
  double macs_per_frame() const {
    return frames ? static_cast<double>(total_macs) /
                        static_cast<double>(frames)
                  : 0.0;
  }
};

int run(const StreamBenchConfig& c) {
  const BenchScale scale = bench_scale();
  const int streams =
      c.streams > 0 ? c.streams : (scale == BenchScale::kQuick ? 4 : 8);
  const int frames =
      c.frames > 0 ? c.frames : (scale == BenchScale::kQuick ? 24 : 120);

  Network net = make_model(c);
  Network ref = net.clone();
  const int level = c.subnets;
  std::printf(
      "bench_stream  scale=%s  model=%s subnets=%d streams=%d frames=%d "
      "tile=%d patch=%d\n",
      to_string(scale), c.model.c_str(), c.subnets, streams, frames, c.tile,
      c.patch);

  std::vector<Tensor> bases;
  Rng rng(c.seed + 404);
  for (int s = 0; s < streams; ++s) {
    Tensor base({1, net.input_channels(), net.input_h(), net.input_w()});
    fill_normal(base, 0.0f, 1.0f, rng);
    bases.push_back(std::move(base));
  }

  stream::StreamConfig scfg;
  scfg.enabled = true;
  scfg.tile = c.tile;
  const auto sig = stream::network_signature(net);

  PathStats full_stats, stream_stats;
  std::int64_t dirty_tiles = 0, total_tiles = 0, cold_frames = 0;
  long mismatches = 0;
  std::vector<std::unique_ptr<stream::StreamState>> states;
  for (int s = 0; s < streams; ++s) {
    states.push_back(std::make_unique<stream::StreamState>());
  }
  const std::int64_t full_frame_macs = subnet_macs(net, level);
  for (int f = 0; f < frames; ++f) {
    for (int s = 0; s < streams; ++s) {
      const Tensor x = scene_frame(bases[static_cast<std::size_t>(s)],
                                   c.patch, f + s);
      Timer tf;
      SubnetContext ctx;
      ctx.subnet_id = level;
      const Tensor direct = ref.forward(x, ctx);
      full_stats.frame_ms.push_back(tf.milliseconds());
      full_stats.total_macs += full_frame_macs;
      ++full_stats.frames;

      Timer ts;
      const stream::StreamResult r = stream_delta_forward(
          net, *states[static_cast<std::size_t>(s)], x, level, scfg, sig);
      stream_stats.frame_ms.push_back(ts.milliseconds());
      stream_stats.total_macs += r.macs;
      ++stream_stats.frames;
      dirty_tiles += r.dirty_tiles;
      total_tiles += r.total_tiles;
      if (r.cold) ++cold_frames;

      if (r.logits.shape() != direct.shape() ||
          std::memcmp(r.logits.data(), direct.data(),
                      sizeof(float) *
                          static_cast<std::size_t>(direct.numel())) != 0) {
        ++mismatches;
      }
    }
  }

  const double reduction =
      full_stats.macs_per_frame() > 0.0
          ? 100.0 * (1.0 - stream_stats.macs_per_frame() /
                               full_stats.macs_per_frame())
          : 0.0;
  const bool bitwise_ok = mismatches == 0;
  std::printf(
      "full    macs/frame=%.0f  p50=%.3fms p99=%.3fms\n",
      full_stats.macs_per_frame(), percentile(full_stats.frame_ms, 0.50),
      percentile(full_stats.frame_ms, 0.99));
  std::printf(
      "stream  macs/frame=%.0f  p50=%.3fms p99=%.3fms  dirty=%.1f%% "
      "cold=%lld/%zu\n",
      stream_stats.macs_per_frame(), percentile(stream_stats.frame_ms, 0.50),
      percentile(stream_stats.frame_ms, 0.99),
      total_tiles > 0 ? 100.0 * static_cast<double>(dirty_tiles) /
                            static_cast<double>(total_tiles)
                      : 0.0,
      static_cast<long long>(cold_frames), stream_stats.frames);

  // Serve path: the same scenes through serve::Server with streaming on —
  // end-to-end per-frame latency including queueing and planning. Frames of
  // one stream are submitted in order (one in flight per stream).
  double serve_p50 = 0.0, serve_p99 = 0.0;
  std::uint64_t serve_saved = 0;
  {
    serve::ServeConfig cfg;
    cfg.max_subnet = c.subnets;
    cfg.num_workers = 2;
    cfg.max_batch = 4;
    cfg.stream = 1;
    cfg.device = calibrate_device(net, c.subnets);
    serve::Server server(net, cfg);
    std::vector<double> ms;
    for (int f = 0; f < frames; ++f) {
      std::vector<std::future<serve::ServedResult>> futs;
      for (int s = 0; s < streams; ++s) {
        serve::Request req;
        req.input = scene_frame(bases[static_cast<std::size_t>(s)], c.patch,
                                f + s);
        req.stream_id = static_cast<std::uint64_t>(s + 1);
        futs.push_back(server.submit(std::move(req)));
      }
      for (auto& fu : futs) ms.push_back(fu.get().final_ms);
    }
    server.shutdown();
    serve_p50 = percentile(ms, 0.50);
    serve_p99 = percentile(ms, 0.99);
    serve_saved =
        server.metrics().counter("serve_stream_macs_saved_total").value();
    std::printf("serve   frames=%zu  p50=%.3fms p99=%.3fms  macs_saved=%llu\n",
                ms.size(), serve_p50, serve_p99,
                static_cast<unsigned long long>(serve_saved));
  }

  if (std::FILE* f = std::fopen("BENCH_stream.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"config\": {\"model\": \"%s\", \"subnets\": %d, \"streams\": %d, "
        "\"frames\": %d, \"tile\": %d, \"patch\": %d},\n"
        "  \"full\": {\"macs_per_frame\": %.0f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f},\n"
        "  \"stream\": {\"macs_per_frame\": %.0f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"dirty_tile_frac\": %.4f, \"cold_frames\": %lld},\n"
        "  \"serve\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"macs_saved\": %llu},\n"
        "  \"reduction_pct\": %.2f,\n"
        "  \"bitwise\": \"%s\"\n"
        "}\n",
        c.model.c_str(), c.subnets, streams, frames, c.tile, c.patch,
        full_stats.macs_per_frame(), percentile(full_stats.frame_ms, 0.50),
        percentile(full_stats.frame_ms, 0.99), stream_stats.macs_per_frame(),
        percentile(stream_stats.frame_ms, 0.50),
        percentile(stream_stats.frame_ms, 0.99),
        total_tiles > 0 ? static_cast<double>(dirty_tiles) /
                              static_cast<double>(total_tiles)
                        : 0.0,
        static_cast<long long>(cold_frames), serve_p50, serve_p99,
        static_cast<unsigned long long>(serve_saved), reduction,
        bitwise_ok ? "ok" : "FAIL");
    std::fclose(f);
    std::printf("wrote BENCH_stream.json\n");
  }

  // The acceptance gate (ISSUE 10): exact mode must be bitwise identical
  // AND cut at least 30% of MACs/frame on the drifting-scene workload.
  std::printf("stream summary: reduction=%.1f%% mismatches=%ld bitwise=%s\n",
              reduction, mismatches, bitwise_ok ? "ok" : "FAIL");
  if (!bitwise_ok) return 1;
  if (reduction < 30.0) {
    std::fprintf(stderr, "bench_stream: reduction %.1f%% below the 30%% gate\n",
                 reduction);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace stepping::bench

int main(int argc, char** argv) {
  using namespace stepping;
  using namespace stepping::bench;
  const std::vector<std::string> known = {"model",   "classes", "expansion",
                                          "width",   "subnets", "seed",
                                          "streams", "frames",  "tile",
                                          "patch"};
  CliArgs args(argc, argv, known);
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "%s\n", e.c_str());
    return 2;
  }
  StreamBenchConfig c;
  c.model = args.get("model", c.model);
  c.classes = static_cast<int>(args.get_int("classes", c.classes));
  c.expansion = args.get_double("expansion", c.expansion);
  c.width = args.get_double("width", c.width);
  c.subnets = static_cast<int>(args.get_int("subnets", c.subnets));
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  c.streams = static_cast<int>(args.get_int("streams", 0));
  c.frames = static_cast<int>(args.get_int("frames", 0));
  c.tile = static_cast<int>(args.get_int("tile", c.tile));
  c.patch = static_cast<int>(args.get_int("patch", c.patch));
  try {
    return run(c);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_stream: %s\n", e.what());
    return 1;
  }
}
