// Observability overhead benchmark (ISSUE 3).
//
// Proves the tracer's cost model:
//  * a disabled STEPPING_TRACE_SCOPE is a single relaxed load (~1 ns),
//    measured over a tight loop of 1M scopes;
//  * instrumented kernels (gemm) and a full Network::forward run within
//    noise of each other with tracing off vs on, and their outputs stay
//    bitwise identical either way (the determinism contract);
//  * metrics hot-path ops (Counter::inc, Histogram::observe) are a few ns;
//  * reports the event count a traced forward emits, as a sizing guide for
//    STEPPING_TRACE_BUF.
//
// Honours STEPPING_SCALE (quick|full|paper) and STEPPING_BENCH_REPS.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/env.h"
#include "util/timer.h"

namespace stepping::bench {
namespace {

double median_seconds(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    times.push_back(t.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// ns per op over `iters` calls of `fn`.
double ns_per_op(std::int64_t iters, const std::function<void()>& fn) {
  Timer t;
  for (std::int64_t i = 0; i < iters; ++i) fn();
  return t.seconds() * 1e9 / static_cast<double>(iters);
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

int run() {
  const BenchScale scale = bench_scale();
  const int reps = static_cast<int>(
      env_or_int("STEPPING_BENCH_REPS", scale == BenchScale::kQuick ? 5 : 15));
  const std::string trace_path =
      env_or("TMPDIR", "/tmp") + "/bench_obs_trace.json";
  std::printf("bench_obs scale=%s reps=%d\n", to_string(scale), reps);

  // --- 1. Disabled-path scope cost -------------------------------------
  const std::int64_t scope_iters = 4'000'000;
  const double scope_ns = ns_per_op(scope_iters, [] {
    STEPPING_TRACE_SCOPE("bench.noop");
  });
  std::printf("disabled STEPPING_TRACE_SCOPE: %.2f ns/op\n", scope_ns);

  // --- 2. Metrics hot-path costs ---------------------------------------
  obs::Registry reg;
  obs::Counter& ctr = reg.counter("bench_counter");
  obs::Histogram& hist = reg.histogram("bench_hist");
  std::printf("Counter::inc:       %.2f ns/op\n",
              ns_per_op(4'000'000, [&] { ctr.inc(); }));
  std::printf("Histogram::observe: %.2f ns/op\n",
              ns_per_op(4'000'000, [&] { hist.observe(1.5); }));

  // --- 3. Instrumented gemm, tracing off vs on -------------------------
  const int m = 256, k = 256, n = 256;
  Rng rng(123);
  Tensor a({m, k}), b({k, n}), c_off({m, n}), c_on({m, n});
  fill_normal(a, 0.0f, 1.0f, rng);
  fill_normal(b, 0.0f, 1.0f, rng);

  const double gemm_off =
      median_seconds(reps, [&] { gemm(a, b, c_off, /*accumulate=*/false); });
  obs::trace_start(trace_path);
  const double gemm_on =
      median_seconds(reps, [&] { gemm(a, b, c_on, /*accumulate=*/false); });
  obs::trace_stop();
  const bool gemm_parity = bitwise_equal(c_off, c_on);
  std::printf(
      "gemm %dx%dx%d: off=%.3f ms  on=%.3f ms  overhead=%+.2f%%  parity=%s\n",
      m, k, n, gemm_off * 1e3, gemm_on * 1e3,
      100.0 * (gemm_on - gemm_off) / gemm_off, gemm_parity ? "ok" : "FAIL");

  // --- 4. Full forward pass, tracing off vs on -------------------------
  ModelConfig mc;
  mc.classes = 10;
  mc.width_mult = scale == BenchScale::kQuick ? 0.25 : 0.5;
  mc.seed = 7;
  Network net = build_model("lenet3c1l", mc);
  const int batch = scale == BenchScale::kQuick ? 8 : 32;
  Tensor x({batch, mc.in_channels, mc.in_h, mc.in_w});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = 1;

  Tensor y_off, y_on;
  const double fwd_off =
      median_seconds(reps, [&] { y_off = net.forward(x, ctx); });
  obs::trace_start(trace_path);
  const double fwd_on =
      median_seconds(reps, [&] { y_on = net.forward(x, ctx); });
  const obs::TraceStats ts = obs::trace_stop();
  const bool fwd_parity = bitwise_equal(y_off, y_on);
  std::printf(
      "forward lenet3c1l b=%d: off=%.3f ms  on=%.3f ms  overhead=%+.2f%%  "
      "parity=%s\n",
      batch, fwd_off * 1e3, fwd_on * 1e3,
      100.0 * (fwd_on - fwd_off) / fwd_off, fwd_parity ? "ok" : "FAIL");
  std::printf("traced forward: %zu events (%zu dropped), %.1f events/pass\n",
              ts.events, ts.dropped,
              static_cast<double>(ts.events) / reps);

  std::remove(trace_path.c_str());
  return (gemm_parity && fwd_parity) ? 0 : 1;
}

}  // namespace
}  // namespace stepping::bench

int main() { return stepping::bench::run(); }
