// Ablation benchmark for the design decisions DESIGN.md §6 calls out (these
// go beyond the paper's Fig. 8, which only ablates suppression and KD):
//
//   paper-default   Eq.-3 gradient importance, alpha-ladder x1.5,
//                   non-permanent pruning with revival on move
//   magnitude-sel   mover ranks units by mean |w| instead of Eq. 3
//   flat-alpha      alpha_k = 1 for all k (no larger-subnet emphasis)
//   permanent-prune pruned weights never revive; no revival on move
//
// Shape to check: the paper-default configuration should match or beat each
// ablated variant, with the selection criterion mattering most for the
// small subnets.
#include <cstdio>

#include "common.h"
#include "util/table.h"

using namespace stepping;
using namespace stepping::bench;

int main() {
  const BenchScale scale = bench_scale();

  struct Variant {
    const char* name;
    std::function<void(SteppingConfig&)> tweak;
  };
  const Variant variants[] = {
      {"paper-default", {}},
      {"magnitude-sel",
       [](SteppingConfig& c) {
         c.selection = SelectionCriterion::kWeightMagnitude;
       }},
      {"flat-alpha", [](SteppingConfig& c) { c.alpha_growth = 1.0; }},
      {"permanent-prune",
       [](SteppingConfig& c) {
         c.permanent_pruning = true;
         c.revive_on_move = false;
       }},
  };

  Table table({"variant", "A1", "A2", "A3", "A4", "budgets met", "secs"});
  for (const Variant& v : variants) {
    ExperimentSpec spec = spec_for("lenet3c1l", scale);
    print_banner(std::string("ablation:") + v.name, spec);
    PipelineOptions opts;
    opts.tweak_config = v.tweak;
    const PipelineResult r = run_steppingnet(spec, opts);
    std::vector<std::string> row = {v.name};
    for (const double a : r.acc) row.push_back(Table::fmt_pct(a));
    row.push_back(r.report.budgets_met ? "yes" : "no");
    row.push_back(Table::fmt(r.seconds, 1));
    table.add_row(row);
  }

  table.print("\n== Design-decision ablations (LeNet-3C1L / SynthC10) ==");
  table.write_csv("bench_ablation.csv");
  std::printf(
      "\nShape check: paper-default >= each ablated variant, largest gaps on "
      "the small subnets.\n");
  return 0;
}
