#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace stepping {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

void init_from_env() {
  if (const char* e = std::getenv("STEPPING_LOG")) {
    g_level.store(static_cast<int>(parse_log_level(e)));
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load());
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace detail

}  // namespace stepping
