#include "util/env.h"

#include <cstdlib>

namespace stepping {

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

long env_or_int(const std::string& name, long fallback) {
  const std::string v = env_or(name, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return fallback;
  return parsed;
}

double env_or_double(const std::string& name, double fallback) {
  const std::string v = env_or(name, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') return fallback;
  return parsed;
}

BenchScale bench_scale() {
  const std::string s = env_or("STEPPING_SCALE", "quick");
  if (s == "full") return BenchScale::kFull;
  if (s == "paper") return BenchScale::kPaper;
  return BenchScale::kQuick;
}

const char* to_string(BenchScale s) {
  switch (s) {
    case BenchScale::kQuick: return "quick";
    case BenchScale::kFull: return "full";
    case BenchScale::kPaper: return "paper";
  }
  return "?";
}

}  // namespace stepping
