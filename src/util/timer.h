// Wall-clock timing helper.
#pragma once

#include <chrono>

namespace stepping {

/// Monotonic wall-clock stopwatch; starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stepping
