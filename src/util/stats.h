// Streaming statistics (Welford) for multi-seed experiment reporting.
#pragma once

#include <cmath>
#include <cstdint>

namespace stepping {

/// Numerically stable running mean / variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
      min_ = max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
  }

  std::int64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merge another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    n_ = total;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace stepping
