// Host CPU SIMD capability probe (ISSUE 6).
//
// One cpuid pass at first use feeds the runtime ISA dispatch of the GEMM
// micro-kernel family (tensor/gemm_isa.h): the startup tier selection picks
// the widest micro-kernel build the host can actually execute. The probe
// uses __builtin_cpu_supports, which also checks OS xsave state for the AVX
// families, so a flag here means the instructions are safe to run, not just
// architecturally present. On non-x86 targets every flag is false and the
// dispatcher falls back to the scalar tier.
#pragma once

#include <string>

namespace stepping {

struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512vnni = false;
};

/// Probed once, cached for the process lifetime.
const CpuFeatures& cpu_features();

/// Space-separated flag names for logs / CI debugging ("sse2 ssse3 avx fma
/// avx2 avx512f avx512vnni"); "none" when nothing is detected (non-x86
/// builds).
std::string cpu_features_string();

}  // namespace stepping
