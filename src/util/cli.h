// A minimal command-line flag parser for the steppingnet CLI tool.
//
// Supports `--flag value`, `--flag=value`, boolean `--flag`, and positional
// arguments. Unknown flags are collected as errors so typos fail loudly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace stepping {

class CliArgs {
 public:
  /// Parse argv[1..). `known_flags` lists accepted flag names (without the
  /// leading "--").
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& known_flags);

  bool ok() const { return errors_.empty(); }
  const std::vector<std::string>& errors() const { return errors_; }

  /// Positional arguments in order (e.g. the subcommand).
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& flag) const { return flags_.count(flag) > 0; }
  std::string get(const std::string& flag, const std::string& fallback = "") const;
  long get_int(const std::string& flag, long fallback) const;
  double get_double(const std::string& flag, double fallback) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace stepping
