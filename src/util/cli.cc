#include "util/cli.h"

#include <algorithm>
#include <cstdlib>

namespace stepping {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& known_flags) {
  auto known = [&](const std::string& f) {
    return std::find(known_flags.begin(), known_flags.end(), f) !=
           known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (!known(name)) {
      errors_.push_back("unknown flag: --" + name);
      continue;
    }
    flags_[name] = value;
  }
}

std::string CliArgs::get(const std::string& flag,
                         const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& flag, long fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  return (end != it->second.c_str() && *end == '\0') ? v : fallback;
}

double CliArgs::get_double(const std::string& flag, double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != it->second.c_str() && *end == '\0') ? v : fallback;
}

}  // namespace stepping
