#include "util/cpuid.h"

namespace stepping {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.sse2 = __builtin_cpu_supports("sse2");
  f.ssse3 = __builtin_cpu_supports("ssse3");
  f.avx = __builtin_cpu_supports("avx");
  f.fma = __builtin_cpu_supports("fma");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512vnni = __builtin_cpu_supports("avx512vnni");
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe();
  return f;
}

std::string cpu_features_string() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  const auto add = [&out](bool on, const char* name) {
    if (!on) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(f.sse2, "sse2");
  add(f.ssse3, "ssse3");
  add(f.avx, "avx");
  add(f.fma, "fma");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  add(f.avx512vnni, "avx512vnni");
  return out.empty() ? "none" : out;
}

}  // namespace stepping
