// Minimal leveled logger used throughout the library.
//
// The global level is controlled programmatically (set_log_level) or through
// the STEPPING_LOG environment variable ("debug", "info", "warn", "error",
// "off"). Logging is line-buffered to stderr so it interleaves sanely with
// benchmark table output on stdout.
#pragma once

#include <sstream>
#include <string>

namespace stepping {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse a level name; unknown names map to kInfo.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail

}  // namespace stepping

#define STEPPING_LOG(level)                                       \
  if (static_cast<int>(level) < static_cast<int>(::stepping::log_level())) \
    ;                                                             \
  else                                                            \
    ::stepping::detail::LogStream(level)

#define LOG_DEBUG STEPPING_LOG(::stepping::LogLevel::kDebug)
#define LOG_INFO STEPPING_LOG(::stepping::LogLevel::kInfo)
#define LOG_WARN STEPPING_LOG(::stepping::LogLevel::kWarn)
#define LOG_ERROR STEPPING_LOG(::stepping::LogLevel::kError)
