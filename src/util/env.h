// Environment-variable driven configuration knobs.
//
// Every benchmark honours STEPPING_SCALE so that `for b in build/bench/*`
// finishes quickly by default while a full-fidelity run remains one env var
// away:
//   STEPPING_SCALE=quick   (default) minutes-scale runs on one CPU core
//   STEPPING_SCALE=full    larger datasets / more iterations
//   STEPPING_SCALE=paper   the paper's iteration counts (hours on CPU)
#pragma once

#include <string>

namespace stepping {

/// Value of an environment variable, or `fallback` when unset/empty.
std::string env_or(const std::string& name, const std::string& fallback);

/// Integer env var with fallback; non-numeric values return the fallback.
long env_or_int(const std::string& name, long fallback);

/// Double env var with fallback; non-numeric values return the fallback.
double env_or_double(const std::string& name, double fallback);

enum class BenchScale { kQuick, kFull, kPaper };

/// Parse STEPPING_SCALE. Unknown values map to kQuick.
BenchScale bench_scale();

/// Human-readable name of a scale.
const char* to_string(BenchScale s);

}  // namespace stepping
