// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (weight init, data synthesis,
// shuffling, augmentation) draw from an explicitly seeded Rng so that every
// experiment is bit-reproducible across runs on the same platform.
#pragma once

#include <cstdint>
#include <vector>

namespace stepping {

/// xoshiro256** PRNG seeded through splitmix64.
///
/// Small, fast, and good statistical quality; value-semantic so generators
/// can be copied to fork independent deterministic streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed0123456789abULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& v);

  /// Fork an independent stream (seeded from this stream).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace stepping
