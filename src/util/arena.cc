#include "util/arena.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace stepping {

namespace {

/// First block is big enough for typical conv workspaces so most threads
/// allocate exactly once.
constexpr std::size_t kMinBlockBytes = 256 * 1024;

std::size_t align_up(std::size_t n) {
  return (n + Arena::kAlign - 1) & ~(Arena::kAlign - 1);
}

}  // namespace

Arena::~Arena() {
  for (Block& b : blocks_) delete[] b.raw;
}

Arena& Arena::this_thread() {
  thread_local Arena arena;
  return arena;
}

void Arena::push_block(std::size_t min_size) {
  // Geometric growth over the current capacity bounds the number of blocks
  // (and thus heap allocations) to O(log total) before consolidation.
  const std::size_t size = std::max({align_up(min_size), capacity_, kMinBlockBytes});
  Block b;
  b.raw = new char[size + kAlign];
  b.base = b.raw + (kAlign - reinterpret_cast<std::uintptr_t>(b.raw) % kAlign) % kAlign;
  b.size = size;
  b.used = 0;
  blocks_.push_back(b);
  capacity_ += size;
  ++grow_count_;
  static obs::Counter& grows =
      obs::Registry::global().counter("stepping_arena_grows_total");
  static obs::Gauge& bytes =
      obs::Registry::global().gauge("stepping_arena_bytes");
  grows.inc();
  bytes.max_of(static_cast<std::int64_t>(capacity_));
}

void* Arena::alloc(std::size_t bytes) {
  assert(depth_ > 0 && "Arena::alloc outside any ArenaScope");
  const std::size_t need = align_up(std::max<std::size_t>(bytes, 1));
  if (blocks_.empty() || blocks_.back().used + need > blocks_.back().size) {
    push_block(need);
  }
  Block& b = blocks_.back();
  void* p = b.base + b.used;
  b.used += need;
  live_ += need;
  high_water_ = std::max(high_water_, live_);
  return p;
}

void Arena::consolidate() {
  assert(depth_ == 0);
  if (blocks_.size() <= 1) return;
  for (Block& b : blocks_) delete[] b.raw;
  blocks_.clear();
  capacity_ = 0;
  push_block(high_water_);
}

ArenaScope::ArenaScope(Arena& arena)
    : arena_(arena),
      saved_block_(arena.blocks_.size()),
      saved_used_(arena.blocks_.empty() ? 0 : arena.blocks_.back().used),
      saved_live_(arena.live_) {
  ++arena_.depth_;
}

ArenaScope::~ArenaScope() {
  // Rewind: reset the bump offset of every block chained inside this scope
  // (memory is retained — consolidation at depth 0 merges it, never a
  // per-scope free) and restore the offset of the block that was on top
  // when the scope opened.
  assert(arena_.depth_ > 0);
  for (std::size_t bi = saved_block_; bi < arena_.blocks_.size(); ++bi) {
    arena_.blocks_[bi].used = 0;
  }
  if (saved_block_ > 0) {
    arena_.blocks_[saved_block_ - 1].used = saved_used_;
  }
  arena_.live_ = saved_live_;
  if (--arena_.depth_ == 0) arena_.consolidate();
}

}  // namespace stepping
