#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace stepping {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string Table::fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&]() {
    out << "+";
    for (const auto w : widths) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", to_string().c_str());
  std::fflush(stdout);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) f << ",";
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (const char ch : row[c]) {
          if (ch == '"') quoted += "\"\"";
          else quoted += ch;
        }
        quoted += "\"";
        f << quoted;
      } else {
        f << row[c];
      }
    }
    f << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return true;
}

}  // namespace stepping
