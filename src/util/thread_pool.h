// Fixed-size thread pool with a deterministic chunked parallel_for.
//
// Design constraints (DESIGN.md §6, ISSUE 1):
//  * No work stealing and no dynamic chunk assignment: parallel_for splits
//    [begin, end) into at most `size()` contiguous chunks, so every index is
//    owned by exactly one participant and every output row is written by one
//    thread only. Because each chunk executes the same per-index code in the
//    same order as the serial loop, results are bitwise identical to a serial
//    run for *any* thread count — SteppingNet's exact-reuse invariants
//    (subnet-i activations identical before and after stepping up) survive
//    parallel execution unchanged.
//  * Serial fallback when the pool size is <= 1, the range is a single
//    chunk, or the caller is already inside a parallel region (nested
//    parallel_for runs inline; no deadlock, no oversubscription).
//  * Exceptions thrown by a chunk are captured and the first one is
//    rethrown on the calling thread after all chunks finish.
//
// The global pool is sized from the STEPPING_THREADS environment variable,
// falling back to std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stepping {

class ThreadPool {
 public:
  /// A pool of total concurrency `threads` (the calling thread counts as
  /// one participant, so `threads - 1` workers are spawned). Values <= 1
  /// create no workers: every parallel_for runs serially on the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread); always >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes `body(chunk_begin, chunk_end)` over a static partition of
  /// [begin, end) into at most size() contiguous chunks. The calling thread
  /// executes the first chunk and blocks until all chunks are done.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  /// Process-wide pool used by the tensor kernels. Lazily constructed with
  /// default_threads() on first use.
  static ThreadPool& global();

  /// Replaces the global pool with one of total concurrency `threads`
  /// (bench/test knob; callers must not hold kernels in flight).
  static void set_global_threads(int threads);

  /// STEPPING_THREADS env var if set, otherwise hardware_concurrency().
  static int default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// parallel_for on the global pool.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Minimum number of scalar operations worth scheduling across threads;
/// ranges cheaper than this run serially to avoid synchronization overhead
/// on tiny kernels (the cut-off only affects speed, never results).
inline constexpr std::int64_t kParallelGrainOps = 32 * 1024;

/// parallel_for that runs serially when the total work
/// (end - begin) * cost_per_item falls below kParallelGrainOps.
void parallel_for_cost(std::int64_t begin, std::int64_t end,
                       std::int64_t cost_per_item,
                       const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace stepping
