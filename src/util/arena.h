// Per-thread scratch arena for kernel workspaces (ISSUE 4).
//
// The GEMM packing buffers and the im2col/col2im workspaces used to be
// allocated fresh on every call (a Tensor per conv forward). The arena
// replaces those with a bump allocator that is
//  * per-thread: Arena::this_thread() returns a thread_local instance, so
//    serve workers and pool threads never contend or share pointers;
//  * scoped: ArenaScope opens a LIFO region; every allocation made through
//    the scope is released (pointer-rewind, no free()) when it closes.
//    Scopes nest — a conv layer holds its im2col workspace open while the
//    GEMM underneath opens its own scope for the packing buffer;
//  * high-water sized: the backing memory is never returned between calls.
//    When a scope overflows the current block a larger one is chained, and
//    once the outermost scope closes the chain is consolidated into a
//    single block sized to the high-water mark — steady state is one
//    malloc for the lifetime of the thread, zero allocations per call
//    (asserted by the conv allocation-count tests).
//
// Determinism: the arena hands out uninitialized memory; callers fill every
// byte they read (im2col writes the full column matrix, the GEMM packer
// zero-pads panel tails). Reused memory therefore never leaks state between
// calls into results.
//
// Instrumented: block growth bumps stepping_arena_grows_total and raises
// the stepping_arena_bytes high-water gauge in the global metrics registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stepping {

class Arena {
 public:
  /// Alignment of every returned pointer (cache line / SIMD friendly).
  static constexpr std::size_t kAlign = 64;

  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Total bytes of backing storage currently held.
  std::size_t capacity() const { return capacity_; }

  /// Number of heap allocations made over the arena's lifetime. Stable
  /// grow_count() across calls == the workspace is being reused.
  std::uint64_t grow_count() const { return grow_count_; }

  /// Peak concurrently-live bytes ever requested (what consolidation
  /// sizes the single steady-state block to).
  std::size_t high_water() const { return high_water_; }

  /// Currently open scopes.
  int depth() const { return depth_; }

  /// The calling thread's arena (thread_local; lives until thread exit).
  static Arena& this_thread();

 private:
  friend class ArenaScope;

  struct Block {
    char* raw = nullptr;    ///< unaligned allocation (delete[] this)
    char* base = nullptr;   ///< kAlign-aligned start
    std::size_t size = 0;   ///< usable bytes from base
    std::size_t used = 0;
  };

  void* alloc(std::size_t bytes);
  void push_block(std::size_t min_size);
  /// At depth 0 with more than one block: replace the chain with a single
  /// block of at least high_water() bytes.
  void consolidate();

  std::vector<Block> blocks_;
  std::size_t capacity_ = 0;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t grow_count_ = 0;
  int depth_ = 0;
};

/// RAII allocation region on an Arena. Scopes must close in LIFO order
/// (guaranteed by stack discipline: one scope per C++ scope).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena = Arena::this_thread());
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// Uninitialized, kAlign-aligned, valid until this scope closes.
  void* alloc(std::size_t bytes) { return arena_.alloc(bytes); }
  float* alloc_floats(std::size_t n) {
    return static_cast<float*>(alloc(n * sizeof(float)));
  }

 private:
  Arena& arena_;
  std::size_t saved_block_;  ///< blocks_.size() at open
  std::size_t saved_used_;   ///< used bytes of the then-top block
  std::size_t saved_live_;
};

}  // namespace stepping
