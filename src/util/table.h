// Console table / CSV emission for benchmark harnesses.
//
// Benchmarks print the same rows the paper reports; Table renders them as an
// aligned ASCII table on stdout and optionally mirrors them into a CSV file
// for plotting.
#pragma once

#include <string>
#include <vector>

namespace stepping {

/// An aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 2);

  /// Percentage with a '%' suffix, e.g. fmt_pct(0.685) == "68.50%".
  static std::string fmt_pct(double fraction, int precision = 2);

  /// Render to an aligned ASCII string.
  std::string to_string() const;

  /// Print to stdout with an optional caption line.
  void print(const std::string& caption = "") const;

  /// Write as CSV (header + rows). Returns false if the file cannot be
  /// opened.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stepping
