#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/env.h"

namespace stepping {

namespace {

/// > 0 while the current thread is executing a parallel_for chunk; nested
/// parallel_for calls run inline to avoid deadlocking on a busy pool.
thread_local int tls_parallel_depth = 0;

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

/// Published pointer for the lock-free fast path of ThreadPool::global().
/// Lazy creation races when two threads hit global() concurrently (e.g. two
/// serve workers on first inference), so creation is mutex-guarded and the
/// result is release-published here.
std::atomic<ThreadPool*>& global_published() {
  static std::atomic<ThreadPool*> ptr{nullptr};
  return ptr;
}

std::mutex& global_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  obs::trace_thread_name("pool.worker");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    ++tls_parallel_depth;
    {
      STEPPING_TRACE_SCOPE_CAT("pool", "pool.task");
      task();  // never throws: chunks capture their own exceptions
    }
    --tls_parallel_depth;
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int parts =
      static_cast<int>(std::min<std::int64_t>(static_cast<std::int64_t>(size()), n));
  if (parts <= 1 || tls_parallel_depth > 0) {
    body(begin, end);
    return;
  }

  // Completion state shared with the queued chunks. Lives on this stack
  // frame; the caller does not return until remaining == 0, after which no
  // worker touches it again (the counter decrement is the last access).
  struct Job {
    std::mutex m;
    std::condition_variable cv;
    int remaining;
    std::exception_ptr error;
  } job;
  job.remaining = parts - 1;

  const std::int64_t base = n / parts;
  const std::int64_t rem = n % parts;
  const auto chunk_bounds = [&](int c) {
    const std::int64_t b =
        begin + c * base + std::min<std::int64_t>(c, rem);
    return std::pair<std::int64_t, std::int64_t>(b, b + base + (c < rem ? 1 : 0));
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int c = 1; c < parts; ++c) {
      const auto [cb, ce] = chunk_bounds(c);
      queue_.emplace_back([&job, &body, cb, ce] {
        std::exception_ptr err;
        try {
          body(cb, ce);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> jl(job.m);
        if (err && !job.error) job.error = err;
        if (--job.remaining == 0) job.cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  // The calling thread owns chunk 0.
  const auto [cb0, ce0] = chunk_bounds(0);
  ++tls_parallel_depth;
  try {
    body(cb0, ce0);
  } catch (...) {
    std::lock_guard<std::mutex> jl(job.m);
    if (!job.error) job.error = std::current_exception();
  }
  --tls_parallel_depth;

  std::unique_lock<std::mutex> lock(job.m);
  job.cv.wait(lock, [&job] { return job.remaining == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::global() {
  ThreadPool* fast = global_published().load(std::memory_order_acquire);
  if (fast) return *fast;
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(default_threads());
    global_published().store(slot.get(), std::memory_order_release);
  }
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  // Replacing the pool while other threads run parallel work on it is not
  // supported (callers use this at startup / between test phases); the
  // published pointer is cleared first so stragglers at worst re-lock.
  std::lock_guard<std::mutex> lock(global_mutex());
  global_published().store(nullptr, std::memory_order_release);
  global_slot() = std::make_unique<ThreadPool>(threads);
  global_published().store(global_slot().get(), std::memory_order_release);
}

int ThreadPool::default_threads() {
  const long env = env_or_int("STEPPING_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

void parallel_for_cost(
    std::int64_t begin, std::int64_t end, std::int64_t cost_per_item,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (cost_per_item <= 0 || n * cost_per_item < kParallelGrainOps) {
    body(begin, end);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, body);
}

}  // namespace stepping
