// Int8 quantization core (ISSUE 7).
//
// Scheme (chosen so every int8 GEMM provider is bit-exact, see i8gemm.h):
//
//  * Weights: symmetric per-output-channel i8. For channel j with
//    absmax_j = max_k |w(j,k)|, scale sw_j = absmax_j / 127 and
//    q(j,k) = clamp(round_even(w(j,k) / sw_j), -127, 127). A zero-range
//    channel (absmax_j == 0) gets sw_j = 1 and all-zero codes, so its
//    output degenerates to the bias exactly. -128 is never produced
//    (symmetric range), which the saturation-freedom argument needs.
//  * Activations: asymmetric-offset u8 restricted to [0, 127], per layer
//    AND per subnet level (each level masks a different effective unit set,
//    so ranges differ level to level — quant/calibration.h records them).
//    Non-negative inputs (post-ReLU): zero_point 0, sa = absmax / 127,
//    q = clamp(round_even(x / sa), 0, 127). General inputs: zero_point 64,
//    sa = absmax / 63, q = clamp(round_even(x / sa), -64, 63) + 64.
//    x == 0 always maps exactly to the zero point, so structurally-masked
//    (zeroed) input features contribute exactly 0 after compensation.
//  * Rounding semantics: round-half-to-even (std::nearbyintf under the
//    default FP environment), then saturate to the target range. NaN maps
//    to the zero point (calibrated data should never contain NaN).
//  * Dequantization: y(i,j) = float(acc(i,j) - zp * wsum_j) * (sa * sw_j)
//    + bias_j, with wsum_j = sum_k q(j,k) precomputed at weight-quant time.
//    The identity sum_k (a - zp) * q = acc - zp * wsum makes the u8 offset
//    exact — integer math throughout, one fp32 rounding chain per output,
//    evaluated in this single TU so every provider shares its bits.
#pragma once

#include <cstdint>
#include <vector>

namespace stepping::quant {

/// Round-half-even then saturate to [lo, hi]. `inv_scale` is 1/scale
/// (callers hoist the division); NaN returns `zp`.
int quantize_value(float x, float inv_scale, int zp, int lo, int hi);

/// Per-output-channel symmetric int8 weights of one layer.
struct WeightQuant {
  std::vector<std::int8_t> q;      ///< n x k row-major codes
  std::vector<float> scale;       ///< per-channel sw_j, size n
  std::vector<std::int32_t> wsum; ///< per-channel sum_k q(j,k), size n
};

/// Quantize Wt (n x k row-major, the Dense/Conv2d effective-weight layout)
/// per output channel (row).
void quantize_weights_per_channel(const float* wt, int n, int k,
                                  WeightQuant* out);

/// Per-tensor variant (one scale for the whole matrix) — parity baseline
/// for the degenerate-1-channel tests and accuracy comparisons.
void quantize_weights_per_tensor(const float* wt, int n, int k,
                                 WeightQuant* out);

/// Activation quantization parameters derived from a calibrated range.
struct ActQuant {
  float scale = 1.0f;  ///< sa; 1.0 for a zero range (all codes == zp)
  int zero_point = 0;  ///< 0 (non-negative inputs) or 64 (general)
};

/// Parameters for a calibrated |x| bound. `nonneg` selects the zero_point-0
/// layout (post-ReLU inputs).
ActQuant activation_params(float absmax, bool nonneg);

/// Quantize x (m x k row-major fp32) into out (m x k4 u8), zero-padding
/// columns [k, k4). Values beyond the calibrated range saturate.
void quantize_activations(const float* x, int m, int k, int k4,
                          const ActQuant& aq, std::uint8_t* out);

/// Same, but x is stored transposed (k x m — the im2col column matrix with
/// `m` spatial positions of `k`-deep patches): out(i, p) = q(x(p, i)).
/// The gather is vectorized with in-register block transposes — 4x4 SSE
/// (ISSUE 9), widened to 8x8 AVX2 when the runtime ISA tier allows
/// (ISSUE 10). Codes are bit-exact with the reference below on every input
/// and across tiers: every variant funnels through detail::quantize_row.
void quantize_activations_transposed(const float* x, int m, int k, int k4,
                                     const ActQuant& aq, std::uint8_t* out);

/// Scalar-gather reference implementation of the transposed variant — the
/// parity baseline (tests/quant) and the bench_ops --i8 comparison row.
void quantize_activations_transposed_ref(const float* x, int m, int k, int k4,
                                         const ActQuant& aq,
                                         std::uint8_t* out);

namespace detail {

/// Quantize one contiguous row of `k` floats to u8 codes, zero-padding to
/// `k4`. The SINGLE rounding/packing implementation every gather variant
/// (dense, SSE 4x4, AVX2 8x8) funnels through — bit-exact with
/// quantize_value on every input, so wider gathers can never change codes.
void quantize_row(const float* row, int k, int k4, float inv, int zp,
                  std::uint8_t* dst);

/// AVX2 widening of the transposed gather (ISSUE 10): 8x8 in-register block
/// transposes (unpack + permute2f128) instead of the SSE path's 4x4, halving
/// the shuffle count per element. Only compiled when the toolchain supports
/// -mavx2 (STEPPING_QUANT_HAVE_AVX2); callers go through
/// quantize_activations_transposed, which dispatches on the runtime ISA
/// tier. Requires m >= 8.
void quantize_activations_transposed_avx2(const float* x, int m, int k,
                                          int k4, const ActQuant& aq,
                                          std::uint8_t* out);

}  // namespace detail

/// Dequantize accumulators into y (m x n row-major): for active columns j,
/// y(i,j) = float(acc(i,j) - zp*wsum[j]) * (sa*scale[j]) + bias[j], ReLU
/// optional; inactive columns are written as 0 (callers hand fresh rows).
/// Single compiled instance => bitwise-identical outputs across providers.
void dequantize_bias(const std::int32_t* acc, int m, int n,
                     const ActQuant& aq, const WeightQuant& wq,
                     const unsigned char* col_active, const float* bias,
                     bool relu, float* y);

/// View-based variant over a prepared (cached) weight blob.
void dequantize_bias_view(const std::int32_t* acc, int m, int n,
                          const ActQuant& aq, const float* scale,
                          const std::int32_t* wsum,
                          const unsigned char* col_active, const float* bias,
                          bool relu, float* y);

/// Transposed store for the Conv2d path: acc is (spatial x units) from the
/// GEMM, y is the (units x spatial) output image plane;
/// y(j, i) = dequant(acc(i, j)). Inactive units' rows are written as 0.
void dequantize_bias_transposed(const std::int32_t* acc, int spatial,
                                int units, const ActQuant& aq,
                                const float* scale, const std::int32_t* wsum,
                                const unsigned char* row_active,
                                const float* bias, bool relu, float* y);

}  // namespace stepping::quant
