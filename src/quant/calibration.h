// Activation-range calibration for int8 inference (ISSUE 7).
//
// A calibration pass runs representative inputs through the fp32 forward
// with SubnetContext::calib_record pointing at a CalibrationTable: each
// quantizable layer records the absolute range (and non-negativity) of its
// INPUT tensor, keyed by (layer name, subnet level). The per-level keying
// matters because each subnet masks a different effective unit set, so the
// same layer sees differently-shaped input distributions at every rung of
// the ladder.
//
// Thread-safety: record() is internally locked (calibration is rare and
// cold). find() is lock-free and must only run once recording is finished —
// the serving path builds/receives a finished table before workers start.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "quant/quantize.h"

namespace stepping::quant {

/// Calibrated input statistics of one (layer, subnet level) pair.
struct CalibEntry {
  float absmax = 0.0f;
  bool nonneg = true;  ///< true until a negative input value is observed
  std::uint64_t samples = 0;
};

class CalibrationTable {
 public:
  /// Fold `count` values of layer `name`'s input at subnet `level` into the
  /// table (max of absmax, AND of non-negativity). Locked; callers are the
  /// fp32 layer forwards of a calibration pass.
  void record(const std::string& name, int level, const float* x,
              std::size_t count);

  /// Entry lookup; nullptr when the pair was never calibrated (the layer
  /// then falls back to fp32). Only valid once recording is finished.
  const CalibEntry* find(const std::string& name, int level) const;

  /// Convenience: activation params of a calibrated pair.
  ActQuant params(const CalibEntry& e) const {
    return activation_params(e.absmax, e.nonneg);
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::map<std::pair<std::string, int>, CalibEntry> entries_;
  mutable std::mutex mu_;
};

}  // namespace stepping::quant
