#include "quant/prepared.h"

#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/gemm_kernel.h"
#include "util/arena.h"

namespace stepping::quant {

namespace {

obs::Counter& quant_packs() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_quant_packs_total");
  return c;
}

obs::Counter& quant_forwards() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_quant_int8_forwards_total");
  return c;
}

/// Blob layout (raw bytes inside the float vector): [packed i8 panels]
/// [wsum i32 * n][scale f32 * n], with the i8 region rounded up to a float
/// boundary so the typed views stay 4-byte aligned.
std::size_t packed_floats(int k, int n, int nr) {
  return (i8gemm_packed_bytes(k, n, nr) + sizeof(float) - 1) / sizeof(float);
}

PreparedInt8 view_blob(std::shared_ptr<const std::vector<float>> blob, int n,
                       int k, const I8GemmKernel& kr) {
  PreparedInt8 out;
  const std::size_t pf = packed_floats(k, n, kr.nr);
  out.packed = reinterpret_cast<const std::int8_t*>(blob->data());
  out.wsum = reinterpret_cast<const std::int32_t*>(blob->data() + pf);
  out.scale = blob->data() + pf + n;
  out.kernel = &kr;
  out.n = n;
  out.k = k;
  out.blob = std::move(blob);
  return out;
}

}  // namespace

PreparedInt8 prepare_int8_weights(std::uint64_t pack_id, const float* wt,
                                  int n, int k) {
  const I8GemmKernel& kr = i8gemm_kernel();
  STEPPING_TRACE_SCOPE_CAT("kernel", "quant.prepare");
  if (pack_id != 0) {
    if (auto found = pack_cache_find_kind(pack_id, k, n, /*nc=*/n, kr.id,
                                          /*kind=*/1)) {
      return view_blob(std::move(found), n, k, kr);
    }
  }

  WeightQuant wq;
  quantize_weights_per_channel(wt, n, k, &wq);

  const std::size_t pf = packed_floats(k, n, kr.nr);
  auto blob = std::make_shared<std::vector<float>>(
      pf + 2 * static_cast<std::size_t>(n), 0.0f);
  i8gemm_pack(wq.q.data(), k, n, kr.nr,
              reinterpret_cast<std::int8_t*>(blob->data()));
  std::memcpy(blob->data() + pf, wq.wsum.data(),
              sizeof(std::int32_t) * static_cast<std::size_t>(n));
  std::memcpy(blob->data() + pf + n, wq.scale.data(),
              sizeof(float) * static_cast<std::size_t>(n));
  quant_packs().inc();

  std::shared_ptr<const std::vector<float>> shared = std::move(blob);
  if (pack_id != 0) {
    pack_cache_insert_kind(pack_id, k, n, /*nc=*/n, kr.id, /*kind=*/1, shared);
  }
  return view_blob(std::move(shared), n, k, kr);
}

void int8_dense_forward(const float* x, int m, const PreparedInt8& pw,
                        const ActQuant& aq, const unsigned char* col_active,
                        const float* bias, bool relu, float* y) {
  quant_forwards().inc();
  const int k4 = i8gemm_k4(pw.k);
  ArenaScope ws;
  auto* a = static_cast<std::uint8_t*>(
      ws.alloc(static_cast<std::size_t>(m) * k4));
  quantize_activations(x, m, pw.k, k4, aq, a);
  auto* acc = static_cast<std::int32_t*>(
      ws.alloc(static_cast<std::size_t>(m) * pw.n * sizeof(std::int32_t)));
  i8gemm_run(*pw.kernel, a, m, pw.k, pw.packed, pw.n, col_active, acc);
  dequantize_bias_view(acc, m, pw.n, aq, pw.scale, pw.wsum, col_active, bias,
                       relu, y);
}

void int8_conv_forward(const float* cols, int spatial, const PreparedInt8& pw,
                       const ActQuant& aq, const unsigned char* row_active,
                       const float* bias, bool relu, float* y) {
  quant_forwards().inc();
  const int k4 = i8gemm_k4(pw.k);
  ArenaScope ws;
  auto* a = static_cast<std::uint8_t*>(
      ws.alloc(static_cast<std::size_t>(spatial) * k4));
  quantize_activations_transposed(cols, spatial, pw.k, k4, aq, a);
  auto* acc = static_cast<std::int32_t*>(ws.alloc(
      static_cast<std::size_t>(spatial) * pw.n * sizeof(std::int32_t)));
  i8gemm_run(*pw.kernel, a, spatial, pw.k, pw.packed, pw.n, row_active, acc);
  dequantize_bias_transposed(acc, spatial, pw.n, aq, pw.scale, pw.wsum,
                             row_active, bias, relu, y);
}

}  // namespace stepping::quant
