// AVX2 gather for the transposed activation-quantization path (ISSUE 10).
//
// Compiled as its own translation unit with -mavx2 (see CMakeLists.txt — the
// same per-TU flag idiom as src/tensor's GEMM micro-kernels) so the rest of
// stepping_quant keeps the portable baseline flags. Only the GATHER widens:
// each 8x8 block of the k x m source is loaded with 8 contiguous vector
// loads and transposed in registers (unpack + shuffle + permute2f128),
// replacing 64 strided scalar loads. The rounding/packing still runs through
// detail::quantize_row, the single compiled rounding core, so the emitted
// codes are bit-exact with the SSE 4x4 path and the scalar reference —
// switching ISA tiers can never change int8 results (the cross-provider
// determinism contract in quantize.h).
#include "quant/quantize.h"

#if defined(STEPPING_QUANT_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <vector>

namespace stepping::quant::detail {

namespace {

/// Transpose eight __m256 rows in place: on exit r[j] holds the j-th column
/// of the original 8x8 block. 8 unpacks + 8 shuffles + 8 lane permutes.
inline void transpose8x8(__m256& r0, __m256& r1, __m256& r2, __m256& r3,
                         __m256& r4, __m256& r5, __m256& r6, __m256& r7) {
  const __m256 u0 = _mm256_unpacklo_ps(r0, r1);
  const __m256 u1 = _mm256_unpackhi_ps(r0, r1);
  const __m256 u2 = _mm256_unpacklo_ps(r2, r3);
  const __m256 u3 = _mm256_unpackhi_ps(r2, r3);
  const __m256 u4 = _mm256_unpacklo_ps(r4, r5);
  const __m256 u5 = _mm256_unpackhi_ps(r4, r5);
  const __m256 u6 = _mm256_unpacklo_ps(r6, r7);
  const __m256 u7 = _mm256_unpackhi_ps(r6, r7);
  const __m256 s0 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s1 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s2 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s3 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s4 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s5 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s6 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s7 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(3, 2, 3, 2));
  r0 = _mm256_permute2f128_ps(s0, s4, 0x20);
  r1 = _mm256_permute2f128_ps(s1, s5, 0x20);
  r2 = _mm256_permute2f128_ps(s2, s6, 0x20);
  r3 = _mm256_permute2f128_ps(s3, s7, 0x20);
  r4 = _mm256_permute2f128_ps(s0, s4, 0x31);
  r5 = _mm256_permute2f128_ps(s1, s5, 0x31);
  r6 = _mm256_permute2f128_ps(s2, s6, 0x31);
  r7 = _mm256_permute2f128_ps(s3, s7, 0x31);
}

}  // namespace

void quantize_activations_transposed_avx2(const float* x, int m, int k,
                                          int k4, const ActQuant& aq,
                                          std::uint8_t* out) {
  const float inv = 1.0f / aq.scale;
  const int zp = aq.zero_point;
  std::vector<float> tmp(8 * static_cast<std::size_t>(k));
  float* rows[8];
  for (int j = 0; j < 8; ++j) rows[j] = tmp.data() + j * static_cast<std::size_t>(k);
  int i = 0;
  for (; i + 8 <= m; i += 8) {
    const float* col = x + i;
    int p = 0;
    for (; p + 8 <= k; p += 8) {
      const float* blk = col + static_cast<std::size_t>(p) * m;
      __m256 r0 = _mm256_loadu_ps(blk);
      __m256 r1 = _mm256_loadu_ps(blk + static_cast<std::size_t>(m));
      __m256 r2 = _mm256_loadu_ps(blk + 2 * static_cast<std::size_t>(m));
      __m256 r3 = _mm256_loadu_ps(blk + 3 * static_cast<std::size_t>(m));
      __m256 r4 = _mm256_loadu_ps(blk + 4 * static_cast<std::size_t>(m));
      __m256 r5 = _mm256_loadu_ps(blk + 5 * static_cast<std::size_t>(m));
      __m256 r6 = _mm256_loadu_ps(blk + 6 * static_cast<std::size_t>(m));
      __m256 r7 = _mm256_loadu_ps(blk + 7 * static_cast<std::size_t>(m));
      transpose8x8(r0, r1, r2, r3, r4, r5, r6, r7);
      _mm256_storeu_ps(rows[0] + p, r0);
      _mm256_storeu_ps(rows[1] + p, r1);
      _mm256_storeu_ps(rows[2] + p, r2);
      _mm256_storeu_ps(rows[3] + p, r3);
      _mm256_storeu_ps(rows[4] + p, r4);
      _mm256_storeu_ps(rows[5] + p, r5);
      _mm256_storeu_ps(rows[6] + p, r6);
      _mm256_storeu_ps(rows[7] + p, r7);
    }
    for (; p < k; ++p) {  // k-tail: one strided source row, 8 scalar stores
      const float* row = col + static_cast<std::size_t>(p) * m;
      for (int j = 0; j < 8; ++j) rows[j][p] = row[j];
    }
    for (int j = 0; j < 8; ++j) {
      quantize_row(rows[j], k, k4, inv, zp,
                   out + static_cast<std::size_t>(i + j) * k4);
    }
  }
  for (; i < m; ++i) {  // m-tail keeps the original column stride
    for (int p = 0; p < k; ++p) {
      rows[0][p] = x[static_cast<std::size_t>(p) * m + i];
    }
    quantize_row(rows[0], k, k4, inv, zp,
                 out + static_cast<std::size_t>(i) * k4);
  }
}

}  // namespace stepping::quant::detail

#endif  // STEPPING_QUANT_HAVE_AVX2
