#include "quant/policy.h"

#include "util/env.h"
#include "util/log.h"

namespace stepping::quant {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
    case Precision::kAuto:
      return "auto";
  }
  return "fp32";
}

bool parse_precision(const std::string& s, Precision* out) {
  if (s == "fp32") {
    *out = Precision::kFp32;
  } else if (s == "int8") {
    *out = Precision::kInt8;
  } else if (s == "auto") {
    *out = Precision::kAuto;
  } else {
    return false;
  }
  return true;
}

Precision precision_from_env() {
  const std::string v = env_or("STEPPING_PRECISION", "");
  if (v.empty()) return Precision::kFp32;
  Precision p = Precision::kFp32;
  if (!parse_precision(v, &p)) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      LOG_WARN << "STEPPING_PRECISION=" << v
               << " is not fp32|int8|auto; using fp32";
    }
  }
  return p;
}

}  // namespace stepping::quant
