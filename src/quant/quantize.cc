#include "quant/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#if defined(STEPPING_QUANT_HAVE_AVX2)
#include "tensor/gemm_isa.h"
#endif

namespace stepping::quant {

int quantize_value(float x, float inv_scale, int zp, int lo, int hi) {
  if (std::isnan(x)) return zp;
  // nearbyintf under the default (never changed in this codebase) FP
  // environment rounds half to even — the documented tie semantics.
  const float r = std::nearbyintf(x * inv_scale);
  // Saturate BEFORE the int cast (out-of-range float->int is UB); +/-inf
  // lands here too.
  if (r >= static_cast<float>(hi - zp)) return hi;
  if (r <= static_cast<float>(lo - zp)) return lo;
  return zp + static_cast<int>(r);
}

namespace {

void quantize_weights(const float* wt, int n, int k, bool per_channel,
                      WeightQuant* out) {
  out->q.assign(static_cast<std::size_t>(n) * k, 0);
  out->scale.assign(static_cast<std::size_t>(n), 1.0f);
  out->wsum.assign(static_cast<std::size_t>(n), 0);

  float tensor_absmax = 0.0f;
  if (!per_channel) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(n) * k; ++i) {
      tensor_absmax = std::max(tensor_absmax, std::fabs(wt[i]));
    }
  }
  for (int j = 0; j < n; ++j) {
    const float* row = wt + static_cast<std::size_t>(j) * k;
    float absmax = tensor_absmax;
    if (per_channel) {
      absmax = 0.0f;
      for (int p = 0; p < k; ++p) absmax = std::max(absmax, std::fabs(row[p]));
    }
    const float sw = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    const float inv = 1.0f / sw;
    out->scale[static_cast<std::size_t>(j)] = sw;
    std::int8_t* qrow = out->q.data() + static_cast<std::size_t>(j) * k;
    std::int32_t sum = 0;
    for (int p = 0; p < k; ++p) {
      const int q = quantize_value(row[p], inv, 0, -127, 127);
      qrow[p] = static_cast<std::int8_t>(q);
      sum += q;
    }
    out->wsum[static_cast<std::size_t>(j)] = sum;
  }
}

}  // namespace

namespace detail {

/// Quantize one contiguous row of `k` floats to u8 codes, zero-padding to
/// `k4`. Bit-exact with quantize_value on every input: _mm_cvtps_epi32
/// rounds half to even under the default FP environment (the same tie rule
/// as nearbyintf), saturation happens in the integer packs before any
/// narrowing cast, and NaN lanes are forced to the zero point. SSE2 is part
/// of the x86-64 baseline, so there is exactly one compiled behavior — the
/// zero cross-provider error bound does not depend on the dispatch tier.
void quantize_row(const float* row, int k, int k4, float inv, int zp,
                  std::uint8_t* dst) {
  int p = 0;
#if defined(__SSE2__)
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128 vlo = _mm_set1_ps(-30000.0f);
  const __m128 vhi = _mm_set1_ps(30000.0f);
  const __m128i vzp = _mm_set1_epi32(zp);
  const __m128i vcap = _mm_set1_epi8(127);
  for (; p + 8 <= k; p += 8) {
    __m128 a = _mm_mul_ps(_mm_loadu_ps(row + p), vinv);
    __m128 b = _mm_mul_ps(_mm_loadu_ps(row + p + 4), vinv);
    const __m128i nan_a = _mm_castps_si128(_mm_cmpunord_ps(a, a));
    const __m128i nan_b = _mm_castps_si128(_mm_cmpunord_ps(b, b));
    // Clamp so cvtps never produces the 0x80000000 indefinite; values this
    // far out saturate to 0/127 either way, and NaN lanes (min/max pass the
    // second operand through) are overwritten with zp below.
    a = _mm_min_ps(_mm_max_ps(a, vlo), vhi);
    b = _mm_min_ps(_mm_max_ps(b, vlo), vhi);
    __m128i qa = _mm_add_epi32(_mm_cvtps_epi32(a), vzp);
    __m128i qb = _mm_add_epi32(_mm_cvtps_epi32(b), vzp);
    qa = _mm_or_si128(_mm_andnot_si128(nan_a, qa), _mm_and_si128(nan_a, vzp));
    qb = _mm_or_si128(_mm_andnot_si128(nan_b, qb), _mm_and_si128(nan_b, vzp));
    // packs saturates epi32->epi16 (range-safe after the clamp), packus
    // floors negatives at 0, and the unsigned min applies the 127 cap.
    const __m128i w = _mm_packs_epi32(qa, qb);
    const __m128i byte = _mm_min_epu8(_mm_packus_epi16(w, w), vcap);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + p), byte);
  }
#endif
  for (; p < k; ++p) {
    dst[p] =
        static_cast<std::uint8_t>(quantize_value(row[p], inv, zp, 0, 127));
  }
  for (int q = k; q < k4; ++q) dst[q] = 0;  // pairs with zero weight pads
}

}  // namespace detail

using detail::quantize_row;

void quantize_weights_per_channel(const float* wt, int n, int k,
                                  WeightQuant* out) {
  quantize_weights(wt, n, k, /*per_channel=*/true, out);
}

void quantize_weights_per_tensor(const float* wt, int n, int k,
                                 WeightQuant* out) {
  quantize_weights(wt, n, k, /*per_channel=*/false, out);
}

ActQuant activation_params(float absmax, bool nonneg) {
  ActQuant aq;
  aq.zero_point = nonneg ? 0 : 64;
  const float steps = nonneg ? 127.0f : 63.0f;
  aq.scale = absmax > 0.0f ? absmax / steps : 1.0f;
  return aq;
}

void quantize_activations(const float* x, int m, int k, int k4,
                          const ActQuant& aq, std::uint8_t* out) {
  const float inv = 1.0f / aq.scale;
  const int zp = aq.zero_point;
  for (int i = 0; i < m; ++i) {
    quantize_row(x + static_cast<std::size_t>(i) * k, k, k4, inv, zp,
                 out + static_cast<std::size_t>(i) * k4);
  }
}

void quantize_activations_transposed_ref(const float* x, int m, int k, int k4,
                                         const ActQuant& aq,
                                         std::uint8_t* out) {
  const float inv = 1.0f / aq.scale;
  const int zp = aq.zero_point;
  // Gather each strided column into a contiguous scratch row so the rounding
  // and packing run through the same vectorized quantize_row as the dense
  // path (one semantics implementation).
  std::vector<float> tmp(static_cast<std::size_t>(k));
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      tmp[static_cast<std::size_t>(p)] = x[static_cast<std::size_t>(p) * m + i];
    }
    quantize_row(tmp.data(), k, k4, inv, zp,
                 out + static_cast<std::size_t>(i) * k4);
  }
}

void quantize_activations_transposed(const float* x, int m, int k, int k4,
                                     const ActQuant& aq, std::uint8_t* out) {
#if defined(STEPPING_QUANT_HAVE_AVX2)
  // 8-wide gather (quantize_avx2.cc, its own -mavx2 TU) when the running CPU
  // selected the AVX2+ tier; codes are identical because the rounding still
  // funnels through detail::quantize_row.
  if (m >= 8 && isa_tier() >= IsaTier::kAvx2) {
    detail::quantize_activations_transposed_avx2(x, m, k, k4, aq, out);
    return;
  }
#endif
#if defined(__SSE2__)
  // The scalar gather is one strided load per element — it, not the
  // rounding, dominates this kernel (bench_ops --i8 measures the gap). Walk
  // 4 output rows at once instead: each 4x4 block of the k x m source is
  // loaded with 4 contiguous loads and transposed in registers
  // (_MM_TRANSPOSE4_PS), turning 16 strided scalar loads into 4 vector
  // loads + shuffles. The scratch rows then run through the same
  // quantize_row as every other path, so the codes stay bit-exact with the
  // reference gather (tests/quant: TransposedGatherMatchesReference).
  if (m >= 4) {
    const float inv = 1.0f / aq.scale;
    const int zp = aq.zero_point;
    std::vector<float> tmp(4 * static_cast<std::size_t>(k));
    float* t0 = tmp.data();
    float* t1 = t0 + k;
    float* t2 = t1 + k;
    float* t3 = t2 + k;
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* col = x + i;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        const float* blk = col + static_cast<std::size_t>(p) * m;
        __m128 r0 = _mm_loadu_ps(blk);
        __m128 r1 = _mm_loadu_ps(blk + m);
        __m128 r2 = _mm_loadu_ps(blk + 2 * static_cast<std::size_t>(m));
        __m128 r3 = _mm_loadu_ps(blk + 3 * static_cast<std::size_t>(m));
        _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
        _mm_storeu_ps(t0 + p, r0);
        _mm_storeu_ps(t1 + p, r1);
        _mm_storeu_ps(t2 + p, r2);
        _mm_storeu_ps(t3 + p, r3);
      }
      for (; p < k; ++p) {
        const float* row = col + static_cast<std::size_t>(p) * m;
        t0[p] = row[0];
        t1[p] = row[1];
        t2[p] = row[2];
        t3[p] = row[3];
      }
      quantize_row(t0, k, k4, inv, zp, out + static_cast<std::size_t>(i) * k4);
      quantize_row(t1, k, k4, inv, zp,
                   out + static_cast<std::size_t>(i + 1) * k4);
      quantize_row(t2, k, k4, inv, zp,
                   out + static_cast<std::size_t>(i + 2) * k4);
      quantize_row(t3, k, k4, inv, zp,
                   out + static_cast<std::size_t>(i + 3) * k4);
    }
    for (; i < m; ++i) {  // tail rows keep the original column stride m
      for (int p = 0; p < k; ++p) {
        t0[p] = x[static_cast<std::size_t>(p) * m + i];
      }
      quantize_row(t0, k, k4, inv, zp, out + static_cast<std::size_t>(i) * k4);
    }
    return;
  }
#endif
  quantize_activations_transposed_ref(x, m, k, k4, aq, out);
}

void dequantize_bias_view(const std::int32_t* acc, int m, int n,
                          const ActQuant& aq, const float* scale,
                          const std::int32_t* wsum,
                          const unsigned char* col_active, const float* bias,
                          bool relu, float* y) {
  const float sa = aq.scale;
  const std::int32_t zp = aq.zero_point;
  for (int i = 0; i < m; ++i) {
    const std::int32_t* ar = acc + static_cast<std::size_t>(i) * n;
    float* yr = y + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      if (col_active != nullptr && col_active[j] == 0) {
        yr[j] = 0.0f;
        continue;
      }
      const std::int32_t centered = ar[j] - zp * wsum[j];
      float v = static_cast<float>(centered) * (sa * scale[j]) + bias[j];
      if (relu && v < 0.0f) v = 0.0f;
      yr[j] = v;
    }
  }
}

void dequantize_bias(const std::int32_t* acc, int m, int n, const ActQuant& aq,
                     const WeightQuant& wq, const unsigned char* col_active,
                     const float* bias, bool relu, float* y) {
  dequantize_bias_view(acc, m, n, aq, wq.scale.data(), wq.wsum.data(),
                       col_active, bias, relu, y);
}

void dequantize_bias_transposed(const std::int32_t* acc, int spatial,
                                int units, const ActQuant& aq,
                                const float* scale, const std::int32_t* wsum,
                                const unsigned char* row_active,
                                const float* bias, bool relu, float* y) {
  const float sa = aq.scale;
  const std::int32_t zp = aq.zero_point;
  for (int u = 0; u < units; ++u) {
    float* yr = y + static_cast<std::size_t>(u) * spatial;
    if (row_active != nullptr && row_active[u] == 0) {
      std::memset(yr, 0, sizeof(float) * static_cast<std::size_t>(spatial));
      continue;
    }
    const float cs = sa * scale[u];
    const std::int32_t comp = zp * wsum[u];
    const float b = bias[u];
    for (int s = 0; s < spatial; ++s) {
      const std::int32_t centered =
          acc[static_cast<std::size_t>(s) * units + u] - comp;
      float v = static_cast<float>(centered) * cs + b;
      if (relu && v < 0.0f) v = 0.0f;
      yr[s] = v;
    }
  }
}

}  // namespace stepping::quant
