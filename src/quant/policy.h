// Precision policy of the inference ladder (ISSUE 7).
//
// STEPPING_PRECISION=fp32|int8|auto selects how forwards execute:
//  * fp32 (default): the bitwise-deterministic reference path everywhere —
//    a pure no-op relative to pre-quantization builds;
//  * int8: Dense/Conv2d body layers run the u8 x i8 GEMM providers
//    (tensor/i8gemm.h) with per-output-channel weight scales and per-layer
//    per-subnet-level activation scales (quant/calibration.h); accuracy is
//    gated statistically (<= 1.0 top-1 pp vs fp32 per level), not bitwise;
//  * auto: a serving policy — serve::Server publishes an int8 preliminary
//    at the planned target level, then refines through the fp32 ladder.
//    Individual layer forwards never see kAuto (the server resolves it);
//    layers treat anything other than kInt8 as fp32.
#pragma once

#include <string>

namespace stepping::quant {

enum class Precision : int { kFp32 = 0, kInt8 = 1, kAuto = 2 };

/// "fp32", "int8", "auto".
const char* precision_name(Precision p);

/// Parse a STEPPING_PRECISION / --precision value. Returns false (out
/// untouched) for unknown names; matching is exact and lowercase.
bool parse_precision(const std::string& s, Precision* out);

/// STEPPING_PRECISION parsed, defaulting to kFp32 when unset or unknown
/// (unknown values log a warning once). Re-read on every call.
Precision precision_from_env();

}  // namespace stepping::quant
