#include "quant/calibration.h"

#include <algorithm>
#include <cmath>

namespace stepping::quant {

void CalibrationTable::record(const std::string& name, int level,
                              const float* x, std::size_t count) {
  float absmax = 0.0f;
  bool nonneg = true;
  for (std::size_t i = 0; i < count; ++i) {
    const float v = x[i];
    if (std::isnan(v)) continue;
    absmax = std::max(absmax, std::fabs(v));
    if (v < 0.0f) nonneg = false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  CalibEntry& e = entries_[{name, level}];
  e.absmax = std::max(e.absmax, absmax);
  e.nonneg = e.nonneg && nonneg;
  e.samples += count;
}

const CalibEntry* CalibrationTable::find(const std::string& name,
                                         int level) const {
  const auto it = entries_.find({name, level});
  return it != entries_.end() ? &it->second : nullptr;
}

}  // namespace stepping::quant
