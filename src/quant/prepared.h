// Prepared int8 weights + layer-facing int8 forward drivers (ISSUE 7).
//
// A layer's int8 operand is one blob per (weight snapshot, provider):
// the i8 panel packing of its effective weights (tensor/i8gemm.h layout)
// followed by the per-channel compensation sums and scales. Blobs live in
// the SAME LRU pack cache as the fp32 panels (gemm_kernel.h, pack kind 1),
// keyed on the layer's pack_id — so SGD steps, deserialization and mask
// edits invalidate int8 panels through exactly the version bumps that
// already invalidate fp32 panels, and STEPPING_PACK_CACHE_MB bounds both.
//
// Per-output-channel weight scales make the panel subnet-INDEPENDENT: a
// smaller subnet only deactivates output channels (columns), it never
// changes an active channel's weights, so one blob serves every level while
// the per-level calibration (quant/calibration.h) supplies the activation
// scales.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "quant/quantize.h"
#include "tensor/i8gemm.h"

namespace stepping::quant {

/// A ready-to-run int8 operand: a shared handle on the cached blob plus
/// typed views into it. Valid while `blob` is held (cache eviction cannot
/// free it under a reader).
struct PreparedInt8 {
  std::shared_ptr<const std::vector<float>> blob;
  const std::int8_t* packed = nullptr;   ///< i8gemm panel layout
  const std::int32_t* wsum = nullptr;    ///< per-channel sum of codes, size n
  const float* scale = nullptr;          ///< per-channel sw_j, size n
  const I8GemmKernel* kernel = nullptr;  ///< provider the panels target
  int n = 0;  ///< output channels
  int k = 0;  ///< contraction depth (un-padded)
};

/// Get-or-build the active provider's int8 blob for Wt (n x k row-major
/// effective weights). `pack_id` keys the cache (0 = transient: build
/// without caching, e.g. when the cache is disabled).
PreparedInt8 prepare_int8_weights(std::uint64_t pack_id, const float* wt,
                                  int n, int k);

/// Dense int8 forward: y (m x n, row-major) = dequant(q(x) . packed) with
/// fused bias/ReLU epilogue; inactive columns are written as 0. x is the
/// (m x k) fp32 input.
void int8_dense_forward(const float* x, int m, const PreparedInt8& pw,
                        const ActQuant& aq, const unsigned char* col_active,
                        const float* bias, bool relu, float* y);

/// Conv2d int8 forward over one image's im2col matrix `cols` (patch x
/// spatial, fp32): writes y (units x spatial) = dequant(q(cols)^T . packed)^T
/// with fused bias/ReLU; inactive units' planes are written as 0.
void int8_conv_forward(const float* cols, int spatial, const PreparedInt8& pw,
                       const ActQuant& aq, const unsigned char* row_active,
                       const float* bias, bool relu, float* y);

}  // namespace stepping::quant
