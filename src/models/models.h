// Model zoo: the three architectures of the paper's evaluation (Table I).
//
// Each builder takes:
//  * `classes`     — output classes (10 for SynthCIFAR10, 100 for -100);
//  * `expansion`   — the paper's width-expansion ratio applied to every
//                    layer's neuron/filter count before subnet construction
//                    (Table I uses 1.8 / 2.0 / 1.8);
//  * `width_mult`  — an additional global width multiplier used by the
//                    benchmark harness to scale compute to the host
//                    (1.0 = paper-faithful widths).
// Networks are returned wired for (3, 32, 32) inputs.
#pragma once

#include <string>

#include "nn/network.h"

namespace stepping {

struct ModelConfig {
  int classes = 10;
  double expansion = 1.0;
  double width_mult = 1.0;
  std::uint64_t seed = 7;
  int in_channels = 3;
  int in_h = 32;
  int in_w = 32;
};

/// LeNet-3C1L: three 5x5 conv blocks (conv-BN-ReLU-maxpool) and one
/// fully-connected classifier, the paper's smallest test case.
Network build_lenet3c1l(const ModelConfig& cfg);

/// LeNet-5: two 5x5 conv blocks and three fully-connected layers
/// (120-84-classes), adapted to 3x32x32 inputs.
Network build_lenet5(const ModelConfig& cfg);

/// VGG-16 (CIFAR variant): thirteen 3x3 conv layers in five pooled stages
/// (64-64 / 128-128 / 256x3 / 512x3 / 512x3) and a single FC classifier.
Network build_vgg16(const ModelConfig& cfg);

/// A small MobileNet-style network: 3x3 stem + three depthwise-separable
/// stages (dw3x3 + pw1x1, each BN+ReLU) with 2x2 pooling between stages.
/// Demonstrates that the masking engine extends to the depthwise-separable
/// family the paper's related work ([5]-[7]) scales by width multipliers.
Network build_mobilenet_small(const ModelConfig& cfg);

/// Dispatch by name: "lenet3c1l", "lenet5", "vgg16", "mobilenet_small".
Network build_model(const std::string& name, const ModelConfig& cfg);

}  // namespace stepping
