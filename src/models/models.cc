#include "models/models.h"

#include <cmath>
#include <stdexcept>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise_conv2d.h"
#include "nn/simple_layers.h"

namespace stepping {

namespace {

/// Scale a base width by expansion * width_mult, minimum 2 units.
int scaled(int base, const ModelConfig& cfg) {
  const int v = static_cast<int>(std::lround(base * cfg.expansion * cfg.width_mult));
  return std::max(v, 2);
}

void add_conv_block(Network& net, const std::string& name, int channels,
                    int kernel) {
  net.emplace<Conv2d>(name, channels, kernel);
  net.emplace<BatchNorm2d>(name + "_bn");
  net.emplace<ReLU>(name + "_relu");
}

}  // namespace

Network build_lenet3c1l(const ModelConfig& cfg) {
  Network net;
  add_conv_block(net, "c1", scaled(32, cfg), 5);
  net.emplace<MaxPool2d>("p1", 2);
  add_conv_block(net, "c2", scaled(48, cfg), 5);
  net.emplace<MaxPool2d>("p2", 2);
  add_conv_block(net, "c3", scaled(64, cfg), 5);
  net.emplace<MaxPool2d>("p3", 2);
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", cfg.classes);
  Rng rng(cfg.seed);
  net.wire(cfg.in_channels, cfg.in_h, cfg.in_w, rng);
  return net;
}

Network build_lenet5(const ModelConfig& cfg) {
  Network net;
  add_conv_block(net, "c1", scaled(6, cfg), 5);
  net.emplace<MaxPool2d>("p1", 2);
  add_conv_block(net, "c2", scaled(16, cfg), 5);
  net.emplace<MaxPool2d>("p2", 2);
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc1", scaled(120, cfg));
  net.emplace<ReLU>("fc1_relu");
  net.emplace<Dense>("fc2", scaled(84, cfg));
  net.emplace<ReLU>("fc2_relu");
  net.emplace<Dense>("fc3", cfg.classes);
  Rng rng(cfg.seed);
  net.wire(cfg.in_channels, cfg.in_h, cfg.in_w, rng);
  return net;
}

Network build_vgg16(const ModelConfig& cfg) {
  Network net;
  const int stage_channels[5] = {64, 128, 256, 512, 512};
  const int stage_depth[5] = {2, 2, 3, 3, 3};
  int li = 0;
  for (int s = 0; s < 5; ++s) {
    for (int d = 0; d < stage_depth[s]; ++d) {
      add_conv_block(net, "c" + std::to_string(++li), scaled(stage_channels[s], cfg), 3);
    }
    net.emplace<MaxPool2d>("p" + std::to_string(s + 1), 2);
  }
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", cfg.classes);
  Rng rng(cfg.seed);
  net.wire(cfg.in_channels, cfg.in_h, cfg.in_w, rng);
  return net;
}

Network build_mobilenet_small(const ModelConfig& cfg) {
  Network net;
  add_conv_block(net, "stem", scaled(16, cfg), 3);
  const int widths[3] = {32, 64, 128};
  for (int s = 0; s < 3; ++s) {
    const std::string tag = "ds" + std::to_string(s + 1);
    net.emplace<DepthwiseConv2d>(tag + "_dw", 3);
    net.emplace<BatchNorm2d>(tag + "_dw_bn");
    net.emplace<ReLU>(tag + "_dw_relu");
    // Pointwise 1x1 mixes channels (a normal masked Conv2d).
    net.emplace<Conv2d>(tag + "_pw", scaled(widths[s], cfg), 1);
    net.emplace<BatchNorm2d>(tag + "_pw_bn");
    net.emplace<ReLU>(tag + "_pw_relu");
    net.emplace<MaxPool2d>("p" + std::to_string(s + 1), 2);
  }
  net.emplace<Flatten>("flat");
  net.emplace<Dense>("fc", cfg.classes);
  Rng rng(cfg.seed);
  net.wire(cfg.in_channels, cfg.in_h, cfg.in_w, rng);
  return net;
}

Network build_model(const std::string& name, const ModelConfig& cfg) {
  if (name == "lenet3c1l") return build_lenet3c1l(cfg);
  if (name == "lenet5") return build_lenet5(cfg);
  if (name == "vgg16") return build_vgg16(cfg);
  if (name == "mobilenet_small") return build_mobilenet_small(cfg);
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace stepping
