// PPM (P6) export of dataset images for visual inspection of the synthetic
// CIFAR substitutes (e.g. `steppingnet`-adjacent debugging, documentation).
#pragma once

#include <string>

#include "data/dataset.h"

namespace stepping {

/// Write image `index` of `data` as a binary PPM. Values are linearly
/// rescaled from the tensor's [min, max] to [0, 255] per image; grayscale
/// (1-channel) images are replicated across RGB. Returns false on I/O error.
bool write_ppm(const Dataset& data, int index, const std::string& path);

/// Write a grid of the first `rows` x `cols` images (row-major by dataset
/// index) into one PPM contact sheet with a 1-pixel separator.
bool write_ppm_grid(const Dataset& data, int rows, int cols,
                    const std::string& path);

}  // namespace stepping
