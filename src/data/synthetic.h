// Synthetic CIFAR-like datasets (substitute for CIFAR-10/100, DESIGN.md §2).
//
// Each class gets a prototype image built from a small dictionary of
// Gabor-like atoms. Classes share a fraction of atoms (`atom_overlap`) so
// they are mutually confusable; samples perturb the prototype with random
// shifts, contrast jitter, additive Gaussian noise, and label noise. The
// resulting task has the property the paper's evaluation relies on:
// accuracy grows smoothly (and saturates) with model capacity.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace stepping {

struct SynthConfig {
  int num_classes = 10;
  int train_per_class = 200;
  int test_per_class = 50;
  int channels = 3;
  int height = 32;
  int width = 32;

  /// Atoms per class prototype / size of the shared dictionary.
  int atoms_per_class = 6;
  int dictionary_size = 48;
  /// Fraction of a prototype's atoms drawn from the shared dictionary (the
  /// rest are class-private). Higher = harder.
  double atom_overlap = 0.65;

  /// Sample perturbations (defaults calibrated so a LeNet-scale network
  /// lands well below 100% and accuracy climbs smoothly with capacity, the
  /// regime the paper's evaluation probes).
  double noise_stddev = 2.0;
  int max_shift = 5;          ///< circular shift in pixels, per axis
  double contrast_lo = 0.5;
  double contrast_hi = 1.5;
  double label_noise = 0.04;  ///< probability of a uniformly wrong label

  std::uint64_t seed = 42;
};

/// Generate a deterministic train/test split per `cfg`.
DataSplit make_synthetic(const SynthConfig& cfg);

/// CIFAR-10-like preset (10 classes), scaled by per-class counts.
SynthConfig synth_cifar10(int train_per_class = 200, int test_per_class = 50,
                          std::uint64_t seed = 42);

/// CIFAR-100-like preset (100 classes, heavier atom overlap).
SynthConfig synth_cifar100(int train_per_class = 30, int test_per_class = 10,
                           std::uint64_t seed = 42);

}  // namespace stepping
