// In-memory labelled image dataset.
#pragma once

#include <cassert>
#include <vector>

#include "tensor/tensor.h"

namespace stepping {

/// A dense labelled image set (NCHW). Small enough to keep in RAM; the
/// synthetic CIFAR substitutes are a few thousand 3x32x32 images.
struct Dataset {
  Tensor images;            ///< (N, C, H, W)
  std::vector<int> labels;  ///< size N, values in [0, num_classes)
  int num_classes = 0;

  int size() const { return images.empty() ? 0 : images.dim(0); }
  int channels() const { return images.dim(1); }
  int height() const { return images.dim(2); }
  int width() const { return images.dim(3); }

  /// Copy of images[indices] with matching labels.
  Dataset subset(const std::vector<int>& indices) const;

  /// Batch starting at `begin` of up to `count` images (by index order).
  void batch(int begin, int count, Tensor& x, std::vector<int>& y) const;
};

/// Train/test pair.
struct DataSplit {
  Dataset train;
  Dataset test;
};

}  // namespace stepping
