#include "data/ppm.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

namespace stepping {

namespace {

/// Rescale one image (C,H,W floats) to 8-bit RGB rows.
std::vector<unsigned char> to_rgb(const Dataset& data, int index) {
  const int c = data.channels(), h = data.height(), w = data.width();
  const std::int64_t img = static_cast<std::int64_t>(c) * h * w;
  const float* p = data.images.data() + index * img;
  float lo = p[0], hi = p[0];
  for (std::int64_t i = 1; i < img; ++i) {
    lo = std::min(lo, p[i]);
    hi = std::max(hi, p[i]);
  }
  const float scale = hi > lo ? 255.0f / (hi - lo) : 0.0f;
  std::vector<unsigned char> rgb(static_cast<std::size_t>(h) * w * 3);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int ch = 0; ch < 3; ++ch) {
        const int src_ch = std::min(ch, c - 1);
        const float v = p[(static_cast<std::int64_t>(src_ch) * h + y) * w + x];
        rgb[(static_cast<std::size_t>(y) * w + x) * 3 + ch] =
            static_cast<unsigned char>(std::clamp((v - lo) * scale, 0.0f, 255.0f));
      }
    }
  }
  return rgb;
}

}  // namespace

bool write_ppm(const Dataset& data, int index, const std::string& path) {
  if (index < 0 || index >= data.size()) return false;
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const int h = data.height(), w = data.width();
  f << "P6\n" << w << " " << h << "\n255\n";
  const auto rgb = to_rgb(data, index);
  f.write(reinterpret_cast<const char*>(rgb.data()),
          static_cast<std::streamsize>(rgb.size()));
  return static_cast<bool>(f);
}

bool write_ppm_grid(const Dataset& data, int rows, int cols,
                    const std::string& path) {
  if (rows <= 0 || cols <= 0 || rows * cols > data.size()) return false;
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const int h = data.height(), w = data.width();
  const int gw = cols * (w + 1) - 1, gh = rows * (h + 1) - 1;
  std::vector<unsigned char> canvas(static_cast<std::size_t>(gw) * gh * 3, 32);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const auto rgb = to_rgb(data, r * cols + c);
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          const std::size_t dst =
              ((static_cast<std::size_t>(r) * (h + 1) + y) * gw +
               static_cast<std::size_t>(c) * (w + 1) + x) *
              3;
          for (int ch = 0; ch < 3; ++ch) {
            canvas[dst + ch] = rgb[(static_cast<std::size_t>(y) * w + x) * 3 + ch];
          }
        }
      }
    }
  }
  f << "P6\n" << gw << " " << gh << "\n255\n";
  f.write(reinterpret_cast<const char*>(canvas.data()),
          static_cast<std::streamsize>(canvas.size()));
  return static_cast<bool>(f);
}

}  // namespace stepping
