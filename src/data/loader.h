// Mini-batch loader with shuffling and light augmentation.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace stepping {

struct LoaderConfig {
  int batch_size = 32;
  bool shuffle = true;
  /// Augmentation: random horizontal flip and +-`pad_shift` pixel shift with
  /// zero padding (applied on training loaders only).
  bool augment = false;
  int pad_shift = 2;
};

/// Cyclic mini-batch iterator over a Dataset. `next()` returns consecutive
/// batches and transparently reshuffles at each epoch boundary.
class DataLoader {
 public:
  DataLoader(const Dataset& data, LoaderConfig cfg, Rng rng);

  struct Batch {
    Tensor x;
    std::vector<int> y;
  };

  /// Next mini-batch (never empty; wraps across epochs).
  Batch next();

  int batches_per_epoch() const;
  int epoch() const { return epoch_; }
  const Dataset& dataset() const { return data_; }

 private:
  void reshuffle();
  void apply_augmentation(Tensor& x);

  const Dataset& data_;
  LoaderConfig cfg_;
  Rng rng_;
  std::vector<int> order_;
  int cursor_ = 0;
  int epoch_ = 0;
};

/// Full-dataset top-1 accuracy of `eval` over mini-batches.
/// `eval` is callable as int(const Tensor& x, const std::vector<int>& y)
/// returning the number of correct predictions in the batch.
template <typename EvalFn>
double dataset_accuracy(const Dataset& data, int batch_size, EvalFn&& eval) {
  int correct = 0;
  Tensor x;
  std::vector<int> y;
  for (int begin = 0; begin < data.size(); begin += batch_size) {
    const int count = std::min(batch_size, data.size() - begin);
    data.batch(begin, count, x, y);
    correct += eval(x, y);
  }
  return data.size() > 0 ? static_cast<double>(correct) / data.size() : 0.0;
}

}  // namespace stepping
