#include "data/synthetic.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/rng.h"

namespace stepping {

namespace {

/// A Gabor-like atom: oriented sinusoid under a Gaussian envelope, with a
/// per-channel amplitude (a crude "color").
struct Atom {
  double cx, cy;        // center (pixels)
  double sigma;         // envelope width
  double freq;          // cycles per pixel
  double theta;         // orientation
  double phase;
  double amp[3];        // per-channel amplitude
};

Atom random_atom(Rng& rng, int h, int w, int channels) {
  Atom a;
  a.cx = rng.uniform(0.15, 0.85) * w;
  a.cy = rng.uniform(0.15, 0.85) * h;
  a.sigma = rng.uniform(0.08, 0.25) * std::min(h, w);
  a.freq = rng.uniform(0.05, 0.35);
  a.theta = rng.uniform(0.0, std::numbers::pi);
  a.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (int c = 0; c < 3; ++c) {
    a.amp[c] = c < channels ? rng.normal(0.0, 1.0) : 0.0;
  }
  return a;
}

void render_atom(const Atom& a, int channels, int h, int w, float* img) {
  const double ct = std::cos(a.theta), st = std::sin(a.theta);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double dx = x - a.cx, dy = y - a.cy;
      const double env = std::exp(-(dx * dx + dy * dy) / (2.0 * a.sigma * a.sigma));
      const double carrier =
          std::cos(2.0 * std::numbers::pi * a.freq * (dx * ct + dy * st) + a.phase);
      const double v = env * carrier;
      for (int c = 0; c < channels; ++c) {
        img[(static_cast<std::size_t>(c) * h + y) * w + x] +=
            static_cast<float>(a.amp[c] * v);
      }
    }
  }
}

/// Render one sample: circular shift + contrast jitter + noise.
void render_sample(const std::vector<float>& proto, int channels, int h, int w,
                   const SynthConfig& cfg, Rng& rng, float* out) {
  const int sx = cfg.max_shift > 0 ? rng.uniform_int(-cfg.max_shift, cfg.max_shift) : 0;
  const int sy = cfg.max_shift > 0 ? rng.uniform_int(-cfg.max_shift, cfg.max_shift) : 0;
  const float contrast =
      static_cast<float>(rng.uniform(cfg.contrast_lo, cfg.contrast_hi));
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < h; ++y) {
      const int py = ((y + sy) % h + h) % h;
      for (int x = 0; x < w; ++x) {
        const int px = ((x + sx) % w + w) % w;
        const float base =
            proto[(static_cast<std::size_t>(c) * h + py) * w + px];
        out[(static_cast<std::size_t>(c) * h + y) * w + x] =
            contrast * base +
            static_cast<float>(rng.normal(0.0, cfg.noise_stddev));
      }
    }
  }
}

}  // namespace

DataSplit make_synthetic(const SynthConfig& cfg) {
  assert(cfg.num_classes > 0 && cfg.channels > 0 && cfg.channels <= 3);
  Rng rng(cfg.seed);
  const int h = cfg.height, w = cfg.width, ch = cfg.channels;
  const std::size_t img_size = static_cast<std::size_t>(ch) * h * w;

  // Shared dictionary of atoms.
  std::vector<Atom> dictionary;
  dictionary.reserve(static_cast<std::size_t>(cfg.dictionary_size));
  for (int i = 0; i < cfg.dictionary_size; ++i) {
    dictionary.push_back(random_atom(rng, h, w, ch));
  }

  // Class prototypes: a mix of shared-dictionary and private atoms.
  std::vector<std::vector<float>> protos(
      static_cast<std::size_t>(cfg.num_classes), std::vector<float>(img_size, 0.0f));
  for (int k = 0; k < cfg.num_classes; ++k) {
    for (int a = 0; a < cfg.atoms_per_class; ++a) {
      if (rng.bernoulli(cfg.atom_overlap) && !dictionary.empty()) {
        const auto idx = rng.next_below(dictionary.size());
        render_atom(dictionary[static_cast<std::size_t>(idx)], ch, h, w,
                    protos[static_cast<std::size_t>(k)].data());
      } else {
        render_atom(random_atom(rng, h, w, ch), ch, h, w,
                    protos[static_cast<std::size_t>(k)].data());
      }
    }
    // Normalize prototype energy so no class is trivially louder.
    double e = 0.0;
    for (const float v : protos[static_cast<std::size_t>(k)]) e += static_cast<double>(v) * v;
    const float scale =
        e > 0.0 ? static_cast<float>(std::sqrt(static_cast<double>(img_size) / e)) : 1.0f;
    for (float& v : protos[static_cast<std::size_t>(k)]) v *= scale;
  }

  auto make_set = [&](int per_class) {
    Dataset d;
    const int n = per_class * cfg.num_classes;
    d.images = Tensor({n, ch, h, w});
    d.labels.resize(static_cast<std::size_t>(n));
    d.num_classes = cfg.num_classes;
    int i = 0;
    for (int k = 0; k < cfg.num_classes; ++k) {
      for (int s = 0; s < per_class; ++s, ++i) {
        render_sample(protos[static_cast<std::size_t>(k)], ch, h, w, cfg, rng,
                      d.images.data() + static_cast<std::size_t>(i) * img_size);
        int label = k;
        if (cfg.label_noise > 0.0 && rng.bernoulli(cfg.label_noise)) {
          label = static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(cfg.num_classes)));
        }
        d.labels[static_cast<std::size_t>(i)] = label;
      }
    }
    return d;
  };

  DataSplit split;
  split.train = make_set(cfg.train_per_class);
  split.test = make_set(cfg.test_per_class);
  return split;
}

SynthConfig synth_cifar10(int train_per_class, int test_per_class,
                          std::uint64_t seed) {
  SynthConfig cfg;
  cfg.num_classes = 10;
  cfg.train_per_class = train_per_class;
  cfg.test_per_class = test_per_class;
  cfg.seed = seed;
  return cfg;
}

SynthConfig synth_cifar100(int train_per_class, int test_per_class,
                           std::uint64_t seed) {
  SynthConfig cfg;
  cfg.num_classes = 100;
  cfg.train_per_class = train_per_class;
  cfg.test_per_class = test_per_class;
  // 100-way classification is already much harder than 10-way at equal
  // noise; keep perturbations milder so small training sets stay learnable
  // while class confusability still comes from shared atoms.
  cfg.atom_overlap = 0.6;
  cfg.atoms_per_class = 5;
  cfg.dictionary_size = 96;
  cfg.noise_stddev = 0.9;
  cfg.label_noise = 0.02;
  cfg.max_shift = 3;
  cfg.seed = seed;
  return cfg;
}

}  // namespace stepping
