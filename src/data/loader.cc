#include "data/loader.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>

namespace stepping {

// ---- Dataset --------------------------------------------------------------

Dataset Dataset::subset(const std::vector<int>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  const int n = static_cast<int>(indices.size());
  out.images = Tensor({n, channels(), height(), width()});
  out.labels.resize(static_cast<std::size_t>(n));
  const std::size_t img = static_cast<std::size_t>(channels()) * height() * width();
  for (int i = 0; i < n; ++i) {
    const int src = indices[static_cast<std::size_t>(i)];
    assert(src >= 0 && src < size());
    std::memcpy(out.images.data() + static_cast<std::size_t>(i) * img,
                images.data() + static_cast<std::size_t>(src) * img,
                img * sizeof(float));
    out.labels[static_cast<std::size_t>(i)] = labels[static_cast<std::size_t>(src)];
  }
  return out;
}

void Dataset::batch(int begin, int count, Tensor& x, std::vector<int>& y) const {
  assert(begin >= 0 && begin + count <= size());
  const std::size_t img = static_cast<std::size_t>(channels()) * height() * width();
  if (x.rank() != 4 || x.dim(0) != count || x.dim(1) != channels() ||
      x.dim(2) != height() || x.dim(3) != width()) {
    x = Tensor({count, channels(), height(), width()});
  }
  std::memcpy(x.data(), images.data() + static_cast<std::size_t>(begin) * img,
              static_cast<std::size_t>(count) * img * sizeof(float));
  y.assign(labels.begin() + begin, labels.begin() + begin + count);
}

// ---- DataLoader -----------------------------------------------------------

DataLoader::DataLoader(const Dataset& data, LoaderConfig cfg, Rng rng)
    : data_(data), cfg_(cfg), rng_(rng) {
  assert(data_.size() > 0 && cfg_.batch_size > 0);
  order_.resize(static_cast<std::size_t>(data_.size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (cfg_.shuffle) rng_.shuffle(order_);
}

int DataLoader::batches_per_epoch() const {
  return (data_.size() + cfg_.batch_size - 1) / cfg_.batch_size;
}

void DataLoader::reshuffle() {
  ++epoch_;
  cursor_ = 0;
  if (cfg_.shuffle) rng_.shuffle(order_);
}

DataLoader::Batch DataLoader::next() {
  if (cursor_ >= data_.size()) reshuffle();
  const int count = std::min(cfg_.batch_size, data_.size() - cursor_);
  Batch b;
  const int c = data_.channels(), h = data_.height(), w = data_.width();
  b.x = Tensor({count, c, h, w});
  b.y.resize(static_cast<std::size_t>(count));
  const std::size_t img = static_cast<std::size_t>(c) * h * w;
  for (int i = 0; i < count; ++i) {
    const int src = order_[static_cast<std::size_t>(cursor_ + i)];
    std::memcpy(b.x.data() + static_cast<std::size_t>(i) * img,
                data_.images.data() + static_cast<std::size_t>(src) * img,
                img * sizeof(float));
    b.y[static_cast<std::size_t>(i)] = data_.labels[static_cast<std::size_t>(src)];
  }
  cursor_ += count;
  if (cfg_.augment) apply_augmentation(b.x);
  return b;
}

void DataLoader::apply_augmentation(Tensor& x) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  std::vector<float> scratch(static_cast<std::size_t>(c) * h * w);
  for (int i = 0; i < n; ++i) {
    float* img = x.data() + static_cast<std::size_t>(i) * c * h * w;
    const bool flip = rng_.bernoulli(0.5);
    const int sx = cfg_.pad_shift > 0 ? rng_.uniform_int(-cfg_.pad_shift, cfg_.pad_shift) : 0;
    const int sy = cfg_.pad_shift > 0 ? rng_.uniform_int(-cfg_.pad_shift, cfg_.pad_shift) : 0;
    if (!flip && sx == 0 && sy == 0) continue;
    std::memcpy(scratch.data(), img, scratch.size() * sizeof(float));
    for (int ch = 0; ch < c; ++ch) {
      const float* src_plane = scratch.data() + static_cast<std::size_t>(ch) * h * w;
      float* dst_plane = img + static_cast<std::size_t>(ch) * h * w;
      for (int y = 0; y < h; ++y) {
        for (int xx = 0; xx < w; ++xx) {
          int px = xx + sx;
          const int py = y + sy;
          if (flip) px = w - 1 - px;
          float v = 0.0f;
          if (px >= 0 && px < w && py >= 0 && py < h) {
            v = src_plane[static_cast<std::size_t>(py) * w + px];
          }
          dst_plane[static_cast<std::size_t>(y) * w + xx] = v;
        }
      }
    }
  }
}

}  // namespace stepping
