// AVX2+FMA tier: 8-lane __m256 with _mm256_fmadd_ps. This TU (alone) is
// compiled with -mavx2 -mfma; the explicit intrinsic — rather than letting
// the compiler contract a mul/add pair — makes the single-rounding fused
// multiply-add part of the tier's contract instead of a codegen accident.
// Bits therefore differ from the scalar/sse tiers (one rounding per term
// instead of two) but are stable within this tier for every blocking,
// thread count and pack-cache state.
//
// NR doubles to 16: two 8-lane accumulators per panel keep the same
// independent-accumulator ILP the sse tier gets from two 4-lane ones.
#include <immintrin.h>

#include "tensor/gemm_fallback_impl.h"
#include "tensor/gemm_microkernel.h"
#include "tensor/gemm_microkernel_impl.h"

namespace stepping::microkernel {

namespace {

/// Fused multiply-add for the fallback loops: __builtin_fmaf lowers to the
/// scalar/packed vfmadd forms under -mfma, so the fallback's per-term
/// rounding matches the blocked micro-kernels exactly.
struct FusedMadd {
  static float madd(float a, float b, float c) {
    return __builtin_fmaf(a, b, c);
  }
};

struct V8 {
  static constexpr int kLanes = 8;
  using Vec = __m256;
  static Vec zero() { return _mm256_setzero_ps(); }
  static Vec load(const float* p) { return _mm256_loadu_ps(p); }
  static Vec splat(float x) { return _mm256_set1_ps(x); }
  static Vec fmadd(Vec acc, Vec a, Vec b) { return _mm256_fmadd_ps(a, b, acc); }
  static void store(float* p, Vec v) { _mm256_storeu_ps(p, v); }
};

constexpr int kNr = 16;

const KernelTable kTable = {IsaTier::kAvx2,
                            "avx2",
                            kNr,
                            &detail::axpy_entry<V8, kNr>,
                            &detail::dot_entry<V8, kNr>,
                            &detail::fb_gemm<FusedMadd>,
                            &detail::fb_gemm_tn<FusedMadd>,
                            &detail::fb_gemm_nt<FusedMadd>,
                            &detail::fb_gemm_rows<FusedMadd>,
                            &detail::fb_gemm_nt_cols<FusedMadd>,
                            &detail::fb_gemm_nt_rows_acc<FusedMadd>,
                            &detail::fb_gemm_tn_rows<FusedMadd>,
                            &detail::fb_gemm_nt_cols_bias<FusedMadd>,
                            &detail::fb_gemm_rows_bias<FusedMadd>};

}  // namespace

const KernelTable* table_avx2() { return &kTable; }

}  // namespace stepping::microkernel
