// Small-shape fallback kernels, instantiated per ISA tier (ISSUE 6).
// Include ONLY from gemm_microkernel_<tier>.cc (same rule as
// gemm_microkernel_impl.h).
//
// Shapes below the blocked path's dispatch gates (GemmBlocking::min_macs /
// min_k) run these row-parallel loops instead — the exact loop structure of
// the PR-1 reference kernels (gemmref::*). The one per-tier degree of
// freedom is M::madd: two roundings (mul, then add) on the scalar/sse
// tiers, one fused rounding on the FMA tiers — matching the tier's
// micro-kernels term for term. That is what keeps EVERY dispatch route
// bitwise-consistent within a tier: a value computed through the fallback
// (small delta GEMMs in the incremental executor, say) must equal the same
// element computed through the blocked path (the full forward), or
// SteppingNet's exact-reuse invariant would break at the routing boundary.
//
// The scalar and sse tier tables point straight at gemmref::* instead of
// instantiating these with a two-rounding madd — gemmref IS that
// instantiation, kept as the named ground truth for tests.
//
// Per-element order is the reference order everywhere: the axpy-family
// loops accumulate into C a term at a time (ascending p, exact-zero A
// terms skipped), the dot-family loops run one fresh accumulator over the
// full contraction and touch C once. parallel_for_cost's static row
// partition keeps results thread-count-independent exactly as it does for
// gemmref.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "util/thread_pool.h"

namespace stepping::microkernel::detail {

template <class M>
void fb_gemm(const float* pa, const float* pb, float* pc, int m, int k, int n,
             bool accumulate) {
  if (!accumulate) std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;  // masked weights are exactly zero
        const float* brow = pb + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] = M::madd(av, brow[j], crow[j]);
      }
    }
  });
}

template <class M>
void fb_gemm_tn(const float* pat, const float* pb, float* pc, int m, int k,
                int n, bool accumulate) {
  if (!accumulate) std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (int p = 0; p < k; ++p) {
      const float* atrow = pat + static_cast<std::size_t>(p) * m;
      const float* brow = pb + static_cast<std::size_t>(p) * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = atrow[i];
        if (av == 0.0f) continue;
        float* crow = pc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] = M::madd(av, brow[j], crow[j]);
      }
    }
  });
}

template <class M>
void fb_gemm_nt(const float* pa, const float* pbt, float* pc, int m, int k,
                int n, bool accumulate) {
  if (!accumulate) std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc = M::madd(arow[p], btrow[p], acc);
        crow[j] += acc;
      }
    }
  });
}

template <class M>
void fb_gemm_rows(const float* pa, const float* pb, float* pc, int m, int k,
                  int n, const unsigned char* row_active) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (!row_active[i]) continue;
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = pb + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] = M::madd(av, brow[j], crow[j]);
      }
    }
  });
}

template <class M>
void fb_gemm_nt_cols(const float* pa, const float* pbt, float* pc, int m,
                     int k, int n, const unsigned char* col_active) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        if (!col_active[j]) continue;
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc = M::madd(arow[p], btrow[p], acc);
        crow[j] += acc;
      }
    }
  });
}

template <class M>
void fb_gemm_nt_rows_acc(const float* pa, const float* pbt, float* pc, int m,
                         int k, int n, const unsigned char* row_active) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (!row_active[i]) continue;
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc = M::madd(arow[p], btrow[p], acc);
        crow[j] += acc;
      }
    }
  });
}

template <class M>
void fb_gemm_tn_rows(const float* pat, const float* pb, float* pc, int m,
                     int k, int n, const unsigned char* k_active) {
  std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (int p = 0; p < k; ++p) {
      if (!k_active[p]) continue;
      const float* atrow = pat + static_cast<std::size_t>(p) * m;
      const float* brow = pb + static_cast<std::size_t>(p) * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = atrow[i];
        if (av == 0.0f) continue;
        float* crow = pc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] = M::madd(av, brow[j], crow[j]);
      }
    }
  });
}

template <class M>
void fb_gemm_nt_cols_bias(const float* pa, const float* pbt, float* pc, int m,
                          int k, int n, const unsigned char* col_active,
                          const float* bias, bool relu) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        if (!col_active[j]) continue;
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc = M::madd(arow[p], btrow[p], acc);
        float v = crow[j] + acc;
        v += bias[j];
        if (relu) v = v > 0.0f ? v : 0.0f;
        crow[j] = v;
      }
    }
  });
}

template <class M>
void fb_gemm_rows_bias(const float* pa, const float* pb, float* pc, int m,
                       int k, int n, const unsigned char* row_active,
                       const float* bias, bool relu) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (!row_active[i]) continue;
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = pb + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] = M::madd(av, brow[j], crow[j]);
      }
      const float bi = bias[i];
      for (int j = 0; j < n; ++j) crow[j] += bi;
      if (relu) {
        for (int j = 0; j < n; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
      }
    }
  });
}

}  // namespace stepping::microkernel::detail
