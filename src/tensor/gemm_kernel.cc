#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/gemm_isa.h"
#include "tensor/gemm_microkernel.h"
#include "util/arena.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace stepping {

namespace {

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

std::mutex& cfg_mutex() {
  static std::mutex mu;
  return mu;
}

GemmBlocking& cfg_slot() {
  static GemmBlocking cfg;
  return cfg;
}

bool& cfg_initialized() {
  static bool init = false;
  return init;
}

obs::Counter& blocked_dispatches() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_gemm_blocked_total");
  return c;
}

obs::Counter& ref_dispatches() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_gemm_ref_total");
  return c;
}

obs::Counter& packs_performed() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_gemm_packs_total");
  return c;
}

obs::Counter& packcache_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_packcache_hits_total");
  return c;
}

obs::Counter& packcache_misses() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_packcache_misses_total");
  return c;
}

obs::Counter& packcache_bytes_packed() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_packcache_bytes_total");
  return c;
}

obs::Counter& packcache_evictions() {
  static obs::Counter& c =
      obs::Registry::global().counter("stepping_packcache_evictions_total");
  return c;
}

obs::Gauge& packcache_bytes_now() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("stepping_packcache_bytes");
  return g;
}

}  // namespace

GemmBlocking env_gemm_blocking() {
  GemmBlocking cfg;
  std::string v = env_or("STEPPING_GEMM_BLOCK", "");
  if (v.empty()) return cfg;
  if (v == "ref" || v == "off" || v == "0") {
    cfg.force_ref = true;
    return cfg;
  }
  for (char& ch : v) {
    if (ch == ',' || ch == 'X') ch = 'x';
  }
  int mc = 0, kc = 0, nc = 0;
  if (std::sscanf(v.c_str(), "%dx%dx%d", &mc, &kc, &nc) == 3 && mc > 0 &&
      kc > 0 && nc > 0) {
    cfg.mc = mc;
    cfg.kc = kc;
    cfg.nc = nc;
  }
  return cfg;
}

GemmBlocking gemm_blocking() {
  std::lock_guard<std::mutex> lock(cfg_mutex());
  if (!cfg_initialized()) {
    cfg_slot() = env_gemm_blocking();
    cfg_initialized() = true;
  }
  return cfg_slot();
}

void set_gemm_blocking(const GemmBlocking& cfg) {
  {
    std::lock_guard<std::mutex> lock(cfg_mutex());
    cfg_slot() = cfg;
    cfg_initialized() = true;
  }
  // Block sizes change the packed-panel layout; cached buffers for the old
  // blocking would be read with the new offsets. Drop them all.
  flush_pack_cache();
}

bool gemm_uses_blocked(std::int64_t m, std::int64_t k, std::int64_t n,
                       const GemmBlocking& cfg) {
  if (cfg.force_ref) return false;
  if (m <= 0 || k <= 0 || n <= 0) return false;
  if (k < cfg.min_k) return false;
  return m * k * n >= cfg.min_macs;
}

// ---------------------------------------------------------------------------
// Reference kernels — the PR-1 row-parallel loops on raw pointers. These
// define the bitwise ground truth the blocked path must reproduce.
// ---------------------------------------------------------------------------

namespace gemmref {

void gemm(const float* pa, const float* pb, float* pc, int m, int k, int n,
          bool accumulate) {
  if (!accumulate) std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;  // masked weights are exactly zero
        const float* brow = pb + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_tn(const float* pat, const float* pb, float* pc, int m, int k, int n,
             bool accumulate) {
  if (!accumulate) std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (int p = 0; p < k; ++p) {
      const float* atrow = pat + static_cast<std::size_t>(p) * m;
      const float* brow = pb + static_cast<std::size_t>(p) * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = atrow[i];
        if (av == 0.0f) continue;
        float* crow = pc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_nt(const float* pa, const float* pbt, float* pc, int m, int k, int n,
             bool accumulate) {
  if (!accumulate) std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * btrow[p];
        crow[j] += acc;
      }
    }
  });
}

void gemm_rows(const float* pa, const float* pb, float* pc, int m, int k,
               int n, const unsigned char* row_active) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (!row_active[i]) continue;
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = pb + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_nt_cols(const float* pa, const float* pbt, float* pc, int m, int k,
                  int n, const unsigned char* col_active) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        if (!col_active[j]) continue;
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * btrow[p];
        crow[j] += acc;
      }
    }
  });
}

void gemm_nt_rows_acc(const float* pa, const float* pbt, float* pc, int m,
                      int k, int n, const unsigned char* row_active) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (!row_active[i]) continue;
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * btrow[p];
        crow[j] += acc;
      }
    }
  });
}

void gemm_tn_rows(const float* pat, const float* pb, float* pc, int m, int k,
                  int n, const unsigned char* k_active) {
  std::fill(pc, pc + static_cast<std::size_t>(m) * n, 0.0f);
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (int p = 0; p < k; ++p) {
      if (!k_active[p]) continue;
      const float* atrow = pat + static_cast<std::size_t>(p) * m;
      const float* brow = pb + static_cast<std::size_t>(p) * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = atrow[i];
        if (av == 0.0f) continue;
        float* crow = pc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

// The fused references replay the unfused sequence gemm -> bias -> relu
// per element. Each element's op chain is independent and a float
// store/load round trip is bit-exact, so fusing the chain is bitwise
// identical to running the three passes back to back.

void gemm_nt_cols_bias(const float* pa, const float* pbt, float* pc, int m,
                       int k, int n, const unsigned char* col_active,
                       const float* bias, bool relu) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        if (!col_active[j]) continue;
        const float* btrow = pbt + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * btrow[p];
        float v = crow[j] + acc;
        v += bias[j];
        if (relu) v = v > 0.0f ? v : 0.0f;
        crow[j] = v;
      }
    }
  });
}

void gemm_rows_bias(const float* pa, const float* pb, float* pc, int m, int k,
                    int n, const unsigned char* row_active, const float* bias,
                    bool relu) {
  parallel_for_cost(0, m, static_cast<std::int64_t>(k) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (!row_active[i]) continue;
      const float* arow = pa + static_cast<std::size_t>(i) * k;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = pb + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
      const float bi = bias[i];
      for (int j = 0; j < n; ++j) crow[j] += bi;
      if (relu) {
        for (int j = 0; j < n; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
      }
    }
  });
}

}  // namespace gemmref

// ---------------------------------------------------------------------------
// Blocked path.
// ---------------------------------------------------------------------------

namespace {

enum class Fam { kAxpy, kDot };

constexpr int kMR = kGemmMR;

/// Pack the (pc..pc+bk) x (jc..jc+bn) block of B into nr-wide panels:
/// out[q * bk * nr + p * nr + jr] holds B(pc+p, jc+q*nr+jr), zero-padded
/// past the last column. BTrans reads the transposed operand Bt (n x k).
/// `nr` is the active ISA tier's panel width (runtime since ISSUE 6).
/// Panel contents depend only on B and nr, never on the partition, so
/// parallel packing is deterministic.
template <bool BTrans>
void pack_b_block(const float* b, int k_dim, int n_dim, int pc, int jc, int bk,
                  int bn, int nr, float* out) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm.pack");
  (void)k_dim;
  (void)n_dim;
  const int panels = (bn + nr - 1) / nr;
  parallel_for_cost(0, panels, static_cast<std::int64_t>(bk) * nr,
                    [&](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t q = q0; q < q1; ++q) {
      const int j0 = jc + static_cast<int>(q) * nr;
      const int w = std::min(nr, jc + bn - j0);
      float* dst = out + static_cast<std::size_t>(q) * bk * nr;
      if constexpr (!BTrans) {
        for (int p = 0; p < bk; ++p) {
          const float* src = b + static_cast<std::size_t>(pc + p) * n_dim + j0;
          int jr = 0;
          for (; jr < w; ++jr) dst[jr] = src[jr];
          for (; jr < nr; ++jr) dst[jr] = 0.0f;
          dst += nr;
        }
      } else {
        // Bt is (n x k): read column j0+jr of B contiguously from Bt's row.
        for (int jr = 0; jr < w; ++jr) {
          const float* src = b + static_cast<std::size_t>(j0 + jr) * k_dim + pc;
          for (int p = 0; p < bk; ++p) dst[p * nr + jr] = src[p];
        }
        for (int jr = w; jr < nr; ++jr) {
          for (int p = 0; p < bk; ++p) dst[p * nr + jr] = 0.0f;
        }
      }
    }
  });
  packs_performed().inc();
}

// ---------------------------------------------------------------------------
// Persistent packed-weight cache. Keyed on (pack_id, k, n, NC, tier):
// pack_id is a never-reused identity for one snapshot of the operand bytes
// (owners draw a new one on any change), k/n/NC pin the panel layout, and
// the ISA tier pins the panel width NR (ISSUE 6) — panels packed for one
// tier are laid out wrong for another. Values are shared_ptrs, so a buffer
// being read can be evicted concurrently without invalidating the reader.
// ---------------------------------------------------------------------------

struct PackKey {
  std::uint64_t id;
  int k;
  int n;
  int nc;
  int tier;
  int kind;  ///< 0 = fp32 panels; 1 = int8 quant blob (ISSUE 7)
  bool operator==(const PackKey& o) const {
    return id == o.id && k == o.k && n == o.n && nc == o.nc &&
           tier == o.tier && kind == o.kind;
  }
};

struct PackKeyHash {
  std::size_t operator()(const PackKey& key) const {
    std::uint64_t h = key.id * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.k)) << 32;
    h ^= static_cast<std::uint32_t>(key.n) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.nc)) << 13);
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.tier)) << 47;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.kind)) << 21;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

using PackedBuffer = std::shared_ptr<const std::vector<float>>;

class PackCache {
 public:
  PackedBuffer find(const PackKey& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.data;
  }

  void insert(const PackKey& key, PackedBuffer data, std::size_t limit_bytes) {
    const std::size_t bytes = data->size() * sizeof(float);
    if (bytes > limit_bytes) return;  // would only evict itself
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.find(key) != map_.end()) return;  // racing packer won
    lru_.push_front(key);
    map_.emplace(key, Slot{std::move(data), lru_.begin()});
    bytes_ += bytes;
    evict_to(limit_bytes);
    packcache_bytes_now().set(static_cast<std::int64_t>(bytes_));
  }

  void trim(std::size_t limit_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    evict_to(limit_bytes);
    packcache_bytes_now().set(static_cast<std::int64_t>(bytes_));
  }

  void flush() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    bytes_ = 0;
    packcache_bytes_now().set(0);
  }

  std::size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Slot {
    PackedBuffer data;
    std::list<PackKey>::iterator pos;
  };

  void evict_to(std::size_t limit_bytes) {  // caller holds mu_
    while (bytes_ > limit_bytes && !lru_.empty()) {
      auto vit = map_.find(lru_.back());
      bytes_ -= vit->second.data->size() * sizeof(float);
      map_.erase(vit);
      lru_.pop_back();
      packcache_evictions().inc();
    }
  }

  mutable std::mutex mu_;
  std::list<PackKey> lru_;  ///< front = most recently used
  std::unordered_map<PackKey, Slot, PackKeyHash> map_;
  std::size_t bytes_ = 0;
};

PackCache& pack_cache() {
  // Leaked: kernels may run during static destruction of other objects.
  static PackCache* c = new PackCache;
  return *c;
}

std::atomic<long>& pack_limit_slot() {
  static std::atomic<long> v{-1};  // -1 = read STEPPING_PACK_CACHE_MB lazily
  return v;
}

/// Look up (or pack + insert) the fully packed Bt for a dot-family call.
/// Returns nullptr when caching is disabled; the caller then packs into its
/// arena per block as before. The miss path packs every NC block at its
/// deterministic offset with the same pack_b_block the uncached path uses,
/// so cached and uncached panels are byte-identical.
PackedBuffer acquire_packed(std::uint64_t pack_id, const float* bt, int k,
                            int n, int nc, int nr, IsaTier tier, bool* hit) {
  const long limit_mb = pack_cache_limit_mb();
  if (limit_mb <= 0) return nullptr;
  const PackKey key{pack_id, k, n, nc, static_cast<int>(tier), /*kind=*/0};
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm.packcache");
  if (PackedBuffer found = pack_cache().find(key)) {
    packcache_hits().inc();
    *hit = true;
    return found;
  }
  packcache_misses().inc();
  std::size_t total = 0;
  for (int jc = 0; jc < n; jc += nc) {
    const int bn = std::min(nc, n - jc);
    total += static_cast<std::size_t>((bn + nr - 1) / nr) * nr *
             static_cast<std::size_t>(k);
  }
  auto buf = std::make_shared<std::vector<float>>(total);
  std::size_t off = 0;
  for (int jc = 0; jc < n; jc += nc) {
    const int bn = std::min(nc, n - jc);
    pack_b_block<true>(bt, k, n, 0, jc, k, bn, nr, buf->data() + off);
    off += static_cast<std::size_t>((bn + nr - 1) / nr) * nr *
           static_cast<std::size_t>(k);
  }
  packcache_bytes_packed().inc(total * sizeof(float));
  PackedBuffer out = std::move(buf);
  pack_cache().insert(key, out, static_cast<std::size_t>(limit_mb) << 20);
  return out;
}

// The micro-kernels themselves (axpy_row_panels / dot_tile) moved to
// gemm_microkernel_impl.h for ISSUE 6: they are compiled once per ISA tier
// with that tier's -m flags (gemm_microkernel_{scalar,sse,avx2,avx512}.cc)
// and reached through the active KernelTable's function pointers. The
// driver below is tier-agnostic — it reads the table once per call and
// threads the tier's panel width `nr` through packing and tiling.

template <Fam F, bool ATrans, bool RowMask, bool ColMask, bool KMask>
void blocked_run(const float* a, const float* b, float* c, int m, int k, int n,
                 const unsigned char* rmask, const unsigned char* cmask,
                 const unsigned char* kmask, const GemmBlocking& cfg,
                 const float* bias = nullptr, bool relu = false,
                 std::uint64_t pack_id = 0) {
  obs::TraceScope span("gemm.blocked", "kernel");
  const microkernel::KernelTable& kt = microkernel::active_table();
  const int nr = kt.nr;
  const int nc = std::max(cfg.nc, nr);
  const int mc = std::max(cfg.mc, kMR);
  // Dot-family contraction is never chunked: accumulators must span the
  // full k so C sees exactly one update (determinism contract).
  const int kc = (F == Fam::kDot) ? k : std::max(1, std::min(cfg.kc, k));

  // Persistent packed-weight cache (dot family only: its packed layout is
  // chunk-free, one contiguous run of NC blocks). Cached panels are the
  // same bytes pack_b_block writes into the arena, so hit and miss paths
  // are bitwise interchangeable.
  bool cache_hit = false;
  PackedBuffer cached;
  if constexpr (F == Fam::kDot) {
    if (pack_id != 0) {
      cached = acquire_packed(pack_id, b, k, n, nc, nr, kt.tier, &cache_hit);
    }
  }
  span.arg("m", m);
  span.arg("k", k);
  span.arg("n", n);
  span.arg("hit", cache_hit ? 1 : 0);
  span.arg("isa", static_cast<int>(kt.tier));

  ArenaScope scope;
  const int max_bn = std::min(nc, n);
  const int max_panels = (max_bn + nr - 1) / nr;
  float* pack = nullptr;
  if (cached == nullptr) {
    pack = scope.alloc_floats(static_cast<std::size_t>(max_panels) * nr *
                              static_cast<std::size_t>(kc));
  }

  std::size_t cache_off = 0;  ///< float offset of this jc block in `cached`
  for (int jc = 0; jc < n; jc += nc) {
    const int bn = std::min(nc, n - jc);
    const int panels = (bn + nr - 1) / nr;
    const std::size_t block_off = cache_off;
    cache_off += static_cast<std::size_t>(panels) * nr *
                 static_cast<std::size_t>(k);
    for (int pc = 0; pc < k; pc += kc) {
      const int bk = std::min(kc, k - pc);
      const float* packed;
      if (cached != nullptr) {
        packed = cached->data() + block_off;  // dot family: bk == k
      } else {
        pack_b_block<F == Fam::kDot>(b, k, n, pc, jc, bk, bn, nr, pack);
        packed = pack;
      }
      // Fused epilogue fires on the chunk that completes the contraction
      // (the dot family never chunks, so always there).
      const bool epi = bias != nullptr && pc + bk == k;
      // Rows are partitioned exactly like the reference kernels; every C
      // row is owned by one chunk and element values are independent of
      // the partition, so any thread count yields identical bits.
      parallel_for_cost(0, m, static_cast<std::int64_t>(bk) * bn,
                        [&](std::int64_t ch0, std::int64_t ch1) {
        // Per-thread compact streams (axpy family): the gather touches A
        // once per (row group, KC chunk) and is amortized over every panel
        // of the NC block.
        ArenaScope ws(Arena::this_thread());
        float* vals = nullptr;
        int* idxs = nullptr;
        int* nnz = nullptr;
        if constexpr (F == Fam::kAxpy) {
          vals = ws.alloc_floats(static_cast<std::size_t>(mc) * bk);
          idxs = static_cast<int*>(
              ws.alloc(static_cast<std::size_t>(mc) * bk * sizeof(int)));
          nnz = static_cast<int*>(
              ws.alloc(static_cast<std::size_t>(mc) * sizeof(int)));
        }
        for (std::int64_t g0 = ch0; g0 < ch1; g0 += mc) {
          const std::int64_t g1 = std::min<std::int64_t>(g0 + mc, ch1);
          if constexpr (F == Fam::kAxpy) {
            const int rows = static_cast<int>(g1 - g0);
            for (int r = 0; r < rows; ++r) {
              const std::int64_t i = g0 + r;
              if (RowMask && rmask[i] == 0) {
                nnz[r] = -1;  // row skipped entirely; C never touched
                continue;
              }
              int t = 0;
              float* vrow = vals + static_cast<std::size_t>(r) * bk;
              int* irow = idxs + static_cast<std::size_t>(r) * bk;
              for (int p = 0; p < bk; ++p) {
                if constexpr (KMask) {
                  if (kmask[pc + p] == 0) continue;
                }
                const float av =
                    ATrans ? a[static_cast<std::size_t>(pc + p) * m + i]
                           : a[static_cast<std::size_t>(i) * k + pc + p];
                if (av == 0.0f) continue;  // the reference's masked skip
                vrow[t] = av;
                irow[t] = p;
                ++t;
              }
              nnz[r] = t;
            }
            int q = 0;
            for (; q + 1 < panels; q += 2) {
              // Panel pairs: 2*NR columns per pass, four independent
              // accumulator vectors — enough ILP to hide FP-add latency.
              const float* bp = packed + static_cast<std::size_t>(q) * bk * nr;
              const int j0 = jc + q * nr;
              const int w = std::min(2 * nr, jc + bn - j0);
              for (int r = 0; r < rows; ++r) {
                if (nnz[r] < 0) continue;
                float* crow = c + (static_cast<std::size_t>(g0) + r) * n + j0;
                kt.axpy(vals + static_cast<std::size_t>(r) * bk,
                        idxs + static_cast<std::size_t>(r) * bk, nnz[r], bp,
                        crow, w, bk, /*pair=*/true, epi,
                        epi ? bias[g0 + r] : 0.0f, relu);
              }
            }
            if (q < panels) {
              const float* bp = packed + static_cast<std::size_t>(q) * bk * nr;
              const int j0 = jc + q * nr;
              const int w = std::min(nr, jc + bn - j0);
              for (int r = 0; r < rows; ++r) {
                if (nnz[r] < 0) continue;
                float* crow = c + (static_cast<std::size_t>(g0) + r) * n + j0;
                kt.axpy(vals + static_cast<std::size_t>(r) * bk,
                        idxs + static_cast<std::size_t>(r) * bk, nnz[r], bp,
                        crow, w, bk, /*pair=*/false, epi,
                        epi ? bias[g0 + r] : 0.0f, relu);
              }
            }
            continue;
          }
          for (int q = 0; q < panels; ++q) {
            // One B micro-panel stays L1-resident across the whole MC row
            // group before moving to the next panel.
            const float* bp = packed + static_cast<std::size_t>(q) * bk * nr;
            const int j0 = jc + q * nr;
            const int w = std::min(nr, jc + bn - j0);
            const float* ebias = epi ? bias : nullptr;
            for (std::int64_t i0 = g0; i0 < g1; i0 += kMR) {
              const int h = static_cast<int>(
                  std::min<std::int64_t>(kMR, g1 - i0));
              kt.dot(a, c, k, n, i0, h, j0, w, bk, bp,
                     RowMask ? rmask : nullptr, ColMask ? cmask : nullptr,
                     ebias, relu);
            }
          }
        }
      });
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pack-cache public API.
// ---------------------------------------------------------------------------

std::uint64_t new_pack_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void flush_pack_cache() { pack_cache().flush(); }

long pack_cache_limit_mb() {
  long v = pack_limit_slot().load(std::memory_order_relaxed);
  if (v >= 0) return v;
  const long env = env_or_int("STEPPING_PACK_CACHE_MB", 64);
  long expected = -1;
  pack_limit_slot().compare_exchange_strong(expected, env < 0 ? 0 : env,
                                            std::memory_order_relaxed);
  return pack_limit_slot().load(std::memory_order_relaxed);
}

void set_pack_cache_limit_mb(long mb) {
  if (mb < 0) mb = 0;
  pack_limit_slot().store(mb, std::memory_order_relaxed);
  if (mb == 0) {
    pack_cache().flush();
  } else {
    pack_cache().trim(static_cast<std::size_t>(mb) << 20);
  }
}

std::size_t pack_cache_bytes() { return pack_cache().bytes(); }

std::size_t pack_cache_entries() { return pack_cache().entries(); }

std::shared_ptr<const std::vector<float>> pack_cache_find_kind(
    std::uint64_t pack_id, int k, int n, int nc, int tier, int kind) {
  if (pack_cache_limit_mb() <= 0 || pack_id == 0) return nullptr;
  const PackKey key{pack_id, k, n, nc, tier, kind};
  PackedBuffer found = pack_cache().find(key);
  if (found != nullptr) {
    packcache_hits().inc();
  } else {
    packcache_misses().inc();
  }
  return found;
}

void pack_cache_insert_kind(std::uint64_t pack_id, int k, int n, int nc,
                            int tier, int kind,
                            std::shared_ptr<const std::vector<float>> data) {
  const long limit_mb = pack_cache_limit_mb();
  if (limit_mb <= 0 || pack_id == 0 || data == nullptr) return;
  packcache_bytes_packed().inc(data->size() * sizeof(float));
  const PackKey key{pack_id, k, n, nc, tier, kind};
  pack_cache().insert(key, std::move(data),
                      static_cast<std::size_t>(limit_mb) << 20);
}

// ---------------------------------------------------------------------------
// Dispatchers.
// ---------------------------------------------------------------------------

void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm(a, b, c, m, k, n, accumulate);
    return;
  }
  blocked_dispatches().inc();
  if (!accumulate) std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
  blocked_run<Fam::kAxpy, false, false, false, false>(
      a, b, c, m, k, n, nullptr, nullptr, nullptr, cfg);
}

void gemm_tn(const float* at, const float* b, float* c, int m, int k, int n,
             bool accumulate) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_tn(at, b, c, m, k, n, accumulate);
    return;
  }
  blocked_dispatches().inc();
  if (!accumulate) std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
  blocked_run<Fam::kAxpy, true, false, false, false>(
      at, b, c, m, k, n, nullptr, nullptr, nullptr, cfg);
}

void gemm_nt(const float* a, const float* bt, float* c, int m, int k, int n,
             bool accumulate) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_nt(a, bt, c, m, k, n, accumulate);
    return;
  }
  blocked_dispatches().inc();
  if (!accumulate) std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
  blocked_run<Fam::kDot, false, false, false, false>(
      a, bt, c, m, k, n, nullptr, nullptr, nullptr, cfg);
}

void gemm_rows(const float* a, const float* b, float* c, int m, int k, int n,
               const unsigned char* row_active) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_rows(a, b, c, m, k, n, row_active);
    return;
  }
  blocked_dispatches().inc();
  blocked_run<Fam::kAxpy, false, true, false, false>(
      a, b, c, m, k, n, row_active, nullptr, nullptr, cfg);
}

void gemm_nt_cols(const float* a, const float* bt, float* c, int m, int k,
                  int n, const unsigned char* col_active) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_nt_cols(a, bt, c, m, k, n, col_active);
    return;
  }
  blocked_dispatches().inc();
  blocked_run<Fam::kDot, false, false, true, false>(
      a, bt, c, m, k, n, nullptr, col_active, nullptr, cfg);
}

void gemm_nt_rows_acc(const float* a, const float* bt, float* c, int m, int k,
                      int n, const unsigned char* row_active) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_nt_rows_acc(a, bt, c, m, k, n, row_active);
    return;
  }
  blocked_dispatches().inc();
  blocked_run<Fam::kDot, false, true, false, false>(
      a, bt, c, m, k, n, row_active, nullptr, nullptr, cfg);
}

void gemm_tn_rows(const float* at, const float* b, float* c, int m, int k,
                  int n, const unsigned char* k_active) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_tn_rows(at, b, c, m, k, n, k_active);
    return;
  }
  blocked_dispatches().inc();
  std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
  blocked_run<Fam::kAxpy, true, false, false, true>(
      at, b, c, m, k, n, nullptr, nullptr, k_active, cfg);
}

void gemm_nt_cols_bias(const float* a, const float* bt, float* c, int m, int k,
                       int n, const unsigned char* col_active,
                       const float* bias, bool relu, std::uint64_t pack_id) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_nt_cols_bias(a, bt, c, m, k, n, col_active, bias, relu);
    return;
  }
  blocked_dispatches().inc();
  blocked_run<Fam::kDot, false, false, true, false>(
      a, bt, c, m, k, n, nullptr, col_active, nullptr, cfg, bias, relu,
      pack_id);
}

void gemm_rows_bias(const float* a, const float* b, float* c, int m, int k,
                    int n, const unsigned char* row_active, const float* bias,
                    bool relu) {
  const GemmBlocking cfg = gemm_blocking();
  if (!gemm_uses_blocked(m, k, n, cfg)) {
    ref_dispatches().inc();
    microkernel::active_table().fb_gemm_rows_bias(a, b, c, m, k, n, row_active, bias, relu);
    return;
  }
  blocked_dispatches().inc();
  blocked_run<Fam::kAxpy, false, true, false, false>(
      a, b, c, m, k, n, row_active, nullptr, nullptr, cfg, bias, relu);
}

}  // namespace stepping
