// AVX2 int8 GEMM kernel (vpmaddubsw). Compiled with -mavx2. nr = 8: one
// 256-bit load per contraction granule covers 8 columns x 4 k-entries.
// Saturation-free under the [0,127] activation bound (i8gemm.h), so the
// accumulators are exact and bit-identical to the scalar reference.
#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace stepping::i8detail {

void run_avx2(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
              int n, const unsigned char* panel_active, std::int32_t* c) {
  constexpr int kNr = 8;
  const int panels = (n + kNr - 1) / kNr;
  const int kg_end = k4 / 4;
  const __m256i ones = _mm256_set1_epi16(1);
  for (int i = 0; i < m; ++i) {
    const std::uint8_t* ar = a + static_cast<std::size_t>(i) * k4;
    for (int q = 0; q < panels; ++q) {
      if (panel_active[q] == 0) continue;
      const std::int8_t* wp = packed + static_cast<std::size_t>(q) * k4 * kNr;
      __m256i acc = _mm256_setzero_si256();
      for (int kg = 0; kg < kg_end; ++kg) {
        std::int32_t a4;
        std::memcpy(&a4, ar + kg * 4, sizeof(a4));
        const __m256i av = _mm256_set1_epi32(a4);
        const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            wp + static_cast<std::size_t>(kg) * 32));
        acc = _mm256_add_epi32(acc,
                               _mm256_madd_epi16(_mm256_maddubs_epi16(av, wv), ones));
      }
      const int j0 = q * kNr;
      std::int32_t* cr = c + static_cast<std::size_t>(i) * n + j0;
      if (n - j0 >= kNr) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), acc);
      } else {
        alignas(32) std::int32_t tmp[kNr];
        _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
        const int w = n - j0;
        for (int jr = 0; jr < w; ++jr) cr[jr] = tmp[jr];
      }
    }
  }
}

}  // namespace stepping::i8detail
