// Dense math kernels: GEMM, im2col convolution, pooling, softmax, fills.
//
// Convolutions are lowered to GEMM through im2col; this is the standard
// CPU-friendly formulation and keeps a single tuned inner loop (gemm) for
// both Dense and Conv2d layers.
//
// The GEMM family, im2col, col2im, softmax_rows and the ReLU kernels execute
// on the global ThreadPool (util/thread_pool.h), partitioned so that every
// output element is owned by exactly one thread (col2im partitions over
// input channels — its scatter-add only overlaps within a channel). Results
// are bitwise identical to serial execution for any thread count
// (STEPPING_THREADS=1 forces serial).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace stepping {

// ---------------------------------------------------------------------------
// GEMM family. Row-major. Shapes asserted in debug builds.
// ---------------------------------------------------------------------------

/// C = A(MxK) * B(KxN)  (+ C if accumulate)
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);

/// C = A^T(MxK from KxM... ) — explicit variants to avoid materialized
/// transposes: C(MxN) = At^T * B where At is (K x M), B is (K x N).
void gemm_tn(const Tensor& at, const Tensor& b, Tensor& c, bool accumulate = false);

/// C(MxN) = A(MxK) * Bt^T where Bt is (N x K).
void gemm_nt(const Tensor& a, const Tensor& bt, Tensor& c, bool accumulate = false);

/// gemm computing only rows `i` of C with row_active[i] != 0; skipped rows
/// are left untouched (callers pass a zero-initialized C). Used to evaluate
/// only the units active in the executing subnet.
void gemm_rows(const Tensor& a, const Tensor& b, Tensor& c,
               const unsigned char* row_active);

/// gemm_nt computing only columns `j` of C with col_active[j] != 0 (each
/// column corresponds to one row of Bt, i.e. one output unit of a Dense
/// layer). Skipped columns are left untouched.
void gemm_nt_cols(const Tensor& a, const Tensor& bt, Tensor& c,
                  const unsigned char* col_active);

/// gemm_nt computing only rows `i` of C with row_active[i] != 0 (weight
/// gradients of active units); always accumulates into C.
void gemm_nt_rows_acc(const Tensor& a, const Tensor& bt, Tensor& c,
                      const unsigned char* row_active);

/// gemm_tn skipping contraction rows `p` with k_active[p] == 0 (whole-unit
/// skip for the input-gradient pass; zero rows contribute nothing).
void gemm_tn_rows(const Tensor& at, const Tensor& b, Tensor& c,
                  const unsigned char* k_active);

// ---------------------------------------------------------------------------
// Fused-epilogue variants (ISSUE 5): bias-add (+ optional ReLU) applied in
// the micro-kernel store, in the exact per-element op order of the unfused
// gemm -> bias -> relu sequence — bitwise identical, two fewer output
// passes. `pack_id` != 0 (from stepping::new_pack_id(), owned by the layer)
// routes the Bt packed panels through the persistent packed-weight cache;
// pass 0 for transient or training-time operands.
// ---------------------------------------------------------------------------

/// gemm_nt_cols, then per active column j: C(i,j) += bias[j] (+ ReLU).
void gemm_nt_cols_bias(const Tensor& a, const Tensor& bt, Tensor& c,
                       const unsigned char* col_active, const float* bias,
                       bool relu, std::uint64_t pack_id);

/// gemm_rows, then per active row i: C(i,:) += bias[i] (+ ReLU).
void gemm_rows_bias(const Tensor& a, const Tensor& b, Tensor& c,
                    const unsigned char* row_active, const float* bias,
                    bool relu);

// ---------------------------------------------------------------------------
// Reference GEMM kernels. Same contracts as the kernels above but always
// running the pre-blocking row-parallel loops (gemmref::* in gemm_kernel.h),
// regardless of STEPPING_GEMM_BLOCK. The blocked dispatch path is asserted
// bitwise identical to these by tests/gemm_kernel_test.cc and the bench_ops
// sweep; they also provide the "before" side of before/after benchmarks.
// ---------------------------------------------------------------------------

void gemm_ref(const Tensor& a, const Tensor& b, Tensor& c,
              bool accumulate = false);
void gemm_tn_ref(const Tensor& at, const Tensor& b, Tensor& c,
                 bool accumulate = false);
void gemm_nt_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                 bool accumulate = false);
void gemm_rows_ref(const Tensor& a, const Tensor& b, Tensor& c,
                   const unsigned char* row_active);
void gemm_nt_cols_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                      const unsigned char* col_active);
void gemm_nt_rows_acc_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                          const unsigned char* row_active);
void gemm_tn_rows_ref(const Tensor& at, const Tensor& b, Tensor& c,
                      const unsigned char* k_active);
void gemm_nt_cols_bias_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                           const unsigned char* col_active, const float* bias,
                           bool relu);
void gemm_rows_bias_ref(const Tensor& a, const Tensor& b, Tensor& c,
                        const unsigned char* row_active, const float* bias,
                        bool relu);

// ---------------------------------------------------------------------------
// Convolution lowering.
// ---------------------------------------------------------------------------

struct Conv2dGeometry {
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0;
  int kernel = 1;
  int stride = 1;
  int pad = 0;

  int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// Rows of the im2col matrix (= patch size).
  int patch() const { return in_c * kernel * kernel; }
};

/// im2col for one image: x is (C, H, W) flattened within a batch tensor;
/// writes a (patch, out_h*out_w) column matrix.
void im2col(const float* x, const Conv2dGeometry& g, float* cols);

/// Half-open spatial rectangle [r0, r1) x [c0, c1) over one H x W plane —
/// the dirty-region currency of the streaming delta path (ISSUE 10).
struct SpatialRegion {
  int r0 = 0, r1 = 0, c0 = 0, c1 = 0;

  bool empty() const { return r1 <= r0 || c1 <= c0; }
  int height() const { return r1 - r0; }
  int width() const { return c1 - c0; }
  std::int64_t area() const {
    return empty() ? 0
                   : static_cast<std::int64_t>(height()) * width();
  }
  bool covers(int h, int w) const {
    return r0 <= 0 && c0 <= 0 && r1 >= h && c1 >= w;
  }
  SpatialRegion clipped(int h, int w) const {
    SpatialRegion r{r0 < 0 ? 0 : r0, r1 > h ? h : r1, c0 < 0 ? 0 : c0,
                    c1 > w ? w : c1};
    return r;
  }
  static SpatialRegion full(int h, int w) { return {0, h, 0, w}; }

  bool operator==(const SpatialRegion& o) const {
    return r0 == o.r0 && r1 == o.r1 && c0 == o.c0 && c1 == o.c1;
  }
};

/// Map a dirty INPUT region through a convolution: the returned OUTPUT
/// region contains exactly the output positions whose receptive field
/// intersects `in` (the "dirty tiles + halo" set — every other output
/// element reads only clean input and keeps its cached value bit for bit).
/// Output position y reads input rows [y*stride - pad, y*stride - pad + k),
/// so the mapping is a pure index computation; tests/stream_test.cc pins it
/// against a brute-force receptive-field scan over a stride/pad/kernel grid.
SpatialRegion conv_dirty_out_region(const Conv2dGeometry& g,
                                    const SpatialRegion& in);

/// im2col restricted to the output positions inside `region` (clipped to the
/// output plane): writes a (patch, region.area()) column matrix whose column
/// j = (y - r0)*region.width() + (x - c0) is byte-identical to column
/// y*out_w + x of the full im2col. Partial lowering for the streaming delta
/// path: a GEMM over these columns reproduces the full pass's bits for the
/// region because every output element's FP sequence depends only on its own
/// column (see tensor/gemm_kernel.h's determinism contract).
void im2col_region(const float* x, const Conv2dGeometry& g,
                   const SpatialRegion& region, float* cols);

/// col2im scatter-add, inverse of im2col (for input gradients).
void col2im(const float* cols, const Conv2dGeometry& g, float* x);

// ---------------------------------------------------------------------------
// Pooling.
// ---------------------------------------------------------------------------

/// 2x2 (or kxk) max pooling, stride == k. Records argmax indices for the
/// backward pass (same shape as output).
void maxpool_forward(const Tensor& x, int k, Tensor& y, std::vector<int>& argmax);
void maxpool_backward(const Tensor& grad_y, const std::vector<int>& argmax,
                      Tensor& grad_x);

/// Global average pooling over H,W: (N,C,H,W) -> (N,C).
void global_avgpool_forward(const Tensor& x, Tensor& y);
void global_avgpool_backward(const Tensor& grad_y, int h, int w, Tensor& grad_x);

// ---------------------------------------------------------------------------
// Softmax / elementwise.
// ---------------------------------------------------------------------------

/// Row-wise softmax of logits (N, C) -> probabilities (N, C). Numerically
/// stabilized by max subtraction.
void softmax_rows(const Tensor& logits, Tensor& probs);

/// y = max(x, 0); mask records x > 0 for the backward pass.
void relu_forward(const Tensor& x, Tensor& y, std::vector<unsigned char>& mask);
void relu_backward(const Tensor& grad_y, const std::vector<unsigned char>& mask,
                   Tensor& grad_x);

/// y += x (shapes must match).
void add_inplace(Tensor& y, const Tensor& x);

/// y *= s.
void scale_inplace(Tensor& y, float s);

// ---------------------------------------------------------------------------
// Random fills for initialization.
// ---------------------------------------------------------------------------

/// Kaiming/He normal fill for ReLU networks: N(0, sqrt(2 / fan_in)).
void fill_kaiming_normal(Tensor& t, int fan_in, Rng& rng);

/// Uniform fill in [lo, hi).
void fill_uniform(Tensor& t, float lo, float hi, Rng& rng);

/// Standard normal fill scaled by stddev.
void fill_normal(Tensor& t, float mean, float stddev, Rng& rng);

}  // namespace stepping
