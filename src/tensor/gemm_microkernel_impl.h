// Shared implementation of the GEMM micro-kernel family, instantiated once
// per ISA tier (ISSUE 6). Include ONLY from gemm_microkernel_<tier>.cc —
// each tier TU is compiled with its own -m flags, and pulling these
// templates into a TU built with wider flags would let the compiler emit
// instructions the dispatcher never agreed to run.
//
// A tier supplies a vector-traits struct:
//
//   struct V {
//     static constexpr int kLanes;          // floats per vector
//     using Vec;                            // register type
//     static Vec  zero();
//     static Vec  load(const float* p);     // unaligned
//     static Vec  splat(float x);
//     static Vec  fmadd(Vec acc, Vec a, Vec b);  // acc (+)= a * b
//     static void store(float* p, Vec v);   // unaligned
//   };
//
// and an NR (packed-panel width, a multiple of kLanes). Everything that
// determines bits lives here: each C element owns exactly one accumulator
// lane, terms are applied in ascending contraction order, and the only
// per-tier degree of freedom is fmadd — two roundings (mul then add) on
// the scalar/sse tiers, one fused rounding on the FMA tiers. That is why
// outputs are bitwise-stable *within* a tier for any blocking, thread
// count or pack-cache state, while tiers with different fmadd semantics
// may legitimately differ.
#pragma once

#include <cstdint>
#include <cstring>

#include "tensor/gemm_kernel.h"

namespace stepping::microkernel::detail {

inline constexpr int kMR = kGemmMR;

/// Axpy-family inner kernel: one C row against one (Pair=false) or two
/// adjacent (Pair=true) packed B panels. The caller compacted the row's
/// contraction terms — ascending p, the reference's av == 0.0f terms
/// dropped — into (vals, idxs), so the hot loop is branchless: per element
/// the reference's operation sequence is replayed exactly, compaction only
/// removed the unpredictable per-term branch that would dominate a branchy
/// micro-kernel. Lanes at j >= w accumulate against the panel's zero
/// padding and are not stored back.
///
/// When `epi` is set (fused epilogue, final KC chunk only) the store adds
/// the row's bias — and applies ReLU if `relu` — to each element before
/// writing: the same value the unfused sequence produces, since the
/// reference's intermediate store/load round trips are bit-exact.
template <class V, int NR, bool Pair>
inline void axpy_row_panels(const float* vals, const int* idxs, int nnz,
                            const float* bp0, float* crow, int w, int bk,
                            bool epi, float bias, bool relu) {
  constexpr int kL = V::kLanes;
  constexpr int kW = Pair ? 2 * NR : NR;      // columns covered
  constexpr int kNV = kW / kL;                // accumulator vectors
  constexpr int kPV = NR / kL;                // vectors per panel
  static_assert(NR % kL == 0, "panel width must be a multiple of the lanes");
  const float* bp1 = bp0 + static_cast<std::size_t>(bk) * NR;  // next panel
  // Vector u covers columns [u*kL, u*kL + kL), all inside one panel; its
  // panel base and within-panel column offset never change across terms.
  const float* pan[kNV];
  for (int u = 0; u < kNV; ++u) {
    pan[u] = (u < kPV ? bp0 : bp1) + (u % kPV) * kL;
  }
  float init[kW];
  for (int j = 0; j < kW; ++j) init[j] = (j < w) ? crow[j] : 0.0f;
  typename V::Vec acc[kNV];
  for (int u = 0; u < kNV; ++u) acc[u] = V::load(init + kL * u);
  // Unrolled by two contraction terms: same accumulator sequence (term t
  // fully applied before term t+1), half the loop-control overhead.
  int t = 0;
  for (; t + 1 < nnz; t += 2) {
    const typename V::Vec a0 = V::splat(vals[t]);
    const typename V::Vec a1 = V::splat(vals[t + 1]);
    const std::size_t o0 = static_cast<std::size_t>(idxs[t]) * NR;
    const std::size_t o1 = static_cast<std::size_t>(idxs[t + 1]) * NR;
    for (int u = 0; u < kNV; ++u) acc[u] = V::fmadd(acc[u], a0, V::load(pan[u] + o0));
    for (int u = 0; u < kNV; ++u) acc[u] = V::fmadd(acc[u], a1, V::load(pan[u] + o1));
  }
  for (; t < nnz; ++t) {
    const typename V::Vec av = V::splat(vals[t]);
    const std::size_t off = static_cast<std::size_t>(idxs[t]) * NR;
    for (int u = 0; u < kNV; ++u) acc[u] = V::fmadd(acc[u], av, V::load(pan[u] + off));
  }
  float out[kW];
  for (int u = 0; u < kNV; ++u) V::store(out + kL * u, acc[u]);
  if (epi) {
    for (int j = 0; j < w; ++j) {
      float v = out[j] + bias;
      if (relu) v = v > 0.0f ? v : 0.0f;
      crow[j] = v;
    }
  } else {
    for (int j = 0; j < w; ++j) crow[j] = out[j];
  }
}

/// Dot-family MR x NR register tile over the FULL contraction (this family
/// never chunks k): accumulators start at zero, add every term in
/// ascending-p order, and C is updated exactly once per element — the
/// reference's single `crow[j] += acc` — so blocking matches bitwise. The
/// dot family takes A untransposed and has no contraction mask (gemm_nt,
/// gemm_nt_cols, gemm_nt_rows_acc), so `p` indexes A rows directly. Row
/// activity is fixed across the p loop, so its branch predicts perfectly —
/// unlike the axpy family's data-dependent zero skip, no compaction needed.
template <class V, int NR, bool RowMask, bool ColMask, bool Full>
inline void dot_tile(const float* a, float* c, int k, int n, std::int64_t i0,
                     int h, int j0, int w, int bk, const float* bp,
                     const unsigned char* rmask, const unsigned char* cmask,
                     const float* bias, bool relu) {
  constexpr int kL = V::kLanes;
  constexpr int kNV = NR / kL;
  const int hh = Full ? kMR : h;
  bool act[kMR];
  for (int r = 0; r < hh; ++r) act[r] = !RowMask || rmask[i0 + r] != 0;
  typename V::Vec acc[kMR][kNV];
  for (int r = 0; r < hh; ++r) {
    for (int u = 0; u < kNV; ++u) acc[r][u] = V::zero();
  }
  for (int p = 0; p < bk; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NR;
    typename V::Vec bv[kNV];
    for (int u = 0; u < kNV; ++u) bv[u] = V::load(brow + kL * u);
    for (int r = 0; r < hh; ++r) {
      if (RowMask && !act[r]) continue;
      const typename V::Vec av =
          V::splat(a[(static_cast<std::size_t>(i0) + r) * k + p]);
      for (int u = 0; u < kNV; ++u) acc[r][u] = V::fmadd(acc[r][u], av, bv[u]);
    }
  }
  for (int r = 0; r < hh; ++r) {
    if (RowMask && !act[r]) continue;
    float out[NR];
    for (int u = 0; u < kNV; ++u) V::store(out + kL * u, acc[r][u]);
    float* crow = c + (static_cast<std::size_t>(i0) + r) * n + j0;
    const int ww = Full ? NR : w;
    for (int j = 0; j < ww; ++j) {
      if (ColMask && cmask[j0 + j] == 0) continue;
      // Fused epilogue: the dot family updates C exactly once, so bias/relu
      // ride on that single store — same per-element op chain as the
      // unfused gemm -> bias -> relu passes (round trips are bit-exact).
      float v = crow[j] + out[j];
      if (bias != nullptr) {
        v += bias[j0 + j];
        if (relu) v = v > 0.0f ? v : 0.0f;
      }
      crow[j] = v;
    }
  }
}

/// KernelTable::axpy body — resolves the runtime pair flag to the template.
template <class V, int NR>
void axpy_entry(const float* vals, const int* idxs, int nnz, const float* bp0,
                float* crow, int w, int bk, bool pair, bool epi, float bias,
                bool relu) {
  if (pair) {
    axpy_row_panels<V, NR, true>(vals, idxs, nnz, bp0, crow, w, bk, epi, bias,
                                 relu);
  } else {
    axpy_row_panels<V, NR, false>(vals, idxs, nnz, bp0, crow, w, bk, epi, bias,
                                  relu);
  }
}

/// KernelTable::dot body — resolves mask presence and full-tile shape to the
/// eight dot_tile instantiations. The mask flags key off pointer nullness;
/// the driver passes nullptr for masks its family does not carry.
template <class V, int NR>
void dot_entry(const float* a, float* c, int k, int n, std::int64_t i0, int h,
               int j0, int w, int bk, const float* bp,
               const unsigned char* rmask, const unsigned char* cmask,
               const float* bias, bool relu) {
  const bool full = (h == kMR && w == NR);
  switch ((rmask ? 4 : 0) | (cmask ? 2 : 0) | (full ? 1 : 0)) {
    case 0:
      dot_tile<V, NR, false, false, false>(a, c, k, n, i0, h, j0, w, bk, bp,
                                           rmask, cmask, bias, relu);
      break;
    case 1:
      dot_tile<V, NR, false, false, true>(a, c, k, n, i0, h, j0, w, bk, bp,
                                          rmask, cmask, bias, relu);
      break;
    case 2:
      dot_tile<V, NR, false, true, false>(a, c, k, n, i0, h, j0, w, bk, bp,
                                          rmask, cmask, bias, relu);
      break;
    case 3:
      dot_tile<V, NR, false, true, true>(a, c, k, n, i0, h, j0, w, bk, bp,
                                         rmask, cmask, bias, relu);
      break;
    case 4:
      dot_tile<V, NR, true, false, false>(a, c, k, n, i0, h, j0, w, bk, bp,
                                          rmask, cmask, bias, relu);
      break;
    case 5:
      dot_tile<V, NR, true, false, true>(a, c, k, n, i0, h, j0, w, bk, bp,
                                         rmask, cmask, bias, relu);
      break;
    case 6:
      dot_tile<V, NR, true, true, false>(a, c, k, n, i0, h, j0, w, bk, bp,
                                         rmask, cmask, bias, relu);
      break;
    default:
      dot_tile<V, NR, true, true, true>(a, c, k, n, i0, h, j0, w, bk, bp,
                                        rmask, cmask, bias, relu);
      break;
  }
}

}  // namespace stepping::microkernel::detail
