// AVX512-VNNI int8 GEMM kernel (vpdpbusd). Compiled with -mavx512f
// -mavx512vnni; only reached when cpuid reports avx512vnni. nr = 16: one
// 512-bit load per contraction granule covers 16 columns x 4 k-entries,
// fused into the i32 accumulator in a single instruction — no i16
// intermediate at all, so exactness needs no saturation argument here.
#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace stepping::i8detail {

void run_vnni(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
              int n, const unsigned char* panel_active, std::int32_t* c) {
  constexpr int kNr = 16;
  const int panels = (n + kNr - 1) / kNr;
  const int kg_end = k4 / 4;
  for (int i = 0; i < m; ++i) {
    const std::uint8_t* ar = a + static_cast<std::size_t>(i) * k4;
    for (int q = 0; q < panels; ++q) {
      if (panel_active[q] == 0) continue;
      const std::int8_t* wp = packed + static_cast<std::size_t>(q) * k4 * kNr;
      __m512i acc = _mm512_setzero_si512();
      for (int kg = 0; kg < kg_end; ++kg) {
        std::int32_t a4;
        std::memcpy(&a4, ar + kg * 4, sizeof(a4));
        const __m512i av = _mm512_set1_epi32(a4);
        const __m512i wv = _mm512_loadu_si512(wp + static_cast<std::size_t>(kg) * 64);
        acc = _mm512_dpbusd_epi32(acc, av, wv);
      }
      const int j0 = q * kNr;
      const int w = std::min(kNr, n - j0);
      const __mmask16 mask =
          w >= kNr ? static_cast<__mmask16>(0xffff)
                   : static_cast<__mmask16>((1u << w) - 1u);
      _mm512_mask_storeu_epi32(c + static_cast<std::size_t>(i) * n + j0, mask,
                               acc);
    }
  }
}

}  // namespace stepping::i8detail
