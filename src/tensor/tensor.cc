#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace stepping {

std::int64_t Tensor::numel_of(const std::vector<int>& shape) {
  std::int64_t n = 1;
  for (const int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive extent");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(numel_of(shape_)), 0.0f);
}

Tensor::Tensor(std::initializer_list<int> shape) : Tensor(std::vector<int>(shape)) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (numel_of(shape_) != static_cast<std::int64_t>(data_.size())) {
    throw std::invalid_argument("Tensor: shape/data size mismatch");
  }
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  Tensor t = *this;
  t.reshape_inplace(std::move(new_shape));
  return t;
}

void Tensor::reshape_inplace(std::vector<int> new_shape) {
  if (numel_of(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch");
  }
  shape_ = std::move(new_shape);
}

double Tensor::sum() const {
  double s = 0.0;
  for (const float v : data_) s += v;
  return s;
}

std::int64_t Tensor::argmax() const {
  assert(numel() > 0);
  return std::max_element(data_.begin(), data_.end()) - data_.begin();
}

std::string Tensor::shape_str() const {
  std::ostringstream ss;
  ss << "[";
  for (int i = 0; i < rank(); ++i) {
    if (i > 0) ss << ", ";
    ss << shape_[static_cast<std::size_t>(i)];
  }
  ss << "]";
  return ss.str();
}

}  // namespace stepping
