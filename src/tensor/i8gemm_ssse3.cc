// SSSE3 int8 GEMM kernel (pmaddubsw). Compiled with -mssse3; only reached
// when cpuid reports SSSE3 (tensor/i8gemm.cc). nr = 4: one 128-bit load per
// contraction granule covers 4 columns x 4 k-entries.
//
// pmaddubsw's i16 saturation is unreachable under the quantization scheme
// (activations <= 127, see i8gemm.h), so the accumulators below are exact
// and bit-identical to the scalar reference.
#include <emmintrin.h>
#include <tmmintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace stepping::i8detail {

void run_ssse3(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
               int n, const unsigned char* panel_active, std::int32_t* c) {
  constexpr int kNr = 4;
  const int panels = (n + kNr - 1) / kNr;
  const int kg_end = k4 / 4;
  const __m128i ones = _mm_set1_epi16(1);
  for (int i = 0; i < m; ++i) {
    const std::uint8_t* ar = a + static_cast<std::size_t>(i) * k4;
    for (int q = 0; q < panels; ++q) {
      if (panel_active[q] == 0) continue;
      const std::int8_t* wp = packed + static_cast<std::size_t>(q) * k4 * kNr;
      __m128i acc = _mm_setzero_si128();
      for (int kg = 0; kg < kg_end; ++kg) {
        std::int32_t a4;
        std::memcpy(&a4, ar + kg * 4, sizeof(a4));
        const __m128i av = _mm_set1_epi32(a4);
        const __m128i wv = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(wp + static_cast<std::size_t>(kg) * 16));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(_mm_maddubs_epi16(av, wv), ones));
      }
      const int j0 = q * kNr;
      std::int32_t* cr = c + static_cast<std::size_t>(i) * n + j0;
      if (n - j0 >= kNr) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(cr), acc);
      } else {
        alignas(16) std::int32_t tmp[kNr];
        _mm_store_si128(reinterpret_cast<__m128i*>(tmp), acc);
        const int w = n - j0;
        for (int jr = 0; jr < w; ++jr) cr[jr] = tmp[jr];
      }
    }
  }
}

}  // namespace stepping::i8detail
