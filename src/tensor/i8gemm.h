// Int8 GEMM provider family (ISSUE 7): u8 x i8 -> i32 row-major GEMM
// micro-kernels behind the runtime ISA dispatch of tensor/gemm_isa.h.
//
// C(m x n, i32) = A(m x k4, u8) . B(k x n, i8, packed), where k4 is k
// rounded up to a multiple of 4 and both operands are zero-padded past k.
// B is pre-packed from its transposed form Wt (n x k, the layout Dense /
// Conv2d weights already use) into nr-wide column panels of k-groups of 4:
//
//   packed[(q * k4 + 4*kg) * nr + jr * 4 + t] = Wt(q*nr + jr, 4*kg + t)
//
// i.e. at each contraction step a kernel reads 4*nr contiguous bytes — the
// natural operand shape of pmaddubsw (SSSE3/AVX2) and vpdpbusd (AVX512-VNNI).
//
// Exactness contract (stronger than the fp32 tiers' per-tier stability):
// every provider produces BIT-IDENTICAL i32 accumulators. The quantization
// scheme (quant/quantize.h) emits activations in [0, 127] and weights in
// [-127, 127], so any adjacent-pair sum |a0*w0 + a1*w1| <= 2*127*127 = 32258
// < 32767 — the i16 saturation step of pmaddubsw is unreachable, and the
// remaining arithmetic is exact integer math in i32 (k4 * 32258 stays far
// below 2^31 for every supported k). The scalar provider replays the same
// products, so scalar == ssse3 == avx2 == avx512vnni bit for bit, and the
// "documented dequant error bound" between providers is exactly zero: any
// cross-provider difference is a bug, asserted by memcmp in tests and the
// bench_ops int8 sweep.
//
// Provider selection follows the active fp32 tier (isa_tier(), including
// STEPPING_ISA pins) and then clamps to what cpuid actually reports:
//   scalar -> scalar; sse -> ssse3 (pmaddubsw) when the host has SSSE3;
//   avx2 -> avx2; avx512 -> avx512vnni when cpuid reports VNNI, else avx2.
// Packed panels are nr-dependent, so pack-cache keys carry the provider id
// (gemm_kernel.h, pack kind 1).
#pragma once

#include <cstddef>
#include <cstdint>

namespace stepping {

/// One int8 GEMM provider. `id` is a stable identity for pack-cache keys
/// (panel layout depends on nr); `run` computes full nr-wide column panels,
/// skipping panels whose `panel_active` byte is 0 (their C entries are left
/// untouched — callers must not read them).
struct I8GemmKernel {
  int id;
  const char* name;
  int nr;  ///< packed panel width (columns)
  void (*run)(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
              int n, const unsigned char* panel_active, std::int32_t* c);
};

/// k rounded up to the kernel contraction granule (4).
inline int i8gemm_k4(int k) { return (k + 3) & ~3; }

/// Bytes of the packed operand for a (k x n) weight matrix at panel width nr.
inline std::size_t i8gemm_packed_bytes(int k, int n, int nr) {
  const std::size_t panels = (static_cast<std::size_t>(n) + nr - 1) / nr;
  return panels * static_cast<std::size_t>(nr) *
         static_cast<std::size_t>(i8gemm_k4(k));
}

/// Pack Wt (n x k, row-major, already quantized to i8) into the panel layout
/// above. Pads columns past n and contraction entries past k with 0, so
/// padded lanes contribute exactly 0 to every accumulator.
void i8gemm_pack(const std::int8_t* wt, int k, int n, int nr,
                 std::int8_t* out);

/// The provider the active ISA tier selects (see file comment). Re-evaluated
/// on every call so STEPPING_ISA pins and set_isa_tier() take effect.
const I8GemmKernel& i8gemm_kernel();

/// The scalar reference provider (parity baseline; always available).
const I8GemmKernel& i8gemm_ref_kernel();

/// Drive one provider over A (m x k, row-major fp-quantized u8 rows padded
/// to k4 with zeros) against pre-packed B: computes panel activity from
/// `col_active` (nullptr = all active), partitions rows across the thread
/// pool (rows are independent, integer math is exact, so the partition can
/// never change bits) and stores C(m x n, i32) for every column in an
/// active panel. Inactive panels' C entries are left untouched.
void i8gemm_run(const I8GemmKernel& kernel, const std::uint8_t* a, int m,
                int k, const std::int8_t* packed, int n,
                const unsigned char* col_active, std::int32_t* c);

}  // namespace stepping
