// A small dense float tensor.
//
// Design notes (see DESIGN.md §3):
//  * contiguous row-major storage, value semantics (copies are deep);
//  * shapes are vectors of positive extents; rank 0 = scalar is not used,
//    an empty tensor has numel() == 0;
//  * all heavy math lives in ops.h as free functions so the class stays a
//    plain data container with bounds-checked (debug) element access.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace stepping {

class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled with the given shape. All extents must be > 0.
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape);

  /// Construct from shape + data (data.size() must equal numel).
  Tensor(std::vector<int> shape, std::vector<float> data);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const {
    assert(i >= 0 && i < rank());
    return shape_[static_cast<std::size_t>(i)];
  }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D element access (row-major). Requires rank() == 2.
  float& at(int r, int c) {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }
  float at(int r, int c) const {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }

  /// 4-D element access (NCHW). Requires rank() == 4.
  float& at(int n, int c, int h, int w) {
    assert(rank() == 4);
    return data_[offset4(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const {
    assert(rank() == 4);
    return data_[offset4(n, c, h, w)];
  }

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Reinterpret with a new shape of equal numel; returns a copy of the
  /// metadata sharing no storage (data is copied — tensors are values).
  Tensor reshaped(std::vector<int> new_shape) const;

  /// In-place metadata-only reshape (numel must match).
  void reshape_inplace(std::vector<int> new_shape);

  /// Sum of all elements.
  double sum() const;

  /// Index of the max element (first on ties). Requires numel() > 0.
  std::int64_t argmax() const;

  /// "[2, 3, 4]" style shape string for diagnostics.
  std::string shape_str() const;

  static std::int64_t numel_of(const std::vector<int>& shape);

 private:
  std::size_t offset4(int n, int c, int h, int w) const {
    const std::size_t C = static_cast<std::size_t>(shape_[1]);
    const std::size_t H = static_cast<std::size_t>(shape_[2]);
    const std::size_t W = static_cast<std::size_t>(shape_[3]);
    return ((static_cast<std::size_t>(n) * C + static_cast<std::size_t>(c)) * H +
            static_cast<std::size_t>(h)) *
               W +
           static_cast<std::size_t>(w);
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace stepping
