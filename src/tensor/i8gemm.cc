#include "tensor/i8gemm.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"
#include "tensor/gemm_isa.h"
#include "util/arena.h"
#include "util/cpuid.h"
#include "util/thread_pool.h"

namespace stepping {

namespace i8detail {

// Per-tier kernels, each compiled in its own TU with that tier's -m flags
// (see tensor/CMakeLists.txt). The scalar kernel lives below in this TU.
#if defined(STEPPING_I8_HAVE_SSSE3)
void run_ssse3(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
               int n, const unsigned char* panel_active, std::int32_t* c);
#endif
#if defined(STEPPING_I8_HAVE_AVX2)
void run_avx2(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
              int n, const unsigned char* panel_active, std::int32_t* c);
#endif
#if defined(STEPPING_I8_HAVE_VNNI)
void run_vnni(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
              int n, const unsigned char* panel_active, std::int32_t* c);
#endif

namespace {

constexpr int kScalarNr = 8;

/// Reference kernel: same panel layout, plain integer loops. Products and
/// sums are exact in i32, so this defines the bits every SIMD provider must
/// reproduce.
void run_scalar(const std::uint8_t* a, int m, int k4, const std::int8_t* packed,
                int n, const unsigned char* panel_active, std::int32_t* c) {
  const int nr = kScalarNr;
  const int panels = (n + nr - 1) / nr;
  const int kg_end = k4 / 4;
  for (int i = 0; i < m; ++i) {
    const std::uint8_t* ar = a + static_cast<std::size_t>(i) * k4;
    for (int q = 0; q < panels; ++q) {
      if (panel_active[q] == 0) continue;
      const std::int8_t* wp = packed + static_cast<std::size_t>(q) * k4 * nr;
      const int j0 = q * nr;
      const int w = std::min(nr, n - j0);
      std::int32_t acc[kScalarNr] = {};
      for (int kg = 0; kg < kg_end; ++kg) {
        const std::uint8_t* a4 = ar + kg * 4;
        const std::int8_t* wk = wp + static_cast<std::size_t>(kg) * 4 * nr;
        for (int jr = 0; jr < nr; ++jr) {
          const std::int8_t* wj = wk + jr * 4;
          acc[jr] += static_cast<std::int32_t>(a4[0]) * wj[0] +
                     static_cast<std::int32_t>(a4[1]) * wj[1] +
                     static_cast<std::int32_t>(a4[2]) * wj[2] +
                     static_cast<std::int32_t>(a4[3]) * wj[3];
        }
      }
      std::int32_t* cr = c + static_cast<std::size_t>(i) * n + j0;
      for (int jr = 0; jr < w; ++jr) cr[jr] = acc[jr];
    }
  }
}

}  // namespace
}  // namespace i8detail

namespace {

const I8GemmKernel kScalarKernel{0, "scalar", i8detail::kScalarNr,
                                 i8detail::run_scalar};
#if defined(STEPPING_I8_HAVE_SSSE3)
const I8GemmKernel kSsse3Kernel{1, "ssse3", 4, i8detail::run_ssse3};
#endif
#if defined(STEPPING_I8_HAVE_AVX2)
const I8GemmKernel kAvx2Kernel{2, "avx2", 8, i8detail::run_avx2};
#endif
#if defined(STEPPING_I8_HAVE_VNNI)
const I8GemmKernel kVnniKernel{3, "avx512vnni", 16, i8detail::run_vnni};
#endif

}  // namespace

void i8gemm_pack(const std::int8_t* wt, int k, int n, int nr,
                 std::int8_t* out) {
  const int k4 = i8gemm_k4(k);
  const int panels = (n + nr - 1) / nr;
  const int kg_end = k4 / 4;
  for (int q = 0; q < panels; ++q) {
    std::int8_t* dst = out + static_cast<std::size_t>(q) * k4 * nr;
    for (int kg = 0; kg < kg_end; ++kg) {
      for (int jr = 0; jr < nr; ++jr) {
        const int j = q * nr + jr;
        for (int t = 0; t < 4; ++t) {
          const int kk = kg * 4 + t;
          dst[static_cast<std::size_t>(kg) * 4 * nr + jr * 4 + t] =
              (j < n && kk < k) ? wt[static_cast<std::size_t>(j) * k + kk]
                                : std::int8_t{0};
        }
      }
    }
  }
}

const I8GemmKernel& i8gemm_ref_kernel() { return kScalarKernel; }

const I8GemmKernel& i8gemm_kernel() {
  const CpuFeatures& cpu = cpu_features();
  switch (isa_tier()) {
    case IsaTier::kAvx512:
#if defined(STEPPING_I8_HAVE_VNNI)
      if (cpu.avx512vnni) return kVnniKernel;
#endif
      [[fallthrough]];
    case IsaTier::kAvx2:
#if defined(STEPPING_I8_HAVE_AVX2)
      if (cpu.avx2) return kAvx2Kernel;
#endif
      [[fallthrough]];
    case IsaTier::kSse:
#if defined(STEPPING_I8_HAVE_SSSE3)
      if (cpu.ssse3) return kSsse3Kernel;
#endif
      [[fallthrough]];
    case IsaTier::kScalar:
    default:
      return kScalarKernel;
  }
}

void i8gemm_run(const I8GemmKernel& kernel, const std::uint8_t* a, int m,
                int k, const std::int8_t* packed, int n,
                const unsigned char* col_active, std::int32_t* c) {
  obs::TraceScope span("i8gemm", "kernel");
  span.arg("m", m);
  span.arg("k", k);
  span.arg("n", n);
  span.arg("isa", kernel.id);
  const int k4 = i8gemm_k4(k);
  const int nr = kernel.nr;
  const int panels = (n + nr - 1) / nr;

  ArenaScope ws;
  auto* pa = static_cast<unsigned char*>(
      ws.alloc(static_cast<std::size_t>(panels)));
  for (int q = 0; q < panels; ++q) {
    if (col_active == nullptr) {
      pa[q] = 1;
      continue;
    }
    const int j0 = q * nr;
    const int w = std::min(nr, n - j0);
    unsigned char any = 0;
    for (int jr = 0; jr < w; ++jr) any |= col_active[j0 + jr];
    pa[q] = any != 0 ? 1 : 0;
  }

  parallel_for_cost(0, m, static_cast<std::int64_t>(k4) * n,
                    [&](std::int64_t i0, std::int64_t i1) {
    kernel.run(a + i0 * k4, static_cast<int>(i1 - i0), k4, packed, n, pa,
               c + i0 * n);
  });
}

}  // namespace stepping
