// Internal contract between the blocked GEMM driver (gemm_kernel.cc) and
// the per-ISA micro-kernel translation units (ISSUE 6).
//
// Each gemm_microkernel_<tier>.cc is compiled with that tier's -m flags and
// exports one KernelTable of function pointers; nothing else in the binary
// is built with those flags, so no instruction wider than the dispatcher's
// choice ever executes. The driver loads the active table once per kernel
// call and never mixes tiers within a call.
//
// The table functions are the two inner loops of the blocked path:
//  * axpy — one C row against one packed B panel (pair=false, NR columns)
//    or two adjacent panels (pair=true, 2*NR columns). The caller compacted
//    the row's contraction terms (ascending p, exact-zero A terms dropped)
//    into (vals, idxs); `epi` applies the fused bias(+ReLU) store on the
//    chunk completing the contraction.
//  * dot — an MR x NR register tile over the FULL contraction (this family
//    never chunks k): accumulators start at zero and C is updated exactly
//    once per element. rmask/cmask are null when that mask is absent;
//    bias != nullptr arms the fused epilogue.
// Semantics (including the per-element FP operation order *within* a lane
// discipline) are defined by gemm_microkernel_impl.h, which every tier TU
// instantiates with its own vector traits.
//
// The table also carries the tier's SMALL-SHAPE FALLBACK kernels (the
// fb_* slots): shapes below the blocked path's dispatch gates run these
// reference-structured loops, with the tier's own multiply-add semantics
// (gemm_fallback_impl.h). Every dispatch route therefore yields the same
// bits within a tier — values crossing the blocked/fallback routing
// boundary (incremental executor deltas vs full forwards) stay exactly
// reusable. The scalar and sse tiers alias gemmref::* here, preserving the
// pre-dispatch behavior bit for bit.
#pragma once

#include <cstdint>

#include "tensor/gemm_isa.h"

namespace stepping::microkernel {

using AxpyFn = void (*)(const float* vals, const int* idxs, int nnz,
                        const float* bp0, float* crow, int w, int bk,
                        bool pair, bool epi, float bias, bool relu);

using DotFn = void (*)(const float* a, float* c, int k, int n,
                       std::int64_t i0, int h, int j0, int w, int bk,
                       const float* bp, const unsigned char* rmask,
                       const unsigned char* cmask, const float* bias,
                       bool relu);

using FbGemmFn = void (*)(const float* a, const float* b, float* c, int m,
                          int k, int n, bool accumulate);
using FbMaskFn = void (*)(const float* a, const float* b, float* c, int m,
                          int k, int n, const unsigned char* mask);
using FbBiasFn = void (*)(const float* a, const float* b, float* c, int m,
                          int k, int n, const unsigned char* mask,
                          const float* bias, bool relu);

struct KernelTable {
  IsaTier tier;
  const char* name;  ///< == isa_tier_name(tier)
  int nr;            ///< packed-panel width in floats
  AxpyFn axpy;
  DotFn dot;
  // Small-shape fallback family (reference loop structure, tier madd).
  FbGemmFn fb_gemm;
  FbGemmFn fb_gemm_tn;
  FbGemmFn fb_gemm_nt;
  FbMaskFn fb_gemm_rows;
  FbMaskFn fb_gemm_nt_cols;
  FbMaskFn fb_gemm_nt_rows_acc;
  FbMaskFn fb_gemm_tn_rows;
  FbBiasFn fb_gemm_nt_cols_bias;
  FbBiasFn fb_gemm_rows_bias;
};

// Defined by the tier TUs the build included; gemm_isa.cc only references
// the ones gated in by the STEPPING_ISA_HAVE_* compile definitions.
const KernelTable* table_scalar();
const KernelTable* table_sse();
const KernelTable* table_avx2();
const KernelTable* table_avx512();

/// Table of the active tier (isa_tier()).
const KernelTable& active_table();

}  // namespace stepping::microkernel
