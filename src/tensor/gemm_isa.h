// Runtime ISA dispatch for the GEMM micro-kernel family (ISSUE 6).
//
// The register-blocked micro-kernels (gemm_kernel.h) are compiled four
// times, each translation unit with its own -m flags, into a per-tier
// kernel table:
//
//   tier     lanes  panel width NR  multiply-add
//   scalar       1               8  mul, then add (-ffp-contract=off)
//   sse          4               8  mul, then add (GCC vector extensions)
//   avx2         8              16  _mm256_fmadd_ps (fused)
//   avx512      16              32  _mm512_fmadd_ps (fused)
//
// Selection happens ONCE at startup: cpuid (util/cpuid.h) picks the widest
// tier both compiled into the binary and executable on the host, and
// STEPPING_ISA=scalar|sse|avx2|avx512 pins a lower tier for reproducibility.
// Requests above the host's capability clamp down with a STEPPING_LOG
// warning. The active tier is exported as the stepping_isa_tier gauge and as
// the "isa" arg on gemm.blocked trace spans.
//
// Determinism contract (generalizes the STEPPING_GEMM_BLOCK contract):
// outputs are BITWISE-STABLE PER TIER — for a fixed tier, every blocking
// configuration, thread count and pack-cache state produces identical bits,
// because the per-element FP operation sequence is fixed within a tier.
// Across tiers bits may differ: the FMA tiers (avx2, avx512) fuse each
// multiply-add into one rounding where scalar/sse round twice. The scalar
// and sse tiers replay the reference kernels' exact operation order and so
// reproduce the pre-dispatch (PR 4/5) results bit for bit; they are the
// tiers the blocked-vs-reference parity tests pin.
//
// Panel width NR varies across tiers, so the packed-weight cache key
// (gemm_kernel.h) includes the active tier; set_isa_tier additionally
// flushes the cache so panels for a retired tier do not pin capacity.
#pragma once

#include <string>

namespace stepping {

/// Ordered by capability: a host that can run tier T can run every tier
/// below it (scalar needs nothing, sse needs SSE2 — the x86-64 baseline).
enum class IsaTier : int { kScalar = 0, kSse = 1, kAvx2 = 2, kAvx512 = 3 };

/// "scalar", "sse", "avx2", "avx512".
const char* isa_tier_name(IsaTier t);

/// Parse a STEPPING_ISA value. Returns false (out untouched) for unknown
/// names; matching is exact and lowercase.
bool parse_isa_tier(const std::string& s, IsaTier* out);

/// True if the tier's micro-kernel TU was compiled into this binary (the
/// build gates AVX TUs on compiler flag support and x86 targets).
bool isa_tier_compiled(IsaTier t);

/// Widest tier that is both compiled in and executable on this host
/// (cpuid-probed once).
IsaTier detected_isa_tier();

/// What the environment requests right now: STEPPING_ISA parsed and clamped
/// to detected_isa_tier(), or detected_isa_tier() when unset/unknown.
/// Recomputed on every call (no logging); tests use it to restore state.
IsaTier env_isa_tier();

/// The active tier. First call performs the startup selection (env request
/// clamped to the host, logged via STEPPING_LOG) and sets the
/// stepping_isa_tier gauge.
IsaTier isa_tier();

/// Override the active tier (tests/benches). Clamps to detected_isa_tier()
/// with a warning, updates the gauge, and flushes the pack cache. Not
/// thread-safe against kernels in flight — call between phases, like
/// set_gemm_blocking.
void set_isa_tier(IsaTier t);

/// Packed-panel width (floats) of the active tier's micro-kernels.
int gemm_panel_width();

}  // namespace stepping
