// AVX-512 tier: 16-lane __m512 with _mm512_fmadd_ps. This TU (alone) is
// compiled with -mavx512f. Like the avx2 tier the fused multiply-add is an
// explicit intrinsic, so single rounding per term is the tier's contract;
// bits differ from scalar/sse but are stable within the tier.
//
// NR doubles again to 32: two 16-lane accumulators per panel, preserving
// the two-independent-accumulator ILP shape of the narrower tiers.
#include <immintrin.h>

#include "tensor/gemm_fallback_impl.h"
#include "tensor/gemm_microkernel.h"
#include "tensor/gemm_microkernel_impl.h"

namespace stepping::microkernel {

namespace {

/// Fused multiply-add for the fallback loops (see the avx2 tier): one
/// rounding per term, matching this tier's micro-kernels.
struct FusedMadd {
  static float madd(float a, float b, float c) {
    return __builtin_fmaf(a, b, c);
  }
};

struct V16 {
  static constexpr int kLanes = 16;
  using Vec = __m512;
  static Vec zero() { return _mm512_setzero_ps(); }
  static Vec load(const float* p) { return _mm512_loadu_ps(p); }
  static Vec splat(float x) { return _mm512_set1_ps(x); }
  static Vec fmadd(Vec acc, Vec a, Vec b) { return _mm512_fmadd_ps(a, b, acc); }
  static void store(float* p, Vec v) { _mm512_storeu_ps(p, v); }
};

constexpr int kNr = 32;

const KernelTable kTable = {IsaTier::kAvx512,
                            "avx512",
                            kNr,
                            &detail::axpy_entry<V16, kNr>,
                            &detail::dot_entry<V16, kNr>,
                            &detail::fb_gemm<FusedMadd>,
                            &detail::fb_gemm_tn<FusedMadd>,
                            &detail::fb_gemm_nt<FusedMadd>,
                            &detail::fb_gemm_rows<FusedMadd>,
                            &detail::fb_gemm_nt_cols<FusedMadd>,
                            &detail::fb_gemm_nt_rows_acc<FusedMadd>,
                            &detail::fb_gemm_tn_rows<FusedMadd>,
                            &detail::fb_gemm_nt_cols_bias<FusedMadd>,
                            &detail::fb_gemm_rows_bias<FusedMadd>};

}  // namespace

const KernelTable* table_avx512() { return &kTable; }

}  // namespace stepping::microkernel
