// Cache-blocked, panel-packed GEMM micro-kernel layer (ISSUE 4).
//
// Raw-pointer kernels under the Tensor API in ops.h. Each public kernel
// dispatches between
//  * the blocked path: BLIS-style jc/pc/ic tiling — NC-wide column blocks
//    of B packed into contiguous NR-wide panels (vectorization-friendly,
//    one cache-line row per contraction step), KC-deep contraction chunks,
//    MC-row groups that keep one B micro-panel L1-resident across
//    consecutive MR x NR register tiles — and
//  * the reference path (gemmref::*): the PR-1 row-parallel naive loops,
//    used for shapes too small to amortize packing and kept as the bitwise
//    ground truth for parity tests.
//
// Determinism contract (the repo-wide invariant from PR 1-3): for every
// kernel, every block-size configuration and every STEPPING_THREADS value,
// the blocked path produces output BITWISE IDENTICAL to the reference
// kernels. This holds by construction, because per output element C(i,j)
// both paths apply the exact same floating-point operations in the exact
// same order:
//  * axpy family (gemm, gemm_tn, gemm_rows, gemm_tn_rows): the reference
//    accumulates terms a(i,p) * b(p,j) directly into C in ascending-p
//    order, skipping terms whose A operand is exactly zero (masked
//    weights). The blocked path loads the C tile into registers, adds the
//    chunk's terms in the same ascending-p order with the same zero skip,
//    and stores — a store/load round trip between KC chunks preserves bits,
//    so chunked updates replay the reference sequence exactly.
//  * dot family (gemm_nt, gemm_nt_cols, gemm_nt_rows_acc): the reference
//    forms acc = 0, adds terms in ascending-p order (no zero skip), then
//    applies ONE C(i,j) += acc. The blocked path therefore never splits the
//    contraction: accumulators start at zero, run the full k in registers
//    (KC applies to the axpy family only), and C is touched once.
// Row/column/contraction masks short-circuit identically to the reference:
// skipped rows and columns are never loaded or stored.
//
// Block sizes come from STEPPING_GEMM_BLOCK ("MCxKCxNC", e.g. "64x256x256";
// "ref" forces the reference path) or set_gemm_blocking(); defaults target
// a ~256 KiB L2 share. Dispatch, packing and arena usage are instrumented
// with stepping_gemm_* counters and kernel.gemm.* trace spans.
#pragma once

#include <cstdint>

namespace stepping {

/// Tile configuration for the blocked path. All sizes are in elements and
/// are clamped to sane minima at use; they affect speed only, never bits.
struct GemmBlocking {
  int mc = 64;   ///< rows per group sharing one L1-resident B micro-panel
  int kc = 256;  ///< contraction chunk (axpy family; dot family runs full k)
  int nc = 1024;  ///< columns packed per pass (bounds the packed-panel bytes;
                  ///< wide so per-row term compaction is well amortized)
  bool force_ref = false;     ///< route everything through gemmref::*
  std::int64_t min_macs = 64 * 1024;  ///< below this m*k*n, use the reference
                                      ///< path (packing would dominate)
  int min_k = 32;  ///< below this contraction depth, use the reference path
                   ///< (per-panel fixed costs outweigh the short dot chains)
};

/// Register tile of the micro-kernel (compile-time; here for tests/docs).
inline constexpr int kGemmMR = 4;
inline constexpr int kGemmNR = 8;

/// Current configuration. First use parses STEPPING_GEMM_BLOCK.
GemmBlocking gemm_blocking();

/// Override the configuration (tests/benches). Not thread-safe against
/// kernels in flight — call between phases, like set_global_threads.
void set_gemm_blocking(const GemmBlocking& cfg);

/// The STEPPING_GEMM_BLOCK-derived default (what gemm_blocking() returns
/// until overridden).
GemmBlocking env_gemm_blocking();

/// True if (m, k, n) routes to the blocked path under cfg.
bool gemm_uses_blocked(std::int64_t m, std::int64_t k, std::int64_t n,
                       const GemmBlocking& cfg);

// ---------------------------------------------------------------------------
// Dispatching raw-pointer kernels. Same math and dimension conventions as
// the Tensor wrappers in ops.h (row-major; m/k/n as documented there).
// Callers owning arena or Tensor storage alike go through these.
// ---------------------------------------------------------------------------

/// C(m x n) = A(m x k) * B(k x n); zeroes C first unless `accumulate`.
void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate);

/// C(m x n) = At^T * B with At (k x m), B (k x n).
void gemm_tn(const float* at, const float* b, float* c, int m, int k, int n,
             bool accumulate);

/// C(m x n) = A(m x k) * Bt^T with Bt (n x k).
void gemm_nt(const float* a, const float* bt, float* c, int m, int k, int n,
             bool accumulate);

/// gemm over rows with row_active[i] != 0 only; other C rows untouched
/// (callers pass zeroed C).
void gemm_rows(const float* a, const float* b, float* c, int m, int k, int n,
               const unsigned char* row_active);

/// gemm_nt over columns with col_active[j] != 0 only; others untouched.
void gemm_nt_cols(const float* a, const float* bt, float* c, int m, int k,
                  int n, const unsigned char* col_active);

/// gemm_nt over rows with row_active[i] != 0, always accumulating into C.
void gemm_nt_rows_acc(const float* a, const float* bt, float* c, int m, int k,
                      int n, const unsigned char* row_active);

/// gemm_tn skipping contraction rows p with k_active[p] == 0; zeroes C.
void gemm_tn_rows(const float* at, const float* b, float* c, int m, int k,
                  int n, const unsigned char* k_active);

// ---------------------------------------------------------------------------
// Reference kernels: the pre-blocking row-parallel loops, verbatim. The
// parity grid (tests/gemm_kernel_test.cc) and the bench_ops sweep assert
// the blocked path against these byte for byte.
// ---------------------------------------------------------------------------
namespace gemmref {

void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate);
void gemm_tn(const float* at, const float* b, float* c, int m, int k, int n,
             bool accumulate);
void gemm_nt(const float* a, const float* bt, float* c, int m, int k, int n,
             bool accumulate);
void gemm_rows(const float* a, const float* b, float* c, int m, int k, int n,
               const unsigned char* row_active);
void gemm_nt_cols(const float* a, const float* bt, float* c, int m, int k,
                  int n, const unsigned char* col_active);
void gemm_nt_rows_acc(const float* a, const float* bt, float* c, int m, int k,
                      int n, const unsigned char* row_active);
void gemm_tn_rows(const float* at, const float* b, float* c, int m, int k,
                  int n, const unsigned char* k_active);

}  // namespace gemmref

}  // namespace stepping
