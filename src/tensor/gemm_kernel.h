// Cache-blocked, panel-packed GEMM micro-kernel layer (ISSUE 4).
//
// Raw-pointer kernels under the Tensor API in ops.h. Each public kernel
// dispatches between
//  * the blocked path: BLIS-style jc/pc/ic tiling — NC-wide column blocks
//    of B packed into contiguous NR-wide panels (vectorization-friendly,
//    one cache-line row per contraction step), KC-deep contraction chunks,
//    MC-row groups that keep one B micro-panel L1-resident across
//    consecutive MR x NR register tiles — and
//  * the reference path (gemmref::*): the PR-1 row-parallel naive loops,
//    used for shapes too small to amortize packing and kept as the bitwise
//    ground truth for parity tests.
//
// Determinism contract (the repo-wide invariant from PR 1-3, generalized
// per ISA tier in ISSUE 6): for every kernel, every block-size
// configuration, every STEPPING_THREADS value and every pack-cache state,
// the blocked path's output is BITWISE STABLE within the active ISA tier
// (tensor/gemm_isa.h). On the scalar and sse tiers that output is
// additionally BITWISE IDENTICAL to the reference kernels; the FMA tiers
// (avx2, avx512) fuse each multiply-add into a single rounding, so their
// bits differ from the reference but are equally stable within the tier.
// This holds by construction, because per output element C(i,j) all paths
// apply the same floating-point operations in the same per-element order
// (each element owns one accumulator lane; vector width never reorders a
// single element's term sequence):
//  * axpy family (gemm, gemm_tn, gemm_rows, gemm_tn_rows): the reference
//    accumulates terms a(i,p) * b(p,j) directly into C in ascending-p
//    order, skipping terms whose A operand is exactly zero (masked
//    weights). The blocked path loads the C tile into registers, adds the
//    chunk's terms in the same ascending-p order with the same zero skip,
//    and stores — a store/load round trip between KC chunks preserves bits,
//    so chunked updates replay the reference sequence exactly.
//  * dot family (gemm_nt, gemm_nt_cols, gemm_nt_rows_acc): the reference
//    forms acc = 0, adds terms in ascending-p order (no zero skip), then
//    applies ONE C(i,j) += acc. The blocked path therefore never splits the
//    contraction: accumulators start at zero, run the full k in registers
//    (KC applies to the axpy family only), and C is touched once.
// Row/column/contraction masks short-circuit identically to the reference:
// skipped rows and columns are never loaded or stored.
//
// Block sizes come from STEPPING_GEMM_BLOCK ("MCxKCxNC", e.g. "64x256x256";
// "ref" forces the reference path) or set_gemm_blocking(); defaults target
// a ~256 KiB L2 share. Dispatch, packing and arena usage are instrumented
// with stepping_gemm_* counters and kernel.gemm.* trace spans.
//
// Persistent packed-weight cache (ISSUE 5): dot-family kernels that take a
// `pack_id` (gemm_nt_cols_bias) can skip the pack stage entirely. The cache
// keys fully packed B buffers on (pack_id, k, n, NC, isa tier) — the tier
// is part of the key because panel width NR varies per tier (ISSUE 6), so
// panels packed for one tier are meaningless to another. `pack_id` values come
// from new_pack_id() and owners (MaskedLayer) draw a fresh id whenever the
// weight bytes change — bumping the per-Param `version` counter in
// SGD::step/deserialization feeds that staleness check. The cached bytes are
// exactly what pack_b would produce, so the bitwise-vs-reference contract
// holds by construction at every cache state. Capacity is bounded by
// STEPPING_PACK_CACHE_MB (default 64, 0 disables) with LRU eviction;
// instrumented with stepping_packcache_{hits,misses,bytes}_total (+
// evictions, current-bytes gauge) and `gemm.packcache` spans.
//
// Fused epilogues: *_bias kernels apply per-element bias-add (and optional
// ReLU) inside the micro-kernel store, in the exact per-element op order of
// the separate-kernel sequence gemm -> add bias -> relu. Per output element
// the chains are independent, and a float store/load round trip is
// bit-exact, so fusing is bitwise identical to the unfused sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace stepping {

/// Tile configuration for the blocked path. All sizes are in elements and
/// are clamped to sane minima at use; they affect speed only, never bits.
struct GemmBlocking {
  int mc = 64;   ///< rows per group sharing one L1-resident B micro-panel
  int kc = 256;  ///< contraction chunk (axpy family; dot family runs full k)
  int nc = 1024;  ///< columns packed per pass (bounds the packed-panel bytes;
                  ///< wide so per-row term compaction is well amortized)
  bool force_ref = false;     ///< route everything through gemmref::*
  std::int64_t min_macs = 64 * 1024;  ///< below this m*k*n, use the reference
                                      ///< path (packing would dominate)
  int min_k = 32;  ///< below this contraction depth, use the reference path
                   ///< (per-panel fixed costs outweigh the short dot chains)
};

/// Register-tile row count of the micro-kernel. Compile-time and identical
/// across ISA tiers (MR never affects bits or layout). The column count NR
/// is per-tier — query gemm_panel_width() in tensor/gemm_isa.h.
inline constexpr int kGemmMR = 4;

/// Current configuration. First use parses STEPPING_GEMM_BLOCK.
GemmBlocking gemm_blocking();

/// Override the configuration (tests/benches). Not thread-safe against
/// kernels in flight — call between phases, like set_global_threads.
/// Flushes the pack cache: block sizes change the packed-panel layout.
void set_gemm_blocking(const GemmBlocking& cfg);

/// The STEPPING_GEMM_BLOCK-derived default (what gemm_blocking() returns
/// until overridden).
GemmBlocking env_gemm_blocking();

/// True if (m, k, n) routes to the blocked path under cfg.
bool gemm_uses_blocked(std::int64_t m, std::int64_t k, std::int64_t n,
                       const GemmBlocking& cfg);

// ---------------------------------------------------------------------------
// Persistent packed-weight cache.
// ---------------------------------------------------------------------------

/// Globally unique, nonzero cache identity for one packed-operand snapshot.
/// Owners draw a fresh id whenever the operand's bytes change; ids are never
/// reused, so a stale entry can only ever miss (no pointer-aliasing hazard).
std::uint64_t new_pack_id();

/// Drop every cached packed buffer (blocking-config change, tests).
void flush_pack_cache();

/// Capacity override in MiB; <= 0 disables caching and flushes. Overrides
/// STEPPING_PACK_CACHE_MB (read once on first use, default 64).
void set_pack_cache_limit_mb(long mb);
long pack_cache_limit_mb();

/// Current cache occupancy (for tests / introspection).
std::size_t pack_cache_bytes();
std::size_t pack_cache_entries();

/// Alternate pack kinds (ISSUE 7) share the fp32 LRU cache — one capacity
/// budget, one eviction policy, the same id-based invalidation (a fresh
/// pack_id can only miss). Kind 0 is the fp32 panel layout owned by the
/// blocked path; kind 1 is the quant subsystem's int8 panel blob (packed
/// i8 panels + per-channel compensation sums + scales, stored as raw bytes
/// in the float vector). Other subsystems go through these two calls; the
/// `tier` field pins the layout-defining provider id.
std::shared_ptr<const std::vector<float>> pack_cache_find_kind(
    std::uint64_t pack_id, int k, int n, int nc, int tier, int kind);
void pack_cache_insert_kind(std::uint64_t pack_id, int k, int n, int nc,
                            int tier, int kind,
                            std::shared_ptr<const std::vector<float>> data);

// ---------------------------------------------------------------------------
// Dispatching raw-pointer kernels. Same math and dimension conventions as
// the Tensor wrappers in ops.h (row-major; m/k/n as documented there).
// Callers owning arena or Tensor storage alike go through these.
// ---------------------------------------------------------------------------

/// C(m x n) = A(m x k) * B(k x n); zeroes C first unless `accumulate`.
void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate);

/// C(m x n) = At^T * B with At (k x m), B (k x n).
void gemm_tn(const float* at, const float* b, float* c, int m, int k, int n,
             bool accumulate);

/// C(m x n) = A(m x k) * Bt^T with Bt (n x k).
void gemm_nt(const float* a, const float* bt, float* c, int m, int k, int n,
             bool accumulate);

/// gemm over rows with row_active[i] != 0 only; other C rows untouched
/// (callers pass zeroed C).
void gemm_rows(const float* a, const float* b, float* c, int m, int k, int n,
               const unsigned char* row_active);

/// gemm_nt over columns with col_active[j] != 0 only; others untouched.
void gemm_nt_cols(const float* a, const float* bt, float* c, int m, int k,
                  int n, const unsigned char* col_active);

/// gemm_nt over rows with row_active[i] != 0, always accumulating into C.
void gemm_nt_rows_acc(const float* a, const float* bt, float* c, int m, int k,
                      int n, const unsigned char* row_active);

/// gemm_tn skipping contraction rows p with k_active[p] == 0; zeroes C.
void gemm_tn_rows(const float* at, const float* b, float* c, int m, int k,
                  int n, const unsigned char* k_active);

// ---------------------------------------------------------------------------
// Fused-epilogue kernels (bias-add + optional ReLU in the store).
// ---------------------------------------------------------------------------

/// gemm_nt_cols, then per active column j: C(i,j) += bias[j], and if `relu`
/// C(i,j) = max(C(i,j), 0) — fused into the single C store, bitwise
/// identical to the unfused sequence (inactive columns stay untouched; a
/// zero-filled C then matches the reference's relu(0) == +0 bit for bit).
/// `pack_id` != 0 additionally routes Bt's packed panels through the
/// persistent cache (pass 0 for transient operands, e.g. during training).
void gemm_nt_cols_bias(const float* a, const float* bt, float* c, int m, int k,
                       int n, const unsigned char* col_active,
                       const float* bias, bool relu, std::uint64_t pack_id);

/// gemm_rows, then per active row i: C(i,j) += bias[i] for every j, plus the
/// optional ReLU — the Conv2d forward epilogue (bias per output unit). The
/// B operand (im2col patches) is transient, so there is no pack_id here.
void gemm_rows_bias(const float* a, const float* b, float* c, int m, int k,
                    int n, const unsigned char* row_active, const float* bias,
                    bool relu);

// ---------------------------------------------------------------------------
// Reference kernels: the pre-blocking row-parallel loops, verbatim. The
// parity grid (tests/gemm_kernel_test.cc) and the bench_ops sweep assert
// the blocked path against these byte for byte on the scalar/sse tiers;
// the FMA tiers are instead asserted bitwise-stable within the tier.
// ---------------------------------------------------------------------------
namespace gemmref {

void gemm(const float* a, const float* b, float* c, int m, int k, int n,
          bool accumulate);
void gemm_tn(const float* at, const float* b, float* c, int m, int k, int n,
             bool accumulate);
void gemm_nt(const float* a, const float* bt, float* c, int m, int k, int n,
             bool accumulate);
void gemm_rows(const float* a, const float* b, float* c, int m, int k, int n,
               const unsigned char* row_active);
void gemm_nt_cols(const float* a, const float* bt, float* c, int m, int k,
                  int n, const unsigned char* col_active);
void gemm_nt_rows_acc(const float* a, const float* bt, float* c, int m, int k,
                      int n, const unsigned char* row_active);
void gemm_tn_rows(const float* at, const float* b, float* c, int m, int k,
                  int n, const unsigned char* k_active);
void gemm_nt_cols_bias(const float* a, const float* bt, float* c, int m, int k,
                       int n, const unsigned char* col_active,
                       const float* bias, bool relu);
void gemm_rows_bias(const float* a, const float* b, float* c, int m, int k,
                    int n, const unsigned char* row_active, const float* bias,
                    bool relu);

}  // namespace gemmref

}  // namespace stepping
