#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/trace.h"
#include "tensor/gemm_kernel.h"
#include "util/thread_pool.h"

namespace stepping {

// ---------------------------------------------------------------------------
// GEMM. The Tensor wrappers validate shapes and forward to the dispatch
// layer in gemm_kernel.h, which routes between the cache-blocked
// panel-packed path and the reference loops (kept below as *_ref).
//
// All kernels are partitioned over output rows of C: each row is owned by
// exactly one parallel_for chunk, and per output element the accumulation
// runs in ascending contraction order in both paths, so results are bitwise
// identical for any thread count AND any block size, and the subnet reuse
// invariants hold exactly.
// ---------------------------------------------------------------------------

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm");
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  gemm(a.data(), b.data(), c.data(), m, k, n, accumulate);
}

void gemm_tn(const Tensor& at, const Tensor& b, Tensor& c, bool accumulate) {
  // C(MxN) = At^T * B, At is (K x M), B is (K x N).
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_tn");
  assert(at.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const int k = at.dim(0), m = at.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_tn(at.data(), b.data(), c.data(), m, k, n, accumulate);
}

void gemm_nt(const Tensor& a, const Tensor& bt, Tensor& c, bool accumulate) {
  // C(MxN) = A(MxK) * Bt^T, Bt is (N x K).
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_nt");
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  const int m = a.dim(0), k = a.dim(1), n = bt.dim(0);
  assert(bt.dim(1) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_nt(a.data(), bt.data(), c.data(), m, k, n, accumulate);
}

void gemm_rows(const Tensor& a, const Tensor& b, Tensor& c,
               const unsigned char* row_active) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_rows");
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_rows(a.data(), b.data(), c.data(), m, k, n, row_active);
}

void gemm_nt_cols(const Tensor& a, const Tensor& bt, Tensor& c,
                  const unsigned char* col_active) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_nt_cols");
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  const int m = a.dim(0), k = a.dim(1), n = bt.dim(0);
  assert(bt.dim(1) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_nt_cols(a.data(), bt.data(), c.data(), m, k, n, col_active);
}

void gemm_nt_rows_acc(const Tensor& a, const Tensor& bt, Tensor& c,
                      const unsigned char* row_active) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_nt_rows_acc");
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  const int m = a.dim(0), k = a.dim(1), n = bt.dim(0);
  assert(bt.dim(1) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_nt_rows_acc(a.data(), bt.data(), c.data(), m, k, n, row_active);
}

void gemm_tn_rows(const Tensor& at, const Tensor& b, Tensor& c,
                  const unsigned char* k_active) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_tn_rows");
  assert(at.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const int k = at.dim(0), m = at.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_tn_rows(at.data(), b.data(), c.data(), m, k, n, k_active);
}

void gemm_nt_cols_bias(const Tensor& a, const Tensor& bt, Tensor& c,
                       const unsigned char* col_active, const float* bias,
                       bool relu, std::uint64_t pack_id) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_nt_cols_bias");
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  const int m = a.dim(0), k = a.dim(1), n = bt.dim(0);
  assert(bt.dim(1) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_nt_cols_bias(a.data(), bt.data(), c.data(), m, k, n, col_active, bias,
                    relu, pack_id);
}

void gemm_rows_bias(const Tensor& a, const Tensor& b, Tensor& c,
                    const unsigned char* row_active, const float* bias,
                    bool relu) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "gemm_rows_bias");
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);
  gemm_rows_bias(a.data(), b.data(), c.data(), m, k, n, row_active, bias,
                 relu);
}

// ---------------------------------------------------------------------------
// Reference kernels (Tensor wrappers over gemmref::*), for parity tests
// and before/after benchmarking. Never dispatch to the blocked path.
// ---------------------------------------------------------------------------

void gemm_ref(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  gemmref::gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1),
                accumulate);
}

void gemm_tn_ref(const Tensor& at, const Tensor& b, Tensor& c,
                 bool accumulate) {
  assert(at.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  gemmref::gemm_tn(at.data(), b.data(), c.data(), at.dim(1), at.dim(0),
                   b.dim(1), accumulate);
}

void gemm_nt_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                 bool accumulate) {
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  gemmref::gemm_nt(a.data(), bt.data(), c.data(), a.dim(0), a.dim(1),
                   bt.dim(0), accumulate);
}

void gemm_rows_ref(const Tensor& a, const Tensor& b, Tensor& c,
                   const unsigned char* row_active) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  gemmref::gemm_rows(a.data(), b.data(), c.data(), a.dim(0), a.dim(1),
                     b.dim(1), row_active);
}

void gemm_nt_cols_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                      const unsigned char* col_active) {
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  gemmref::gemm_nt_cols(a.data(), bt.data(), c.data(), a.dim(0), a.dim(1),
                        bt.dim(0), col_active);
}

void gemm_nt_rows_acc_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                          const unsigned char* row_active) {
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  gemmref::gemm_nt_rows_acc(a.data(), bt.data(), c.data(), a.dim(0), a.dim(1),
                            bt.dim(0), row_active);
}

void gemm_tn_rows_ref(const Tensor& at, const Tensor& b, Tensor& c,
                      const unsigned char* k_active) {
  assert(at.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  gemmref::gemm_tn_rows(at.data(), b.data(), c.data(), at.dim(1), at.dim(0),
                        b.dim(1), k_active);
}

void gemm_nt_cols_bias_ref(const Tensor& a, const Tensor& bt, Tensor& c,
                           const unsigned char* col_active, const float* bias,
                           bool relu) {
  assert(a.rank() == 2 && bt.rank() == 2 && c.rank() == 2);
  gemmref::gemm_nt_cols_bias(a.data(), bt.data(), c.data(), a.dim(0), a.dim(1),
                             bt.dim(0), col_active, bias, relu);
}

void gemm_rows_bias_ref(const Tensor& a, const Tensor& b, Tensor& c,
                        const unsigned char* row_active, const float* bias,
                        bool relu) {
  assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
  gemmref::gemm_rows_bias(a.data(), b.data(), c.data(), a.dim(0), a.dim(1),
                          b.dim(1), row_active, bias, relu);
}

// ---------------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------------

void im2col(const float* x, const Conv2dGeometry& g, float* cols) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "im2col");
  const int oh = g.out_h(), ow = g.out_w();
  const int spatial = oh * ow;
  const int kk = g.kernel * g.kernel;
  // cols is (patch, spatial) row-major: row index r = (c*k + kh)*k + kw.
  // Each patch row is written by exactly one chunk, so parallel lowering is
  // bitwise identical to the serial loop.
  parallel_for_cost(0, static_cast<std::int64_t>(g.in_c) * kk, spatial,
                    [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const int c = static_cast<int>(r / kk);
      const int kh = static_cast<int>((r / g.kernel) % g.kernel);
      const int kw = static_cast<int>(r % g.kernel);
      const float* xc = x + static_cast<std::size_t>(c) * g.in_h * g.in_w;
      float* crow = cols + static_cast<std::size_t>(r) * spatial;
      for (int y = 0; y < oh; ++y) {
        const int iy = y * g.stride + kh - g.pad;
        if (iy < 0 || iy >= g.in_h) {
          std::memset(crow + static_cast<std::size_t>(y) * ow, 0,
                      sizeof(float) * static_cast<std::size_t>(ow));
          continue;
        }
        const float* xrow = xc + static_cast<std::size_t>(iy) * g.in_w;
        float* orow = crow + static_cast<std::size_t>(y) * ow;
        for (int xo = 0; xo < ow; ++xo) {
          const int ix = xo * g.stride + kw - g.pad;
          orow[xo] = (ix >= 0 && ix < g.in_w) ? xrow[ix] : 0.0f;
        }
      }
    }
  });
}

namespace {

/// 1-D receptive-field intersection: output coords y (stride s, pad p,
/// kernel k) reading any input coord in [i0, i1). Empty input -> empty.
void dirty_out_axis(int i0, int i1, int k, int s, int p, int out_n, int* y0,
                    int* y1) {
  if (i1 <= i0) {
    *y0 = *y1 = 0;
    return;
  }
  // Overlap iff y*s - p < i1 AND y*s - p + k > i0.
  //  * first dirty y: smallest y with y*s > i0 - k + p;
  //  * first clean y after: smallest y with y*s - p >= i1.
  const int lo_num = i0 - k + p;  // need y*s > lo_num
  int lo = lo_num < 0 ? 0 : lo_num / s + 1;
  const int hi_num = i1 + p;  // need y*s >= hi_num to be clean
  int hi = hi_num <= 0 ? 0 : (hi_num + s - 1) / s;
  if (lo < 0) lo = 0;
  if (hi > out_n) hi = out_n;
  *y0 = lo;
  *y1 = hi < lo ? lo : hi;
}

}  // namespace

SpatialRegion conv_dirty_out_region(const Conv2dGeometry& g,
                                    const SpatialRegion& in) {
  SpatialRegion out;
  const SpatialRegion clipped = in.clipped(g.in_h, g.in_w);
  dirty_out_axis(clipped.r0, clipped.r1, g.kernel, g.stride, g.pad, g.out_h(),
                 &out.r0, &out.r1);
  dirty_out_axis(clipped.c0, clipped.c1, g.kernel, g.stride, g.pad, g.out_w(),
                 &out.c0, &out.c1);
  if (out.empty()) return SpatialRegion{};
  return out;
}

void im2col_region(const float* x, const Conv2dGeometry& g,
                   const SpatialRegion& region, float* cols) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "im2col_region");
  const SpatialRegion reg = region.clipped(g.out_h(), g.out_w());
  if (reg.empty()) return;
  const int rw = reg.width();
  const std::int64_t spatial = reg.area();
  const int kk = g.kernel * g.kernel;
  // Same row-ownership partition as im2col: each patch row is written by
  // exactly one chunk (and the values are pure copies, so the output is
  // order-independent anyway).
  parallel_for_cost(0, static_cast<std::int64_t>(g.in_c) * kk, spatial,
                    [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const int c = static_cast<int>(r / kk);
      const int kh = static_cast<int>((r / g.kernel) % g.kernel);
      const int kw = static_cast<int>(r % g.kernel);
      const float* xc = x + static_cast<std::size_t>(c) * g.in_h * g.in_w;
      float* crow = cols + static_cast<std::size_t>(r) * spatial;
      for (int y = reg.r0; y < reg.r1; ++y) {
        const int iy = y * g.stride + kh - g.pad;
        float* orow = crow + static_cast<std::size_t>(y - reg.r0) * rw;
        if (iy < 0 || iy >= g.in_h) {
          std::memset(orow, 0, sizeof(float) * static_cast<std::size_t>(rw));
          continue;
        }
        const float* xrow = xc + static_cast<std::size_t>(iy) * g.in_w;
        for (int xo = reg.c0; xo < reg.c1; ++xo) {
          const int ix = xo * g.stride + kw - g.pad;
          orow[xo - reg.c0] = (ix >= 0 && ix < g.in_w) ? xrow[ix] : 0.0f;
        }
      }
    }
  });
}

// col2im was left serial in ISSUE 1 because its scatter-add overlaps across
// patch rows. The overlap is confined to ONE input channel, though: patch
// row r = (c*k + kh)*k + kw only ever writes into channel c's plane, so
// partitioning over channels gives every thread a private accumulation
// region of the output — the per-thread accumulation buffer degenerates to
// a disjoint slice of x itself (no scratch copies, no cross-thread
// reduction), and within a channel each thread applies the contributions in
// exactly the serial (kh, kw, y, x) order. Result: bitwise identical to the
// serial loop for any thread count, same as the rest of the kernel family.
void col2im(const float* cols, const Conv2dGeometry& g, float* x) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "col2im");
  const int oh = g.out_h(), ow = g.out_w();
  const int spatial = oh * ow;
  const std::int64_t kk = static_cast<std::int64_t>(g.kernel) * g.kernel;
  parallel_for_cost(0, g.in_c, kk * spatial,
                    [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      float* xc = x + static_cast<std::size_t>(c) * g.in_h * g.in_w;
      std::memset(xc, 0,
                  sizeof(float) * static_cast<std::size_t>(g.in_h) * g.in_w);
      for (int kh = 0; kh < g.kernel; ++kh) {
        for (int kw = 0; kw < g.kernel; ++kw) {
          const float* crow =
              cols + (static_cast<std::size_t>(c) * g.kernel * g.kernel +
                      static_cast<std::size_t>(kh) * g.kernel + kw) *
                         spatial;
          for (int y = 0; y < oh; ++y) {
            const int iy = y * g.stride + kh - g.pad;
            if (iy < 0 || iy >= g.in_h) continue;
            float* xrow = xc + static_cast<std::size_t>(iy) * g.in_w;
            const float* orow = crow + static_cast<std::size_t>(y) * ow;
            for (int xo = 0; xo < ow; ++xo) {
              const int ix = xo * g.stride + kw - g.pad;
              if (ix >= 0 && ix < g.in_w) xrow[ix] += orow[xo];
            }
          }
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Pooling. The plane loops are partitioned over (image, channel) planes:
// every output plane (and, for the backward scatter, every input plane —
// argmax indices never cross planes) is owned by exactly one thread, and
// within a plane the serial order is kept, so results are bitwise identical
// to serial for any thread count.
// ---------------------------------------------------------------------------

void maxpool_forward(const Tensor& x, int k, Tensor& y, std::vector<int>& argmax) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "maxpool");
  assert(x.rank() == 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h / k, ow = w / k;
  assert(oh > 0 && ow > 0);
  y = Tensor({n, c, oh, ow});
  argmax.assign(static_cast<std::size_t>(y.numel()), 0);
  const float* px = x.data();
  float* py = y.data();
  int* pam = argmax.data();
  const int ospatial = oh * ow;
  parallel_for_cost(0, static_cast<std::int64_t>(n) * c,
                    static_cast<std::int64_t>(ospatial) * k * k,
                    [&](std::int64_t pl0, std::int64_t pl1) {
    for (std::int64_t pl = pl0; pl < pl1; ++pl) {
      const float* plane = px + static_cast<std::size_t>(pl) * h * w;
      std::int64_t oi = pl * ospatial;
      for (int yy = 0; yy < oh; ++yy) {
        for (int xx = 0; xx < ow; ++xx) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = 0;
          for (int dy = 0; dy < k; ++dy) {
            for (int dx = 0; dx < k; ++dx) {
              const int iy = yy * k + dy, ix = xx * k + dx;
              const int idx = iy * w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          py[oi] = best;
          pam[oi] = static_cast<int>(static_cast<std::size_t>(pl) * h * w) +
                    best_idx;
          ++oi;
        }
      }
    }
  });
}

void maxpool_backward(const Tensor& grad_y, const std::vector<int>& argmax,
                      Tensor& grad_x) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "maxpool_backward");
  grad_x.zero();
  float* gx = grad_x.data();
  const float* gy = grad_y.data();
  const int* pam = argmax.data();
  // Pool windows are disjoint (stride == k), so no two outputs share an
  // argmax target; any partition of the output range scatters to disjoint
  // grad_x cells. Partitioning at plane granularity additionally keeps each
  // thread's writes within its own input planes (cache friendliness); the
  // plane size divides grad_y.numel() exactly.
  const int ospatial = grad_y.dim(2) * grad_y.dim(3);
  parallel_for_cost(0, static_cast<std::int64_t>(grad_y.dim(0)) * grad_y.dim(1),
                    ospatial, [&](std::int64_t pl0, std::int64_t pl1) {
    for (std::int64_t i = pl0 * ospatial; i < pl1 * ospatial; ++i) {
      gx[pam[static_cast<std::size_t>(i)]] += gy[i];
    }
  });
}

void global_avgpool_forward(const Tensor& x, Tensor& y) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "global_avgpool");
  assert(x.rank() == 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  y = Tensor({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* px = x.data();
  float* py = y.data();
  parallel_for_cost(0, static_cast<std::int64_t>(n) * c, h * w,
                    [&](std::int64_t pl0, std::int64_t pl1) {
    for (std::int64_t pl = pl0; pl < pl1; ++pl) {
      const float* plane = px + static_cast<std::size_t>(pl) * h * w;
      float s = 0.0f;
      for (int i = 0; i < h * w; ++i) s += plane[i];
      py[pl] = s * inv;
    }
  });
}

void global_avgpool_backward(const Tensor& grad_y, int h, int w, Tensor& grad_x) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "global_avgpool_backward");
  assert(grad_y.rank() == 2 && grad_x.rank() == 4);
  const int n = grad_y.dim(0), c = grad_y.dim(1);
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* gy = grad_y.data();
  float* gx = grad_x.data();
  parallel_for_cost(0, static_cast<std::int64_t>(n) * c, h * w,
                    [&](std::int64_t pl0, std::int64_t pl1) {
    for (std::int64_t pl = pl0; pl < pl1; ++pl) {
      const float g = gy[pl] * inv;
      float* plane = gx + static_cast<std::size_t>(pl) * h * w;
      for (int i = 0; i < h * w; ++i) plane[i] = g;
    }
  });
}

// ---------------------------------------------------------------------------
// Softmax / elementwise
// ---------------------------------------------------------------------------

void softmax_rows(const Tensor& logits, Tensor& probs) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "softmax_rows");
  assert(logits.rank() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  if (probs.shape() != logits.shape()) probs = Tensor(logits.shape());
  const float* pl = logits.data();
  float* pp = probs.data();
  // exp() is ~50x a fused multiply-add; weight the per-row cost accordingly.
  parallel_for_cost(0, n, static_cast<std::int64_t>(c) * 50,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* row = pl + static_cast<std::size_t>(i) * c;
      float* out = pp + static_cast<std::size_t>(i) * c;
      float mx = row[0];
      for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      float denom = 0.0f;
      for (int j = 0; j < c; ++j) {
        out[j] = std::exp(row[j] - mx);
        denom += out[j];
      }
      const float inv = 1.0f / denom;
      for (int j = 0; j < c; ++j) out[j] *= inv;
    }
  });
}

void relu_forward(const Tensor& x, Tensor& y, std::vector<unsigned char>& mask) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "relu_forward");
  if (y.shape() != x.shape()) y = Tensor(x.shape());
  mask.assign(static_cast<std::size_t>(x.numel()), 0);
  const float* px = x.data();
  float* py = y.data();
  unsigned char* pm = mask.data();
  parallel_for_cost(0, x.numel(), 1, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const bool pos = px[i] > 0.0f;
      pm[i] = pos ? 1 : 0;
      py[i] = pos ? px[i] : 0.0f;
    }
  });
}

void relu_backward(const Tensor& grad_y, const std::vector<unsigned char>& mask,
                   Tensor& grad_x) {
  STEPPING_TRACE_SCOPE_CAT("kernel", "relu_backward");
  if (grad_x.shape() != grad_y.shape()) grad_x = Tensor(grad_y.shape());
  const float* gy = grad_y.data();
  float* gx = grad_x.data();
  const unsigned char* pm = mask.data();
  parallel_for_cost(0, grad_y.numel(), 1,
                    [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      gx[i] = pm[i] ? gy[i] : 0.0f;
    }
  });
}

void add_inplace(Tensor& y, const Tensor& x) {
  assert(y.shape() == x.shape());
  float* py = y.data();
  const float* px = x.data();
  // Index-owned partition: each element touched by exactly one thread.
  parallel_for_cost(0, y.numel(), 1, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) py[i] += px[i];
  });
}

void scale_inplace(Tensor& y, float s) {
  float* py = y.data();
  parallel_for_cost(0, y.numel(), 1, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) py[i] *= s;
  });
}

// ---------------------------------------------------------------------------
// Initialization fills
// ---------------------------------------------------------------------------

void fill_kaiming_normal(Tensor& t, int fan_in, Rng& rng) {
  assert(fan_in > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  fill_normal(t, 0.0f, stddev, rng);
}

void fill_uniform(Tensor& t, float lo, float hi, Rng& rng) {
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

void fill_normal(Tensor& t, float mean, float stddev, Rng& rng) {
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  }
}

}  // namespace stepping
