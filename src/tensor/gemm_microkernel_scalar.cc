// Scalar tier: one float per "vector", multiply then add as two separate
// roundings (the TU is compiled with -ffp-contract=off so no FMA can be
// fused in behind our back). This is the portable fallback and the bitwise
// twin of the reference kernels — and of the sse tier, which performs the
// identical per-element operation sequence four lanes at a time.
//
// NR stays 8 so the packed-panel layout matches the sse tier exactly; the
// two tiers differ only in how many lanes one instruction covers, which is
// invisible to both bits and panel bytes.
#include "tensor/gemm_microkernel.h"
#include "tensor/gemm_microkernel_impl.h"

namespace stepping::microkernel {

namespace {

struct V1 {
  static constexpr int kLanes = 1;
  using Vec = float;
  static Vec zero() { return 0.0f; }
  static Vec load(const float* p) { return *p; }
  static Vec splat(float x) { return x; }
  static Vec fmadd(Vec acc, Vec a, Vec b) { return acc + a * b; }
  static void store(float* p, Vec v) { *p = v; }
};

constexpr int kNr = 8;

// Fallbacks alias gemmref: the reference kernels ARE the two-rounding
// fallback instantiation, kept under their own name for tests.
const KernelTable kTable = {IsaTier::kScalar,
                            "scalar",
                            kNr,
                            &detail::axpy_entry<V1, kNr>,
                            &detail::dot_entry<V1, kNr>,
                            &gemmref::gemm,
                            &gemmref::gemm_tn,
                            &gemmref::gemm_nt,
                            &gemmref::gemm_rows,
                            &gemmref::gemm_nt_cols,
                            &gemmref::gemm_nt_rows_acc,
                            &gemmref::gemm_tn_rows,
                            &gemmref::gemm_nt_cols_bias,
                            &gemmref::gemm_rows_bias};

}  // namespace

const KernelTable* table_scalar() { return &kTable; }

}  // namespace stepping::microkernel
