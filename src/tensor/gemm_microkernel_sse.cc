// SSE tier: explicit 4-lane vectors (GCC/Clang vector extension, SSE2
// baseline). Lane-wise += and * are the exact scalar operations on each
// element in the same per-element order, so vectorizing this way cannot
// perturb bits — this tier reproduces both the scalar tier and the
// pre-dispatch 4-lane kernels bit for bit. The explicit form exists
// because GCC 12's auto-vectorizer turns the scalar version of these loops
// into an interleaved gather across contraction steps (~7x slower) while
// still being bit-exact.
//
// Compiled with -ffp-contract=off: on x86-64 that is a no-op (no FMA at
// the SSE2 baseline), but it pins the two-rounding multiply-add on targets
// whose baseline does carry fused ops.
#include "tensor/gemm_microkernel.h"
#include "tensor/gemm_microkernel_impl.h"

namespace stepping::microkernel {

namespace {

typedef float v4f __attribute__((vector_size(16)));

struct V4 {
  static constexpr int kLanes = 4;
  using Vec = v4f;
  static Vec zero() { return v4f{}; }
  static Vec load(const float* p) {
    v4f v;
    __builtin_memcpy(&v, p, sizeof v);
    return v;
  }
  static Vec splat(float x) { return v4f{x, x, x, x}; }
  static Vec fmadd(Vec acc, Vec a, Vec b) { return acc + a * b; }
  static void store(float* p, Vec v) { __builtin_memcpy(p, &v, sizeof v); }
};

constexpr int kNr = 8;

// Fallbacks alias gemmref: small shapes ran the reference loops before the
// dispatch layer existed, and this tier preserves that bit for bit.
const KernelTable kTable = {IsaTier::kSse,
                            "sse",
                            kNr,
                            &detail::axpy_entry<V4, kNr>,
                            &detail::dot_entry<V4, kNr>,
                            &gemmref::gemm,
                            &gemmref::gemm_tn,
                            &gemmref::gemm_nt,
                            &gemmref::gemm_rows,
                            &gemmref::gemm_nt_cols,
                            &gemmref::gemm_nt_rows_acc,
                            &gemmref::gemm_tn_rows,
                            &gemmref::gemm_nt_cols_bias,
                            &gemmref::gemm_rows_bias};

}  // namespace

const KernelTable* table_sse() { return &kTable; }

}  // namespace stepping::microkernel
