#include "tensor/gemm_isa.h"

#include <atomic>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "tensor/gemm_kernel.h"
#include "tensor/gemm_microkernel.h"
#include "util/cpuid.h"
#include "util/env.h"
#include "util/log.h"

namespace stepping {

namespace {

obs::Gauge& isa_tier_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("stepping_isa_tier");
  return g;
}

/// -1 = startup selection not yet performed.
std::atomic<int>& tier_slot() {
  static std::atomic<int> t{-1};
  return t;
}

std::mutex& tier_mutex() {
  static std::mutex mu;
  return mu;
}

IsaTier clamp_to_host(IsaTier t) {
  const IsaTier max = detected_isa_tier();
  return static_cast<int>(t) > static_cast<int>(max) ? max : t;
}

}  // namespace

const char* isa_tier_name(IsaTier t) {
  switch (t) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse:
      return "sse";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool parse_isa_tier(const std::string& s, IsaTier* out) {
  if (s == "scalar") {
    *out = IsaTier::kScalar;
  } else if (s == "sse") {
    *out = IsaTier::kSse;
  } else if (s == "avx2") {
    *out = IsaTier::kAvx2;
  } else if (s == "avx512") {
    *out = IsaTier::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool isa_tier_compiled(IsaTier t) {
  switch (t) {
    case IsaTier::kScalar:
      return true;
    case IsaTier::kSse:
#if defined(STEPPING_ISA_HAVE_SSE)
      return true;
#else
      return false;
#endif
    case IsaTier::kAvx2:
#if defined(STEPPING_ISA_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case IsaTier::kAvx512:
#if defined(STEPPING_ISA_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

IsaTier detected_isa_tier() {
  static const IsaTier tier = [] {
    const CpuFeatures& f = cpu_features();
    IsaTier t = IsaTier::kScalar;
    if (isa_tier_compiled(IsaTier::kSse) && f.sse2) t = IsaTier::kSse;
    if (isa_tier_compiled(IsaTier::kAvx2) && f.avx2 && f.fma)
      t = IsaTier::kAvx2;
    if (isa_tier_compiled(IsaTier::kAvx512) && f.avx512f)
      t = IsaTier::kAvx512;
    return t;
  }();
  return tier;
}

IsaTier env_isa_tier() {
  const std::string v = env_or("STEPPING_ISA", "");
  IsaTier req;
  if (v.empty() || !parse_isa_tier(v, &req)) return detected_isa_tier();
  return clamp_to_host(req);
}

IsaTier isa_tier() {
  int t = tier_slot().load(std::memory_order_acquire);
  if (t >= 0) return static_cast<IsaTier>(t);
  std::lock_guard<std::mutex> lock(tier_mutex());
  t = tier_slot().load(std::memory_order_relaxed);
  if (t >= 0) return static_cast<IsaTier>(t);
  const IsaTier host_max = detected_isa_tier();
  IsaTier sel = host_max;
  const std::string v = env_or("STEPPING_ISA", "");
  if (!v.empty()) {
    IsaTier req;
    if (!parse_isa_tier(v, &req)) {
      LOG_WARN << "STEPPING_ISA=" << v
               << " unrecognized (want scalar|sse|avx2|avx512); using "
               << isa_tier_name(sel);
    } else if (static_cast<int>(req) > static_cast<int>(host_max)) {
      LOG_WARN << "STEPPING_ISA=" << v
               << " exceeds host capability; clamping to "
               << isa_tier_name(host_max);
    } else {
      sel = req;
    }
  }
  LOG_INFO << "gemm isa tier: " << isa_tier_name(sel) << " (host max "
           << isa_tier_name(host_max) << ", cpu " << cpu_features_string()
           << ")";
  isa_tier_gauge().set(static_cast<int>(sel));
  tier_slot().store(static_cast<int>(sel), std::memory_order_release);
  return sel;
}

void set_isa_tier(IsaTier t) {
  if (!isa_tier_compiled(t) ||
      static_cast<int>(t) > static_cast<int>(detected_isa_tier())) {
    const IsaTier clamped = clamp_to_host(t);
    LOG_WARN << "set_isa_tier(" << isa_tier_name(t)
             << ") exceeds host capability; clamping to "
             << isa_tier_name(clamped);
    t = clamped;
  }
  {
    std::lock_guard<std::mutex> lock(tier_mutex());
    tier_slot().store(static_cast<int>(t), std::memory_order_release);
    isa_tier_gauge().set(static_cast<int>(t));
  }
  // Tiers pack to different panel widths; entries for the old tier are
  // unreachable under the new cache key and would only pin capacity.
  flush_pack_cache();
}

int gemm_panel_width() { return microkernel::active_table().nr; }

namespace microkernel {

const KernelTable& active_table() {
  switch (isa_tier()) {
    case IsaTier::kScalar:
      break;
    case IsaTier::kSse:
#if defined(STEPPING_ISA_HAVE_SSE)
      return *table_sse();
#else
      break;
#endif
    case IsaTier::kAvx2:
#if defined(STEPPING_ISA_HAVE_AVX2)
      return *table_avx2();
#else
      break;
#endif
    case IsaTier::kAvx512:
#if defined(STEPPING_ISA_HAVE_AVX512)
      return *table_avx512();
#else
      break;
#endif
  }
  return *table_scalar();
}

}  // namespace microkernel

}  // namespace stepping
