#include "core/stepping_net.h"

#include <cassert>
#include <stdexcept>

#include "core/distiller.h"
#include "core/macs.h"
#include "core/train_loops.h"
#include "nn/trainer.h"
#include "obs/trace.h"
#include "util/log.h"

namespace stepping {

SteppingNet::SteppingNet(Network net, SteppingConfig cfg, std::uint64_t seed)
    : net_(std::move(net)), cfg_(std::move(cfg)), sgd_(cfg_.sgd), rng_(seed) {
  if (!net_.wired()) throw std::invalid_argument("SteppingNet: network not wired");
  if (static_cast<int>(cfg_.mac_budget_frac.size()) != cfg_.num_subnets) {
    throw std::invalid_argument("SteppingNet: budget count != num_subnets");
  }
  reference_macs_ = cfg_.reference_macs > 0 ? cfg_.reference_macs : full_macs(net_);
  cfg_.reference_macs = reference_macs_;
}

double SteppingNet::pretrain(const Dataset& train, int epochs, int batch_size) {
  STEPPING_TRACE_SCOPE_CAT("phase", "phase.pretrain");
  // All units start in subnet 1, so subnet 1 IS the full expanded network.
  const double loss =
      train_plain(net_, train, sgd_, /*subnet_id=*/1, epochs, batch_size, rng_);
  teacher_probs_ = compute_teacher_probs(net_, train, /*subnet_id=*/1, batch_size);
  LOG_INFO << "pretrain done, final loss " << loss;
  return loss;
}

ConstructionReport SteppingNet::construct(const Dataset& train, int batch_size) {
  STEPPING_TRACE_SCOPE_CAT("phase", "phase.construct");
  LoaderConfig lc;
  lc.batch_size = batch_size;
  DataLoader loader(train, lc, rng_.fork());
  const ConstructionReport report = construct_subnets(net_, cfg_, loader, sgd_);
  LOG_INFO << "construction finished after " << report.iterations
           << " iters, budgets_met=" << report.budgets_met;
  return report;
}

void SteppingNet::distill(const Dataset& train, int epochs, int batch_size) {
  STEPPING_TRACE_SCOPE_CAT("phase", "phase.distill");
  if (teacher_probs_.empty()) {
    throw std::logic_error("SteppingNet::distill: pretrain() must run first");
  }
  sgd_.clear_state();  // fresh momentum for the retraining phase
  distill_subnets(net_, cfg_, train, teacher_probs_, sgd_, epochs, batch_size,
                  rng_);
}

double SteppingNet::accuracy(const Dataset& data, int subnet_id) {
  return evaluate(net_, data, subnet_id);
}

std::int64_t SteppingNet::macs(int subnet_id) {
  return subnet_macs(net_, subnet_id);
}

double SteppingNet::mac_fraction(int subnet_id) {
  return static_cast<double>(macs(subnet_id)) /
         static_cast<double>(reference_macs_);
}

Tensor SteppingNet::predict(const Tensor& x, int subnet_id) {
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  return net_.forward(x, ctx);
}

}  // namespace stepping
