#include "core/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "nn/batchnorm.h"
#include "nn/masked_layer.h"

namespace stepping {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'E', 'P', 'N', 'E', 'T', '1'};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

void write_tensor(std::ostream& out, const Tensor& t) {
  write_u32(out, static_cast<std::uint32_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) {
    write_u32(out, static_cast<std::uint32_t>(t.dim(i)));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

void read_tensor_into(std::istream& in, Tensor& t) {
  const auto rank = static_cast<int>(read_u32(in));
  std::vector<int> shape(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) shape[static_cast<std::size_t>(i)] = static_cast<int>(read_u32(in));
  if (shape != t.shape()) {
    throw std::runtime_error("load_network: tensor shape mismatch (topology differs)");
  }
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

void write_bytes(std::ostream& out, const std::vector<std::uint8_t>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size()));
}

void read_bytes_into(std::istream& in, std::vector<std::uint8_t>& v) {
  const auto n = read_u32(in);
  if (n != v.size()) throw std::runtime_error("load_network: mask size mismatch");
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n));
}

void write_ints(std::ostream& out, const std::vector<int>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const int x : v) write_u32(out, static_cast<std::uint32_t>(x));
}

std::vector<int> read_ints(std::istream& in) {
  const auto n = read_u32(in);
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(read_u32(in));
  return v;
}

// Layer kind tags for topology validation.
enum class Tag : std::uint32_t { kMasked = 1, kBatchNorm = 2, kOther = 3 };

}  // namespace

bool save_network(Network& net, std::ostream& out) {
  if (!net.wired()) throw std::logic_error("save_network: network not wired");
  out.write(kMagic, sizeof kMagic);
  write_u32(out, static_cast<std::uint32_t>(net.layers().size()));
  for (Layer* layer : net.layer_ptrs()) {
    if (auto* m = dynamic_cast<MaskedLayer*>(layer)) {
      write_u32(out, static_cast<std::uint32_t>(Tag::kMasked));
      write_u32(out, m->is_head() ? 1u : 0u);
      write_tensor(out, m->weight().value);
      write_tensor(out, m->bias().value);
      write_ints(out, m->unit_subnet());
      // prune_mask() returns const ref; copy for the generic writer.
      std::vector<std::uint8_t> mask(m->prune_mask().begin(), m->prune_mask().end());
      write_bytes(out, mask);
    } else if (auto* bn = dynamic_cast<BatchNorm2d*>(layer)) {
      write_u32(out, static_cast<std::uint32_t>(Tag::kBatchNorm));
      write_tensor(out, bn->params()[0]->value);
      write_tensor(out, bn->params()[1]->value);
      write_tensor(out, const_cast<Tensor&>(bn->running_mean()));
      write_tensor(out, const_cast<Tensor&>(bn->running_var()));
    } else {
      write_u32(out, static_cast<std::uint32_t>(Tag::kOther));
    }
  }
  return static_cast<bool>(out);
}

bool save_network(Network& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  return save_network(net, f);
}

bool load_network(Network& net, std::istream& in) {
  if (!net.wired()) throw std::logic_error("load_network: network not wired");
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    throw std::runtime_error("load_network: bad magic (not a SteppingNet file)");
  }
  const auto count = read_u32(in);
  if (count != net.layers().size()) {
    throw std::runtime_error("load_network: layer count mismatch");
  }
  for (Layer* layer : net.layer_ptrs()) {
    const auto tag = static_cast<Tag>(read_u32(in));
    if (auto* m = dynamic_cast<MaskedLayer*>(layer)) {
      if (tag != Tag::kMasked) throw std::runtime_error("load_network: expected masked layer");
      const bool head = read_u32(in) != 0;
      m->set_head(head);
      // read_tensor_into writes the raw bytes, bypassing the layer's dirty
      // tracking — bump the param versions so packed-weight caches notice.
      read_tensor_into(in, m->weight().value);
      ++m->weight().version;
      read_tensor_into(in, m->bias().value);
      ++m->bias().version;
      const std::vector<int> assign = read_ints(in);
      if (static_cast<int>(assign.size()) != m->num_units()) {
        throw std::runtime_error("load_network: assignment size mismatch");
      }
      for (int u = 0; u < m->num_units(); ++u) {
        m->set_unit_subnet(u, assign[static_cast<std::size_t>(u)]);
      }
      std::vector<std::uint8_t> mask(m->prune_mask().size());
      read_bytes_into(in, mask);
      m->set_prune_mask(mask);
    } else if (auto* bn = dynamic_cast<BatchNorm2d*>(layer)) {
      if (tag != Tag::kBatchNorm) throw std::runtime_error("load_network: expected batchnorm");
      read_tensor_into(in, bn->params()[0]->value);
      read_tensor_into(in, bn->params()[1]->value);
      read_tensor_into(in, bn->mutable_running_mean());
      read_tensor_into(in, bn->mutable_running_var());
    } else {
      if (tag != Tag::kOther) throw std::runtime_error("load_network: unexpected layer tag");
    }
    if (!in) return false;
  }
  return true;
}

bool load_network(Network& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  return load_network(net, f);
}

}  // namespace stepping
