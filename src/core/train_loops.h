// Dataset-level training / evaluation loops shared by the pretrainer, the
// construction workflow, the distiller, the baselines, and the benches.
#pragma once

#include <vector>

#include "data/loader.h"
#include "nn/trainer.h"

namespace stepping {

/// Top-1 accuracy of subnet `subnet_id` over `data`.
double evaluate(Network& net, const Dataset& data, int subnet_id,
                int batch_size = 64);

/// Plain cross-entropy training of one subnet for `epochs` epochs.
/// Returns final-epoch mean training loss.
double train_plain(Network& net, const Dataset& train, Sgd& sgd, int subnet_id,
                   int epochs, int batch_size, Rng& rng, bool augment = false);

/// Softmax outputs of subnet `subnet_id` for every sample of `data`,
/// row-aligned with the dataset (teacher targets for distillation).
Tensor compute_teacher_probs(Network& net, const Dataset& data, int subnet_id,
                             int batch_size = 64);

/// One epoch of joint multi-subnet training: for each mini-batch, train
/// subnets 1..num_subnets in ascending order (optionally with beta
/// LR-suppression, which must have been prepared by the caller via
/// Network::prepare_lr_suppression). Used by the construction loop, the
/// any-width baseline, and ablations.
BatchStats joint_train_batches(Network& net, DataLoader& loader, Sgd& sgd,
                               int num_subnets, int num_batches,
                               bool suppression, bool harvest_importance);

}  // namespace stepping
