// Incremental step-up inference with exact computational reuse
// (the paper's headline property: a smaller subnet's intermediate results
// feed directly into larger subnets without recomputation).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace stepping {

/// One stateless batched ladder step over externally-owned activation state
/// (the serve batch re-formation path, ISSUE 9): evaluate subnet `to` on the
/// stacked input `x` (B, C, H, W), given `layer_outputs` — one cached
/// post-activation tensor per layer, all B rows at subnet `from` — and
/// overwrite `layer_outputs` with the subnet-`to` state. `from == 0` is a
/// cold start (layer_outputs is resized and filled from scratch).
///
/// Because every batched kernel computes each output row independently and
/// in serial order (the PR 1 thread-pool invariant), a row's values depend
/// only on its own input and cached state — NEVER on which other rows share
/// the batch. Callers may therefore re-stack rows from *different* earlier
/// batches between steps and still get outputs bitwise identical to any
/// other batch composition (property-tested in tests/serve_reform_test.cc).
/// IncrementalExecutor::run is this function plus an owned state + input
/// fingerprint.
///
/// Returns the last layer's output (the logits tensor, B x classes).
Tensor ladder_step(Network& net, const Tensor& x,
                   std::vector<Tensor>& layer_outputs, int from, int to);

/// Analytic per-image MACs ladder_step(from, to) executes: weights of units
/// newly added in (from, to] plus a full head recompute.
std::int64_t ladder_step_macs(Network& net, int from, int to);

/// Evaluates subnets in increasing order on the SAME input, computing at each
/// step only the units the new subnet adds (plus the always-recomputed head).
/// Because a unit's input set is identical in every subnet containing it
/// (structural rule s(u) <= s(v)), reused activations are bit-identical to a
/// from-scratch evaluation — property-tested in tests/core.
///
/// Typical use (resource-varying platform):
///   IncrementalExecutor ex(net);
///   Tensor logits1 = ex.run(x, 1);     // fast preliminary decision
///   ... more compute becomes available ...
///   Tensor logits3 = ex.run(x, 3);     // refine, reusing subnet-1 work
///
/// NOT thread-safe: run() mutates the cached activations, and the executor
/// also runs forward passes on the shared Network (whose layers cache
/// activations themselves). Use one executor per thread over its own
/// Network replica (Network::clone()) — exactly what serve::Server's
/// workers do. Concurrent run() calls are caught by a debug-mode
/// re-entrancy assert.
///
/// Input identity is tracked by a cheap fingerprint (shape + a 64-bit FNV-1a
/// hash of the bytes) rather than a retained deep copy, so long-lived
/// per-worker executors do not hold an extra input-sized buffer each. The
/// fingerprint is WHOLE-INPUT: any changed byte invalidates the entire
/// cache. Per-REGION reuse — keeping clean spatial tiles of the cached
/// activations when only part of the input changed — is deliberately NOT
/// this class's job; it lives in src/stream/ (ISSUE 10), which fingerprints
/// per tile and re-runs only dirty regions through Conv2d::forward_delta.
/// A hash collision (probability ~2^-64 per changed input) would silently
/// reuse the stale cache; call reset() between inputs to bypass the
/// fingerprint entirely when that risk is unacceptable.
///
/// The input fingerprint does NOT cover the weights. Cached activations are
/// stale the moment any Param changes (SGD step, deserialize) — executors
/// are inference-side objects and must be reset (or discarded) after
/// training steps. Long-lived holders that cannot see the training loop
/// track staleness via the Param::version counters instead:
/// stream::network_signature() snapshots all versions and src/stream/
/// rebuilds cold on any mismatch (regression-tested in tests/stream_test.cc,
/// SignatureBumpInvalidates).
class IncrementalExecutor {
 public:
  explicit IncrementalExecutor(Network& net);

  /// Evaluate subnet `subnet_id`. Larger than the cached id: step UP,
  /// computing only the newly added units. Smaller: step DOWN — the cached
  /// intermediate results are masked to the smaller subnet and only the
  /// head is recomputed (paper §II: dynamic subnet reduction also reuses).
  /// A different input resets the cache transparently.
  Tensor run(const Tensor& x, int subnet_id);

  /// Forget cached activations (call when the input changes; run() also
  /// detects changed inputs itself).
  void reset();

  /// MACs actually executed by the last run() call (analytic count).
  std::int64_t last_step_macs() const { return last_step_macs_; }

  /// MACs a from-scratch evaluation of the last subnet would execute.
  std::int64_t last_full_macs() const { return last_full_macs_; }

  /// Subnet id the cache currently represents (0 = empty).
  int cached_subnet() const { return cached_subnet_; }

 private:
  bool same_input(const Tensor& x) const;
  Tensor step_down(const Tensor& x, int subnet_id);
  void remember_input(const Tensor& x);

  Network& net_;
  std::vector<int> input_shape_;       // fingerprint: shape ...
  std::uint64_t input_hash_ = 0;       // ... + FNV-1a of the bytes
  std::vector<Tensor> layer_outputs_;  // one per layer, post-activation
  int cached_subnet_ = 0;
  std::int64_t last_step_macs_ = 0;
  std::int64_t last_full_macs_ = 0;
  bool in_run_ = false;  // debug re-entrancy guard (asserted in run())
};

}  // namespace stepping
