// Classification metrics beyond top-1 accuracy: confusion matrix, per-class
// precision/recall, top-k accuracy — per subnet, so the quality of the
// accuracy/compute trade-off can be inspected in detail (e.g. which classes
// a small subnet sacrifices).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/network.h"

namespace stepping {

struct ClassMetrics {
  int support = 0;        ///< ground-truth instances of the class
  int true_positive = 0;
  int false_positive = 0;

  double precision() const {
    const int pred = true_positive + false_positive;
    return pred > 0 ? static_cast<double>(true_positive) / pred : 0.0;
  }
  double recall() const {
    return support > 0 ? static_cast<double>(true_positive) / support : 0.0;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
};

struct EvaluationMetrics {
  int num_classes = 0;
  int total = 0;
  int top1_correct = 0;
  int topk_correct = 0;
  int k = 1;
  /// confusion[true * num_classes + predicted]
  std::vector<int> confusion;
  std::vector<ClassMetrics> per_class;

  double top1_accuracy() const {
    return total > 0 ? static_cast<double>(top1_correct) / total : 0.0;
  }
  double topk_accuracy() const {
    return total > 0 ? static_cast<double>(topk_correct) / total : 0.0;
  }
  /// Unweighted mean of per-class F1 (macro averaging).
  double macro_f1() const;
};

/// Evaluate subnet `subnet_id` over `data` with top-`k` accounting.
EvaluationMetrics evaluate_metrics(Network& net, const Dataset& data,
                                   int subnet_id, int k = 5,
                                   int batch_size = 64);

}  // namespace stepping
