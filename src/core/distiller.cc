#include "core/distiller.h"

#include <cassert>
#include <cstring>
#include <numeric>

#include "nn/trainer.h"
#include "obs/trace.h"

namespace stepping {

void distill_subnets(Network& net, const SteppingConfig& cfg,
                     const Dataset& train, const Tensor& teacher_probs,
                     Sgd& sgd, int epochs, int batch_size, Rng& rng) {
  const int n_samples = train.size();
  const int classes = teacher_probs.dim(1);
  assert(teacher_probs.dim(0) == n_samples);

  if (cfg.enable_suppression) {
    net.prepare_lr_suppression(cfg.num_subnets, cfg.beta);
  }

  std::vector<int> order(static_cast<std::size_t>(n_samples));
  std::iota(order.begin(), order.end(), 0);

  const int c = train.channels(), h = train.height(), w = train.width();
  const std::size_t img = static_cast<std::size_t>(c) * h * w;

  SubnetContext ctx;
  ctx.num_subnets = cfg.num_subnets;
  ctx.training = true;

  for (int e = 0; e < epochs; ++e) {
    STEPPING_TRACE_SCOPE_CAT("distill", "distill.epoch");
    rng.shuffle(order);
    for (int begin = 0; begin < n_samples; begin += batch_size) {
      STEPPING_TRACE_SCOPE_CAT("distill", "distill.batch");
      const int count = std::min(batch_size, n_samples - begin);
      // Gather batch images, labels, and row-aligned teacher targets.
      Tensor x({count, c, h, w});
      Tensor tp({count, classes});
      std::vector<int> y(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) {
        const int src = order[static_cast<std::size_t>(begin + i)];
        std::memcpy(x.data() + static_cast<std::size_t>(i) * img,
                    train.images.data() + static_cast<std::size_t>(src) * img,
                    img * sizeof(float));
        std::memcpy(tp.data() + static_cast<std::int64_t>(i) * classes,
                    teacher_probs.data() + static_cast<std::int64_t>(src) * classes,
                    static_cast<std::size_t>(classes) * sizeof(float));
        y[static_cast<std::size_t>(i)] = train.labels[static_cast<std::size_t>(src)];
      }
      // Ascending subnet order (paper §III-B).
      for (int k = 1; k <= cfg.num_subnets; ++k) {
        ctx.subnet_id = k;
        net.activate_lr_scale(cfg.enable_suppression ? k : 0);
        if (cfg.enable_distillation) {
          distill_batch(net, sgd, x, y, tp, cfg.gamma, ctx);
        } else {
          train_batch(net, sgd, x, y, ctx);
        }
      }
    }
  }
  net.activate_lr_scale(0);
}

}  // namespace stepping
