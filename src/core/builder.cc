#include "core/builder.h"

#include <cassert>

#include "core/macs.h"
#include "core/mover.h"
#include "core/pruner.h"
#include "core/train_loops.h"
#include "obs/trace.h"
#include "util/log.h"

namespace stepping {

ConstructionReport construct_subnets(Network& net, const SteppingConfig& cfg,
                                     DataLoader& loader, Sgd& sgd) {
  const int n = cfg.num_subnets;
  assert(static_cast<int>(cfg.mac_budget_frac.size()) == n);

  ConstructionReport report;
  report.expanded_macs = full_macs(net);
  report.reference_macs =
      cfg.reference_macs > 0 ? cfg.reference_macs : report.expanded_macs;

  std::vector<std::int64_t> budgets(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    budgets[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(
        cfg.mac_budget_frac[static_cast<std::size_t>(i)] *
        static_cast<double>(report.reference_macs));
  }
  const std::int64_t p1 = budgets.front();
  const std::int64_t per_iter =
      std::max<std::int64_t>((report.expanded_macs - p1) / cfg.max_iters, 1);

  auto budgets_met = [&](const std::vector<std::int64_t>& macs) {
    for (int i = 0; i < n; ++i) {
      if (macs[static_cast<std::size_t>(i)] > budgets[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    return true;
  };

  for (int iter = 0; iter < cfg.max_iters; ++iter) {
    STEPPING_TRACE_SCOPE_CAT("construct", "construct.iter");
    // 1. Train all subnets for m batches, harvesting importance afresh.
    {
      STEPPING_TRACE_SCOPE_CAT("construct", "construct.harvest");
      net.reset_importance(n);
      if (cfg.enable_suppression) net.prepare_lr_suppression(n, cfg.beta);
      joint_train_batches(net, loader, sgd, n, cfg.batches_per_iter,
                          cfg.enable_suppression, /*harvest_importance=*/true);
    }

    // 2. Evaluate MACs against budgets.
    const auto macs = all_subnet_macs(net, n);
    report.iterations = iter + 1;
    if (budgets_met(macs)) {
      report.budgets_met = true;
      break;
    }

    // 3. Move least-important units up / out.
    MoveStats ms;
    {
      STEPPING_TRACE_SCOPE_CAT("construct", "construct.move");
      ms = move_step(net, cfg, per_iter);
    }
    report.total_moved_units += ms.moved_units;

    // 4. Magnitude pruning — non-permanent by default (mask re-derived from
    // live magnitudes); the permanent_pruning ablation only ANDs new zeros
    // onto the existing mask so pruned weights never return.
    if (cfg.enable_pruning) {
      STEPPING_TRACE_SCOPE_CAT("construct", "construct.prune");
      if (cfg.permanent_pruning) {
        for (MaskedLayer* m : net.masked_layers()) {
          std::vector<std::uint8_t> old_mask(m->prune_mask().begin(),
                                             m->prune_mask().end());
          m->apply_magnitude_prune(cfg.prune_threshold);
          std::vector<std::uint8_t> combined(m->prune_mask().begin(),
                                             m->prune_mask().end());
          for (std::size_t i = 0; i < combined.size(); ++i) {
            combined[i] = combined[i] & old_mask[i];
          }
          m->set_prune_mask(combined);
        }
      } else {
        apply_magnitude_pruning(net, cfg.prune_threshold);
      }
    }

    if ((iter + 1) % 10 == 0) {
      const auto now = all_subnet_macs(net, n);
      std::string msg = "construction iter " + std::to_string(iter + 1) + " macs:";
      for (int i = 0; i < n; ++i) {
        msg += " " + std::to_string(
                         100.0 * static_cast<double>(now[static_cast<std::size_t>(i)]) /
                         static_cast<double>(report.reference_macs)) + "%";
      }
      LOG_DEBUG << msg;
    }
    if (ms.moved_units == 0 && cfg.enable_pruning == false) {
      LOG_WARN << "construction stalled at iteration " << iter + 1;
      break;
    }
  }

  report.subnet_macs = all_subnet_macs(net, n);
  report.subnet_mac_frac.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    report.subnet_mac_frac[static_cast<std::size_t>(i)] =
        static_cast<double>(report.subnet_macs[static_cast<std::size_t>(i)]) /
        static_cast<double>(report.reference_macs);
  }
  report.budgets_met = budgets_met(report.subnet_macs);
  return report;
}

}  // namespace stepping
