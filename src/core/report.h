// Model introspection: per-layer / per-subnet structure reports.
//
// Used by the CLI (`steppingnet info`), examples, and anyone debugging a
// construction run: where did the units go, how are MACs distributed, how
// much is pruned.
#pragma once

#include <string>
#include <vector>

#include "nn/network.h"

namespace stepping {

struct LayerReport {
  std::string name;
  bool is_head = false;
  int units = 0;
  /// units_per_subnet[i] = units with assignment == i+1 (index num_subnets
  /// holds the discard pool).
  std::vector<int> units_per_subnet;
  /// MACs of this layer inside each subnet 1..num_subnets.
  std::vector<std::int64_t> macs_per_subnet;
  double pruned_fraction = 0.0;
};

struct NetworkReport {
  std::vector<LayerReport> layers;
  std::vector<std::int64_t> total_macs_per_subnet;
  int num_subnets = 0;

  /// Aligned multi-line text rendering (one row per layer).
  std::string to_string() const;
};

/// Build the report for subnets 1..num_subnets (+1 discard pool column).
NetworkReport build_report(Network& net, int num_subnets);

}  // namespace stepping
