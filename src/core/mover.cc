#include "core/mover.h"

#include <cmath>
#include <algorithm>
#include <cassert>
#include <limits>

#include "core/macs.h"
#include "util/log.h"

namespace stepping {

double selection_score(const MaskedLayer& layer, int unit,
                       const SteppingConfig& cfg) {
  const auto& imp = layer.importance();
  const int n = static_cast<int>(imp.size());
  const int i = layer.unit_subnet()[static_cast<std::size_t>(unit)];
  if (i > n) return std::numeric_limits<double>::infinity();
  if (cfg.selection == SelectionCriterion::kWeightMagnitude) {
    // Ablation baseline: mean |w| of the unit's incoming synapses.
    const Tensor& w = layer.weight().value;
    const int cols = layer.num_cols();
    double s = 0.0;
    for (int c = 0; c < cols; ++c) {
      s += std::fabs(w[static_cast<std::int64_t>(unit) * cols + c]);
    }
    return s / cols;
  }
  double score = 0.0;
  for (int k = i; k <= n; ++k) {
    score += cfg.alpha(k) *
             imp[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(unit)];
  }
  return score;
}

namespace {

struct Candidate {
  MaskedLayer* layer;
  MaskedLayer* consumer;
  int unit;
  double score;
};

/// Units of `subnet` across all body layers, cheapest (least important)
/// first.
std::vector<Candidate> gather_candidates(Network& net, int subnet,
                                         const SteppingConfig& cfg) {
  std::vector<Candidate> cands;
  for (MaskedLayer* layer : net.body_layers()) {
    if (!layer->units_movable()) continue;  // e.g. depthwise (mirrors producer)
    MaskedLayer* consumer = net.consumer_of(layer);
    const auto& assign = layer->unit_subnet();
    for (int u = 0; u < layer->num_units(); ++u) {
      if (assign[static_cast<std::size_t>(u)] != subnet) continue;
      cands.push_back(
          Candidate{layer, consumer, u, selection_score(*layer, u, cfg)});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) { return a.score < b.score; });
  return cands;
}

/// Units of `layer` present in subnet <= i.
int units_in_subnet(const MaskedLayer& layer, int i) {
  int count = 0;
  for (const int s : layer.unit_subnet()) {
    if (s <= i) ++count;
  }
  return count;
}

}  // namespace

MoveStats move_step(Network& net, const SteppingConfig& cfg,
                    std::int64_t per_iter_macs) {
  MoveStats stats;
  const int n = cfg.num_subnets;
  assert(static_cast<int>(cfg.mac_budget_frac.size()) == n);
  const std::int64_t ref =
      cfg.reference_macs > 0 ? cfg.reference_macs : full_macs(net);

  const auto macs = all_subnet_macs(net, n);
  for (int i = 1; i <= n; ++i) {
    const auto budget_i = static_cast<std::int64_t>(
        cfg.mac_budget_frac[static_cast<std::size_t>(i - 1)] * static_cast<double>(ref));
    if (macs[static_cast<std::size_t>(i - 1)] <= budget_i) continue;
    if (i >= 2) {
      // Flow gating (paper Figure 5 discussion): only drain subnet i once its
      // MAC headroom over subnet i-1 exceeds the budget gap, so subnet i
      // retains enough newly arrived neurons.
      const auto budget_prev = static_cast<std::int64_t>(
          cfg.mac_budget_frac[static_cast<std::size_t>(i - 2)] *
          static_cast<double>(ref));
      const std::int64_t headroom =
          macs[static_cast<std::size_t>(i - 1)] - macs[static_cast<std::size_t>(i - 2)];
      if (headroom <= budget_i - budget_prev) continue;
    }

    auto cands = gather_candidates(net, i, cfg);
    std::int64_t moved = 0;
    // Per-iteration quota, but never drain a subnet below its own budget
    // (the paper's N_t = 300 makes each quantum tiny; with the scaled-down
    // iteration counts used on CPU this bound keeps M_i/M_t close to P_i).
    const std::int64_t surplus = macs[static_cast<std::size_t>(i - 1)] - budget_i;
    const std::int64_t quota = std::min(per_iter_macs, surplus);
    for (const Candidate& c : cands) {
      if (moved > quota) break;
      // Keep every executable subnet structurally viable (a layer at its
      // floor blocks only its own units; cheaper units of other layers may
      // still move).
      if (units_in_subnet(*c.layer, i) <= cfg.min_units_per_layer) continue;
      moved += c.layer->move_delta_macs(c.unit, c.consumer);
      c.layer->set_unit_subnet(c.unit, i + 1);
      // Figure 5(f): revive the moved unit's pruned synapses — they may be
      // essential to the destination subnet (disabled by the revive_on_move
      // ablation).
      if (cfg.revive_on_move) {
        c.layer->revive_unit_row(c.unit);
        if (c.consumer != nullptr) c.consumer->revive_in_unit_cols(c.unit);
      }
      ++stats.moved_units;
    }
    stats.moved_macs += moved;
  }
  return stats;
}

}  // namespace stepping
