#include "core/latency.h"

#include <algorithm>

#include "core/macs.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/timer.h"

namespace stepping {

DeviceModel device_mcu() { return {"mcu", 1e8, 0.5}; }
DeviceModel device_mobile_cpu() { return {"mobile-cpu", 5e9, 0.2}; }
DeviceModel device_mobile_npu() { return {"mobile-npu", 1e12, 0.1}; }

DeviceModel calibrate_device(Network& net, int subnet_id, int batch, int reps) {
  Rng rng(99);
  Tensor x({batch, net.input_channels(), net.input_h(), net.input_w()});
  fill_normal(x, 0.0f, 1.0f, rng);
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  net.forward(x, ctx);  // warm-up
  Timer t;
  for (int r = 0; r < reps; ++r) net.forward(x, ctx);
  const double secs = t.seconds() / reps;
  const double macs = static_cast<double>(subnet_macs(net, subnet_id)) * batch;
  DeviceModel dev;
  dev.name = "host (calibrated)";
  dev.macs_per_second = macs / std::max(secs, 1e-9);
  dev.fixed_overhead_ms = 0.0;
  return dev;
}

std::vector<double> subnet_latencies_ms(Network& net, int num_subnets,
                                        const DeviceModel& dev) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(num_subnets));
  for (int i = 1; i <= num_subnets; ++i) {
    out.push_back(dev.latency_ms(subnet_macs(net, i)));
  }
  return out;
}

int largest_subnet_within(Network& net, int num_subnets, const DeviceModel& dev,
                          double deadline_ms) {
  int best = 0;
  for (int i = 1; i <= num_subnets; ++i) {
    if (dev.latency_ms(subnet_macs(net, i)) <= deadline_ms) best = i;
  }
  return best;
}

std::vector<double> budgets_for_latencies(const std::vector<double>& targets_ms,
                                          const DeviceModel& dev,
                                          std::int64_t reference_macs) {
  std::vector<double> out;
  out.reserve(targets_ms.size());
  for (const double target : targets_ms) {
    const double budget_macs =
        std::max(0.0, (target - dev.fixed_overhead_ms)) * 1e-3 *
        dev.macs_per_second;
    out.push_back(budget_macs / static_cast<double>(reference_macs));
  }
  // Budgets must be non-decreasing for a valid SteppingConfig.
  for (std::size_t i = 1; i < out.size(); ++i) {
    out[i] = std::max(out[i], out[i - 1]);
  }
  return out;
}

}  // namespace stepping
