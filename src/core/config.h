// Configuration of the SteppingNet construction + retraining workflow
// (paper §III, Figure 3).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sgd.h"

namespace stepping {

/// How the mover ranks candidate units (ablation of paper §III-A2).
enum class SelectionCriterion {
  /// Eq. 3: alpha-weighted |dL_k/dr_j| gradient importance (the paper).
  kGradientImportance,
  /// Naive baseline: mean |w| of the unit's incoming synapses.
  kWeightMagnitude,
};

struct SteppingConfig {
  /// Number of executable subnets N. Unit assignments range over
  /// {1..N, N+1}: N+1 is the implicit "discard pool" — units the
  /// construction removed from every subnet (the expanded network has ~
  /// expansion^2 x the reference MACs, while even the largest subnet's
  /// budget is below 100%, so construction must shed neurons entirely;
  /// Table I's M_4/M_t < 100% confirms this reading).
  int num_subnets = 4;

  /// MAC budgets P_i as fractions of `reference_macs` (ascending, size
  /// num_subnets). Table I uses e.g. {0.10, 0.30, 0.50, 0.85}.
  std::vector<double> mac_budget_frac;

  /// M_t: MACs of the unexpanded original network (the paper's budget
  /// denominator). 0 = use the expanded network's full MACs.
  std::int64_t reference_macs = 0;

  /// m: training batches at the start of each construction iteration.
  int batches_per_iter = 50;

  /// N_t: maximum construction iterations.
  int max_iters = 300;

  /// Eq. 3 contribution ladder: alpha_k = alpha1 * alpha_growth^(k-1).
  double alpha1 = 1.0;
  double alpha_growth = 1.5;

  /// Learning-rate suppression base (paper beta = 0.9); set
  /// enable_suppression = false for the Fig. 8 ablation.
  double beta = 0.9;
  bool enable_suppression = true;

  /// Eq. 4 cross-entropy weight in distillation (paper gamma = 0.4); set
  /// enable_distillation = false for the Fig. 8 ablation.
  double gamma = 0.4;
  bool enable_distillation = true;

  /// Unstructured magnitude-pruning threshold (paper 1e-5). Masks are
  /// non-permanent: recomputed each iteration from live magnitudes.
  float prune_threshold = 1e-5f;
  bool enable_pruning = true;

  /// Every executable subnet keeps at least this many units per layer so a
  /// subnet can never structurally collapse to a zero-width bottleneck.
  int min_units_per_layer = 1;

  /// Unit ranking used by the mover (kWeightMagnitude = ablation baseline).
  SelectionCriterion selection = SelectionCriterion::kGradientImportance;

  /// Ablations of DESIGN.md §6 decision 5 (non-permanent pruning):
  /// permanent_pruning composes masks monotonically (a pruned weight never
  /// returns via magnitude regrowth) and revive_on_move controls the
  /// Fig. 5(f) synapse revival when a unit changes subnet.
  bool permanent_pruning = false;
  bool revive_on_move = true;

  SgdConfig sgd{};

  double alpha(int k) const {
    double a = alpha1;
    for (int i = 1; i < k; ++i) a *= alpha_growth;
    return a;
  }
};

}  // namespace stepping
