// The Figure-3 construction workflow: iteratively train, evaluate MACs,
// move neurons, prune — until every subnet meets its MAC budget.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "data/loader.h"
#include "nn/network.h"
#include "nn/sgd.h"

namespace stepping {

struct ConstructionReport {
  int iterations = 0;
  bool budgets_met = false;
  std::vector<std::int64_t> subnet_macs;   ///< final MACs per subnet
  std::vector<double> subnet_mac_frac;     ///< relative to reference_macs
  std::int64_t reference_macs = 0;
  std::int64_t expanded_macs = 0;
  int total_moved_units = 0;
};

/// Runs subnet construction on `net` (which must start with every unit in
/// subnet 1, i.e. the freshly pretrained expanded network).
///
/// Per iteration (paper Figure 3):
///   1. train subnets 1..N for cfg.batches_per_iter mini-batches each, in
///      ascending order per batch, harvesting Eq. 2 importance gradients and
///      (optionally) applying beta LR-suppression;
///   2. evaluate per-subnet MACs; stop when every budget P_i is met;
///   3. move the least-important units of over-budget subnets one subnet up
///      (subnet N discards into the N+1 pool), quota (P_t - P_1)/N_t MACs;
///   4. re-derive the magnitude prune masks.
ConstructionReport construct_subnets(Network& net, const SteppingConfig& cfg,
                                     DataLoader& loader, Sgd& sgd);

}  // namespace stepping
