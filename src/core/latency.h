// Latency modelling: map analytic MAC counts to wall-clock estimates for a
// target device, and solve deployment questions ("which subnet fits a 10 ms
// deadline on device X?", "what budgets P_i hit these latency targets?").
//
// The paper's motivation is latency on resource-constrained platforms
// (e.g. "VGG-16 can take 780 ms ... too large for autonomous driving"); the
// library works in MACs internally, and this module is the bridge to
// deployment-facing milliseconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.h"

namespace stepping {

/// A simple roofline-style device model: sustained MAC throughput plus a
/// fixed per-inference overhead (kernel launches, memory traffic floor).
struct DeviceModel {
  std::string name;
  double macs_per_second = 1e9;
  double fixed_overhead_ms = 0.05;

  double latency_ms(std::int64_t macs) const {
    return fixed_overhead_ms +
           1e3 * static_cast<double>(macs) / macs_per_second;
  }
};

/// A few representative presets (orders of magnitude, for planning —
/// calibrate_device() measures the actual host).
DeviceModel device_mcu();        ///< microcontroller-class, ~100 MMAC/s
DeviceModel device_mobile_cpu(); ///< phone big core, ~5 GMAC/s
DeviceModel device_mobile_npu(); ///< phone NPU, ~1 TMAC/s

/// Measure THIS host's sustained MAC throughput by timing forward passes of
/// `net` (subnet `subnet_id`) and dividing by the analytic MAC count.
DeviceModel calibrate_device(Network& net, int subnet_id, int batch = 4,
                             int reps = 3);

/// Latency estimate of each subnet of `net` on `dev` (subnets 1..n).
std::vector<double> subnet_latencies_ms(Network& net, int num_subnets,
                                        const DeviceModel& dev);

/// Largest subnet meeting `deadline_ms` on `dev`, or 0 if even subnet 1
/// misses it.
int largest_subnet_within(Network& net, int num_subnets, const DeviceModel& dev,
                          double deadline_ms);

/// Invert the model: MAC budget fractions (relative to `reference_macs`)
/// that hit the given latency targets on `dev`. Used to derive the
/// SteppingConfig budgets from product-level latency requirements.
std::vector<double> budgets_for_latencies(const std::vector<double>& targets_ms,
                                          const DeviceModel& dev,
                                          std::int64_t reference_macs);

}  // namespace stepping
