// Analytic MAC accounting over subnet + prune masks (DESIGN.md item 4).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace stepping {

/// MACs executed by subnet `subnet_id` (structural rule + prune masks; the
/// head counts weights whose producers are active in the subnet).
std::int64_t subnet_macs(Network& net, int subnet_id);

/// MACs of the whole network with every weight active (no pruning).
std::int64_t full_macs(Network& net);

/// subnet_macs for 1..num_subnets.
std::vector<std::int64_t> all_subnet_macs(Network& net, int num_subnets);

}  // namespace stepping
