#include "core/incremental.h"

#include <cassert>
#include <cstring>

#include "core/macs.h"

namespace stepping {

namespace {

/// MACs a step from `from` to `to` executes in one masked layer: weights of
/// units newly added in (from, to], plus a full head recompute.
std::int64_t step_macs(const MaskedLayer& layer, int from, int to) {
  if (layer.is_head()) return layer.active_weights(to) * layer.macs_per_weight();
  std::int64_t count = 0;
  const auto& assign = layer.unit_subnet();
  const auto& in_assign = layer.in_subnet();
  const auto& prune = layer.prune_mask();
  for (int u = 0; u < layer.num_units(); ++u) {
    const int sv = assign[static_cast<std::size_t>(u)];
    if (sv <= from || sv > to) continue;
    const std::uint8_t* prow =
        prune.data() + static_cast<std::size_t>(u) * layer.num_cols();
    for (int c = 0; c < layer.num_cols(); ++c) {
      if (!prow[c]) continue;
      const int su = in_assign[static_cast<std::size_t>(layer.in_unit_of(u, c))];
      if (su <= sv) count += layer.macs_per_weight();
    }
  }
  return count;
}

/// 64-bit FNV-1a over the tensor bytes — the input fingerprint. One linear
/// pass, no retained copy (cf. the class comment on collision odds).
std::uint64_t fnv1a_bytes(const Tensor& x) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(x.data());
  const std::size_t n = sizeof(float) * static_cast<std::size_t>(x.numel());
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Tensor ladder_step(Network& net, const Tensor& x,
                   std::vector<Tensor>& layer_outputs, int from, int to) {
  assert(to >= 1 && from >= 0 && from < to);
  SubnetContext ctx;
  ctx.subnet_id = to;
  ctx.training = false;

  const auto& layers = net.layers();
  layer_outputs.resize(layers.size());
  Tensor cur = x;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Tensor out = from == 0
                     ? layers[i]->forward(cur, ctx)
                     : layers[i]->forward_step(cur, layer_outputs[i], from, ctx);
    layer_outputs[i] = out;
    cur = std::move(out);
  }
  return cur;
}

std::int64_t ladder_step_macs(Network& net, int from, int to) {
  std::int64_t total = 0;
  for (MaskedLayer* m : net.masked_layers()) total += step_macs(*m, from, to);
  return total;
}

IncrementalExecutor::IncrementalExecutor(Network& net) : net_(net) {
  layer_outputs_.resize(net_.layers().size());
}

void IncrementalExecutor::reset() {
  cached_subnet_ = 0;
  input_shape_.clear();
  input_hash_ = 0;
  for (auto& t : layer_outputs_) t = Tensor();
}

bool IncrementalExecutor::same_input(const Tensor& x) const {
  return input_shape_ == x.shape() && input_hash_ == fnv1a_bytes(x);
}

void IncrementalExecutor::remember_input(const Tensor& x) {
  input_shape_ = x.shape();
  input_hash_ = fnv1a_bytes(x);
}

Tensor IncrementalExecutor::run(const Tensor& x, int subnet_id) {
  assert(subnet_id >= 1);
  // Not thread-safe (see header): concurrent run() calls on one executor
  // corrupt the activation cache. This guard trips in debug/sanitizer
  // builds when two threads interleave.
  assert(!in_run_ && "IncrementalExecutor::run is not thread-safe");
  in_run_ = true;
  struct RunGuard {
    bool& flag;
    ~RunGuard() { flag = false; }
  } run_guard{in_run_};
  if (cached_subnet_ != 0 && subnet_id < cached_subnet_ && same_input(x)) {
    return step_down(x, subnet_id);
  }
  if (cached_subnet_ == 0 || subnet_id < cached_subnet_ || !same_input(x)) {
    reset();
  }
  const int from = cached_subnet_;

  // Analytic MAC accounting for this step vs a from-scratch evaluation.
  last_step_macs_ = ladder_step_macs(net_, from, subnet_id);
  last_full_macs_ = 0;
  for (MaskedLayer* m : net_.masked_layers()) {
    last_full_macs_ += m->subnet_macs(subnet_id);
  }

  Tensor cur = ladder_step(net_, x, layer_outputs_, from, subnet_id);
  remember_input(x);
  cached_subnet_ = subnet_id;
  return cur;
}

Tensor IncrementalExecutor::step_down(const Tensor& x, int subnet_id) {
  // Dynamic subnet REDUCTION (paper §II): every unit of the smaller subnet
  // was already evaluated — and, by the structural invariant, to exactly the
  // value the smaller subnet would compute. Masking the extra channels of
  // each cached output reconstructs the smaller subnet's intermediate state;
  // only the head must be recomputed.
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = false;

  last_full_macs_ = 0;
  for (MaskedLayer* m : net_.masked_layers()) {
    last_full_macs_ += m->subnet_macs(subnet_id);
  }
  last_step_macs_ = net_.masked_layers().back()->subnet_macs(subnet_id);

  const auto& layers = net_.layers();
  MaskedLayer* head = net_.masked_layers().back();
  Tensor head_input = x;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].get() == static_cast<Layer*>(head)) {
      layer_outputs_[i] = head->forward(head_input, ctx);
    } else {
      Tensor masked = layer_outputs_[i];
      const IOSpec& spec = layers[i]->out_spec();
      if (spec.assignment) {
        mask_inactive_units(masked, *spec.assignment, spec.features_per_unit,
                            subnet_id);
      }
      layer_outputs_[i] = std::move(masked);
    }
    head_input = layer_outputs_[i];
  }
  cached_subnet_ = subnet_id;
  return layer_outputs_.back();
}

}  // namespace stepping
