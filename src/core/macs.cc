#include "core/macs.h"

namespace stepping {

std::int64_t subnet_macs(Network& net, int subnet_id) {
  std::int64_t total = 0;
  for (MaskedLayer* m : net.masked_layers()) total += m->subnet_macs(subnet_id);
  return total;
}

std::int64_t full_macs(Network& net) {
  std::int64_t total = 0;
  for (MaskedLayer* m : net.masked_layers()) total += m->full_macs();
  return total;
}

std::vector<std::int64_t> all_subnet_macs(Network& net, int num_subnets) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(num_subnets));
  for (int i = 1; i <= num_subnets; ++i) {
    out[static_cast<std::size_t>(i - 1)] = subnet_macs(net, i);
  }
  return out;
}

}  // namespace stepping
