#include "core/pruner.h"
#include <cmath>
#include <vector>

namespace stepping {

void apply_magnitude_pruning(Network& net, float threshold) {
  for (MaskedLayer* m : net.masked_layers()) {
    m->apply_magnitude_prune(threshold);
  }
}

void apply_structured_pruning(Network& net, double rel_threshold) {
  for (MaskedLayer* m : net.body_layers()) {
    const Tensor& w = m->weight().value;
    const int units = m->num_units();
    const int cols = m->num_cols();
    // Layer-wide mean |w|.
    double layer_sum = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) layer_sum += std::fabs(w[i]);
    const double layer_mean = layer_sum / static_cast<double>(w.numel());
    const double cut = rel_threshold * layer_mean;

    std::vector<std::uint8_t> mask(m->prune_mask().begin(),
                                   m->prune_mask().end());
    for (int u = 0; u < units; ++u) {
      double row_sum = 0.0;
      for (int c = 0; c < cols; ++c) {
        row_sum += std::fabs(w[static_cast<std::int64_t>(u) * cols + c]);
      }
      if (row_sum / cols < cut) {
        std::fill(mask.begin() + static_cast<std::ptrdiff_t>(u) * cols,
                  mask.begin() + static_cast<std::ptrdiff_t>(u + 1) * cols,
                  std::uint8_t{0});
      }
    }
    m->set_prune_mask(mask);
  }
}

double pruned_fraction(Network& net) {
  std::int64_t total = 0, pruned = 0;
  for (MaskedLayer* m : net.masked_layers()) {
    for (const auto keep : m->prune_mask()) {
      ++total;
      if (!keep) ++pruned;
    }
  }
  return total > 0 ? static_cast<double>(pruned) / static_cast<double>(total) : 0.0;
}

}  // namespace stepping
