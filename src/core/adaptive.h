// Confidence-gated adaptive inference on top of the incremental executor.
//
// The paper motivates SteppingNet with scenarios where "a preliminary
// decision should be made early and refined further with more computational
// resources". AdaptiveExecutor turns that into a policy: evaluate the
// smallest subnet, and step up only while the prediction is *uncertain*
// (top-1 softmax probability below a threshold). Confident easy inputs exit
// early; hard inputs climb the ladder — classic early-exit behaviour
// (cf. BranchyNet/MSDNet), but with SteppingNet every step reuses all prior
// work instead of re-running a larger branch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/incremental.h"
#include "nn/network.h"

namespace stepping {

struct AdaptiveConfig {
  /// Stop stepping once max softmax probability reaches this value.
  double confidence_threshold = 0.9;
  /// Highest executable subnet (the construction's num_subnets — required;
  /// it cannot be inferred from assignments because the discard pool N+1
  /// also appears there).
  int max_subnet = 0;
  /// Optional hard MAC budget per input (0 = unlimited): never take a step
  /// whose estimated cost would exceed the remaining budget. Combines the
  /// confidence gate with the paper's resource-constrained scenario.
  std::int64_t mac_budget = 0;
};

struct AdaptiveResult {
  Tensor logits;            ///< logits of the exit level
  int exit_subnet = 0;      ///< level the input exited at
  double confidence = 0.0;  ///< top-1 probability at exit
  std::int64_t macs = 0;    ///< MACs actually executed (with reuse)
};

/// Single-input adaptive inference (batch of 1; the policy is per-input).
class AdaptiveExecutor {
 public:
  AdaptiveExecutor(Network& net, AdaptiveConfig cfg);

  /// Run x (shape (1, C, H, W)) through the ladder until confident.
  AdaptiveResult run(const Tensor& x);

  /// Largest subnet id available in the network's assignments.
  int max_level() const { return max_level_; }

 private:
  Network& net_;
  AdaptiveConfig cfg_;
  IncrementalExecutor exec_;
  int max_level_;
};

/// Dataset-level sweep: accuracy and mean MACs/input of the adaptive policy
/// at a given threshold (used by bench_adaptive).
struct AdaptiveSweepPoint {
  double threshold = 0.0;
  double accuracy = 0.0;
  double mean_macs = 0.0;
  std::vector<int> exit_histogram;  ///< inputs exiting at each level
};

}  // namespace stepping
