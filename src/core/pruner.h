// Unstructured magnitude pruning (paper §III-A1, threshold 1e-5).
//
// Masks are *non-permanent*: forward uses masked weights but gradients keep
// flowing to the underlying values (MaskedLayer computes dW from the raw
// GEMM), so a pruned weight whose magnitude regrows is revived when the mask
// is re-derived on the next construction iteration — exactly the paper's
// "allow them to update in the following training iterations".
#pragma once

#include "nn/network.h"

namespace stepping {

/// Re-derive every masked layer's prune mask: keep |w| >= threshold.
void apply_magnitude_pruning(Network& net, float threshold);

/// Structured variant (the paper prunes "weights and filters"): mask the
/// ENTIRE incoming row of body units whose mean |w| falls below
/// `rel_threshold` x the layer's mean |w|. Composes onto the current mask;
/// revival is a workflow-level property — each construction iteration
/// re-derives the unstructured mask from live magnitudes before this pass,
/// so a regrown row (or a moved unit) comes back. Heads are never
/// structurally pruned.
void apply_structured_pruning(Network& net, double rel_threshold);

/// Fraction of pruned weights across all masked layers (diagnostics).
double pruned_fraction(Network& net);

}  // namespace stepping
