// Binary serialization of a constructed SteppingNet: weights, biases,
// BatchNorm state, subnet assignments, prune masks, and head flags.
//
// Purpose: construction + distillation are training-time; deployment loads
// the finished artifact and only ever runs inference / incremental step-up.
// The format is a simple tagged little-endian stream (magic + version +
// per-layer records); it round-trips bit-exactly and is validated against
// the live network's topology on load (wrong-architecture files are
// rejected, not silently misloaded).
#pragma once

#include <iosfwd>
#include <string>

#include "nn/network.h"

namespace stepping {

/// Serialize `net` (must be wired). Returns false on I/O failure.
bool save_network(Network& net, std::ostream& out);
bool save_network(Network& net, const std::string& path);

/// Load into `net`, which must have been built with the same topology
/// (layer kinds, unit counts, weight shapes). Throws std::runtime_error on
/// format/topology mismatch; returns false on I/O failure.
bool load_network(Network& net, std::istream& in);
bool load_network(Network& net, const std::string& path);

}  // namespace stepping
