// Neuron reallocation between subnets (paper §III-A1/A2, Figure 5).
#pragma once

#include <cstdint>

#include "core/config.h"
#include "nn/network.h"

namespace stepping {

struct MoveStats {
  int moved_units = 0;
  std::int64_t moved_macs = 0;
};

/// Eq. 3 selection score of `unit` in `layer` for its current subnet i:
/// M_j^i = sum_{k=i..N} alpha_k * |dL_k/dr_j^k| using the importance
/// accumulated since the last reset. Units in the discard pool (s > N)
/// score +inf (never moved again).
double selection_score(const MaskedLayer& layer, int unit,
                       const SteppingConfig& cfg);

/// One Figure-3 move step. For every subnet i (ascending) whose MAC count
/// exceeds its budget — and, for i >= 2, whose MAC headroom over subnet i-1
/// exceeds P_i - P_(i-1) (the paper's flow-gating rule) — move the
/// least-important units of subnet i into subnet i+1 until the per-iteration
/// MAC quota `per_iter_macs` = (P_t - P_1)/N_t is just exceeded. Moving from
/// subnet N discards into the N+1 pool. Moved units have their incoming and
/// outgoing pruned synapses revived (Figure 5(f)).
MoveStats move_step(Network& net, const SteppingConfig& cfg,
                    std::int64_t per_iter_macs);

}  // namespace stepping
