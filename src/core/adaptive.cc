#include "core/adaptive.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/macs.h"
#include "tensor/ops.h"

namespace stepping {

AdaptiveExecutor::AdaptiveExecutor(Network& net, AdaptiveConfig cfg)
    : net_(net), cfg_(cfg), exec_(net), max_level_(cfg.max_subnet) {
  if (max_level_ < 1) {
    throw std::invalid_argument("AdaptiveExecutor: max_subnet required (>= 1)");
  }
  if (cfg_.confidence_threshold <= 0.0 || cfg_.confidence_threshold > 1.0) {
    throw std::invalid_argument("AdaptiveExecutor: threshold must be in (0, 1]");
  }
}

AdaptiveResult AdaptiveExecutor::run(const Tensor& x) {
  assert(x.rank() == 4 && x.dim(0) == 1);
  AdaptiveResult out;
  exec_.reset();
  Tensor probs;
  for (int level = 1; level <= max_level_; ++level) {
    if (level > 1 && cfg_.mac_budget > 0) {
      // Estimated step cost: the body increment between the two levels
      // (head recompute is small and included conservatively below).
      std::int64_t estimate = 0;
      for (MaskedLayer* m : net_.masked_layers()) {
        estimate += m->subnet_macs(level);
      }
      std::int64_t at_prev = 0;
      for (MaskedLayer* m : net_.masked_layers()) {
        if (!m->is_head()) at_prev += m->subnet_macs(level - 1);
      }
      if (out.macs + (estimate - at_prev) > cfg_.mac_budget) break;
    }
    out.logits = exec_.run(x, level);
    out.macs += exec_.last_step_macs();
    out.exit_subnet = level;
    softmax_rows(out.logits, probs);
    double top1 = 0.0;
    for (int c = 0; c < probs.dim(1); ++c) {
      top1 = std::max(top1, static_cast<double>(probs.at(0, c)));
    }
    out.confidence = top1;
    if (top1 >= cfg_.confidence_threshold) break;
  }
  return out;
}

}  // namespace stepping
