#include "core/report.h"

#include "core/macs.h"
#include "util/table.h"

namespace stepping {

NetworkReport build_report(Network& net, int num_subnets) {
  NetworkReport report;
  report.num_subnets = num_subnets;
  for (MaskedLayer* m : net.masked_layers()) {
    LayerReport lr;
    lr.name = m->name();
    lr.is_head = m->is_head();
    lr.units = m->num_units();
    lr.units_per_subnet.assign(static_cast<std::size_t>(num_subnets) + 1, 0);
    for (const int s : m->unit_subnet()) {
      const int idx = std::min(s, num_subnets + 1) - 1;
      ++lr.units_per_subnet[static_cast<std::size_t>(idx)];
    }
    for (int i = 1; i <= num_subnets; ++i) {
      lr.macs_per_subnet.push_back(m->subnet_macs(i));
    }
    std::int64_t pruned = 0;
    for (const auto keep : m->prune_mask()) {
      if (!keep) ++pruned;
    }
    lr.pruned_fraction =
        static_cast<double>(pruned) / static_cast<double>(m->prune_mask().size());
    report.layers.push_back(std::move(lr));
  }
  report.total_macs_per_subnet = all_subnet_macs(net, num_subnets);
  return report;
}

std::string NetworkReport::to_string() const {
  std::vector<std::string> header = {"layer", "units"};
  for (int i = 1; i <= num_subnets; ++i) {
    header.push_back("s" + std::to_string(i));
  }
  header.push_back("pool");
  for (int i = 1; i <= num_subnets; ++i) {
    header.push_back("MACs@" + std::to_string(i));
  }
  header.push_back("pruned");

  Table t(header);
  for (const LayerReport& lr : layers) {
    std::vector<std::string> row = {lr.is_head ? lr.name + " (head)" : lr.name,
                                    std::to_string(lr.units)};
    for (const int c : lr.units_per_subnet) row.push_back(std::to_string(c));
    for (const std::int64_t m : lr.macs_per_subnet) {
      row.push_back(std::to_string(m));
    }
    row.push_back(Table::fmt_pct(lr.pruned_fraction, 1));
    t.add_row(row);
  }
  std::vector<std::string> total = {"TOTAL", ""};
  for (int i = 0; i <= num_subnets; ++i) total.push_back("");
  for (const std::int64_t m : total_macs_per_subnet) {
    total.push_back(std::to_string(m));
  }
  total.push_back("");
  t.add_row(total);
  return t.to_string();
}

}  // namespace stepping
