// Multi-subnet knowledge-distillation retraining (paper §III-B, Eq. 4).
#pragma once

#include "core/config.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace stepping {

/// Retrain the constructed subnets with the Eq. 4 loss:
///   L'_i = gamma * CE_i + (1 - gamma) * KL(teacher || subnet_i)
/// Teacher targets are the frozen original network's softmax outputs,
/// precomputed row-aligned with `train` (compute_teacher_probs). Subnets are
/// trained in ascending order within each mini-batch, with the same beta
/// LR-suppression as construction (when enabled).
void distill_subnets(Network& net, const SteppingConfig& cfg,
                     const Dataset& train, const Tensor& teacher_probs,
                     Sgd& sgd, int epochs, int batch_size, Rng& rng);

}  // namespace stepping
