#include "core/train_loops.h"

#include <cstring>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace stepping {

double evaluate(Network& net, const Dataset& data, int subnet_id,
                int batch_size) {
  return dataset_accuracy(data, batch_size,
                          [&](const Tensor& x, const std::vector<int>& y) {
                            return eval_batch(net, x, y, subnet_id);
                          });
}

double train_plain(Network& net, const Dataset& train, Sgd& sgd, int subnet_id,
                   int epochs, int batch_size, Rng& rng, bool augment) {
  LoaderConfig lc;
  lc.batch_size = batch_size;
  lc.augment = augment;
  DataLoader loader(train, lc, rng.fork());
  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = true;
  double last_loss = 0.0;
  const int bpe = loader.batches_per_epoch();
  for (int e = 0; e < epochs; ++e) {
    STEPPING_TRACE_SCOPE_CAT("train", "train.epoch");
    double loss_sum = 0.0;
    for (int b = 0; b < bpe; ++b) {
      const auto batch = loader.next();
      loss_sum += train_batch(net, sgd, batch.x, batch.y, ctx).loss;
    }
    last_loss = loss_sum / bpe;
  }
  return last_loss;
}

Tensor compute_teacher_probs(Network& net, const Dataset& data, int subnet_id,
                             int batch_size) {
  STEPPING_TRACE_SCOPE_CAT("train", "train.teacher_probs");
  const int n = data.size();
  Tensor probs;
  Tensor x;
  std::vector<int> y;
  int classes = 0;
  for (int begin = 0; begin < n; begin += batch_size) {
    const int count = std::min(batch_size, n - begin);
    data.batch(begin, count, x, y);
    const Tensor p = predict_probs(net, x, subnet_id);
    if (classes == 0) {
      classes = p.dim(1);
      probs = Tensor({n, classes});
    }
    // Row-partitioned copy into the dataset-aligned teacher matrix; each
    // destination row is written by exactly one thread.
    const float* src = p.data();
    float* dst = probs.data() + static_cast<std::int64_t>(begin) * classes;
    parallel_for_cost(0, count, classes,
                      [&](std::int64_t i0, std::int64_t i1) {
      std::memcpy(dst + i0 * classes, src + i0 * classes,
                  sizeof(float) * static_cast<std::size_t>((i1 - i0) * classes));
    });
  }
  return probs;
}

BatchStats joint_train_batches(Network& net, DataLoader& loader, Sgd& sgd,
                               int num_subnets, int num_batches,
                               bool suppression, bool harvest_importance) {
  STEPPING_TRACE_SCOPE_CAT("train", "construct.joint_train");
  BatchStats agg;
  SubnetContext ctx;
  ctx.num_subnets = num_subnets;
  ctx.training = true;
  ctx.harvest_importance = harvest_importance;
  for (int b = 0; b < num_batches; ++b) {
    const auto batch = loader.next();
    for (int k = 1; k <= num_subnets; ++k) {
      ctx.subnet_id = k;
      net.activate_lr_scale(suppression ? k : 0);
      const BatchStats s = train_batch(net, sgd, batch.x, batch.y, ctx);
      if (k == num_subnets) {  // track the largest subnet's stats
        agg.loss += s.loss;
        agg.correct += s.correct;
        agg.total += s.total;
      }
    }
  }
  net.activate_lr_scale(0);
  if (num_batches > 0) agg.loss /= num_batches;
  return agg;
}

}  // namespace stepping
