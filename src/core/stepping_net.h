// Public facade: the end-to-end SteppingNet pipeline.
//
// Quickstart (see examples/quickstart.cpp):
//   auto data = make_synthetic(synth_cifar10());
//   Network net = build_lenet3c1l({.classes = 10, .expansion = 1.8});
//   SteppingConfig cfg;
//   cfg.mac_budget_frac = {0.10, 0.30, 0.50, 0.85};
//   cfg.reference_macs = full_macs_of_unexpanded_reference;
//   SteppingNet sn(std::move(net), cfg);
//   sn.pretrain(data.train, /*epochs=*/8);
//   sn.construct(data.train);
//   sn.distill(data.train, /*epochs=*/4);
//   double a2 = sn.accuracy(data.test, /*subnet=*/2);
#pragma once

#include <cstdint>

#include "core/builder.h"
#include "core/config.h"
#include "core/incremental.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace stepping {

class SteppingNet {
 public:
  /// Takes ownership of a wired network whose units all sit in subnet 1
  /// (the expanded original network of the paper).
  SteppingNet(Network net, SteppingConfig cfg, std::uint64_t seed = 1234);

  Network& network() { return net_; }
  const SteppingConfig& config() const { return cfg_; }
  Sgd& optimizer() { return sgd_; }

  /// Phase 1 — pretrain the full (expanded) network with plain CE; also
  /// freezes the teacher softmax targets for later distillation.
  /// Returns final training loss.
  double pretrain(const Dataset& train, int epochs, int batch_size = 32);

  /// Phase 2 — Figure-3 subnet construction.
  ConstructionReport construct(const Dataset& train, int batch_size = 32);

  /// Phase 3 — Eq. 4 knowledge-distillation retraining of all subnets.
  void distill(const Dataset& train, int epochs, int batch_size = 32);

  /// Top-1 accuracy of subnet `subnet_id` (1..N).
  double accuracy(const Dataset& data, int subnet_id);

  /// Analytic MACs of subnet `subnet_id`.
  std::int64_t macs(int subnet_id);

  /// MAC ratio M_i / M_t against the configured reference network.
  double mac_fraction(int subnet_id);

  /// Logits of subnet `subnet_id` for a batch.
  Tensor predict(const Tensor& x, int subnet_id);

  /// Whether pretrain() captured teacher targets yet.
  bool has_teacher() const { return !teacher_probs_.empty(); }
  const Tensor& teacher_probs() const { return teacher_probs_; }

 private:
  Network net_;
  SteppingConfig cfg_;
  Sgd sgd_;
  Rng rng_;
  Tensor teacher_probs_;
  std::int64_t reference_macs_ = 0;
};

}  // namespace stepping
