#include "core/metrics.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "util/thread_pool.h"

namespace stepping {

double EvaluationMetrics::macro_f1() const {
  if (per_class.empty()) return 0.0;
  double s = 0.0;
  for (const ClassMetrics& c : per_class) s += c.f1();
  return s / static_cast<double>(per_class.size());
}

EvaluationMetrics evaluate_metrics(Network& net, const Dataset& data,
                                   int subnet_id, int k, int batch_size) {
  EvaluationMetrics m;
  m.num_classes = data.num_classes;
  m.k = std::min(k, data.num_classes);
  m.confusion.assign(
      static_cast<std::size_t>(data.num_classes) * data.num_classes, 0);
  m.per_class.assign(static_cast<std::size_t>(data.num_classes), {});

  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = false;

  Tensor x;
  std::vector<int> y;
  std::mutex merge_mutex;
  for (int begin = 0; begin < data.size(); begin += batch_size) {
    const int count = std::min(batch_size, data.size() - begin);
    data.batch(begin, count, x, y);
    const Tensor logits = net.forward(x, ctx);
    const int c = logits.dim(1);
    assert(c == data.num_classes);
    // Per-sample top-k scoring in parallel: each chunk ranks its samples
    // into local counters, merged once under a lock. All counters are
    // integers, so the merged totals are exact for any thread count.
    parallel_for_cost(0, count, static_cast<std::int64_t>(c) * 8,
                      [&](std::int64_t i0, std::int64_t i1) {
      EvaluationMetrics local;
      local.confusion.assign(static_cast<std::size_t>(c) * c, 0);
      local.per_class.assign(static_cast<std::size_t>(c), {});
      std::vector<int> order(static_cast<std::size_t>(c));
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* row = logits.data() + i * c;
        // Rank classes by logit (descending) for top-k; top-1 = order[0].
        for (int j = 0; j < c; ++j) order[static_cast<std::size_t>(j)] = j;
        std::partial_sort(order.begin(), order.begin() + m.k, order.end(),
                          [&](int a, int b) { return row[a] > row[b]; });
        const int truth = y[static_cast<std::size_t>(i)];
        const int pred = order[0];
        ++local.total;
        ++local.per_class[static_cast<std::size_t>(truth)].support;
        ++local.confusion[static_cast<std::size_t>(truth) * c + pred];
        if (pred == truth) {
          ++local.top1_correct;
          ++local.per_class[static_cast<std::size_t>(truth)].true_positive;
        } else {
          ++local.per_class[static_cast<std::size_t>(pred)].false_positive;
        }
        for (int j = 0; j < m.k; ++j) {
          if (order[static_cast<std::size_t>(j)] == truth) {
            ++local.topk_correct;
            break;
          }
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      m.total += local.total;
      m.top1_correct += local.top1_correct;
      m.topk_correct += local.topk_correct;
      for (std::size_t j = 0; j < local.confusion.size(); ++j) {
        m.confusion[j] += local.confusion[j];
      }
      for (std::size_t j = 0; j < local.per_class.size(); ++j) {
        m.per_class[j].support += local.per_class[j].support;
        m.per_class[j].true_positive += local.per_class[j].true_positive;
        m.per_class[j].false_positive += local.per_class[j].false_positive;
      }
    });
  }
  return m;
}

}  // namespace stepping
