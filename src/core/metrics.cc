#include "core/metrics.h"

#include <algorithm>
#include <cassert>

namespace stepping {

double EvaluationMetrics::macro_f1() const {
  if (per_class.empty()) return 0.0;
  double s = 0.0;
  for (const ClassMetrics& c : per_class) s += c.f1();
  return s / static_cast<double>(per_class.size());
}

EvaluationMetrics evaluate_metrics(Network& net, const Dataset& data,
                                   int subnet_id, int k, int batch_size) {
  EvaluationMetrics m;
  m.num_classes = data.num_classes;
  m.k = std::min(k, data.num_classes);
  m.confusion.assign(
      static_cast<std::size_t>(data.num_classes) * data.num_classes, 0);
  m.per_class.assign(static_cast<std::size_t>(data.num_classes), {});

  SubnetContext ctx;
  ctx.subnet_id = subnet_id;
  ctx.training = false;

  Tensor x;
  std::vector<int> y;
  std::vector<int> order(static_cast<std::size_t>(data.num_classes));
  for (int begin = 0; begin < data.size(); begin += batch_size) {
    const int count = std::min(batch_size, data.size() - begin);
    data.batch(begin, count, x, y);
    const Tensor logits = net.forward(x, ctx);
    const int c = logits.dim(1);
    assert(c == data.num_classes);
    for (int i = 0; i < count; ++i) {
      const float* row = logits.data() + static_cast<std::int64_t>(i) * c;
      // Rank classes by logit (descending) for top-k; top-1 = order[0].
      order.resize(static_cast<std::size_t>(c));
      for (int j = 0; j < c; ++j) order[static_cast<std::size_t>(j)] = j;
      std::partial_sort(order.begin(), order.begin() + m.k, order.end(),
                        [&](int a, int b) { return row[a] > row[b]; });
      const int truth = y[static_cast<std::size_t>(i)];
      const int pred = order[0];
      ++m.total;
      ++m.per_class[static_cast<std::size_t>(truth)].support;
      ++m.confusion[static_cast<std::size_t>(truth) * c + pred];
      if (pred == truth) {
        ++m.top1_correct;
        ++m.per_class[static_cast<std::size_t>(truth)].true_positive;
      } else {
        ++m.per_class[static_cast<std::size_t>(pred)].false_positive;
      }
      for (int j = 0; j < m.k; ++j) {
        if (order[static_cast<std::size_t>(j)] == truth) {
          ++m.topk_correct;
          break;
        }
      }
    }
  }
  return m;
}

}  // namespace stepping
