// Streaming inference with per-stream ladder state (ISSUE 10).
//
// A video/sensor stream presents near-duplicate inputs frame after frame.
// This module keeps each stream's previous-frame activation ladder (one
// cached post-activation tensor per layer, at some subnet level) in a keyed
// LRU cache, fingerprints the new frame per spatial tile, and recomputes
// only the dirty tiles plus each convolution's receptive-field halo through
// the conv stack (Layer::propagate_dirty_region / forward_delta). The result
// is BITWISE identical to a full forward pass at the same subnet level:
//  * a conv output position whose receptive field reads only clean input
//    keeps its cached bits (they ARE what a full pass would produce);
//  * recomputed positions are lowered with im2col_region, whose columns are
//    byte-identical to the full im2col's, and every GEMM output element's FP
//    op sequence folds over its own column only (tensor/gemm_kernel.h), so
//    the spliced values match the full pass bit for bit;
//  * after the splice every downstream layer's input is exact, so layers
//    without a delta path simply run their plain forward.
//
// Invalidation mirrors the packed-weight cache's versioned idiom
// (tensor/gemm_pack_cache.h): a stream state remembers the network signature
// (every Param::version, bumped by optimizer steps and deserialization) and
// the config generation it was built under; any mismatch drops the state and
// rebuilds cold. Network::clone() copies versions verbatim, so all serve
// replicas share one signature and stream state migrates freely across
// workers.
//
// Env surface:
//   STEPPING_STREAM          off (default) | exact — master switch (serve)
//   STEPPING_STREAM_TILE     tile edge in pixels for frame diffing (8)
//   STEPPING_STREAM_STREAMS  LRU capacity in streams (64)
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/incremental.h"
#include "nn/network.h"

namespace stepping::stream {

struct StreamConfig {
  /// Master switch; "exact" is the only delta mode (approximate modes would
  /// break the bitwise contract and are deliberately not offered).
  bool enabled = false;
  /// Tile edge in pixels for the per-tile frame fingerprint.
  int tile = 8;
  /// Maximum number of streams the state cache retains (LRU beyond this).
  int capacity = 64;
};

/// Resolve {STEPPING_STREAM, STEPPING_STREAM_TILE, STEPPING_STREAM_STREAMS}.
StreamConfig stream_config_from_env();

/// Version vector of every parameter in wiring order — the invalidation
/// signature for cached stream state. Any SGD step or deserialization bumps
/// at least one Param::version, changing the signature; clone() copies
/// versions verbatim, so replicas of one model agree.
std::vector<std::uint64_t> network_signature(Network& net);

/// Per-tile FNV-1a fingerprints of a (N, C, H, W) frame: one 64-bit hash per
/// spatial tile, folded across all images and channels. Grid is
/// ceil(H/tile) x ceil(W/tile), row-major.
void tile_fingerprints(const Tensor& x, int tile,
                       std::vector<std::uint64_t>& grid);

/// Cached ladder state of one stream: the previous frame's per-layer
/// post-activation tensors at `level`, plus the tile fingerprint grid used
/// to diff the next frame against. Guarded by `mu` — one frame of one
/// stream executes at a time; different streams proceed concurrently.
struct StreamState {
  std::mutex mu;
  std::vector<int> in_shape;            ///< frame shape the state matches
  std::vector<std::uint64_t> tiles;     ///< per-tile FNV-1a grid
  std::vector<std::uint64_t> signature; ///< network_signature at build time
  int tile = 0;                         ///< tile size the grid was built with
  int level = 0;                        ///< cached subnet level (0 = empty)
  std::vector<Tensor> layer_outputs;    ///< one per layer, post-activation
  Tensor logits;                        ///< previous frame's output
  std::uint64_t frames = 0;             ///< frames processed on this stream
};

/// Keyed, lock-striped LRU over stream ids (generalizes the packed-weight
/// cache's keyed retention to whole activation ladders). acquire() returns a
/// shared_ptr so an evicted state stays alive for the frame currently using
/// it; eviction only drops the cache's reference.
class StreamStateCache {
 public:
  explicit StreamStateCache(int capacity);

  /// Look up (and LRU-touch) the state for `stream_id`, creating an empty
  /// one on miss. `hit` reports whether the state already existed.
  std::shared_ptr<StreamState> acquire(std::uint64_t stream_id, bool* hit);

  /// Drop all cached states (tests; config changes).
  void clear();

  std::int64_t size() const;
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::uint64_t, std::shared_ptr<StreamState>>> lru;
    std::unordered_map<std::uint64_t, decltype(lru)::iterator> index;
  };
  static constexpr int kShards = 8;

  Shard& shard_of(std::uint64_t id) { return shards_[id % kShards]; }

  Shard shards_[kShards];
  int shard_capacity_;  ///< capacity split evenly across shards (min 1)
  mutable std::mutex stats_mu_;
  std::int64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

/// Outcome of one streamed frame.
struct StreamResult {
  Tensor logits;
  /// Analytic MACs actually executed for this frame.
  std::int64_t macs = 0;
  /// MACs a from-scratch evaluation at `level` would execute.
  std::int64_t full_macs = 0;
  /// Tiles whose fingerprint changed vs the previous frame (0 on cold).
  int dirty_tiles = 0;
  /// Total tiles in the fingerprint grid.
  int total_tiles = 0;
  /// True when no previous-frame state could be reused (first frame, shape
  /// or signature change, level step-down).
  bool cold = false;
  /// Subnet level the logits correspond to.
  int level = 0;
};

/// Evaluate subnet `level` on frame `x` for the stream whose state is `st`,
/// reusing the previous frame's ladder where the dirty-region analysis
/// proves reuse exact, and update `st` to describe this frame. `signature`
/// must be network_signature(net) (callers amortize it across frames).
/// Caller holds st.mu. Bitwise identical to a cold forward at `level`.
StreamResult stream_delta_forward(Network& net, StreamState& st,
                                  const Tensor& x, int level,
                                  const StreamConfig& cfg,
                                  const std::vector<std::uint64_t>& signature);

}  // namespace stepping::stream
