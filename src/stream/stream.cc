#include "stream/stream.h"

#include <algorithm>
#include <cassert>

#include "nn/param.h"
#include "obs/trace.h"
#include "util/env.h"

namespace stepping::stream {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a_fold(std::uint64_t h, const float* v, int n) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(v);
  const std::size_t bytes = sizeof(float) * static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

StreamConfig stream_config_from_env() {
  StreamConfig cfg;
  const std::string mode = env_or("STEPPING_STREAM", "off");
  cfg.enabled = mode == "exact";
  cfg.tile = static_cast<int>(env_or_int("STEPPING_STREAM_TILE", 8));
  if (cfg.tile < 1) cfg.tile = 1;
  cfg.capacity = static_cast<int>(env_or_int("STEPPING_STREAM_STREAMS", 64));
  if (cfg.capacity < 1) cfg.capacity = 1;
  return cfg;
}

std::vector<std::uint64_t> network_signature(Network& net) {
  std::vector<std::uint64_t> sig;
  for (Param* p : net.params()) sig.push_back(p->version);
  return sig;
}

void tile_fingerprints(const Tensor& x, int tile,
                       std::vector<std::uint64_t>& grid) {
  assert(x.rank() == 4 && tile >= 1);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int gh = (h + tile - 1) / tile;
  const int gw = (w + tile - 1) / tile;
  grid.assign(static_cast<std::size_t>(gh) * gw, kFnvOffset);
  const float* base = x.data();
  for (int i = 0; i < n; ++i) {
    for (int ch = 0; ch < c; ++ch) {
      const float* plane =
          base + (static_cast<std::int64_t>(i) * c + ch) * h * w;
      for (int r = 0; r < h; ++r) {
        const float* row = plane + static_cast<std::int64_t>(r) * w;
        std::uint64_t* tile_row =
            grid.data() + static_cast<std::size_t>(r / tile) * gw;
        for (int tc = 0; tc < gw; ++tc) {
          const int c0 = tc * tile;
          const int c1 = std::min(w, c0 + tile);
          tile_row[tc] = fnv1a_fold(tile_row[tc], row + c0, c1 - c0);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// StreamStateCache
// ---------------------------------------------------------------------------

StreamStateCache::StreamStateCache(int capacity)
    : shard_capacity_(std::max(1, capacity / kShards)) {}

std::shared_ptr<StreamState> StreamStateCache::acquire(std::uint64_t stream_id,
                                                       bool* hit) {
  Shard& s = shard_of(stream_id);
  std::shared_ptr<StreamState> state;
  bool was_hit = false;
  int evicted = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(stream_id);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
      it->second = s.lru.begin();
      state = s.lru.begin()->second;
      was_hit = true;
    } else {
      state = std::make_shared<StreamState>();
      s.lru.emplace_front(stream_id, state);
      s.index[stream_id] = s.lru.begin();
      while (static_cast<int>(s.lru.size()) > shard_capacity_) {
        s.index.erase(s.lru.back().first);
        s.lru.pop_back();  // in-flight frames keep their shared_ptr alive
        ++evicted;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (was_hit) {
      ++hits_;
    } else {
      ++misses_;
    }
    evictions_ += evicted;
  }
  if (hit) *hit = was_hit;
  return state;
}

void StreamStateCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.lru.clear();
    s.index.clear();
  }
}

std::int64_t StreamStateCache::size() const {
  std::int64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += static_cast<std::int64_t>(s.lru.size());
  }
  return total;
}

std::int64_t StreamStateCache::hits() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return hits_;
}

std::int64_t StreamStateCache::misses() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return misses_;
}

std::int64_t StreamStateCache::evictions() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return evictions_;
}

// ---------------------------------------------------------------------------
// stream_delta_forward
// ---------------------------------------------------------------------------

namespace {

std::int64_t full_macs_at(Network& net, int level) {
  std::int64_t total = 0;
  for (MaskedLayer* m : net.masked_layers()) total += m->subnet_macs(level);
  return total;
}

/// Diff two fingerprint grids: count differing tiles and return their
/// bounding box in PIXEL coordinates (clipped to h x w). An empty rect means
/// the frames hashed identical.
SpatialRegion diff_tiles(const std::vector<std::uint64_t>& prev,
                         const std::vector<std::uint64_t>& next, int tile,
                         int h, int w, int* dirty_count) {
  const int gw = (w + tile - 1) / tile;
  int tr0 = 1 << 30, tr1 = -1, tc0 = 1 << 30, tc1 = -1, count = 0;
  for (std::size_t i = 0; i < next.size(); ++i) {
    if (prev[i] == next[i]) continue;
    ++count;
    const int tr = static_cast<int>(i) / gw;
    const int tc = static_cast<int>(i) % gw;
    tr0 = std::min(tr0, tr);
    tr1 = std::max(tr1, tr);
    tc0 = std::min(tc0, tc);
    tc1 = std::max(tc1, tc);
  }
  *dirty_count = count;
  if (count == 0) return {};
  SpatialRegion r{tr0 * tile, (tr1 + 1) * tile, tc0 * tile, (tc1 + 1) * tile};
  return r.clipped(h, w);
}

/// One exact delta pass at st.level: walk the layers threading the dirty
/// region; conv layers splice recomputed rectangles into their cached
/// outputs, every other layer re-runs its plain forward on the (exact)
/// spliced input. Region tracking stops at the first flat output (Flatten /
/// Dense) — from there the whole activation is treated as dirty anyway.
/// Returns analytic MACs executed; st.layer_outputs become frame t+1's
/// ladder at st.level.
std::int64_t delta_pass(Network& net, StreamState& st, const Tensor& x,
                        SpatialRegion region) {
  SubnetContext ctx;
  ctx.subnet_id = st.level;
  ctx.training = false;

  const auto& layers = net.layers();
  assert(st.layer_outputs.size() == layers.size());
  std::int64_t macs = 0;
  bool tracked = true;
  Tensor cur = x;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Layer* layer = layers[i].get();
    auto* masked = dynamic_cast<MaskedLayer*>(layer);
    Tensor out;
    if (tracked) {
      const IOSpec& spec = layer->out_spec();
      const SpatialRegion out_region =
          layer->propagate_dirty_region(region).clipped(spec.h, spec.w);
      if (layer->supports_spatial_delta() && !st.layer_outputs[i].empty() &&
          !out_region.covers(spec.h, spec.w)) {
        out = layer->forward_delta(cur, st.layer_outputs[i], out_region, ctx);
        // Delta conv cost: active weights x recomputed positions (the full
        // layer is active_weights x out_h*out_w == subnet_macs).
        if (masked) macs += masked->active_weights(st.level) * out_region.area();
      } else {
        out = layer->forward(cur, ctx);
        if (masked) macs += masked->subnet_macs(st.level);
      }
      region = out_region;
      if (spec.flat) tracked = false;
    } else {
      out = layer->forward(cur, ctx);
      if (masked) macs += masked->subnet_macs(st.level);
    }
    st.layer_outputs[i] = out;
    cur = std::move(out);
  }
  st.logits = st.layer_outputs.back();
  return macs;
}

}  // namespace

StreamResult stream_delta_forward(Network& net, StreamState& st,
                                  const Tensor& x, int level,
                                  const StreamConfig& cfg,
                                  const std::vector<std::uint64_t>& signature) {
  assert(level >= 1 && x.rank() == 4);
  obs::TraceScope span("stream.delta", "stream");

  StreamResult res;
  res.level = level;
  res.full_macs = full_macs_at(net, level);

  std::vector<std::uint64_t> tiles;
  tile_fingerprints(x, cfg.tile, tiles);
  res.total_tiles = static_cast<int>(tiles.size());

  // Reuse is only sound when the cached ladder describes the same model
  // (signature), the same frame geometry, the same tile grid, and a level we
  // can step UP from. A level step-down could mask like the incremental
  // executor, but streams re-request their steady level next frame anyway,
  // so the simple cold rebuild keeps the state machine small.
  const bool reusable = st.level != 0 && st.level <= level &&
                        st.signature == signature && st.in_shape == x.shape() &&
                        st.tile == cfg.tile;

  if (!reusable) {
    res.cold = true;
    for (auto& t : st.layer_outputs) t = Tensor();
    st.logits = ladder_step(net, x, st.layer_outputs, 0, level);
    res.macs = res.full_macs;
  } else {
    int dirty = 0;
    const SpatialRegion region = diff_tiles(
        st.tiles, tiles, cfg.tile, x.dim(2), x.dim(3), &dirty);
    res.dirty_tiles = dirty;
    if (dirty > 0) res.macs += delta_pass(net, st, x, region);
    if (level > st.level) {
      st.logits = ladder_step(net, x, st.layer_outputs, st.level, level);
      res.macs += ladder_step_macs(net, st.level, level);
    }
    // dirty == 0 && level == st.level: the frame hashed identical — the
    // cached logits are the answer, zero MACs.
  }

  st.in_shape = x.shape();
  st.tiles = std::move(tiles);
  st.signature = signature;
  st.tile = cfg.tile;
  st.level = level;
  ++st.frames;
  res.logits = st.logits;

  span.arg("level", level);
  span.arg("dirty_tiles", res.dirty_tiles);
  span.arg("macs", res.macs);
  span.arg("cold", res.cold ? 1 : 0);
  return res;
}

}  // namespace stepping::stream
