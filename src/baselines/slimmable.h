// Slimmable network baseline (Yu et al., ICLR 2019; paper reference [10]).
//
// A slimmable network runs at N width "switches": switch i uses the first
// ceil(f_i * U) filters of every layer with *dense* connectivity inside the
// prefix — including synapses from filters added by a wider switch into
// filters of a narrower one. That connectivity invalidates narrow-switch
// intermediate results on expansion (the paper's Fig. 1(a) critique), and it
// requires one BatchNorm parameter/statistics set per switch ("switchable
// BN"). Because this breaks the nesting invariant of the core masking
// engine, the baseline carries its own small layer stack.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/sgd.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace stepping {

/// Architecture description shared by the slimmable builders.
struct SlimSpec {
  enum class Kind { kConvBlock, kPool, kDenseHidden, kDenseHead };
  struct Block {
    Kind kind;
    int width = 0;   ///< filters / neurons (full, pre-slimming)
    int kernel = 0;  ///< conv kernel or pool size
  };
  std::vector<Block> blocks;
  int in_c = 3, in_h = 32, in_w = 32;
};

/// Mirror of the Table-I architectures ("lenet3c1l", "lenet5", "vgg16") at
/// the same expanded widths used for SteppingNet, so Fig. 6 compares equal
/// capacity pools.
SlimSpec slim_spec_for_model(const std::string& name, int classes,
                             double expansion, double width_mult = 1.0);

/// Analytic MACs of the spec at uniform width fraction `f`.
std::int64_t slim_macs_for_fraction(const SlimSpec& spec, double f);

/// Width fractions whose MACs best match the given budgets (binary search).
std::vector<double> solve_slim_fractions(const SlimSpec& spec,
                                         const std::vector<std::int64_t>& budgets);

class SlimmableNet {
 public:
  /// Internal layer node (public so the implementation file can define
  /// concrete subclasses outside the class body).
  struct LayerImpl;

  SlimmableNet(const SlimSpec& spec, std::vector<double> width_fracs,
               std::uint64_t seed = 99);
  ~SlimmableNet();
  SlimmableNet(SlimmableNet&&) noexcept;
  SlimmableNet& operator=(SlimmableNet&&) noexcept;

  int num_subnets() const { return static_cast<int>(fracs_.size()); }

  Tensor forward(const Tensor& x, int subnet_id, bool training);

  /// Joint training: each mini-batch trains every switch ascending ([10]).
  void train(const Dataset& train, int epochs, int batch_size, SgdConfig sgd);

  double accuracy(const Dataset& data, int subnet_id);
  std::int64_t macs(int subnet_id) const;
  const std::vector<double>& fractions() const { return fracs_; }

 private:
  std::vector<std::unique_ptr<LayerImpl>> layers_;
  std::vector<double> fracs_;
  Rng rng_;
};

}  // namespace stepping
