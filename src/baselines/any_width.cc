#include "baselines/any_width.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/macs.h"
#include "core/train_loops.h"

namespace stepping {

namespace {

int prefix_count(int units, double f) {
  const int c = static_cast<int>(std::ceil(f * units));
  return std::clamp(c, f > 0.0 ? 1 : 0, units);
}

}  // namespace

std::int64_t prefix_macs(Network& net, double f) {
  std::int64_t total = 0;
  // Track the active input units per masked layer: the input image is always
  // fully active; body outputs are prefix-limited.
  for (MaskedLayer* m : net.masked_layers()) {
    const int in_units =
        static_cast<int>(m->in_subnet().size());
    // Producer prefix: the input assignment belongs either to the image
    // (all 1s — fully active) or to a body layer (prefix f). The image
    // assignment is the only one not owned by a body layer; detect it by
    // checking whether any unit is in the discard range — instead, simply:
    // the first masked layer's producers are image channels (fully active).
    const bool producer_is_image = (m == net.masked_layers().front());
    const int active_in =
        producer_is_image ? in_units : prefix_count(in_units, f);
    const int active_out =
        m->is_head() ? m->num_units() : prefix_count(m->num_units(), f);
    total += static_cast<std::int64_t>(active_out) * active_in *
             m->col_group() * m->macs_per_weight();
  }
  return total;
}

std::vector<double> solve_prefix_fractions(
    Network& net, const std::vector<std::int64_t>& budgets) {
  std::vector<double> fracs;
  fracs.reserve(budgets.size());
  for (const std::int64_t budget : budgets) {
    double lo = 0.0, hi = 1.0;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (prefix_macs(net, mid) <= budget) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    fracs.push_back(lo);
  }
  // Enforce nesting (budgets should already be ascending).
  for (std::size_t i = 1; i < fracs.size(); ++i) {
    fracs[i] = std::max(fracs[i], fracs[i - 1]);
  }
  return fracs;
}

void assign_prefix_subnets(Network& net, const std::vector<double>& fracs) {
  const int n = static_cast<int>(fracs.size());
  for (MaskedLayer* m : net.body_layers()) {
    const int units = m->num_units();
    for (int u = 0; u < units; ++u) {
      int s = n + 1;  // discard pool by default
      for (int i = 0; i < n; ++i) {
        if (u < prefix_count(units, fracs[static_cast<std::size_t>(i)])) {
          s = i + 1;
          break;
        }
      }
      m->set_unit_subnet(u, s);
    }
  }
}

AnyWidthNet::AnyWidthNet(Network net, AnyWidthConfig cfg, std::uint64_t seed)
    : net_(std::move(net)), cfg_(std::move(cfg)), sgd_(cfg_.sgd), rng_(seed) {
  reference_macs_ =
      cfg_.reference_macs > 0 ? cfg_.reference_macs : full_macs(net_);
}

void AnyWidthNet::configure() {
  assert(static_cast<int>(cfg_.mac_budget_frac.size()) == cfg_.num_subnets);
  std::vector<std::int64_t> budgets;
  budgets.reserve(cfg_.mac_budget_frac.size());
  for (const double f : cfg_.mac_budget_frac) {
    budgets.push_back(
        static_cast<std::int64_t>(f * static_cast<double>(reference_macs_)));
  }
  fracs_ = solve_prefix_fractions(net_, budgets);
  assign_prefix_subnets(net_, fracs_);
}

void AnyWidthNet::train(const Dataset& train, int epochs, int batch_size) {
  LoaderConfig lc;
  lc.batch_size = batch_size;
  DataLoader loader(train, lc, rng_.fork());
  const int batches = loader.batches_per_epoch() * epochs;
  joint_train_batches(net_, loader, sgd_, cfg_.num_subnets, batches,
                      /*suppression=*/false, /*harvest_importance=*/false);
}

double AnyWidthNet::accuracy(const Dataset& data, int subnet_id) {
  return evaluate(net_, data, subnet_id);
}

std::int64_t AnyWidthNet::macs(int subnet_id) {
  return subnet_macs(net_, subnet_id);
}

double AnyWidthNet::mac_fraction(int subnet_id) {
  return static_cast<double>(macs(subnet_id)) /
         static_cast<double>(reference_macs_);
}

}  // namespace stepping
