#include "baselines/slimmable.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "data/loader.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace stepping {

namespace {

int prefix_count(int units, double f) {
  const int c = static_cast<int>(std::ceil(f * units));
  return std::clamp(c, 1, units);
}

}  // namespace

// ---------------------------------------------------------------------------
// Layer implementations
// ---------------------------------------------------------------------------

struct SlimmableNet::LayerImpl {
  virtual ~LayerImpl() = default;
  virtual Tensor forward(const Tensor& x, int sub, bool training) = 0;
  virtual Tensor backward(const Tensor& grad_y, int sub) = 0;
  virtual void collect_params(int sub, std::vector<Param*>& out) {
    (void)sub;
    (void)out;
  }
  virtual std::int64_t macs(int sub) const {
    (void)sub;
    return 0;
  }
};

namespace {

using LayerImpl = SlimmableNet::LayerImpl;

/// Conv + switchable BN + ReLU, prefix-sliced per switch.
struct SlimConvBlock final : LayerImpl {
  Conv2dGeometry geom;
  std::vector<int> in_active, out_active;  // per switch
  Param w, b;
  // Switchable BN: one affine + stats set per switch.
  std::vector<Param> gamma, beta;
  std::vector<Tensor> run_mean, run_var;
  float eps = 1e-5f, momentum = 0.1f;

  // caches
  Tensor x_cache, xhat_cache;
  std::vector<float> inv_std_cache;
  std::vector<unsigned char> relu_mask;

  SlimConvBlock(const Conv2dGeometry& g, std::vector<int> in_a,
                std::vector<int> out_a, Rng& rng)
      : geom(g), in_active(std::move(in_a)), out_active(std::move(out_a)) {
    const int cols = g.patch();
    w.value = Tensor({g.out_c, cols});
    fill_kaiming_normal(w.value, cols, rng);
    b.value = Tensor({g.out_c});
    b.apply_decay = false;
    const std::size_t n = in_active.size();
    gamma.resize(n);
    beta.resize(n);
    run_mean.resize(n);
    run_var.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      gamma[i].value = Tensor({g.out_c});
      gamma[i].value.fill(1.0f);
      gamma[i].apply_decay = false;
      beta[i].value = Tensor({g.out_c});
      beta[i].apply_decay = false;
      run_mean[i] = Tensor({g.out_c});
      run_var[i] = Tensor({g.out_c});
      run_var[i].fill(1.0f);
    }
  }

  Tensor effective_weights(int sub) const {
    Tensor we = w.value;
    const int oa = out_active[static_cast<std::size_t>(sub - 1)];
    const int ia = in_active[static_cast<std::size_t>(sub - 1)];
    const int cols = geom.patch();
    const int kk = geom.kernel * geom.kernel;
    float* p = we.data();
    for (int u = 0; u < geom.out_c; ++u) {
      float* row = p + static_cast<std::size_t>(u) * cols;
      if (u >= oa) {
        std::memset(row, 0, sizeof(float) * static_cast<std::size_t>(cols));
        continue;
      }
      std::memset(row + ia * kk, 0,
                  sizeof(float) * static_cast<std::size_t>(cols - ia * kk));
    }
    return we;
  }

  Tensor forward(const Tensor& x, int sub, bool training) override {
    const int n = x.dim(0);
    const int oh = geom.out_h(), ow = geom.out_w();
    const int spatial = oh * ow;
    const Tensor we = effective_weights(sub);
    Tensor y({n, geom.out_c, oh, ow});
    Tensor cols({geom.patch(), spatial});
    const std::int64_t in_img =
        static_cast<std::int64_t>(geom.in_c) * geom.in_h * geom.in_w;
    const std::int64_t out_img = static_cast<std::int64_t>(geom.out_c) * spatial;
    for (int i = 0; i < n; ++i) {
      im2col(x.data() + i * in_img, geom, cols.data());
      Tensor yi({geom.out_c, spatial});
      gemm(we, cols, yi);
      float* dst = y.data() + i * out_img;
      for (int u = 0; u < geom.out_c; ++u) {
        const float bu = b.value[u];
        for (int s = 0; s < spatial; ++s) {
          dst[static_cast<std::int64_t>(u) * spatial + s] =
              yi[static_cast<std::int64_t>(u) * spatial + s] + bu;
        }
      }
    }
    if (training) x_cache = x;

    // Switchable BN on the active prefix, then ReLU; inactive channels zero.
    const int oa = out_active[static_cast<std::size_t>(sub - 1)];
    const std::size_t si = static_cast<std::size_t>(sub - 1);
    const std::int64_t plane = static_cast<std::int64_t>(oh) * ow;
    const std::int64_t m = static_cast<std::int64_t>(n) * plane;
    if (training) {
      if (xhat_cache.shape() != y.shape()) xhat_cache = Tensor(y.shape());
      inv_std_cache.assign(static_cast<std::size_t>(geom.out_c), 0.0f);
      relu_mask.assign(static_cast<std::size_t>(y.numel()), 0);
    }
    for (int c = 0; c < geom.out_c; ++c) {
      if (c >= oa) {
        for (int i = 0; i < n; ++i) {
          float* dst =
              y.data() + (static_cast<std::int64_t>(i) * geom.out_c + c) * plane;
          std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(plane));
        }
        continue;
      }
      float mean, var;
      if (training) {
        double s = 0.0, s2 = 0.0;
        for (int i = 0; i < n; ++i) {
          const float* src =
              y.data() + (static_cast<std::int64_t>(i) * geom.out_c + c) * plane;
          for (std::int64_t j = 0; j < plane; ++j) {
            s += src[j];
            s2 += static_cast<double>(src[j]) * src[j];
          }
        }
        mean = static_cast<float>(s / static_cast<double>(m));
        var = std::max(
            0.0f, static_cast<float>(s2 / static_cast<double>(m)) - mean * mean);
        run_mean[si][c] = (1.0f - momentum) * run_mean[si][c] + momentum * mean;
        run_var[si][c] = (1.0f - momentum) * run_var[si][c] + momentum * var;
      } else {
        mean = run_mean[si][c];
        var = run_var[si][c];
      }
      const float inv_std = 1.0f / std::sqrt(var + eps);
      if (training) inv_std_cache[static_cast<std::size_t>(c)] = inv_std;
      const float g = gamma[si].value[c], be = beta[si].value[c];
      for (int i = 0; i < n; ++i) {
        const std::int64_t off =
            (static_cast<std::int64_t>(i) * geom.out_c + c) * plane;
        float* dst = y.data() + off;
        for (std::int64_t j = 0; j < plane; ++j) {
          const float xh = (dst[j] - mean) * inv_std;
          if (training) xhat_cache[off + j] = xh;
          float v = g * xh + be;
          const bool pos = v > 0.0f;
          if (training) relu_mask[static_cast<std::size_t>(off + j)] = pos ? 1 : 0;
          dst[j] = pos ? v : 0.0f;
        }
      }
    }
    return y;
  }

  Tensor backward(const Tensor& grad_y_in, int sub) override {
    Tensor grad_y = grad_y_in;
    const int n = grad_y.dim(0);
    const int oh = geom.out_h(), ow = geom.out_w();
    const int spatial = oh * ow;
    const std::int64_t plane = spatial;
    const std::int64_t m = static_cast<std::int64_t>(n) * plane;
    const int oa = out_active[static_cast<std::size_t>(sub - 1)];
    const int ia = in_active[static_cast<std::size_t>(sub - 1)];
    const std::size_t si = static_cast<std::size_t>(sub - 1);

    if (w.grad.shape() != w.value.shape()) w.zero_grad();
    if (b.grad.shape() != b.value.shape()) b.zero_grad();
    if (gamma[si].grad.shape() != gamma[si].value.shape()) gamma[si].zero_grad();
    if (beta[si].grad.shape() != beta[si].value.shape()) beta[si].zero_grad();

    // ReLU + BN backward into grad wrt conv preact.
    Tensor grad_pre(grad_y.shape());
    for (int c = 0; c < geom.out_c; ++c) {
      if (c >= oa) {
        for (int i = 0; i < n; ++i) {
          float* dst = grad_pre.data() +
                       (static_cast<std::int64_t>(i) * geom.out_c + c) * plane;
          std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(plane));
        }
        continue;
      }
      double sum_gy = 0.0, sum_gy_xh = 0.0;
      for (int i = 0; i < n; ++i) {
        const std::int64_t off =
            (static_cast<std::int64_t>(i) * geom.out_c + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          const float g =
              relu_mask[static_cast<std::size_t>(off + j)] ? grad_y[off + j] : 0.0f;
          sum_gy += g;
          sum_gy_xh += static_cast<double>(g) * xhat_cache[off + j];
        }
      }
      gamma[si].grad[c] += static_cast<float>(sum_gy_xh);
      beta[si].grad[c] += static_cast<float>(sum_gy);
      const float g = gamma[si].value[c];
      const float inv_std = inv_std_cache[static_cast<std::size_t>(c)];
      const float k1 = static_cast<float>(sum_gy / static_cast<double>(m));
      const float k2 = static_cast<float>(sum_gy_xh / static_cast<double>(m));
      for (int i = 0; i < n; ++i) {
        const std::int64_t off =
            (static_cast<std::int64_t>(i) * geom.out_c + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          const float gy =
              relu_mask[static_cast<std::size_t>(off + j)] ? grad_y[off + j] : 0.0f;
          grad_pre[off + j] = g * inv_std * (gy - k1 - xhat_cache[off + j] * k2);
        }
      }
    }

    // Conv backward.
    const Tensor we = effective_weights(sub);
    Tensor grad_x(x_cache.shape());
    Tensor cols({geom.patch(), spatial});
    Tensor dcols({geom.patch(), spatial});
    const std::int64_t in_img =
        static_cast<std::int64_t>(geom.in_c) * geom.in_h * geom.in_w;
    const std::int64_t out_img = static_cast<std::int64_t>(geom.out_c) * spatial;
    Tensor dw_local({geom.out_c, geom.patch()});
    for (int i = 0; i < n; ++i) {
      im2col(x_cache.data() + i * in_img, geom, cols.data());
      Tensor gi({geom.out_c, spatial},
                std::vector<float>(grad_pre.data() + i * out_img,
                                   grad_pre.data() + (i + 1) * out_img));
      gemm_nt(gi, cols, dw_local, /*accumulate=*/true);
      float* db = b.grad.data();
      for (int u = 0; u < oa; ++u) {
        float acc = 0.0f;
        for (int s = 0; s < spatial; ++s)
          acc += gi[static_cast<std::int64_t>(u) * spatial + s];
        db[u] += acc;
      }
      gemm_tn(we, gi, dcols);
      col2im(dcols.data(), geom, grad_x.data() + i * in_img);
    }
    // Only the active block of weights belongs to this switch.
    const int kk = geom.kernel * geom.kernel;
    for (int u = 0; u < oa; ++u) {
      const float* src = dw_local.data() + static_cast<std::size_t>(u) * geom.patch();
      float* dst = w.grad.data() + static_cast<std::size_t>(u) * geom.patch();
      for (int c2 = 0; c2 < ia * kk; ++c2) dst[c2] += src[c2];
    }
    return grad_x;
  }

  void collect_params(int sub, std::vector<Param*>& out) override {
    out.push_back(&w);
    out.push_back(&b);
    out.push_back(&gamma[static_cast<std::size_t>(sub - 1)]);
    out.push_back(&beta[static_cast<std::size_t>(sub - 1)]);
  }

  std::int64_t macs(int sub) const override {
    const int oa = out_active[static_cast<std::size_t>(sub - 1)];
    const int ia = in_active[static_cast<std::size_t>(sub - 1)];
    return static_cast<std::int64_t>(oa) * ia * geom.kernel * geom.kernel *
           geom.out_h() * geom.out_w();
  }
};

struct SlimPool final : LayerImpl {
  int k;
  std::vector<int> argmax;
  std::vector<int> in_shape;
  explicit SlimPool(int kk) : k(kk) {}
  Tensor forward(const Tensor& x, int, bool) override {
    in_shape = x.shape();
    Tensor y;
    maxpool_forward(x, k, y, argmax);
    return y;
  }
  Tensor backward(const Tensor& grad_y, int) override {
    Tensor grad_x(in_shape);
    maxpool_backward(grad_y, argmax, grad_x);
    return grad_x;
  }
};

struct SlimFlatten final : LayerImpl {
  std::vector<int> in_shape;
  Tensor forward(const Tensor& x, int, bool) override {
    in_shape = x.shape();
    const int n = x.dim(0);
    return x.reshaped({n, static_cast<int>(x.numel() / n)});
  }
  Tensor backward(const Tensor& grad_y, int) override {
    return grad_y.reshaped(in_shape);
  }
};

/// Dense (+ optional ReLU), prefix-sliced; the head keeps all outputs.
struct SlimDense final : LayerImpl {
  int out_f, in_f, fpu;  // fpu: input features per producer unit (flatten)
  bool relu, is_head;
  std::vector<int> in_active, out_active;  // per switch, in UNITS
  Param w, b;
  Tensor x_cache, pre_cache;
  std::vector<unsigned char> relu_mask;

  SlimDense(int out_features, int in_features, int features_per_unit, bool act,
            bool head, std::vector<int> in_a, std::vector<int> out_a, Rng& rng)
      : out_f(out_features),
        in_f(in_features),
        fpu(features_per_unit),
        relu(act),
        is_head(head),
        in_active(std::move(in_a)),
        out_active(std::move(out_a)) {
    w.value = Tensor({out_f, in_f});
    fill_kaiming_normal(w.value, in_f, rng);
    b.value = Tensor({out_f});
    b.apply_decay = false;
  }

  Tensor effective_weights(int sub) const {
    Tensor we = w.value;
    const int oa = is_head ? out_f : out_active[static_cast<std::size_t>(sub - 1)];
    const int ia_cols = in_active[static_cast<std::size_t>(sub - 1)] * fpu;
    float* p = we.data();
    for (int u = 0; u < out_f; ++u) {
      float* row = p + static_cast<std::size_t>(u) * in_f;
      if (u >= oa) {
        std::memset(row, 0, sizeof(float) * static_cast<std::size_t>(in_f));
        continue;
      }
      if (ia_cols < in_f) {
        std::memset(row + ia_cols, 0,
                    sizeof(float) * static_cast<std::size_t>(in_f - ia_cols));
      }
    }
    return we;
  }

  Tensor forward(const Tensor& x, int sub, bool training) override {
    const int n = x.dim(0);
    const Tensor we = effective_weights(sub);
    Tensor y({n, out_f});
    gemm_nt(x, we, y);
    const int oa = is_head ? out_f : out_active[static_cast<std::size_t>(sub - 1)];
    for (int i = 0; i < n; ++i) {
      float* row = y.data() + static_cast<std::int64_t>(i) * out_f;
      for (int u = 0; u < oa; ++u) row[u] += b.value[u];
      for (int u = oa; u < out_f; ++u) row[u] = 0.0f;
    }
    if (training) {
      x_cache = x;
      pre_cache = y;
    }
    if (relu) {
      if (training) {
        relu_mask.assign(static_cast<std::size_t>(y.numel()), 0);
        float* p = y.data();
        for (std::int64_t i = 0; i < y.numel(); ++i) {
          const bool pos = p[i] > 0.0f;
          relu_mask[static_cast<std::size_t>(i)] = pos ? 1 : 0;
          if (!pos) p[i] = 0.0f;
        }
      } else {
        float* p = y.data();
        for (std::int64_t i = 0; i < y.numel(); ++i) {
          if (p[i] < 0.0f) p[i] = 0.0f;
        }
      }
    }
    return y;
  }

  Tensor backward(const Tensor& grad_y_in, int sub) override {
    Tensor grad_y = grad_y_in;
    if (relu) {
      float* g = grad_y.data();
      for (std::int64_t i = 0; i < grad_y.numel(); ++i) {
        if (!relu_mask[static_cast<std::size_t>(i)]) g[i] = 0.0f;
      }
    }
    const int n = grad_y.dim(0);
    const int oa = is_head ? out_f : out_active[static_cast<std::size_t>(sub - 1)];
    const int ia_cols = in_active[static_cast<std::size_t>(sub - 1)] * fpu;
    // Zero grads of inactive outputs.
    for (int i = 0; i < n; ++i) {
      float* row = grad_y.data() + static_cast<std::int64_t>(i) * out_f;
      for (int u = oa; u < out_f; ++u) row[u] = 0.0f;
    }
    if (w.grad.shape() != w.value.shape()) w.zero_grad();
    if (b.grad.shape() != b.value.shape()) b.zero_grad();
    Tensor dw({out_f, in_f});
    gemm_tn(grad_y, x_cache, dw);
    for (int u = 0; u < oa; ++u) {
      const float* src = dw.data() + static_cast<std::size_t>(u) * in_f;
      float* dst = w.grad.data() + static_cast<std::size_t>(u) * in_f;
      for (int c = 0; c < ia_cols; ++c) dst[c] += src[c];
    }
    float* db = b.grad.data();
    for (int i = 0; i < n; ++i) {
      const float* row = grad_y.data() + static_cast<std::int64_t>(i) * out_f;
      for (int u = 0; u < oa; ++u) db[u] += row[u];
    }
    const Tensor we = effective_weights(sub);
    Tensor grad_x({n, in_f});
    gemm(grad_y, we, grad_x);
    return grad_x;
  }

  void collect_params(int sub, std::vector<Param*>& out) override {
    (void)sub;
    out.push_back(&w);
    out.push_back(&b);
  }

  std::int64_t macs(int sub) const override {
    const int oa = is_head ? out_f : out_active[static_cast<std::size_t>(sub - 1)];
    return static_cast<std::int64_t>(oa) *
           in_active[static_cast<std::size_t>(sub - 1)] * fpu;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Spec builders / MAC solving
// ---------------------------------------------------------------------------

SlimSpec slim_spec_for_model(const std::string& name, int classes,
                             double expansion, double width_mult) {
  auto scaled = [&](int base) {
    return std::max(2, static_cast<int>(std::lround(base * expansion * width_mult)));
  };
  SlimSpec s;
  using K = SlimSpec::Kind;
  if (name == "lenet3c1l") {
    s.blocks = {{K::kConvBlock, scaled(32), 5}, {K::kPool, 0, 2},
                {K::kConvBlock, scaled(48), 5}, {K::kPool, 0, 2},
                {K::kConvBlock, scaled(64), 5}, {K::kPool, 0, 2},
                {K::kDenseHead, classes, 0}};
  } else if (name == "lenet5") {
    s.blocks = {{K::kConvBlock, scaled(6), 5},    {K::kPool, 0, 2},
                {K::kConvBlock, scaled(16), 5},   {K::kPool, 0, 2},
                {K::kDenseHidden, scaled(120), 0}, {K::kDenseHidden, scaled(84), 0},
                {K::kDenseHead, classes, 0}};
  } else if (name == "vgg16") {
    const int ch[5] = {64, 128, 256, 512, 512};
    const int depth[5] = {2, 2, 3, 3, 3};
    for (int st = 0; st < 5; ++st) {
      for (int d = 0; d < depth[st]; ++d) {
        s.blocks.push_back({K::kConvBlock, scaled(ch[st]), 3});
      }
      s.blocks.push_back({K::kPool, 0, 2});
    }
    s.blocks.push_back({K::kDenseHead, classes, 0});
  } else {
    throw std::invalid_argument("slim_spec_for_model: unknown model " + name);
  }
  return s;
}

std::int64_t slim_macs_for_fraction(const SlimSpec& spec, double f) {
  std::int64_t total = 0;
  int c = spec.in_c, h = spec.in_h, w = spec.in_w;
  bool first = true;
  for (const auto& blk : spec.blocks) {
    switch (blk.kind) {
      case SlimSpec::Kind::kConvBlock: {
        const int oa = prefix_count(blk.width, f);
        const int ia = first ? c : prefix_count(c, f);
        total += static_cast<std::int64_t>(oa) * ia * blk.kernel * blk.kernel * h * w;
        c = blk.width;
        first = false;
        break;
      }
      case SlimSpec::Kind::kPool:
        h /= blk.kernel;
        w /= blk.kernel;
        break;
      case SlimSpec::Kind::kDenseHidden:
      case SlimSpec::Kind::kDenseHead: {
        const bool head = blk.kind == SlimSpec::Kind::kDenseHead;
        const int oa = head ? blk.width : prefix_count(blk.width, f);
        const int ia = first ? c : prefix_count(c, f);
        // Input features per active producer unit = h*w (spatial collapsed
        // by the implicit Flatten before the first dense; 1 afterwards).
        total += static_cast<std::int64_t>(oa) * ia * h * w;
        c = blk.width;
        h = 1;
        w = 1;
        first = false;
        break;
      }
    }
  }
  return total;
}

std::vector<double> solve_slim_fractions(const SlimSpec& spec,
                                         const std::vector<std::int64_t>& budgets) {
  std::vector<double> fracs;
  fracs.reserve(budgets.size());
  for (const std::int64_t budget : budgets) {
    double lo = 0.0, hi = 1.0;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (slim_macs_for_fraction(spec, mid) <= budget) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    fracs.push_back(lo);
  }
  for (std::size_t i = 1; i < fracs.size(); ++i) {
    fracs[i] = std::max(fracs[i], fracs[i - 1]);
  }
  return fracs;
}

// ---------------------------------------------------------------------------
// SlimmableNet
// ---------------------------------------------------------------------------

SlimmableNet::SlimmableNet(const SlimSpec& spec, std::vector<double> width_fracs,
                           std::uint64_t seed)
    : fracs_(std::move(width_fracs)), rng_(seed) {
  const int n = static_cast<int>(fracs_.size());
  if (n == 0) throw std::invalid_argument("SlimmableNet: no width fractions");

  int c = spec.in_c, h = spec.in_h, w = spec.in_w;
  bool first = true;
  bool flat = false;
  for (const auto& blk : spec.blocks) {
    switch (blk.kind) {
      case SlimSpec::Kind::kConvBlock: {
        Conv2dGeometry g{c, h, w, blk.width, blk.kernel, 1, blk.kernel / 2};
        std::vector<int> in_a(static_cast<std::size_t>(n)),
            out_a(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          in_a[static_cast<std::size_t>(i)] =
              first ? c : prefix_count(c, fracs_[static_cast<std::size_t>(i)]);
          out_a[static_cast<std::size_t>(i)] =
              prefix_count(blk.width, fracs_[static_cast<std::size_t>(i)]);
        }
        layers_.push_back(std::make_unique<SlimConvBlock>(g, in_a, out_a, rng_));
        c = blk.width;
        h = g.out_h();
        w = g.out_w();
        first = false;
        break;
      }
      case SlimSpec::Kind::kPool:
        layers_.push_back(std::make_unique<SlimPool>(blk.kernel));
        h /= blk.kernel;
        w /= blk.kernel;
        break;
      case SlimSpec::Kind::kDenseHidden:
      case SlimSpec::Kind::kDenseHead: {
        int fpu = 1;
        if (!flat) {
          layers_.push_back(std::make_unique<SlimFlatten>());
          fpu = h * w;
          flat = true;
        }
        const bool head = blk.kind == SlimSpec::Kind::kDenseHead;
        std::vector<int> in_a(static_cast<std::size_t>(n)),
            out_a(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          in_a[static_cast<std::size_t>(i)] =
              first ? c : prefix_count(c, fracs_[static_cast<std::size_t>(i)]);
          out_a[static_cast<std::size_t>(i)] =
              head ? blk.width
                   : prefix_count(blk.width, fracs_[static_cast<std::size_t>(i)]);
        }
        layers_.push_back(std::make_unique<SlimDense>(
            blk.width, c * fpu, fpu, /*act=*/!head, head, in_a, out_a, rng_));
        c = blk.width;
        h = 1;
        w = 1;
        first = false;
        break;
      }
    }
  }
}

SlimmableNet::~SlimmableNet() = default;
SlimmableNet::SlimmableNet(SlimmableNet&&) noexcept = default;
SlimmableNet& SlimmableNet::operator=(SlimmableNet&&) noexcept = default;

Tensor SlimmableNet::forward(const Tensor& x, int subnet_id, bool training) {
  assert(subnet_id >= 1 && subnet_id <= num_subnets());
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, subnet_id, training);
  return cur;
}

void SlimmableNet::train(const Dataset& train, int epochs, int batch_size,
                         SgdConfig sgd_cfg) {
  Sgd sgd(sgd_cfg);
  LoaderConfig lc;
  lc.batch_size = batch_size;
  DataLoader loader(train, lc, rng_.fork());
  const int batches = loader.batches_per_epoch() * epochs;
  for (int bi = 0; bi < batches; ++bi) {
    const auto batch = loader.next();
    for (int sub = 1; sub <= num_subnets(); ++sub) {
      std::vector<Param*> params;
      for (auto& l : layers_) l->collect_params(sub, params);
      sgd.zero_grads(params);
      const Tensor logits = forward(batch.x, sub, /*training=*/true);
      LossOutput lo = softmax_cross_entropy(logits, batch.y);
      Tensor g = lo.grad_logits;
      for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g, sub);
      }
      sgd.step(params);
    }
  }
}

double SlimmableNet::accuracy(const Dataset& data, int subnet_id) {
  return dataset_accuracy(data, 64, [&](const Tensor& x, const std::vector<int>& y) {
    const Tensor logits = forward(x, subnet_id, /*training=*/false);
    int correct = 0;
    const int n = logits.dim(0), c = logits.dim(1);
    for (int i = 0; i < n; ++i) {
      const float* row = logits.data() + static_cast<std::int64_t>(i) * c;
      int best = 0;
      for (int j = 1; j < c; ++j) {
        if (row[j] > row[best]) best = j;
      }
      if (best == y[static_cast<std::size_t>(i)]) ++correct;
    }
    return correct;
  });
}

std::int64_t SlimmableNet::macs(int subnet_id) const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l->macs(subnet_id);
  return total;
}

}  // namespace stepping
