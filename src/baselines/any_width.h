// Any-width network baseline (Vu et al., "Any-Width Networks", CVPRW 2020;
// paper reference [13]).
//
// The any-width network is exactly the SteppingNet structural rule applied
// with *regular, manually chosen* nested prefixes: subnet i uses the first
// ceil(f_i * U) units of every layer and a unit may only read producers of
// its own or smaller prefix (triangular weight masks). We therefore reuse
// the core masking engine: assign prefix subnets, skip the construction
// search, and train all subnets jointly. This gives an apples-to-apples
// Fig. 6 comparison — same substrate, only the subnet *structures* differ.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace stepping {

/// MACs the network would execute if every body layer kept only the first
/// ceil(f * units) units (head width fixed). Pruning ignored.
std::int64_t prefix_macs(Network& net, double f);

/// Find per-subnet uniform width fractions f_1 <= ... <= f_N such that
/// prefix_macs(f_i) is as close to `budgets[i]` as possible (binary search;
/// MACs grow ~ f^2 so the map is monotone).
std::vector<double> solve_prefix_fractions(Network& net,
                                           const std::vector<std::int64_t>& budgets);

/// Write prefix subnet assignments into `net`: unit u of every body layer
/// joins the smallest subnet i with u < ceil(f_i * units); units beyond
/// f_N go to the discard pool N+1.
void assign_prefix_subnets(Network& net, const std::vector<double>& fracs);

struct AnyWidthConfig {
  int num_subnets = 5;
  std::vector<double> mac_budget_frac;  ///< relative to reference_macs
  std::int64_t reference_macs = 0;      ///< 0 = full MACs of the given net
  SgdConfig sgd{};
};

/// The baseline's training/eval harness.
class AnyWidthNet {
 public:
  AnyWidthNet(Network net, AnyWidthConfig cfg, std::uint64_t seed = 77);

  /// Solve + apply the prefix structure (call once before training).
  void configure();

  /// Joint training: each mini-batch trains subnets 1..N ascending ([13]).
  void train(const Dataset& train, int epochs, int batch_size = 32);

  double accuracy(const Dataset& data, int subnet_id);
  std::int64_t macs(int subnet_id);
  double mac_fraction(int subnet_id);
  Network& network() { return net_; }
  const std::vector<double>& fractions() const { return fracs_; }

 private:
  Network net_;
  AnyWidthConfig cfg_;
  Sgd sgd_;
  Rng rng_;
  std::vector<double> fracs_;
  std::int64_t reference_macs_ = 0;
};

}  // namespace stepping
