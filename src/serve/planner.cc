#include "serve/planner.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "core/macs.h"

namespace stepping::serve {

std::int64_t LevelCosts::step_macs(int from, int to) const {
  assert(to >= 1 && to <= max_level() && from >= 0 && from < to);
  const std::int64_t body_from =
      from == 0 ? 0 : body[static_cast<std::size_t>(from - 1)];
  return full[static_cast<std::size_t>(to - 1)] - body_from;
}

std::int64_t LevelCosts::stepped_macs_through(int level) const {
  std::int64_t total = 0;
  for (int l = 1; l <= level; ++l) total += step_macs(l - 1, l);
  return total;
}

LevelCosts measure_level_costs(Network& net, int max_level) {
  LevelCosts costs;
  costs.full.reserve(static_cast<std::size_t>(max_level));
  costs.body.reserve(static_cast<std::size_t>(max_level));
  for (int l = 1; l <= max_level; ++l) {
    std::int64_t full = 0, body = 0;
    for (MaskedLayer* m : net.masked_layers()) {
      const std::int64_t macs = m->subnet_macs(l);
      full += macs;
      if (!m->is_head()) body += macs;
    }
    costs.full.push_back(full);
    costs.body.push_back(body);
  }
  return costs;
}

Planner::Planner(LevelCosts costs, DeviceModel dev)
    : costs_(std::move(costs)), dev_(std::move(dev)) {
  if (costs_.max_level() < 1) {
    throw std::invalid_argument("Planner: at least one level required");
  }
  if (costs_.full.size() != costs_.body.size()) {
    throw std::invalid_argument("Planner: full/body table size mismatch");
  }
}

void Planner::set_int8_scale(double s) {
  int8_scale_ = s < 0.05 ? 0.05 : (s > 1.0 ? 1.0 : s);
}

double Planner::int8_full_ms(int level, int batch) const {
  assert(level >= 1 && level <= max_level());
  return int8_scale_ *
         dev_.latency_ms(costs_.full[static_cast<std::size_t>(level - 1)] *
                         batch);
}

double Planner::step_ms(int from, int to, int batch) const {
  return dev_.latency_ms(costs_.step_macs(from, to) * batch);
}

double Planner::predicted_level_ms(int level, int batch,
                                   LadderMode mode) const {
  assert(level >= 1 && level <= max_level());
  switch (mode) {
    case LadderMode::kReuse:
      return step_ms(level - 1, level, batch);
    case LadderMode::kFromScratch:
      return dev_.latency_ms(costs_.full[static_cast<std::size_t>(level - 1)] *
                             batch);
    case LadderMode::kInt8:
      return int8_full_ms(level, batch);
  }
  return 0.0;
}

double Planner::ladder_ms(int level, int batch) const {
  double ms = 0.0;
  for (int l = 1; l <= level; ++l) ms += step_ms(l - 1, l, batch);
  return ms;
}

double Planner::stream_delta_ms(int level, double dirty_frac, int batch) const {
  assert(level >= 1 && level <= max_level());
  const double frac = std::clamp(dirty_frac, 0.0, 1.0);
  const std::int64_t full = costs_.full[static_cast<std::size_t>(level - 1)];
  const std::int64_t body = costs_.body[static_cast<std::size_t>(level - 1)];
  const double macs =
      static_cast<double>(body) * frac + static_cast<double>(full - body);
  return dev_.latency_ms(static_cast<std::int64_t>(macs) * batch);
}

int Planner::target_level(double remaining_ms, int batch) const {
  int target = 0;
  double ms = 0.0;
  for (int l = 1; l <= max_level(); ++l) {
    ms += step_ms(l - 1, l, batch);
    if (ms <= remaining_ms) target = l;
  }
  return target;
}

double Planner::predicted_queue_ms(std::size_t queue_depth, int workers,
                                   int max_batch, LadderMode mode) const {
  if (queue_depth == 0) return 0.0;
  const std::size_t mb = static_cast<std::size_t>(std::max(1, max_batch));
  const std::size_t nw = static_cast<std::size_t>(std::max(1, workers));
  const std::size_t batches_ahead = (queue_depth + mb - 1) / mb;
  const std::size_t per_worker = (batches_ahead + nw - 1) / nw;
  return static_cast<double>(per_worker) *
         predicted_level_ms(1, max_batch, mode);
}

Planner::AdmitDecision Planner::admit_decision(double deadline_rel_ms,
                                               std::size_t queue_depth,
                                               int workers, int max_batch,
                                               LadderMode mode) const {
  AdmitDecision d;
  if (deadline_rel_ms <= 0.0) {  // no deadline: nothing to predict against
    d.target = max_level();
    return d;
  }
  d.predicted_wait_ms =
      predicted_queue_ms(queue_depth, workers, max_batch, mode);
  d.target = target_level(deadline_rel_ms - d.predicted_wait_ms, max_batch);
  d.admit = d.target >= 1;
  d.degraded = d.admit && d.target < max_level();
  return d;
}

bool Planner::step_fits(int from, int to, double remaining_ms,
                        std::int64_t remaining_budget, int batch) const {
  if (step_ms(from, to, batch) > remaining_ms) return false;
  if (remaining_budget >= 0 && costs_.step_macs(from, to) > remaining_budget) {
    return false;
  }
  return true;
}

}  // namespace stepping::serve
