// Trivial length-prefixed binary protocol for the loopback TCP front end.
//
// Every frame is a u32 payload length followed by the payload. Integers and
// floats are encoded via memcpy in host byte order — the protocol is
// loopback-only (client and server share one machine), so no byte swapping
// is performed; the fixed-width layout below is the contract.
//
// Request payload:
//   u8  opcode            0 = infer, 1 = shutdown server, 2 = stats,
//                         3 = stats_prom, 4 = timeline
//   f64 deadline_ms       relative deadline; <= 0 = none        (infer only)
//   i64 mac_budget        per-request MAC budget; 0 = unlimited (infer only)
//   u32 c, h, w           input image shape                     (infer only)
//   f32 data[c*h*w]       input image                           (infer only)
//
// Reply payload (infer):
//   u32 exit_subnet
//   f64 confidence
//   u8  deadline_missed
//   i64 macs
//   f64 first_result_ms   submission -> preliminary result
//   f64 final_ms          submission -> final result
//   u32 num_logits
//   f32 logits[num_logits]
//
// A shutdown request is acknowledged with an empty (zero-length) frame.
//
// A stats request (opcode only, no further fields) is answered with one
// frame whose payload is the raw UTF-8 bytes of the server's metrics
// registry JSON snapshot (serve::Server::metrics_json()). A stats_prom
// request (opcode 3, same opcode-only frame shape) is answered with the
// Prometheus text exposition of the same registry
// (serve::Server::metrics_prometheus()) — scrape-ready without a sidecar.
//
// A timeline request (opcode 4, opcode-only) is answered with the flight
// recorder's postmortem JSON dump (serve::Server::postmortems_json()):
// retained deadline-miss and worst-straggler records, each with its full
// causal timeline and the planner's predicted-vs-actual per-level costs.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace stepping::serve {

enum class Opcode : std::uint8_t {
  kInfer = 0,
  kShutdown = 1,
  kStats = 2,
  kStatsProm = 3,
  kTimeline = 4,
};

/// Frames larger than this are rejected and the connection dropped
/// (defensive bound; a 512x512x64 float image is ~64 MiB).
inline constexpr std::size_t kMaxFramePayload = 256u << 20;

struct WireRequest {
  Opcode opcode = Opcode::kInfer;
  double deadline_ms = 0.0;
  std::int64_t mac_budget = 0;
  std::uint32_t c = 0, h = 0, w = 0;
  std::vector<float> data;
};

struct WireReply {
  std::uint32_t exit_subnet = 0;
  double confidence = 0.0;
  std::uint8_t deadline_missed = 0;
  std::int64_t macs = 0;
  double first_result_ms = 0.0;
  double final_ms = 0.0;
  std::vector<float> logits;
};

std::vector<std::uint8_t> encode_request(const WireRequest& req);
bool decode_request(const std::vector<std::uint8_t>& payload, WireRequest& req);

std::vector<std::uint8_t> encode_reply(const WireReply& reply);
bool decode_reply(const std::vector<std::uint8_t>& payload, WireReply& reply);

/// Write one `u32 length + payload` frame; retries partial sends.
bool write_frame(int fd, const std::vector<std::uint8_t>& payload);

/// Read one frame into `payload`. Returns false on EOF, I/O error, or a
/// length prefix beyond `max_payload`.
bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::size_t max_payload = kMaxFramePayload);

}  // namespace stepping::serve
