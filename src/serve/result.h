// Request / result value types of the anytime serving subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace stepping::serve {

/// One refinement step observed by a request: after the executor finishes
/// subnet `subnet`, every request alive in the micro-batch records the time,
/// its cumulative MACs and its top-1 confidence at that level. The first
/// entry (subnet = smallest level) is the preliminary anytime result; the
/// entry with `final == true` is the one returned in ServedResult::logits.
struct StepUpdate {
  int subnet = 0;
  double at_ms = 0.0;  ///< milliseconds since the request was submitted
  std::int64_t macs = 0;
  double confidence = 0.0;
  bool final = false;
  /// True when this update came from an int8 pass (the preliminary of the
  /// auto precision policy, or any rung of an int8-only ladder — ISSUE 7).
  bool int8 = false;
};

/// A unit of work for serve::Server.
struct Request {
  /// Input image, shape (1, C, H, W) or (C, H, W).
  Tensor input;
  /// Relative deadline in milliseconds from submission; <= 0 means none
  /// (the request may climb to the highest subnet).
  double deadline_ms = 0.0;
  /// Per-request MAC budget; 0 falls back to ServeConfig::default_mac_budget
  /// (where 0 again means unlimited).
  std::int64_t mac_budget = 0;
  /// Stream session id (ISSUE 10). Non-zero marks this input as one frame of
  /// a temporal stream: when the server runs with STEPPING_STREAM=exact, the
  /// frame is diffed against the stream's previous frame and only dirty
  /// tiles (+ receptive-field halos) are recomputed — bitwise identical to a
  /// full pass. 0 (default) serves the request through the ordinary batched
  /// ladder.
  std::uint64_t stream_id = 0;
  /// Optional anytime callback: invoked once per executed level while the
  /// request is alive, including the preliminary smallest-subnet result and
  /// the final one. Called from a worker thread; must be cheap and
  /// thread-safe. May be empty.
  std::function<void(const StepUpdate&)> on_step;
};

/// Final outcome of a served request.
struct ServedResult {
  Tensor logits;            ///< logits of the exit level, shape (1, classes)
  int exit_subnet = 0;      ///< subnet the request exited at (>= 1)
  double confidence = 0.0;  ///< top-1 softmax probability at exit
  std::int64_t macs = 0;    ///< per-image MACs attributed to this request
  /// True when the preliminary (smallest-subnet) result was published after
  /// the request's deadline — the anytime contract was broken.
  bool deadline_missed = false;
  double queue_ms = 0.0;         ///< time spent waiting before execution
  double first_result_ms = 0.0;  ///< submission -> preliminary result
  double final_ms = 0.0;         ///< submission -> final result
  std::vector<StepUpdate> steps; ///< one entry per level this request ran
};

}  // namespace stepping::serve
