// Deadline-aware planning for anytime serving (ISSUE 2).
//
// The planner is the deterministic, clock-free core of the serving
// subsystem: given a model's per-level MAC table and a DeviceModel
// (core/latency.h), it answers the scheduling questions the server asks —
// "which subnet can this request still reach before its deadline?",
// "does the next step-up fit the remaining slack and MAC budget?" — as pure
// functions of the remaining time/budget. Workers feed it wall-clock
// remainders; unit tests feed it synthetic ones (tests/serve_test.cc drives
// every decision with a deterministic fake clock).
#pragma once

#include <cstdint>
#include <vector>

#include "core/latency.h"
#include "nn/network.h"

namespace stepping::serve {

/// Per-level analytic MAC table of a stepping model. Index convention:
/// `full[L-1]` / `body[L-1]` hold subnet L's counts, L in 1..max_level().
///
/// The incremental cost of stepping from level `from` to `to` is
///   body(to) - body(from) + head(to)  ==  full(to) - body(from)
/// (the head is always recomputed; body units added in (from, to] are the
/// only new body work — the paper's exact-reuse property).
struct LevelCosts {
  std::vector<std::int64_t> full;  ///< full from-scratch MACs of subnet L
  std::vector<std::int64_t> body;  ///< body-only (non-head) MACs of subnet L

  int max_level() const { return static_cast<int>(full.size()); }

  /// MACs of one step `from -> to` (per image). `from == 0` means a cold
  /// start, i.e. the full cost of subnet `to`.
  std::int64_t step_macs(int from, int to) const;

  /// Total MACs of stepping 0 -> 1 -> ... -> level (per image). Equals
  /// full(level) by the reuse identity, but computed as the step sum so the
  /// planner and the executor agree term by term.
  std::int64_t stepped_macs_through(int level) const;
};

/// Measure `net`'s LevelCosts analytically (uses core/macs.h).
LevelCosts measure_level_costs(Network& net, int max_level);

/// Pure scheduling decisions over a LevelCosts table and a DeviceModel.
/// Immutable after construction (set_int8_scale runs once during server
/// startup, before workers exist); safe to share across worker threads.
class Planner {
 public:
  Planner(LevelCosts costs, DeviceModel dev);

  int max_level() const { return costs_.max_level(); }
  const LevelCosts& costs() const { return costs_; }
  const DeviceModel& device() const { return dev_; }

  /// Measured wall-clock ratio int8 / fp32 of a full forward (ISSUE 7);
  /// 1.0 until the server measures the host. Clamped to [0.05, 1.0] — the
  /// planner never assumes int8 is SLOWER than fp32 (it falls back to
  /// treating it as equal cost).
  double int8_scale() const { return int8_scale_; }
  void set_int8_scale(double s);

  /// Estimated wall-clock of one from-scratch int8 pass of subnet `level`
  /// (the auto policy's preliminary rung): the fp32 full-forward estimate
  /// scaled by int8_scale(). MAC counts are precision-independent, so only
  /// time scales.
  double int8_full_ms(int level, int batch = 1) const;

  /// Estimated wall-clock of one step `from -> to` on a micro-batch of
  /// `batch` inputs (the batch steps together; MACs scale linearly).
  double step_ms(int from, int to, int batch = 1) const;

  /// Execution mode of one ladder pass, for cost prediction: incremental
  /// reuse (the default fp32 ladder), from-scratch fp32 (the no-reuse
  /// baseline), or from-scratch int8 (ISSUE 7 rungs).
  enum class LadderMode { kReuse, kFromScratch, kInt8 };

  /// Predicted wall-clock of the batched pass that brings the ladder to
  /// `level` under `mode` — exactly the figure the server's planning is
  /// built on. The flight recorder (ISSUE 8) stores this next to the
  /// measured pass time, and the serve_plan_error_ratio histograms track
  /// the actual/predicted ratio per level.
  double predicted_level_ms(int level, int batch, LadderMode mode) const;

  /// Estimated wall-clock of the whole ladder 0 -> 1 -> ... -> level
  /// (each step pays the device's fixed per-pass overhead once).
  double ladder_ms(int level, int batch = 1) const;

  /// Streaming delta pass pricing (ISSUE 10): one frame whose dirty region
  /// covers `dirty_frac` of the spatial plane recomputes roughly that
  /// fraction of the body convs plus the full head, so the estimate is
  ///   body(level) * dirty_frac + (full(level) - body(level))
  /// converted to wall-clock. `dirty_frac` is clamped to [0, 1]; 1 prices a
  /// cold rebuild (== the from-scratch full pass). The server uses this to
  /// decide whether a delta pass beats re-entering the batched ladder.
  double stream_delta_ms(int level, double dirty_frac, int batch = 1) const;

  /// Highest level reachable by stepping 1..L within `remaining_ms`.
  /// Returns 0 when even level 1 does not fit — the server still runs
  /// level 1 (an anytime result is always produced) but counts the request
  /// as a deadline miss candidate. `remaining_ms < 0` is treated as 0;
  /// a request with no deadline should pass +infinity (or call with
  /// remaining_ms = huge) and gets max_level().
  int target_level(double remaining_ms, int batch = 1) const;

  /// True when the step `from -> to` fits both the remaining deadline slack
  /// and the remaining per-request MAC budget. `remaining_budget < 0` means
  /// unlimited; the budget check uses per-image MACs (budgets are
  /// per-request, while the deadline check uses whole-batch latency).
  bool step_fits(int from, int to, double remaining_ms,
                 std::int64_t remaining_budget, int batch = 1) const;

  // -- Predictive admission control (ISSUE 9) ------------------------------

  /// Enqueue-time verdict on a request, given the queue state it would join.
  struct AdmitDecision {
    bool admit = true;      ///< false: predicted certain deadline miss
    bool degraded = false;  ///< admitted, but below the full ladder
    int target = 0;         ///< highest level predicted to fit (0 = none)
    double predicted_wait_ms = 0.0;  ///< queue delay fed into the verdict
  };

  /// Deterministic queue-delay estimate: `queue_depth` requests are ahead,
  /// drained by `workers` workers in micro-batches of up to `max_batch`,
  /// each batch costing at least one level-1 pass (the anytime floor —
  /// every batch answers something before this request's turn can come).
  /// A lower bound by construction, so admission never rejects a request
  /// the serve path could still have satisfied under this latency model.
  double predicted_queue_ms(std::size_t queue_depth, int workers,
                            int max_batch, LadderMode mode) const;

  /// The admission verdict at enqueue: subtract the predicted queue delay
  /// from the relative deadline and plan the reachable target level.
  /// target >= 1 admits (degraded when below max_level()); target == 0
  /// means even the smallest subnet is predicted to finish late — the
  /// request is hopeless and `admit` is false. `deadline_rel_ms <= 0`
  /// (no deadline) always admits at the full ladder. Pure function of its
  /// arguments — tests drive it with synthetic queue depths and clocks.
  AdmitDecision admit_decision(double deadline_rel_ms, std::size_t queue_depth,
                               int workers, int max_batch,
                               LadderMode mode) const;

 private:
  LevelCosts costs_;
  DeviceModel dev_;
  double int8_scale_ = 1.0;
};

}  // namespace stepping::serve
