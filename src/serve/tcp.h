// Loopback TCP front end for serve::Server (ISSUE 2).
//
// One accept loop, one thread per connection; each connection is a serial
// request/reply stream of protocol.h frames (concurrency comes from
// multiple connections — the load generator and the smoke test open
// several). The kShutdown opcode stops the listener; the serve::Server
// itself is owned by the caller, which shuts it down and dumps counters.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"

namespace stepping::serve {

class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()). Throws
  /// std::runtime_error on socket/bind/listen failure.
  TcpServer(Server& server, int port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  int port() const { return port_; }

  /// Blocking accept loop; returns after stop() (or a kShutdown frame),
  /// once every connection thread has been joined.
  void run();

  /// Request the accept loop to exit; safe from any thread.
  void stop();

 private:
  void handle_connection(int fd);

  Server& server_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

/// Minimal blocking client (tests, bench_serve, examples).
class TcpClient {
 public:
  /// Connects to 127.0.0.1:`port`; throws std::runtime_error on failure.
  explicit TcpClient(int port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// One infer round trip. `input` is (C, H, W) or (1, C, H, W).
  bool infer(const Tensor& input, double deadline_ms, std::int64_t mac_budget,
             WireReply& reply);

  /// Send kShutdown and wait for the empty ack frame.
  bool shutdown_server();

  /// Poll the server's live metrics: sends kStats, fills `json_out` with
  /// the registry's JSON snapshot.
  bool stats(std::string& json_out);

  /// Same poll in Prometheus text exposition (kStatsProm): fills
  /// `text_out` with serve::Server::metrics_prometheus().
  bool stats_prometheus(std::string& text_out);

  /// Fetch the flight recorder's postmortem dump (kTimeline): deadline
  /// misses and worst stragglers with their full causal timelines, as
  /// serve::Server::postmortems_json() bytes.
  bool timeline(std::string& json_out);

 private:
  int fd_ = -1;
};

}  // namespace stepping::serve
