// Anytime-inference serving subsystem (ISSUE 2).
//
// The paper motivates SteppingNet with platforms where "a preliminary
// decision should be made early and refined further with more computational
// resources". serve::Server turns that into a multi-request serving layer:
//
//  * submit() admits {input, deadline, MAC budget} jobs into a thread-safe
//    earliest-deadline-first queue (serve/queue.h);
//  * a pool of workers — one Network replica + one IncrementalExecutor each,
//    sized like the kernel thread pool via the STEPPING_SERVE_WORKERS env
//    var — pops micro-batches of up to ServeConfig::max_batch requests;
//  * each micro-batch runs the smallest subnet first in one batched forward
//    pass (all rows share the subnet, so the pass rides the parallel GEMM
//    path), publishes every request's preliminary result, then steps up
//    through the ladder while slack remains; each step reuses all prior
//    work (the paper's exact-reuse property), so refinement costs only the
//    incremental MACs;
//  * a request stops refining when it reaches its planned target level, its
//    confidence gate fires, its MAC budget would be exceeded, or the next
//    step no longer fits its remaining deadline (serve/planner.h decides,
//    deterministically, from the DeviceModel latency table).
//
// Results are bitwise-identical to a direct Network::forward of the exit
// subnet on the same input (property-tested in tests/serve_test.cc): rows of
// a batched pass are computed independently and the incremental executor's
// reuse is exact, so batching and stepping change *when* work happens, never
// the answer.
//
// Thread-safety: Server is internally synchronized; submit()/counters()/
// metrics_json() may be called from any thread. Each worker owns its Network
// clone and IncrementalExecutor exclusively (see core/incremental.h — the
// executor is deliberately not thread-safe).
//
// Telemetry (ISSUE 3): every server owns an obs::Registry of lock-free
// counters, gauges and latency histograms (queue wait, first/final result,
// per-level step time, batch time, exit-level distribution, deadline misses,
// reuse-MACs-saved). Counter updates are ordered so that at ANY concurrent
// snapshot misses <= completed and sum(exits) <= completed, with exact
// equality once the server is quiescent. The legacy CounterSnapshot view is
// assembled from the same registry handles. The serve path is additionally
// instrumented with trace spans (serve.queue_wait / serve.form /
// serve.step.L / serve.publish) and a serve.queue_depth counter track.
//
// Flight recorder (ISSUE 8): every request additionally gets a slot in an
// always-on lock-free ring (obs/flight.h) holding its full causal timeline
// — enqueue, admit, batch-join, per-level step start/end with the planner's
// predicted cost next to the measured one, preliminary publish, halt (with
// the attributed reason), final publish. Deadline misses and worst-N
// stragglers are retained for postmortems (postmortems_json(), the
// kTimeline TCP opcode, `steppingnet serve --postmortem-dump`). A windowed
// SLO tracker (obs/slo.h) and per-level plan-error histograms ride the same
// hooks. All of it is observation-only: served results are bitwise
// identical with the recorder on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/latency.h"
#include "nn/network.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "quant/calibration.h"
#include "quant/policy.h"
#include "serve/planner.h"
#include "serve/queue.h"
#include "serve/result.h"
#include "stream/stream.h"
#include "util/timer.h"

namespace stepping::serve {

/// Predictive admission control (ISSUE 9): what to do at enqueue when the
/// planner — from the queue depth the request would join — predicts the
/// deadline outcome. kOff is a pinned no-op (pre-ISSUE-9 behavior).
enum class AdmitPolicy : int {
  kEnv = -1,     ///< resolve from STEPPING_ADMIT (default kOff)
  kOff = 0,      ///< admit everything (legacy)
  kReject = 1,   ///< refuse hopeless requests (even level 1 predicted late)
  kDegrade = 2,  ///< reject hopeless; cap the rest to the reachable target
};

const char* admit_policy_name(AdmitPolicy p);
/// Parses "off" / "reject" / "degrade" (case-sensitive). Returns false and
/// leaves *out untouched on anything else.
bool parse_admit_policy(const std::string& s, AdmitPolicy* out);

struct ServeConfig {
  /// Worker threads, each with its own model replica. <= 0 resolves from the
  /// STEPPING_SERVE_WORKERS env var, defaulting to 1 (kernels inside a
  /// worker already parallelize across the global thread pool; extra
  /// workers trade per-request kernel parallelism for request throughput).
  int num_workers = 0;
  /// Largest micro-batch a worker pops at once. Same-subnet rows share one
  /// batched forward per step.
  int max_batch = 4;
  /// Highest executable subnet (the construction's num_subnets — required;
  /// it cannot be inferred from assignments, cf. AdaptiveConfig).
  int max_subnet = 0;
  /// Stop refining a request once its top-1 softmax probability reaches
  /// this value; 0 disables the gate.
  double confidence_threshold = 0.0;
  /// Budget applied when Request::mac_budget == 0; 0 = unlimited.
  std::int64_t default_mac_budget = 0;
  /// Deadline applied when Request::deadline_ms <= 0; <= 0 = none.
  double default_deadline_ms = 0.0;
  /// Admission bound; submit() beyond this fails the returned future.
  std::size_t queue_capacity = 1024;
  /// false: disable incremental reuse — every refinement level re-runs the
  /// full subnet from scratch. This is the no-reuse baseline every
  /// early-exit/slimmable-style system pays (bench_serve measures the gap).
  bool reuse = true;
  /// Latency model used for planning (calibrate_device() for the real
  /// host, or a preset/synthetic model in tests).
  DeviceModel device;
  /// Precision policy of the ladder (ISSUE 7). kFp32 (default): the
  /// bitwise-deterministic reference ladder, exactly as before. kInt8:
  /// every rung runs the u8 x i8 providers from scratch (the incremental
  /// executor's exact-reuse invariant is an fp32 property, so int8 rungs
  /// never reuse). kAuto: one cheap int8 pass at the planned target level
  /// publishes a preliminary for every request, then the fp32 ladder
  /// refines as usual — the anytime contract with a faster first answer.
  quant::Precision precision = quant::Precision::kFp32;
  /// Activation calibration for int8 rungs. When null and precision is not
  /// kFp32, the server self-calibrates at startup on deterministic random
  /// inputs (fine for latency work; pass a table calibrated on real data
  /// for accuracy-sensitive serving).
  std::shared_ptr<const quant::CalibrationTable> calibration;
  /// Flight-recorder knobs (ISSUE 8). Defaults resolve from the
  /// STEPPING_FLIGHT_RING / _RETAIN / _STRAGGLERS env vars; set ring = 0 to
  /// disable recording entirely.
  obs::FlightRecorder::Config flight;
  /// SLO tracker (ISSUE 8): deadline-hit-rate objective and the sliding
  /// window it is evaluated over.
  double slo_objective = 0.99;
  double slo_window_sec = 60.0;
  /// Continuous batch re-formation (ISSUE 9). > 0: workers share one
  /// level-indexed run-queue (serve/queue.h) — after every ladder step the
  /// survivors of different micro-batches re-merge into full same-level
  /// batches and freed slots refill with fresh admissions. 0: the legacy
  /// path (each popped batch runs its whole ladder on one worker, halted
  /// rows riding along as dead weight). < 0 resolves from STEPPING_REFORM
  /// ("off"/"0" disables; default on). Performance-only: per-request logits
  /// are bitwise identical in both modes (each batched-GEMM output row is
  /// computed independently in serial order by one thread).
  int reform = -1;
  /// Predictive admission control (ISSUE 9); kEnv resolves from the
  /// STEPPING_ADMIT env var ("off" / "reject" / "degrade", default off).
  AdmitPolicy admit = AdmitPolicy::kEnv;
  /// Streaming inference (ISSUE 10). 1: requests with Request::stream_id !=
  /// 0 run the per-stream delta path — frame diffed against the stream's
  /// cached previous frame, only dirty tiles + conv halos recomputed,
  /// bitwise identical to a full pass. 0: stream ids are ignored. < 0
  /// resolves from STEPPING_STREAM ("exact" enables; default off). Tile size
  /// and stream-cache capacity come from STEPPING_STREAM_TILE /
  /// STEPPING_STREAM_STREAMS. Only offered for the fp32 ladder — int8 rungs
  /// never reuse (same reason the incremental executor is fp32-only).
  int stream = -1;
};

/// Legacy aggregate view, assembled from the server's metrics registry.
/// Each field is a relaxed atomic read; cross-field invariants (misses <=
/// completed, sum(exits) <= completed) hold at any snapshot by update
/// ordering, with equality once the server is idle.
struct CounterSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t batches = 0;        ///< admission micro-batches formed
  std::uint64_t batched_inputs = 0; ///< sum of admission micro-batch sizes
  /// Batched ladder passes actually executed and the live (non-halted) rows
  /// they carried. Under re-formation every pass is re-stacked from live
  /// rows only, so pass_rows / passes — pass_occupancy() — is the GEMM
  /// utilization the re-formation tentpole optimizes.
  std::uint64_t passes = 0;
  std::uint64_t pass_rows = 0;
  /// Admission-control verdicts (all zero while STEPPING_ADMIT=off).
  std::uint64_t admit_accepted = 0;
  std::uint64_t admit_degraded = 0;
  std::uint64_t admit_rejected = 0;
  std::uint64_t queue_depth = 0;      ///< at snapshot time
  std::uint64_t peak_queue_depth = 0; ///< high-water mark at admission
  std::vector<std::uint64_t> step_passes_per_subnet; ///< batched passes at L
  std::vector<std::uint64_t> exits_per_subnet;       ///< requests exiting at L
  std::int64_t total_macs = 0; ///< per-image MACs attributed to requests

  /// Mean micro-batch size; 0 when nothing ran.
  double batch_occupancy() const;
  /// Mean live rows per executed ladder pass; 0 when nothing ran.
  double pass_occupancy() const;
  /// Mean exit level over completed requests; 0 when none.
  double mean_exit_subnet() const;
  /// Multi-line human-readable dump (CLI prints this on shutdown).
  std::string to_string() const;
};

class Server {
 public:
  /// Replicates `model` (wired, typically loaded via core/serialize.h) once
  /// per worker and starts the workers. The model itself is not retained.
  Server(const Network& model, ServeConfig cfg);
  ~Server();  ///< shutdown(): drains the queue, then joins the workers

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit a request. The future resolves with the final ServedResult, or
  /// with std::runtime_error when the queue is full / the server stopped.
  std::future<ServedResult> submit(Request req);

  /// Synchronous convenience wrapper: submit + wait.
  ServedResult serve(Request req);

  CounterSnapshot counters() const;

  /// The server's metrics registry (counters/gauges/histograms). Handles
  /// obtained from it stay valid for the server's lifetime.
  obs::Registry& metrics() const { return registry_; }

  /// JSON snapshot of every metric (the kStats TCP frame's payload).
  /// Refreshes the queue-depth gauge first.
  std::string metrics_json() const;

  /// Like metrics_json(), but histogram stats cover only the observations
  /// since the previous call with the same Window — current-load p50/p95/
  /// p99 for periodic dumpers rather than lifetime aggregates.
  std::string metrics_json_windowed(obs::Registry::Window& w) const;

  /// Prometheus text exposition of the same registry.
  std::string metrics_prometheus() const;

  const Planner& planner() const { return *planner_; }
  const ServeConfig& config() const { return cfg_; }

  /// The per-request flight recorder (ISSUE 8). Always on unless configured
  /// off; observation-only — served results are bitwise identical either way.
  const obs::FlightRecorder& flight() const { return flight_; }

  /// The windowed deadline-SLO tracker.
  const obs::SloTracker& slo() const { return slo_; }

  /// Flight-recorder postmortem dump: retained deadline misses and worst
  /// stragglers with full causal timelines and predicted-vs-actual per-level
  /// costs. The kTimeline TCP frame carries exactly these bytes.
  std::string postmortems_json() const { return flight_.postmortems_json(); }

  /// One-line SLO summary over the current window (CLI shutdown line).
  std::string slo_summary() const { return slo_.summary(now_ms()); }

  /// One-line flight-recorder health summary, e.g.
  ///   flight: ring=1024 records=96 drops=0 event_drops=0 retained=3+8
  std::string flight_summary() const;

  /// Milliseconds since the server started (the clock jobs are stamped
  /// with); exposed so callers can convert ServedResult times.
  double now_ms() const { return clock_.milliseconds(); }

  /// Stop admitting, drain queued requests, join workers. Idempotent.
  void shutdown();

  /// STEPPING_SERVE_WORKERS env var if set (> 0), else 1.
  static int default_workers();

 private:
  void worker_main(std::size_t worker_id);
  void process_batch(Network& net, IncrementalExecutor& ex,
                     std::vector<Job>& jobs, std::size_t worker_id);
  /// Re-formation worker loop (cfg_.reform): pop one same-level batch from
  /// the shared run-queue, step it once, publish the halting rows and push
  /// the survivors back for re-merging.
  void worker_main_reform(std::size_t worker_id);
  void process_level_batch(Network& net, std::vector<Job>& jobs,
                           std::size_t worker_id);
  /// Streaming path (ISSUE 10): serve one stream frame solo through the
  /// per-stream delta executor. Called by both worker loops for jobs with
  /// stream_id != 0 when cfg_.stream is on.
  void process_stream_job(Network& net, Job& job, std::size_t worker_id);
  /// Split a popped batch: stream jobs (when enabled) are served by
  /// process_stream_job and removed from `jobs`; the rest stay for the
  /// batched ladder. Returns the number of stream jobs served.
  std::size_t peel_stream_jobs(Network& net, std::vector<Job>& jobs,
                               std::size_t worker_id);
  /// Ladder execution mode for planner predictions under this config.
  Planner::LadderMode ladder_mode() const;
  /// Waiting depth of whichever queue this config uses.
  std::size_t active_queue_depth() const;
  /// Refresh the exposition-time gauges (queue depth, SLO window, flight
  /// counters) before a registry snapshot.
  void refresh_gauges() const;

  ServeConfig cfg_;
  std::unique_ptr<Planner> planner_;
  /// Effective calibration table (cfg_.calibration or the startup
  /// self-calibration); null iff precision is kFp32. Immutable once workers
  /// start.
  std::shared_ptr<const quant::CalibrationTable> calib_;
  std::vector<Network> replicas_;  ///< one per worker
  RequestQueue queue_;             ///< legacy path (cfg_.reform == 0)
  std::unique_ptr<LevelRunQueue> runq_;  ///< re-formation path (non-null iff on)
  /// Slack threshold of the run-queue's urgency override: about two level-1
  /// pass times — below that, waiting for a fuller batch risks the deadline.
  double urgent_slack_ms_ = 0.0;
  /// Per-image MACs of one reuse step L -> L+1, index L in
  /// [0, max_subnet): precomputed so re-formation passes skip the per-pass
  /// layer walk. Matches IncrementalExecutor::last_step_macs() exactly.
  std::vector<std::int64_t> step_macs_;
  Timer clock_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> next_batch_id_{0};
  std::atomic<bool> stopped_{false};

  /// Streaming inference state (ISSUE 10); cache non-null iff cfg_.stream.
  /// The signature is computed once from the first replica — clone() copies
  /// Param::version verbatim, so every replica agrees and stream state
  /// migrates freely across workers (serve never trains).
  stream::StreamConfig stream_cfg_;
  std::unique_ptr<stream::StreamStateCache> stream_cache_;
  std::vector<std::uint64_t> stream_sig_;

  obs::FlightRecorder flight_;
  obs::SloTracker slo_;
  int isa_tier_int_ = 0;  ///< cached tensor ISA tier, stamped into records

  mutable obs::Registry registry_;
  /// Handles into registry_, resolved once in the constructor so the hot
  /// path never touches the registry map.
  struct Metrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* deadline_misses = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batched_inputs = nullptr;
    obs::Counter* total_macs = nullptr;
    obs::Counter* reuse_macs_saved = nullptr;
    obs::Counter* int8_passes = nullptr;  ///< int8 forwards (prelim or rung)
    obs::Counter* passes = nullptr;       ///< executed ladder passes
    obs::Counter* pass_rows = nullptr;    ///< live rows across those passes
    obs::Counter* admit_accepted = nullptr;
    obs::Counter* admit_degraded = nullptr;
    obs::Counter* admit_rejected = nullptr;
    /// Streaming path (ISSUE 10): frames served, stream-cache hit/miss,
    /// dirty tiles diffed, MACs the delta path saved vs full recompute, and
    /// cold rebuilds (first frame / invalidation / level step-down).
    obs::Counter* stream_frames = nullptr;
    obs::Counter* stream_hits = nullptr;
    obs::Counter* stream_misses = nullptr;
    obs::Counter* stream_dirty_tiles = nullptr;
    obs::Counter* stream_macs_saved = nullptr;
    obs::Counter* stream_cold = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* peak_queue_depth = nullptr;
    /// SLO window gauges, refreshed at exposition time: hit rate in parts
    /// per million and error-budget burn in thousandths (gauges are
    /// integral; 1000 = burning exactly at budget).
    obs::Gauge* slo_hit_rate_ppm = nullptr;
    obs::Gauge* slo_budget_burn_milli = nullptr;
    /// Flight-recorder health, mirrored from the recorder's own atomics at
    /// exposition time.
    obs::Gauge* flight_records = nullptr;
    obs::Gauge* flight_ring_drops = nullptr;
    obs::Gauge* flight_event_drops = nullptr;
    std::vector<obs::Counter*> step_passes;  ///< per subnet level
    std::vector<obs::Counter*> exits;        ///< per subnet level
    obs::Histogram* queue_ms = nullptr;
    obs::Histogram* first_result_ms = nullptr;
    obs::Histogram* final_ms = nullptr;
    obs::Histogram* batch_ms = nullptr;
    std::vector<obs::Histogram*> level_ms;   ///< per subnet level
    /// Planner prediction error per level: measured pass wall-clock divided
    /// by the planner's prediction (1.0 = perfect; > 1 under-predicted).
    std::vector<obs::Histogram*> plan_error;
  } m_;
};

}  // namespace stepping::serve
