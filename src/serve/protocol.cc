#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cstring>

namespace stepping::serve {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
bool get(const std::vector<std::uint8_t>& in, std::size_t& at, T& v) {
  if (at + sizeof(T) > in.size()) return false;
  std::memcpy(&v, in.data() + at, sizeof(T));
  at += sizeof(T);
  return true;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) return false;  // EOF or error
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const WireRequest& req) {
  std::vector<std::uint8_t> out;
  put(out, static_cast<std::uint8_t>(req.opcode));
  if (req.opcode != Opcode::kInfer) return out;
  put(out, req.deadline_ms);
  put(out, req.mac_budget);
  put(out, req.c);
  put(out, req.h);
  put(out, req.w);
  const std::size_t at = out.size();
  out.resize(at + req.data.size() * sizeof(float));
  std::memcpy(out.data() + at, req.data.data(),
              req.data.size() * sizeof(float));
  return out;
}

bool decode_request(const std::vector<std::uint8_t>& payload,
                    WireRequest& req) {
  std::size_t at = 0;
  std::uint8_t opcode = 0;
  if (!get(payload, at, opcode)) return false;
  req.opcode = static_cast<Opcode>(opcode);
  if (req.opcode == Opcode::kShutdown || req.opcode == Opcode::kStats ||
      req.opcode == Opcode::kStatsProm || req.opcode == Opcode::kTimeline) {
    return at == payload.size();
  }
  if (req.opcode != Opcode::kInfer) return false;
  if (!get(payload, at, req.deadline_ms) || !get(payload, at, req.mac_budget) ||
      !get(payload, at, req.c) || !get(payload, at, req.h) ||
      !get(payload, at, req.w)) {
    return false;
  }
  const std::uint64_t numel = static_cast<std::uint64_t>(req.c) * req.h * req.w;
  if (numel == 0 || payload.size() - at != numel * sizeof(float)) return false;
  req.data.resize(static_cast<std::size_t>(numel));
  std::memcpy(req.data.data(), payload.data() + at, numel * sizeof(float));
  return true;
}

std::vector<std::uint8_t> encode_reply(const WireReply& reply) {
  std::vector<std::uint8_t> out;
  put(out, reply.exit_subnet);
  put(out, reply.confidence);
  put(out, reply.deadline_missed);
  put(out, reply.macs);
  put(out, reply.first_result_ms);
  put(out, reply.final_ms);
  put(out, static_cast<std::uint32_t>(reply.logits.size()));
  const std::size_t at = out.size();
  out.resize(at + reply.logits.size() * sizeof(float));
  std::memcpy(out.data() + at, reply.logits.data(),
              reply.logits.size() * sizeof(float));
  return out;
}

bool decode_reply(const std::vector<std::uint8_t>& payload, WireReply& reply) {
  std::size_t at = 0;
  std::uint32_t num_logits = 0;
  if (!get(payload, at, reply.exit_subnet) ||
      !get(payload, at, reply.confidence) ||
      !get(payload, at, reply.deadline_missed) ||
      !get(payload, at, reply.macs) ||
      !get(payload, at, reply.first_result_ms) ||
      !get(payload, at, reply.final_ms) || !get(payload, at, num_logits)) {
    return false;
  }
  if (payload.size() - at != num_logits * sizeof(float)) return false;
  reply.logits.resize(num_logits);
  std::memcpy(reply.logits.data(), payload.data() + at,
              num_logits * sizeof(float));
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t prefix[sizeof(len)];
  std::memcpy(prefix, &len, sizeof(len));
  if (!send_all(fd, prefix, sizeof(prefix))) return false;
  return payload.empty() || send_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::size_t max_payload) {
  std::uint32_t len = 0;
  std::uint8_t prefix[sizeof(len)];
  if (!recv_all(fd, prefix, sizeof(prefix))) return false;
  std::memcpy(&len, prefix, sizeof(len));
  if (len > max_payload) return false;
  payload.resize(len);
  return len == 0 || recv_all(fd, payload.data(), len);
}

}  // namespace stepping::serve
