#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

namespace stepping::serve {

namespace {

int make_listener(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("serve: bind/listen on 127.0.0.1 failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("serve: getsockname failed");
  }
  bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

TcpServer::TcpServer(Server& server, int port) : server_(server) {
  listen_fd_ = make_listener(port, port_);
}

TcpServer::~TcpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpServer::stop() {
  if (stop_.exchange(true)) return;
  // Unblock accept() and any connection blocked in recv().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::run() {
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) break;
      continue;  // transient accept failure
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::handle_connection(int fd) {
  std::vector<std::uint8_t> payload;
  WireRequest req;
  while (!stop_.load() && read_frame(fd, payload)) {
    if (!decode_request(payload, req)) break;  // malformed: drop connection
    if (req.opcode == Opcode::kShutdown) {
      write_frame(fd, {});  // ack before tearing the listener down
      stop();
      break;
    }
    if (req.opcode == Opcode::kStats || req.opcode == Opcode::kStatsProm ||
        req.opcode == Opcode::kTimeline) {
      const std::string text = req.opcode == Opcode::kStats
                                   ? server_.metrics_json()
                               : req.opcode == Opcode::kStatsProm
                                   ? server_.metrics_prometheus()
                                   : server_.postmortems_json();
      if (!write_frame(fd, std::vector<std::uint8_t>(text.begin(),
                                                     text.end()))) {
        break;
      }
      continue;
    }
    Request request;
    request.input =
        Tensor({1, static_cast<int>(req.c), static_cast<int>(req.h),
                static_cast<int>(req.w)},
               std::move(req.data));
    request.deadline_ms = req.deadline_ms;
    request.mac_budget = req.mac_budget;
    WireReply reply;
    try {
      ServedResult res = server_.serve(std::move(request));
      reply.exit_subnet = static_cast<std::uint32_t>(res.exit_subnet);
      reply.confidence = res.confidence;
      reply.deadline_missed = res.deadline_missed ? 1 : 0;
      reply.macs = res.macs;
      reply.first_result_ms = res.first_result_ms;
      reply.final_ms = res.final_ms;
      reply.logits.assign(res.logits.data(),
                          res.logits.data() + res.logits.numel());
    } catch (const std::exception&) {
      // Rejected (bad shape / queue full): reply with exit_subnet == 0.
    }
    if (!write_frame(fd, encode_reply(reply))) break;
  }
  ::close(fd);
}

TcpClient::TcpClient(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("serve: client socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve: connect to 127.0.0.1:" +
                             std::to_string(port) + " failed");
  }
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool TcpClient::infer(const Tensor& input, double deadline_ms,
                      std::int64_t mac_budget, WireReply& reply) {
  WireRequest req;
  req.opcode = Opcode::kInfer;
  req.deadline_ms = deadline_ms;
  req.mac_budget = mac_budget;
  const int off = input.rank() == 4 ? 1 : 0;
  req.c = static_cast<std::uint32_t>(input.dim(off));
  req.h = static_cast<std::uint32_t>(input.dim(off + 1));
  req.w = static_cast<std::uint32_t>(input.dim(off + 2));
  req.data.assign(input.data(), input.data() + input.numel());
  if (!write_frame(fd_, encode_request(req))) return false;
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, payload)) return false;
  return decode_reply(payload, reply);
}

bool TcpClient::shutdown_server() {
  WireRequest req;
  req.opcode = Opcode::kShutdown;
  if (!write_frame(fd_, encode_request(req))) return false;
  std::vector<std::uint8_t> payload;
  return read_frame(fd_, payload) && payload.empty();
}

bool TcpClient::stats(std::string& json_out) {
  WireRequest req;
  req.opcode = Opcode::kStats;
  if (!write_frame(fd_, encode_request(req))) return false;
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, payload) || payload.empty()) return false;
  json_out.assign(payload.begin(), payload.end());
  return true;
}

bool TcpClient::stats_prometheus(std::string& text_out) {
  WireRequest req;
  req.opcode = Opcode::kStatsProm;
  if (!write_frame(fd_, encode_request(req))) return false;
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, payload) || payload.empty()) return false;
  text_out.assign(payload.begin(), payload.end());
  return true;
}

bool TcpClient::timeline(std::string& json_out) {
  WireRequest req;
  req.opcode = Opcode::kTimeline;
  if (!write_frame(fd_, encode_request(req))) return false;
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, payload) || payload.empty()) return false;
  json_out.assign(payload.begin(), payload.end());
  return true;
}

}  // namespace stepping::serve
