#include "serve/queue.h"

#include <limits>

namespace stepping::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

RequestQueue::Key RequestQueue::key_of(const Job& job) {
  // No deadline sorts after every real deadline; ties resolve FIFO by seq.
  const double sort_deadline = job.deadline_abs_ms > 0.0
                                   ? job.deadline_abs_ms
                                   : std::numeric_limits<double>::infinity();
  return {sort_deadline, job.seq};
}

bool RequestQueue::push(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    jobs_.emplace(key_of(job), std::move(job));
  }
  cv_.notify_one();
  return true;
}

bool RequestQueue::pop_batch(int max_batch, std::vector<Job>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return false;  // closed and drained
  while (!jobs_.empty() && static_cast<int>(out.size()) < max_batch) {
    auto it = jobs_.begin();
    out.push_back(std::move(it->second));
    jobs_.erase(it);
  }
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

}  // namespace stepping::serve
