#include "serve/queue.h"

#include <limits>

namespace stepping::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

RequestQueue::Key RequestQueue::key_of(const Job& job) {
  // No deadline sorts after every real deadline; ties resolve FIFO by seq.
  const double sort_deadline = job.deadline_abs_ms > 0.0
                                   ? job.deadline_abs_ms
                                   : std::numeric_limits<double>::infinity();
  return {sort_deadline, job.seq};
}

bool RequestQueue::push(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    jobs_.emplace(key_of(job), std::move(job));
  }
  cv_.notify_one();
  return true;
}

bool RequestQueue::pop_batch(int max_batch, std::vector<Job>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return false;  // closed and drained
  while (!jobs_.empty() && static_cast<int>(out.size()) < max_batch) {
    auto it = jobs_.begin();
    out.push_back(std::move(it->second));
    jobs_.erase(it);
  }
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

// ---------------------------------------------------------------------------
// LevelRunQueue (batch re-formation, ISSUE 9)
// ---------------------------------------------------------------------------

LevelRunQueue::LevelRunQueue(std::size_t capacity, int max_level)
    : buckets_(static_cast<std::size_t>(max_level < 1 ? 1 : max_level)),
      capacity_(capacity) {}

LevelRunQueue::Key LevelRunQueue::key_of(const Job& job) {
  const double sort_deadline = job.deadline_abs_ms > 0.0
                                   ? job.deadline_abs_ms
                                   : std::numeric_limits<double>::infinity();
  return {sort_deadline, job.seq};
}

bool LevelRunQueue::push(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || size_ >= capacity_) return false;
    buckets_[0].emplace(key_of(job), std::move(job));
    ++size_;
  }
  cv_.notify_one();
  return true;
}

void LevelRunQueue::push_survivor(Job&& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto level = static_cast<std::size_t>(job.level);
    // A survivor at the ladder top never re-enters (the worker finalizes
    // it); the bucket index is therefore always in range.
    buckets_[level < buckets_.size() ? level : buckets_.size() - 1].emplace(
        key_of(job), std::move(job));
    ++size_;
    --inflight_;
  }
  // notify_all: the re-entry may both hand work to one waiter and complete
  // the termination condition another waiter blocks on.
  cv_.notify_all();
}

bool LevelRunQueue::pop_batch(int max_batch, double now_ms,
                              double urgent_slack_ms, std::vector<Job>& out) {
  out.clear();
  const std::size_t mb = static_cast<std::size_t>(max_batch < 1 ? 1 : max_batch);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return size_ > 0 || (closed_ && inflight_ == 0); });
  if (size_ == 0) return false;  // closed, drained, and nothing in flight

  // Bucket selection (cf. class comment): fullest first, ties by earliest
  // head key then by higher level; urgency override for heads whose slack
  // has dropped below the caller's threshold.
  std::size_t chosen = buckets_.size();
  std::size_t chosen_fill = 0;
  Key chosen_head{};
  Key urgent_head{};
  std::size_t urgent_bucket = buckets_.size();
  for (std::size_t l = buckets_.size(); l-- > 0;) {
    const auto& bucket = buckets_[l];
    if (bucket.empty()) continue;
    const Key head = bucket.begin()->first;
    if (urgent_bucket == buckets_.size() || head < urgent_head) {
      urgent_head = head;
      urgent_bucket = l;
    }
    const std::size_t fill = bucket.size() < mb ? bucket.size() : mb;
    // The loop walks levels high -> low, so on equal (fill, head) the
    // HIGHER level sticks.
    if (chosen == buckets_.size() || fill > chosen_fill ||
        (fill == chosen_fill && head < chosen_head)) {
      chosen = l;
      chosen_fill = fill;
      chosen_head = head;
    }
  }
  if (urgent_bucket != buckets_.size() && urgent_head.first < 1e300 &&
      urgent_head.first - now_ms < urgent_slack_ms) {
    chosen = urgent_bucket;
  }

  auto& bucket = buckets_[chosen];
  while (!bucket.empty() && out.size() < mb) {
    auto it = bucket.begin();
    out.push_back(std::move(it->second));
    bucket.erase(it);
    --size_;
    ++inflight_;
  }
  return true;
}

void LevelRunQueue::retire(std::size_t n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_ -= n < inflight_ ? n : inflight_;
  }
  cv_.notify_all();
}

void LevelRunQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t LevelRunQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

}  // namespace stepping::serve
