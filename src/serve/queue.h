// Thread-safe earliest-deadline-first request queue with micro-batch pops,
// plus the level-indexed run-queue of the batch re-formation path (ISSUE 9).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/flight.h"
#include "serve/result.h"

namespace stepping::serve {

/// A request admitted into the server, carrying its completion promise and
/// the absolute times the scheduler needs. Times are milliseconds on the
/// server's monotonic clock (Server start = 0) so the queue itself never
/// reads a clock — tests drive it with synthetic values.
///
/// Under batch re-formation (ISSUE 9) a Job is additionally the MIGRATABLE
/// per-request ladder state: after each batched step the survivors go back
/// into the level-indexed run-queue carrying their cached activations, MAC
/// spend and flight handle, so the next pass may re-merge them with
/// survivors of *other* micro-batches (or another worker may pick them up).
struct Job {
  std::uint64_t seq = 0;        ///< admission order, the EDF tie-breaker
  Tensor input;                 ///< (1, C, H, W)
  double submit_ms = 0.0;       ///< admission time
  double deadline_abs_ms = 0.0; ///< absolute deadline; <= 0 means none
  std::int64_t mac_budget = 0;  ///< resolved budget; 0 = unlimited
  std::uint64_t stream_id = 0;  ///< stream session (ISSUE 10); 0 = not a frame
  obs::FlightHandle flight;     ///< flight-recorder slot (null: not recorded)
  std::function<void(const StepUpdate&)> on_step;
  std::promise<ServedResult> promise;

  // -- Migratable ladder state (batch re-formation only) -------------------
  int level = 0;         ///< cached subnet level (0 = not yet executed)
  int target = 0;        ///< planned target level (0 = not yet planned)
  int admit_target = 0;  ///< admission-control degrade cap; 0 = uncapped
  std::int64_t macs = 0; ///< per-image MACs attributed so far
  double confidence = 0.0;  ///< top-1 softmax probability at `level`
  double first_ms = 0.0;    ///< submission -> preliminary result (0 = none)
  double queue_ms = 0.0;    ///< submission -> first pass start
  std::vector<StepUpdate> steps;
  /// Cached per-layer activations of the micro-batch this request last
  /// stepped with (shared by all its rows; row `acts_row` belongs to this
  /// request). Null until the first fp32-reuse pass. A source batch's state
  /// is freed once every row has halted or re-stacked into a later batch.
  std::shared_ptr<std::vector<Tensor>> acts;
  int acts_row = 0;
};

/// Bounded MPMC queue ordered by (deadline, admission order): the request
/// whose deadline expires first is served first; requests without a deadline
/// sort after all deadlined ones, FIFO among themselves. pop_batch() hands a
/// worker up to `max_batch` jobs at once — the micro-batch that is then
/// stepped through the subnet ladder together.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admit a job. Returns false (job untouched) when the queue is at
  /// capacity or closed — the caller owns the rejection path.
  bool push(Job&& job);

  /// Blocks until at least one job is available (or the queue is closed),
  /// then moves up to `max_batch` jobs in EDF order into `out` (cleared
  /// first). Returns false only when closed and drained.
  bool pop_batch(int max_batch, std::vector<Job>& out);

  /// Close the queue: push() fails from now on; pop_batch() drains what is
  /// left, then returns false.
  void close();

  std::size_t depth() const;

 private:
  using Key = std::pair<double, std::uint64_t>;  ///< (deadline sort key, seq)
  static Key key_of(const Job& job);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, Job> jobs_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Level-indexed run-queue of the batch re-formation path (ISSUE 9): bucket
/// L holds requests whose cached ladder state is subnet L, waiting to step
/// to L+1 (bucket 0 = fresh admissions). Each bucket is EDF-ordered like
/// RequestQueue. pop_batch() hands a worker up to `max_batch` SAME-LEVEL
/// jobs — a batched pass shares one subnet, so only same-level rows can ride
/// one GEMM — re-merging survivors of different earlier micro-batches.
///
/// Bucket selection keeps the batched GEMMs full: the fullest bucket wins
/// (capped at max_batch), ties broken by the earliest (deadline, seq) head,
/// then by HIGHER level (finish in-flight work, bounding held activation
/// state). One override protects urgent work from starving behind full
/// buckets: when the globally most-urgent head's remaining slack drops
/// below `urgent_slack_ms`, its bucket is served first regardless of fill.
/// Every input that orders pops (now_ms, urgency threshold) is a caller
/// argument, so tests drive selection with synthetic clocks.
///
/// Termination protocol: pop_batch() marks the popped jobs in-flight; the
/// worker must return every one of them, either re-entering survivors via
/// push_survivor() or retiring finalized ones via retire(). close() stops
/// push() (new admissions) immediately, but survivors are ALWAYS accepted —
/// an admitted request is never dropped — and pop_batch() keeps draining
/// until the queue is empty and nothing is in flight.
class LevelRunQueue {
 public:
  /// `capacity` bounds waiting admissions (like RequestQueue); `max_level`
  /// sizes the bucket array (levels 0 .. max_level-1 can wait).
  LevelRunQueue(std::size_t capacity, int max_level);

  /// Admit a fresh request (level 0). Returns false (job untouched) when at
  /// capacity or closed.
  bool push(Job&& job);

  /// Re-enter a stepping survivor (job.level >= 1). Never refused.
  void push_survivor(Job&& job);

  /// Blocks until work is available, then moves up to `max_batch` jobs of
  /// ONE level into `out` (cleared first) in EDF order. Returns false only
  /// when closed, drained, and nothing is in flight.
  bool pop_batch(int max_batch, double now_ms, double urgent_slack_ms,
                 std::vector<Job>& out);

  /// Account `n` popped jobs as finalized (their promises resolved).
  void retire(std::size_t n);

  void close();

  /// Waiting jobs across all buckets (in-flight jobs excluded).
  std::size_t depth() const;

 private:
  using Key = std::pair<double, std::uint64_t>;
  static Key key_of(const Job& job);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::map<Key, Job>> buckets_;  ///< index = cached level
  std::size_t size_ = 0;      ///< total waiting jobs
  std::size_t inflight_ = 0;  ///< popped, not yet retired/re-entered
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace stepping::serve
