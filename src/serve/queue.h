// Thread-safe earliest-deadline-first request queue with micro-batch pops.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/flight.h"
#include "serve/result.h"

namespace stepping::serve {

/// A request admitted into the server, carrying its completion promise and
/// the absolute times the scheduler needs. Times are milliseconds on the
/// server's monotonic clock (Server start = 0) so the queue itself never
/// reads a clock — tests drive it with synthetic values.
struct Job {
  std::uint64_t seq = 0;        ///< admission order, the EDF tie-breaker
  Tensor input;                 ///< (1, C, H, W)
  double submit_ms = 0.0;       ///< admission time
  double deadline_abs_ms = 0.0; ///< absolute deadline; <= 0 means none
  std::int64_t mac_budget = 0;  ///< resolved budget; 0 = unlimited
  obs::FlightHandle flight;     ///< flight-recorder slot (null: not recorded)
  std::function<void(const StepUpdate&)> on_step;
  std::promise<ServedResult> promise;
};

/// Bounded MPMC queue ordered by (deadline, admission order): the request
/// whose deadline expires first is served first; requests without a deadline
/// sort after all deadlined ones, FIFO among themselves. pop_batch() hands a
/// worker up to `max_batch` jobs at once — the micro-batch that is then
/// stepped through the subnet ladder together.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admit a job. Returns false (job untouched) when the queue is at
  /// capacity or closed — the caller owns the rejection path.
  bool push(Job&& job);

  /// Blocks until at least one job is available (or the queue is closed),
  /// then moves up to `max_batch` jobs in EDF order into `out` (cleared
  /// first). Returns false only when closed and drained.
  bool pop_batch(int max_batch, std::vector<Job>& out);

  /// Close the queue: push() fails from now on; pop_batch() drains what is
  /// left, then returns false.
  void close();

  std::size_t depth() const;

 private:
  using Key = std::pair<double, std::uint64_t>;  ///< (deadline sort key, seq)
  static Key key_of(const Job& job);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, Job> jobs_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace stepping::serve
