#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/build_info.h"
#include "obs/trace.h"
#include "tensor/gemm_isa.h"
#include "tensor/ops.h"
#include "util/env.h"
#include "util/rng.h"

namespace stepping::serve {

namespace {

constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Confidence as an integer for flight-event args (parts per million).
std::int64_t conf_ppm(double top1) {
  return static_cast<std::int64_t>(top1 * 1e6);
}

/// Static span names for the per-level ladder steps (span names must
/// outlive the trace flush, so no on-the-fly strings).
const char* step_span_name(int level) {
  static const char* const kNames[] = {
      "serve.step.1", "serve.step.2", "serve.step.3", "serve.step.4",
      "serve.step.5", "serve.step.6", "serve.step.7", "serve.step.8",
  };
  constexpr int kMax = static_cast<int>(sizeof(kNames) / sizeof(kNames[0]));
  return (level >= 1 && level <= kMax) ? kNames[level - 1] : "serve.step";
}

}  // namespace

const char* admit_policy_name(AdmitPolicy p) {
  switch (p) {
    case AdmitPolicy::kOff:
      return "off";
    case AdmitPolicy::kReject:
      return "reject";
    case AdmitPolicy::kDegrade:
      return "degrade";
    case AdmitPolicy::kEnv:
      break;
  }
  return "env";
}

bool parse_admit_policy(const std::string& s, AdmitPolicy* out) {
  if (s == "off") {
    *out = AdmitPolicy::kOff;
  } else if (s == "reject") {
    *out = AdmitPolicy::kReject;
  } else if (s == "degrade") {
    *out = AdmitPolicy::kDegrade;
  } else {
    return false;
  }
  return true;
}

double CounterSnapshot::batch_occupancy() const {
  return batches != 0 ? static_cast<double>(batched_inputs) /
                            static_cast<double>(batches)
                      : 0.0;
}

double CounterSnapshot::pass_occupancy() const {
  return passes != 0
             ? static_cast<double>(pass_rows) / static_cast<double>(passes)
             : 0.0;
}

double CounterSnapshot::mean_exit_subnet() const {
  std::uint64_t total = 0, weighted = 0;
  for (std::size_t i = 0; i < exits_per_subnet.size(); ++i) {
    total += exits_per_subnet[i];
    weighted += exits_per_subnet[i] * (i + 1);
  }
  return total != 0 ? static_cast<double>(weighted) / static_cast<double>(total)
                    : 0.0;
}

std::string CounterSnapshot::to_string() const {
  std::ostringstream os;
  char buf[64];
  os << "serve counters:\n"
     << "  submitted=" << submitted << " completed=" << completed
     << " rejected=" << rejected << " deadline_misses=" << deadline_misses
     << "\n"
     << "  queue_depth=" << queue_depth
     << " peak_queue_depth=" << peak_queue_depth << "\n";
  std::snprintf(buf, sizeof(buf), "%.2f", batch_occupancy());
  os << "  batches=" << batches << " batched_inputs=" << batched_inputs
     << " occupancy=" << buf << "\n";
  std::snprintf(buf, sizeof(buf), "%.2f", pass_occupancy());
  os << "  passes=" << passes << " pass_rows=" << pass_rows
     << " pass_occupancy=" << buf << "\n"
     << "  admit_accepted=" << admit_accepted
     << " admit_degraded=" << admit_degraded
     << " admit_rejected=" << admit_rejected << "\n";
  os << "  step_passes_per_subnet=";
  for (std::size_t i = 0; i < step_passes_per_subnet.size(); ++i) {
    os << (i ? "," : "") << step_passes_per_subnet[i];
  }
  os << "\n  exits_per_subnet=";
  for (std::size_t i = 0; i < exits_per_subnet.size(); ++i) {
    os << (i ? "," : "") << exits_per_subnet[i];
  }
  std::snprintf(buf, sizeof(buf), "%.2f", mean_exit_subnet());
  os << "\n  mean_exit_subnet=" << buf << " total_macs=" << total_macs << "\n";
  return os.str();
}

int Server::default_workers() {
  const long env = env_or_int("STEPPING_SERVE_WORKERS", 0);
  return env > 0 ? static_cast<int>(env) : 1;
}

Server::Server(const Network& model, ServeConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity),
      flight_(cfg_.flight),
      slo_(obs::SloTracker::Config{cfg_.slo_window_sec, 60,
                                   cfg_.slo_objective}) {
  if (!model.wired()) {
    throw std::invalid_argument("serve::Server: model must be wired");
  }
  if (cfg_.max_subnet < 1) {
    throw std::invalid_argument("serve::Server: max_subnet required (>= 1)");
  }
  cfg_.max_batch = std::max(1, cfg_.max_batch);
  if (cfg_.num_workers <= 0) cfg_.num_workers = default_workers();
  if (cfg_.reform < 0) {
    const std::string v = env_or("STEPPING_REFORM", "on");
    cfg_.reform = (v == "off" || v == "0" || v == "false") ? 0 : 1;
  }
  if (cfg_.admit == AdmitPolicy::kEnv) {
    AdmitPolicy p = AdmitPolicy::kOff;
    parse_admit_policy(env_or("STEPPING_ADMIT", "off"), &p);
    cfg_.admit = p;
  }
  // Streaming inference (ISSUE 10): resolve the env surface once, like
  // reform/admit above. The delta path is an fp32 bitwise property, so int8
  // ladders keep stream ids inert (kAuto still qualifies — its finals are
  // fp32, and stream frames skip the int8 preliminary entirely).
  stream_cfg_ = stream::stream_config_from_env();
  if (cfg_.stream >= 0) stream_cfg_.enabled = cfg_.stream != 0;
  if (cfg_.precision == quant::Precision::kInt8) stream_cfg_.enabled = false;
  cfg_.stream = stream_cfg_.enabled ? 1 : 0;
  if (cfg_.reform != 0) {
    runq_ =
        std::make_unique<LevelRunQueue>(cfg_.queue_capacity, cfg_.max_subnet);
  }

  replicas_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int w = 0; w < cfg_.num_workers; ++w) replicas_.push_back(model.clone());
  planner_ = std::make_unique<Planner>(
      measure_level_costs(replicas_.front(), cfg_.max_subnet), cfg_.device);

  // Warm every replica's packed-weight cache before workers start: one
  // forward per replica packs each masked layer's effective weights (the
  // packed panels are subnet-independent — masking zeroes output rows, not
  // the operand), so the first real request never pays the pack cost.
  {
    SubnetContext warm_ctx;
    warm_ctx.subnet_id = cfg_.max_subnet;
    warm_ctx.num_subnets = cfg_.max_subnet;
    Tensor x0({1, model.input_channels(), model.input_h(), model.input_w()});
    for (Network& r : replicas_) r.forward(x0, warm_ctx);
  }

  // Int8 setup (ISSUE 7): resolve the calibration table, warm the int8
  // panel packs the same way, and measure this host's int8/fp32 speed
  // ratio so the planner prices int8 rungs from data, not assumption.
  if (cfg_.precision != quant::Precision::kFp32) {
    calib_ = cfg_.calibration;
    if (!calib_) {
      // Deterministic self-calibration on standard-normal inputs: both
      // signs covered, so every (layer, level) pair gets a usable range.
      constexpr int kCalibImages = 8;
      Rng rng(0xca11b8a7edULL);
      Tensor xs({kCalibImages, model.input_channels(), model.input_h(),
                 model.input_w()});
      for (std::int64_t i = 0; i < xs.numel(); ++i) {
        xs.data()[i] = static_cast<float>(rng.normal());
      }
      calib_ = calibrate_int8(replicas_.front(), xs, kCalibImages,
                              cfg_.max_subnet);
    }
    SubnetContext i8_ctx;
    i8_ctx.subnet_id = cfg_.max_subnet;
    i8_ctx.num_subnets = cfg_.max_subnet;
    i8_ctx.precision = quant::Precision::kInt8;
    i8_ctx.calibration = calib_.get();
    SubnetContext fp_ctx;
    fp_ctx.subnet_id = cfg_.max_subnet;
    fp_ctx.num_subnets = cfg_.max_subnet;
    Tensor x0({1, model.input_channels(), model.input_h(), model.input_w()});
    for (Network& r : replicas_) r.forward(x0, i8_ctx);  // warm int8 packs
    const auto time_forward = [&](const SubnetContext& ctx) {
      constexpr int kReps = 3;
      Network& r = replicas_.front();
      Timer t;
      for (int i = 0; i < kReps; ++i) r.forward(x0, ctx);
      return t.milliseconds() / kReps;
    };
    const double fp_ms = time_forward(fp_ctx);
    const double i8_ms = time_forward(i8_ctx);
    if (fp_ms > 0.0) planner_->set_int8_scale(i8_ms / fp_ms);
  }

  // Re-formation scheduling constants (ISSUE 9): the per-step MAC table the
  // level-batch path attributes from (identical to the executor's analytic
  // count), and the run-queue's urgency threshold — about two level-1 pass
  // times of slack; below that a request is served before fuller batches.
  step_macs_.reserve(static_cast<std::size_t>(cfg_.max_subnet));
  for (int l = 1; l <= cfg_.max_subnet; ++l) {
    step_macs_.push_back(ladder_step_macs(replicas_.front(), l - 1, l));
  }
  urgent_slack_ms_ =
      2.0 * planner_->predicted_level_ms(1, cfg_.max_batch, ladder_mode());

  if (stream_cfg_.enabled) {
    stream_cache_ =
        std::make_unique<stream::StreamStateCache>(stream_cfg_.capacity);
    stream_sig_ = stream::network_signature(replicas_.front());
  }

  // Resolve every metric handle up front; workers only touch atomics.
  m_.submitted = &registry_.counter("serve_submitted_total");
  m_.rejected = &registry_.counter("serve_rejected_total");
  m_.completed = &registry_.counter("serve_completed_total");
  m_.deadline_misses = &registry_.counter("serve_deadline_misses_total");
  m_.batches = &registry_.counter("serve_batches_total");
  m_.batched_inputs = &registry_.counter("serve_batched_inputs_total");
  m_.total_macs = &registry_.counter("serve_macs_total");
  m_.reuse_macs_saved = &registry_.counter("serve_reuse_macs_saved_total");
  m_.int8_passes = &registry_.counter("serve_int8_passes_total");
  m_.passes = &registry_.counter("serve_passes_total");
  m_.pass_rows = &registry_.counter("serve_pass_rows_total");
  m_.admit_accepted = &registry_.counter("serve_admit_accepted_total");
  m_.admit_degraded = &registry_.counter("serve_admit_degraded_total");
  m_.admit_rejected = &registry_.counter("serve_admit_rejected_total");
  m_.stream_frames = &registry_.counter("serve_stream_frames_total");
  m_.stream_hits = &registry_.counter("serve_stream_cache_hits_total");
  m_.stream_misses = &registry_.counter("serve_stream_cache_misses_total");
  m_.stream_dirty_tiles = &registry_.counter("serve_stream_dirty_tiles_total");
  m_.stream_macs_saved = &registry_.counter("serve_stream_macs_saved_total");
  m_.stream_cold = &registry_.counter("serve_stream_cold_total");
  m_.queue_depth = &registry_.gauge("serve_queue_depth");
  m_.peak_queue_depth = &registry_.gauge("serve_peak_queue_depth");
  m_.slo_hit_rate_ppm = &registry_.gauge("serve_slo_hit_rate_ppm");
  m_.slo_budget_burn_milli = &registry_.gauge("serve_slo_budget_burn_milli");
  m_.flight_records = &registry_.gauge("serve_flight_records");
  m_.flight_ring_drops = &registry_.gauge("serve_flight_ring_drops");
  m_.flight_event_drops = &registry_.gauge("serve_flight_event_drops");
  m_.queue_ms = &registry_.histogram("serve_queue_ms");
  m_.first_result_ms = &registry_.histogram("serve_first_result_ms");
  m_.final_ms = &registry_.histogram("serve_final_ms");
  m_.batch_ms = &registry_.histogram("serve_batch_ms");
  for (int l = 1; l <= cfg_.max_subnet; ++l) {
    m_.step_passes.push_back(&registry_.counter(
        "serve_step_passes_subnet_" + std::to_string(l) + "_total"));
    m_.exits.push_back(&registry_.counter("serve_exits_subnet_" +
                                          std::to_string(l) + "_total"));
    m_.level_ms.push_back(
        &registry_.histogram("serve_level_ms_subnet_" + std::to_string(l)));
    m_.plan_error.push_back(&registry_.histogram(
        "serve_plan_error_ratio_subnet_" + std::to_string(l)));
  }

  // Build / deployment identity (ISSUE 8): the stepping_build_info labeled
  // gauge lets dashboards slice every other metric by version, git sha, ISA
  // tier and precision mode.
  isa_tier_int_ = static_cast<int>(isa_tier());
  obs::register_build_info(registry_, isa_tier_name(isa_tier()),
                           quant::precision_name(cfg_.precision));
  // An empty SLO window reads as a perfect hit rate.
  m_.slo_hit_rate_ppm->set(1000000);

  workers_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int w = 0; w < cfg_.num_workers; ++w) {
    workers_.emplace_back([this, w] {
      const auto id = static_cast<std::size_t>(w);
      cfg_.reform != 0 ? worker_main_reform(id) : worker_main(id);
    });
  }
}

Server::~Server() { shutdown(); }

Planner::LadderMode Server::ladder_mode() const {
  if (cfg_.precision == quant::Precision::kInt8 && calib_ != nullptr) {
    return Planner::LadderMode::kInt8;
  }
  return cfg_.reuse ? Planner::LadderMode::kReuse
                    : Planner::LadderMode::kFromScratch;
}

std::size_t Server::active_queue_depth() const {
  return runq_ ? runq_->depth() : queue_.depth();
}

void Server::shutdown() {
  const bool already = stopped_.exchange(true);
  queue_.close();
  if (runq_) runq_->close();
  if (already) return;
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::future<ServedResult> Server::submit(Request req) {
  Job job;
  std::future<ServedResult> fut = job.promise.get_future();

  Tensor x = std::move(req.input);
  if (x.rank() == 3) x.reshape_inplace({1, x.dim(0), x.dim(1), x.dim(2)});
  const Network& ref = replicas_.front();
  if (x.rank() != 4 || x.dim(0) != 1 || x.dim(1) != ref.input_channels() ||
      x.dim(2) != ref.input_h() || x.dim(3) != ref.input_w()) {
    m_.rejected->inc();
    job.promise.set_exception(std::make_exception_ptr(std::invalid_argument(
        "serve: input must be (1, C, H, W) matching the model")));
    return fut;
  }

  job.input = std::move(x);
  job.seq = next_seq_.fetch_add(1);
  job.submit_ms = now_ms();
  const double deadline =
      req.deadline_ms > 0.0 ? req.deadline_ms : cfg_.default_deadline_ms;
  job.deadline_abs_ms = deadline > 0.0 ? job.submit_ms + deadline : 0.0;
  job.mac_budget =
      req.mac_budget > 0 ? req.mac_budget : cfg_.default_mac_budget;
  job.stream_id = req.stream_id;
  job.on_step = std::move(req.on_step);
  job.flight = flight_.begin(job.seq, job.submit_ms, job.deadline_abs_ms,
                             job.mac_budget);
  flight_.event(job.flight, obs::FlightEventKind::kEnqueue, job.submit_ms);

  m_.submitted->inc();

  // Predictive admission control (ISSUE 9): before the request joins the
  // queue, predict — from the depth it would join at — whether any subnet
  // can still answer inside its deadline. Hopeless requests are refused up
  // front instead of burning GEMM time on a guaranteed miss; under kDegrade
  // the rest are capped to the level the planner predicts reachable.
  if (cfg_.admit != AdmitPolicy::kOff) {
    const Planner::AdmitDecision d = planner_->admit_decision(
        deadline, active_queue_depth(), cfg_.num_workers, cfg_.max_batch,
        ladder_mode());
    const bool degrade =
        cfg_.admit == AdmitPolicy::kDegrade && d.admit && d.degraded;
    flight_.event(job.flight, obs::FlightEventKind::kAdmitDecision,
                  job.submit_ms, !d.admit ? 2 : degrade ? 1 : 0, d.target,
                  static_cast<std::int64_t>(d.predicted_wait_ms * 1000.0));
    if (!d.admit) {
      m_.admit_rejected->inc();
      m_.rejected->inc();
      flight_.event(
          job.flight, obs::FlightEventKind::kHalt, job.submit_ms,
          static_cast<std::int64_t>(obs::HaltReason::kAdmitRejected), 0);
      // missed = true: an admission reject IS a (predicted) deadline miss,
      // so the postmortem buffer retains its timeline — but the server's
      // deadline_misses counter and the SLO window track only requests that
      // actually executed, and stay untouched.
      flight_.finish(job.flight, 0, obs::HaltReason::kAdmitRejected, true,
                     0.0, 0.0, 0.0);
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "serve: admission control rejected request: predicted "
                    "queue wait %.2f ms leaves no reachable subnet before "
                    "the %.2f ms deadline",
                    d.predicted_wait_ms, deadline);
      job.promise.set_exception(
          std::make_exception_ptr(std::runtime_error(msg)));
      return fut;
    }
    if (degrade) {
      job.admit_target = d.target;
      m_.admit_degraded->inc();
    } else {
      m_.admit_accepted->inc();
    }
  }

  const bool was_stopped = stopped_.load();
  const bool pushed =
      !was_stopped &&
      (runq_ ? runq_->push(std::move(job)) : queue_.push(std::move(job)));
  if (!pushed) {
    // push() leaves the job untouched on failure, so the promise is intact.
    m_.rejected->inc();
    const obs::HaltReason why = was_stopped ? obs::HaltReason::kShutdown
                                            : obs::HaltReason::kRejected;
    flight_.event(job.flight, obs::FlightEventKind::kHalt, now_ms(),
                  static_cast<std::int64_t>(why), 0);
    flight_.finish(job.flight, 0, why, false, 0.0, 0.0, 0.0);
    job.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("serve: queue full or server stopped")));
    return fut;
  }
  const auto depth = static_cast<std::int64_t>(active_queue_depth());
  m_.queue_depth->set(depth);
  m_.peak_queue_depth->max_of(depth);
  obs::trace_counter("serve.queue_depth", depth);
  return fut;
}

ServedResult Server::serve(Request req) { return submit(std::move(req)).get(); }

CounterSnapshot Server::counters() const {
  // Read order is the REVERSE of the writer's increment order
  // (process_batch bumps completed first, then misses/exits/batch counters;
  // submit bumps submitted before any completion is possible). Reading the
  // dependent counters first keeps the snapshot invariants —
  // misses <= completed, sum(exits) <= completed, completed <= submitted —
  // intact even when a batch lands between two reads.
  CounterSnapshot snap;
  for (const obs::Counter* c : m_.exits) {
    snap.exits_per_subnet.push_back(c->value());
  }
  for (const obs::Counter* c : m_.step_passes) {
    snap.step_passes_per_subnet.push_back(c->value());
  }
  snap.deadline_misses = m_.deadline_misses->value();
  snap.batches = m_.batches->value();
  snap.batched_inputs = m_.batched_inputs->value();
  // pass_rows before passes (writer bumps passes first), so a concurrent
  // snapshot keeps pass_rows <= passes * max_batch.
  snap.pass_rows = m_.pass_rows->value();
  snap.passes = m_.passes->value();
  snap.admit_degraded = m_.admit_degraded->value();
  snap.admit_rejected = m_.admit_rejected->value();
  snap.admit_accepted = m_.admit_accepted->value();
  snap.completed = m_.completed->value();
  snap.submitted = m_.submitted->value();
  snap.rejected = m_.rejected->value();
  snap.queue_depth = active_queue_depth();
  snap.peak_queue_depth =
      static_cast<std::uint64_t>(m_.peak_queue_depth->value());
  snap.total_macs = static_cast<std::int64_t>(m_.total_macs->value());
  return snap;
}

void Server::refresh_gauges() const {
  m_.queue_depth->set(static_cast<std::int64_t>(active_queue_depth()));
  const obs::SloTracker::WindowStats s = slo_.window(clock_.milliseconds());
  m_.slo_hit_rate_ppm->set(static_cast<std::int64_t>(s.hit_rate * 1e6));
  m_.slo_budget_burn_milli->set(
      static_cast<std::int64_t>(s.budget_burn * 1e3));
  m_.flight_records->set(static_cast<std::int64_t>(flight_.records()));
  m_.flight_ring_drops->set(static_cast<std::int64_t>(flight_.ring_dropped()));
  m_.flight_event_drops->set(
      static_cast<std::int64_t>(flight_.events_dropped()));
}

std::string Server::metrics_json() const {
  refresh_gauges();
  return registry_.to_json();
}

std::string Server::metrics_json_windowed(obs::Registry::Window& w) const {
  refresh_gauges();
  return registry_.to_json_windowed(w);
}

std::string Server::metrics_prometheus() const {
  refresh_gauges();
  return registry_.to_prometheus();
}

std::string Server::flight_summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "flight: ring=%zu records=%llu drops=%llu event_drops=%llu "
                "retained=%zu+%zu",
                flight_.ring_size(),
                static_cast<unsigned long long>(flight_.records()),
                static_cast<unsigned long long>(flight_.ring_dropped()),
                static_cast<unsigned long long>(flight_.events_dropped()),
                flight_.retained_misses().size(),
                flight_.retained_stragglers().size());
  return buf;
}

void Server::worker_main(std::size_t worker_id) {
  obs::trace_thread_name("serve.worker." + std::to_string(worker_id));
  Network& net = replicas_[worker_id];
  IncrementalExecutor ex(net);
  std::vector<Job> batch;
  for (;;) {
    bool got;
    {
      STEPPING_TRACE_SCOPE_CAT("serve", "serve.queue_wait");
      got = queue_.pop_batch(cfg_.max_batch, batch);
    }
    if (!got) break;
    obs::trace_counter("serve.queue_depth",
                       static_cast<std::int64_t>(queue_.depth()));
    peel_stream_jobs(net, batch, worker_id);
    if (!batch.empty()) process_batch(net, ex, batch, worker_id);
  }
}

std::size_t Server::peel_stream_jobs(Network& net, std::vector<Job>& jobs,
                                     std::size_t worker_id) {
  if (!stream_cfg_.enabled) return 0;
  std::size_t served = 0;
  std::size_t keep = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].stream_id != 0) {
      process_stream_job(net, jobs[j], worker_id);
      ++served;
    } else {
      if (keep != j) jobs[keep] = std::move(jobs[j]);
      ++keep;
    }
  }
  jobs.resize(keep);
  return served;
}

void Server::process_stream_job(Network& net, Job& job,
                                std::size_t worker_id) {
  obs::TraceScope frame_span("serve.stream_frame", "serve");
  const double start_ms = now_ms();
  flight_.event(job.flight, obs::FlightEventKind::kAdmit, start_ms,
                static_cast<std::int64_t>(worker_id));

  // Plan the frame's level from the remaining deadline, like a batch-of-one
  // admission; the admission-control degrade cap still applies.
  const double remaining = job.deadline_abs_ms > 0.0
                               ? job.deadline_abs_ms - start_ms
                               : kNoDeadline;
  int target = planner_->target_level(remaining, 1);
  if (job.admit_target > 0) target = std::min(target, job.admit_target);
  target = std::max(1, target);
  flight_.set_batch(job.flight, next_batch_id_.fetch_add(1), 1, target,
                    static_cast<int>(cfg_.precision), isa_tier_int_);

  bool hit = false;
  std::shared_ptr<stream::StreamState> state =
      stream_cache_->acquire(job.stream_id, &hit);
  stream::StreamResult r;
  {
    // Frames of ONE stream serialize here; different streams (and the
    // batched ladder on other workers) proceed concurrently. Each worker's
    // replica is bitwise-identical (clone()), so whichever worker picks up
    // the next frame can reuse this one's state.
    std::lock_guard<std::mutex> lock(state->mu);
    flight_.event(job.flight, obs::FlightEventKind::kStepStart, now_ms(),
                  target, 0, isa_tier_int_);
    r = stream::stream_delta_forward(net, *state, job.input, target,
                                     stream_cfg_, stream_sig_);
  }
  const double now = now_ms();
  frame_span.arg("stream_id", static_cast<std::int64_t>(job.stream_id));
  frame_span.arg("level", target);
  frame_span.arg("dirty_tiles", r.dirty_tiles);
  frame_span.arg("macs", r.macs);

  Tensor probs;
  softmax_rows(r.logits, probs);
  const int classes = r.logits.dim(1);
  double top1 = 0.0;
  for (int k = 0; k < classes; ++k) {
    top1 = std::max(top1, static_cast<double>(probs.at(0, k)));
  }

  const std::int64_t saved = r.full_macs - r.macs;
  flight_.event(job.flight, obs::FlightEventKind::kStepEnd, now, target,
                r.macs, conf_ppm(top1));
  flight_.set_level(job.flight, target,
                    planner_->stream_delta_ms(
                        target, r.cold ? 1.0
                                       : (r.total_tiles > 0
                                              ? static_cast<double>(
                                                    r.dirty_tiles) /
                                                    r.total_tiles
                                              : 0.0)),
                    now - start_ms, r.macs);
  flight_.event(job.flight, obs::FlightEventKind::kStreamFrame, now,
                static_cast<std::int64_t>(job.stream_id), r.dirty_tiles,
                target);
  flight_.event(job.flight, obs::FlightEventKind::kDeltaReuse, now,
                saved > 0 ? saved : 0, r.macs, r.cold ? 0 : 1);

  const double first_ms = now - job.submit_ms;
  const bool missed =
      job.deadline_abs_ms > 0.0 && now > job.deadline_abs_ms;
  const obs::HaltReason why = target >= cfg_.max_subnet
                                  ? obs::HaltReason::kMaxLevel
                                  : obs::HaltReason::kTarget;
  flight_.event(job.flight, obs::FlightEventKind::kHalt, now,
                static_cast<std::int64_t>(why), target);

  StepUpdate update;
  update.subnet = target;
  update.at_ms = first_ms;
  update.macs = r.macs;
  update.confidence = top1;
  update.final = true;
  job.steps.push_back(update);
  if (job.on_step) job.on_step(update);

  // Counters BEFORE the promise, completed first — the same snapshot
  // contract as the batched paths.
  m_.completed->inc();
  if (missed) m_.deadline_misses->inc();
  m_.exits[static_cast<std::size_t>(target - 1)]->inc();
  m_.batches->inc();
  m_.batched_inputs->inc();
  m_.total_macs->inc(static_cast<std::uint64_t>(r.macs));
  m_.stream_frames->inc();
  if (hit) {
    m_.stream_hits->inc();
  } else {
    m_.stream_misses->inc();
  }
  m_.stream_dirty_tiles->inc(static_cast<std::uint64_t>(r.dirty_tiles));
  if (saved > 0) m_.stream_macs_saved->inc(static_cast<std::uint64_t>(saved));
  if (r.cold) m_.stream_cold->inc();
  m_.step_passes[static_cast<std::size_t>(target - 1)]->inc();
  m_.passes->inc();
  m_.pass_rows->inc();
  m_.level_ms[static_cast<std::size_t>(target - 1)]->observe(now - start_ms);

  ServedResult res;
  res.logits = std::move(r.logits);
  res.exit_subnet = target;
  res.confidence = top1;
  res.macs = r.macs;
  res.deadline_missed = missed;
  res.queue_ms = start_ms - job.submit_ms;
  res.first_result_ms = first_ms;
  res.final_ms = first_ms;
  m_.queue_ms->observe(res.queue_ms);
  m_.first_result_ms->observe(res.first_result_ms);
  m_.final_ms->observe(res.final_ms);
  const double publish_ms = now_ms();
  slo_.record(publish_ms, missed);
  flight_.event(job.flight, obs::FlightEventKind::kFinalPublish, publish_ms,
                target, missed ? 1 : 0);
  flight_.finish(job.flight, target, why, missed, res.queue_ms, first_ms,
                 first_ms);
  res.steps = std::move(job.steps);
  job.promise.set_value(std::move(res));
}

void Server::process_batch(Network& net, IncrementalExecutor& ex,
                           std::vector<Job>& jobs, std::size_t worker_id) {
  obs::TraceScope batch_span("serve.batch", "serve");
  const int b = static_cast<int>(jobs.size());
  const int c = net.input_channels(), h = net.input_h(), w = net.input_w();
  const double start_ms = now_ms();

  // Stack the micro-batch: all rows execute the same subnet at every step,
  // so each pass is one batched forward through the parallel GEMM path.
  Tensor x({b, c, h, w});
  {
    STEPPING_TRACE_SCOPE_CAT("serve", "serve.form");
    const std::int64_t img = static_cast<std::int64_t>(c) * h * w;
    for (int j = 0; j < b; ++j) {
      std::memcpy(x.data() + static_cast<std::size_t>(j) * img,
                  jobs[j].input.data(),
                  sizeof(float) * static_cast<std::size_t>(img));
    }
  }

  struct Live {
    bool active = true;
    int target = 1;
    std::int64_t budget = -1;  ///< total allowance; -1 unlimited
    std::int64_t macs = 0;
    int exit_level = 0;
    double confidence = 0.0;
    double first_ms = 0.0, final_ms = 0.0;
    bool missed = false;
    obs::HaltReason halt = obs::HaltReason::kNone;
    Tensor logits;
    std::vector<StepUpdate> steps;
  };
  const std::uint64_t batch_id = next_batch_id_.fetch_add(1);
  std::vector<Live> live(static_cast<std::size_t>(b));
  for (int j = 0; j < b; ++j) {
    Live& lv = live[static_cast<std::size_t>(j)];
    lv.budget = jobs[j].mac_budget > 0 ? jobs[j].mac_budget : -1;
    const double remaining = jobs[j].deadline_abs_ms > 0.0
                                 ? jobs[j].deadline_abs_ms - start_ms
                                 : kNoDeadline;
    // Under load the queue wait has consumed part of the deadline, so the
    // planner naturally steps the target down; even a hopeless deadline
    // still yields the smallest subnet (anytime: always answer something).
    int target = planner_->target_level(remaining, b);
    if (jobs[j].admit_target > 0) target = std::min(target, jobs[j].admit_target);
    lv.target = std::max(1, target);
    flight_.event(jobs[j].flight, obs::FlightEventKind::kAdmit, start_ms,
                  static_cast<std::int64_t>(worker_id));
    flight_.event(jobs[j].flight, obs::FlightEventKind::kBatchJoin, start_ms,
                  static_cast<std::int64_t>(batch_id), b);
    flight_.set_batch(jobs[j].flight, batch_id, b, lv.target,
                      static_cast<int>(cfg_.precision), isa_tier_int_);
  }

  ex.reset();
  Tensor probs;
  int active = b;
  int top_level = 0;
  std::int64_t batch_macs = 0;

  // Int8-only ladder (ISSUE 7): every rung runs from scratch on the int8
  // providers — the incremental executor's exact-reuse invariant is an fp32
  // bitwise property, so int8 never reuses.
  const bool int8_ladder =
      cfg_.precision == quant::Precision::kInt8 && calib_ != nullptr;

  // Auto policy (ISSUE 7): one cheap int8 pass at the highest planned
  // target publishes a preliminary answer for every request, then the fp32
  // ladder below refines (and finalizes) as usual. The int8 pass counts
  // toward MACs and budgets — MAC counts are precision-independent.
  if (cfg_.precision == quant::Precision::kAuto && calib_ != nullptr) {
    int prelim = 1;
    for (const Live& lv : live) prelim = std::max(prelim, lv.target);
    obs::TraceScope prelim_span("serve.int8_prelim", "serve");
    const double prelim_start = now_ms();
    const double prelim_predicted = planner_->int8_full_ms(prelim, b);
    SubnetContext ctx;
    ctx.subnet_id = prelim;
    ctx.num_subnets = cfg_.max_subnet;
    ctx.precision = quant::Precision::kInt8;
    ctx.calibration = calib_.get();
    Tensor y = net.forward(x, ctx);
    prelim_span.arg("batch", b);
    prelim_span.arg("level", prelim);
    m_.int8_passes->inc();
    const std::int64_t prelim_img =
        planner_->costs().full[static_cast<std::size_t>(prelim - 1)];
    batch_macs += prelim_img * b;
    m_.total_macs->inc(static_cast<std::uint64_t>(prelim_img * b));
    const double now = now_ms();
    if (prelim_predicted > 0.0) {
      m_.plan_error[static_cast<std::size_t>(prelim - 1)]->observe(
          (now - prelim_start) / prelim_predicted);
    }
    softmax_rows(y, probs);
    const int classes = y.dim(1);
    for (int j = 0; j < b; ++j) {
      Live& lv = live[static_cast<std::size_t>(j)];
      lv.macs += prelim_img;
      double top1 = 0.0;
      for (int k = 0; k < classes; ++k) {
        top1 = std::max(top1, static_cast<double>(probs.at(j, k)));
      }
      lv.confidence = top1;
      lv.first_ms = now - jobs[j].submit_ms;
      flight_.event(jobs[j].flight, obs::FlightEventKind::kStepStart,
                    prelim_start, prelim, 1, isa_tier_int_);
      flight_.event(jobs[j].flight, obs::FlightEventKind::kStepEnd, now,
                    prelim, prelim_img, conf_ppm(top1));
      flight_.event(jobs[j].flight, obs::FlightEventKind::kPrelimPublish, now,
                    prelim, conf_ppm(top1));
      StepUpdate update;
      update.subnet = prelim;
      update.at_ms = lv.first_ms;
      update.macs = lv.macs;
      update.confidence = top1;
      update.final = false;
      update.int8 = true;
      lv.steps.push_back(update);
      if (jobs[j].on_step) jobs[j].on_step(update);
    }
  }

  for (int level = 1; level <= cfg_.max_subnet && active > 0; ++level) {
    obs::TraceScope step_span(step_span_name(level), "serve");
    const double level_start = now_ms();
    Tensor y;
    std::int64_t step_img = 0;
    if (cfg_.reuse && !int8_ladder) {
      y = ex.run(x, level);
      step_img = ex.last_step_macs();
    } else {
      // No-reuse baseline (and every int8 ladder): each refinement level
      // pays the full subnet.
      SubnetContext ctx;
      ctx.subnet_id = level;
      ctx.num_subnets = cfg_.max_subnet;
      if (int8_ladder) {
        ctx.precision = quant::Precision::kInt8;
        ctx.calibration = calib_.get();
        m_.int8_passes->inc();
      }
      y = net.forward(x, ctx);
      step_img = planner_->costs().full[static_cast<std::size_t>(level - 1)];
    }
    step_span.arg("batch", active);
    step_span.arg("level", level);
    step_span.arg("macs", step_img * active);
    top_level = level;
    batch_macs += step_img * active;
    const double now = now_ms();
    // Planner prediction error (ISSUE 8): the measured batched pass against
    // the exact figure planning was built on, per level and ladder mode.
    const double pass_ms = now - level_start;
    const Planner::LadderMode mode =
        int8_ladder ? Planner::LadderMode::kInt8
        : cfg_.reuse ? Planner::LadderMode::kReuse
                     : Planner::LadderMode::kFromScratch;
    const double predicted_ms = planner_->predicted_level_ms(level, b, mode);
    if (predicted_ms > 0.0) {
      m_.plan_error[static_cast<std::size_t>(level - 1)]->observe(pass_ms /
                                                                  predicted_ms);
    }
    softmax_rows(y, probs);
    m_.step_passes[static_cast<std::size_t>(level - 1)]->inc();
    // Pass occupancy (ISSUE 9): this pass rode `b` GEMM rows but only
    // `active` of them were still live — the waste re-formation removes.
    m_.passes->inc();
    m_.pass_rows->inc(static_cast<std::uint64_t>(active));
    m_.total_macs->inc(static_cast<std::uint64_t>(step_img * active));
    if (cfg_.reuse && !int8_ladder) {
      // MACs a no-reuse baseline would have paid for this pass, minus what
      // incremental execution actually cost.
      const std::int64_t full =
          planner_->costs().full[static_cast<std::size_t>(level - 1)];
      const std::int64_t saved = (full - step_img) * active;
      if (saved > 0) m_.reuse_macs_saved->inc(static_cast<std::uint64_t>(saved));
    }
    m_.level_ms[static_cast<std::size_t>(level - 1)]->observe(now -
                                                              level_start);

    const int classes = y.dim(1);
    for (int j = 0; j < b; ++j) {
      Live& lv = live[static_cast<std::size_t>(j)];
      if (!lv.active) continue;
      lv.macs += step_img;
      double top1 = 0.0;
      for (int k = 0; k < classes; ++k) {
        top1 = std::max(top1, static_cast<double>(probs.at(j, k)));
      }
      lv.confidence = top1;
      flight_.event(jobs[j].flight, obs::FlightEventKind::kStepStart,
                    level_start, level, int8_ladder ? 1 : 0, isa_tier_int_);
      flight_.event(jobs[j].flight, obs::FlightEventKind::kStepEnd, now, level,
                    step_img, conf_ppm(top1));
      flight_.set_level(jobs[j].flight, level, predicted_ms, pass_ms, step_img);
      // An auto-mode int8 preliminary already answered first.
      if (level == 1 && lv.first_ms == 0.0) {
        lv.first_ms = now - jobs[j].submit_ms;
        flight_.event(jobs[j].flight, obs::FlightEventKind::kPrelimPublish,
                      now, level, conf_ppm(top1));
      }

      const double remaining = jobs[j].deadline_abs_ms > 0.0
                                   ? jobs[j].deadline_abs_ms - now
                                   : kNoDeadline;
      // Clamp at 0: a level already past the budget must read as exhausted,
      // not as the "unlimited" (-1) sentinel.
      const std::int64_t rem_budget =
          lv.budget < 0 ? -1 : std::max<std::int64_t>(0, lv.budget - lv.macs);
      // The stop decision, with its reason attributed for the flight record
      // (same predicates as before ISSUE 8, evaluated in the same order).
      bool stop = false;
      obs::HaltReason why = obs::HaltReason::kNone;
      if (level >= cfg_.max_subnet) {
        stop = true;
        why = obs::HaltReason::kMaxLevel;
      } else if (level >= lv.target) {
        stop = true;
        // The planner only plans a target below the ladder top when the
        // deadline slack capped it, so reaching such a target IS the
        // deadline's doing; kTarget covers explicitly-capped plans.
        why = jobs[j].deadline_abs_ms > 0.0 && lv.target < cfg_.max_subnet
                  ? obs::HaltReason::kDeadline
                  : obs::HaltReason::kTarget;
      }
      if (!stop && cfg_.confidence_threshold > 0.0 &&
          top1 >= cfg_.confidence_threshold) {
        stop = true;
        why = obs::HaltReason::kConfidence;
      }
      if (!stop &&
          !planner_->step_fits(level, level + 1, remaining, rem_budget, b)) {
        stop = true;
        // Disambiguate: step_fits rejects for budget or for time.
        why = rem_budget >= 0 &&
                      planner_->costs().step_macs(level, level + 1) > rem_budget
                  ? obs::HaltReason::kBudget
                  : obs::HaltReason::kDeadline;
      }

      StepUpdate update;
      update.subnet = level;
      update.at_ms = now - jobs[j].submit_ms;
      update.macs = lv.macs;
      update.confidence = top1;
      update.final = stop;
      update.int8 = int8_ladder;
      lv.steps.push_back(update);
      if (jobs[j].on_step) jobs[j].on_step(update);

      if (stop) {
        lv.active = false;
        --active;
        lv.exit_level = level;
        lv.halt = why;
        lv.final_ms = now - jobs[j].submit_ms;
        flight_.event(jobs[j].flight, obs::FlightEventKind::kHalt, now,
                      static_cast<std::int64_t>(why), level);
        Tensor row({1, classes});
        std::memcpy(row.data(),
                    y.data() + static_cast<std::size_t>(j) * classes,
                    sizeof(float) * static_cast<std::size_t>(classes));
        lv.logits = std::move(row);
        lv.missed = jobs[j].deadline_abs_ms > 0.0 &&
                    jobs[j].submit_ms + lv.first_ms > jobs[j].deadline_abs_ms;
      }
    }
  }

  batch_span.arg("batch", b);
  batch_span.arg("level", top_level);
  batch_span.arg("macs", batch_macs);

  // Update the counters BEFORE fulfilling any promise: a caller observing
  // its future resolved must also observe its request in the counters.
  // `completed` is bumped first so that any concurrent snapshot sees
  // misses <= completed and sum(exits) <= completed.
  std::uint64_t misses = 0;
  std::vector<std::uint64_t> exits(static_cast<std::size_t>(cfg_.max_subnet),
                                   0);
  for (int j = 0; j < b; ++j) {
    const Live& lv = live[static_cast<std::size_t>(j)];
    if (lv.missed) ++misses;
    ++exits[static_cast<std::size_t>(lv.exit_level - 1)];
  }
  m_.completed->inc(static_cast<std::uint64_t>(b));
  m_.deadline_misses->inc(misses);
  for (std::size_t i = 0; i < exits.size(); ++i) {
    if (exits[i] != 0) m_.exits[i]->inc(exits[i]);
  }
  m_.batches->inc();
  m_.batched_inputs->inc(static_cast<std::uint64_t>(b));
  m_.batch_ms->observe(now_ms() - start_ms);

  STEPPING_TRACE_SCOPE_CAT("serve", "serve.publish");
  const double publish_ms = now_ms();
  for (int j = 0; j < b; ++j) {
    Live& lv = live[static_cast<std::size_t>(j)];
    ServedResult res;
    res.logits = std::move(lv.logits);
    res.exit_subnet = lv.exit_level;
    res.confidence = lv.confidence;
    res.macs = lv.macs;
    res.deadline_missed = lv.missed;
    res.queue_ms = start_ms - jobs[j].submit_ms;
    res.first_result_ms = lv.first_ms;
    res.final_ms = lv.final_ms;
    m_.queue_ms->observe(res.queue_ms);
    m_.first_result_ms->observe(res.first_result_ms);
    m_.final_ms->observe(res.final_ms);
    slo_.record(publish_ms, lv.missed);
    flight_.event(jobs[j].flight, obs::FlightEventKind::kFinalPublish,
                  publish_ms, lv.exit_level, lv.missed ? 1 : 0);
    flight_.finish(jobs[j].flight, lv.exit_level, lv.halt, lv.missed,
                   res.queue_ms, lv.first_ms, lv.final_ms);
    res.steps = std::move(lv.steps);
    jobs[j].promise.set_value(std::move(res));
  }
}

// ---------------------------------------------------------------------------
// Batch re-formation path (ISSUE 9)
// ---------------------------------------------------------------------------

void Server::worker_main_reform(std::size_t worker_id) {
  obs::trace_thread_name("serve.worker." + std::to_string(worker_id));
  Network& net = replicas_[worker_id];
  std::vector<Job> batch;
  for (;;) {
    bool got;
    {
      STEPPING_TRACE_SCOPE_CAT("serve", "serve.queue_wait");
      got = runq_->pop_batch(cfg_.max_batch, now_ms(), urgent_slack_ms_, batch);
    }
    if (!got) break;
    obs::trace_counter("serve.queue_depth",
                       static_cast<std::int64_t>(runq_->depth()));
    // Stream frames ride the same queue but are served solo by the delta
    // path; the run-queue's in-flight accounting still expects them back.
    const std::size_t streamed = peel_stream_jobs(net, batch, worker_id);
    if (streamed != 0) runq_->retire(streamed);
    if (!batch.empty()) process_level_batch(net, batch, worker_id);
  }
}

/// One re-formed ladder pass: every job in `jobs` has cached level `from`
/// (possibly from different earlier micro-batches, possibly fresh) and steps
/// together to `from + 1`. Halting rows are published and retired; survivors
/// re-enter the run-queue carrying the new shared activation state, where
/// the next pop may merge them with survivors of other batches. Per-row
/// results are bitwise identical to the legacy whole-ladder path: batched
/// kernels compute each output row independently in serial order, so neither
/// the batch composition nor the step's host worker can change a row.
void Server::process_level_batch(Network& net, std::vector<Job>& jobs,
                                 std::size_t worker_id) {
  obs::TraceScope batch_span("serve.batch", "serve");
  const int b = static_cast<int>(jobs.size());
  const int from = jobs.front().level;  // pop_batch pops one bucket: all equal
  const int level = from + 1;           // the subnet this pass steps to
  const int c = net.input_channels(), h = net.input_h(), w = net.input_w();
  const double start_ms = now_ms();
  const std::uint64_t batch_id = next_batch_id_.fetch_add(1);

  const bool int8_ladder =
      cfg_.precision == quant::Precision::kInt8 && calib_ != nullptr;
  const bool reuse = cfg_.reuse && !int8_ladder;

  // Stack the live rows. Unlike the legacy path this re-stacks EVERY pass —
  // the batch is re-formed from whatever same-level rows were waiting.
  Tensor x({b, c, h, w});
  {
    STEPPING_TRACE_SCOPE_CAT("serve", "serve.form");
    const std::int64_t img = static_cast<std::int64_t>(c) * h * w;
    for (int j = 0; j < b; ++j) {
      std::memcpy(x.data() + static_cast<std::size_t>(j) * img,
                  jobs[j].input.data(),
                  sizeof(float) * static_cast<std::size_t>(img));
    }
  }

  // Fresh rows (level 0) get admitted and planned; survivors record the
  // rejoin — which re-formed batch picked them up, at what size, stepping
  // where — so postmortem timelines show every migration.
  for (int j = 0; j < b; ++j) {
    Job& job = jobs[j];
    if (from == 0) {
      job.queue_ms = start_ms - job.submit_ms;
      const double remaining = job.deadline_abs_ms > 0.0
                                   ? job.deadline_abs_ms - start_ms
                                   : kNoDeadline;
      int target = planner_->target_level(remaining, b);
      if (job.admit_target > 0) target = std::min(target, job.admit_target);
      job.target = std::max(1, target);
      flight_.event(job.flight, obs::FlightEventKind::kAdmit, start_ms,
                    static_cast<std::int64_t>(worker_id));
      flight_.event(job.flight, obs::FlightEventKind::kBatchJoin, start_ms,
                    static_cast<std::int64_t>(batch_id), b);
      flight_.set_batch(job.flight, batch_id, b, job.target,
                        static_cast<int>(cfg_.precision), isa_tier_int_);
    } else {
      flight_.event(job.flight, obs::FlightEventKind::kBatchRejoin, start_ms,
                    static_cast<std::int64_t>(batch_id), b, level);
    }
  }

  // Admission batches keep their legacy meaning (micro-batches formed at
  // admission); pass counters measure what actually rode the GEMMs. The
  // batched_inputs counter is attributed at COMPLETION below — the snapshot
  // invariant batched_inputs <= completed must hold mid-flight, and every
  // admitted row completes, so the quiescent value is unchanged.
  if (from == 0) m_.batches->inc();
  m_.passes->inc();
  m_.pass_rows->inc(static_cast<std::uint64_t>(b));

  Tensor probs;

  // Auto policy (ISSUE 7): fresh batches get one cheap int8 pass at the
  // highest planned target before the fp32 ladder starts — same contract as
  // the legacy path, scoped to this pass's rows.
  if (from == 0 && cfg_.precision == quant::Precision::kAuto &&
      calib_ != nullptr) {
    int prelim = 1;
    for (const Job& job : jobs) prelim = std::max(prelim, job.target);
    obs::TraceScope prelim_span("serve.int8_prelim", "serve");
    const double prelim_start = now_ms();
    const double prelim_predicted = planner_->int8_full_ms(prelim, b);
    SubnetContext ctx;
    ctx.subnet_id = prelim;
    ctx.num_subnets = cfg_.max_subnet;
    ctx.precision = quant::Precision::kInt8;
    ctx.calibration = calib_.get();
    Tensor y = net.forward(x, ctx);
    prelim_span.arg("batch", b);
    prelim_span.arg("level", prelim);
    m_.int8_passes->inc();
    const std::int64_t prelim_img =
        planner_->costs().full[static_cast<std::size_t>(prelim - 1)];
    m_.total_macs->inc(static_cast<std::uint64_t>(prelim_img * b));
    const double now = now_ms();
    if (prelim_predicted > 0.0) {
      m_.plan_error[static_cast<std::size_t>(prelim - 1)]->observe(
          (now - prelim_start) / prelim_predicted);
    }
    softmax_rows(y, probs);
    const int classes = y.dim(1);
    for (int j = 0; j < b; ++j) {
      Job& job = jobs[j];
      job.macs += prelim_img;
      double top1 = 0.0;
      for (int k = 0; k < classes; ++k) {
        top1 = std::max(top1, static_cast<double>(probs.at(j, k)));
      }
      job.confidence = top1;
      job.first_ms = now - job.submit_ms;
      flight_.event(job.flight, obs::FlightEventKind::kStepStart, prelim_start,
                    prelim, 1, isa_tier_int_);
      flight_.event(job.flight, obs::FlightEventKind::kStepEnd, now, prelim,
                    prelim_img, conf_ppm(top1));
      flight_.event(job.flight, obs::FlightEventKind::kPrelimPublish, now,
                    prelim, conf_ppm(top1));
      StepUpdate update;
      update.subnet = prelim;
      update.at_ms = job.first_ms;
      update.macs = job.macs;
      update.confidence = top1;
      update.final = false;
      update.int8 = true;
      job.steps.push_back(update);
      if (job.on_step) job.on_step(update);
    }
  }

  // The batched step itself. Reuse mode re-stacks the cached per-layer
  // activations of the source batches into fresh batch tensors first — the
  // state migration that lets rows from different earlier batches (and
  // different workers) share this GEMM.
  obs::TraceScope step_span(step_span_name(level), "serve");
  const double level_start = now_ms();
  Tensor y;
  std::int64_t step_img = 0;
  std::shared_ptr<std::vector<Tensor>> acts;
  if (reuse) {
    acts = std::make_shared<std::vector<Tensor>>();
    if (from > 0) {
      STEPPING_TRACE_SCOPE_CAT("serve", "serve.form");
      const std::size_t nlayers = jobs.front().acts->size();
      acts->resize(nlayers);
      for (std::size_t i = 0; i < nlayers; ++i) {
        const Tensor& src0 = (*jobs.front().acts)[i];
        std::vector<int> shape = src0.shape();
        const std::int64_t row = src0.numel() / src0.dim(0);
        shape[0] = b;
        Tensor dst(shape);
        for (int j = 0; j < b; ++j) {
          const Tensor& src = (*jobs[j].acts)[i];
          std::memcpy(
              dst.data() + static_cast<std::size_t>(j) * row,
              src.data() + static_cast<std::size_t>(jobs[j].acts_row) * row,
              sizeof(float) * static_cast<std::size_t>(row));
        }
        (*acts)[i] = std::move(dst);
      }
    }
    y = ladder_step(net, x, *acts, from, level);
    step_img = step_macs_[static_cast<std::size_t>(from)];
  } else {
    // No-reuse baseline and int8 ladders run each level from scratch, so no
    // activation state migrates — only the job's scalar ladder state does.
    SubnetContext ctx;
    ctx.subnet_id = level;
    ctx.num_subnets = cfg_.max_subnet;
    if (int8_ladder) {
      ctx.precision = quant::Precision::kInt8;
      ctx.calibration = calib_.get();
      m_.int8_passes->inc();
    }
    y = net.forward(x, ctx);
    step_img = planner_->costs().full[static_cast<std::size_t>(level - 1)];
  }
  step_span.arg("batch", b);
  step_span.arg("level", level);
  step_span.arg("macs", step_img * b);
  const double now = now_ms();
  const double pass_ms = now - level_start;
  const double predicted_ms =
      planner_->predicted_level_ms(level, b, ladder_mode());
  if (predicted_ms > 0.0) {
    m_.plan_error[static_cast<std::size_t>(level - 1)]->observe(pass_ms /
                                                                predicted_ms);
  }
  softmax_rows(y, probs);
  m_.step_passes[static_cast<std::size_t>(level - 1)]->inc();
  m_.total_macs->inc(static_cast<std::uint64_t>(step_img * b));
  if (reuse) {
    const std::int64_t full =
        planner_->costs().full[static_cast<std::size_t>(level - 1)];
    const std::int64_t saved = (full - step_img) * b;
    if (saved > 0) m_.reuse_macs_saved->inc(static_cast<std::uint64_t>(saved));
  }
  m_.level_ms[static_cast<std::size_t>(level - 1)]->observe(pass_ms);

  // Halt decisions — same predicates, in the same order, as the legacy path.
  struct Done {
    std::size_t j = 0;
    obs::HaltReason halt = obs::HaltReason::kNone;
    bool missed = false;
    double final_ms = 0.0;
    Tensor logits;
  };
  std::vector<Done> done;
  std::vector<std::size_t> survivors;
  const int classes = y.dim(1);
  for (int j = 0; j < b; ++j) {
    Job& job = jobs[j];
    job.macs += step_img;
    double top1 = 0.0;
    for (int k = 0; k < classes; ++k) {
      top1 = std::max(top1, static_cast<double>(probs.at(j, k)));
    }
    job.confidence = top1;
    flight_.event(job.flight, obs::FlightEventKind::kStepStart, level_start,
                  level, int8_ladder ? 1 : 0, isa_tier_int_);
    flight_.event(job.flight, obs::FlightEventKind::kStepEnd, now, level,
                  step_img, conf_ppm(top1));
    flight_.set_level(job.flight, level, predicted_ms, pass_ms, step_img);
    if (level == 1 && job.first_ms == 0.0) {
      job.first_ms = now - job.submit_ms;
      flight_.event(job.flight, obs::FlightEventKind::kPrelimPublish, now,
                    level, conf_ppm(top1));
    }

    const double remaining = job.deadline_abs_ms > 0.0
                                 ? job.deadline_abs_ms - now
                                 : kNoDeadline;
    const std::int64_t budget = job.mac_budget > 0 ? job.mac_budget : -1;
    const std::int64_t rem_budget =
        budget < 0 ? -1 : std::max<std::int64_t>(0, budget - job.macs);
    bool stop = false;
    obs::HaltReason why = obs::HaltReason::kNone;
    if (level >= cfg_.max_subnet) {
      stop = true;
      why = obs::HaltReason::kMaxLevel;
    } else if (level >= job.target) {
      stop = true;
      why = job.deadline_abs_ms > 0.0 && job.target < cfg_.max_subnet
                ? obs::HaltReason::kDeadline
                : obs::HaltReason::kTarget;
    }
    if (!stop && cfg_.confidence_threshold > 0.0 &&
        top1 >= cfg_.confidence_threshold) {
      stop = true;
      why = obs::HaltReason::kConfidence;
    }
    if (!stop &&
        !planner_->step_fits(level, level + 1, remaining, rem_budget, b)) {
      stop = true;
      why = rem_budget >= 0 &&
                    planner_->costs().step_macs(level, level + 1) > rem_budget
                ? obs::HaltReason::kBudget
                : obs::HaltReason::kDeadline;
    }

    StepUpdate update;
    update.subnet = level;
    update.at_ms = now - job.submit_ms;
    update.macs = job.macs;
    update.confidence = top1;
    update.final = stop;
    update.int8 = int8_ladder;
    job.steps.push_back(update);
    if (job.on_step) job.on_step(update);

    if (stop) {
      Done d;
      d.j = static_cast<std::size_t>(j);
      d.halt = why;
      d.final_ms = now - job.submit_ms;
      flight_.event(job.flight, obs::FlightEventKind::kHalt, now,
                    static_cast<std::int64_t>(why), level);
      Tensor row({1, classes});
      std::memcpy(row.data(), y.data() + static_cast<std::size_t>(j) * classes,
                  sizeof(float) * static_cast<std::size_t>(classes));
      d.logits = std::move(row);
      d.missed = job.deadline_abs_ms > 0.0 &&
                 job.submit_ms + job.first_ms > job.deadline_abs_ms;
      done.push_back(std::move(d));
    } else {
      survivors.push_back(static_cast<std::size_t>(j));
    }
  }

  batch_span.arg("batch", b);
  batch_span.arg("level", level);
  batch_span.arg("macs", step_img * b);
  m_.batch_ms->observe(now_ms() - start_ms);

  // Re-enter survivors FIRST: another worker can merge them into its next
  // pass while this one is still publishing. Each survivor carries the new
  // shared state (its row of this pass's activations) — the old source
  // batches' state frees itself once the last row referencing it moves on.
  for (std::size_t idx : survivors) {
    Job& job = jobs[idx];
    job.level = level;
    if (reuse) {
      job.acts = acts;
      job.acts_row = static_cast<int>(idx);
    }
    runq_->push_survivor(std::move(job));
  }

  // Counters BEFORE promises, completed first (same contract as the legacy
  // path): a caller observing its future resolved must also observe its
  // request completed, and misses/exits never exceed completed.
  std::uint64_t misses = 0;
  for (const Done& d : done) {
    if (d.missed) ++misses;
  }
  m_.completed->inc(static_cast<std::uint64_t>(done.size()));
  m_.deadline_misses->inc(misses);
  m_.batched_inputs->inc(static_cast<std::uint64_t>(done.size()));
  if (!done.empty()) {
    m_.exits[static_cast<std::size_t>(level - 1)]->inc(
        static_cast<std::uint64_t>(done.size()));
  }

  STEPPING_TRACE_SCOPE_CAT("serve", "serve.publish");
  const double publish_ms = now_ms();
  for (Done& d : done) {
    Job& job = jobs[d.j];
    ServedResult res;
    res.logits = std::move(d.logits);
    res.exit_subnet = level;
    res.confidence = job.confidence;
    res.macs = job.macs;
    res.deadline_missed = d.missed;
    res.queue_ms = job.queue_ms;
    res.first_result_ms = job.first_ms;
    res.final_ms = d.final_ms;
    m_.queue_ms->observe(res.queue_ms);
    m_.first_result_ms->observe(res.first_result_ms);
    m_.final_ms->observe(res.final_ms);
    slo_.record(publish_ms, d.missed);
    flight_.event(job.flight, obs::FlightEventKind::kFinalPublish, publish_ms,
                  level, d.missed ? 1 : 0);
    flight_.finish(job.flight, level, d.halt, d.missed, res.queue_ms,
                   job.first_ms, d.final_ms);
    res.steps = std::move(job.steps);
    job.promise.set_value(std::move(res));
  }
  runq_->retire(done.size());
}

}  // namespace stepping::serve
