#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/env.h"
#include "util/log.h"

namespace stepping::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

namespace {

/// Sentinel category marking counter samples inside the span-event buffers
/// (value lives in dur_ns). Compared by pointer identity.
const char kCounterCat[] = "__counter__";

struct Event {
  const char* name;
  const char* cat;
  std::int64_t start_ns;
  std::int64_t dur_ns;
  const char* akey[kTraceMaxArgs];
  std::int64_t aval[kTraceMaxArgs];
  int nargs;
};

/// Per-thread event buffer: single writer (the owning thread), published to
/// the flusher through the release store on `count`. Slots are written at
/// most once between resets (fill-and-drop, no wrapping), so the flusher
/// never reads a slot that is being rewritten.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) { slots.resize(capacity); }

  std::vector<Event> slots;
  std::atomic<std::size_t> count{0};
  std::atomic<std::size_t> dropped{0};
  std::uint32_t tid = 0;
  std::string name;  ///< written under Registry::mu only
};

/// Global tracer state. Deliberately leaked so that the process-exit flush
/// and late-exiting threads can never touch a destroyed object.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // never shrunk
  std::string path;
  std::size_t capacity = 0;  ///< for buffers created from now on
  std::chrono::steady_clock::time_point epoch;
  bool exit_flush_registered = false;
  /// Periodic flusher (STEPPING_TRACE_FLUSH_SEC). Managed under its own
  /// mutex so trace_stop() can join WITHOUT holding `mu` — the flusher
  /// takes `mu` inside trace_flush(), so joining under `mu` would deadlock.
  std::mutex flusher_mu;
  std::thread flusher;
  std::atomic<bool> flusher_stop{false};
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::size_t default_capacity() {
  const long env = env_or_int("STEPPING_TRACE_BUF", 0);
  return env > 0 ? static_cast<std::size_t>(env) : (std::size_t{1} << 18);
}

thread_local ThreadBuffer* tls_buffer = nullptr;
thread_local std::string tls_pending_name;  ///< set before first event

ThreadBuffer& local_buffer() {
  if (tls_buffer == nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (r.capacity == 0) r.capacity = default_capacity();
    auto buf = std::make_unique<ThreadBuffer>(r.capacity);
    buf->tid = static_cast<std::uint32_t>(r.buffers.size());
    buf->name = tls_pending_name;
    tls_buffer = buf.get();
    r.buffers.push_back(std::move(buf));
  }
  return *tls_buffer;
}

void append(ThreadBuffer& buf, const Event& e) {
  const std::size_t at = buf.count.load(std::memory_order_relaxed);
  if (at >= buf.slots.size()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.slots[at] = e;
  buf.count.store(at + 1, std::memory_order_release);
}

/// Minimal JSON string escaping (names are library-controlled literals, but
/// thread names may come from anywhere).
void write_escaped(std::FILE* f, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

/// Write every buffer to r.path (caller holds r.mu). `reset` zeroes the
/// buffers afterwards (trace_stop); the periodic flusher passes false so
/// the file is always the complete trace so far.
TraceStats flush_locked(Registry& r, bool reset) {
  TraceStats stats;
  if (r.path.empty()) return stats;

  std::size_t total = 0;
  for (const auto& buf : r.buffers) {
    total += buf->count.load(std::memory_order_acquire);
  }
  if (total == 0) return stats;  // nothing recorded since the last reset

  std::FILE* f = std::fopen(r.path.c_str(), "w");
  if (f == nullptr) {
    LOG_ERROR << "trace: cannot open " << r.path << " for writing";
    return stats;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;
  auto comma = [&] {
    if (!first) std::fputc(',', f);
    first = false;
  };
  for (const auto& buf : r.buffers) {
    if (!buf->name.empty()) {
      comma();
      std::fprintf(f,
                   "\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                   "\"tid\":%u,\"args\":{\"name\":\"",
                   buf->tid);
      write_escaped(f, buf->name.c_str());
      std::fputs("\"}}", f);
    }
    const std::size_t n = buf->count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = buf->slots[i];
      comma();
      if (e.cat == kCounterCat) {
        std::fputs("\n{\"ph\":\"C\",\"name\":\"", f);
        write_escaped(f, e.name);
        std::fprintf(f,
                     "\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                     "\"args\":{\"value\":%lld}}",
                     buf->tid, static_cast<double>(e.start_ns) / 1000.0,
                     static_cast<long long>(e.dur_ns));
      } else {
        std::fputs("\n{\"ph\":\"X\",\"name\":\"", f);
        write_escaped(f, e.name);
        std::fputs("\",\"cat\":\"", f);
        write_escaped(f, e.cat);
        std::fprintf(f, "\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                     buf->tid, static_cast<double>(e.start_ns) / 1000.0,
                     static_cast<double>(e.dur_ns) / 1000.0);
        if (e.nargs > 0) {
          std::fputs(",\"args\":{", f);
          for (int ai = 0; ai < e.nargs; ++ai) {
            if (ai != 0) std::fputc(',', f);
            std::fputc('"', f);
            write_escaped(f, e.akey[ai]);
            std::fprintf(f, "\":%lld", static_cast<long long>(e.aval[ai]));
          }
          std::fputc('}', f);
        }
        std::fputc('}', f);
      }
    }
    stats.events += n;
    stats.dropped += buf->dropped.load(std::memory_order_relaxed);
    if (reset) {
      buf->count.store(0, std::memory_order_relaxed);
      buf->dropped.store(0, std::memory_order_relaxed);
    }
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
  return stats;
}

void flusher_main(double period_sec) {
  Registry& r = registry();
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(period_sec));
  auto next = std::chrono::steady_clock::now() + period;
  // Sleep in short slices so trace_stop() joins promptly.
  while (!r.flusher_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (std::chrono::steady_clock::now() >= next) {
      trace_flush();
      next = std::chrono::steady_clock::now() + period;
    }
  }
}

/// Start the periodic flusher when STEPPING_TRACE_FLUSH_SEC > 0 and none is
/// running. Must NOT be called under r.mu (spawns a thread that takes it).
void maybe_start_flusher() {
  const double period = env_or_double("STEPPING_TRACE_FLUSH_SEC", 0.0);
  if (period <= 0.0) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.flusher_mu);
  if (r.flusher.joinable()) return;
  r.flusher_stop.store(false, std::memory_order_relaxed);
  r.flusher = std::thread(flusher_main, period);
}

/// Stop and join the periodic flusher. Must NOT be called under r.mu.
void stop_flusher() {
  Registry& r = registry();
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(r.flusher_mu);
    r.flusher_stop.store(true, std::memory_order_relaxed);
    t.swap(r.flusher);
  }
  if (t.joinable()) t.join();
}

void exit_flush() { trace_stop(); }

/// STEPPING_TRACE=<path> arms the tracer before main() runs.
struct EnvInit {
  EnvInit() {
    const std::string path = env_or("STEPPING_TRACE", "");
    if (!path.empty()) trace_start(path);
  }
} g_env_init;

}  // namespace

namespace detail {

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

void record_span(const char* name, const char* cat, std::int64_t start_ns,
                 std::int64_t end_ns) {
  Event e{};
  e.name = name;
  e.cat = cat;
  e.start_ns = start_ns;
  e.dur_ns = end_ns - start_ns;
  append(local_buffer(), e);
}

void record_span_args(const char* name, const char* cat, std::int64_t start_ns,
                      std::int64_t end_ns, const char* const* keys,
                      const std::int64_t* vals, int nargs) {
  Event e{};
  e.name = name;
  e.cat = cat;
  e.start_ns = start_ns;
  e.dur_ns = end_ns - start_ns;
  e.nargs = nargs < kTraceMaxArgs ? nargs : kTraceMaxArgs;
  for (int i = 0; i < e.nargs; ++i) {
    e.akey[i] = keys[i];
    e.aval[i] = vals[i];
  }
  append(local_buffer(), e);
}

void record_counter(const char* name, std::int64_t value) {
  Event e{};
  e.name = name;
  e.cat = kCounterCat;
  e.start_ns = trace_now_ns();
  e.dur_ns = value;
  append(local_buffer(), e);
}

}  // namespace detail

void trace_start(const std::string& path, std::size_t buffer_events) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.path = path;
    if (buffer_events > 0) r.capacity = buffer_events;
    if (!detail::g_trace_on.load(std::memory_order_relaxed)) {
      r.epoch = std::chrono::steady_clock::now();
    }
    if (!r.exit_flush_registered) {
      std::atexit(exit_flush);
      r.exit_flush_registered = true;
    }
    detail::g_trace_on.store(true, std::memory_order_relaxed);
  }
  // Outside r.mu: the flusher thread takes r.mu on every period.
  maybe_start_flusher();
}

TraceStats trace_flush() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (!detail::g_trace_on.load(std::memory_order_relaxed)) return {};
  const TraceStats stats = flush_locked(r, /*reset=*/false);
  if (stats.events != 0) {
    LOG_DEBUG << "trace: periodic flush of " << stats.events << " events to "
              << r.path;
  }
  return stats;
}

TraceStats trace_stop() {
  // Join the periodic flusher BEFORE taking r.mu (it takes r.mu to flush).
  stop_flusher();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  const TraceStats stats = flush_locked(r, /*reset=*/true);
  if (stats.events != 0) {
    LOG_INFO << "trace: wrote " << stats.events << " events to " << r.path
             << (stats.dropped != 0
                     ? " (" + std::to_string(stats.dropped) +
                           " dropped; raise STEPPING_TRACE_BUF)"
                     : "");
  }
  return stats;
}

void trace_thread_name(const std::string& name) {
  tls_pending_name = name;
  if (tls_buffer != nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    tls_buffer->name = name;
  }
}

}  // namespace stepping::obs
