#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace stepping::obs {

namespace {

/// Growth factor 2^(1/4): four buckets per octave, ~19% relative
/// resolution, 96 buckets span kFirstBound .. kFirstBound * 2^24 (1 µs to
/// ~16.8 s when measuring milliseconds).
constexpr double kGrowth = 1.189207115002721;  // 2^0.25

struct Bounds {
  double b[Histogram::kNumBuckets];
  Bounds() {
    double v = Histogram::kFirstBound;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      b[i] = v;
      v *= kGrowth;
    }
  }
};

const Bounds& bounds() {
  static const Bounds b;
  return b;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Minimal string escaping shared by the JSON and Prometheus label
/// expositions (both quote with `"` and escape with `\`).
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// `{"k":"v",...}` — the JSON rendering of an info metric's labels.
std::string labels_json(const std::map<std::string, std::string>& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape_label(k) + "\":\"" + escape_label(v) + "\"";
  }
  out += "}";
  return out;
}

/// Shared quantile estimator over an arbitrary bucket-count vector (the
/// cumulative state or a window delta). Linear interpolation inside the
/// containing bucket, like Histogram::quantile always did.
double quantile_from_counts(const std::vector<std::uint64_t>& counts,
                            double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among `total` samples, in [0, total].
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const double c = static_cast<double>(counts[static_cast<std::size_t>(i)]);
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      const double lower = i == 0 ? 0.0 : bounds().b[i - 1];
      const double upper = bounds().b[i];
      const double frac = std::clamp((rank - cum) / c, 0.0, 1.0);
      return lower + (upper - lower) * frac;
    }
    cum += c;
  }
  return bounds().b[Histogram::kNumBuckets - 1];  // all mass in overflow
}

/// Per-bucket delta current - base, saturating at zero (counts are
/// monotone; saturation only matters for racy relaxed reads).
std::vector<std::uint64_t> delta_counts(
    const std::vector<std::uint64_t>& current,
    const std::vector<std::uint64_t>& base) {
  std::vector<std::uint64_t> out = current;
  const std::size_t n = std::min(out.size(), base.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = out[i] >= base[i] ? out[i] - base[i] : 0;
  }
  return out;
}

}  // namespace

double Histogram::bucket_bound(int i) {
  return bounds().b[std::clamp(i, 0, kNumBuckets - 1)];
}

void Histogram::observe(double v) {
  const double* b = bounds().b;
  // First bucket whose upper bound is >= v ("le" semantics); the last
  // bucket absorbs overflow.
  const double* it = std::lower_bound(b, b + kNumBuckets, v);
  const int idx =
      it == b + kNumBuckets ? kNumBuckets - 1 : static_cast<int>(it - b);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(kNumBuckets));
  for (int i = 0; i < kNumBuckets; ++i) {
    out[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  return quantile_from_counts(bucket_counts(), q);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.buckets = bucket_counts();
  s.count = count();
  s.sum = sum();
  return s;
}

std::uint64_t Histogram::count_since(const Snapshot& base) const {
  const std::uint64_t cur = count();
  return cur >= base.count ? cur - base.count : 0;
}

double Histogram::sum_since(const Snapshot& base) const {
  return sum() - base.sum;
}

double Histogram::quantile_since(const Snapshot& base, double q) const {
  return quantile_from_counts(delta_counts(bucket_counts(), base.buckets), q);
}

Registry::Entry& Registry::find_or_create(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("obs::Registry: metric '" + name +
                             "' already registered with a different type");
    }
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
    case Kind::kInfo: break;  // labels live in the Entry itself
  }
  return entries_.emplace(name, std::move(e)).first->second;
}

Counter& Registry::counter(const std::string& name) {
  return *find_or_create(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return *find_or_create(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return *find_or_create(name, Kind::kHistogram).histogram;
}

void Registry::set_info(const std::string& name,
                        const std::map<std::string, std::string>& labels) {
  Entry& e = find_or_create(name, Kind::kInfo);
  // Entry references are stable (std::map nodes), so re-acquiring the mutex
  // to write the labels is safe even if another thread registered metrics in
  // between.
  std::lock_guard<std::mutex> lock(mu_);
  e.labels = labels;
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(e.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const std::vector<std::uint64_t> counts = e.histogram->bucket_counts();
        // Emit cumulative buckets up to the last occupied one, then +Inf —
        // the full 96-bucket grid would be mostly zeros.
        int last = -1;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (counts[static_cast<std::size_t>(i)] != 0) last = i;
        }
        std::uint64_t cum = 0;
        for (int i = 0; i <= last; ++i) {
          cum += counts[static_cast<std::size_t>(i)];
          out += name + "_bucket{le=\"" +
                 fmt_double(Histogram::bucket_bound(i)) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(e.histogram->count()) + "\n";
        out += name + "_sum " + fmt_double(e.histogram->sum()) + "\n";
        out += name + "_count " + std::to_string(e.histogram->count()) + "\n";
        break;
      }
      case Kind::kInfo: {
        // Prometheus info idiom: constant-1 gauge, identity in the labels.
        out += "# TYPE " + name + " gauge\n";
        out += name + "{";
        bool lfirst = true;
        for (const auto& [k, v] : e.labels) {
          if (!lfirst) out += ",";
          lfirst = false;
          out += k + "=\"" + escape_label(v) + "\"";
        }
        out += "} 1\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    switch (e.kind) {
      case Kind::kCounter:
        out += std::to_string(e.counter->value());
        break;
      case Kind::kGauge:
        out += std::to_string(e.gauge->value());
        break;
      case Kind::kHistogram:
        out += "{\"count\":" + std::to_string(e.histogram->count()) +
               ",\"sum\":" + fmt_double(e.histogram->sum()) +
               ",\"p50\":" + fmt_double(e.histogram->quantile(0.50)) +
               ",\"p95\":" + fmt_double(e.histogram->quantile(0.95)) +
               ",\"p99\":" + fmt_double(e.histogram->quantile(0.99)) + "}";
        break;
      case Kind::kInfo:
        out += labels_json(e.labels);
        break;
    }
  }
  out += "}";
  return out;
}

std::string Registry::to_json_windowed(Window& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    switch (e.kind) {
      case Kind::kCounter:
        out += std::to_string(e.counter->value());
        break;
      case Kind::kGauge:
        out += std::to_string(e.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        const Histogram::Snapshot& base = w.base[name];  // default = zero
        out += "{\"count\":" + std::to_string(h.count_since(base)) +
               ",\"sum\":" + fmt_double(h.sum_since(base)) +
               ",\"p50\":" + fmt_double(h.quantile_since(base, 0.50)) +
               ",\"p95\":" + fmt_double(h.quantile_since(base, 0.95)) +
               ",\"p99\":" + fmt_double(h.quantile_since(base, 0.99)) +
               ",\"count_total\":" + std::to_string(h.count()) + "}";
        w.base[name] = h.snapshot();
        break;
      }
      case Kind::kInfo:
        out += labels_json(e.labels);
        break;
    }
  }
  out += "}";
  return out;
}

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: outlives any static user
  return *r;
}

}  // namespace stepping::obs
