// Lock-free metrics registry: counters, gauges, log-scale latency
// histograms, with Prometheus-text and JSON exposition (ISSUE 3).
//
// Hot-path contract: Counter::inc, Gauge::set/add/max_of and
// Histogram::observe touch only std::atomic with relaxed ordering — no
// locks, no allocation. The registry's mutex guards registration (done once
// at setup, handles are stable references) and exposition (reads a
// consistent name set; the values themselves are racy-by-design monotonic
// atomics, which is the standard Prometheus model).
//
// Ownership: Registry instances are independent (serve::Server owns one per
// server so tests can run servers side by side); Registry::global() is the
// process-wide registry for library-level metrics.
//
// Exposition is deterministic: metrics are emitted in lexicographic name
// order with fixed float formatting, so two snapshots of identical values
// produce identical text (the kStats TCP round-trip test relies on this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stepping::obs {

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depth, high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise to `v` if larger (lock-free high-water mark).
  void max_of(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log-scale histogram for positive measurements (latency in
/// ms, but any positive double works). Bucket upper bounds grow by 2^(1/4)
/// (~19% resolution) from kFirstBound; the final bucket catches overflow.
/// Quantiles are estimated from the buckets with linear interpolation
/// inside the containing bucket — accurate to one bucket width.
class Histogram {
 public:
  static constexpr int kNumBuckets = 96;
  static constexpr double kFirstBound = 1e-3;  ///< everything <= 1e-3 (and
                                               ///< all v <= 0) lands here

  /// Upper bound of bucket `i` (the last bucket reports its lower edge
  /// times the growth factor; conceptually it is +inf).
  static double bucket_bound(int i);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Quantile estimate, q in [0, 1]. Returns 0 when empty. quantile(0.5)
  /// is the median; monotone in q.
  double quantile(double q) const;

  /// Relaxed snapshot of per-bucket counts (size kNumBuckets).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Point-in-time copy of the cumulative state, used as the baseline of a
  /// sliding window: the *_since accessors report only on observations made
  /// after the snapshot was taken. A default-constructed Snapshot (empty
  /// buckets) is the zero baseline, so *_since(Snapshot{}) == cumulative.
  struct Snapshot {
    std::vector<std::uint64_t> buckets;  ///< empty or size kNumBuckets
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  std::uint64_t count_since(const Snapshot& base) const;
  double sum_since(const Snapshot& base) const;
  /// Quantile over observations since `base` — current-load latency rather
  /// than a lifetime aggregate that old samples dominate. Returns 0 when
  /// the window is empty.
  double quantile_since(const Snapshot& base, double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric store. Handles returned by counter()/gauge()/histogram()
/// are valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Prometheus "info" idiom: a constant-1 gauge whose labels carry build /
  /// deployment identity (fleet dashboards slice by them). JSON renders the
  /// labels as a nested string object. Calling again with the same name
  /// replaces the labels; registering the name as another kind throws.
  void set_info(const std::string& name,
                const std::map<std::string, std::string>& labels);

  /// Prometheus text exposition format (counters, gauges, cumulative
  /// histogram buckets + _sum/_count).
  std::string to_prometheus() const;

  /// One flat JSON object: scalars for counters/gauges, nested objects
  /// with count/sum/p50/p95/p99 for histograms. Deterministic ordering
  /// and formatting.
  std::string to_json() const;

  /// Per-caller baseline state for to_json_windowed: the histogram
  /// snapshots taken at the previous call. Default-constructed = "since
  /// process start"; keep feeding the same object back to get one-period
  /// deltas. Not thread-safe — each periodic dumper owns its Window.
  struct Window {
    std::map<std::string, Histogram::Snapshot> base;
  };

  /// Like to_json(), but histogram count/sum/p50/p95/p99 cover only the
  /// observations since the previous call with this Window (a trailing
  /// "count_total" field keeps the lifetime count visible). Counters and
  /// gauges are reported cumulatively as usual. Advances `w`.
  std::string to_json_windowed(Window& w) const;

  /// Process-wide registry for library-level metrics.
  static Registry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kInfo };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::map<std::string, std::string> labels;  ///< kInfo only
  };
  Entry& find_or_create(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< ordered => stable exposition
};

}  // namespace stepping::obs
