// Per-request flight recorder (ISSUE 8): an always-on, lock-free ring of
// per-request records, each holding a bounded causal timeline of the
// request's life in the serving subsystem — enqueue, admit, batch-join,
// per-level step start/end, preliminary publish, halt (with reason), final
// publish — stamped with the server's monotonic clock, plus the planner's
// predicted per-level costs next to the measured ones.
//
// Contract (the house observability rules):
//  * Observation-only: the recorder writes its own memory and reads a clock
//    the caller supplies; it never changes scheduling, allocation or
//    numerics of the recorded code. Served results are bitwise identical
//    with the recorder on or off (test-pinned in tests/flight_test.cc).
//  * Lock-free hot path: a record slot is claimed with one fetch_add + one
//    CAS; events are plain stores into the claimed slot (exactly one thread
//    owns a request at any time — the submitter hands it to a worker
//    through the queue mutex, which orders the accesses). No allocation.
//  * Drop, never block: when the ring wraps onto a record that is still
//    open (an in-flight request), recording for the new request is dropped
//    and counted — begin() returns a null handle and every later call with
//    it is a no-op. A full per-record event array likewise drops further
//    events and counts them.
//  * ~ns when off: STEPPING_FLIGHT_RING=0 disables the ring; begin() is
//    then one branch and every event site costs a null-handle check
//    (measured in bench_serve; see EXPERIMENTS.md).
//
// Postmortems: finish() copies deadline misses (most recent
// STEPPING_FLIGHT_RETAIN) and the worst-N completed requests by final
// latency (STEPPING_FLIGHT_STRAGGLERS) into retained buffers under a mutex
// — a rare path, guarded by a relaxed threshold so the common case costs
// one atomic load. postmortems_json() renders them with deterministic
// formatting; the kTimeline TCP opcode and `steppingnet serve
// --postmortem-dump` expose the same bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace stepping::obs {

/// Timeline event kinds, in the order a request's life produces them.
enum class FlightEventKind : int {
  kEnqueue = 0,       ///< admitted into the EDF queue
  kAdmit = 1,         ///< popped by a worker; a0 = worker id
  kBatchJoin = 2,     ///< joined a micro-batch; a0 = batch id, a1 = size
  kStepStart = 3,     ///< ladder pass begins; a0 = level, a1 = int8, a2 = isa
  kStepEnd = 4,       ///< pass done; a0 = level, a1 = MACs, a2 = conf ppm
  kPrelimPublish = 5, ///< first answer out; a0 = level, a1 = conf ppm
  kHalt = 6,          ///< refinement stops; a0 = reason, a1 = level
  kFinalPublish = 7,  ///< promise fulfilled; a0 = exit level, a1 = missed
  /// Predictive admission control (ISSUE 9): the enqueue-time verdict.
  /// a0 = decision (0 accept / 1 degrade / 2 reject), a1 = admitted target
  /// level (0 when rejected), a2 = predicted queue wait in microseconds.
  kAdmitDecision = 8,
  /// Batch re-formation (ISSUE 9): a surviving request re-joined a NEW
  /// micro-batch after a ladder step; a0 = batch id, a1 = batch size,
  /// a2 = subnet level the re-formed batch steps to.
  kBatchRejoin = 9,
  /// Streaming inference (ISSUE 10): the request was served as one frame of
  /// a temporal stream; a0 = stream id, a1 = dirty tiles in this frame's
  /// diff (0 on a cold rebuild or an unchanged frame), a2 = subnet level.
  kStreamFrame = 10,
  /// Streaming inference (ISSUE 10): the delta path's reuse accounting for
  /// one frame; a0 = MACs saved vs a full pass, a1 = MACs executed,
  /// a2 = 1 when previous-frame state was reused (0 = cold rebuild).
  kDeltaReuse = 11,
};

/// Why a request stopped climbing the ladder.
enum class HaltReason : int {
  kNone = 0,
  kTarget = 1,      ///< reached the planned target level (no deadline cap)
  kConfidence = 2,  ///< top-1 probability crossed the gate
  kBudget = 3,      ///< next step would exceed the MAC budget
  kDeadline = 4,    ///< deadline slack capped the ladder
  kMaxLevel = 5,    ///< ran the whole ladder
  kShutdown = 6,    ///< server stopped before execution
  kRejected = 7,    ///< never admitted (bad shape / queue full)
  /// Refused at enqueue by predictive admission control (ISSUE 9): the
  /// planner predicted even the smallest subnet would finish past the
  /// deadline at the current queue depth, so no GEMM was spent on it.
  kAdmitRejected = 8,
};

const char* flight_event_name(FlightEventKind k);
const char* halt_reason_name(HaltReason r);

/// One timeline entry. `t_ms` is the caller's monotonic clock (the serve
/// subsystem stamps milliseconds since Server start).
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kEnqueue;
  double t_ms = 0.0;
  std::int64_t a0 = 0, a1 = 0, a2 = 0;
};

inline constexpr int kFlightMaxEvents = 32;  ///< per-record timeline bound
inline constexpr int kFlightMaxLevels = 8;   ///< per-level cost slots

/// Plain-data body of a record — copied verbatim into the retained
/// postmortem buffers, so everything here must be value-copyable.
struct FlightData {
  std::uint64_t request_id = 0;
  double submit_ms = 0.0;
  double deadline_abs_ms = 0.0;  ///< <= 0: no deadline
  std::int64_t mac_budget = 0;   ///< 0: unlimited
  int planned_target = 0;
  std::uint64_t batch_id = 0;
  int batch_size = 0;
  int precision = 0;  ///< quant::Precision as int
  int isa_tier = 0;   ///< stepping::IsaTier as int
  int exit_level = 0;
  HaltReason halt = HaltReason::kNone;
  bool missed = false;
  double queue_ms = 0.0, first_ms = 0.0, final_ms = 0.0;
  /// Predicted-vs-actual per-level step cost (index = level - 1). Predicted
  /// comes from the planner at batch-join time; actual is the measured
  /// wall-clock of the batched pass; macs are the per-image step MACs.
  int num_levels = 0;
  double predicted_ms[kFlightMaxLevels] = {};
  double actual_ms[kFlightMaxLevels] = {};
  std::int64_t level_macs[kFlightMaxLevels] = {};
  int num_events = 0;
  std::uint32_t events_dropped = 0;
  FlightEvent events[kFlightMaxEvents] = {};
};

/// Opaque record handle; null (default) means "dropped — record nothing".
/// Valid from begin() until finish(); the holder must not use it after.
struct FlightHandle {
  void* slot = nullptr;
  explicit operator bool() const { return slot != nullptr; }
};

class FlightRecorder {
 public:
  struct Config {
    /// Ring capacity in records. < 0 resolves from STEPPING_FLIGHT_RING
    /// (default 1024); 0 disables recording entirely.
    int ring = -1;
    /// Retained deadline-miss postmortems (most recent kept). < 0 resolves
    /// from STEPPING_FLIGHT_RETAIN (default 32).
    int retain_misses = -1;
    /// Retained worst-N completed requests by final latency. < 0 resolves
    /// from STEPPING_FLIGHT_STRAGGLERS (default 8).
    int retain_stragglers = -1;
  };

  FlightRecorder();  ///< default Config (env-resolved knobs)
  explicit FlightRecorder(Config cfg);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return !ring_.empty(); }
  std::size_t ring_size() const { return ring_.size(); }

  /// Claim a record slot. Returns a null handle (and counts the drop) when
  /// the recorder is disabled or the ring slot is still open.
  FlightHandle begin(std::uint64_t request_id, double submit_ms,
                     double deadline_abs_ms, std::int64_t mac_budget);

  /// Append a timeline event; drops (and counts) past kFlightMaxEvents.
  void event(FlightHandle h, FlightEventKind k, double t_ms,
             std::int64_t a0 = 0, std::int64_t a1 = 0, std::int64_t a2 = 0);

  /// Record batch membership + the plan context (once, at batch join).
  void set_batch(FlightHandle h, std::uint64_t batch_id, int batch_size,
                 int planned_target, int precision, int isa_tier);

  /// Record one ladder level's predicted-vs-actual cost. Levels beyond
  /// kFlightMaxLevels are ignored (the JSON stays bounded).
  void set_level(FlightHandle h, int level, double predicted_ms,
                 double actual_ms, std::int64_t macs);

  /// Close the record: fills the outcome, retains it when it is a deadline
  /// miss or a worst-N straggler, and releases the slot for reuse. The
  /// handle is dead afterwards.
  void finish(FlightHandle h, int exit_level, HaltReason halt, bool missed,
              double queue_ms, double first_ms, double final_ms);

  std::uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }
  /// Requests whose recording was dropped at begin() (ring wrapped onto an
  /// open record, or the recorder is enabled-but-contended — never counts
  /// while disabled).
  std::uint64_t ring_dropped() const {
    return ring_dropped_.load(std::memory_order_relaxed);
  }
  /// Timeline events dropped to full per-record arrays.
  std::uint64_t events_dropped() const {
    return events_dropped_.load(std::memory_order_relaxed);
  }

  /// Deterministically formatted JSON dump of the retained postmortems
  /// (misses oldest-first, then stragglers worst-first) plus the recorder
  /// counters. The kTimeline TCP frame carries exactly these bytes.
  std::string postmortems_json() const;

  /// Copies of the retained buffers (tests / tools).
  std::vector<FlightData> retained_misses() const;
  std::vector<FlightData> retained_stragglers() const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> state{0};  ///< kFree / kOpen / kDone
    FlightData d;
  };
  static constexpr std::uint32_t kFree = 0, kOpen = 1, kDone = 2;

  void retain(const FlightData& d);

  std::vector<Slot> ring_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> ring_dropped_{0};
  std::atomic<std::uint64_t> events_dropped_{0};

  std::size_t retain_misses_cap_ = 0;
  std::size_t retain_stragglers_cap_ = 0;
  /// Straggler fast-path filter: final_ms must beat this to take the mutex.
  /// -1 until the straggler buffer fills (everything qualifies).
  std::atomic<double> straggler_floor_{-1.0};
  mutable std::mutex retained_mu_;
  std::deque<FlightData> misses_;       ///< most recent, oldest first
  std::vector<FlightData> stragglers_;  ///< sorted by final_ms, worst first
};

}  // namespace stepping::obs
