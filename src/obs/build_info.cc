#include "obs/build_info.h"

#include "obs/metrics.h"

#ifndef STEPPING_VERSION
#define STEPPING_VERSION "unknown"
#endif
#ifndef STEPPING_GIT_SHA
#define STEPPING_GIT_SHA "unknown"
#endif

namespace stepping::obs {

const char* build_version() { return STEPPING_VERSION; }

const char* build_git_sha() { return STEPPING_GIT_SHA; }

void register_build_info(Registry& reg, const std::string& isa,
                         const std::string& precision) {
  reg.set_info("stepping_build_info", {{"version", build_version()},
                                       {"git_sha", build_git_sha()},
                                       {"isa", isa},
                                       {"precision", precision}});
}

}  // namespace stepping::obs
